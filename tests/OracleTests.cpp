//===- tests/OracleTests.cpp - Oracle equivalence & determinism -----------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memoization oracle and the parallel bounded check are pure
/// performance features: they must never change an analysis verdict.
/// This suite pins that down on the shipped example programs:
///
///  * general SSG equivalence — for every example and every feature
///    ablation combination, the cached and uncached analyses build the
///    same graph (same dot rendering) and flag the same SCCs;
///  * end-to-end equivalence — for representative option sets, the full
///    pipeline produces identical verdicts, violations and statistics
///    with the oracle on and off;
///  * parallel determinism — a multi-threaded bounded check commits
///    results in enumeration order, so violations and counters are
///    identical to the single-threaded run.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "frontend/Frontend.h"
#include "spec/CommutativityCache.h"
#include "ssg/GraphExport.h"
#include "ssg/SSG.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace c4;

#ifdef C4_SOURCE_DIR

namespace {

const char *ExampleFiles[] = {
    "/examples/c4l/fig1_put_get.c4l",
    "/examples/c4l/fig7_session_keys.c4l",
    "/examples/c4l/fig11_add_follower.c4l",
    "/examples/c4l/fig12_fresh_rows.c4l",
    "/examples/c4l/uniqueness_bug.c4l",
    "/examples/c4l/highscore_fixed.c4l",
};

std::optional<CompiledProgram> compileExample(const char *File) {
  std::ifstream In(std::string(C4_SOURCE_DIR) + File);
  if (!In.good())
    return std::nullopt;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  CompileResult R = compileC4L(Buffer.str());
  if (!R.ok())
    return std::nullopt;
  return std::move(R.Program);
}

/// The 64 on/off combinations of the six §9.3 ablation switches.
AnalysisFeatures featureCombo(unsigned Bits) {
  AnalysisFeatures F;
  F.Commutativity = Bits & 1;
  F.Absorption = Bits & 2;
  F.Constraints = Bits & 4;
  F.ControlFlow = Bits & 8;
  F.AsymmetricAntiDeps = Bits & 16;
  F.UniqueValues = Bits & 32;
  return F;
}

void expectSameViolations(const AnalysisResult &A, const AnalysisResult &B,
                          const char *Context) {
  ASSERT_EQ(A.Violations.size(), B.Violations.size()) << Context;
  for (size_t I = 0; I != A.Violations.size(); ++I) {
    const Violation &VA = A.Violations[I];
    const Violation &VB = B.Violations[I];
    EXPECT_EQ(VA.OrigTxns, VB.OrigTxns) << Context << " violation " << I;
    EXPECT_EQ(VA.TxnNames, VB.TxnNames) << Context << " violation " << I;
    EXPECT_EQ(VA.Inconclusive, VB.Inconclusive) << Context;
    EXPECT_EQ(VA.Validated, VB.Validated) << Context;
    EXPECT_EQ(VA.CE.has_value(), VB.CE.has_value()) << Context;
  }
}

void expectSameOutcome(const AnalysisResult &A, const AnalysisResult &B,
                       const char *Context) {
  expectSameViolations(A, B, Context);
  EXPECT_EQ(A.Generalized, B.Generalized) << Context;
  EXPECT_EQ(A.FastProvedSerializable, B.FastProvedSerializable) << Context;
  EXPECT_EQ(A.KChecked, B.KChecked) << Context;
  EXPECT_EQ(A.UnfoldingsChecked, B.UnfoldingsChecked) << Context;
  EXPECT_EQ(A.UnfoldingsSubsumed, B.UnfoldingsSubsumed) << Context;
  EXPECT_EQ(A.LayoutsFiltered, B.LayoutsFiltered) << Context;
  EXPECT_EQ(A.SSGFlagged, B.SSGFlagged) << Context;
  EXPECT_EQ(A.SMTRefuted, B.SMTRefuted) << Context;
  EXPECT_EQ(A.SMTUnknown, B.SMTUnknown) << Context;
  EXPECT_EQ(A.Truncated, B.Truncated) << Context;
}

} // namespace

TEST(OracleEquivalence, GeneralSSGMatchesUncachedAcrossAllAblations) {
  for (const char *File : ExampleFiles) {
    std::optional<CompiledProgram> P = compileExample(File);
    ASSERT_TRUE(P) << File;
    for (unsigned Bits = 0; Bits != 64; ++Bits) {
      AnalysisFeatures F = featureCombo(Bits);
      SSG Plain(*P->History, F);
      Plain.analyze();
      CommutativityOracle Oracle;
      SSG Cached(*P->History, F);
      Cached.setOracle(&Oracle);
      Cached.analyze();
      std::string Context =
          std::string(File) + " features=" + std::to_string(Bits);
      EXPECT_EQ(ssgToDot(*P->History, Plain.graph()),
                ssgToDot(*P->History, Cached.graph()))
          << Context;
      ASSERT_EQ(Plain.violations().size(), Cached.violations().size())
          << Context;
      for (size_t I = 0; I != Plain.violations().size(); ++I)
        EXPECT_EQ(Plain.violations()[I].Txns, Cached.violations()[I].Txns)
            << Context;
    }
  }
}

TEST(OracleEquivalence, FullPipelineVerdictsMatchUncached) {
  // Representative option sets: everything on, the two features the oracle
  // caches conditions for turned off, and the remaining ablations paired.
  std::vector<AnalyzerOptions> Configs(4);
  Configs[1].Features.Absorption = false;
  Configs[2].Features.AsymmetricAntiDeps = false;
  Configs[2].Features.UniqueValues = false;
  Configs[3].Features.Constraints = false;
  Configs[3].Features.ControlFlow = false;
  for (const char *File : ExampleFiles) {
    std::optional<CompiledProgram> P = compileExample(File);
    ASSERT_TRUE(P) << File;
    for (size_t C = 0; C != Configs.size(); ++C) {
      AnalyzerOptions On = Configs[C];
      On.UseOracle = true;
      AnalyzerOptions Off = Configs[C];
      Off.UseOracle = false;
      AnalysisResult RA = analyze(*P->History, On);
      AnalysisResult RB = analyze(*P->History, Off);
      std::string Context =
          std::string(File) + " config=" + std::to_string(C);
      expectSameOutcome(RA, RB, Context.c_str());
      // The cached run actually exercised the cache.
      EXPECT_GT(RA.CondCacheHits + RA.CondCacheMisses, 0u) << Context;
      EXPECT_EQ(RB.CondCacheHits + RB.CondCacheMisses, 0u) << Context;
    }
  }
}

TEST(OracleEquivalence, AtomicSetFilterVerdictsMatchUncached) {
  // The production CLI configuration: display filter + atomic sets.
  for (const char *File : ExampleFiles) {
    std::optional<CompiledProgram> P = compileExample(File);
    ASSERT_TRUE(P) << File;
    AnalyzerOptions On;
    On.DisplayFilter = true;
    On.UseAtomicSets = true;
    On.AtomicSets = P->AtomicSets;
    AnalyzerOptions Off = On;
    Off.UseOracle = false;
    AnalysisResult RA = analyze(*P->History, On);
    AnalysisResult RB = analyze(*P->History, Off);
    expectSameOutcome(RA, RB, File);
  }
}

TEST(ParallelDeterminism, BoundedCheckMatchesSequential) {
  // Workers solve unfoldings speculatively but results are committed in
  // enumeration order, so a parallel run must be indistinguishable from a
  // sequential one — same violations in the same order, same subsumption
  // and solver counters. Exercised on programs with and without
  // violations. (Thread counts above the core count still exercise the
  // ordered-commit path.)
  for (const char *File : ExampleFiles) {
    std::optional<CompiledProgram> P = compileExample(File);
    ASSERT_TRUE(P) << File;
    AnalyzerOptions Seq;
    Seq.NumThreads = 1;
    AnalyzerOptions Par;
    Par.NumThreads = 4;
    AnalysisResult RS = analyze(*P->History, Seq);
    AnalysisResult RP = analyze(*P->History, Par);
    expectSameOutcome(RS, RP, File);
  }
}

TEST(ParallelDeterminism, ParallelRunWithoutOracleMatchesToo) {
  // Parallelism and memoization are independent switches; cross them.
  const char *File = "/examples/c4l/uniqueness_bug.c4l";
  std::optional<CompiledProgram> P = compileExample(File);
  ASSERT_TRUE(P) << File;
  AnalyzerOptions Seq;
  Seq.NumThreads = 1;
  AnalyzerOptions Par;
  Par.NumThreads = 3;
  Par.UseOracle = false;
  AnalysisResult RS = analyze(*P->History, Seq);
  AnalysisResult RP = analyze(*P->History, Par);
  expectSameOutcome(RS, RP, File);
  ASSERT_FALSE(RS.Violations.empty());
}

#endif // C4_SOURCE_DIR

TEST(OracleUnit, CachesCondObjectsAndSatVerdicts) {
  TypeRegistry Reg;
  const DataTypeSpec *Map = Reg.lookup("map");
  ASSERT_TRUE(Map);
  unsigned Put = Map->opIndex(*Map->findOp("put"));
  unsigned Get = Map->opIndex(*Map->findOp("get"));
  CommutativityOracle Oracle;
  const Cond &C1 = Oracle.notCommutes(*Map, Put, Get, CommuteMode::Plain);
  const Cond &C2 = Oracle.notCommutes(*Map, Put, Get, CommuteMode::Plain);
  EXPECT_EQ(&C1, &C2); // same memoized object
  OracleStats S = Oracle.stats();
  EXPECT_EQ(S.CondMisses, 1u);
  EXPECT_EQ(S.CondHits, 1u);

  // Distinct (ops, mode) keys get distinct entries.
  Oracle.notCommutes(*Map, Get, Put, CommuteMode::Plain);
  Oracle.notCommutes(*Map, Put, Get, CommuteMode::Far);
  EXPECT_EQ(Oracle.stats().CondMisses, 3u);

  // Satisfiability verdicts are cached per fact vector...
  EventFacts Src, Tgt;
  Src.push_back(ArgFact::symbol(1));
  Tgt.push_back(ArgFact::symbol(1));
  bool V1 = Oracle.notCommutesSatisfiable(*Map, Put, Get, CommuteMode::Plain,
                                          Src, Tgt);
  bool V2 = Oracle.notCommutesSatisfiable(*Map, Put, Get, CommuteMode::Plain,
                                          Src, Tgt);
  EXPECT_EQ(V1, V2);
  S = Oracle.stats();
  EXPECT_EQ(S.SatMisses, 1u);
  EXPECT_EQ(S.SatHits, 1u);

  // ...and distinguished by the facts.
  EventFacts Tgt2;
  Tgt2.push_back(ArgFact::symbol(2));
  Oracle.notCommutesSatisfiable(*Map, Put, Get, CommuteMode::Plain, Src,
                                Tgt2);
  EXPECT_EQ(Oracle.stats().SatMisses, 2u);
}
