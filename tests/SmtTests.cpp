//===- tests/SmtTests.cpp - ϕ_cyclic encoder tests ------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Targeted tests of the SMT stage: solving single unfoldings directly,
/// query-value determination (a query with a visible creator cannot return
/// "absent"), transaction-completion semantics (no partial transactions in
/// models), fresh-unique-value axioms, and counter-example extraction
/// validity flags.
///
//===----------------------------------------------------------------------===//

#include "abstract/Concretize.h"
#include "analysis/Analyzer.h"
#include "smt/Encoding.h"

#include <gtest/gtest.h>

using namespace c4;

namespace {

class SmtFixture : public ::testing::Test {
public:
  SmtFixture() {
    M = Sch.addContainer("M", Reg.lookup("map"));
    T = Sch.addContainer("T", Reg.lookup("table"));
  }

  unsigned op(unsigned C, const char *Name) {
    const DataTypeSpec *Type = Sch.container(C).Type;
    return Type->opIndex(*Type->findOp(Name));
  }

  /// Solves every SC1-feasible unfolding of \p A at \p K sessions; returns
  /// the first counter-example found (if any).
  std::optional<CounterExample> solveAt(const AbstractHistory &A,
                                        unsigned K) {
    bool Truncated = false;
    std::vector<Unfolding> Us = enumerateUnfoldings(A, K, 10000, Truncated);
    for (const Unfolding &U : Us) {
      SSG G(U.H, AnalysisFeatures::all(), U.SessionTags);
      G.analyze();
      bool CT = false;
      std::vector<CandidateCycle> Cands = G.candidateCycles(64, CT);
      if (Cands.empty())
        continue;
      UnfoldingResult R =
          solveUnfolding(U, G, Cands, AnalysisFeatures::all());
      if (R.Status == UnfoldingResult::CycleFound)
        return R.CE;
    }
    return std::nullopt;
  }

  TypeRegistry Reg;
  Schema Sch;
  unsigned M = 0, T = 0;
};

} // namespace

TEST_F(SmtFixture, ModelsHaveCompleteTransactions) {
  // A transaction writing two fields never appears partially in a model.
  AbstractHistory A(Sch);
  unsigned Upd = A.addTransaction("upd");
  unsigned S1 = A.addEvent(Upd, T, op(T, "set"),
                           {AbsFact::free(), AbsFact::constant(1)});
  unsigned S2 = A.addEvent(Upd, T, op(T, "set"),
                           {AbsFact::free(), AbsFact::constant(2)});
  A.addEo(A.entry(Upd), S1);
  A.addEo(S1, S2);
  A.addInv(S1, S2, Cond::eq(Term::argSrc(0), Term::argTgt(0)));
  unsigned Get = A.addTransaction("get");
  unsigned G1 = A.addEvent(Get, T, op(T, "get"),
                           {AbsFact::free(), AbsFact::constant(1)});
  A.addEo(A.entry(Get), G1);
  A.allowAllSo();

  std::optional<CounterExample> CE = solveAt(A, 2);
  ASSERT_TRUE(CE.has_value()); // the long fork exists
  for (unsigned Txn = 0; Txn != CE->H.numTransactions(); ++Txn) {
    // Every upd instance carries both sets.
    unsigned Sets = 0;
    bool IsUpd = false;
    for (unsigned E : CE->H.txn(Txn).Events)
      if (CE->H.op(E).Name == "set") {
        ++Sets;
        IsUpd = true;
      }
    if (IsUpd) {
      EXPECT_EQ(Sets, 2u) << "partial transaction in model";
    }
  }
}

TEST_F(SmtFixture, QueryValuesRespectVisibleCreators) {
  // contains(r) with the creating set in the same session must return 1 in
  // every model: the guarded-add program has no violation (see the Fig. 11
  // discussion), because contains:0 with a visible creator is
  // value-inconsistent.
  AbstractHistory A(Sch);
  unsigned Create = A.addTransaction("create");
  unsigned Set = A.addEvent(Create, T, op(T, "set"),
                            {AbsFact::globalVar(A.addGlobalVar()),
                             AbsFact::constant(1)});
  A.addEo(A.entry(Create), Set);
  unsigned Check = A.addTransaction("check");
  unsigned Contains =
      A.addEvent(Check, T, op(T, "contains"), {AbsFact::globalVar(0)});
  unsigned Del = A.addEvent(Check, T, op(T, "del"), {AbsFact::globalVar(0)});
  A.addEo(A.entry(Check), Contains);
  // Delete only if present.
  A.addEo(Contains, Del, Cond::eq(Term::argSrc(1), Term::constant(1)));
  unsigned Exit = A.addMarker(Check, "exit");
  A.addEo(Del, Exit);
  A.addEo(Contains, Exit, Cond::eq(Term::argSrc(1), Term::constant(0)));
  A.allowAllSo();

  // Whatever the analysis reports, any extracted model must be
  // value-consistent: we check all found counter-examples satisfy S1.
  std::optional<CounterExample> CE = solveAt(A, 2);
  if (CE) {
    bool Legal = satisfiesLegality(CE->H, CE->S);
    EXPECT_TRUE(Legal);
  }
}

TEST_F(SmtFixture, FreshValuesForceObservedCreation) {
  // Figure 12 core: updates addressing a fresh row must have observed its
  // creation; the ⊗-cycle against the creator is impossible.
  AbstractHistory A(Sch);
  unsigned Row = A.addLocalVar();
  unsigned AddT = A.addTransaction("addRow");
  unsigned AddRow = A.addEvent(AddT, T, op(T, "add_row"), {});
  A.addEo(A.entry(AddT), AddRow);
  unsigned UpdT = A.addTransaction("upd");
  unsigned Set = A.addEvent(UpdT, T, op(T, "set"),
                            {AbsFact::localVar(Row), AbsFact::constant(1)});
  A.addEo(A.entry(UpdT), Set);
  unsigned GetT = A.addTransaction("get");
  unsigned Get = A.addEvent(GetT, T, op(T, "get"),
                            {AbsFact::localVar(Row), AbsFact::constant(1)});
  A.addEo(A.entry(GetT), Get);
  A.allowAllSo();

  AnalysisResult R = analyze(A);
  EXPECT_TRUE(R.Violations.empty()) << reportStr(A, R);

  AnalyzerOptions NoUnique;
  NoUnique.Features.UniqueValues = false;
  AnalysisResult R2 = analyze(A, NoUnique);
  // Without the fresh-value axioms the Fig. 12 false alarm appears (the
  // ablation also drops the freshness lower bound, so the witness may use
  // arbitrary identities).
  EXPECT_FALSE(R2.Violations.empty());
}

TEST_F(SmtFixture, CounterExamplesAreValidated) {
  AbstractHistory A(Sch);
  unsigned P = A.addTransaction("P");
  unsigned Put = A.addEvent(P, M, op(M, "put"), {});
  A.addEo(A.entry(P), Put);
  unsigned G = A.addTransaction("G");
  unsigned Get = A.addEvent(G, M, op(M, "get"), {});
  A.addEo(A.entry(G), Get);
  A.setMaySo(P, G);

  AnalysisResult R = analyze(A);
  ASSERT_FALSE(R.Violations.empty());
  EXPECT_TRUE(R.Violations.front().Validated);
  ASSERT_TRUE(R.Violations.front().CE.has_value());
  const CounterExample &CE = *R.Violations.front().CE;
  // The arbitration order of the extracted schedule is a permutation.
  std::vector<unsigned> Order = CE.S.arOrder();
  EXPECT_EQ(Order.size(), CE.H.numEvents());
  // The witness text mentions both transactions.
  EXPECT_NE(CE.Text.find("txn P"), std::string::npos);
  EXPECT_NE(CE.Text.find("txn G"), std::string::npos);
}

TEST_F(SmtFixture, NoCandidatesMeansNoCycle) {
  // Solving with an empty candidate list returns NoCycle immediately.
  AbstractHistory A(Sch);
  unsigned P = A.addTransaction("P");
  A.addEo(A.entry(P), A.addEvent(P, M, op(M, "put"), {}));
  A.allowAllSo();
  bool Truncated = false;
  std::vector<Unfolding> Us = enumerateUnfoldings(A, 2, 100, Truncated);
  ASSERT_FALSE(Us.empty());
  SSG G(Us[0].H, AnalysisFeatures::all(), Us[0].SessionTags);
  G.analyze();
  UnfoldingResult R =
      solveUnfolding(Us[0], G, {}, AnalysisFeatures::all());
  EXPECT_EQ(R.Status, UnfoldingResult::NoCycle);
}
