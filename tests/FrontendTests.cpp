//===- tests/FrontendTests.cpp - C4L front end tests ----------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the C4L lexer, parser and abstract interpreter: schema building,
/// fact inference (literals, session/global constants), equality invariants
/// (Fig. 10), control-flow guards (Fig. 11), display marks, atomic sets,
/// session-order declarations, and error reporting.
///
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace c4;

TEST(Lexer, TokensAndComments) {
  std::vector<Token> Tokens;
  std::string Error;
  ASSERT_TRUE(lexSource("txn f(x) { // comment\n  M.put(x, -3); }", Tokens,
                        Error))
      << Error;
  ASSERT_GE(Tokens.size(), 12u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::KwTxn);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Ident);
  EXPECT_EQ(Tokens[1].Text, "f");
  // The integer literal -3 on line 2.
  bool FoundInt = false;
  for (const Token &T : Tokens)
    if (T.Kind == TokenKind::Int) {
      EXPECT_EQ(T.Value, -3);
      EXPECT_EQ(T.Line, 2u);
      FoundInt = true;
    }
  EXPECT_TRUE(FoundInt);
}

TEST(Lexer, StringsAndOperators) {
  std::vector<Token> Tokens;
  std::string Error;
  ASSERT_TRUE(lexSource("\"hi\" == != <= >= < > ! -> = .", Tokens, Error));
  EXPECT_EQ(Tokens[0].Kind, TokenKind::String);
  EXPECT_EQ(Tokens[0].Text, "hi");
  EXPECT_EQ(Tokens[1].Kind, TokenKind::EqEq);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::BangEq);
  EXPECT_EQ(Tokens[3].Kind, TokenKind::LessEq);
  EXPECT_EQ(Tokens[4].Kind, TokenKind::GreaterEq);
  EXPECT_EQ(Tokens[5].Kind, TokenKind::Less);
  EXPECT_EQ(Tokens[6].Kind, TokenKind::Greater);
  EXPECT_EQ(Tokens[7].Kind, TokenKind::Bang);
  EXPECT_EQ(Tokens[8].Kind, TokenKind::Arrow);
  EXPECT_EQ(Tokens[9].Kind, TokenKind::Assign);
  EXPECT_EQ(Tokens[10].Kind, TokenKind::Dot);
}

TEST(Lexer, Errors) {
  std::vector<Token> Tokens;
  std::string Error;
  EXPECT_FALSE(lexSource("\"unterminated", Tokens, Error));
  EXPECT_NE(Error.find("unterminated"), std::string::npos);
  EXPECT_FALSE(lexSource("txn @", Tokens, Error));
}

namespace {

CompiledProgram compileOk(const std::string &Source) {
  CompileResult R = compileC4L(Source);
  EXPECT_TRUE(R.ok()) << R.Error;
  return std::move(*R.Program);
}

} // namespace

TEST(Frontend, MinimalProgram) {
  CompiledProgram P = compileOk("container map M;\n"
                                "txn w(k, v) { M.put(k, v); }\n"
                                "txn r(k) { let x = M.get(k); return x; }\n");
  EXPECT_EQ(P.Sch->numContainers(), 1u);
  EXPECT_EQ(P.History->numTxns(), 2u);
  EXPECT_EQ(P.History->numStoreEvents(), 2u);
  // Default session order is unrestricted.
  EXPECT_TRUE(P.History->maySo(0, 1));
  EXPECT_TRUE(P.History->maySo(1, 0));
  EXPECT_TRUE(P.History->maySo(0, 0));
}

TEST(Frontend, FactsForLiteralsAndConstants) {
  CompiledProgram P =
      compileOk("container map M;\n"
                "session u;\n"
                "global g;\n"
                "txn f() { M.put(u, 7); M.put(g, \"hello\"); }\n");
  const AbstractHistory &A = *P.History;
  // Events: entry marker, put(u,7), put(g,"hello"), exit marker.
  unsigned Put1 = A.txn(0).Events[1];
  unsigned Put2 = A.txn(0).Events[2];
  EXPECT_EQ(A.event(Put1).Facts[0].Kind, AbsFact::LocalVar);
  EXPECT_EQ(A.event(Put1).Facts[1].Kind, AbsFact::Const);
  EXPECT_EQ(A.event(Put1).Facts[1].Value, 7);
  EXPECT_EQ(A.event(Put2).Facts[0].Kind, AbsFact::GlobalVar);
  EXPECT_EQ(A.event(Put2).Facts[1].Kind, AbsFact::Const);
  // The string was interned above the literal range.
  EXPECT_GE(A.event(Put2).Facts[1].Value, Interner::Base);
  EXPECT_EQ(*P.Strings->lookup(A.event(Put2).Facts[1].Value), "hello");
}

TEST(Frontend, EqualityInvariantsAcrossEvents) {
  // Fig. 10: both sets use the same row parameter.
  CompiledProgram P = compileOk(
      "container table Quiz;\n"
      "txn upd(x, q, a) { Quiz.set(x, \"q\", q); Quiz.set(x, \"a\", a); }\n");
  const AbstractTxn &T = P.History->txn(0);
  // One invariant chains the two row slots (plus none for q/a singletons).
  ASSERT_EQ(T.Invs.size(), 1u);
  const AbstractConstraint &Inv = T.Invs[0];
  EXPECT_NE(Inv.Src, Inv.Tgt);
  EXPECT_EQ(Inv.C.str(), "src0=tgt0");
}

TEST(Frontend, LetResultFlowsIntoArguments) {
  // Fig. 12: the fresh row id returned by add_row feeds the set.
  CompiledProgram P =
      compileOk("container table Quiz;\n"
                "txn add(q) { let x = Quiz.add_row(); "
                "Quiz.set(x, \"q\", q); }\n");
  const AbstractTxn &T = P.History->txn(0);
  ASSERT_EQ(T.Invs.size(), 1u);
  // add_row's ret slot (0) equals set's row slot (0).
  EXPECT_EQ(T.Invs[0].C.str(), "src0=tgt0");
  EXPECT_NE(T.Invs[0].Src, T.Invs[0].Tgt);
}

TEST(Frontend, BranchGuardsOnQueryResult) {
  CompiledProgram P = compileOk(
      "container table Users;\n"
      "txn follow(n, m) {\n"
      "  let e = Users.contains(n);\n"
      "  if (e) { Users.add(n, \"flwrs\", m); }\n"
      "}\n");
  const AbstractHistory &A = *P.History;
  const AbstractTxn &T = A.txn(0);
  // Find the contains event and its outgoing guarded edges.
  unsigned Contains = ~0u;
  for (unsigned E : T.Events)
    if (!A.event(E).isMarker() && A.isQuery(E))
      Contains = E;
  ASSERT_NE(Contains, ~0u);
  unsigned Guarded = 0;
  for (const AbstractConstraint *E : A.eoSuccs(Contains))
    if (!E->C.isTrue())
      ++Guarded;
  // Both branch edges (then and implicit else) are guarded.
  EXPECT_EQ(Guarded, 2u);
}

TEST(Frontend, ComparisonGuards) {
  // Fig. 4: conditional increment guarded by get < 10.
  CompiledProgram P = compileOk("container map M;\n"
                                "txn inc(k) {\n"
                                "  let v = M.get(k);\n"
                                "  if (v < 10) { M.inc(k, 1); }\n"
                                "}\n");
  const AbstractHistory &A = *P.History;
  bool SawLess = false;
  for (unsigned E = 0; E != A.numEvents(); ++E)
    for (const AbstractConstraint *Edge : A.eoSuccs(E))
      if (Edge->C.str().find("src1<10") != std::string::npos)
        SawLess = true;
  EXPECT_TRUE(SawLess);
}

TEST(Frontend, DisplayMarksQuery) {
  CompiledProgram P = compileOk("container map M;\n"
                                "txn show(k) { let v = M.get(k); "
                                "display(v); }\n");
  const AbstractHistory &A = *P.History;
  bool Display = false;
  for (unsigned E = 0; E != A.numEvents(); ++E)
    if (!A.event(E).isMarker() && A.event(E).Display)
      Display = true;
  EXPECT_TRUE(Display);
}

TEST(Frontend, AtomicSetsAndOrders) {
  CompiledProgram P = compileOk("container map A;\n"
                                "container map B;\n"
                                "atomicset first { A }\n"
                                "atomicset second { B }\n"
                                "txn f() { A.put(1, 2); }\n"
                                "txn g() { B.put(1, 2); }\n"
                                "order f -> g;\n");
  ASSERT_EQ(P.AtomicSets.size(), 2u);
  EXPECT_EQ(P.AtomicSets[0], std::vector<unsigned>{0u});
  EXPECT_EQ(P.AtomicSets[1], std::vector<unsigned>{1u});
  EXPECT_TRUE(P.History->maySo(0, 1));
  EXPECT_FALSE(P.History->maySo(1, 0));
  EXPECT_FALSE(P.History->maySo(0, 0));
}

TEST(Frontend, Errors) {
  EXPECT_FALSE(compileC4L("container nosuch M;").ok());
  EXPECT_FALSE(compileC4L("container map M; txn f() { N.put(1,2); }").ok());
  EXPECT_FALSE(compileC4L("container map M; txn f() { M.nope(1); }").ok());
  EXPECT_FALSE(compileC4L("container map M; txn f() { M.put(1); }").ok());
  EXPECT_FALSE(compileC4L("container map M; txn f() { M.put(x, 1); }").ok());
  EXPECT_FALSE(
      compileC4L("container map M; txn f() { let x = M.put(1,2); }").ok());
  EXPECT_FALSE(compileC4L("container map M; txn f() {} txn f() {}").ok());
  EXPECT_FALSE(compileC4L("container map M; order f -> g;").ok());
  CompileResult R = compileC4L("container map M; txn f() { M.put(1 2); }");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("line 1"), std::string::npos);
}

TEST(Frontend, NestedBranchesBuild) {
  CompiledProgram P = compileOk(
      "container map M;\n"
      "txn f(k) {\n"
      "  let a = M.contains(k);\n"
      "  if (a) {\n"
      "    let b = M.get(k);\n"
      "    if (b == 3) { M.put(k, 4); } else { M.remove(k); }\n"
      "  } else {\n"
      "    M.inc(k, 1);\n"
      "  }\n"
      "}\n");
  // contains, get, put, remove, inc.
  EXPECT_EQ(P.History->numStoreEvents(), 5u);
  // Exactly one transaction with a unique entry.
  EXPECT_EQ(P.History->numTxns(), 1u);
}

//===----------------------------------------------------------------------===//
// The shipped .c4l example files compile.
//===----------------------------------------------------------------------===//

#include <fstream>
#include <sstream>

#ifdef C4_SOURCE_DIR
TEST(Frontend, ShippedExamplesCompile) {
  const char *Files[] = {
      "/examples/c4l/fig1_put_get.c4l",
      "/examples/c4l/fig7_session_keys.c4l",
      "/examples/c4l/fig11_add_follower.c4l",
      "/examples/c4l/fig12_fresh_rows.c4l",
      "/examples/c4l/uniqueness_bug.c4l",
      "/examples/c4l/highscore_fixed.c4l",
  };
  for (const char *File : Files) {
    std::ifstream In(std::string(C4_SOURCE_DIR) + File);
    ASSERT_TRUE(In.good()) << File;
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    CompileResult R = compileC4L(Buffer.str());
    EXPECT_TRUE(R.ok()) << File << ": " << R.Error;
    EXPECT_GT(R.Program->History->numTxns(), 0u) << File;
  }
}
#endif
