//===- tests/SoundnessTests.cpp - Randomized soundness fuzzing ------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The strongest property we can test mechanically: when the full pipeline
/// declares a random small program *serializable*, no small concretization
/// of its abstract history may be unserializable. We enumerate
/// concretizations exhaustively within tiny bounds (2 sessions, ≤2
/// transactions each, arguments from {0,1}) and decide serializability by
/// brute force. A single counter-example here would demonstrate a
/// soundness bug in the SSG stage, the unfolder, the SMT encoding, or the
/// generalization.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <functional>

using namespace c4;

namespace {

/// A random abstract history over one map container: 2-3 transactions of
/// 1-2 events each, arguments free / bound to constants / session-local.
AbstractHistory randomAbstract(const Schema &Sch, Rng &R,
                               unsigned &NumLocals) {
  AbstractHistory A(Sch);
  unsigned Local = A.addLocalVar();
  NumLocals = 1;
  const DataTypeSpec *T = Sch.container(0).Type;
  unsigned NumTxns = static_cast<unsigned>(R.range(2, 3));
  for (unsigned I = 0; I != NumTxns; ++I) {
    unsigned Txn = A.addTransaction("t" + std::to_string(I));
    unsigned Prev = A.entry(Txn);
    unsigned NumEvents = static_cast<unsigned>(R.range(1, 2));
    for (unsigned E = 0; E != NumEvents; ++E) {
      unsigned Op = static_cast<unsigned>(R.below(T->ops().size()));
      AbsFacts Facts(T->ops()[Op].numVals());
      for (unsigned S = 0; S != T->ops()[Op].NumArgs; ++S) {
        switch (R.below(3)) {
        case 0:
          break; // free
        case 1:
          Facts[S] = AbsFact::constant(R.range(0, 1));
          break;
        case 2:
          Facts[S] = AbsFact::localVar(Local);
          break;
        }
      }
      unsigned Ev = A.addEvent(Txn, 0, Op, std::move(Facts));
      A.addEo(Prev, Ev);
      Prev = Ev;
    }
  }
  A.allowAllSo();
  return A;
}

/// Enumerates concrete histories drawn from the abstract history within
/// tiny bounds and calls \p Fn for each; stops early when Fn returns true.
/// Sessions instantiate transaction sequences; arguments range over {0,1};
/// query returns are not enumerated here — serializability only depends on
/// them through legality, so we enumerate returns too (over the values a
/// query can produce: {0,1}).
bool forEachSmallConcretization(
    const AbstractHistory &A,
    const std::function<bool(const History &)> &Fn) {
  const Schema &Sch = A.schema();
  // Session plans: ordered pairs of transaction sequences of length <= 2.
  std::vector<std::vector<unsigned>> Seqs;
  for (unsigned T1 = 0; T1 != A.numTxns(); ++T1) {
    Seqs.push_back({T1});
    for (unsigned T2 = 0; T2 != A.numTxns(); ++T2)
      Seqs.push_back({T1, T2});
  }
  for (const std::vector<unsigned> &S1 : Seqs)
    for (const std::vector<unsigned> &S2 : Seqs) {
      // Enumerate argument/return valuations: collect slots first.
      struct Slot {
        unsigned Txn;  // position: which session/seq/txn
        unsigned Session;
        unsigned Event; // abstract event
        unsigned Index; // combined slot
      };
      std::vector<Slot> Slots;
      std::vector<std::vector<unsigned>> Sessions = {S1, S2};
      for (unsigned S = 0; S != 2; ++S)
        for (unsigned TI = 0; TI != Sessions[S].size(); ++TI)
          for (unsigned E : A.txn(Sessions[S][TI]).Events) {
            if (A.event(E).isMarker())
              continue;
            for (unsigned I = 0; I != A.op(E).numVals(); ++I)
              Slots.push_back({TI, S, E, I});
          }
      if (Slots.size() > 10)
        continue; // keep the enumeration tractable
      // Local variable values per session (from {0,1}).
      for (unsigned LocalVals = 0; LocalVals != 4; ++LocalVals) {
        int64_t Locals[2] = {LocalVals & 1, (LocalVals >> 1) & 1};
        unsigned Combos = 1u << Slots.size();
        for (unsigned Mask = 0; Mask != Combos; ++Mask) {
          // Build the candidate history; facts may reject the valuation.
          History H(Sch);
          bool Ok = true;
          unsigned Bit = 0;
          for (unsigned S = 0; S != 2 && Ok; ++S) {
            unsigned Session = H.addSession();
            for (unsigned TI = 0; TI != Sessions[S].size() && Ok; ++TI) {
              unsigned Txn = H.beginTransaction(Session);
              for (unsigned E : A.txn(Sessions[S][TI]).Events) {
                if (A.event(E).isMarker())
                  continue;
                const OpSig &Op = A.op(E);
                std::vector<int64_t> Vals;
                for (unsigned I = 0; I != Op.numVals(); ++I) {
                  int64_t V = (Mask >> Bit) & 1;
                  ++Bit;
                  const AbsFact &F = A.event(E).Facts[I];
                  if (F.Kind == AbsFact::Const)
                    V = F.Value;
                  else if (F.Kind == AbsFact::LocalVar)
                    V = Locals[S];
                  Vals.push_back(V);
                }
                std::vector<int64_t> Args(Vals.begin(),
                                          Vals.begin() + Op.NumArgs);
                std::optional<int64_t> Ret;
                if (Op.HasRet)
                  Ret = Vals.back();
                H.append(Txn, A.event(E).Container, A.event(E).Op,
                         std::move(Args), Ret);
              }
            }
          }
          if (!Ok)
            continue;
          if (Fn(H))
            return true;
        }
      }
    }
  return false;
}

} // namespace

TEST(Soundness, SerializableVerdictsHaveNoSmallCounterexamples) {
  TypeRegistry Reg;
  Schema Sch;
  Sch.addContainer("M", Reg.lookup("map"));
  Rng R(0x50DA);
  unsigned Serializable = 0, Flagged = 0, Checked = 0;
  for (unsigned Trial = 0; Trial != 40; ++Trial) {
    unsigned NumLocals = 0;
    AbstractHistory A = randomAbstract(Sch, R, NumLocals);
    AnalyzerOptions O;
    O.Budget.WallMs = 5000;
    AnalysisResult Res = analyze(A, O);
    if (!Res.Violations.empty()) {
      ++Flagged;
      continue;
    }
    if (!Res.Generalized)
      continue; // bounded-only result: no unbounded claim to test
    ++Serializable;
    bool Counterexample =
        forEachSmallConcretization(A, [&](const History &H) {
          ++Checked;
          // Only histories that genuinely arise matter: their own query
          // returns must be achievable — brute-force serializability
          // handles that: if H is unserializable AND legal under some
          // causal schedule, it is a counter-example. We approximate
          // "legal under some causal schedule" by requiring that a causal
          // schedule with S1 exists; the cheapest complete check at this
          // size is: does some schedule built from a transaction
          // linearization + subset visibility satisfy S1? We test the
          // weaker-but-sound direction: if H is serializable, it is no
          // counter-example.
          if (isSerializable(H))
            return false;
          // Unserializable concretization: does any legal causal schedule
          // realize it? Try all transaction-level visibility assignments.
          unsigned N = H.numTransactions();
          std::vector<unsigned> Order(N);
          for (unsigned I = 0; I != N; ++I)
            Order[I] = I;
          // Arbitration orders: permutations respecting session order.
          std::sort(Order.begin(), Order.end());
          do {
            bool SoOk = true;
            for (unsigned I = 0; I != N && SoOk; ++I)
              for (unsigned J = I + 1; J != N && SoOk; ++J)
                SoOk = !H.txnSoLess(Order[J], Order[I]);
            if (!SoOk)
              continue;
            // Visibility subsets over ar-ordered pairs.
            std::vector<std::pair<unsigned, unsigned>> Pairs;
            for (unsigned I = 0; I != N; ++I)
              for (unsigned J = I + 1; J != N; ++J)
                Pairs.push_back({Order[I], Order[J]});
            for (unsigned VMask = 0; VMask != (1u << Pairs.size());
                 ++VMask) {
              Schedule S(H.numEvents());
              std::vector<unsigned> EvOrder;
              for (unsigned T : Order)
                for (unsigned E : H.txn(T).Events)
                  EvOrder.push_back(E);
              S.setArbitration(EvOrder);
              for (unsigned PI = 0; PI != Pairs.size(); ++PI)
                if ((VMask >> PI) & 1)
                  for (unsigned EA : H.txn(Pairs[PI].first).Events)
                    for (unsigned EB : H.txn(Pairs[PI].second).Events)
                      S.setVisible(EA, EB);
              S.closeCausally(H);
              if (isLegalSchedule(H, S))
                return true; // realizable and unserializable!
            }
          } while (std::next_permutation(Order.begin(), Order.end()));
          return false;
        });
    EXPECT_FALSE(Counterexample)
        << "soundness bug: a program judged serializable has an "
           "unserializable realizable concretization";
  }
  // The generator must exercise both verdicts.
  EXPECT_GT(Serializable, 3u);
  EXPECT_GT(Flagged, 3u);
  EXPECT_GT(Checked, 100u);
}
