//===- tests/SpecTests.cpp - Rewrite specification tests ------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates every data type's rewrite specification against its executable
/// sequential semantics with randomized property tests:
///
///  * commutativity: if com(A,B) holds on concrete arguments, swapping the
///    two events preserves states (update/update) or query outcomes,
///  * absorption: if abs(A,B) holds, dropping A before any update context
///    followed by B preserves the state (the R1 far-absorption shape),
///  * asymmetric commutativity: if asym(U,Q) holds and Q's outcome was r
///    without U, it remains r with U prepended.
///
//===----------------------------------------------------------------------===//

#include "spec/DataType.h"
#include "spec/Registry.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace c4;

namespace {

/// A concrete event for spec testing: an op index plus combined values.
struct SpecEvent {
  unsigned Op;
  std::vector<int64_t> Vals; // args + ret (ret meaningful for updates only
                             // when the op has one, e.g. add_row)
  std::vector<int64_t> args(const OpSig &Sig) const {
    return std::vector<int64_t>(Vals.begin(), Vals.begin() + Sig.NumArgs);
  }
};

class SpecProperty : public ::testing::TestWithParam<const char *> {
protected:
  void SetUp() override {
    Type = Reg.lookup(GetParam());
    ASSERT_NE(Type, nullptr);
    for (unsigned I = 0; I != Type->ops().size(); ++I)
      if (Type->ops()[I].isUpdate())
        Updates.push_back(I);
      else
        Queries.push_back(I);
  }

  /// Random values: small domain so collisions are frequent.
  int64_t randVal(Rng &R) { return R.range(0, 2); }

  SpecEvent randUpdate(Rng &R) {
    unsigned Op = Updates[R.below(Updates.size())];
    const OpSig &Sig = Type->ops()[Op];
    SpecEvent E{Op, {}};
    for (unsigned I = 0; I != Sig.numVals(); ++I)
      E.Vals.push_back(randVal(R));
    return E;
  }

  std::unique_ptr<ContainerState>
  applyAll(const std::vector<SpecEvent> &Seq) {
    std::unique_ptr<ContainerState> S = Type->makeState();
    for (const SpecEvent &E : Seq)
      S->apply(Type->ops()[E.Op], E.Vals);
    return S;
  }

  /// Compares two states by evaluating every query on a small argument
  /// domain.
  bool statesEqual(const ContainerState &A, const ContainerState &B) {
    for (unsigned Q : Queries) {
      const OpSig &Sig = Type->ops()[Q];
      std::vector<int64_t> Args(Sig.NumArgs, 0);
      // Enumerate the argument cube {0,1,2}^NumArgs.
      while (true) {
        if (A.eval(Sig, Args) != B.eval(Sig, Args))
          return false;
        unsigned I = 0;
        for (; I != Args.size(); ++I) {
          if (++Args[I] <= 2)
            break;
          Args[I] = 0;
        }
        if (I == Args.size())
          break;
      }
      if (Sig.NumArgs == 0)
        continue;
    }
    return true;
  }

  TypeRegistry Reg;
  const DataTypeSpec *Type = nullptr;
  std::vector<unsigned> Updates, Queries;
};

TEST_P(SpecProperty, UpdateUpdateCommutativityIsSound) {
  Rng R(0xC0FFEE);
  for (int Trial = 0; Trial != 3000; ++Trial) {
    SpecEvent A = randUpdate(R), B = randUpdate(R);
    Cond Com = commutesCond(*Type, A.Op, B.Op, CommuteMode::Plain);
    if (!Com.eval(A.Vals, B.Vals))
      continue;
    std::vector<SpecEvent> Ctx;
    for (int I = 0, N = static_cast<int>(R.below(4)); I != N; ++I)
      Ctx.push_back(randUpdate(R));
    std::vector<SpecEvent> S1 = Ctx, S2 = Ctx;
    S1.push_back(A);
    S1.push_back(B);
    S2.push_back(B);
    S2.push_back(A);
    EXPECT_TRUE(statesEqual(*applyAll(S1), *applyAll(S2)))
        << "ops " << Type->ops()[A.Op].Name << " / "
        << Type->ops()[B.Op].Name << " under " << Com.str();
  }
}

TEST_P(SpecProperty, FarAbsorptionIsSound) {
  Rng R(0xABCD);
  for (int Trial = 0; Trial != 3000; ++Trial) {
    SpecEvent A = randUpdate(R), B = randUpdate(R);
    Cond Abs = absorbsCond(*Type, A.Op, B.Op, /*Far=*/true);
    if (!Abs.eval(A.Vals, B.Vals))
      continue;
    // R1 shape: A beta B  ==  beta B for arbitrary update sequences beta.
    std::vector<SpecEvent> Beta;
    for (int I = 0, N = static_cast<int>(R.below(4)); I != N; ++I)
      Beta.push_back(randUpdate(R));
    std::vector<SpecEvent> S1, S2;
    S1.push_back(A);
    S1.insert(S1.end(), Beta.begin(), Beta.end());
    S1.push_back(B);
    S2 = Beta;
    S2.push_back(B);
    EXPECT_TRUE(statesEqual(*applyAll(S1), *applyAll(S2)))
        << "abs " << Type->ops()[A.Op].Name << " |> "
        << Type->ops()[B.Op].Name;
  }
}

TEST_P(SpecProperty, UpdateQueryCommutativityIsSound) {
  Rng R(0x5EED);
  for (int Trial = 0; Trial != 3000; ++Trial) {
    if (Queries.empty())
      break;
    SpecEvent U = randUpdate(R);
    unsigned QOp = Queries[R.below(Queries.size())];
    const OpSig &QSig = Type->ops()[QOp];
    std::vector<int64_t> QArgs;
    for (unsigned I = 0; I != QSig.NumArgs; ++I)
      QArgs.push_back(randVal(R));

    std::vector<SpecEvent> Ctx;
    for (int I = 0, N = static_cast<int>(R.below(4)); I != N; ++I)
      Ctx.push_back(randUpdate(R));
    std::unique_ptr<ContainerState> Before = applyAll(Ctx);
    std::vector<SpecEvent> CtxU = Ctx;
    CtxU.push_back(U);
    std::unique_ptr<ContainerState> After = applyAll(CtxU);
    int64_t R0 = Before->eval(QSig, QArgs); // outcome without U
    int64_t R1 = After->eval(QSig, QArgs);  // outcome with U

    for (int64_t Ret : {R0, R1}) {
      std::vector<int64_t> QVals = QArgs;
      QVals.push_back(Ret);
      // Symmetric far commutativity: both orders equally legal.
      Cond Far = commutesCond(*Type, U.Op, QOp, CommuteMode::Far);
      if (Far.eval(U.Vals, QVals)) {
        EXPECT_EQ(R0 == Ret, R1 == Ret)
            << Type->ops()[U.Op].Name << " vs " << QSig.Name << ":" << Ret;
      }
      // Asymmetric: if the query was legal without U, it stays legal.
      Cond Asym = commutesCond(*Type, U.Op, QOp, CommuteMode::Asym);
      if (Asym.eval(U.Vals, QVals) && R0 == Ret) {
        EXPECT_EQ(R1, Ret)
            << "asym " << Type->ops()[U.Op].Name << " vs " << QSig.Name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, SpecProperty,
                         ::testing::Values("register", "counter", "map",
                                           "set", "table", "creg",
                                           "maxreg"));

//===----------------------------------------------------------------------===//
// Targeted checks of individual table entries from the paper.
//===----------------------------------------------------------------------===//

class MapSpec : public ::testing::Test {
protected:
  TypeRegistry Reg;
  const DataTypeSpec *Map = Reg.lookup("map");
  unsigned put() { return Map->opIndex(*Map->findOp("put")); }
  unsigned inc() { return Map->opIndex(*Map->findOp("inc")); }
  unsigned get() { return Map->opIndex(*Map->findOp("get")); }
  unsigned contains() { return Map->opIndex(*Map->findOp("contains")); }
  unsigned size() { return Map->opIndex(*Map->findOp("size")); }
};

TEST_F(MapSpec, Fig6CommutativityEntries) {
  // put(k,v) vs get(k'): commute iff k != k'.
  Cond C = commutesCond(*Map, put(), get(), CommuteMode::Plain);
  EXPECT_TRUE(C.eval({1, 5}, {2, 0}));
  EXPECT_FALSE(C.eval({1, 5}, {1, 0}));
  // put vs put: k != k' or v = v'.
  Cond P = commutesCond(*Map, put(), put(), CommuteMode::Plain);
  EXPECT_TRUE(P.eval({1, 5}, {1, 5}));
  EXPECT_TRUE(P.eval({1, 5}, {2, 6}));
  EXPECT_FALSE(P.eval({1, 5}, {1, 6}));
  // put vs size: never.
  EXPECT_TRUE(
      commutesCond(*Map, put(), size(), CommuteMode::Plain).isFalse());
  // get vs get: always (queries).
  EXPECT_TRUE(
      commutesCond(*Map, get(), get(), CommuteMode::Plain).isTrue());
}

TEST_F(MapSpec, PaperSec3AbsorptionExample) {
  // put(a,2) absorbs inc(a,1), but not vice versa.
  Cond AbsIncPut = absorbsCond(*Map, inc(), put(), /*Far=*/true);
  EXPECT_TRUE(AbsIncPut.eval({7, 1}, {7, 2}));
  EXPECT_FALSE(AbsIncPut.eval({7, 1}, {8, 2}));
  Cond AbsPutInc = absorbsCond(*Map, put(), inc(), /*Far=*/true);
  EXPECT_FALSE(AbsPutInc.eval({7, 2}, {7, 1}));
}

TEST_F(MapSpec, AsymmetricContains) {
  // contains(k):true tolerates a put(k,...) moving before it.
  Cond Asym = commutesCond(*Map, put(), contains(), CommuteMode::Asym);
  EXPECT_TRUE(Asym.eval({1, 5}, {1, 1}));  // ret true
  EXPECT_FALSE(Asym.eval({1, 5}, {1, 0})); // ret false
  // The symmetric version rejects both on equal keys.
  Cond Sym = commutesCond(*Map, put(), contains(), CommuteMode::Far);
  EXPECT_FALSE(Sym.eval({1, 5}, {1, 1}));
}

TEST(CRegSpec, FarDiffersFromPlain) {
  TypeRegistry Reg;
  const DataTypeSpec *CReg = Reg.lookup("creg");
  unsigned Put = CReg->opIndex(*CReg->findOp("put"));
  unsigned Inc = CReg->opIndex(*CReg->findOp("inc"));
  unsigned Get = CReg->opIndex(*CReg->findOp("get"));
  // Plain: put(a,2) commutes with get(b) when a != b.
  EXPECT_TRUE(commutesCond(*CReg, Put, Get, CommuteMode::Plain)
                  .eval({1, 2}, {2, 0}));
  // Far: never (cp can link the keys) — paper §4.1.
  EXPECT_TRUE(commutesCond(*CReg, Put, Get, CommuteMode::Far).isFalse());
  // Plain: put(a,2) absorbs inc(a,1); far: it does not.
  EXPECT_TRUE(
      absorbsCond(*CReg, Inc, Put, /*Far=*/false).eval({1, 1}, {1, 2}));
  EXPECT_TRUE(absorbsCond(*CReg, Inc, Put, /*Far=*/true).isFalse());
}

TEST(CRegSpec, PaperCounterexampleSequence) {
  // inc(a,1) cp(a,b) put(a,2)  !=  cp(a,b) put(a,2): b differs (1 vs 0).
  TypeRegistry Reg;
  const DataTypeSpec *CReg = Reg.lookup("creg");
  const OpSig &Inc = *CReg->findOp("inc");
  const OpSig &Cp = *CReg->findOp("cp");
  const OpSig &Put = *CReg->findOp("put");
  const OpSig &Get = *CReg->findOp("get");
  std::unique_ptr<ContainerState> S1 = CReg->makeState();
  S1->apply(Inc, {1, 1});
  S1->apply(Cp, {1, 2});
  S1->apply(Put, {1, 2});
  std::unique_ptr<ContainerState> S2 = CReg->makeState();
  S2->apply(Cp, {1, 2});
  S2->apply(Put, {1, 2});
  EXPECT_EQ(S1->eval(Get, {2}), 1);
  EXPECT_EQ(S2->eval(Get, {2}), 0);
}

TEST(TableSpec, FreshRowSemantics) {
  TypeRegistry Reg;
  const DataTypeSpec *Table = Reg.lookup("table");
  const OpSig &AddRow = *Table->findOp("add_row");
  EXPECT_TRUE(AddRow.Fresh);
  EXPECT_TRUE(AddRow.isUpdate());
  EXPECT_TRUE(AddRow.HasRet);
  const OpSig &Set = *Table->findOp("set");
  const OpSig &Contains = *Table->findOp("contains");
  const OpSig &Get = *Table->findOp("get");
  std::unique_ptr<ContainerState> S = Table->makeState();
  EXPECT_EQ(S->eval(Contains, {100}), 0);
  S->apply(AddRow, {100});
  EXPECT_EQ(S->eval(Contains, {100}), 1);
  EXPECT_EQ(S->eval(Get, {100, 1}), 0);
  S->apply(Set, {100, 1, 42});
  EXPECT_EQ(S->eval(Get, {100, 1}), 42);
  // Implicit creation: set on an unknown row creates it.
  S->apply(Set, {200, 1, 7});
  EXPECT_EQ(S->eval(Contains, {200}), 1);
}

TEST(RegistrySchema, LookupAndDeclare) {
  TypeRegistry Reg;
  EXPECT_NE(Reg.lookup("map"), nullptr);
  EXPECT_EQ(Reg.lookup("nope"), nullptr);
  Schema Sch;
  unsigned M = Sch.addContainer("M", Reg.lookup("map"));
  unsigned S = Sch.addContainer("S", Reg.lookup("set"));
  EXPECT_EQ(Sch.numContainers(), 2u);
  EXPECT_EQ(Sch.lookup("M"), static_cast<int>(M));
  EXPECT_EQ(Sch.lookup("S"), static_cast<int>(S));
  EXPECT_EQ(Sch.lookup("X"), -1);
  EXPECT_EQ(Sch.container(M).Type->name(), "map");
}

} // namespace
