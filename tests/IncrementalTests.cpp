//===- tests/IncrementalTests.cpp - Incremental re-analysis layer ---------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the incremental re-analysis layer: per-transaction content
/// digests (editing or adding one transaction never perturbs another's
/// digest; renames don't change any), the Green-style canonical constraint
/// key (naming, query-generation and conjunct-interleaving invariance;
/// content and context sensitivity), snapshot serialization round-trips,
/// and the end-to-end differential contract — a warm re-analysis of an
/// edited program through a populated incremental cache must match a plain
/// cold run of the edited program on every verdict field and logical
/// counter, with `--no-incremental` as the A/B escape hatch.
///
//===----------------------------------------------------------------------===//

#include "analysis/Incremental.h"
#include "analysis/Pipeline.h"
#include "frontend/Frontend.h"
#include "smt/ConstraintCache.h"

#include "gtest/gtest.h"

#include <cctype>
#include <dirent.h>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace c4;

namespace {

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << Path;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

/// Fresh cache directory per test, under gtest's temp dir.
std::string freshDir(const char *Name) {
  std::string Dir = testing::TempDir() + "c4incr_" + Name;
  for (const char *Sub : {"/objects", "/tmp"}) {
    std::string D = Dir + Sub;
    if (DIR *Handle = ::opendir(D.c_str())) {
      while (struct dirent *E = ::readdir(Handle)) {
        std::string N = E->d_name;
        if (N != "." && N != "..")
          ::remove((D + "/" + N).c_str());
      }
      ::closedir(Handle);
    }
  }
  std::remove((Dir + "/VERSION").c_str());
  return Dir;
}

/// Compiles \p Source, failing the test on a compile error.
CompiledProgram compile(const std::string &Source) {
  CompileResult R = compileC4L(Source);
  EXPECT_TRUE(R.ok()) << R.Error;
  return std::move(*R.Program);
}

/// Name → content digest for every transaction of \p Source.
std::map<std::string, std::string> digestsByName(const std::string &Source) {
  CompiledProgram P = compile(Source);
  std::map<std::string, std::string> Out;
  for (unsigned T = 0; T != P.History->numTxns(); ++T)
    Out[P.History->txn(T).Name] = txnContentDigest(*P.History, T);
  return Out;
}

//===----------------------------------------------------------------------===//
// Per-transaction content digests
//===----------------------------------------------------------------------===//

const char *ThreeTxns = "container map M;\n"
                        "txn A(x, y) { M.put(x, y); }\n"
                        "txn B(z) { let v = M.get(z); return v; }\n"
                        "txn C(w) { M.put(w, 1); }\n";

TEST(TxnDigest, EditingOneTxnLeavesTheOthersUnchanged) {
  auto Base = digestsByName(ThreeTxns);
  auto Edited = digestsByName("container map M;\n"
                              "txn A(x, y) { M.put(x, y); }\n"
                              "txn B(z) { let v = M.get(z); return v; }\n"
                              "txn C(w) { M.put(w, 2); }\n");
  EXPECT_EQ(Base.at("A"), Edited.at("A"));
  EXPECT_EQ(Base.at("B"), Edited.at("B"));
  EXPECT_NE(Base.at("C"), Edited.at("C"));
}

TEST(TxnDigest, AddingATxnShiftsNoOtherDigest) {
  // A new transaction up front renumbers every global event id; the
  // digests localize event references, so the existing three survive.
  auto Base = digestsByName(ThreeTxns);
  auto Grown = digestsByName("container map M;\n"
                             "txn D(k) { M.put(k, 9); }\n"
                             "txn A(x, y) { M.put(x, y); }\n"
                             "txn B(z) { let v = M.get(z); return v; }\n"
                             "txn C(w) { M.put(w, 1); }\n");
  EXPECT_EQ(Base.at("A"), Grown.at("A"));
  EXPECT_EQ(Base.at("B"), Grown.at("B"));
  EXPECT_EQ(Base.at("C"), Grown.at("C"));
}

TEST(TxnDigest, RenamingIsInvisible) {
  auto Base = digestsByName(ThreeTxns);
  auto Renamed = digestsByName("container map M;\n"
                               "txn A(x, y) { M.put(x, y); }\n"
                               "txn Bee(z) { let v = M.get(z); return v; }\n"
                               "txn C(w) { M.put(w, 1); }\n");
  EXPECT_EQ(Base.at("A"), Renamed.at("A"));
  EXPECT_EQ(Base.at("B"), Renamed.at("Bee"));
  EXPECT_EQ(Base.at("C"), Renamed.at("C"));
}

TEST(TxnDigest, DistinctContentsGetDistinctDigests) {
  auto Base = digestsByName(ThreeTxns);
  EXPECT_NE(Base.at("A"), Base.at("B"));
  EXPECT_NE(Base.at("A"), Base.at("C"));
  EXPECT_NE(Base.at("B"), Base.at("C"));
}

TEST(TxnDigest, ContextDigestTracksOptionsNotIterationCaps) {
  CompiledProgram P = compile(ThreeTxns);
  std::vector<bool> Mask(P.History->numEvents(), true);
  AnalyzerOptions O;
  std::string Base = incrementalContextDigest(*P.History, O, Mask);

  // Caps shape how much work runs, not any per-query verdict: same context.
  AnalyzerOptions Caps;
  Caps.MaxK = 7;
  Caps.MaxUnfoldings = 17;
  Caps.DeadlineMs = 1234;
  EXPECT_EQ(Base, incrementalContextDigest(*P.History, Caps, Mask));

  // The display filter changes the event mask semantics; the budget
  // changes which queries can prove NoCycle. Both must split the context.
  AnalyzerOptions Display;
  Display.DisplayFilter = true;
  EXPECT_NE(Base, incrementalContextDigest(*P.History, Display, Mask));
  AnalyzerOptions Budget;
  Budget.Budget.Rlimit /= 2;
  EXPECT_NE(Base, incrementalContextDigest(*P.History, Budget, Mask));

  std::vector<bool> Partial = Mask;
  Partial.back() = false;
  EXPECT_NE(Base, incrementalContextDigest(*P.History, O, Partial));
}

//===----------------------------------------------------------------------===//
// Canonical constraint keys (the Green cache)
//===----------------------------------------------------------------------===//

TEST(CanonicalKey, RenamingAndGenerationInvariance) {
  // Same structure, different query generation and different constant
  // names: one canonical key.
  std::vector<std::string> A = {"(assert (> q1.ev0.pos q1.ev1.pos))",
                                "(assert (= q1.txn0.present true))"};
  std::vector<std::string> B = {"(assert (> q7.alpha q7.beta))",
                                "(assert (= q7.gamma true))"};
  EXPECT_EQ(canonicalQueryKey(A), canonicalQueryKey(B));
}

TEST(CanonicalKey, IndependentConjunctInterleavingInvariance) {
  // {a,b} and {c} share no symbols — the slicer must make the key
  // independent of how the encoder interleaved the two groups.
  std::vector<std::string> AB_C = {"(assert (> q1.a q1.b))",
                                   "(assert (= q1.c 0))"};
  std::vector<std::string> C_AB = {"(assert (= q1.c 0))",
                                   "(assert (> q1.a q1.b))"};
  EXPECT_EQ(canonicalQueryKey(AB_C), canonicalQueryKey(C_AB));
}

TEST(CanonicalKey, ContentAndContextSensitivity) {
  std::vector<std::string> A = {"(assert (> q1.a q1.b))"};
  std::vector<std::string> B = {"(assert (>= q1.a q1.b))"};
  EXPECT_NE(canonicalQueryKey(A), canonicalQueryKey(B));
  // An unsat proof under one solver budget must not answer a query
  // running under another: the context tag splits the key space.
  EXPECT_NE(canonicalQueryKey(A, "rlimit=1000"),
            canonicalQueryKey(A, "rlimit=2000"));
  EXPECT_EQ(canonicalQueryKey(A, "rlimit=1000"),
            canonicalQueryKey(A, "rlimit=1000"));
}

TEST(CanonicalKey, SharedSymbolsKeepConjunctsInOneGroup) {
  // a-b and b-c are linked through b: a *consistent* whole-group renaming
  // is fine, but collapsing the link must change the key.
  std::vector<std::string> Linked = {"(assert (> q1.a q1.b))",
                                     "(assert (> q1.b q1.c))"};
  std::vector<std::string> Renamed = {"(assert (> q2.x q2.y))",
                                      "(assert (> q2.y q2.z))"};
  std::vector<std::string> Split = {"(assert (> q1.a q1.b))",
                                    "(assert (> q1.d q1.c))"};
  EXPECT_EQ(canonicalQueryKey(Linked), canonicalQueryKey(Renamed));
  EXPECT_NE(canonicalQueryKey(Linked), canonicalQueryKey(Split));
}

//===----------------------------------------------------------------------===//
// Snapshot round-trips
//===----------------------------------------------------------------------===//

TEST(Snapshots, IncrementalRoundTrip) {
  IncrementalSnapshot S;
  // Keys are fingerprint digests — space-free by construction, which the
  // line format relies on.
  S.addRecord("key-1", {true, false, 0, 0, 0});
  S.addRecord("key-2", {false, true, 3, 2, 500000});
  S.addTxn("digest-a");
  S.addTxn("digest-b");
  std::string Blob = S.serialize();
  auto Back = IncrementalSnapshot::deserialize(Blob);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->serialize(), Blob);
  EXPECT_EQ(Back->numRecords(), 2u);
  EXPECT_EQ(Back->numTxns(), 2u);
  EXPECT_TRUE(Back->hasTxn("digest-a"));
  EXPECT_FALSE(Back->hasTxn("digest-c"));
  const IncrRecord *R = Back->record("key-2");
  ASSERT_NE(R, nullptr);
  EXPECT_FALSE(R->Prefiltered);
  EXPECT_TRUE(R->PrefilterUnknown);
  EXPECT_EQ(R->Attempts, 3u);
  EXPECT_EQ(R->CtxReuses, 2u);
  EXPECT_EQ(R->RlimitBudget, 500000u);
  EXPECT_EQ(Back->record("absent"), nullptr);

  EXPECT_FALSE(IncrementalSnapshot::deserialize("").has_value());
  EXPECT_FALSE(IncrementalSnapshot::deserialize("garbage\n").has_value());
  EXPECT_FALSE(
      IncrementalSnapshot::deserialize(Blob.substr(0, Blob.size() / 2))
          .has_value());
}

TEST(Snapshots, ConstraintRoundTrip) {
  ConstraintSnapshot S;
  S.insert("fp-1");
  S.insert("fp-2");
  std::string Blob = S.serialize();
  auto Back = ConstraintSnapshot::deserialize(Blob);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->serialize(), Blob);
  EXPECT_TRUE(Back->contains("fp-1"));
  EXPECT_FALSE(Back->contains("fp-3"));
  EXPECT_FALSE(ConstraintSnapshot::deserialize("").has_value());
  EXPECT_FALSE(ConstraintSnapshot::deserialize("c4-green-snapshot 99\n0\n")
                   .has_value());
  EXPECT_FALSE(
      ConstraintSnapshot::deserialize("c4-green-snapshot 1\n2\nfp-1\n")
          .has_value());
}

TEST(Snapshots, StoreConsultsOnlyTheBase) {
  IncrementalSnapshot Base;
  Base.addRecord("in-base", {false, false, 1, 0, 42});
  IncrementalStore Store(&Base);
  EXPECT_NE(Store.lookup("in-base"), nullptr);
  Store.record("fresh", {false, false, 2, 1, 43});
  // Determinism contract: the fresh overlay is invisible to lookups.
  EXPECT_EQ(Store.lookup("fresh"), nullptr);
  EXPECT_EQ(Store.hits(), 1u);
  EXPECT_EQ(Store.misses(), 1u);
  IncrementalSnapshot Out;
  Store.exportInto(Out);
  EXPECT_NE(Out.record("fresh"), nullptr);
  EXPECT_EQ(Out.record("in-base"), nullptr);
}

//===----------------------------------------------------------------------===//
// End-to-end differential: warm edit == plain cold
//===----------------------------------------------------------------------===//

/// The same normalization the bench differential applies (see
/// bench/bench_table1.cpp stripIncrementalValues): wall times, solver
/// resource telemetry, cache-state-dependent counters and model-chosen
/// counterexample witness text. Verdict structure and logical counters
/// stay, and must match byte for byte.
std::string stripVolatile(const std::string &Blob) {
  static const char *const Strip[] = {
      "backend_seconds",     "ssg_seconds",
      "enum_seconds",        "smt_seconds",
      "prefilter_seconds",   "incremental_seconds",
      "rlimit_spent",        "smt_retries",
      "smt_solves",          "sat_cache_hits",
      "sat_cache_misses",    "sat_assist_proven",
      "cond_cache_hits",     "cond_cache_misses",
      "txn_fingerprint_hits", "pair_verdicts_reused",
      "constraint_cache_hits", "constraint_cache_misses",
      "solver_ctx_reuses",   "v.ce",
  };
  std::string Out;
  size_t Pos = 0;
  while (Pos < Blob.size()) {
    size_t End = Blob.find('\n', Pos);
    if (End == std::string::npos)
      End = Blob.size();
    std::string Line = Blob.substr(Pos, End - Pos);
    std::string Key = Line.substr(0, Line.find(' '));
    bool Stripped = false;
    for (const char *S : Strip)
      if (Key == S) {
        Out += Key;
        Out += '\n';
        Stripped = true;
        break;
      }
    if (!Stripped) {
      Out += Line;
      Out += '\n';
    }
    Pos = End + 1;
  }
  return Out;
}

/// Renames the last `txn`-declared transaction of \p Source by appending
/// "_edited" — the invalidation-granularity litmus edit the bench uses.
std::string renameLastTxn(const std::string &Source) {
  size_t Decl = Source.rfind("\ntxn ");
  if (Decl == std::string::npos)
    return std::string();
  size_t NameBegin = Decl + 5;
  size_t NameEnd = NameBegin;
  while (NameEnd < Source.size() &&
         (std::isalnum(static_cast<unsigned char>(Source[NameEnd])) ||
          Source[NameEnd] == '_'))
    ++NameEnd;
  return Source.substr(0, NameEnd) + "_edited" + Source.substr(NameEnd);
}

PipelineResult analyzeSource(const std::string &Source, AnalysisCache *Cache,
                             bool UseIncremental = true) {
  CompiledProgram P = compile(Source);
  AnalyzerOptions O;
  O.UseIncremental = UseIncremental;
  return analyzeCached(*P.History, O, *P.Registry, Cache);
}

TEST(IncrementalDifferential, WarmEditMatchesPlainColdOnEveryExample) {
  std::vector<std::string> Sources;
  std::string ExampleDir = std::string(C4_SOURCE_DIR) + "/examples/c4l";
  if (DIR *Handle = ::opendir(ExampleDir.c_str())) {
    while (struct dirent *E = ::readdir(Handle)) {
      std::string N = E->d_name;
      if (N.size() > 4 && N.substr(N.size() - 4) == ".c4l")
        Sources.push_back(readFile(ExampleDir + "/" + N));
    }
    ::closedir(Handle);
  }
  ASSERT_FALSE(Sources.empty());

  // Per program, its own cache directory: incremental reuse is a
  // per-program story, and the per-example scoping keeps every warm run
  // a clean same-program differential against its plain cold reference
  // (same scoping as bench_table1 --incremental).
  uint64_t TxnHits = 0;
  unsigned Idx = 0;
  for (const std::string &S : Sources) {
    std::string Dir =
        freshDir(("differential" + std::to_string(Idx++)).c_str());
    // Cold-populate the incremental cache with the unedited program.
    {
      AnalysisCache Cache(Dir, /*Incremental=*/true);
      ASSERT_TRUE(Cache.enabled());
      analyzeSource(S, &Cache);
      EXPECT_GT(Cache.incrTxns(), 0u);
    }
    // Edit one transaction; a warm run through the populated cache
    // (reopened from disk, as a restarted tool would see it) must match a
    // plain cold run of the edited program.
    AnalysisCache Cache(Dir, /*Incremental=*/true);
    ASSERT_TRUE(Cache.enabled());
    EXPECT_TRUE(Cache.incremental());
    std::string Edited = renameLastTxn(S);
    ASSERT_FALSE(Edited.empty());
    PipelineResult Cold = analyzeSource(Edited, nullptr);
    PipelineResult Warm = analyzeSource(Edited, &Cache);
    EXPECT_EQ(stripVolatile(serializeResult(Warm.R)),
              stripVolatile(serializeResult(Cold.R)));
    TxnHits += Warm.R.TxnFingerprintHits;
  }
  // The rename left every transaction's content digest intact, so the
  // warm runs must actually have recognized them.
  EXPECT_GT(TxnHits, 0u);
}

TEST(IncrementalDifferential, NoIncrementalEscapeHatchAgreesWithPlain) {
  std::string Dir = freshDir("escape");
  std::string Source = readFile(std::string(C4_SOURCE_DIR) +
                                "/examples/c4l/uniqueness_bug.c4l");
  {
    AnalysisCache Cache(Dir, /*Incremental=*/true);
    ASSERT_TRUE(Cache.enabled());
    analyzeSource(Source, &Cache);
  }
  std::string Edited = renameLastTxn(Source);
  ASSERT_FALSE(Edited.empty());
  AnalysisCache Cache(Dir, /*Incremental=*/true);
  PipelineResult Plain = analyzeSource(Edited, nullptr);
  PipelineResult Off = analyzeSource(Edited, &Cache, /*UseIncremental=*/false);
  PipelineResult On = analyzeSource(Edited, &Cache, /*UseIncremental=*/true);
  // --no-incremental bypasses every reuse layer: no reuse counters at all.
  EXPECT_EQ(Off.R.TxnFingerprintHits, 0u);
  EXPECT_EQ(Off.R.ConstraintCacheHits + Off.R.ConstraintCacheMisses, 0u);
  // All three agree on verdicts and logical counters.
  EXPECT_EQ(stripVolatile(serializeResult(Off.R)),
            stripVolatile(serializeResult(Plain.R)));
  EXPECT_EQ(stripVolatile(serializeResult(On.R)),
            stripVolatile(serializeResult(Plain.R)));
}

} // namespace
