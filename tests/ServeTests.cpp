//===- tests/ServeTests.cpp - c4-serve protocol and cache contract --------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the real c4-serve binary (path injected as C4_SERVE_PATH) over
/// its stdin JSON-lines protocol: control ops, analysis replies, error
/// replies, shutdown, and the --cache-dir warm-path contract — a repeated
/// request must report a cache hit with an unchanged verdict, including
/// across a server restart. Also pins the c4-analyze --cache-dir contract:
/// warm stats output is byte-identical to cold modulo the per-run frontend
/// timing lines, and exit codes are preserved.
///
/// The ServeTcp/ServeUnix tests exercise the socket serving tier against
/// hostile and concurrent clients: abrupt RST disconnects mid-request
/// (the reply is counted dropped, the server lives), half-written
/// requests, a stampede of connections on one analysis fingerprint
/// (single-flight: exactly one backend run), admission-control
/// backpressure, and graceful drain on SIGTERM (every in-flight request
/// still answered, exit 0).
///
//===----------------------------------------------------------------------===//

#include "gtest/gtest.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

namespace {

std::string examplePath(const char *Name) {
  return std::string(C4_SOURCE_DIR) + "/examples/c4l/" + Name;
}

/// A cache directory name unique to this test process, so re-runs start
/// cold rather than finding a pre-warmed directory from a previous run.
std::string freshCacheDir(const char *Name) {
  return testing::TempDir() + Name + "." + std::to_string(::getpid());
}

void writeFile(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::trunc);
  Out << Bytes;
  ASSERT_TRUE(Out.good()) << Path;
}

/// Runs c4-serve with \p Requests on stdin (plus \p Flags), captures the
/// reply lines, and checks the exit code.
std::vector<std::string> runServe(const std::string &Requests,
                                  const std::string &Flags = "",
                                  int ExpectExit = 0) {
  std::string ReqPath = testing::TempDir() + "serve_req.jsonl";
  std::string OutPath = testing::TempDir() + "serve_out.jsonl";
  writeFile(ReqPath, Requests);
  std::string Cmd = std::string(C4_SERVE_PATH) + " " + Flags + " < " +
                    ReqPath + " > " + OutPath + " 2> /dev/null";
  int Status = std::system(Cmd.c_str());
  EXPECT_NE(Status, -1);
  EXPECT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(WEXITSTATUS(Status), ExpectExit);
  std::vector<std::string> Lines;
  std::ifstream In(OutPath);
  std::string Line;
  while (std::getline(In, Line))
    Lines.push_back(Line);
  return Lines;
}

/// The reply line echoing \p Id (completion order is not request order).
std::string replyFor(const std::vector<std::string> &Lines,
                     const std::string &Id) {
  std::string Needle = "{\"id\": " + Id + ",";
  for (const std::string &L : Lines)
    if (L.compare(0, Needle.size(), Needle) == 0)
      return L;
  ADD_FAILURE() << "no reply for id " << Id;
  return "";
}

bool contains(const std::string &Haystack, const std::string &Needle) {
  return Haystack.find(Needle) != std::string::npos;
}

TEST(Serve, PingStatsAndShutdown) {
  auto Lines = runServe("{\"id\": 1, \"op\": \"ping\"}\n"
                        "{\"id\": \"s\", \"op\": \"stats\"}\n"
                        "{\"id\": 2, \"op\": \"shutdown\"}\n");
  EXPECT_TRUE(contains(replyFor(Lines, "1"), "\"pong\": true"));
  std::string Stats = replyFor(Lines, "\"s\"");
  EXPECT_TRUE(contains(Stats, "\"cache_enabled\": false"));
  EXPECT_TRUE(contains(Stats, "\"verdict_hits\": 0"));
  // The shutdown ack is the last line.
  ASSERT_FALSE(Lines.empty());
  EXPECT_TRUE(contains(Lines.back(), "\"shutdown\": true"));
}

TEST(Serve, EofIsCleanShutdownToo) {
  auto Lines = runServe("{\"id\": 1, \"op\": \"ping\"}\n");
  ASSERT_EQ(Lines.size(), 1u);
  EXPECT_TRUE(contains(Lines[0], "\"pong\": true"));
}

TEST(Serve, AnalyzesInlineProgramAndFile) {
  auto Lines = runServe(
      "{\"id\": 1, \"program\": \"container map M;\\ntxn t(k) { "
      "M.put(k, 1); }\\n\"}\n"
      "{\"id\": 2, \"file\": \"" +
      examplePath("uniqueness_bug.c4l") + "\"}\n");
  std::string Clean = replyFor(Lines, "1");
  EXPECT_TRUE(contains(Clean, "\"ok\": true"));
  EXPECT_TRUE(contains(Clean, "\"cache_hit\": false"));
  EXPECT_TRUE(contains(Clean, "\"serializable\": true"));
  EXPECT_TRUE(contains(Clean, "\"file\": \"<inline>\""));
  std::string Buggy = replyFor(Lines, "2");
  EXPECT_TRUE(contains(Buggy, "\"ok\": true"));
  EXPECT_TRUE(contains(Buggy, "\"serializable\": false"));
}

TEST(Serve, PerRequestFailuresAreRepliesNotExits) {
  auto Lines = runServe(
      "this is not json\n"
      "{\"id\": 1}\n"
      "{\"id\": 2, \"program\": \"txn { not c4l\"}\n"
      "{\"id\": 3, \"file\": \"/does/not/exist.c4l\"}\n"
      "{\"id\": 4, \"op\": \"frobnicate\"}\n"
      "{\"id\": 5, \"program\": \"container map M;\\n\", \"max_k\": 0}\n"
      "{\"id\": 6, \"program\": \"container map M;\\n\", "
      "\"threads\": -1}\n");
  EXPECT_EQ(Lines.size(), 7u);
  for (const std::string &L : Lines)
    EXPECT_TRUE(contains(L, "\"ok\": false")) << L;
  EXPECT_TRUE(
      contains(replyFor(Lines, "1"), "needs \\\"program\\\" or \\\"file\\\""));
  EXPECT_TRUE(contains(replyFor(Lines, "3"), "cannot open"));
  EXPECT_TRUE(contains(replyFor(Lines, "4"), "unknown op"));
  EXPECT_TRUE(contains(replyFor(Lines, "5"), "max_k"));
  EXPECT_TRUE(contains(replyFor(Lines, "6"), "threads"));
}

/// Strips everything legitimately differing between a cold and a warm
/// reply: the envelope's cache_hit marker and the per-run frontend/pass
/// timings (always recomputed). Everything left must be byte-identical.
std::string stripTimings(const std::string &Reply) {
  size_t StatsPos = Reply.find("\"stats\":");
  EXPECT_NE(StatsPos, std::string::npos) << Reply;
  std::string Out;
  size_t Pos = StatsPos;
  while (Pos < Reply.size()) {
    size_t Key = Reply.find("_seconds\": ", Pos);
    if (Key == std::string::npos) {
      Out += Reply.substr(Pos);
      break;
    }
    size_t End = Reply.find_first_of(",}", Key);
    Out += Reply.substr(Pos, Key + 11 - Pos);
    Pos = End; // drop the timing value itself
  }
  return Out;
}

TEST(Serve, CacheHitOnRepeatAndAcrossRestart) {
  std::string CacheDir = freshCacheDir("serve_cache_restart");
  std::string Req = "{\"id\": 1, \"file\": \"" +
                    examplePath("fig11_add_follower.c4l") + "\"}\n";
  // One worker: FIFO processing, so the repeat is deterministically warm.
  std::string Flags = "--workers 1 --cache-dir " + CacheDir;

  auto First = runServe(Req + Req, Flags);
  ASSERT_EQ(First.size(), 2u);
  EXPECT_TRUE(contains(First[0], "\"cache_hit\": false"));
  EXPECT_TRUE(contains(First[1], "\"cache_hit\": true"));
  EXPECT_EQ(stripTimings(First[0]), stripTimings(First[1]));

  // A brand-new server process over the same directory hits immediately.
  auto Second = runServe(Req, Flags);
  ASSERT_EQ(Second.size(), 1u);
  EXPECT_TRUE(contains(Second[0], "\"cache_hit\": true"));
  EXPECT_EQ(stripTimings(Second[0]), stripTimings(First[0]));
}

TEST(Serve, DistinctOptionsMissDistinctly) {
  std::string CacheDir = freshCacheDir("serve_cache_opts");
  std::string File = examplePath("fig1_put_get.c4l");
  auto Lines = runServe(
      "{\"id\": 1, \"file\": \"" + File + "\"}\n" +
      "{\"id\": 2, \"file\": \"" + File + "\", \"max_k\": 2}\n" +
      "{\"id\": 3, \"file\": \"" + File + "\"}\n",
      "--workers 1 --cache-dir " + CacheDir);
  ASSERT_EQ(Lines.size(), 3u);
  EXPECT_TRUE(contains(Lines[0], "\"cache_hit\": false"));
  EXPECT_TRUE(contains(Lines[1], "\"cache_hit\": false")); // different key
  EXPECT_TRUE(contains(Lines[2], "\"cache_hit\": true"));
}

/// c4-analyze --cache-dir: warm output is byte-identical to cold modulo
/// the recomputed frontend timing lines, and the exit code is preserved.
TEST(CliCache, WarmStatsByteIdenticalAndExitPreserved) {
  std::string CacheDir = freshCacheDir("cli_cache");
  std::string ColdOut = testing::TempDir() + "cli_cold.json";
  std::string WarmOut = testing::TempDir() + "cli_warm.json";
  std::string Base = std::string(C4_ANALYZE_PATH) + " --stats-json --cache-dir " +
                     CacheDir + " " + examplePath("uniqueness_bug.c4l");

  int Cold = std::system((Base + " > " + ColdOut + " 2>/dev/null").c_str());
  int Warm = std::system((Base + " > " + WarmOut + " 2>/dev/null").c_str());
  ASSERT_TRUE(WIFEXITED(Cold) && WIFEXITED(Warm));
  EXPECT_EQ(WEXITSTATUS(Cold), 1); // violation exit, cold
  EXPECT_EQ(WEXITSTATUS(Warm), 1); // ...and warm

  // Filter out the five per-run frontend/pass timing lines; everything
  // else — every verdict, counter and backend timing — must match.
  auto Filter = [](const std::string &Path) {
    std::ifstream In(Path);
    std::string Line, Out;
    while (std::getline(In, Line))
      if (!(Line.find("_seconds\":") != std::string::npos &&
            (Line.find("frontend_") != std::string::npos ||
             Line.find("lex_") != std::string::npos ||
             Line.find("parse_") != std::string::npos ||
             Line.find("build_") != std::string::npos ||
             Line.find("pass_") != std::string::npos)))
        Out += Line + "\n";
    return Out;
  };
  std::string ColdFiltered = Filter(ColdOut);
  EXPECT_FALSE(ColdFiltered.empty());
  EXPECT_EQ(ColdFiltered, Filter(WarmOut));
}

//===----------------------------------------------------------------------===//
// The socket serving tier.
//===----------------------------------------------------------------------===//

/// A c4-serve child process listening on a socket. Kills the child if a
/// test bails before shutting it down cleanly.
struct ServeProc {
  pid_t Pid = -1;
  int Port = 0; ///< TCP port, when --tcp was used
  std::string ErrPath;

  ~ServeProc() {
    if (Pid > 0) {
      ::kill(Pid, SIGKILL);
      int St;
      ::waitpid(Pid, &St, 0);
    }
  }

  std::string errLog() const {
    std::ifstream In(ErrPath);
    std::stringstream SS;
    SS << In.rdbuf();
    return SS.str();
  }

  /// Reaps the child (it must exit within ~10s) and returns its exit code,
  /// or -1 on timeout/abnormal death.
  int waitExit() {
    for (int I = 0; I < 1000; ++I) {
      int St;
      pid_t R = ::waitpid(Pid, &St, WNOHANG);
      if (R == Pid) {
        Pid = -1;
        return WIFEXITED(St) ? WEXITSTATUS(St) : -1;
      }
      ::usleep(10 * 1000);
    }
    return -1;
  }
};

/// Spawns `c4-serve <Flags>` and waits until its "listening on" stderr
/// line appears; for --tcp ...:0 servers, parses the kernel-chosen port.
ServeProc spawnServe(const char *Name, const std::string &Flags) {
  ServeProc S;
  S.ErrPath = testing::TempDir() + Name + ".err." + std::to_string(::getpid());
  // `exec` so the pid is c4-serve itself, not the shell — the drain test
  // sends it SIGTERM.
  std::string Cmd =
      std::string("exec ") + C4_SERVE_PATH + " " + Flags + " 2> " + S.ErrPath;
  pid_t Pid = ::fork();
  if (Pid == 0) {
    ::execl("/bin/sh", "sh", "-c", Cmd.c_str(), static_cast<char *>(nullptr));
    _exit(127);
  }
  S.Pid = Pid;
  bool Tcp = Flags.find("--tcp") != std::string::npos;
  for (int I = 0; I < 400; ++I) {
    std::string Log = S.errLog();
    size_t Pos = Log.find("listening on ");
    if (Pos != std::string::npos) {
      if (!Tcp)
        return S;
      size_t Colon = Log.find(':', Pos);
      if (Colon != std::string::npos) {
        S.Port = std::atoi(Log.c_str() + Colon + 1);
        return S;
      }
    }
    ::usleep(25 * 1000);
  }
  ADD_FAILURE() << "server did not come up; stderr: " << S.errLog();
  return S;
}

int connectTcp(int Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  ::inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

int connectUnix(const std::string &Path) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

void sendAll(int Fd, const std::string &Bytes) {
  size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t N =
        ::send(Fd, Bytes.data() + Off, Bytes.size() - Off, MSG_NOSIGNAL);
    if (N < 0 && errno == EINTR)
      continue;
    ASSERT_GT(N, 0) << "send: " << std::strerror(errno);
    Off += static_cast<size_t>(N);
  }
}

/// Reads one newline-terminated reply (newline stripped). Empty string on
/// EOF or after \p TimeoutMs of silence.
std::string recvLine(int Fd, int TimeoutMs = 30000) {
  std::string Line;
  for (;;) {
    char C;
    ssize_t N = ::recv(Fd, &C, 1, MSG_DONTWAIT);
    if (N == 1) {
      if (C == '\n')
        return Line;
      Line += C;
      continue;
    }
    if (N == 0)
      return "";
    if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
      return "";
    pollfd P{Fd, POLLIN, 0};
    if (::poll(&P, 1, TimeoutMs) <= 0)
      return "";
  }
}

/// Closes \p Fd with SO_LINGER{on,0}: the kernel sends RST, the hardest
/// form of client disappearance.
void rstClose(int Fd) {
  linger L{1, 0};
  ::setsockopt(Fd, SOL_SOCKET, SO_LINGER, &L, sizeof(L));
  ::close(Fd);
}

/// Extracts the integer value of \p Key from a one-line JSON reply.
long statField(const std::string &Reply, const std::string &Key) {
  size_t Pos = Reply.find("\"" + Key + "\": ");
  if (Pos == std::string::npos)
    return -1;
  return std::atol(Reply.c_str() + Pos + Key.size() + 4);
}

/// One stats round-trip on an existing connection.
std::string statsOn(int Fd) {
  sendAll(Fd, "{\"id\": \"st\", \"op\": \"stats\"}\n");
  return recvLine(Fd);
}

TEST(ServeTcp, SurvivesAbruptDisconnectAndCountsDroppedReply) {
  ServeProc S = spawnServe("tcp_rst", "--tcp 127.0.0.1:0 --workers 2");
  ASSERT_GT(S.Port, 0);

  // Pipeline a ping with the analysis request: the pong proves the server
  // has read (and admitted) the batch. Then vanish with an RST before the
  // analysis can possibly have been delivered.
  int Victim = connectTcp(S.Port);
  ASSERT_GE(Victim, 0);
  sendAll(Victim, "{\"id\": \"p\", \"op\": \"ping\"}\n{\"id\": \"a\", "
                  "\"file\": \"" +
                      examplePath("fig11_add_follower.c4l") + "\"}\n");
  EXPECT_TRUE(contains(recvLine(Victim), "\"pong\": true"));
  rstClose(Victim);

  // The server must still be fully alive (no SIGPIPE death) and must
  // eventually account the undeliverable reply.
  int Probe = connectTcp(S.Port);
  ASSERT_GE(Probe, 0);
  long Dropped = 0;
  for (int I = 0; I < 600 && Dropped < 1; ++I) {
    std::string Stats = statsOn(Probe);
    ASSERT_TRUE(contains(Stats, "\"ok\": true")) << Stats;
    Dropped = statField(Stats, "replies_dropped");
    if (Dropped < 1)
      ::usleep(50 * 1000);
  }
  EXPECT_EQ(Dropped, 1);

  sendAll(Probe, "{\"id\": 9, \"op\": \"shutdown\"}\n");
  EXPECT_TRUE(contains(recvLine(Probe), "\"shutdown\": true"));
  ::close(Probe);
  EXPECT_EQ(S.waitExit(), 0);
}

TEST(ServeTcp, HalfWrittenRequestThenCloseIsHarmless) {
  ServeProc S = spawnServe("tcp_half", "--tcp 127.0.0.1:0 --workers 1");
  ASSERT_GT(S.Port, 0);

  // A request cut off mid-line with no newline, then a clean close: no
  // reply owed, nothing dropped, nothing leaked.
  int Half = connectTcp(S.Port);
  ASSERT_GE(Half, 0);
  sendAll(Half, "{\"id\": 1, \"program\": \"container ma");
  ::close(Half);

  int Probe = connectTcp(S.Port);
  ASSERT_GE(Probe, 0);
  sendAll(Probe, "{\"id\": 2, \"op\": \"ping\"}\n");
  EXPECT_TRUE(contains(recvLine(Probe), "\"pong\": true"));
  std::string Stats = statsOn(Probe);
  EXPECT_EQ(statField(Stats, "replies_dropped"), 0) << Stats;
  EXPECT_EQ(statField(Stats, "connections"), 2) << Stats;

  sendAll(Probe, "{\"id\": 3, \"op\": \"shutdown\"}\n");
  EXPECT_TRUE(contains(recvLine(Probe), "\"shutdown\": true"));
  ::close(Probe);
  EXPECT_EQ(S.waitExit(), 0);
}

TEST(ServeTcp, StampedeOnOneFingerprintRunsBackendOnce) {
  std::string CacheDir = freshCacheDir("tcp_stampede");
  ServeProc S = spawnServe("tcp_stampede", "--tcp 127.0.0.1:0 --workers 8 "
                                           "--cache-dir " +
                                               CacheDir);
  ASSERT_GT(S.Port, 0);

  // Eight connections hammer the same (program, options) fingerprint at
  // once. Between the single-flight layer and the verdict cache, the
  // backend may run exactly once; every reply carries the same verdict.
  constexpr int N = 8;
  std::string Req = "{\"id\": 1, \"file\": \"" +
                    examplePath("fig11_add_follower.c4l") + "\"}\n";
  int Fds[N];
  for (int I = 0; I < N; ++I) {
    Fds[I] = connectTcp(S.Port);
    ASSERT_GE(Fds[I], 0);
  }
  for (int I = 0; I < N; ++I)
    sendAll(Fds[I], Req);
  std::vector<std::string> Replies;
  for (int I = 0; I < N; ++I) {
    Replies.push_back(recvLine(Fds[I]));
    EXPECT_TRUE(contains(Replies.back(), "\"ok\": true")) << Replies.back();
    ::close(Fds[I]);
  }
  for (int I = 1; I < N; ++I)
    EXPECT_EQ(stripTimings(Replies[0]), stripTimings(Replies[I]));

  int Probe = connectTcp(S.Port);
  ASSERT_GE(Probe, 0);
  std::string Stats = statsOn(Probe);
  EXPECT_EQ(statField(Stats, "backend_runs"), 1) << Stats;
  EXPECT_EQ(statField(Stats, "replies_dropped"), 0) << Stats;

  sendAll(Probe, "{\"id\": 2, \"op\": \"shutdown\"}\n");
  EXPECT_TRUE(contains(recvLine(Probe), "\"shutdown\": true"));
  ::close(Probe);
  EXPECT_EQ(S.waitExit(), 0);
}

TEST(ServeTcp, OverloadGetsBackpressureReplyNotQueue) {
  ServeProc S = spawnServe("tcp_overload",
                           "--tcp 127.0.0.1:0 --workers 1 --max-inflight 1");
  ASSERT_GT(S.Port, 0);

  // Three analyses in one packet against a one-slot server: the first is
  // admitted; the loop thread sees the other two while it is still in
  // flight and bounces them immediately with the backpressure shape.
  int Fd = connectTcp(S.Port);
  ASSERT_GE(Fd, 0);
  std::string File = examplePath("fig11_add_follower.c4l");
  sendAll(Fd, "{\"id\": 1, \"file\": \"" + File + "\"}\n{\"id\": 2, \"file\": \"" +
                  File + "\"}\n{\"id\": 3, \"file\": \"" + File + "\"}\n");
  std::vector<std::string> Lines;
  for (int I = 0; I < 3; ++I)
    Lines.push_back(recvLine(Fd));
  std::string Admitted = replyFor(Lines, "1");
  EXPECT_TRUE(contains(Admitted, "\"ok\": true")) << Admitted;
  for (const char *Id : {"2", "3"}) {
    std::string Bounced = replyFor(Lines, Id);
    EXPECT_TRUE(contains(Bounced, "\"ok\": false")) << Bounced;
    EXPECT_TRUE(contains(Bounced, "\"overloaded\": true")) << Bounced;
  }
  std::string Stats = statsOn(Fd);
  EXPECT_EQ(statField(Stats, "overload_rejects"), 2) << Stats;

  sendAll(Fd, "{\"id\": 4, \"op\": \"shutdown\"}\n");
  EXPECT_TRUE(contains(recvLine(Fd), "\"shutdown\": true"));
  ::close(Fd);
  EXPECT_EQ(S.waitExit(), 0);
}

TEST(ServeTcp, SigtermDrainsInflightThenExitsZero) {
  std::string CacheDir = freshCacheDir("tcp_drain");
  ServeProc S = spawnServe("tcp_drain", "--tcp 127.0.0.1:0 --workers 2 "
                                        "--cache-dir " +
                                            CacheDir);
  ASSERT_GT(S.Port, 0);

  // Three clients each get an analysis admitted (the pong proves it was
  // read), then SIGTERM lands mid-flight. Graceful drain: all three
  // replies are still delivered, then the server exits 0.
  constexpr int N = 3;
  const char *Files[N] = {"fig11_add_follower.c4l", "fig1_put_get.c4l",
                          "uniqueness_bug.c4l"};
  int Fds[N];
  for (int I = 0; I < N; ++I) {
    Fds[I] = connectTcp(S.Port);
    ASSERT_GE(Fds[I], 0);
    sendAll(Fds[I], "{\"id\": \"p\", \"op\": \"ping\"}\n{\"id\": \"a\", "
                    "\"file\": \"" +
                        examplePath(Files[I]) + "\"}\n");
    EXPECT_TRUE(contains(recvLine(Fds[I]), "\"pong\": true"));
  }
  ASSERT_EQ(::kill(S.Pid, SIGTERM), 0);

  for (int I = 0; I < N; ++I) {
    std::string Reply = recvLine(Fds[I]);
    EXPECT_TRUE(contains(Reply, "\"id\": \"a\"")) << Reply;
    EXPECT_TRUE(contains(Reply, "\"ok\": true")) << Reply;
    // Drain closes the connection once everything owed is delivered.
    EXPECT_EQ(recvLine(Fds[I]), "");
    ::close(Fds[I]);
  }
  EXPECT_EQ(S.waitExit(), 0);
  EXPECT_TRUE(contains(S.errLog(), "draining (signal)")) << S.errLog();
  // Drain refuses new connections (accept sockets are closed first).
  EXPECT_LT(connectTcp(S.Port), 0);
}

TEST(ServeUnix, BasicFlowOverUnixSocket) {
  std::string Path = testing::TempDir() + "c4serve." +
                     std::to_string(::getpid()) + ".sock";
  ServeProc S = spawnServe("unix_basic", "--socket " + Path + " --workers 2");
  ASSERT_GT(S.Pid, 0);

  int Fd = connectUnix(Path);
  ASSERT_GE(Fd, 0);
  sendAll(Fd, "{\"id\": 1, \"op\": \"ping\"}\n{\"id\": 2, \"program\": "
              "\"container map M;\\ntxn t(k) { M.put(k, 1); }\\n\"}\n");
  EXPECT_TRUE(contains(recvLine(Fd), "\"pong\": true"));
  std::string Reply = recvLine(Fd);
  EXPECT_TRUE(contains(Reply, "\"ok\": true")) << Reply;
  EXPECT_TRUE(contains(Reply, "\"serializable\": true")) << Reply;

  sendAll(Fd, "{\"id\": 3, \"op\": \"shutdown\"}\n");
  EXPECT_TRUE(contains(recvLine(Fd), "\"shutdown\": true"));
  ::close(Fd);
  EXPECT_EQ(S.waitExit(), 0);
  // The socket file is removed on drain.
  EXPECT_LT(connectUnix(Path), 0);
}

TEST(CliCache, UnusableCacheDirStillAnalyzes) {
  // Point --cache-dir at a file: the CLI must warn and run cold with the
  // normal exit code, not fail.
  std::string NotADir = testing::TempDir() + "cli_cache_notadir";
  writeFile(NotADir, "occupied");
  std::string Cmd = std::string(C4_ANALYZE_PATH) + " --cache-dir " + NotADir +
                    " " + examplePath("highscore_fixed.c4l") +
                    " > /dev/null 2>/dev/null";
  int Status = std::system(Cmd.c_str());
  ASSERT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(WEXITSTATUS(Status), 0);
}

} // namespace
