//===- tests/ServeTests.cpp - c4-serve protocol and cache contract --------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the real c4-serve binary (path injected as C4_SERVE_PATH) over
/// its stdin JSON-lines protocol: control ops, analysis replies, error
/// replies, shutdown, and the --cache-dir warm-path contract — a repeated
/// request must report a cache hit with an unchanged verdict, including
/// across a server restart. Also pins the c4-analyze --cache-dir contract:
/// warm stats output is byte-identical to cold modulo the per-run frontend
/// timing lines, and exit codes are preserved.
///
//===----------------------------------------------------------------------===//

#include "gtest/gtest.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

namespace {

std::string examplePath(const char *Name) {
  return std::string(C4_SOURCE_DIR) + "/examples/c4l/" + Name;
}

/// A cache directory name unique to this test process, so re-runs start
/// cold rather than finding a pre-warmed directory from a previous run.
std::string freshCacheDir(const char *Name) {
  return testing::TempDir() + Name + "." + std::to_string(::getpid());
}

void writeFile(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::trunc);
  Out << Bytes;
  ASSERT_TRUE(Out.good()) << Path;
}

/// Runs c4-serve with \p Requests on stdin (plus \p Flags), captures the
/// reply lines, and checks the exit code.
std::vector<std::string> runServe(const std::string &Requests,
                                  const std::string &Flags = "",
                                  int ExpectExit = 0) {
  std::string ReqPath = testing::TempDir() + "serve_req.jsonl";
  std::string OutPath = testing::TempDir() + "serve_out.jsonl";
  writeFile(ReqPath, Requests);
  std::string Cmd = std::string(C4_SERVE_PATH) + " " + Flags + " < " +
                    ReqPath + " > " + OutPath + " 2> /dev/null";
  int Status = std::system(Cmd.c_str());
  EXPECT_NE(Status, -1);
  EXPECT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(WEXITSTATUS(Status), ExpectExit);
  std::vector<std::string> Lines;
  std::ifstream In(OutPath);
  std::string Line;
  while (std::getline(In, Line))
    Lines.push_back(Line);
  return Lines;
}

/// The reply line echoing \p Id (completion order is not request order).
std::string replyFor(const std::vector<std::string> &Lines,
                     const std::string &Id) {
  std::string Needle = "{\"id\": " + Id + ",";
  for (const std::string &L : Lines)
    if (L.compare(0, Needle.size(), Needle) == 0)
      return L;
  ADD_FAILURE() << "no reply for id " << Id;
  return "";
}

bool contains(const std::string &Haystack, const std::string &Needle) {
  return Haystack.find(Needle) != std::string::npos;
}

TEST(Serve, PingStatsAndShutdown) {
  auto Lines = runServe("{\"id\": 1, \"op\": \"ping\"}\n"
                        "{\"id\": \"s\", \"op\": \"stats\"}\n"
                        "{\"id\": 2, \"op\": \"shutdown\"}\n");
  EXPECT_TRUE(contains(replyFor(Lines, "1"), "\"pong\": true"));
  std::string Stats = replyFor(Lines, "\"s\"");
  EXPECT_TRUE(contains(Stats, "\"cache_enabled\": false"));
  EXPECT_TRUE(contains(Stats, "\"verdict_hits\": 0"));
  // The shutdown ack is the last line.
  ASSERT_FALSE(Lines.empty());
  EXPECT_TRUE(contains(Lines.back(), "\"shutdown\": true"));
}

TEST(Serve, EofIsCleanShutdownToo) {
  auto Lines = runServe("{\"id\": 1, \"op\": \"ping\"}\n");
  ASSERT_EQ(Lines.size(), 1u);
  EXPECT_TRUE(contains(Lines[0], "\"pong\": true"));
}

TEST(Serve, AnalyzesInlineProgramAndFile) {
  auto Lines = runServe(
      "{\"id\": 1, \"program\": \"container map M;\\ntxn t(k) { "
      "M.put(k, 1); }\\n\"}\n"
      "{\"id\": 2, \"file\": \"" +
      examplePath("uniqueness_bug.c4l") + "\"}\n");
  std::string Clean = replyFor(Lines, "1");
  EXPECT_TRUE(contains(Clean, "\"ok\": true"));
  EXPECT_TRUE(contains(Clean, "\"cache_hit\": false"));
  EXPECT_TRUE(contains(Clean, "\"serializable\": true"));
  EXPECT_TRUE(contains(Clean, "\"file\": \"<inline>\""));
  std::string Buggy = replyFor(Lines, "2");
  EXPECT_TRUE(contains(Buggy, "\"ok\": true"));
  EXPECT_TRUE(contains(Buggy, "\"serializable\": false"));
}

TEST(Serve, PerRequestFailuresAreRepliesNotExits) {
  auto Lines = runServe(
      "this is not json\n"
      "{\"id\": 1}\n"
      "{\"id\": 2, \"program\": \"txn { not c4l\"}\n"
      "{\"id\": 3, \"file\": \"/does/not/exist.c4l\"}\n"
      "{\"id\": 4, \"op\": \"frobnicate\"}\n"
      "{\"id\": 5, \"program\": \"container map M;\\n\", \"max_k\": 0}\n"
      "{\"id\": 6, \"program\": \"container map M;\\n\", "
      "\"threads\": -1}\n");
  EXPECT_EQ(Lines.size(), 7u);
  for (const std::string &L : Lines)
    EXPECT_TRUE(contains(L, "\"ok\": false")) << L;
  EXPECT_TRUE(
      contains(replyFor(Lines, "1"), "needs \\\"program\\\" or \\\"file\\\""));
  EXPECT_TRUE(contains(replyFor(Lines, "3"), "cannot open"));
  EXPECT_TRUE(contains(replyFor(Lines, "4"), "unknown op"));
  EXPECT_TRUE(contains(replyFor(Lines, "5"), "max_k"));
  EXPECT_TRUE(contains(replyFor(Lines, "6"), "threads"));
}

/// Strips everything legitimately differing between a cold and a warm
/// reply: the envelope's cache_hit marker and the per-run frontend/pass
/// timings (always recomputed). Everything left must be byte-identical.
std::string stripTimings(const std::string &Reply) {
  size_t StatsPos = Reply.find("\"stats\":");
  EXPECT_NE(StatsPos, std::string::npos) << Reply;
  std::string Out;
  size_t Pos = StatsPos;
  while (Pos < Reply.size()) {
    size_t Key = Reply.find("_seconds\": ", Pos);
    if (Key == std::string::npos) {
      Out += Reply.substr(Pos);
      break;
    }
    size_t End = Reply.find_first_of(",}", Key);
    Out += Reply.substr(Pos, Key + 11 - Pos);
    Pos = End; // drop the timing value itself
  }
  return Out;
}

TEST(Serve, CacheHitOnRepeatAndAcrossRestart) {
  std::string CacheDir = freshCacheDir("serve_cache_restart");
  std::string Req = "{\"id\": 1, \"file\": \"" +
                    examplePath("fig11_add_follower.c4l") + "\"}\n";
  // One worker: FIFO processing, so the repeat is deterministically warm.
  std::string Flags = "--workers 1 --cache-dir " + CacheDir;

  auto First = runServe(Req + Req, Flags);
  ASSERT_EQ(First.size(), 2u);
  EXPECT_TRUE(contains(First[0], "\"cache_hit\": false"));
  EXPECT_TRUE(contains(First[1], "\"cache_hit\": true"));
  EXPECT_EQ(stripTimings(First[0]), stripTimings(First[1]));

  // A brand-new server process over the same directory hits immediately.
  auto Second = runServe(Req, Flags);
  ASSERT_EQ(Second.size(), 1u);
  EXPECT_TRUE(contains(Second[0], "\"cache_hit\": true"));
  EXPECT_EQ(stripTimings(Second[0]), stripTimings(First[0]));
}

TEST(Serve, DistinctOptionsMissDistinctly) {
  std::string CacheDir = freshCacheDir("serve_cache_opts");
  std::string File = examplePath("fig1_put_get.c4l");
  auto Lines = runServe(
      "{\"id\": 1, \"file\": \"" + File + "\"}\n" +
      "{\"id\": 2, \"file\": \"" + File + "\", \"max_k\": 2}\n" +
      "{\"id\": 3, \"file\": \"" + File + "\"}\n",
      "--workers 1 --cache-dir " + CacheDir);
  ASSERT_EQ(Lines.size(), 3u);
  EXPECT_TRUE(contains(Lines[0], "\"cache_hit\": false"));
  EXPECT_TRUE(contains(Lines[1], "\"cache_hit\": false")); // different key
  EXPECT_TRUE(contains(Lines[2], "\"cache_hit\": true"));
}

/// c4-analyze --cache-dir: warm output is byte-identical to cold modulo
/// the recomputed frontend timing lines, and the exit code is preserved.
TEST(CliCache, WarmStatsByteIdenticalAndExitPreserved) {
  std::string CacheDir = freshCacheDir("cli_cache");
  std::string ColdOut = testing::TempDir() + "cli_cold.json";
  std::string WarmOut = testing::TempDir() + "cli_warm.json";
  std::string Base = std::string(C4_ANALYZE_PATH) + " --stats-json --cache-dir " +
                     CacheDir + " " + examplePath("uniqueness_bug.c4l");

  int Cold = std::system((Base + " > " + ColdOut + " 2>/dev/null").c_str());
  int Warm = std::system((Base + " > " + WarmOut + " 2>/dev/null").c_str());
  ASSERT_TRUE(WIFEXITED(Cold) && WIFEXITED(Warm));
  EXPECT_EQ(WEXITSTATUS(Cold), 1); // violation exit, cold
  EXPECT_EQ(WEXITSTATUS(Warm), 1); // ...and warm

  // Filter out the five per-run frontend/pass timing lines; everything
  // else — every verdict, counter and backend timing — must match.
  auto Filter = [](const std::string &Path) {
    std::ifstream In(Path);
    std::string Line, Out;
    while (std::getline(In, Line))
      if (!(Line.find("_seconds\":") != std::string::npos &&
            (Line.find("frontend_") != std::string::npos ||
             Line.find("lex_") != std::string::npos ||
             Line.find("parse_") != std::string::npos ||
             Line.find("build_") != std::string::npos ||
             Line.find("pass_") != std::string::npos)))
        Out += Line + "\n";
    return Out;
  };
  std::string ColdFiltered = Filter(ColdOut);
  EXPECT_FALSE(ColdFiltered.empty());
  EXPECT_EQ(ColdFiltered, Filter(WarmOut));
}

TEST(CliCache, UnusableCacheDirStillAnalyzes) {
  // Point --cache-dir at a file: the CLI must warn and run cold with the
  // normal exit code, not fail.
  std::string NotADir = testing::TempDir() + "cli_cache_notadir";
  writeFile(NotADir, "occupied");
  std::string Cmd = std::string(C4_ANALYZE_PATH) + " --cache-dir " + NotADir +
                    " " + examplePath("highscore_fixed.c4l") +
                    " > /dev/null 2>/dev/null";
  int Status = std::system(Cmd.c_str());
  ASSERT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(WEXITSTATUS(Status), 0);
}

} // namespace
