//===- tests/AbstractTests.cpp - Abstract history & concretization --------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests abstract histories (Definition 1) and the concretization relation:
/// the Figure 7a abstract history of the put/get program with session-local
/// keys, and a Figure 11-style transaction with a control-flow guard and an
/// inferred argument equality.
///
//===----------------------------------------------------------------------===//

#include "abstract/AbstractHistory.h"
#include "abstract/Concretize.h"

#include <gtest/gtest.h>

using namespace c4;

namespace {

class AbstractFixture : public ::testing::Test {
protected:
  AbstractFixture() { M = Sch.addContainer("M", Reg.lookup("map")); }

  unsigned op(const char *Name) {
    const DataTypeSpec *T = Sch.container(M).Type;
    return T->opIndex(*T->findOp(Name));
  }

  /// Figure 7a: txn P = put(u,?), txn G = get(u):?, u session-local.
  AbstractHistory buildFig7a() {
    AbstractHistory A(Sch);
    unsigned U = A.addLocalVar();
    unsigned P = A.addTransaction("P");
    unsigned Put = A.addEvent(P, M, op("put"), {AbsFact::localVar(U)});
    A.addEo(A.entry(P), Put);
    unsigned G = A.addTransaction("G");
    unsigned Get = A.addEvent(G, M, op("get"), {AbsFact::localVar(U)});
    A.addEo(A.entry(G), Get);
    A.allowAllSo();
    return A;
  }

  TypeRegistry Reg;
  Schema Sch;
  unsigned M = 0;
};

} // namespace

TEST_F(AbstractFixture, BasicStructure) {
  AbstractHistory A = buildFig7a();
  EXPECT_EQ(A.numTxns(), 2u);
  EXPECT_EQ(A.numEvents(), 4u); // two markers + put + get
  EXPECT_EQ(A.numStoreEvents(), 2u);
  EXPECT_TRUE(A.event(A.entry(0)).isMarker());
  EXPECT_TRUE(A.maySo(0, 1));
  EXPECT_TRUE(A.maySo(1, 0));
  EXPECT_TRUE(A.maySo(0, 0));
}

TEST_F(AbstractFixture, EoReachability) {
  AbstractHistory A(Sch);
  unsigned T = A.addTransaction("T");
  unsigned E1 = A.addEvent(T, M, op("get"), {});
  unsigned E2 = A.addEvent(T, M, op("put"), {});
  A.addEo(A.entry(T), E1);
  A.addEo(E1, E2);
  EXPECT_TRUE(A.eoReaches(A.entry(T), E2));
  EXPECT_TRUE(A.eoReaches(E1, E2));
  EXPECT_FALSE(A.eoReaches(E2, E1));
}

TEST_F(AbstractFixture, ResolveFactsSeparatesSessions) {
  AbstractHistory A = buildFig7a();
  unsigned PutEvent = 1; // entry is 0
  EventFacts F0 = A.resolveFacts(PutEvent, /*SessionTag=*/0);
  EventFacts F1 = A.resolveFacts(PutEvent, /*SessionTag=*/1);
  ASSERT_EQ(F0.size(), 2u); // put has slots (k, v)
  EXPECT_EQ(F0[0].Kind, ArgFact::Symbolic);
  EXPECT_NE(F0[0].Symbol, F1[0].Symbol);
  EXPECT_EQ(F0[1].Kind, ArgFact::Free);
}

TEST_F(AbstractFixture, SameSessionKeysConcretize) {
  AbstractHistory A = buildFig7a();
  // Session 1: put(1,5); get(1):0 — same key within the session.
  History H(Sch);
  unsigned S1 = H.addSession();
  unsigned T0 = H.beginTransaction(S1);
  H.append(T0, M, op("put"), {1, 5});
  unsigned T1 = H.beginTransaction(S1);
  H.append(T1, M, op("get"), {1}, 0);
  std::optional<ConcretizationModel> Model = findConcretization(H, A);
  ASSERT_TRUE(Model.has_value());
  EXPECT_TRUE(isConcretization(H, A, *Model));
  EXPECT_EQ(Model->TxnMap[T0], 0u);
  EXPECT_EQ(Model->TxnMap[T1], 1u);
  EXPECT_EQ(Model->LocalVals[S1][0], 1);
}

TEST_F(AbstractFixture, CrossKeySessionDoesNotConcretize) {
  AbstractHistory A = buildFig7a();
  // put(1,...) then get(2) in ONE session contradicts the shared local key.
  History H(Sch);
  unsigned S1 = H.addSession();
  unsigned T0 = H.beginTransaction(S1);
  H.append(T0, M, op("put"), {1, 5});
  unsigned T1 = H.beginTransaction(S1);
  H.append(T1, M, op("get"), {2}, 0);
  (void)T0;
  (void)T1;
  EXPECT_FALSE(findConcretization(H, A).has_value());
}

TEST_F(AbstractFixture, DifferentSessionsMayUseDifferentKeys) {
  AbstractHistory A = buildFig7a();
  History H(Sch);
  unsigned S1 = H.addSession(), S2 = H.addSession();
  unsigned T0 = H.beginTransaction(S1);
  H.append(T0, M, op("put"), {1, 5});
  unsigned T1 = H.beginTransaction(S2);
  H.append(T1, M, op("get"), {2}, 0);
  (void)T0;
  (void)T1;
  EXPECT_TRUE(findConcretization(H, A).has_value());
}

TEST_F(AbstractFixture, GlobalVarForcesEqualityAcrossSessions) {
  // Same program but with u ∈ VarG: all sessions must agree on the key.
  AbstractHistory A(Sch);
  unsigned U = A.addGlobalVar();
  unsigned P = A.addTransaction("P");
  unsigned Put = A.addEvent(P, M, op("put"), {AbsFact::globalVar(U)});
  A.addEo(A.entry(P), Put);
  unsigned G = A.addTransaction("G");
  unsigned Get = A.addEvent(G, M, op("get"), {AbsFact::globalVar(U)});
  A.addEo(A.entry(G), Get);
  A.allowAllSo();

  History H(Sch);
  unsigned S1 = H.addSession(), S2 = H.addSession();
  unsigned T0 = H.beginTransaction(S1);
  H.append(T0, M, op("put"), {1, 5});
  unsigned T1 = H.beginTransaction(S2);
  H.append(T1, M, op("get"), {2}, 0);
  (void)T0;
  (void)T1;
  EXPECT_FALSE(findConcretization(H, A).has_value());

  History H2(Sch);
  unsigned S1b = H2.addSession(), S2b = H2.addSession();
  unsigned T0b = H2.beginTransaction(S1b);
  H2.append(T0b, M, op("put"), {1, 5});
  unsigned T1b = H2.beginTransaction(S2b);
  H2.append(T1b, M, op("get"), {1}, 0);
  (void)T0b;
  (void)T1b;
  EXPECT_TRUE(findConcretization(H2, A).has_value());
}

TEST_F(AbstractFixture, SessionOrderRestrictionsEnforced) {
  AbstractHistory A = buildFig7a();
  // Only P -> G allowed; G -> P forbidden.
  A.setMaySo(0, 0, false);
  A.setMaySo(1, 1, false);
  A.setMaySo(1, 0, false);

  History H(Sch);
  unsigned S1 = H.addSession();
  unsigned T0 = H.beginTransaction(S1);
  H.append(T0, M, op("get"), {1}, 0);
  unsigned T1 = H.beginTransaction(S1);
  H.append(T1, M, op("put"), {1, 5});
  (void)T0;
  (void)T1;
  EXPECT_FALSE(findConcretization(H, A).has_value());
}

namespace {

/// Builds the Figure 11 addFollower transaction:
///   entry -> contains(n):b ; [b=true]  add(n, flwrs, m) -> exit
///                            [b=false] exit
/// with the inferred equality contains.arg0 = add.arg0.
struct AddFollowerParts {
  AbstractHistory A;
  unsigned Txn, Contains, Add;
};

} // namespace

class GuardFixture : public AbstractFixture {
protected:
  static constexpr int64_t FlwrsField = 10;

  AddFollowerParts buildAddFollower() {
    Schema &S = Sch2;
    AbstractHistory A(S);
    unsigned T = A.addTransaction("addFollower");
    unsigned Contains = A.addEvent(T, Users, opT("contains"), {});
    unsigned Add = A.addEvent(
        T, Users, opT("add"),
        {AbsFact::free(), AbsFact::constant(FlwrsField)});
    unsigned Exit = A.addMarker(T, "exit");
    A.addEo(A.entry(T), Contains);
    // contains has slots (r, ret); ret is slot 1.
    A.addEo(Contains, Add,
            Cond::eq(Term::argSrc(1), Term::constant(1)));
    A.addEo(Add, Exit);
    A.addEo(Contains, Exit,
            Cond::eq(Term::argSrc(1), Term::constant(0)));
    A.addInv(Contains, Add, Cond::eq(Term::argSrc(0), Term::argTgt(0)));
    A.allowAllSo();
    return {std::move(A), T, Contains, Add};
  }

  unsigned opT(const char *Name) {
    const DataTypeSpec *T = Sch2.container(Users).Type;
    return T->opIndex(*T->findOp(Name));
  }

  void SetUp() override {
    Users = Sch2.addContainer("Users", Reg.lookup("table"));
  }

  Schema Sch2;
  unsigned Users = 0;
};

TEST_F(GuardFixture, GuardAdmitsTrueBranch) {
  AddFollowerParts P = buildAddFollower();
  History H(Sch2);
  unsigned S1 = H.addSession();
  unsigned T0 = H.beginTransaction(S1);
  H.append(T0, Users, opT("contains"), {5}, 1);
  H.append(T0, Users, opT("add"), {5, FlwrsField, 9});
  EXPECT_TRUE(findConcretization(H, P.A).has_value());
}

TEST_F(GuardFixture, GuardRejectsAddAfterFalseContains) {
  AddFollowerParts P = buildAddFollower();
  History H(Sch2);
  unsigned S1 = H.addSession();
  unsigned T0 = H.beginTransaction(S1);
  H.append(T0, Users, opT("contains"), {5}, 0);
  H.append(T0, Users, opT("add"), {5, FlwrsField, 9});
  EXPECT_FALSE(findConcretization(H, P.A).has_value());
}

TEST_F(GuardFixture, FalseBranchAloneConcretizes) {
  AddFollowerParts P = buildAddFollower();
  History H(Sch2);
  unsigned S1 = H.addSession();
  unsigned T0 = H.beginTransaction(S1);
  H.append(T0, Users, opT("contains"), {5}, 0);
  EXPECT_TRUE(findConcretization(H, P.A).has_value());
}

TEST_F(GuardFixture, InvariantRejectsMismatchedRows) {
  AddFollowerParts P = buildAddFollower();
  History H(Sch2);
  unsigned S1 = H.addSession();
  unsigned T0 = H.beginTransaction(S1);
  H.append(T0, Users, opT("contains"), {5}, 1);
  H.append(T0, Users, opT("add"), {6, FlwrsField, 9});
  EXPECT_FALSE(findConcretization(H, P.A).has_value());
}

TEST_F(GuardFixture, WrongFieldConstantRejected) {
  AddFollowerParts P = buildAddFollower();
  History H(Sch2);
  unsigned S1 = H.addSession();
  unsigned T0 = H.beginTransaction(S1);
  H.append(T0, Users, opT("contains"), {5}, 1);
  H.append(T0, Users, opT("add"), {5, 99, 9});
  EXPECT_FALSE(findConcretization(H, P.A).has_value());
}
