//===- tests/SSGTests.cpp - Static serialization graph tests --------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests SSG construction (Definition 3) and the Theorem 3 checks: the
/// Figure 1b SSG with its self-loops, the SC2a refutation under a global
/// key, SC2b's control-flow sensitivity, event masks, and candidate-cycle /
/// segment enumeration on instantiated SSGs.
///
//===----------------------------------------------------------------------===//

#include "ssg/SSG.h"
#include "unfold/Unfolder.h"

#include <gtest/gtest.h>

using namespace c4;

namespace {

class SSGFixture : public ::testing::Test {
public:
  SSGFixture() { M = Sch.addContainer("M", Reg.lookup("map")); }

  unsigned op(const char *Name) {
    const DataTypeSpec *T = Sch.container(M).Type;
    return T->opIndex(*T->findOp(Name));
  }

  /// The Figure 1 program: txn P = put, txn G = get, with given key facts.
  AbstractHistory buildPutGet(AbsFact PutKey, AbsFact GetKey) {
    AbstractHistory A(Sch);
    unsigned P = A.addTransaction("P");
    unsigned Put = A.addEvent(P, M, op("put"), {PutKey});
    A.addEo(A.entry(P), Put);
    unsigned G = A.addTransaction("G");
    unsigned Get = A.addEvent(G, M, op("get"), {GetKey});
    A.addEo(A.entry(G), Get);
    A.setMaySo(P, G);
    return A;
  }

  TypeRegistry Reg;
  Schema Sch;
  unsigned M = 0;
};

/// Counts edges with a given label between two nodes.
unsigned countEdges(const Digraph &G, unsigned From, unsigned To,
                    int Label) {
  unsigned N = 0;
  for (unsigned EI : G.edgesBetween(From, To))
    if (G.edge(EI).Label == Label)
      ++N;
  return N;
}

} // namespace

TEST_F(SSGFixture, Fig1bStructure) {
  // The SSG of Figure 1b: so edge P->G, ⊕ P->G, ⊖ G->P, ⊗ self-loop on P.
  AbstractHistory A = buildPutGet(AbsFact::free(), AbsFact::free());
  SSG G(A, AnalysisFeatures::all());
  G.analyze();
  EXPECT_EQ(countEdges(G.graph(), 0, 1, DepSO), 1u);
  EXPECT_EQ(countEdges(G.graph(), 0, 1, DepDependency), 1u);
  EXPECT_EQ(countEdges(G.graph(), 1, 0, DepAntiDep), 1u);
  EXPECT_EQ(countEdges(G.graph(), 0, 0, DepConflict), 1u);
  // The program is flagged (it is genuinely unserializable).
  EXPECT_FALSE(G.provesSerializable());
}

TEST_F(SSGFixture, GlobalKeyRefutedBySC2a) {
  // With one global key all puts absorb each other: SC2a fails and the
  // fast analysis alone proves serializability (paper §6's example).
  AbstractHistory A(Sch);
  unsigned U = A.addGlobalVar();
  unsigned P = A.addTransaction("P");
  unsigned Put = A.addEvent(P, M, op("put"), {AbsFact::globalVar(U)});
  A.addEo(A.entry(P), Put);
  unsigned G = A.addTransaction("G");
  unsigned Get = A.addEvent(G, M, op("get"), {AbsFact::globalVar(U)});
  A.addEo(A.entry(G), Get);
  A.setMaySo(P, G);
  SSG S(A, AnalysisFeatures::all());
  S.analyze();
  EXPECT_TRUE(S.provesSerializable());
}

TEST_F(SSGFixture, SessionLocalKeyNotRefutedBySSG) {
  // With session-local keys the SSG cannot prove serializability (§2:
  // "in this scenario, our characterization of cycles in SSGs does not
  // prevent infeasible cycles") — the SMT stage is needed.
  AbstractHistory A(Sch);
  unsigned U = A.addLocalVar();
  unsigned P = A.addTransaction("P");
  unsigned Put = A.addEvent(P, M, op("put"), {AbsFact::localVar(U)});
  A.addEo(A.entry(P), Put);
  unsigned G = A.addTransaction("G");
  unsigned Get = A.addEvent(G, M, op("get"), {AbsFact::localVar(U)});
  A.addEo(A.entry(G), Get);
  A.setMaySo(P, G);
  SSG S(A, AnalysisFeatures::all());
  S.analyze();
  EXPECT_FALSE(S.provesSerializable());
}

TEST_F(SSGFixture, AbsorptionFeatureGatesSC2a) {
  AbstractHistory A(Sch);
  unsigned U = A.addGlobalVar();
  unsigned P = A.addTransaction("P");
  unsigned Put = A.addEvent(P, M, op("put"), {AbsFact::globalVar(U)});
  A.addEo(A.entry(P), Put);
  unsigned G = A.addTransaction("G");
  unsigned Get = A.addEvent(G, M, op("get"), {AbsFact::globalVar(U)});
  A.addEo(A.entry(G), Get);
  A.setMaySo(P, G);
  AnalysisFeatures NoAbs;
  NoAbs.Absorption = false;
  SSG S(A, NoAbs);
  S.analyze();
  EXPECT_FALSE(S.provesSerializable());
}

TEST_F(SSGFixture, ConstraintsFeatureGatesFacts) {
  AbstractHistory A(Sch);
  unsigned U = A.addGlobalVar();
  unsigned P = A.addTransaction("P");
  unsigned Put = A.addEvent(P, M, op("put"), {AbsFact::globalVar(U)});
  A.addEo(A.entry(P), Put);
  unsigned G = A.addTransaction("G");
  unsigned Get = A.addEvent(G, M, op("get"), {AbsFact::globalVar(U)});
  A.addEo(A.entry(G), Get);
  A.setMaySo(P, G);
  AnalysisFeatures NoCons;
  NoCons.Constraints = false;
  SSG S(A, NoCons);
  S.analyze();
  EXPECT_FALSE(S.provesSerializable());
}

TEST_F(SSGFixture, EventMaskRemovesEdges) {
  AbstractHistory A = buildPutGet(AbsFact::free(), AbsFact::free());
  SSG S(A, AnalysisFeatures::all());
  // Mask out the get: no queries left, so no anti-dependencies and SC1
  // fails everywhere.
  std::vector<bool> Mask(A.numEvents(), true);
  for (unsigned E = 0; E != A.numEvents(); ++E)
    if (!A.event(E).isMarker() && A.isQuery(E))
      Mask[E] = false;
  S.setEventMask(Mask);
  S.analyze();
  EXPECT_TRUE(S.provesSerializable());
}

TEST_F(SSGFixture, CrossContainerEventsNeverInterfere) {
  Schema Sch2;
  unsigned C1 = Sch2.addContainer("A", Reg.lookup("map"));
  unsigned C2 = Sch2.addContainer("B", Reg.lookup("map"));
  AbstractHistory A(Sch2);
  unsigned T1 = A.addTransaction("w");
  unsigned E1 = A.addEvent(T1, C1, op("put"), {});
  A.addEo(A.entry(T1), E1);
  unsigned T2 = A.addTransaction("r");
  unsigned E2 = A.addEvent(T2, C2, op("get"), {});
  A.addEo(A.entry(T2), E2);
  A.allowAllSo();
  SSG S(A, AnalysisFeatures::all());
  S.analyze();
  EXPECT_FALSE(S.mayInterfere(E1, E2, CommuteMode::Far));
  EXPECT_TRUE(S.provesSerializable());
}

TEST_F(SSGFixture, InstantiatedCandidateCyclesSatisfySC1) {
  AbstractHistory A = buildPutGet(AbsFact::free(), AbsFact::free());
  bool Truncated = false;
  std::vector<Unfolding> Us = enumerateUnfoldings(A, 2, 1000, Truncated);
  ASSERT_FALSE(Truncated);
  bool AnyCandidates = false;
  for (const Unfolding &U : Us) {
    SSG G(U.H, AnalysisFeatures::all(), U.SessionTags);
    G.analyze();
    bool CT = false;
    for (const CandidateCycle &C : G.candidateCycles(64, CT)) {
      AnyCandidates = true;
      EXPECT_GE(C.Txns.size(), 2u);
      EXPECT_TRUE(C.Closed);
      // SC1: at least one step offers an anti-dependency.
      unsigned AntiSteps = 0;
      for (const std::vector<int> &Labels : C.StepLabels)
        for (int L : Labels)
          if (L == DepAntiDep) {
            ++AntiSteps;
            break;
          }
      EXPECT_GE(AntiSteps, 1u);
    }
  }
  EXPECT_TRUE(AnyCandidates);
}

TEST_F(SSGFixture, SpanningSegmentsCoverAllSessions) {
  AbstractHistory A = buildPutGet(AbsFact::free(), AbsFact::free());
  A.allowAllSo();
  bool Truncated = false;
  std::vector<Unfolding> Us = enumerateUnfoldings(A, 3, 1000, Truncated);
  bool AnySegments = false;
  for (const Unfolding &U : Us) {
    SSG G(U.H, AnalysisFeatures::all(), U.SessionTags);
    G.analyze();
    bool ST = false;
    for (const CandidateCycle &Seg :
         G.spanningSegments(U.NumSessions, 512, ST, U.OrigTxn)) {
      AnySegments = true;
      EXPECT_FALSE(Seg.Closed);
      EXPECT_EQ(Seg.StepLabels.size(), Seg.Txns.size() - 1);
      // Spans every session.
      std::vector<bool> Seen(U.NumSessions, false);
      for (unsigned T : Seg.Txns)
        Seen[U.SessionTags[T]] = true;
      for (bool B : Seen)
        EXPECT_TRUE(B);
    }
  }
  EXPECT_TRUE(AnySegments);
}

//===----------------------------------------------------------------------===//
// Graph export.
//===----------------------------------------------------------------------===//

#include "ssg/GraphExport.h"

TEST_F(SSGFixture, DotExportContainsAllNodesAndStyles) {
  AbstractHistory A = buildPutGet(AbsFact::free(), AbsFact::free());
  SSG S(A, AnalysisFeatures::all());
  S.analyze();
  std::string Dot = ssgToDot(A, S.graph());
  EXPECT_NE(Dot.find("digraph SSG"), std::string::npos);
  EXPECT_NE(Dot.find("M.put"), std::string::npos);
  EXPECT_NE(Dot.find("M.get"), std::string::npos);
  EXPECT_NE(Dot.find("style=bold"), std::string::npos);   // anti-dep
  EXPECT_NE(Dot.find("style=dotted"), std::string::npos); // conflict
  EXPECT_NE(Dot.find("style=dashed"), std::string::npos); // dependency
}

TEST_F(SSGFixture, DsgDotExport) {
  History H(Sch);
  unsigned S1 = H.addSession();
  unsigned T0 = H.beginTransaction(S1);
  H.append(T0, M, op("put"), {1, 2});
  Digraph G(1);
  std::string Dot = dsgToDot(H, G);
  EXPECT_NE(Dot.find("digraph DSG"), std::string::npos);
  EXPECT_NE(Dot.find("M.put(1,2)"), std::string::npos);
}
