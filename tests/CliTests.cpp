//===- tests/CliTests.cpp - c4-analyze exit-code contract -----------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regression tests for the c4-analyze command-line contract, driving the
/// real binary (path injected as C4_ANALYZE_PATH):
///
///   0  compiled and analyzed, no violations (and no lint warnings under
///      --werror)
///   1  serializability violations found (wins over --werror)
///   2  usage or compile error
///   3  lint warnings under --werror, no violations
///
//===----------------------------------------------------------------------===//

#include "gtest/gtest.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <sys/wait.h>

namespace {

std::string examplePath(const char *Name) {
  return std::string(C4_SOURCE_DIR) + "/examples/c4l/" + Name;
}

/// Runs the analyzer with \p Args and returns its exit code.
int runAnalyzer(const std::string &Args) {
  std::string Cmd = std::string(C4_ANALYZE_PATH) + " " + Args +
                    " > /dev/null 2> /dev/null";
  int Status = std::system(Cmd.c_str());
  EXPECT_NE(Status, -1);
  EXPECT_TRUE(WIFEXITED(Status));
  return WEXITSTATUS(Status);
}

/// Writes \p Source to a fresh file in the test temp dir.
std::string writeTemp(const char *Name, const std::string &Source) {
  std::string Path = testing::TempDir() + Name;
  std::ofstream Out(Path);
  Out << Source;
  EXPECT_TRUE(Out.good());
  return Path;
}

const char *WarningOnlySource = "container map Audit;\n"
                                "txn w(k, v) {\n"
                                "  Audit.put(k, v);\n"
                                "}\n";

TEST(CliExit, CleanProgramIsZero) {
  EXPECT_EQ(runAnalyzer(examplePath("highscore_fixed.c4l")), 0);
}

TEST(CliExit, ViolationIsOne) {
  EXPECT_EQ(runAnalyzer(examplePath("uniqueness_bug.c4l")), 1);
}

TEST(CliExit, MissingArgumentIsTwo) { EXPECT_EQ(runAnalyzer(""), 2); }

TEST(CliExit, UnknownFlagIsTwo) {
  EXPECT_EQ(runAnalyzer("--definitely-not-a-flag " +
                        examplePath("highscore_fixed.c4l")),
            2);
}

TEST(CliExit, CompileErrorIsTwo) {
  std::string Bad = writeTemp("cli_bad.c4l", "txn { this is not C4L\n");
  EXPECT_EQ(runAnalyzer(Bad), 2);
}

TEST(CliExit, WerrorWithWarningsIsThree) {
  std::string W = writeTemp("cli_warn.c4l", WarningOnlySource);
  EXPECT_EQ(runAnalyzer("--lint --werror " + W), 3);
  // Same contract in analysis mode: no violations, but warnings + --werror.
  EXPECT_EQ(runAnalyzer("--werror " + W), 3);
}

TEST(CliExit, LintWithoutWerrorIsZero) {
  std::string W = writeTemp("cli_warn2.c4l", WarningOnlySource);
  EXPECT_EQ(runAnalyzer("--lint " + W), 0);
  EXPECT_EQ(runAnalyzer("--lint-json " + W), 0);
}

TEST(CliExit, ViolationWinsOverWerror) {
  EXPECT_EQ(runAnalyzer("--werror " + examplePath("uniqueness_bug.c4l")),
            1);
}

TEST(CliExit, WerrorCleanIsZero) {
  EXPECT_EQ(runAnalyzer("--werror " + examplePath("highscore_fixed.c4l")),
            0);
}

TEST(CliExit, NoPassesVerdictUnchanged) {
  EXPECT_EQ(
      runAnalyzer("--no-passes " + examplePath("uniqueness_bug.c4l")), 1);
  EXPECT_EQ(
      runAnalyzer("--no-passes " + examplePath("highscore_fixed.c4l")), 0);
}

TEST(CliExit, SuppressedWarningsAreClean) {
  std::string W = writeTemp("cli_allow.c4l",
                            "// c4l-allow C4L-W001\n"
                            "container map Audit;\n"
                            "txn w(k, v) {\n"
                            "  Audit.put(k, v);\n"
                            "}\n");
  EXPECT_EQ(runAnalyzer("--lint --werror " + W), 0);
}

} // namespace
