//===- tests/SupportTests.cpp - Support library unit tests ----------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "support/Digraph.h"
#include "support/Format.h"
#include "support/Interner.h"
#include "support/Rng.h"
#include "support/UnionFind.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace c4;

TEST(Format, Strf) {
  EXPECT_EQ(strf("x=%d y=%s", 42, "ok"), "x=42 y=ok");
  EXPECT_EQ(strf("%s", ""), "");
}

TEST(Format, Join) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(Rng, DeterministicAndInRange) {
  Rng A(7), B(7);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
  Rng R(123);
  for (int I = 0; I != 1000; ++I) {
    int64_t V = R.range(-3, 5);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 5);
  }
}

TEST(Rng, RoughlyUniform) {
  Rng R(99);
  unsigned Counts[4] = {0, 0, 0, 0};
  for (int I = 0; I != 4000; ++I)
    ++Counts[R.below(4)];
  for (unsigned C : Counts) {
    EXPECT_GT(C, 800u);
    EXPECT_LT(C, 1200u);
  }
}

TEST(UnionFind, MergeAndFind) {
  UnionFind UF(5);
  EXPECT_FALSE(UF.connected(0, 1));
  UF.merge(0, 1);
  UF.merge(2, 3);
  EXPECT_TRUE(UF.connected(0, 1));
  EXPECT_TRUE(UF.connected(2, 3));
  EXPECT_FALSE(UF.connected(1, 2));
  UF.merge(1, 2);
  EXPECT_TRUE(UF.connected(0, 3));
  EXPECT_FALSE(UF.connected(0, 4));
  unsigned Fresh = UF.add();
  EXPECT_EQ(Fresh, 5u);
  EXPECT_FALSE(UF.connected(Fresh, 0));
}

TEST(Interner, RoundTrip) {
  Interner I;
  int64_t A = I.intern("alpha");
  int64_t B = I.intern("beta");
  EXPECT_NE(A, B);
  EXPECT_EQ(I.intern("alpha"), A);
  EXPECT_EQ(*I.lookup(A), "alpha");
  EXPECT_EQ(*I.lookup(B), "beta");
  EXPECT_EQ(I.lookup(5), nullptr);
  EXPECT_GE(A, Interner::Base);
}

TEST(Digraph, BasicEdges) {
  Digraph G(3);
  G.addEdge(0, 1, 7);
  G.addEdge(0, 1, 8);
  G.addEdge(1, 2);
  EXPECT_TRUE(G.hasEdge(0, 1));
  EXPECT_FALSE(G.hasEdge(1, 0));
  EXPECT_EQ(G.edgesBetween(0, 1).size(), 2u);
  EXPECT_EQ(G.edge(G.edgesBetween(0, 1)[0]).Label, 7);
}

TEST(Digraph, SCC) {
  // 0 -> 1 -> 2 -> 0 is one component; 3 -> 4 are singletons.
  Digraph G(5);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 0);
  G.addEdge(3, 4);
  G.addEdge(2, 3);
  unsigned N = 0;
  std::vector<unsigned> C = G.stronglyConnectedComponents(N);
  EXPECT_EQ(N, 3u);
  EXPECT_EQ(C[0], C[1]);
  EXPECT_EQ(C[1], C[2]);
  EXPECT_NE(C[2], C[3]);
  EXPECT_NE(C[3], C[4]);
  // Tarjan emits components in reverse topological order.
  EXPECT_GT(C[0], C[3]);
  EXPECT_GT(C[3], C[4]);
}

TEST(Digraph, CycleDetection) {
  Digraph G(3);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  EXPECT_FALSE(G.hasCycle());
  EXPECT_EQ(G.topologicalOrder().size(), 3u);
  G.addEdge(2, 0);
  EXPECT_TRUE(G.hasCycle());
  EXPECT_TRUE(G.topologicalOrder().empty());
}

TEST(Digraph, SelfLoopIsCycle) {
  Digraph G(2);
  G.addEdge(1, 1);
  EXPECT_TRUE(G.hasCycle());
}

TEST(Digraph, Reachability) {
  Digraph G(4);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  std::vector<bool> R = G.reachableFrom(0);
  EXPECT_TRUE(R[0]);
  EXPECT_TRUE(R[2]);
  EXPECT_FALSE(R[3]);
}

TEST(Digraph, SimpleCyclesTriangleAndTwoCycle) {
  Digraph G(4);
  G.addEdge(0, 1);
  G.addEdge(1, 0);
  G.addEdge(1, 2);
  G.addEdge(2, 3);
  G.addEdge(3, 1);
  bool Truncated = false;
  std::vector<std::vector<unsigned>> Cycles = G.simpleCycles(100, Truncated);
  EXPECT_FALSE(Truncated);
  std::set<std::vector<unsigned>> Set(Cycles.begin(), Cycles.end());
  EXPECT_EQ(Set.size(), 2u);
  EXPECT_TRUE(Set.count({0, 1}));
  EXPECT_TRUE(Set.count({1, 2, 3}));
}

TEST(Digraph, SimpleCyclesCompleteGraph) {
  // K4 has 4*(4-1)... exactly: cycles of length 2: C(4,2)=6; length 3:
  // 4 choose 3 subsets * 2 orientations = 8; length 4: 3!/... = 6. Total 20.
  Digraph G(4);
  for (unsigned A = 0; A != 4; ++A)
    for (unsigned B = 0; B != 4; ++B)
      if (A != B)
        G.addEdge(A, B);
  bool Truncated = false;
  std::vector<std::vector<unsigned>> Cycles = G.simpleCycles(1000, Truncated);
  EXPECT_FALSE(Truncated);
  EXPECT_EQ(Cycles.size(), 20u);
}

TEST(Digraph, SimpleCyclesTruncation) {
  Digraph G(6);
  for (unsigned A = 0; A != 6; ++A)
    for (unsigned B = 0; B != 6; ++B)
      if (A != B)
        G.addEdge(A, B);
  bool Truncated = false;
  std::vector<std::vector<unsigned>> Cycles = G.simpleCycles(10, Truncated);
  EXPECT_TRUE(Truncated);
  EXPECT_EQ(Cycles.size(), 10u);
}
