//===- tests/SupportTests.cpp - Support library unit tests ----------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "support/Digraph.h"
#include "support/EventLoop.h"
#include "support/Format.h"
#include "support/Interner.h"
#include "support/Rng.h"
#include "support/SingleFlight.h"
#include "support/UnionFind.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

using namespace c4;

TEST(Format, Strf) {
  EXPECT_EQ(strf("x=%d y=%s", 42, "ok"), "x=42 y=ok");
  EXPECT_EQ(strf("%s", ""), "");
}

TEST(Format, Join) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(Rng, DeterministicAndInRange) {
  Rng A(7), B(7);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
  Rng R(123);
  for (int I = 0; I != 1000; ++I) {
    int64_t V = R.range(-3, 5);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 5);
  }
}

TEST(Rng, RoughlyUniform) {
  Rng R(99);
  unsigned Counts[4] = {0, 0, 0, 0};
  for (int I = 0; I != 4000; ++I)
    ++Counts[R.below(4)];
  for (unsigned C : Counts) {
    EXPECT_GT(C, 800u);
    EXPECT_LT(C, 1200u);
  }
}

TEST(UnionFind, MergeAndFind) {
  UnionFind UF(5);
  EXPECT_FALSE(UF.connected(0, 1));
  UF.merge(0, 1);
  UF.merge(2, 3);
  EXPECT_TRUE(UF.connected(0, 1));
  EXPECT_TRUE(UF.connected(2, 3));
  EXPECT_FALSE(UF.connected(1, 2));
  UF.merge(1, 2);
  EXPECT_TRUE(UF.connected(0, 3));
  EXPECT_FALSE(UF.connected(0, 4));
  unsigned Fresh = UF.add();
  EXPECT_EQ(Fresh, 5u);
  EXPECT_FALSE(UF.connected(Fresh, 0));
}

TEST(Interner, RoundTrip) {
  Interner I;
  int64_t A = I.intern("alpha");
  int64_t B = I.intern("beta");
  EXPECT_NE(A, B);
  EXPECT_EQ(I.intern("alpha"), A);
  EXPECT_EQ(*I.lookup(A), "alpha");
  EXPECT_EQ(*I.lookup(B), "beta");
  EXPECT_EQ(I.lookup(5), nullptr);
  EXPECT_GE(A, Interner::Base);
}

TEST(Digraph, BasicEdges) {
  Digraph G(3);
  G.addEdge(0, 1, 7);
  G.addEdge(0, 1, 8);
  G.addEdge(1, 2);
  EXPECT_TRUE(G.hasEdge(0, 1));
  EXPECT_FALSE(G.hasEdge(1, 0));
  EXPECT_EQ(G.edgesBetween(0, 1).size(), 2u);
  EXPECT_EQ(G.edge(G.edgesBetween(0, 1)[0]).Label, 7);
}

TEST(Digraph, SCC) {
  // 0 -> 1 -> 2 -> 0 is one component; 3 -> 4 are singletons.
  Digraph G(5);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 0);
  G.addEdge(3, 4);
  G.addEdge(2, 3);
  unsigned N = 0;
  std::vector<unsigned> C = G.stronglyConnectedComponents(N);
  EXPECT_EQ(N, 3u);
  EXPECT_EQ(C[0], C[1]);
  EXPECT_EQ(C[1], C[2]);
  EXPECT_NE(C[2], C[3]);
  EXPECT_NE(C[3], C[4]);
  // Tarjan emits components in reverse topological order.
  EXPECT_GT(C[0], C[3]);
  EXPECT_GT(C[3], C[4]);
}

TEST(Digraph, CycleDetection) {
  Digraph G(3);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  EXPECT_FALSE(G.hasCycle());
  EXPECT_EQ(G.topologicalOrder().size(), 3u);
  G.addEdge(2, 0);
  EXPECT_TRUE(G.hasCycle());
  EXPECT_TRUE(G.topologicalOrder().empty());
}

TEST(Digraph, SelfLoopIsCycle) {
  Digraph G(2);
  G.addEdge(1, 1);
  EXPECT_TRUE(G.hasCycle());
}

TEST(Digraph, Reachability) {
  Digraph G(4);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  std::vector<bool> R = G.reachableFrom(0);
  EXPECT_TRUE(R[0]);
  EXPECT_TRUE(R[2]);
  EXPECT_FALSE(R[3]);
}

TEST(Digraph, SimpleCyclesTriangleAndTwoCycle) {
  Digraph G(4);
  G.addEdge(0, 1);
  G.addEdge(1, 0);
  G.addEdge(1, 2);
  G.addEdge(2, 3);
  G.addEdge(3, 1);
  bool Truncated = false;
  std::vector<std::vector<unsigned>> Cycles = G.simpleCycles(100, Truncated);
  EXPECT_FALSE(Truncated);
  std::set<std::vector<unsigned>> Set(Cycles.begin(), Cycles.end());
  EXPECT_EQ(Set.size(), 2u);
  EXPECT_TRUE(Set.count({0, 1}));
  EXPECT_TRUE(Set.count({1, 2, 3}));
}

TEST(Digraph, SimpleCyclesCompleteGraph) {
  // K4 has 4*(4-1)... exactly: cycles of length 2: C(4,2)=6; length 3:
  // 4 choose 3 subsets * 2 orientations = 8; length 4: 3!/... = 6. Total 20.
  Digraph G(4);
  for (unsigned A = 0; A != 4; ++A)
    for (unsigned B = 0; B != 4; ++B)
      if (A != B)
        G.addEdge(A, B);
  bool Truncated = false;
  std::vector<std::vector<unsigned>> Cycles = G.simpleCycles(1000, Truncated);
  EXPECT_FALSE(Truncated);
  EXPECT_EQ(Cycles.size(), 20u);
}

TEST(Digraph, SimpleCyclesTruncation) {
  Digraph G(6);
  for (unsigned A = 0; A != 6; ++A)
    for (unsigned B = 0; B != 6; ++B)
      if (A != B)
        G.addEdge(A, B);
  bool Truncated = false;
  std::vector<std::vector<unsigned>> Cycles = G.simpleCycles(10, Truncated);
  EXPECT_TRUE(Truncated);
  EXPECT_EQ(Cycles.size(), 10u);
}

//===----------------------------------------------------------------------===//
// SingleFlight: the serving tier's cache-stampede guard.
//===----------------------------------------------------------------------===//

TEST(SingleFlight, FollowersReceiveTheLeadersValue) {
  SingleFlight SF;
  bool Leader = false;
  SingleFlight::FlightPtr LeaderFlight = SF.join("k", Leader);
  ASSERT_TRUE(Leader);

  // Followers joining while the flight is open attach to it.
  constexpr int N = 4;
  std::vector<std::thread> Followers;
  std::vector<std::shared_ptr<const std::string>> Got(N);
  for (int I = 0; I != N; ++I) {
    bool FollowerLeads = true;
    SingleFlight::FlightPtr F = SF.join("k", FollowerLeads);
    EXPECT_FALSE(FollowerLeads);
    EXPECT_EQ(F, LeaderFlight);
    Followers.emplace_back([F, I, &Got] { Got[I] = SingleFlight::wait(F); });
  }
  SF.complete("k", LeaderFlight, /*Share=*/true, "blob");
  for (std::thread &T : Followers)
    T.join();
  for (int I = 0; I != N; ++I) {
    ASSERT_TRUE(Got[I] != nullptr);
    EXPECT_EQ(*Got[I], "blob");
    // The stampede fix: followers alias the leader's one serialized
    // buffer instead of each copying it.
    EXPECT_EQ(Got[I].get(), Got[0].get());
  }

  // The flight retired with completion: the next join leads a fresh one.
  bool Fresh = false;
  SingleFlight::FlightPtr Next = SF.join("k", Fresh);
  EXPECT_TRUE(Fresh);
  EXPECT_NE(Next, LeaderFlight);
  SF.complete("k", Next, /*Share=*/false);
}

TEST(SingleFlight, DecliningWakesFollowersEmptyHanded) {
  SingleFlight SF;
  bool Leader = false;
  SingleFlight::FlightPtr F = SF.join("k", Leader);
  ASSERT_TRUE(Leader);
  bool FollowerLeads = true;
  SingleFlight::FlightPtr FF = SF.join("k", FollowerLeads);
  ASSERT_FALSE(FollowerLeads);
  std::shared_ptr<const std::string> Got =
      std::make_shared<const std::string>("poison");
  std::thread Follower([FF, &Got] { Got = SingleFlight::wait(FF); });
  SF.complete("k", F, /*Share=*/false);
  Follower.join();
  EXPECT_EQ(Got, nullptr);
}

TEST(SingleFlight, DistinctKeysFlyIndependently) {
  SingleFlight SF;
  bool LeadA = false, LeadB = false;
  SingleFlight::FlightPtr A = SF.join("a", LeadA);
  SingleFlight::FlightPtr B = SF.join("b", LeadB);
  EXPECT_TRUE(LeadA);
  EXPECT_TRUE(LeadB);
  EXPECT_NE(A, B);
  SF.complete("a", A, true, "va");
  SF.complete("b", B, true, "vb");
  EXPECT_EQ(*SingleFlight::wait(A), "va");
  EXPECT_EQ(*SingleFlight::wait(B), "vb");
}

TEST(SingleFlight, ManyThreadsOneKeyExactlyOneLeader) {
  SingleFlight SF;
  constexpr int N = 16;
  std::atomic<int> Leaders{0}, SharedSeen{0}, Ready{0};
  std::atomic<bool> Go{false};
  std::vector<std::thread> Threads;
  for (int I = 0; I != N; ++I)
    Threads.emplace_back([&] {
      ++Ready;
      while (!Go.load())
        std::this_thread::yield();
      bool Leads = false;
      SingleFlight::FlightPtr F = SF.join("hot", Leads);
      if (Leads) {
        ++Leaders;
        // Give followers a moment to pile onto the open flight.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        SF.complete("hot", F, true, "v");
      } else {
        std::shared_ptr<const std::string> V = SingleFlight::wait(F);
        if (V && *V == "v")
          ++SharedSeen;
      }
    });
  while (Ready.load() != N)
    std::this_thread::yield();
  Go.store(true);
  for (std::thread &T : Threads)
    T.join();
  // At least one thread led; every follower of an open flight got the
  // value. (Threads arriving after a completion lead a fresh flight and
  // complete it themselves, so Leaders + SharedSeen == N.)
  EXPECT_GE(Leaders.load(), 1);
  EXPECT_EQ(Leaders.load() + SharedSeen.load(), N);
}

//===----------------------------------------------------------------------===//
// EventLoop: the serving tier's poll(2) reactor.
//===----------------------------------------------------------------------===//

namespace {
/// A nonblocking pipe pair for reactor tests; closes on destruction.
struct TestPipe {
  int Fds[2] = {-1, -1};
  TestPipe() {
    if (::pipe(Fds) == 0)
      for (int Fd : Fds)
        ::fcntl(Fd, F_SETFL, ::fcntl(Fd, F_GETFL) | O_NONBLOCK);
  }
  ~TestPipe() {
    for (int Fd : Fds)
      if (Fd >= 0)
        ::close(Fd);
  }
  int readEnd() const { return Fds[0]; }
  int writeEnd() const { return Fds[1]; }
};
} // namespace

TEST(EventLoop, DispatchesReadableFds) {
  EventLoop Loop;
  ASSERT_TRUE(Loop.ok());
  TestPipe P;
  unsigned Seen = 0;
  Loop.add(P.readEnd(), EventLoop::Read, [&](unsigned Ev) {
    Seen = Ev;
    char Buf[8];
    while (::read(P.readEnd(), Buf, sizeof(Buf)) > 0) {
    }
  });
  EXPECT_EQ(Loop.size(), 1u);

  // Nothing readable: a zero-timeout iteration dispatches nothing.
  EXPECT_TRUE(Loop.runOnce(0));
  EXPECT_EQ(Seen, 0u);

  ASSERT_EQ(::write(P.writeEnd(), "x", 1), 1);
  EXPECT_TRUE(Loop.runOnce(1000));
  EXPECT_EQ(Seen & EventLoop::Read, EventLoop::Read);

  Loop.remove(P.readEnd());
  EXPECT_EQ(Loop.size(), 0u);
  Seen = 0;
  ASSERT_EQ(::write(P.writeEnd(), "y", 1), 1);
  EXPECT_TRUE(Loop.runOnce(0));
  EXPECT_EQ(Seen, 0u); // removed fds are never dispatched
}

TEST(EventLoop, PostFromAnotherThreadWakesTheLoop) {
  EventLoop Loop;
  ASSERT_TRUE(Loop.ok());
  std::atomic<bool> Ran{false};
  std::thread Poster([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    Loop.post([&] { Ran.store(true); });
  });
  // An indefinite wait must be woken by the post, not hang.
  auto Start = std::chrono::steady_clock::now();
  while (!Ran.load() &&
         std::chrono::steady_clock::now() - Start < std::chrono::seconds(10))
    EXPECT_TRUE(Loop.runOnce(-1));
  Poster.join();
  EXPECT_TRUE(Ran.load());
}

TEST(EventLoop, PostedFunctionsRunBeforeFdDispatchAndInOrder) {
  EventLoop Loop;
  ASSERT_TRUE(Loop.ok());
  TestPipe P;
  std::vector<int> Order;
  Loop.add(P.readEnd(), EventLoop::Read, [&](unsigned) {
    Order.push_back(99);
    char Buf[8];
    while (::read(P.readEnd(), Buf, sizeof(Buf)) > 0) {
    }
  });
  ASSERT_EQ(::write(P.writeEnd(), "x", 1), 1);
  Loop.post([&] { Order.push_back(1); });
  Loop.post([&] { Order.push_back(2); });
  EXPECT_TRUE(Loop.runOnce(1000));
  ASSERT_EQ(Order.size(), 3u);
  EXPECT_EQ(Order[0], 1);
  EXPECT_EQ(Order[1], 2);
  EXPECT_EQ(Order[2], 99);
}

TEST(EventLoop, HandlerMayRemoveItself) {
  EventLoop Loop;
  ASSERT_TRUE(Loop.ok());
  TestPipe P;
  int Calls = 0;
  Loop.add(P.readEnd(), EventLoop::Read, [&](unsigned) {
    ++Calls;
    Loop.remove(P.readEnd());
    // Deliberately leave the byte unread: without the removal this would
    // stay level-triggered forever.
  });
  ASSERT_EQ(::write(P.writeEnd(), "x", 1), 1);
  EXPECT_TRUE(Loop.runOnce(1000));
  EXPECT_TRUE(Loop.runOnce(0));
  EXPECT_EQ(Calls, 1);
  EXPECT_EQ(Loop.size(), 0u);
}

TEST(EventLoop, WriteInterestFiresWhenWritable) {
  EventLoop Loop;
  ASSERT_TRUE(Loop.ok());
  TestPipe P;
  unsigned Seen = 0;
  Loop.add(P.writeEnd(), EventLoop::Write, [&](unsigned Ev) {
    Seen = Ev;
    Loop.setInterest(P.writeEnd(), 0);
  });
  EXPECT_TRUE(Loop.runOnce(1000));
  EXPECT_EQ(Seen & EventLoop::Write, +EventLoop::Write);
  // Interest cleared: no further dispatch even though still writable.
  Seen = 0;
  EXPECT_TRUE(Loop.runOnce(0));
  EXPECT_EQ(Seen, 0u);
}
