//===- tests/LintTests.cpp - Lint layer golden tests ----------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Golden-file tests for the structured lint layer: one test per warning
/// ID pinning the exact rendered text, JSON rendering and determinism, and
/// the `c4l-allow` suppression comment.
///
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "passes/PassManager.h"

#include "gtest/gtest.h"

#include <string>

using namespace c4;

namespace {

/// Compiles \p Source, runs the pipeline and returns the rendered lint
/// text for file name "test.c4l" (empty string on compile failure).
std::string lintText(const std::string &Source, bool Reduce = true) {
  CompileResult C = compileC4L(Source);
  EXPECT_TRUE(C.ok()) << C.Error;
  if (!C.ok())
    return "";
  PassOptions Opts;
  Opts.Reduce = Reduce;
  PassResult R = runPasses(*C.Program, Opts, &Source);
  EXPECT_TRUE(R.Ok) << R.Error;
  return renderLintText(R.Lints, "test.c4l");
}

std::string lintJson(const std::string &Source) {
  CompileResult C = compileC4L(Source);
  EXPECT_TRUE(C.ok()) << C.Error;
  if (!C.ok())
    return "";
  PassResult R = runPasses(*C.Program, PassOptions(), &Source);
  EXPECT_TRUE(R.Ok) << R.Error;
  return renderLintJson(R.Lints, "test.c4l");
}

TEST(LintGolden, W001UnusedWrite) {
  EXPECT_EQ(lintText("container map Audit;\n"
                     "txn w(k, v) {\n"
                     "  Audit.put(k, v);\n"
                     "}\n"),
            "test.c4l:1: warning C4L-W001: container 'Audit' is updated "
            "but never queried; its writes are unobservable\n");
}

TEST(LintGolden, W002NeverWritten) {
  EXPECT_EQ(lintText("container map Ghost;\n"
                     "txn r(k) {\n"
                     "  let x = Ghost.get(k);\n"
                     "  display(x);\n"
                     "}\n"),
            "test.c4l:1: warning C4L-W002: container 'Ghost' is queried "
            "but no transaction ever updates it\n");
}

TEST(LintGolden, W003AlwaysFalseGuard) {
  EXPECT_EQ(lintText("container map M;\n"
                     "txn t(k) {\n"
                     "  let y = M.get(k);\n"
                     "  M.put(k, y);\n"
                     "  if (y == 3) {\n"
                     "    if (y == 4) {\n"
                     "      M.put(k, 9);\n"
                     "    }\n"
                     "  }\n"
                     "}\n"),
            "test.c4l:6: warning C4L-W003: guard 'y == 4' is always "
            "false; the then branch is unreachable [txn t]\n");
}

TEST(LintGolden, W004MultiContainerNoAtomicSet) {
  EXPECT_EQ(lintText("container map A;\n"
                     "container map B;\n"
                     "txn w(k, v) {\n"
                     "  A.put(k, v);\n"
                     "  B.put(k, v);\n"
                     "}\n"
                     "txn r(k) {\n"
                     "  let x = A.get(k);\n"
                     "  let y = B.get(k);\n"
                     "  display(x);\n"
                     "  display(y);\n"
                     "}\n"),
            "test.c4l:3: warning C4L-W004: updates 2 containers ('A', "
            "'B') that no atomic set groups together [txn w]\n");
}

TEST(LintGolden, W004SilencedByAtomicSet) {
  EXPECT_EQ(lintText("container map A;\n"
                     "container map B;\n"
                     "atomicset S { A, B }\n"
                     "txn w(k, v) {\n"
                     "  A.put(k, v);\n"
                     "  B.put(k, v);\n"
                     "}\n"
                     "txn r(k) {\n"
                     "  let x = A.get(k);\n"
                     "  let y = B.get(k);\n"
                     "  display(x);\n"
                     "  display(y);\n"
                     "}\n"),
            "");
}

TEST(LintGolden, W005RedundantUpdate) {
  EXPECT_EQ(lintText("container map M;\n"
                     "txn t(k) {\n"
                     "  M.put(k, 7);\n"
                     "  M.put(k, 7);\n"
                     "  let x = M.get(k);\n"
                     "  display(x);\n"
                     "}\n"),
            "test.c4l:3: warning C4L-W005: redundant update 'M.put' is "
            "absorbed by the identical update on line 4 [txn t]\n");
}

TEST(LintGolden, W005ReportedWithoutReduction) {
  // --no-passes still lints; the absorbed write is reported but kept.
  EXPECT_EQ(lintText("container map M;\n"
                     "txn t(k) {\n"
                     "  M.put(k, 7);\n"
                     "  M.put(k, 7);\n"
                     "  let x = M.get(k);\n"
                     "  display(x);\n"
                     "}\n",
                     /*Reduce=*/false),
            "test.c4l:3: warning C4L-W005: redundant update 'M.put' is "
            "absorbed by the identical update on line 4 [txn t]\n");
}

TEST(LintGolden, W006UnsatisfiableGuard) {
  // A fresh row identity is >= FreshValueMin, so `id < 5` can never hold.
  // The unary guard dataflow (W003) knows nothing about fresh identities;
  // only the relational domain over the compiled facts proves this.
  EXPECT_EQ(lintText("container table T;\n"
                     "txn t(v) {\n"
                     "  let id = T.add_row();\n"
                     "  if (id < 5) {\n"
                     "    T.set(id, 0, v);\n"
                     "  }\n"
                     "  T.set(id, 1, v);\n"
                     "  let x = T.get(id, 1);\n"
                     "  display(x);\n"
                     "}\n"),
            "test.c4l:2: warning C4L-W006: guard 'src0<5' on the edge "
            "e1[T.add_row]@t -> e2[then.head]@t is statically "
            "unsatisfiable; the guarded code can never execute [txn t]\n");
}

TEST(LintGolden, W006ReportedWithoutReduction) {
  // `--no-passes` promotes fresh facts on a scratch copy just for the
  // lint, so the warning survives even when no rewriting runs.
  EXPECT_EQ(lintText("container table T;\n"
                     "txn t(v) {\n"
                     "  let id = T.add_row();\n"
                     "  if (id < 5) {\n"
                     "    T.set(id, 0, v);\n"
                     "  }\n"
                     "  T.set(id, 1, v);\n"
                     "  let x = T.get(id, 1);\n"
                     "  display(x);\n"
                     "}\n",
                     /*Reduce=*/false),
            "test.c4l:2: warning C4L-W006: guard 'src0<5' on the edge "
            "e1[T.add_row]@t -> e2[then.head]@t is statically "
            "unsatisfiable; the guarded code can never execute [txn t]\n");
}

TEST(LintGolden, W006AlwaysTrueGuardFlagsElseEdge) {
  // `id > 5` always holds for a fresh identity, so it is the *else* edge
  // whose guard (`id <= 5`) closes to bottom.
  EXPECT_EQ(lintText("container table T;\n"
                     "txn t(v) {\n"
                     "  let id = T.add_row();\n"
                     "  if (id > 5) {\n"
                     "    T.set(id, 0, v);\n"
                     "  }\n"
                     "  T.set(id, 1, v);\n"
                     "  let x = T.get(id, 1);\n"
                     "  display(x);\n"
                     "}\n"),
            "test.c4l:2: warning C4L-W006: guard 'src0<=5' on the edge "
            "e1[T.add_row]@t -> e4[else]@t is statically "
            "unsatisfiable; the guarded code can never execute [txn t]\n");
}

TEST(LintGolden, W006SatisfiableGuardQuiet) {
  // A guard over an unconstrained query result can go either way: no
  // warning.
  EXPECT_EQ(lintText("container table T;\n"
                     "txn t(v) {\n"
                     "  let id = T.add_row();\n"
                     "  T.set(id, 1, v);\n"
                     "  let x = T.get(id, 1);\n"
                     "  if (x < 5) {\n"
                     "    T.set(id, 0, v);\n"
                     "  }\n"
                     "  display(x);\n"
                     "}\n"),
            "");
}

TEST(LintSuppression, W006AllowOnTxnLine) {
  EXPECT_EQ(lintText("container table T;\n"
                     "txn t(v) { // c4l-allow C4L-W006\n"
                     "  let id = T.add_row();\n"
                     "  if (id < 5) {\n"
                     "    T.set(id, 0, v);\n"
                     "  }\n"
                     "  T.set(id, 1, v);\n"
                     "  let x = T.get(id, 1);\n"
                     "  display(x);\n"
                     "}\n"),
            "");
}

TEST(LintGolden, CleanProgramNoWarnings) {
  EXPECT_EQ(lintText("container map M;\n"
                     "txn w(k, v) {\n"
                     "  M.put(k, v);\n"
                     "}\n"
                     "txn r(k) {\n"
                     "  let x = M.get(k);\n"
                     "  display(x);\n"
                     "}\n"),
            "");
}

TEST(LintJson, SchemaAndDeterminism) {
  const std::string Source = "container map Audit;\n"
                             "container map Ghost;\n"
                             "txn w(k, v) {\n"
                             "  Audit.put(k, v);\n"
                             "}\n"
                             "txn r(k) {\n"
                             "  let x = Ghost.get(k);\n"
                             "  display(x);\n"
                             "}\n";
  const std::string Expected =
      "{\n"
      "  \"file\": \"test.c4l\",\n"
      "  \"warnings\": [\n"
      "    {\"id\": \"C4L-W001\", \"line\": 1, \"txn\": \"\", \"message\": "
      "\"container 'Audit' is updated but never queried; its writes are "
      "unobservable\"},\n"
      "    {\"id\": \"C4L-W002\", \"line\": 2, \"txn\": \"\", \"message\": "
      "\"container 'Ghost' is queried but no transaction ever updates "
      "it\"}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(lintJson(Source), Expected);
  // Byte-identical across runs.
  EXPECT_EQ(lintJson(Source), lintJson(Source));
}

TEST(LintJson, EscapesSpecialCharacters) {
  std::vector<LintDiagnostic> Lints;
  Lints.push_back({"C4L-W001", 1, "", "quote \" backslash \\ done"});
  std::string Out = renderLintJson(Lints, "a\"b.c4l");
  EXPECT_NE(Out.find("\"file\": \"a\\\"b.c4l\""), std::string::npos);
  EXPECT_NE(Out.find("quote \\\" backslash \\\\ done"), std::string::npos);
}

TEST(LintSuppression, SameLineAllow) {
  EXPECT_EQ(lintText("container map Audit; // c4l-allow C4L-W001\n"
                     "txn w(k, v) {\n"
                     "  Audit.put(k, v);\n"
                     "}\n"),
            "");
}

TEST(LintSuppression, PrecedingLineBareAllow) {
  EXPECT_EQ(lintText("// c4l-allow\n"
                     "container map Audit;\n"
                     "txn w(k, v) {\n"
                     "  Audit.put(k, v);\n"
                     "}\n"),
            "");
}

TEST(LintSuppression, WrongIdDoesNotSuppress) {
  EXPECT_EQ(lintText("container map Audit; // c4l-allow C4L-W002\n"
                     "txn w(k, v) {\n"
                     "  Audit.put(k, v);\n"
                     "}\n"),
            "test.c4l:1: warning C4L-W001: container 'Audit' is updated "
            "but never queried; its writes are unobservable\n");
}

TEST(LintSuppression, AllowOutsideCommentIgnored) {
  // The token must appear in a `//` comment; source text alone does not
  // suppress. (A name cannot contain "c4l-allow", so smuggle it into a
  // string literal position via an unrelated line and check that the
  // warning on line 1 stays.)
  EXPECT_EQ(lintText("container map Audit;\n"
                     "txn w(k, v) {\n"
                     "  Audit.put(k, \"c4l-allow C4L-W001\");\n"
                     "}\n"),
            "test.c4l:1: warning C4L-W001: container 'Audit' is updated "
            "but never queried; its writes are unobservable\n");
}

TEST(LintSort, CanonicalOrder) {
  std::vector<LintDiagnostic> Lints;
  Lints.push_back({"C4L-W005", 9, "t", "b"});
  Lints.push_back({"C4L-W001", 2, "", "a"});
  Lints.push_back({"C4L-W003", 9, "t", "a"});
  sortLints(Lints);
  EXPECT_EQ(Lints[0].Id, "C4L-W001");
  EXPECT_EQ(Lints[1].Id, "C4L-W003");
  EXPECT_EQ(Lints[2].Id, "C4L-W005");
}

} // namespace
