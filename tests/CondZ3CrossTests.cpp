//===- tests/CondZ3CrossTests.cpp - CC-SAT vs Z3 cross-check --------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-validates the home-grown satisfiability engine behind the SSG
/// stage (DNF expansion + congruence closure, spec/Cond.cpp) against Z3 on
/// thousands of random conditions and fact environments. The engine must
/// be *sound* (never claim unsat when Z3 finds a model under the same
/// facts) and, on equality-only conditions, *complete* (agree exactly).
///
//===----------------------------------------------------------------------===//

#include "domain/AbstractDomain.h"
#include "smt/CondSmt.h"
#include "spec/Cond.h"
#include "support/Rng.h"

#include <z3++.h>

#include <gtest/gtest.h>

using namespace c4;

namespace {

Term randTerm(Rng &R) {
  switch (R.below(3)) {
  case 0:
    return Term::argSrc(static_cast<unsigned>(R.below(3)));
  case 1:
    return Term::argTgt(static_cast<unsigned>(R.below(3)));
  default:
    return Term::constant(R.range(0, 2));
  }
}

Cond randCond(Rng &R, unsigned Depth, bool EqOnly) {
  if (Depth == 0 || R.chance(1, 3)) {
    CmpKind K = CmpKind::Eq;
    if (!EqOnly && R.chance(1, 4))
      K = R.chance(1, 2) ? CmpKind::Lt : CmpKind::Le;
    return Cond::cmp(K, randTerm(R), randTerm(R));
  }
  switch (R.below(3)) {
  case 0:
    return randCond(R, Depth - 1, EqOnly) && randCond(R, Depth - 1, EqOnly);
  case 1:
    return randCond(R, Depth - 1, EqOnly) || randCond(R, Depth - 1, EqOnly);
  default:
    return !randCond(R, Depth - 1, EqOnly);
  }
}

/// Random facts: free, small constant, or one of two shared symbols.
EventFacts randFacts(Rng &R) {
  EventFacts F(3);
  for (ArgFact &A : F) {
    switch (R.below(3)) {
    case 0:
      break;
    case 1:
      A = ArgFact::constant(R.range(0, 2));
      break;
    default:
      A = ArgFact::symbol(static_cast<unsigned>(R.below(2)));
      break;
    }
  }
  return F;
}

/// Decides satisfiability with Z3.
bool z3Satisfiable(const Cond &C, const EventFacts &Src,
                   const EventFacts &Tgt) {
  z3::context Ctx;
  z3::solver Solver(Ctx);
  std::vector<z3::expr> SrcVars, TgtVars, Symbols;
  for (unsigned I = 0; I != 3; ++I) {
    SrcVars.push_back(Ctx.int_const(("s" + std::to_string(I)).c_str()));
    TgtVars.push_back(Ctx.int_const(("t" + std::to_string(I)).c_str()));
  }
  for (unsigned I = 0; I != 2; ++I)
    Symbols.push_back(Ctx.int_const(("y" + std::to_string(I)).c_str()));
  auto AddFacts = [&](const EventFacts &F, std::vector<z3::expr> &Vars) {
    for (unsigned I = 0; I != F.size(); ++I) {
      if (F[I].Kind == ArgFact::Constant)
        Solver.add(Vars[I] ==
                   Ctx.int_val(static_cast<int64_t>(F[I].Value)));
      else if (F[I].Kind == ArgFact::Symbolic)
        Solver.add(Vars[I] == Symbols[F[I].Symbol]);
    }
  };
  AddFacts(Src, SrcVars);
  AddFacts(Tgt, TgtVars);

  std::function<z3::expr(const Cond &)> Enc = [&](const Cond &K) {
    switch (K.kind()) {
    case Cond::NodeKind::True:
      return Ctx.bool_val(true);
    case Cond::NodeKind::False:
      return Ctx.bool_val(false);
    case Cond::NodeKind::Atom: {
      auto TermOf = [&](const Term &T) {
        if (T.Kind == Term::ArgSrc)
          return SrcVars[T.Index];
        if (T.Kind == Term::ArgTgt)
          return TgtVars[T.Index];
        return Ctx.int_val(static_cast<int64_t>(T.Value));
      };
      z3::expr L = TermOf(K.atomLHS()), R2 = TermOf(K.atomRHS());
      switch (K.atomCmp()) {
      case CmpKind::Eq:
        return L == R2;
      case CmpKind::Lt:
        return L < R2;
      case CmpKind::Le:
        return L <= R2;
      }
      return Ctx.bool_val(false);
    }
    case Cond::NodeKind::Not:
      return !Enc(K.children()[0]);
    case Cond::NodeKind::And: {
      z3::expr E = Ctx.bool_val(true);
      for (const Cond &Child : K.children())
        E = E && Enc(Child);
      return E;
    }
    case Cond::NodeKind::Or: {
      z3::expr E = Ctx.bool_val(false);
      for (const Cond &Child : K.children())
        E = E || Enc(Child);
      return E;
    }
    }
    return Ctx.bool_val(false);
  };
  Solver.add(Enc(C));
  return Solver.check() == z3::sat;
}

} // namespace

TEST(CondZ3Cross, SoundOnMixedConditions) {
  Rng R(0xCC0);
  unsigned Z3Sat = 0, Z3Unsat = 0;
  for (int Trial = 0; Trial != 400; ++Trial) {
    Cond C = randCond(R, 3, /*EqOnly=*/false);
    EventFacts Src = randFacts(R), Tgt = randFacts(R);
    bool Z3Says = z3Satisfiable(C, Src, Tgt);
    bool CCSays = C.satisfiableUnder(Src, Tgt);
    (Z3Says ? Z3Sat : Z3Unsat)++;
    // Soundness: if the engine claims unsat, Z3 must agree.
    if (!CCSays) {
      EXPECT_FALSE(Z3Says) << "CC-SAT unsound on " << C.str();
    }
  }
  EXPECT_GT(Z3Sat, 50u);
  EXPECT_GT(Z3Unsat, 20u);
}

TEST(CondZ3Cross, CompleteOnEqualityConditions) {
  Rng R(0xCC1);
  unsigned Agreements = 0;
  for (int Trial = 0; Trial != 400; ++Trial) {
    Cond C = randCond(R, 3, /*EqOnly=*/true);
    EventFacts Src = randFacts(R), Tgt = randFacts(R);
    bool Z3Says = z3Satisfiable(C, Src, Tgt);
    bool CCSays = C.satisfiableUnder(Src, Tgt);
    EXPECT_EQ(CCSays, Z3Says) << C.str();
    Agreements += CCSays == Z3Says;
  }
  EXPECT_EQ(Agreements, 400u);
}

//===----------------------------------------------------------------------===//
// Relational-domain differential fuzzing (src/domain vs Z3)
//===----------------------------------------------------------------------===//

namespace {

/// Term generator for the domain fuzzer: four slots per side, and constants
/// straddling FreshValueMin so the unique-identity lower bound is exercised
/// from both directions.
Term randTermU(Rng &R) {
  switch (R.below(4)) {
  case 0:
    return Term::argSrc(static_cast<unsigned>(R.below(4)));
  case 1:
    return Term::argTgt(static_cast<unsigned>(R.below(4)));
  case 2:
    return Term::constant(R.range(0, 2));
  default:
    return Term::constant(FreshValueMin + R.range(-2, 2));
  }
}

Cond randCondU(Rng &R, unsigned Depth) {
  if (Depth == 0 || R.chance(1, 3)) {
    CmpKind K = CmpKind::Eq;
    if (R.chance(1, 2))
      K = R.chance(1, 2) ? CmpKind::Lt : CmpKind::Le;
    return Cond::cmp(K, randTermU(R), randTermU(R));
  }
  switch (R.below(3)) {
  case 0:
    return randCondU(R, Depth - 1) && randCondU(R, Depth - 1);
  case 1:
    return randCondU(R, Depth - 1) || randCondU(R, Depth - 1);
  default:
    return !randCondU(R, Depth - 1);
  }
}

/// Random facts including Unique identities (the fact kind the plain
/// z3Satisfiable helper above does not model — these trials go through
/// z3CondSatisfiable, which axiomatizes them).
EventFacts randFactsU(Rng &R) {
  EventFacts F(4);
  for (ArgFact &A : F) {
    switch (R.below(4)) {
    case 0:
      break;
    case 1:
      A = ArgFact::constant(R.range(0, 2));
      break;
    case 2:
      A = ArgFact::symbol(static_cast<unsigned>(R.below(2)));
      break;
    default:
      A = ArgFact::unique(static_cast<unsigned>(R.below(3)));
      break;
    }
  }
  return F;
}

} // namespace

// The prefilter's soundness contract, fuzzed: a domain *proof* must never
// disagree with Z3 under the full fact semantics (constants pinned,
// symbols congruent, unique identities pairwise distinct and above
// FreshValueMin). Unknown is always allowed; a disagreement on a proof is
// a bug that would silently change analyzer verdicts, so this test is the
// one that must never be weakened.
TEST(DomainZ3Fuzz, ProofsNeverDisagreeWithZ3) {
  Rng R(0xD0A0);
  unsigned Sat = 0, Unsat = 0, Unknown = 0;
  for (int Trial = 0; Trial != 4000; ++Trial) {
    Cond C = randCondU(R, 1 + static_cast<unsigned>(R.below(4)));
    EventFacts Src = randFactsU(R), Tgt = randFactsU(R);
    DomainVerdict V = domainDecide(C, Src, Tgt);
    if (V == DomainVerdict::Unknown) {
      ++Unknown;
      continue;
    }
    bool Z3Says = z3CondSatisfiable(C, Src, Tgt);
    if (V == DomainVerdict::ProvenSat) {
      ++Sat;
      EXPECT_TRUE(Z3Says) << "domain proved sat, Z3 disagrees: " << C.str();
    } else {
      ++Unsat;
      EXPECT_FALSE(Z3Says) << "domain proved unsat, Z3 disagrees: "
                           << C.str();
    }
  }
  // The domain must also actually decide things, or the test is vacuous.
  EXPECT_GT(Sat, 500u);
  EXPECT_GT(Unsat, 200u);
  (void)Unknown;
}

// The congruence engine is the fallback behind every domain Unknown in the
// oracle-assist path; with Unique facts in play (which the original tests
// above never generate) its unsat claims must still be sound against the
// same Z3 reference the domain is checked against.
TEST(DomainZ3Fuzz, CongruenceSoundWithUniqueFacts) {
  Rng R(0xD0A1);
  unsigned CCUnsat = 0;
  for (int Trial = 0; Trial != 1500; ++Trial) {
    Cond C = randCondU(R, 3);
    EventFacts Src = randFactsU(R), Tgt = randFactsU(R);
    if (C.satisfiableUnder(Src, Tgt))
      continue;
    ++CCUnsat;
    EXPECT_FALSE(z3CondSatisfiable(C, Src, Tgt))
        << "CC-SAT unsound on " << C.str();
  }
  EXPECT_GT(CCUnsat, 100u);
}

// Equality-only conditions with unique facts: the domain decides them
// (never Unknown) and agrees with Z3 exactly, mirroring the congruence
// completeness test above at the domain layer.
TEST(DomainZ3Fuzz, DecidesEqualityConditionsExactly) {
  Rng R(0xD0A2);
  unsigned Decided = 0;
  for (int Trial = 0; Trial != 1000; ++Trial) {
    Cond C = randCond(R, 3, /*EqOnly=*/true);
    EventFacts Src = randFactsU(R), Tgt = randFactsU(R);
    DomainVerdict V = domainDecide(C, Src, Tgt);
    if (V == DomainVerdict::Unknown)
      continue;
    ++Decided;
    EXPECT_EQ(V == DomainVerdict::ProvenSat, z3CondSatisfiable(C, Src, Tgt))
        << C.str();
  }
  EXPECT_GT(Decided, 900u);
}
