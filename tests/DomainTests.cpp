//===- tests/DomainTests.cpp - Relational prefilter domain tests ----------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the relational abstract domain (src/domain): DBM closure
/// and bottom detection, disequalities, unique-identity witnesses, join and
/// meet, model extraction, the three-valued domainDecide entry, and the
/// end-to-end guarantee that the analyzer prefilter never changes a
/// verdict (A/B against --no-prefilter).
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "domain/AbstractDomain.h"
#include "smt/CondSmt.h"

#include <gtest/gtest.h>

using namespace c4;

namespace {

//===----------------------------------------------------------------------===//
// DomainState
//===----------------------------------------------------------------------===//

TEST(DomainState, FreshStateIsNotBottom) {
  DomainState S;
  unsigned A = S.addVar();
  (void)A;
  EXPECT_FALSE(S.isBottom());
}

TEST(DomainState, EqualityContradictsDisequality) {
  DomainState S;
  unsigned A = S.addVar(), B = S.addVar();
  S.addEq(A, B);
  S.addNe(A, B);
  EXPECT_TRUE(S.isBottom());
}

TEST(DomainState, OrderingCycleClosesToBottom) {
  DomainState S;
  unsigned A = S.addVar(), B = S.addVar(), C = S.addVar();
  S.addLt(A, B);
  S.addLe(B, C);
  S.addLt(C, A);
  EXPECT_TRUE(S.isBottom());
}

TEST(DomainState, OrderingChainStaysSatisfiable) {
  DomainState S;
  unsigned A = S.addVar(), B = S.addVar(), C = S.addVar();
  S.addLt(A, B);
  S.addLe(B, C);
  EXPECT_FALSE(S.isBottom());
  std::vector<int64_t> Vals;
  ASSERT_TRUE(S.extractModel(Vals));
  EXPECT_LT(Vals[A], Vals[B]);
  EXPECT_LE(Vals[B], Vals[C]);
}

TEST(DomainState, ConstantConflict) {
  DomainState S;
  unsigned A = S.addVar(), B = S.addVar();
  S.addConst(A, 5);
  S.addConst(B, 7);
  EXPECT_FALSE(S.isBottom());
  S.addEq(A, B);
  EXPECT_TRUE(S.isBottom());
}

TEST(DomainState, EmptyBoundInterval) {
  DomainState S;
  unsigned A = S.addVar();
  S.addLowerBound(A, 10);
  S.addUpperBound(A, 9);
  EXPECT_TRUE(S.isBottom());
}

TEST(DomainState, UniqueIdentitySemantics) {
  // Same id => equal: a disequality between the carriers is contradictory.
  {
    DomainState S;
    unsigned A = S.addVar(), B = S.addVar();
    S.addUnique(A, 1);
    S.addUnique(B, 1);
    S.addNe(A, B);
    EXPECT_TRUE(S.isBottom());
  }
  // Distinct ids => disequal: forcing equality is contradictory.
  {
    DomainState S;
    unsigned A = S.addVar(), B = S.addVar();
    S.addUnique(A, 1);
    S.addUnique(B, 2);
    S.addEq(A, B);
    EXPECT_TRUE(S.isBottom());
  }
  // Any id >= FreshValueMin: pinning one below is contradictory.
  {
    DomainState S;
    unsigned A = S.addVar();
    S.addUnique(A, 1);
    S.addConst(A, FreshValueMin - 1);
    EXPECT_TRUE(S.isBottom());
  }
}

TEST(DomainState, MeetOfDisjointIntervals) {
  DomainState S;
  unsigned A = S.addVar();
  DomainState T;
  unsigned A2 = T.addVar();
  ASSERT_EQ(A, A2);
  S.addUpperBound(A, 3);
  T.addLowerBound(A2, 4);
  EXPECT_FALSE(S.isBottom());
  EXPECT_FALSE(T.isBottom());
  S.meetWith(T);
  EXPECT_TRUE(S.isBottom());
}

TEST(DomainState, JoinIsAnUpperBound) {
  // join({a == 1}, {a == 3}) admits both endpoints (and, as a DBM hull,
  // the gap between them).
  DomainState S;
  unsigned A = S.addVar();
  DomainState T;
  (void)T.addVar();
  S.addConst(A, 1);
  T.addConst(A, 3);
  S.joinWith(T);
  EXPECT_FALSE(S.isBottom());
  DomainState Probe = S;
  Probe.addConst(A, 1);
  EXPECT_FALSE(Probe.isBottom());
  DomainState Probe2 = S;
  Probe2.addConst(A, 3);
  EXPECT_FALSE(Probe2.isBottom());
  // The hull still excludes values outside [1, 3].
  DomainState Probe3 = S;
  Probe3.addConst(A, 7);
  EXPECT_TRUE(Probe3.isBottom());
}

TEST(DomainState, OverflowNeverClaimsBottom) {
  DomainState S;
  unsigned A = S.addVar(), B = S.addVar();
  // Push a bound past the clamp, then add a contradiction: the state must
  // refuse to prove anything rather than report a clamped-away bottom.
  S.addDiff(A, B, int64_t(1) << 62);
  S.addEq(A, B);
  S.addNe(A, B);
  EXPECT_TRUE(S.overflowed());
  EXPECT_FALSE(S.isBottom());
}

//===----------------------------------------------------------------------===//
// domainDecide
//===----------------------------------------------------------------------===//

TEST(DomainDecide, OrderingContradiction) {
  Cond C = Cond::lt(Term::argSrc(0), Term::argTgt(0)) &&
           Cond::lt(Term::argTgt(0), Term::argSrc(0));
  EXPECT_EQ(domainDecide(C, EventFacts(1), EventFacts(1)),
            DomainVerdict::ProvenUnsat);
}

TEST(DomainDecide, FreeOrderingIsSatWithVerifiedModel) {
  Cond C = Cond::lt(Term::argSrc(0), Term::argTgt(0));
  EXPECT_EQ(domainDecide(C, EventFacts(1), EventFacts(1)),
            DomainVerdict::ProvenSat);
}

TEST(DomainDecide, SharedSymbolStrictOrder) {
  Cond C = Cond::lt(Term::argSrc(0), Term::argTgt(0));
  EventFacts Src{ArgFact::symbol(0)}, Tgt{ArgFact::symbol(0)};
  EXPECT_EQ(domainDecide(C, Src, Tgt), DomainVerdict::ProvenUnsat);
}

TEST(DomainDecide, UniqueBelowFreshValueMin) {
  Cond C = Cond::lt(Term::argSrc(0), Term::constant(5));
  EventFacts Src{ArgFact::unique(3)};
  EXPECT_EQ(domainDecide(C, Src, EventFacts(1)),
            DomainVerdict::ProvenUnsat);
}

TEST(DomainDecide, DistinctUniquesNeverEqual) {
  Cond C = Cond::eq(Term::argSrc(0), Term::argTgt(0));
  EventFacts Src{ArgFact::unique(1)}, Tgt{ArgFact::unique(2)};
  EXPECT_EQ(domainDecide(C, Src, Tgt), DomainVerdict::ProvenUnsat);
  EventFacts Tgt2{ArgFact::unique(1)};
  EXPECT_EQ(domainDecide(C, Src, Tgt2), DomainVerdict::ProvenSat);
}

TEST(DomainDecide, DisjunctionNeedsEveryClauseBottom) {
  Cond Bad = Cond::lt(Term::argSrc(0), Term::argSrc(0));
  Cond Fine = Cond::eq(Term::argSrc(0), Term::argTgt(0));
  EXPECT_EQ(domainDecide(Bad || Fine, EventFacts(1), EventFacts(1)),
            DomainVerdict::ProvenSat);
  EXPECT_EQ(domainDecide(Bad || Bad, EventFacts(1), EventFacts(1)),
            DomainVerdict::ProvenUnsat);
}

//===----------------------------------------------------------------------===//
// Facts shorter than the referenced slots (termElem regression)
//===----------------------------------------------------------------------===//

// The congruence universe and the domain both index facts by slot; slots
// beyond the facts vector are free. A unique fact next to out-of-range
// slot references used to misalign the parallel class tables — keep these
// exact shapes as a regression.
TEST(ShortFacts, OutOfRangeSlotsAreFree) {
  Cond C = Cond::eq(Term::argSrc(0), Term::argTgt(2)) &&
           Cond::eq(Term::argSrc(4), Term::argTgt(5));
  EventFacts Src{ArgFact::unique(3)};
  EventFacts Tgt;
  EXPECT_TRUE(C.satisfiableUnder(Src, Tgt));
  EXPECT_EQ(domainDecide(C, Src, Tgt), DomainVerdict::ProvenSat);
  EXPECT_TRUE(z3CondSatisfiable(C, Src, Tgt));
}

TEST(ShortFacts, UniqueSemanticsSurviveShortVectors) {
  // The unsat answer must come from the unique disequality, not from any
  // accidental slot/class misalignment caused by the trailing free slots.
  Cond C = Cond::eq(Term::argSrc(0), Term::argTgt(0)) &&
           Cond::eq(Term::argSrc(3), Term::argSrc(3));
  EventFacts Src{ArgFact::unique(1)};
  EventFacts Tgt{ArgFact::unique(2)};
  EXPECT_FALSE(C.satisfiableUnder(Src, Tgt));
  EXPECT_EQ(domainDecide(C, Src, Tgt), DomainVerdict::ProvenUnsat);
  EXPECT_FALSE(z3CondSatisfiable(C, Src, Tgt));
}

//===----------------------------------------------------------------------===//
// Prefilter A/B: verdicts are identical with and without it
//===----------------------------------------------------------------------===//

class PrefilterABTest : public ::testing::Test {
public:
  PrefilterABTest() { M = Sch.addContainer("M", Reg.lookup("map")); }

  unsigned op(const char *Name) {
    const DataTypeSpec *T = Sch.container(M).Type;
    return T->opIndex(*T->findOp(Name));
  }

  AbstractHistory buildPutGet(AbsFact PutKey, AbsFact GetKey,
                              unsigned NumLocals = 0) {
    AbstractHistory A(Sch);
    for (unsigned I = 0; I != NumLocals; ++I)
      A.addLocalVar();
    unsigned P = A.addTransaction("P");
    unsigned Put = A.addEvent(P, M, op("put"), {PutKey});
    A.addEo(A.entry(P), Put);
    unsigned G = A.addTransaction("G");
    unsigned Get = A.addEvent(G, M, op("get"), {GetKey});
    A.addEo(A.entry(G), Get);
    A.setMaySo(P, G);
    return A;
  }

  /// Runs the analysis twice (prefilter on/off) and asserts verdict
  /// equality down to the rendered counter-example text.
  void expectSameVerdict(const AbstractHistory &A) {
    AnalyzerOptions On, Off;
    On.UsePrefilter = true;
    Off.UsePrefilter = false;
    AnalysisResult ROn = analyze(A, On);
    AnalysisResult ROff = analyze(A, Off);
    EXPECT_EQ(ROn.serializable(), ROff.serializable());
    EXPECT_EQ(ROn.Generalized, ROff.Generalized);
    ASSERT_EQ(ROn.Violations.size(), ROff.Violations.size());
    for (size_t I = 0; I != ROn.Violations.size(); ++I) {
      const Violation &VOn = ROn.Violations[I];
      const Violation &VOff = ROff.Violations[I];
      EXPECT_EQ(VOn.TxnNames, VOff.TxnNames);
      EXPECT_EQ(VOn.Inconclusive, VOff.Inconclusive);
      EXPECT_EQ(VOn.Validated, VOff.Validated);
      ASSERT_EQ(VOn.CE.has_value(), VOff.CE.has_value());
      if (VOn.CE)
        EXPECT_EQ(VOn.CE->Text, VOff.CE->Text);
    }
    // The refutation invariant must hold on both sides; the prefilter only
    // moves queries out of the SMT column.
    EXPECT_EQ(ROn.SMTRefuted, ROff.SMTRefuted);
    EXPECT_EQ(ROn.SmtQueries + ROn.SmtQueriesPrefiltered,
              ROff.SmtQueries + ROff.SmtQueriesPrefiltered);
    EXPECT_EQ(ROff.SmtQueriesPrefiltered, 0u);
    EXPECT_EQ(ROff.PrefilterUnknowns, 0u);
    EXPECT_EQ(ROn.PrefilterDisagreements, 0u);
  }

  TypeRegistry Reg;
  Schema Sch;
  unsigned M = 0;
};

TEST_F(PrefilterABTest, ViolationUnchanged) {
  expectSameVerdict(buildPutGet(AbsFact::free(), AbsFact::free()));
}

TEST_F(PrefilterABTest, SerializableUnchanged) {
  expectSameVerdict(buildPutGet(AbsFact::localVar(0), AbsFact::localVar(0),
                                /*NumLocals=*/1));
}

TEST_F(PrefilterABTest, CheckModeFindsNoDisagreements) {
  AnalyzerOptions O;
  O.UsePrefilter = true;
  O.CheckPrefilter = true;
  for (AbstractHistory A : {buildPutGet(AbsFact::free(), AbsFact::free())}) {
    AnalysisResult R = analyze(A, O);
    EXPECT_EQ(R.PrefilterDisagreements, 0u);
  }
}

} // namespace
