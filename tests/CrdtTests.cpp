//===- tests/CrdtTests.cpp - Commutative-type repairs ---------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the max-register extension type and the "repair with a better
/// data type" story (examples/fix_with_crdts.cpp): the read-modify-write
/// high-score pattern is flagged on a register but proved serializable on a
/// max-register; counters likewise fix get/put tallies.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "frontend/Frontend.h"

#include <gtest/gtest.h>

using namespace c4;

TEST(MaxReg, SpecEntries) {
  TypeRegistry Reg;
  const DataTypeSpec *T = Reg.lookup("maxreg");
  ASSERT_NE(T, nullptr);
  unsigned Put = T->opIndex(*T->findOp("put"));
  unsigned Get = T->opIndex(*T->findOp("get"));
  EXPECT_TRUE(commutesCond(*T, Put, Put, CommuteMode::Plain).isTrue());
  // Absorption: smaller-or-equal put dies under a later larger put.
  Cond Abs = absorbsCond(*T, Put, Put, /*Far=*/true);
  EXPECT_TRUE(Abs.eval({3}, {5}));
  EXPECT_TRUE(Abs.eval({5}, {5}));
  EXPECT_FALSE(Abs.eval({5}, {3}));
  // Asymmetric: get():r tolerates put(v) with v <= r.
  Cond Asym = commutesCond(*T, Put, Get, CommuteMode::Asym);
  EXPECT_TRUE(Asym.eval({3}, {5}));
  EXPECT_FALSE(Asym.eval({7}, {5}));
}

TEST(MaxReg, StateMergesByMaximum) {
  TypeRegistry Reg;
  const DataTypeSpec *T = Reg.lookup("maxreg");
  const OpSig &Put = *T->findOp("put");
  const OpSig &Get = *T->findOp("get");
  std::unique_ptr<ContainerState> S = T->makeState();
  S->apply(Put, {5});
  S->apply(Put, {3});
  EXPECT_EQ(S->eval(Get, {}), 5);
  S->apply(Put, {9});
  EXPECT_EQ(S->eval(Get, {}), 9);
}

TEST(MaxReg, HighScoreRepair) {
  // Buggy: read-modify-write on a register.
  CompileResult Buggy = compileC4L(R"(
container register Best;
txn saveScore(s) {
  let hi = Best.get();
  if (hi < s) { Best.put(s); }
}
txn showBest() { let b = Best.get(); return b; }
)");
  ASSERT_TRUE(Buggy.ok()) << Buggy.Error;
  AnalysisResult RBuggy = analyze(*Buggy.Program->History);
  EXPECT_FALSE(RBuggy.Violations.empty());

  // Fixed: commutative max-register.
  CompileResult Fixed = compileC4L(R"(
container maxreg Best;
txn saveScore(s) { Best.put(s); }
txn showBest() { let b = Best.get(); return b; }
)");
  ASSERT_TRUE(Fixed.ok()) << Fixed.Error;
  AnalysisResult RFixed = analyze(*Fixed.Program->History);
  EXPECT_TRUE(RFixed.Violations.empty())
      << reportStr(*Fixed.Program->History, RFixed);
  EXPECT_TRUE(RFixed.serializable())
      << reportStr(*Fixed.Program->History, RFixed);
}

TEST(MaxReg, CounterRepairForTallies) {
  CompileResult Fixed = compileC4L(R"(
container counter Votes;
txn vote() { Votes.inc(1); }
txn results() { let v = Votes.read(); display(v); }
)");
  ASSERT_TRUE(Fixed.ok()) << Fixed.Error;
  AnalyzerOptions O;
  O.DisplayFilter = true;
  AnalysisResult R = analyze(*Fixed.Program->History, O);
  EXPECT_TRUE(R.Violations.empty());
}
