//===- tests/BenchAppsTests.cpp - Benchmark suite sanity ------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sanity checks over the 28 Table 1 application models: every model
/// compiles, its transaction count matches the paper's T column, its
/// declared classification rules reference real transactions, and a few
/// spot analyses run end to end (fast ones only; the full table is
/// bench_table1).
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "apps/Apps.h"
#include "frontend/Frontend.h"

#include <gtest/gtest.h>

using namespace c4;
using namespace c4bench;

TEST(BenchApps, SuiteShape) {
  const std::vector<BenchApp> &Apps = benchApps();
  ASSERT_EQ(Apps.size(), 28u);
  unsigned TouchDevelop = 0, Cassandra = 0;
  for (const BenchApp &App : Apps) {
    if (std::string(App.Domain) == "TouchDevelop")
      ++TouchDevelop;
    else if (std::string(App.Domain) == "Cassandra")
      ++Cassandra;
  }
  EXPECT_EQ(TouchDevelop, 17u);
  EXPECT_EQ(Cassandra, 11u);
}

TEST(BenchApps, AllCompileWithMatchingTransactionCounts) {
  for (const BenchApp &App : benchApps()) {
    CompileResult R = compileC4L(App.Source);
    ASSERT_TRUE(R.ok()) << App.Name << ": " << R.Error;
    EXPECT_EQ(R.Program->History->numTxns(), App.PaperT)
        << App.Name << ": transaction count diverges from Table 1";
    EXPECT_GT(R.Program->History->numStoreEvents(), 0u) << App.Name;
  }
}

TEST(BenchApps, ClassificationRulesReferenceRealTransactions) {
  for (const BenchApp &App : benchApps()) {
    CompileResult R = compileC4L(App.Source);
    ASSERT_TRUE(R.ok()) << App.Name;
    std::vector<std::string> Names;
    for (unsigned T = 0; T != R.Program->History->numTxns(); ++T)
      Names.push_back(R.Program->History->txn(T).Name);
    for (const ClassRule &Rule : App.Rules)
      for (const std::string &Txn : Rule.Txns)
        EXPECT_NE(std::find(Names.begin(), Names.end(), Txn), Names.end())
            << App.Name << ": rule references unknown txn " << Txn;
  }
}

TEST(BenchApps, ClassifyMatchesBySubset) {
  const BenchApp *Tetris = nullptr;
  for (const BenchApp &App : benchApps())
    if (std::string(App.Name) == "Tetris")
      Tetris = &App;
  ASSERT_NE(Tetris, nullptr);
  EXPECT_EQ(classify(*Tetris, {"saveScore"}), ViolationClass::Harmful);
  EXPECT_EQ(classify(*Tetris, {"leaderboard", "saveScore"}),
            ViolationClass::Harmful);
  EXPECT_EQ(classify(*Tetris, {"leaderboard"}), ViolationClass::Harmless);
}

TEST(BenchApps, SerializableModelsAreProved) {
  // FieldGPS, cassandra-lock and shopping-cart report zero violations in
  // Table 1; our models are proved serializable outright.
  for (const BenchApp &App : benchApps()) {
    std::string Name = App.Name;
    if (Name != "FieldGPS" && Name != "cassandra-lock" &&
        Name != "shopping-cart")
      continue;
    CompileResult R = compileC4L(App.Source);
    ASSERT_TRUE(R.ok()) << App.Name;
    AnalysisResult A = analyze(*R.Program->History);
    EXPECT_TRUE(A.Violations.empty()) << App.Name;
  }
}

TEST(BenchApps, HarmfulPatternsDetected) {
  // The read-modify-write high score of Tetris is found and classified
  // harmful; it survives filtering (display code never hides it).
  const BenchApp *Tetris = nullptr;
  for (const BenchApp &App : benchApps())
    if (std::string(App.Name) == "Tetris")
      Tetris = &App;
  ASSERT_NE(Tetris, nullptr);
  CompileResult R = compileC4L(Tetris->Source);
  ASSERT_TRUE(R.ok());
  AnalyzerOptions O;
  O.DisplayFilter = true;
  O.UseAtomicSets = !R.Program->AtomicSets.empty();
  O.AtomicSets = R.Program->AtomicSets;
  AnalysisResult A = analyze(*R.Program->History, O);
  unsigned Harmful = 0;
  for (const Violation &V : A.Violations)
    if (classify(*Tetris, V.TxnNames) == ViolationClass::Harmful)
      ++Harmful;
  EXPECT_GE(Harmful, 1u);
}
