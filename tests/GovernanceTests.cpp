//===- tests/GovernanceTests.cpp - Solver resource governance -------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the solver resource-governance layer: deterministic rlimit
/// budgets with geometric retry escalation, the global analysis deadline
/// with cooperative cancellation, the layout-viability DFS budget, the
/// violation triage (validated / unvalidated / inconclusive) and the
/// structured query trace. The central property: with rlimit budgets,
/// verdicts, violation sets and retry counters are bit-identical across
/// repeated runs and across thread counts — wall time never decides a
/// verdict unless the rlimit budget is disabled.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "spec/Registry.h"
#include "support/Deadline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>

using namespace c4;

namespace {

class GovernanceTest : public ::testing::Test {
public:
  GovernanceTest() { M = Sch.addContainer("M", Reg.lookup("map")); }

  unsigned op(const char *Name) {
    const DataTypeSpec *T = Sch.container(M).Type;
    return T->opIndex(*T->findOp(Name));
  }

  /// Figure 1 put/get with free keys: a genuine violation that needs the
  /// SMT stage (the fast analysis cannot refute it).
  AbstractHistory buildPutGet() {
    AbstractHistory A(Sch);
    unsigned P = A.addTransaction("P");
    unsigned Put = A.addEvent(P, M, op("put"), {AbsFact::free()});
    A.addEo(A.entry(P), Put);
    unsigned G = A.addTransaction("G");
    unsigned Get = A.addEvent(G, M, op("get"), {AbsFact::free()});
    A.addEo(A.entry(G), Get);
    A.setMaySo(P, G);
    return A;
  }

  /// A denser variant: several free-key writer/reader transactions with
  /// unrestricted session order, so the general SSG is well-connected and
  /// the layout-viability DFS has real work to do.
  AbstractHistory buildDense(unsigned Writers) {
    AbstractHistory A(Sch);
    for (unsigned I = 0; I != Writers; ++I) {
      unsigned P = A.addTransaction("W" + std::to_string(I));
      unsigned Put = A.addEvent(P, M, op("put"), {AbsFact::free()});
      A.addEo(A.entry(P), Put);
      unsigned G = A.addTransaction("R" + std::to_string(I));
      unsigned Get = A.addEvent(G, M, op("get"), {AbsFact::free()});
      A.addEo(A.entry(G), Get);
    }
    A.allowAllSo();
    return A;
  }

  TypeRegistry Reg;
  Schema Sch;
  unsigned M = 0;
};

/// The deterministic fingerprint of a result: everything except wall times
/// and the (telemetry-only) rlimit spend.
struct Fingerprint {
  std::vector<std::vector<unsigned>> ViolationKeys;
  std::vector<bool> Inconclusive, Validated;
  bool Generalized, DeadlineExpired;
  unsigned KChecked, UnfoldingsChecked, UnfoldingsSubsumed, SSGFlagged;
  unsigned SMTRefuted, SMTUnknown, SMTRetries, UnfoldingsDeferred;

  explicit Fingerprint(const AnalysisResult &R)
      : Generalized(R.Generalized), DeadlineExpired(R.DeadlineExpired),
        KChecked(R.KChecked), UnfoldingsChecked(R.UnfoldingsChecked),
        UnfoldingsSubsumed(R.UnfoldingsSubsumed), SSGFlagged(R.SSGFlagged),
        SMTRefuted(R.SMTRefuted), SMTUnknown(R.SMTUnknown),
        SMTRetries(R.SMTRetries), UnfoldingsDeferred(R.UnfoldingsDeferred) {
    for (const Violation &V : R.Violations) {
      ViolationKeys.push_back(V.OrigTxns);
      Inconclusive.push_back(V.Inconclusive);
      Validated.push_back(V.Validated);
    }
  }

  bool operator==(const Fingerprint &O) const {
    return ViolationKeys == O.ViolationKeys && Inconclusive == O.Inconclusive &&
           Validated == O.Validated && Generalized == O.Generalized &&
           DeadlineExpired == O.DeadlineExpired && KChecked == O.KChecked &&
           UnfoldingsChecked == O.UnfoldingsChecked &&
           UnfoldingsSubsumed == O.UnfoldingsSubsumed &&
           SSGFlagged == O.SSGFlagged && SMTRefuted == O.SMTRefuted &&
           SMTUnknown == O.SMTUnknown && SMTRetries == O.SMTRetries &&
           UnfoldingsDeferred == O.UnfoldingsDeferred;
  }
};

} // namespace

TEST(SolverBudgetTest, GeometricEscalationClampsAtCap) {
  SolverBudget B;
  B.Rlimit = 1000;
  B.Escalation = 4;
  B.RlimitCap = 10000;
  EXPECT_EQ(B.rlimitForAttempt(0), 1000u);
  EXPECT_EQ(B.rlimitForAttempt(1), 4000u);
  EXPECT_EQ(B.rlimitForAttempt(2), 10000u); // 16000 clamped to the cap
  EXPECT_EQ(B.rlimitForAttempt(3), 10000u);

  // Rlimit 0 disables the deterministic budget entirely (wall only).
  B.Rlimit = 0;
  EXPECT_EQ(B.rlimitForAttempt(0), 0u);
  EXPECT_EQ(B.rlimitForAttempt(5), 0u);

  // Z3's rlimit parameter is 32-bit; escalation must not overflow past it.
  B.Rlimit = 0x80000000ull;
  B.RlimitCap = ~0ull;
  EXPECT_LE(B.rlimitForAttempt(8), 0xFFFFFFFFull);
}

TEST(DeadlineTest, DefaultNeverExpires) {
  Deadline D;
  EXPECT_FALSE(D.active());
  EXPECT_FALSE(D.expired());
  EXPECT_EQ(D.remainingMs(1234), 1234u);
}

TEST(DeadlineTest, ArmedDeadlineExpiresAndLatches) {
  Deadline D(1);
  EXPECT_TRUE(D.active());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(D.expired());
  EXPECT_TRUE(D.expired()); // latched
  EXPECT_EQ(D.remainingMs(1000), 0u);
}

TEST(DeadlineTest, ManualCancelLatches) {
  Deadline D(1000000);
  EXPECT_FALSE(D.expired());
  EXPECT_GT(D.remainingMs(~0u), 0u);
  D.cancel();
  EXPECT_TRUE(D.expired());
}

TEST(QueryTraceTest, JsonlRendering) {
  QueryTrace T;
  QueryRecord R;
  R.Stage = "bounded";
  R.K = 2;
  R.Unfolding = 7;
  R.Attempts = 3;
  R.RlimitBudget = 16000;
  R.RlimitSpent = 12345;
  R.Outcome = "unknown";
  R.WallMs = 1.5;
  T.append(R);
  std::string J = T.toJsonl();
  EXPECT_NE(J.find("\"seq\":0"), std::string::npos) << J;
  EXPECT_NE(J.find("\"stage\":\"bounded\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"k\":2"), std::string::npos) << J;
  EXPECT_NE(J.find("\"unfolding\":7"), std::string::npos) << J;
  EXPECT_NE(J.find("\"attempts\":3"), std::string::npos) << J;
  EXPECT_NE(J.find("\"retries\":2"), std::string::npos) << J;
  EXPECT_NE(J.find("\"rlimit_budget\":16000"), std::string::npos) << J;
  EXPECT_NE(J.find("\"outcome\":\"unknown\""), std::string::npos) << J;
  EXPECT_EQ(std::count(J.begin(), J.end(), '\n'), 1);
}

TEST_F(GovernanceTest, TinyRlimitYieldsDeterministicInconclusive) {
  // A budget far below what ϕ_cyclic needs: every attempt (including the
  // escalated retries) returns unknown, and the violation is recorded as
  // inconclusive — deterministically, across repeated runs and thread
  // counts, because the rlimit budget counts deductions, not milliseconds.
  AbstractHistory A = buildPutGet();
  AnalyzerOptions O;
  O.Budget.Rlimit = 1;
  O.Budget.Escalation = 2;
  O.Budget.MaxRetries = 2;
  O.Budget.RlimitCap = 8;

  std::vector<Fingerprint> Runs;
  std::vector<std::string> Reports;
  for (unsigned Threads : {1u, 1u, 4u, 4u}) {
    O.NumThreads = Threads;
    AnalysisResult R = analyze(A, O);
    ASSERT_FALSE(R.Violations.empty());
    EXPECT_TRUE(R.Violations.front().Inconclusive);
    EXPECT_FALSE(R.Violations.front().CE.has_value());
    EXPECT_GT(R.SMTUnknown, 0u);
    // Every unknown burned its full retry allowance.
    EXPECT_EQ(R.SMTRetries, R.SMTUnknown * O.Budget.MaxRetries);
    EXPECT_EQ(R.inconclusiveViolations(), R.Violations.size());
    EXPECT_EQ(R.validatedViolations(), 0u);
    EXPECT_FALSE(R.Generalized); // inconclusive blocks generalization
    Runs.emplace_back(R);
    Reports.push_back(reportStr(A, R));
    EXPECT_NE(Reports.back().find("inconclusive (solver budget exhausted)"),
              std::string::npos)
        << Reports.back();
  }
  for (size_t I = 1; I != Runs.size(); ++I)
    EXPECT_TRUE(Runs[I] == Runs[0]) << "run " << I << " diverged:\n"
                                    << Reports[I] << "vs\n"
                                    << Reports[0];
}

TEST_F(GovernanceTest, DefaultBudgetStillFindsConcreteViolation) {
  // Sanity: the governance layer at defaults does not change PR 1 verdicts.
  AbstractHistory A = buildPutGet();
  AnalysisResult R = analyze(A);
  ASSERT_FALSE(R.Violations.empty());
  const Violation &V = R.Violations.front();
  EXPECT_FALSE(V.Inconclusive);
  EXPECT_TRUE(V.CE.has_value());
  EXPECT_EQ(R.SMTRetries, 0u);
  EXPECT_GT(R.RlimitSpent, 0u); // spend telemetry flows back
}

TEST_F(GovernanceTest, QueryTraceIsDeterministicAcrossThreads) {
  AbstractHistory A = buildDense(2);
  AnalyzerOptions O;
  QueryTrace T1, T4;
  O.NumThreads = 1;
  O.Trace = &T1;
  AnalysisResult R1 = analyze(A, O);
  O.NumThreads = 4;
  O.Trace = &T4;
  AnalysisResult R4 = analyze(A, O);
  EXPECT_TRUE(Fingerprint(R1) == Fingerprint(R4));

  std::vector<QueryRecord> A1 = T1.records(), A4 = T4.records();
  ASSERT_GT(A1.size(), 0u);
  ASSERT_EQ(A1.size(), A4.size());
  for (size_t I = 0; I != A1.size(); ++I) {
    EXPECT_STREQ(A1[I].Stage, A4[I].Stage) << I;
    EXPECT_EQ(A1[I].K, A4[I].K) << I;
    EXPECT_EQ(A1[I].Unfolding, A4[I].Unfolding) << I;
    EXPECT_EQ(A1[I].Attempts, A4[I].Attempts) << I;
    EXPECT_EQ(A1[I].RlimitBudget, A4[I].RlimitBudget) << I;
    EXPECT_STREQ(A1[I].Outcome, A4[I].Outcome) << I;
    // WallMs and RlimitSpent are telemetry: not compared.
  }
}

TEST_F(GovernanceTest, DfsBudgetExhaustionIsCountedAndSound) {
  // A one-step budget exhausts on the first layout the DFS touches; the
  // filter degrades to "keep everything" (sound — the precise machinery
  // still decides) and the exhaustion is surfaced, not silent.
  AbstractHistory A = buildDense(3);
  AnalyzerOptions O;
  O.LayoutDfsBudget = 1;
  AnalysisResult Tiny = analyze(A, O);
  EXPECT_GT(Tiny.DfsBudgetExhausted, 0u);
  EXPECT_EQ(Tiny.LayoutsFiltered, 0u); // nothing was ever filtered out

  AnalyzerOptions Def;
  AnalysisResult Full = analyze(A, Def);
  EXPECT_EQ(Full.DfsBudgetExhausted, 0u);

  // Identical verdicts: the filter only skips work, never changes results.
  ASSERT_EQ(Tiny.Violations.size(), Full.Violations.size());
  for (size_t I = 0; I != Tiny.Violations.size(); ++I) {
    EXPECT_EQ(Tiny.Violations[I].OrigTxns, Full.Violations[I].OrigTxns);
    EXPECT_EQ(Tiny.Violations[I].Inconclusive, Full.Violations[I].Inconclusive);
  }
  EXPECT_EQ(Tiny.Generalized, Full.Generalized);
  EXPECT_EQ(Tiny.KChecked, Full.KChecked);
}

TEST_F(GovernanceTest, ExpiredDeadlineDegradesSoundly) {
  // A 1ms deadline expires during (or right after) the fast stage of any
  // real run. Whatever the cut point, the result must degrade soundly:
  // no generalization claim, no serializability claim, and the report says
  // what was and was not covered.
  AbstractHistory A = buildDense(3);
  for (unsigned Threads : {1u, 4u}) {
    AnalyzerOptions O;
    O.DeadlineMs = 1;
    O.NumThreads = Threads;
    AnalysisResult R = analyze(A, O);
    if (!R.DeadlineExpired)
      continue; // machine outran the deadline: nothing to assert
    EXPECT_FALSE(R.Generalized);
    EXPECT_FALSE(R.serializable());
    std::string Report = reportStr(A, R);
    EXPECT_NE(Report.find("deadline"), std::string::npos) << Report;
    EXPECT_NE(Report.find("partial but sound"), std::string::npos) << Report;
  }
}

TEST_F(GovernanceTest, GenerousDeadlineChangesNothing) {
  // A deadline far beyond the run's needs must leave the result identical
  // to an unbounded run (the governance layer is pay-for-what-you-use).
  AbstractHistory A = buildPutGet();
  AnalyzerOptions O;
  O.DeadlineMs = 600000;
  AnalysisResult R = analyze(A, O);
  EXPECT_FALSE(R.DeadlineExpired);
  EXPECT_EQ(R.UnfoldingsDeferred, 0u);
  AnalysisResult Base = analyze(A);
  EXPECT_TRUE(Fingerprint(R) == Fingerprint(Base));
}
