//===- tests/AnalyzerTests.cpp - End-to-end pipeline tests ----------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the full pipeline (general SSG -> unfoldings -> SMT) on the
/// paper's worked examples:
///
///  * Figure 1 put/get program: violation with free keys, serializable with
///    a global key (fast analysis) and with session-local keys (SMT),
///  * Figure 10 quiz app: argument-equality invariants eliminate the false
///    alarm,
///  * Figure 11 addFollower: control-flow constraints plus asymmetric
///    commutativity eliminate the false alarms,
///  * Figure 12 add_row: fresh-unique-value reasoning eliminates the false
///    alarm,
///
/// and validates extracted counter-examples end to end: they are
/// concretizations of the abstract history and genuinely unserializable.
///
//===----------------------------------------------------------------------===//

#include "abstract/Concretize.h"
#include "analysis/Analyzer.h"

#include <gtest/gtest.h>

using namespace c4;

namespace {

class PipelineTest : public ::testing::Test {
public:
  PipelineTest() {
    M = Sch.addContainer("M", Reg.lookup("map"));
    Quiz = Sch.addContainer("Quiz", Reg.lookup("table"));
    Users = Sch.addContainer("Users", Reg.lookup("table"));
  }

  unsigned op(unsigned Container, const char *Name) {
    const DataTypeSpec *T = Sch.container(Container).Type;
    return T->opIndex(*T->findOp(Name));
  }

  /// Figure 1 program over container M; keys described by \p KeyFact
  /// factories (may return Free / LocalVar / GlobalVar facts).
  AbstractHistory buildPutGet(AbsFact PutKey, AbsFact GetKey) {
    AbstractHistory A(Sch);
    unsigned P = A.addTransaction("P");
    unsigned Put = A.addEvent(P, M, op(M, "put"), {PutKey});
    A.addEo(A.entry(P), Put);
    unsigned G = A.addTransaction("G");
    unsigned Get = A.addEvent(G, M, op(M, "get"), {GetKey});
    A.addEo(A.entry(G), Get);
    A.setMaySo(P, G); // program order: P(x,y); G(z)
    return A;
  }

  TypeRegistry Reg;
  Schema Sch;
  unsigned M = 0, Quiz = 0, Users = 0;
};

} // namespace

TEST_F(PipelineTest, Fig1FreeKeysIsViolation) {
  AbstractHistory A = buildPutGet(AbsFact::free(), AbsFact::free());
  AnalysisResult R = analyze(A);
  ASSERT_FALSE(R.Violations.empty());
  EXPECT_FALSE(R.FastProvedSerializable);
  const Violation &V = R.Violations.front();
  EXPECT_FALSE(V.Inconclusive);
  ASSERT_TRUE(V.CE.has_value());

  // Validate the counter-example end to end: it concretizes the abstract
  // history and is genuinely unserializable.
  EXPECT_TRUE(findConcretization(V.CE->H, A).has_value());
  EXPECT_FALSE(isSerializable(V.CE->H));
}

TEST_F(PipelineTest, Fig1GlobalKeyFastProved) {
  // All accesses share one global key: SC2a fails (the puts always absorb
  // each other), so the fast SSG analysis already proves serializability.
  AbstractHistory A2(Sch);
  unsigned U = A2.addGlobalVar();
  unsigned P = A2.addTransaction("P");
  unsigned Put = A2.addEvent(P, M, op(M, "put"), {AbsFact::globalVar(U)});
  A2.addEo(A2.entry(P), Put);
  unsigned G = A2.addTransaction("G");
  unsigned Get = A2.addEvent(G, M, op(M, "get"), {AbsFact::globalVar(U)});
  A2.addEo(A2.entry(G), Get);
  A2.setMaySo(P, G);

  AnalysisResult R = analyze(A2);
  EXPECT_TRUE(R.Violations.empty());
  EXPECT_TRUE(R.FastProvedSerializable);
  EXPECT_TRUE(R.serializable());
}

TEST_F(PipelineTest, Fig7SessionLocalKeySerializableViaSMT) {
  // Keys equal within a session but free across sessions: the SSG-based
  // check cannot prove this (paper §2), but the SMT stage refutes every
  // candidate cycle via the absorption escape.
  AbstractHistory A(Sch);
  unsigned U = A.addLocalVar();
  unsigned P = A.addTransaction("P");
  unsigned Put = A.addEvent(P, M, op(M, "put"), {AbsFact::localVar(U)});
  A.addEo(A.entry(P), Put);
  unsigned G = A.addTransaction("G");
  unsigned Get = A.addEvent(G, M, op(M, "get"), {AbsFact::localVar(U)});
  A.addEo(A.entry(G), Get);
  A.allowAllSo();

  AnalysisResult R = analyze(A);
  EXPECT_FALSE(R.FastProvedSerializable);
  EXPECT_TRUE(R.Violations.empty()) << reportStr(A, R);
  EXPECT_GT(R.SMTRefuted, 0u);
  EXPECT_TRUE(R.serializable()) << reportStr(A, R);
}

namespace {

/// Figure 10: updateQuestion sets two fields of one row; getQuestion reads
/// both fields of one row. \p WithEqualities controls whether the row
/// arguments are linked by invariants.
AbstractHistory buildQuizApp(PipelineTest &F, Schema &Sch, unsigned Quiz,
                             bool WithEqualities) {
  constexpr int64_t FieldQ = 1, FieldA = 2;
  AbstractHistory A(Sch);
  // Each session works on one quiz row (a session-local constant); the
  // second field access of a transaction is tied to the first only by the
  // inferred equality invariant under test.
  unsigned Row = A.addLocalVar();
  unsigned Upd = A.addTransaction("updateQuestion");
  unsigned SetQ = A.addEvent(Upd, Quiz, F.op(Quiz, "set"),
                             {AbsFact::localVar(Row),
                              AbsFact::constant(FieldQ)});
  unsigned SetA = A.addEvent(Upd, Quiz, F.op(Quiz, "set"),
                             {AbsFact::free(), AbsFact::constant(FieldA)});
  A.addEo(A.entry(Upd), SetQ);
  A.addEo(SetQ, SetA);
  unsigned Get = A.addTransaction("getQuestion");
  unsigned GetQ = A.addEvent(Get, Quiz, F.op(Quiz, "get"),
                             {AbsFact::localVar(Row),
                              AbsFact::constant(FieldQ)});
  unsigned GetA = A.addEvent(Get, Quiz, F.op(Quiz, "get"),
                             {AbsFact::free(), AbsFact::constant(FieldA)});
  A.addEo(A.entry(Get), GetQ);
  A.addEo(GetQ, GetA);
  if (WithEqualities) {
    A.addInv(SetQ, SetA, Cond::eq(Term::argSrc(0), Term::argTgt(0)));
    A.addInv(GetQ, GetA, Cond::eq(Term::argSrc(0), Term::argTgt(0)));
  }
  A.allowAllSo(); // event handlers run in any order within a session
  return A;
}

} // namespace

TEST_F(PipelineTest, Fig10EqualitiesEliminateFalseAlarm) {
  AbstractHistory WithEq = buildQuizApp(*this, Sch, Quiz, true);
  AnalysisResult R = analyze(WithEq);
  EXPECT_TRUE(R.Violations.empty()) << reportStr(WithEq, R);
  EXPECT_TRUE(R.serializable()) << reportStr(WithEq, R);
}

TEST_F(PipelineTest, Fig10WithoutEqualitiesFalseAlarm) {
  AbstractHistory NoEq = buildQuizApp(*this, Sch, Quiz, false);
  AnalysisResult R = analyze(NoEq);
  EXPECT_FALSE(R.Violations.empty());
}

TEST_F(PipelineTest, Fig10ConstraintsFeatureOffReintroducesAlarm) {
  AbstractHistory WithEq = buildQuizApp(*this, Sch, Quiz, true);
  AnalyzerOptions O;
  O.Features.Constraints = false;
  AnalysisResult R = analyze(WithEq, O);
  EXPECT_FALSE(R.Violations.empty());
}

namespace {

/// Figure 11: addFollower guards an add behind a contains check; the app
/// also has an unconditional createUser transaction (records must be
/// creatable somewhere for contains:true to ever hold).
AbstractHistory buildAddFollower(PipelineTest &F, Schema &Sch,
                                 unsigned Users) {
  constexpr int64_t Flwrs = 7, NameField = 3;
  AbstractHistory A(Sch);
  unsigned Name = A.addGlobalVar(); // the username under discussion
  unsigned C = A.addTransaction("createUser");
  unsigned Create = A.addEvent(C, Users, F.op(Users, "set"),
                               {AbsFact::globalVar(Name),
                                AbsFact::constant(NameField)});
  A.addEo(A.entry(C), Create);
  unsigned T = A.addTransaction("addFollower");
  unsigned Contains = A.addEvent(T, Users, F.op(Users, "contains"), {});
  unsigned Add = A.addEvent(T, Users, F.op(Users, "add"),
                            {AbsFact::free(), AbsFact::constant(Flwrs)});
  unsigned Exit = A.addMarker(T, "exit");
  A.addEo(A.entry(T), Contains);
  A.addEo(Contains, Add, Cond::eq(Term::argSrc(1), Term::constant(1)));
  A.addEo(Add, Exit);
  A.addEo(Contains, Exit, Cond::eq(Term::argSrc(1), Term::constant(0)));
  A.addInv(Contains, Add, Cond::eq(Term::argSrc(0), Term::argTgt(0)));
  A.allowAllSo();
  return A;
}

} // namespace

TEST_F(PipelineTest, Fig11FullFeaturesSerializable) {
  AbstractHistory A = buildAddFollower(*this, Sch, Users);
  AnalysisResult R = analyze(A);
  EXPECT_TRUE(R.Violations.empty()) << reportStr(A, R);
  EXPECT_TRUE(R.serializable()) << reportStr(A, R);
}

TEST_F(PipelineTest, Fig11ControlFlowOffFalseAlarm) {
  AbstractHistory A = buildAddFollower(*this, Sch, Users);
  AnalyzerOptions O;
  O.Features.ControlFlow = false;
  AnalysisResult R = analyze(A, O);
  EXPECT_FALSE(R.Violations.empty());
}

TEST_F(PipelineTest, Fig11AsymmetryOffFalseAlarm) {
  AbstractHistory A = buildAddFollower(*this, Sch, Users);
  AnalyzerOptions O;
  O.Features.AsymmetricAntiDeps = false;
  AnalysisResult R = analyze(A, O);
  EXPECT_FALSE(R.Violations.empty());
}

namespace {

/// Figure 12: addQuestion creates a fresh row; updateQuestion writes a
/// field of a row; getQuestion reads it.
AbstractHistory buildUniqueRows(PipelineTest &F, Schema &Sch,
                                unsigned Quiz) {
  constexpr int64_t FieldQ = 1;
  AbstractHistory A(Sch);
  unsigned AddT = A.addTransaction("addQuestion");
  unsigned AddRow = A.addEvent(AddT, Quiz, F.op(Quiz, "add_row"), {});
  A.addEo(A.entry(AddT), AddRow);
  unsigned Row = A.addLocalVar(); // the session's current question
  unsigned UpdT = A.addTransaction("updateQuestion");
  unsigned Set = A.addEvent(UpdT, Quiz, F.op(Quiz, "set"),
                            {AbsFact::localVar(Row),
                             AbsFact::constant(FieldQ)});
  A.addEo(A.entry(UpdT), Set);
  unsigned GetT = A.addTransaction("getQuestion");
  unsigned Get = A.addEvent(GetT, Quiz, F.op(Quiz, "get"),
                            {AbsFact::localVar(Row),
                             AbsFact::constant(FieldQ)});
  A.addEo(A.entry(GetT), Get);
  A.allowAllSo();
  return A;
}

} // namespace

TEST_F(PipelineTest, Fig12UniqueValuesEliminateFalseAlarm) {
  AbstractHistory A = buildUniqueRows(*this, Sch, Quiz);
  AnalysisResult R = analyze(A);
  EXPECT_TRUE(R.Violations.empty()) << reportStr(A, R);
  EXPECT_TRUE(R.serializable()) << reportStr(A, R);
}

TEST_F(PipelineTest, Fig12UniqueValuesOffFalseAlarm) {
  AbstractHistory A = buildUniqueRows(*this, Sch, Quiz);
  AnalyzerOptions O;
  O.Features.UniqueValues = false;
  AnalysisResult R = analyze(A, O);
  EXPECT_FALSE(R.Violations.empty());
}

TEST_F(PipelineTest, DisplayFilterDropsDisplayOnlyQueries) {
  // The Figure 1 program with the get marked as display-only: filtering
  // removes the anti-dependency source, so no violation remains.
  AbstractHistory A(Sch);
  unsigned P = A.addTransaction("P");
  unsigned Put = A.addEvent(P, M, op(M, "put"), {});
  A.addEo(A.entry(P), Put);
  unsigned G = A.addTransaction("G");
  unsigned Get =
      A.addEvent(G, M, op(M, "get"), {}, /*Display=*/true);
  A.addEo(A.entry(G), Get);
  A.allowAllSo();

  AnalysisResult Unfiltered = analyze(A);
  EXPECT_FALSE(Unfiltered.Violations.empty());
  AnalyzerOptions O;
  O.DisplayFilter = true;
  AnalysisResult Filtered = analyze(A, O);
  EXPECT_TRUE(Filtered.Violations.empty()) << reportStr(A, Filtered);
}

TEST_F(PipelineTest, AtomicSetsSeparateIndependentData) {
  // Two independent put/get pairs on different containers. Together they
  // still only produce per-container violations; with atomic sets each set
  // is analyzed independently and cross-set cycles are never formed.
  Schema Sch2;
  unsigned C1 = Sch2.addContainer("A", Reg.lookup("map"));
  unsigned C2 = Sch2.addContainer("B", Reg.lookup("map"));
  AbstractHistory A(Sch2);
  unsigned T1 = A.addTransaction("w1");
  unsigned E1 = A.addEvent(T1, C1, op(M, "put"), {});
  A.addEo(A.entry(T1), E1);
  unsigned T2 = A.addTransaction("r1");
  unsigned E2 = A.addEvent(T2, C1, op(M, "get"), {});
  A.addEo(A.entry(T2), E2);
  unsigned T3 = A.addTransaction("w2");
  unsigned E3 = A.addEvent(T3, C2, op(M, "put"), {});
  A.addEo(A.entry(T3), E3);
  unsigned T4 = A.addTransaction("r2");
  unsigned E4 = A.addEvent(T4, C2, op(M, "get"), {});
  A.addEo(A.entry(T4), E4);
  A.allowAllSo();

  AnalyzerOptions O;
  O.UseAtomicSets = true;
  O.AtomicSets = {{C1}, {C2}};
  AnalysisResult R = analyze(A, O);
  // Each atomic set has its own put/get violation.
  EXPECT_EQ(R.Violations.size(), 2u) << reportStr(A, R);
  for (const Violation &V : R.Violations)
    EXPECT_EQ(V.OrigTxns.size(), 2u);
}

TEST_F(PipelineTest, AtomicSetsFastProvedRequiresAllSets) {
  // Regression: `FastProvedSerializable` must mean the *fast* general-SSG
  // analysis proved every atomic set. Here set {M} (global key) is
  // SSG-clean but set {N} (session-local keys, the Figure 7 shape) needs
  // the SMT stage, so the run as a whole is serializable yet not
  // fast-proved. A buggy any-set aggregation reports true here.
  Schema Sch2;
  unsigned CM = Sch2.addContainer("M", Reg.lookup("map"));
  unsigned CN = Sch2.addContainer("N", Reg.lookup("map"));
  AbstractHistory A(Sch2);
  unsigned U = A.addGlobalVar();
  unsigned L = A.addLocalVar();
  unsigned P1 = A.addTransaction("putGlobal");
  unsigned E1 = A.addEvent(P1, CM, op(M, "put"), {AbsFact::globalVar(U)});
  A.addEo(A.entry(P1), E1);
  unsigned G1 = A.addTransaction("getGlobal");
  unsigned E2 = A.addEvent(G1, CM, op(M, "get"), {AbsFact::globalVar(U)});
  A.addEo(A.entry(G1), E2);
  unsigned P2 = A.addTransaction("putLocal");
  unsigned E3 = A.addEvent(P2, CN, op(M, "put"), {AbsFact::localVar(L)});
  A.addEo(A.entry(P2), E3);
  unsigned G2 = A.addTransaction("getLocal");
  unsigned E4 = A.addEvent(G2, CN, op(M, "get"), {AbsFact::localVar(L)});
  A.addEo(A.entry(G2), E4);
  A.allowAllSo();

  AnalyzerOptions O;
  O.UseAtomicSets = true;
  O.AtomicSets = {{CM}, {CN}};
  AnalysisResult R = analyze(A, O);
  EXPECT_TRUE(R.Violations.empty()) << reportStr(A, R);
  EXPECT_TRUE(R.serializable()) << reportStr(A, R);
  // The {N} set was only proved by SMT refutations ...
  EXPECT_GT(R.SMTRefuted, 0u) << reportStr(A, R);
  // ... so the aggregate must not claim a fast proof.
  EXPECT_FALSE(R.FastProvedSerializable) << reportStr(A, R);
}

TEST_F(PipelineTest, ReportRendering) {
  AbstractHistory A = buildPutGet(AbsFact::free(), AbsFact::free());
  AnalysisResult R = analyze(A);
  std::string Report = reportStr(A, R);
  EXPECT_NE(Report.find("violation"), std::string::npos);
  EXPECT_NE(Report.find("stats:"), std::string::npos);
}
