//===- tests/StoreTests.cpp - Causal store simulator tests ----------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the replicated causal store: the recorded executions satisfy the
/// schedule axioms S1-S3 under random workloads and delivery orders,
/// replicas converge, snapshots isolate transactions, the C4L interpreter
/// drives programs correctly, and the dynamic analyzer detects the Figure 1
/// anomaly exactly when the timing produces it (§9.5).
///
//===----------------------------------------------------------------------===//

#include "abstract/Concretize.h"
#include "store/CausalStore.h"
#include "store/DynamicAnalyzer.h"
#include "store/Interpreter.h"

#include <gtest/gtest.h>

using namespace c4;

namespace {

class StoreFixture : public ::testing::Test {
public:
  StoreFixture() { M = Sch.addContainer("M", Reg.lookup("map")); }

  unsigned op(const char *Name) {
    const DataTypeSpec *T = Sch.container(M).Type;
    return T->opIndex(*T->findOp(Name));
  }

  TypeRegistry Reg;
  Schema Sch;
  unsigned M = 0;
};

} // namespace

TEST_F(StoreFixture, BasicReadYourWrites) {
  CausalStore Store(Sch, 2);
  unsigned S = Store.openSession(0);
  Store.begin(S);
  Store.update(S, M, op("put"), {1, 42});
  EXPECT_EQ(Store.query(S, M, op("get"), {1}), 42); // own buffer visible
  Store.commit(S);
  Store.begin(S);
  EXPECT_EQ(Store.query(S, M, op("get"), {1}), 42); // own commit visible
  Store.commit(S);
}

TEST_F(StoreFixture, RemoteInvisibleUntilDelivery) {
  CausalStore Store(Sch, 2);
  unsigned S0 = Store.openSession(0), S1 = Store.openSession(1);
  Store.begin(S0);
  Store.update(S0, M, op("put"), {1, 42});
  Store.commit(S0);
  Store.begin(S1);
  EXPECT_EQ(Store.query(S1, M, op("get"), {1}), 0); // not delivered yet
  Store.commit(S1);
  Store.deliverAll();
  Store.begin(S1);
  EXPECT_EQ(Store.query(S1, M, op("get"), {1}), 42);
  Store.commit(S1);
}

TEST_F(StoreFixture, SnapshotIsolationWithinTransaction) {
  CausalStore Store(Sch, 2);
  unsigned S0 = Store.openSession(0), S1 = Store.openSession(1);
  Store.begin(S1); // snapshot taken before the remote write arrives
  Store.begin(S0);
  Store.update(S0, M, op("put"), {1, 42});
  Store.commit(S0);
  Store.deliverAll();
  EXPECT_EQ(Store.query(S1, M, op("get"), {1}), 0);
  Store.commit(S1);
}

TEST_F(StoreFixture, ConvergenceAfterFullDelivery) {
  CausalStore Store(Sch, 3);
  Rng R(7);
  std::vector<unsigned> Sessions;
  for (unsigned I = 0; I != 3; ++I)
    Sessions.push_back(Store.openSession(I));
  for (int Round = 0; Round != 20; ++Round) {
    unsigned S = Sessions[R.below(3)];
    Store.begin(S);
    Store.update(S, M, op("put"),
                 {R.range(0, 2), R.range(0, 9)});
    Store.commit(S);
    if (R.chance(1, 2))
      Store.deliverRandom(R);
  }
  Store.deliverAll();
  // All replicas answer every key identically (last-writer-wins converged).
  for (int64_t Key = 0; Key != 3; ++Key) {
    std::vector<int64_t> Values;
    for (unsigned S : Sessions) {
      Store.begin(S);
      Values.push_back(Store.query(S, M, op("get"), {Key}));
      Store.commit(S);
    }
    EXPECT_EQ(Values[0], Values[1]);
    EXPECT_EQ(Values[1], Values[2]);
  }
}

TEST_F(StoreFixture, RecordedSchedulesAreLegal) {
  // Random workloads under random delivery: the recorded execution always
  // satisfies S1 (legality), S2 (causality) and S3 (atomic visibility).
  Rng R(1234);
  for (int Trial = 0; Trial != 30; ++Trial) {
    CausalStore Store(Sch, 1 + R.below(3));
    std::vector<unsigned> Sessions;
    for (unsigned I = 0; I != Store.numReplicas(); ++I)
      Sessions.push_back(Store.openSession(I % Store.numReplicas()));
    for (int Round = 0, N = static_cast<int>(R.below(12)); Round != N;
         ++Round) {
      unsigned S = Sessions[R.below(Sessions.size())];
      Store.begin(S);
      for (int E = 0, NE = 1 + static_cast<int>(R.below(3)); E != NE; ++E) {
        if (R.chance(1, 2)) {
          Store.update(S, M, R.chance(1, 3) ? op("inc") : op("put"),
                       {R.range(0, 2), R.range(0, 5)});
        } else if (R.chance(1, 2)) {
          Store.query(S, M, op("get"), {R.range(0, 2)});
        } else {
          Store.query(S, M, op("contains"), {R.range(0, 2)});
        }
      }
      Store.commit(S);
      while (R.chance(1, 3) && Store.deliverRandom(R)) {
      }
    }
    const History &H = Store.history();
    Schedule S = Store.schedule();
    EXPECT_TRUE(satisfiesCausality(H, S));
    EXPECT_TRUE(satisfiesAtomicVisibility(H, S));
    EXPECT_TRUE(satisfiesLegality(H, S));
  }
}

namespace {

const char *PutGetProgram = R"(
container map M;
txn P(x, y) { M.put(x, y); }
txn G(z)    { let v = M.get(z); return v; }
)";

} // namespace

TEST(StoreInterpreter, Fig1AnomalyAppearsWithBadTiming) {
  CompileResult C = compileC4L(PutGetProgram);
  ASSERT_TRUE(C.ok()) << C.Error;
  CausalStore Store(*C.Program->Sch, 2);
  ProgramRunner Runner(*C.Program, Store);
  unsigned S0 = Store.openSession(0), S1 = Store.openSession(1);
  std::string Error;
  // The classic long fork: both sessions write, then read the other key
  // before any delivery.
  ASSERT_TRUE(Runner.runTxn(S0, "P", {1, 10}, Error)) << Error;
  ASSERT_TRUE(Runner.runTxn(S1, "P", {2, 20}, Error)) << Error;
  ASSERT_TRUE(Runner.runTxn(S0, "G", {2}, Error)) << Error;
  ASSERT_TRUE(Runner.runTxn(S1, "G", {1}, Error)) << Error;

  const History &H = Store.history();
  EXPECT_FALSE(isSerializable(H));
  DynamicReport Report = analyzeDynamic(H, Store.schedule());
  EXPECT_TRUE(Report.violationFound());
}

TEST(StoreInterpreter, Fig1AnomalyAbsentWithGoodTiming) {
  CompileResult C = compileC4L(PutGetProgram);
  ASSERT_TRUE(C.ok()) << C.Error;
  CausalStore Store(*C.Program->Sch, 2);
  ProgramRunner Runner(*C.Program, Store);
  unsigned S0 = Store.openSession(0), S1 = Store.openSession(1);
  std::string Error;
  ASSERT_TRUE(Runner.runTxn(S0, "P", {1, 10}, Error)) << Error;
  Store.deliverAll();
  ASSERT_TRUE(Runner.runTxn(S1, "P", {2, 20}, Error)) << Error;
  Store.deliverAll();
  ASSERT_TRUE(Runner.runTxn(S0, "G", {2}, Error)) << Error;
  ASSERT_TRUE(Runner.runTxn(S1, "G", {1}, Error)) << Error;

  EXPECT_TRUE(isSerializable(Store.history()));
  DynamicReport Report = analyzeDynamic(Store.history(), Store.schedule());
  EXPECT_FALSE(Report.violationFound());
}

TEST(StoreInterpreter, BranchesAndConstants) {
  const char *Source = R"(
container table Users;
session me;
txn follow(n) {
  let e = Users.contains(n);
  if (e) { Users.add(n, "flwrs", me); }
}
txn register(n) { Users.set(n, "name", 1); }
)";
  CompileResult C = compileC4L(Source);
  ASSERT_TRUE(C.ok()) << C.Error;
  CausalStore Store(*C.Program->Sch, 1);
  ProgramRunner Runner(*C.Program, Store);
  unsigned S = Store.openSession(0);
  Runner.setSessionConst(S, "me", 77);
  std::string Error;
  // Following before registration does nothing (guard false).
  ASSERT_TRUE(Runner.runTxn(S, "follow", {5}, Error)) << Error;
  ASSERT_TRUE(Runner.runTxn(S, "register", {5}, Error)) << Error;
  ASSERT_TRUE(Runner.runTxn(S, "follow", {5}, Error)) << Error;

  const History &H = Store.history();
  // Exactly one add event, carrying the session constant 77.
  unsigned Adds = 0;
  for (unsigned E = 0; E != H.numEvents(); ++E)
    if (H.op(E).Name == "add") {
      ++Adds;
      EXPECT_EQ(H.event(E).Args[2], 77);
    }
  EXPECT_EQ(Adds, 1u);
}

TEST(StoreInterpreter, FreshRowIdsAreUnique) {
  const char *Source = R"(
container table Quiz;
txn add(q) { let x = Quiz.add_row(); Quiz.set(x, "q", q); }
)";
  CompileResult C = compileC4L(Source);
  ASSERT_TRUE(C.ok()) << C.Error;
  CausalStore Store(*C.Program->Sch, 2);
  ProgramRunner Runner(*C.Program, Store);
  unsigned S0 = Store.openSession(0), S1 = Store.openSession(1);
  std::string Error;
  ASSERT_TRUE(Runner.runTxn(S0, "add", {1}, Error));
  ASSERT_TRUE(Runner.runTxn(S1, "add", {2}, Error));
  const History &H = Store.history();
  std::vector<int64_t> Ids;
  for (unsigned E = 0; E != H.numEvents(); ++E)
    if (H.op(E).Fresh)
      Ids.push_back(*H.event(E).Ret);
  ASSERT_EQ(Ids.size(), 2u);
  EXPECT_NE(Ids[0], Ids[1]);
  EXPECT_GE(Ids[0], 1000000000);
}

TEST(StoreDynamic, ExecutionsConcretizeTheAbstractHistory) {
  // Whatever the store executes must lie in γ of the front end's abstract
  // history — the soundness link between the two worlds.
  CompileResult C = compileC4L(PutGetProgram);
  ASSERT_TRUE(C.ok()) << C.Error;
  Rng R(99);
  for (int Trial = 0; Trial != 10; ++Trial) {
    CausalStore Store(*C.Program->Sch, 2);
    ProgramRunner Runner(*C.Program, Store);
    unsigned S0 = Store.openSession(0), S1 = Store.openSession(1);
    std::string Error;
    for (int I = 0; I != 4; ++I) {
      unsigned S = R.chance(1, 2) ? S0 : S1;
      if (R.chance(1, 2))
        ASSERT_TRUE(
            Runner.runTxn(S, "P", {R.range(0, 2), R.range(0, 9)}, Error));
      else
        ASSERT_TRUE(Runner.runTxn(S, "G", {R.range(0, 2)}, Error));
      if (R.chance(1, 2))
        Store.deliverRandom(R);
    }
    // Concretization check (γ-membership, §5).
    EXPECT_TRUE(
        findConcretization(Store.history(), *C.Program->History).has_value());
  }
}

//===----------------------------------------------------------------------===//
// Consistency modes: causal delivery guarantees S2; eventual delivery can
// break it (the paper's premise: causal consistency is the strongest model
// available under partitions).
//===----------------------------------------------------------------------===//

TEST_F(StoreFixture, CausalDeliveryAlwaysSatisfiesS2) {
  Rng R(2718);
  for (int Trial = 0; Trial != 20; ++Trial) {
    CausalStore Store(Sch, 3, ConsistencyMode::Causal);
    std::vector<unsigned> Sessions;
    for (unsigned I = 0; I != 3; ++I)
      Sessions.push_back(Store.openSession(I));
    for (int Round = 0; Round != 8; ++Round) {
      unsigned S = Sessions[R.below(3)];
      Store.begin(S);
      Store.update(S, M, op("put"), {R.range(0, 2), R.range(0, 5)});
      Store.commit(S);
      while (R.chance(1, 2) && Store.deliverRandom(R)) {
      }
    }
    Schedule Sc = Store.schedule();
    EXPECT_TRUE(satisfiesCausality(Store.history(), Sc));
    EXPECT_TRUE(satisfiesAtomicVisibility(Store.history(), Sc));
  }
}

TEST_F(StoreFixture, EventualDeliveryCanViolateCausality) {
  // Session A writes x then y; a remote replica receiving y without x can
  // observe the causality violation. Under eventual delivery this happens
  // for some random seed.
  Rng R(31415);
  bool ViolationSeen = false;
  for (int Trial = 0; Trial != 40 && !ViolationSeen; ++Trial) {
    CausalStore Store(Sch, 2, ConsistencyMode::Eventual);
    unsigned S0 = Store.openSession(0), S1 = Store.openSession(1);
    Store.begin(S0);
    Store.update(S0, M, op("put"), {1, 10});
    Store.commit(S0);
    Store.begin(S0);
    Store.update(S0, M, op("put"), {2, 20});
    Store.commit(S0);
    // Deliver a random subset to replica 1.
    for (int D = 0; D != 1; ++D)
      Store.deliverRandom(R);
    Store.begin(S1);
    int64_t Y = Store.query(S1, M, op("get"), {2});
    int64_t X = Store.query(S1, M, op("get"), {1});
    Store.commit(S1);
    // Causality violation: saw the later write but not the earlier one.
    ViolationSeen = (Y == 20 && X == 0);
    Store.deliverAll();
  }
  EXPECT_TRUE(ViolationSeen)
      << "eventual delivery never produced a causality violation";
}
