//===- tests/CondTests.cpp - Condition language unit tests ----------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "spec/Cond.h"

#include <gtest/gtest.h>

using namespace c4;

static Term s(unsigned I) { return Term::argSrc(I); }
static Term g(unsigned I) { return Term::argTgt(I); }
static Term k(int64_t V) { return Term::constant(V); }

TEST(Cond, GroundFolding) {
  EXPECT_TRUE(Cond::eq(k(3), k(3)).isTrue());
  EXPECT_TRUE(Cond::eq(k(3), k(4)).isFalse());
  EXPECT_TRUE(Cond::lt(k(3), k(4)).isTrue());
  EXPECT_TRUE(Cond::le(k(4), k(3)).isFalse());
  EXPECT_TRUE(Cond::eq(s(0), s(0)).isTrue());
}

TEST(Cond, ConnectiveSimplification) {
  Cond A = Cond::eq(s(0), g(0));
  EXPECT_TRUE((Cond::t() && Cond::f()).isFalse());
  EXPECT_TRUE((Cond::t() || Cond::f()).isTrue());
  EXPECT_EQ((A && Cond::t()).str(), A.str());
  EXPECT_EQ((A || Cond::f()).str(), A.str());
  EXPECT_TRUE((!Cond::t()).isFalse());
  EXPECT_EQ((!!A).str(), A.str());
}

TEST(Cond, Eval) {
  // src = [5, 7], tgt = [5, 9]
  std::vector<int64_t> Src{5, 7}, Tgt{5, 9};
  EXPECT_TRUE(Cond::eq(s(0), g(0)).eval(Src, Tgt));
  EXPECT_FALSE(Cond::eq(s(1), g(1)).eval(Src, Tgt));
  EXPECT_TRUE(Cond::ne(s(1), g(1)).eval(Src, Tgt));
  EXPECT_TRUE(Cond::lt(s(1), g(1)).eval(Src, Tgt));
  EXPECT_TRUE(Cond::lt(s(1), k(10)).eval(Src, Tgt));
  EXPECT_FALSE(Cond::lt(s(1), k(7)).eval(Src, Tgt));
  EXPECT_TRUE(Cond::le(s(1), k(7)).eval(Src, Tgt));
  Cond Mixed = (Cond::eq(s(0), g(0)) && Cond::ne(s(1), g(1))) ||
               Cond::eq(s(0), k(99));
  EXPECT_TRUE(Mixed.eval(Src, Tgt));
}

TEST(Cond, Flipped) {
  Cond C = Cond::eq(s(0), g(1)) && Cond::lt(s(2), k(5));
  Cond F = C.flipped();
  std::vector<int64_t> A{1, 2, 9}, B{3, 1, 4};
  EXPECT_EQ(C.eval(A, B), F.eval(B, A));
  EXPECT_EQ(C.eval(B, A), F.eval(A, B));
}

TEST(Cond, DnfShape) {
  Cond C = (Cond::eq(s(0), g(0)) || Cond::eq(s(1), g(1))) &&
           Cond::ne(s(2), g(2));
  std::vector<std::vector<Literal>> D = C.dnf();
  EXPECT_EQ(D.size(), 2u);
  for (const std::vector<Literal> &Clause : D)
    EXPECT_EQ(Clause.size(), 2u);
  EXPECT_TRUE(Cond::t().dnf().size() == 1 && Cond::t().dnf()[0].empty());
  EXPECT_TRUE(Cond::f().dnf().empty());
}

TEST(Cond, SatisfiabilityFreeSlots) {
  EventFacts Src(2), Tgt(2); // all free
  EXPECT_TRUE(Cond::eq(s(0), g(0)).satisfiableUnder(Src, Tgt));
  EXPECT_TRUE(Cond::ne(s(0), g(0)).satisfiableUnder(Src, Tgt));
  // Contradiction within one clause.
  Cond C = Cond::eq(s(0), g(0)) && Cond::ne(s(0), g(0));
  EXPECT_FALSE(C.satisfiableUnder(Src, Tgt));
}

TEST(Cond, SatisfiabilityConstants) {
  EventFacts Src{ArgFact::constant(3)}, Tgt{ArgFact::constant(3)};
  EXPECT_TRUE(Cond::eq(s(0), g(0)).satisfiableUnder(Src, Tgt));
  EXPECT_FALSE(Cond::ne(s(0), g(0)).satisfiableUnder(Src, Tgt));
  EventFacts Tgt2{ArgFact::constant(4)};
  EXPECT_FALSE(Cond::eq(s(0), g(0)).satisfiableUnder(Src, Tgt2));
  EXPECT_TRUE(Cond::ne(s(0), g(0)).satisfiableUnder(Src, Tgt2));
}

TEST(Cond, SatisfiabilitySymbols) {
  // Same symbol on both sides: equality forced.
  EventFacts Src{ArgFact::symbol(7)}, Tgt{ArgFact::symbol(7)};
  EXPECT_FALSE(Cond::ne(s(0), g(0)).satisfiableUnder(Src, Tgt));
  // Different symbols: both outcomes possible.
  EventFacts Tgt2{ArgFact::symbol(8)};
  EXPECT_TRUE(Cond::ne(s(0), g(0)).satisfiableUnder(Src, Tgt2));
  EXPECT_TRUE(Cond::eq(s(0), g(0)).satisfiableUnder(Src, Tgt2));
}

TEST(Cond, SatisfiabilityTransitivity) {
  // src0 = tgt0 and tgt0 = 5 and src0 != 5 is unsatisfiable.
  EventFacts Src(1), Tgt{ArgFact::constant(5)};
  Cond C = Cond::eq(s(0), g(0)) && Cond::ne(s(0), k(5));
  EXPECT_FALSE(C.satisfiableUnder(Src, Tgt));
}

TEST(Cond, SatisfiabilityChainedEqualities) {
  EventFacts Src(2), Tgt(2);
  // src0=tgt0, tgt0=src1, src1=tgt1, tgt1 != src0 -> unsat.
  Cond C = Cond::eq(s(0), g(0)) && Cond::eq(g(0), s(1)) &&
           Cond::eq(s(1), g(1)) && Cond::ne(g(1), s(0));
  EXPECT_FALSE(C.satisfiableUnder(Src, Tgt));
}

TEST(Cond, SatisfiabilityOrderLiterals) {
  EventFacts Src{ArgFact::constant(3)}, Tgt{ArgFact::constant(4)};
  EXPECT_TRUE(Cond::lt(s(0), g(0)).satisfiableUnder(Src, Tgt));
  EXPECT_FALSE(Cond::lt(g(0), s(0)).satisfiableUnder(Src, Tgt));
  // Free slots: order literals are conservatively satisfiable.
  EventFacts Free(1);
  EXPECT_TRUE(Cond::lt(s(0), g(0)).satisfiableUnder(Free, Free));
  // But x < x is not.
  EXPECT_FALSE(
      (Cond::eq(s(0), g(0)) && Cond::lt(s(0), g(0))).satisfiableUnder(Free,
                                                                      Free));
}

TEST(Cond, SatisfiabilityDisjunction) {
  EventFacts Src{ArgFact::constant(1)}, Tgt{ArgFact::constant(1)};
  Cond C = Cond::ne(s(0), g(0)) || Cond::eq(s(0), k(1));
  EXPECT_TRUE(C.satisfiableUnder(Src, Tgt));
  Cond D = Cond::ne(s(0), g(0)) || Cond::eq(s(0), k(2));
  EXPECT_FALSE(D.satisfiableUnder(Src, Tgt));
}

TEST(Cond, StrRendering) {
  Cond C = Cond::eq(s(0), g(1)) && Cond::lt(g(0), k(10));
  EXPECT_EQ(C.str(), "(src0=tgt1 && tgt0<10)");
}

//===----------------------------------------------------------------------===//
// Randomized consistency: eval agrees with DNF-evaluation, satisfiability
// is complete on equality-only conditions over small domains.
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

namespace {

Term randTerm(c4::Rng &R) {
  switch (R.below(3)) {
  case 0:
    return Term::argSrc(static_cast<unsigned>(R.below(2)));
  case 1:
    return Term::argTgt(static_cast<unsigned>(R.below(2)));
  default:
    return Term::constant(R.range(0, 1));
  }
}

Cond randCond(c4::Rng &R, unsigned Depth) {
  if (Depth == 0 || R.chance(1, 3)) {
    CmpKind K = R.chance(1, 3) ? CmpKind::Lt : CmpKind::Eq;
    return Cond::cmp(K, randTerm(R), randTerm(R));
  }
  switch (R.below(3)) {
  case 0:
    return randCond(R, Depth - 1) && randCond(R, Depth - 1);
  case 1:
    return randCond(R, Depth - 1) || randCond(R, Depth - 1);
  default:
    return !randCond(R, Depth - 1);
  }
}

bool evalLiteral(const Literal &L, const std::vector<int64_t> &Src,
                 const std::vector<int64_t> &Tgt) {
  auto Val = [&](const Term &T) {
    if (T.Kind == Term::ArgSrc)
      return Src[T.Index];
    if (T.Kind == Term::ArgTgt)
      return Tgt[T.Index];
    return T.Value;
  };
  bool V = false;
  switch (L.Cmp) {
  case CmpKind::Eq:
    V = Val(L.A) == Val(L.B);
    break;
  case CmpKind::Lt:
    V = Val(L.A) < Val(L.B);
    break;
  case CmpKind::Le:
    V = Val(L.A) <= Val(L.B);
    break;
  }
  return L.Negated ? !V : V;
}

} // namespace

TEST(CondProperty, EvalAgreesWithDnf) {
  c4::Rng R(0xD0F);
  for (int Trial = 0; Trial != 2000; ++Trial) {
    Cond C = randCond(R, 3);
    std::vector<std::vector<Literal>> Dnf = C.dnf();
    std::vector<int64_t> Src{R.range(0, 1), R.range(0, 1)};
    std::vector<int64_t> Tgt{R.range(0, 1), R.range(0, 1)};
    bool Direct = C.eval(Src, Tgt);
    bool ViaDnf = false;
    for (const std::vector<Literal> &Clause : Dnf) {
      bool All = true;
      for (const Literal &L : Clause)
        All = All && evalLiteral(L, Src, Tgt);
      ViaDnf = ViaDnf || All;
    }
    EXPECT_EQ(Direct, ViaDnf) << C.str();
  }
}

TEST(CondProperty, SatisfiabilityCompleteOnSmallDomains) {
  // For free facts, satisfiableUnder must agree with brute force over the
  // domain {0,1,2} for equality-only conditions (order literals are
  // treated conservatively, so only one direction is checked for them).
  c4::Rng R(0x5A7);
  EventFacts Src(2), Tgt(2);
  for (int Trial = 0; Trial != 1000; ++Trial) {
    Cond C = randCond(R, 2);
    bool BruteSat = false;
    for (int64_t A = 0; A != 3 && !BruteSat; ++A)
      for (int64_t B = 0; B != 3 && !BruteSat; ++B)
        for (int64_t X = 0; X != 3 && !BruteSat; ++X)
          for (int64_t Y = 0; Y != 3 && !BruteSat; ++Y)
            BruteSat = C.eval({A, B}, {X, Y});
    bool Claimed = C.satisfiableUnder(Src, Tgt);
    // Conservative: claimed unsatisfiable implies truly unsatisfiable.
    if (!Claimed) {
      EXPECT_FALSE(BruteSat) << C.str();
    }
    // For small-constant conditions, brute force over {0,1,2} is exact on
    // the satisfiable side too (all constants are in range).
    if (BruteSat) {
      EXPECT_TRUE(Claimed) << C.str();
    }
  }
}
