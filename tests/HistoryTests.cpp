//===- tests/HistoryTests.cpp - Concrete model tests ----------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the concrete execution model: schedule axioms S1-S3, brute-force
/// serializability, far relations (spec and R2-fixpoint modes), the
/// dependence triple D1-D3, DSG construction, Theorem 1 (acyclic DSG =>
/// serializable) as a randomized property, and Theorem 2 (locality).
/// The worked examples are Figures 1 and 3 of the paper.
///
//===----------------------------------------------------------------------===//

#include "history/DSG.h"
#include "history/RandomExecution.h"
#include "history/Relations.h"
#include "history/Schedule.h"

#include <gtest/gtest.h>

using namespace c4;

namespace {

/// Keys "A" and "B" of the paper examples, interned as integers.
constexpr int64_t KeyA = 1, KeyB = 2;

class PaperExamples : public ::testing::Test {
public:
  PaperExamples() { M = Sch.addContainer("M", Reg.lookup("map")); }

  unsigned op(const char *Name) {
    const DataTypeSpec *T = Sch.container(M).Type;
    return T->opIndex(*T->findOp(Name));
  }

  TypeRegistry Reg;
  Schema Sch;
  unsigned M = 0;
};

/// Builds Figure 1(c1): two sessions, each a put transaction followed by a
/// get transaction reading the *other* key's initial value.
History buildFig1C1(PaperExamples &F, Schema &Sch, unsigned M) {
  History H(Sch);
  unsigned S1 = H.addSession(), S2 = H.addSession();
  unsigned T0 = H.beginTransaction(S1);
  H.append(T0, M, F.op("put"), {KeyA, 1});
  unsigned T1 = H.beginTransaction(S1);
  H.append(T1, M, F.op("get"), {KeyB}, 0);
  unsigned T2 = H.beginTransaction(S2);
  H.append(T2, M, F.op("put"), {KeyB, 2});
  unsigned T3 = H.beginTransaction(S2);
  H.append(T3, M, F.op("get"), {KeyA}, 0);
  return H;
}

/// A schedule for Fig. 1(c1): visibility is just the causal closure of
/// session order (the sessions are mutually oblivious).
Schedule fig1C1Schedule(const History &H) {
  Schedule S(H.numEvents());
  S.setArbitration({0, 1, 2, 3});
  S.closeCausally(H);
  return S;
}

} // namespace

TEST_F(PaperExamples, Fig1C1AxiomsHold) {
  History H = buildFig1C1(*this, Sch, M);
  Schedule S = fig1C1Schedule(H);
  EXPECT_TRUE(satisfiesCausality(H, S));
  EXPECT_TRUE(satisfiesAtomicVisibility(H, S));
  EXPECT_TRUE(satisfiesLegality(H, S));
  EXPECT_TRUE(isLegalSchedule(H, S));
  EXPECT_FALSE(isSerial(H, S));
}

TEST_F(PaperExamples, Fig1C1NotSerializable) {
  History H = buildFig1C1(*this, Sch, M);
  EXPECT_FALSE(isSerializable(H));
}

TEST_F(PaperExamples, Fig1C1DSGHasCycle) {
  History H = buildFig1C1(*this, Sch, M);
  Schedule S = fig1C1Schedule(H);
  EventRelations Rel(H);
  DependenceTriple T = computeDependencies(H, S, Rel);
  // Anti-dependencies: each get anti-depends on the other session's put.
  EXPECT_TRUE(T.AntiDep[1][2]); // get(B):0 -anti-> put(B,2)
  EXPECT_TRUE(T.AntiDep[3][0]); // get(A):0 -anti-> put(A,1)
  Digraph G = buildDSG(H, T);
  EXPECT_TRUE(G.hasCycle());
}

TEST_F(PaperExamples, Fig1C2SerializableVariant) {
  // Both sessions use key A; the second session's operations see the first.
  History H(Sch);
  unsigned S1 = H.addSession(), S2 = H.addSession();
  unsigned T0 = H.beginTransaction(S1);
  H.append(T0, M, op("put"), {KeyA, 1});
  unsigned T1 = H.beginTransaction(S1);
  H.append(T1, M, op("get"), {KeyA}, 1);
  unsigned T2 = H.beginTransaction(S2);
  H.append(T2, M, op("put"), {KeyA, 2});
  unsigned T3 = H.beginTransaction(S2);
  H.append(T3, M, op("get"), {KeyA}, 2);
  EXPECT_TRUE(isSerializable(H));
  // A concrete witness schedule: serial order T0 T1 T2 T3.
  Schedule S = makeSerialSchedule(H, {T0, T1, T2, T3});
  EXPECT_TRUE(isLegalSchedule(H, S));
  EXPECT_TRUE(isSerial(H, S));
  EventRelations Rel(H);
  Digraph G = buildDSG(H, computeDependencies(H, S, Rel));
  EXPECT_FALSE(G.hasCycle());
}

TEST_F(PaperExamples, Fig3AbsorptionKillsAntiDependency) {
  // Session 1: inc(a,1); get(a):1.  Session 2: put(a,2); get(a):2.
  History H(Sch);
  unsigned S1 = H.addSession(), S2 = H.addSession();
  unsigned T0 = H.beginTransaction(S1);
  unsigned E0 = H.append(T0, M, op("inc"), {KeyA, 1});
  unsigned T1 = H.beginTransaction(S1);
  unsigned E1 = H.append(T1, M, op("get"), {KeyA}, 1);
  unsigned T2 = H.beginTransaction(S2);
  unsigned E2 = H.append(T2, M, op("put"), {KeyA, 2});
  unsigned T3 = H.beginTransaction(S2);
  unsigned E3 = H.append(T3, M, op("get"), {KeyA}, 2);
  (void)T1;
  (void)T3;

  Schedule S(H.numEvents());
  S.setArbitration({E0, E1, E2, E3});
  S.closeCausally(H);
  ASSERT_TRUE(isLegalSchedule(H, S));

  EventRelations Rel(H);
  DependenceTriple T = computeDependencies(H, S, Rel);
  EXPECT_TRUE(T.Dep[E0][E1]);     // inc  -dep->  get:1
  EXPECT_TRUE(T.Dep[E2][E3]);     // put  -dep->  get:2
  EXPECT_TRUE(T.AntiDep[E1][E2]); // get:1 -anti-> put
  // No anti-dependency get:2 -> inc: put absorbs inc and is visible
  // to get:2 (the paper's absorption example).
  EXPECT_FALSE(T.AntiDep[E3][E0]);
  // inc conflicts with the later, non-commuting put.
  EXPECT_TRUE(T.Conflict[E0][E2]);

  Digraph G = buildDSG(H, T);
  EXPECT_FALSE(G.hasCycle());
  EXPECT_TRUE(isSerializable(H));
}

TEST_F(PaperExamples, SerialScheduleIsLegalOnlyInRightOrder) {
  History H = buildFig1C1(*this, Sch, M);
  // Serial execution in program order: the gets would read 1 and 2.
  Schedule S = makeSerialSchedule(H, {0, 1, 2, 3});
  EXPECT_TRUE(satisfiesCausality(H, S));
  EXPECT_TRUE(satisfiesAtomicVisibility(H, S));
  EXPECT_FALSE(satisfiesLegality(H, S)); // get(B) would see put(B,2)? no:
  // order T0 T1 T2 T3 => get(B):0 runs before put(B,2): legal; but
  // get(A):0 runs after put(A,1): illegal.
}

TEST(ScheduleAxioms, CausalityViolationsDetected) {
  TypeRegistry Reg;
  Schema Sch;
  unsigned M = Sch.addContainer("M", Reg.lookup("map"));
  const DataTypeSpec *T = Sch.container(M).Type;
  unsigned Put = T->opIndex(*T->findOp("put"));
  History H(Sch);
  unsigned S1 = H.addSession();
  unsigned T0 = H.beginTransaction(S1);
  H.append(T0, M, Put, {1, 1});
  unsigned T1 = H.beginTransaction(S1);
  H.append(T1, M, Put, {1, 2});
  Schedule S(H.numEvents());
  S.setArbitration({0, 1});
  // Missing so-visibility violates S2.
  EXPECT_FALSE(satisfiesCausality(H, S));
  S.closeCausally(H);
  EXPECT_TRUE(satisfiesCausality(H, S));
  // Visibility against arbitration order violates vı ⊆ ar.
  Schedule S2(H.numEvents());
  S2.setArbitration({1, 0});
  S2.setVisible(0, 1);
  EXPECT_FALSE(satisfiesCausality(H, S2));
}

TEST(ScheduleAxioms, AtomicVisibilityViolationDetected) {
  TypeRegistry Reg;
  Schema Sch;
  unsigned M = Sch.addContainer("M", Reg.lookup("map"));
  const DataTypeSpec *T = Sch.container(M).Type;
  unsigned Put = T->opIndex(*T->findOp("put"));
  History H(Sch);
  unsigned S1 = H.addSession(), S2 = H.addSession();
  unsigned T0 = H.beginTransaction(S1);
  H.append(T0, M, Put, {1, 1});
  H.append(T0, M, Put, {2, 2});
  unsigned T1 = H.beginTransaction(S2);
  H.append(T1, M, Put, {3, 3});
  Schedule S(H.numEvents());
  S.setArbitration({0, 1, 2});
  S.closeCausally(H);
  // Event 2 sees event 0 but not event 1: fractured reads.
  S.setVisible(0, 2);
  EXPECT_FALSE(satisfiesAtomicVisibility(H, S));
  S.setVisible(1, 2);
  EXPECT_TRUE(satisfiesAtomicVisibility(H, S));
}

//===----------------------------------------------------------------------===//
// Far relations.
//===----------------------------------------------------------------------===//

TEST(FarRelations, FixpointMatchesSpecWithoutCopy) {
  // On a creg history without cp events, the R2 fixpoint keeps plain
  // commutativity pairs that the conservative spec-level far tables drop.
  TypeRegistry Reg;
  Schema Sch;
  unsigned C = Sch.addContainer("C", Reg.lookup("creg"));
  const DataTypeSpec *T = Sch.container(C).Type;
  unsigned Put = T->opIndex(*T->findOp("put"));
  unsigned Get = T->opIndex(*T->findOp("get"));
  unsigned Cp = T->opIndex(*T->findOp("cp"));

  History H(Sch);
  unsigned S1 = H.addSession();
  unsigned T0 = H.beginTransaction(S1);
  unsigned U = H.append(T0, C, Put, {1, 5});
  unsigned S2 = H.addSession();
  unsigned T1 = H.beginTransaction(S2);
  unsigned Q = H.append(T1, C, Get, {2}, 0);

  EventRelations SpecRel(H, FarMode::Spec);
  EXPECT_FALSE(SpecRel.farCommute(U, Q)); // conservative: cp could exist
  EventRelations FixRel(H, FarMode::Fixpoint);
  EXPECT_TRUE(FixRel.farCommute(U, Q)); // no cp in this history

  // Now add a cp(1,2) event: the fixpoint drops the pair, exactly the
  // paper's §4.1 phenomenon.
  History H2(Sch);
  unsigned S1b = H2.addSession();
  unsigned T0b = H2.beginTransaction(S1b);
  unsigned Ub = H2.append(T0b, C, Put, {1, 5});
  unsigned S2b = H2.addSession();
  unsigned T1b = H2.beginTransaction(S2b);
  unsigned Qb = H2.append(T1b, C, Get, {2}, 0);
  unsigned S3b = H2.addSession();
  unsigned T2b = H2.beginTransaction(S3b);
  H2.append(T2b, C, Cp, {1, 2});
  EventRelations FixRel2(H2, FarMode::Fixpoint);
  EXPECT_FALSE(FixRel2.farCommute(Ub, Qb));
}

TEST(FarRelations, FixpointAtLeastAsPreciseAsSpec) {
  TypeRegistry Reg;
  Schema Sch;
  Sch.addContainer("M", Reg.lookup("map"));
  Sch.addContainer("S", Reg.lookup("set"));
  Sch.addContainer("C", Reg.lookup("creg"));
  Rng R(42);
  for (int Trial = 0; Trial != 50; ++Trial) {
    RandomExecution E = generateRandomExecution(Sch, R);
    EventRelations SpecRel(E.H, FarMode::Spec);
    EventRelations FixRel(E.H, FarMode::Fixpoint);
    for (unsigned A = 0; A != E.H.numEvents(); ++A)
      for (unsigned B = 0; B != E.H.numEvents(); ++B) {
        if (A == B)
          continue;
        // Spec far-commutativity implies fixpoint far-commutativity.
        if (SpecRel.farCommute(A, B)) {
          EXPECT_TRUE(FixRel.farCommute(A, B));
        }
      }
  }
}

TEST(FarRelations, QueriesAlwaysFarCommute) {
  TypeRegistry Reg;
  Schema Sch;
  unsigned M = Sch.addContainer("M", Reg.lookup("map"));
  const DataTypeSpec *T = Sch.container(M).Type;
  unsigned Get = T->opIndex(*T->findOp("get"));
  unsigned Size = T->opIndex(*T->findOp("size"));
  History H(Sch);
  unsigned S1 = H.addSession();
  unsigned T0 = H.beginTransaction(S1);
  unsigned A = H.append(T0, M, Get, {1}, 0);
  unsigned B = H.append(T0, M, Size, {}, 0);
  EventRelations Rel(H);
  EXPECT_TRUE(Rel.farCommute(A, B));
  EXPECT_TRUE(Rel.farCommute(B, A));
}

//===----------------------------------------------------------------------===//
// Randomized properties: Theorems 1 and 2.
//===----------------------------------------------------------------------===//

namespace {

Schema makeRandomSchema(TypeRegistry &Reg) {
  Schema Sch;
  Sch.addContainer("M", Reg.lookup("map"));
  Sch.addContainer("S", Reg.lookup("set"));
  Sch.addContainer("K", Reg.lookup("counter"));
  return Sch;
}

} // namespace

TEST(TheoremOne, AcyclicDSGImpliesSerializable) {
  TypeRegistry Reg;
  Schema Sch = makeRandomSchema(Reg);
  Rng R(2024);
  unsigned AcyclicSeen = 0, CyclicSeen = 0;
  for (int Trial = 0; Trial != 200; ++Trial) {
    RandomExecution E = generateRandomExecution(Sch, R);
    EventRelations Rel(E.H);
    Digraph G = buildDSG(E.H, computeDependencies(E.H, E.S, Rel));
    if (!G.hasCycle()) {
      ++AcyclicSeen;
      EXPECT_TRUE(isSerializable(E.H)) << "Theorem 1 violated";
    } else {
      ++CyclicSeen;
      // Contrapositive sanity only: a cyclic DSG proves nothing.
    }
  }
  // The generator must exercise both branches for this test to mean much.
  EXPECT_GT(AcyclicSeen, 20u);
  EXPECT_GT(CyclicSeen, 5u);
}

TEST(TheoremOne, UnserializableHistoriesHaveCyclicDSGs) {
  // Contrapositive of Theorem 1 for the generated schedule.
  TypeRegistry Reg;
  Schema Sch = makeRandomSchema(Reg);
  Rng R(77);
  RandomExecOptions Opts;
  Opts.VisPercent = 20; // sparse visibility produces more anomalies
  Opts.MaxSessions = 3;
  unsigned Unserializable = 0;
  for (int Trial = 0; Trial != 500; ++Trial) {
    RandomExecution E = generateRandomExecution(Sch, R, Opts);
    if (isSerializable(E.H))
      continue;
    ++Unserializable;
    EventRelations Rel(E.H);
    Digraph G = buildDSG(E.H, computeDependencies(E.H, E.S, Rel));
    EXPECT_TRUE(G.hasCycle());
  }
  EXPECT_GT(Unserializable, 5u);
}

TEST(TheoremTwo, LocalityOfDependencies) {
  TypeRegistry Reg;
  Schema Sch = makeRandomSchema(Reg);
  Rng R(31337);
  for (int Trial = 0; Trial != 100; ++Trial) {
    RandomExecution E = generateRandomExecution(Sch, R);
    EventRelations Rel(E.H);
    DependenceTriple Full = computeDependencies(E.H, E.S, Rel);
    std::vector<bool> Keep(E.H.numEvents());
    for (unsigned I = 0; I != Keep.size(); ++I)
      Keep[I] = R.chance(2, 3);
    DependenceTriple Restr =
        computeDependenciesRestricted(E.H, E.S, Rel, Keep);
    for (unsigned A = 0; A != E.H.numEvents(); ++A)
      for (unsigned B = 0; B != E.H.numEvents(); ++B) {
        if (!Keep[A] || !Keep[B])
          continue;
        // Theorem 2: restriction can only add dependencies, never lose.
        if (Full.Dep[A][B]) {
          EXPECT_TRUE(Restr.Dep[A][B]);
        }
        if (Full.AntiDep[A][B]) {
          EXPECT_TRUE(Restr.AntiDep[A][B]);
        }
        if (Full.Conflict[A][B]) {
          EXPECT_TRUE(Restr.Conflict[A][B]);
        }
      }
  }
}

TEST(RandomExecutions, AlwaysLegalSchedules) {
  TypeRegistry Reg;
  Schema Sch = makeRandomSchema(Reg);
  Rng R(555);
  for (int Trial = 0; Trial != 100; ++Trial) {
    RandomExecution E = generateRandomExecution(Sch, R);
    EXPECT_TRUE(isLegalSchedule(E.H, E.S));
  }
}

TEST(RandomExecutions, TableSchemaLegalToo) {
  TypeRegistry Reg;
  Schema Sch;
  Sch.addContainer("T", Reg.lookup("table"));
  Rng R(999);
  for (int Trial = 0; Trial != 50; ++Trial) {
    RandomExecution E = generateRandomExecution(Sch, R);
    EXPECT_TRUE(isLegalSchedule(E.H, E.S));
  }
}
