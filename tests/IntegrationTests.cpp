//===- tests/IntegrationTests.cpp - Static vs executed behavior -----------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end soundness evidence: programs the static analysis proves
/// serializable never exhibit DSG cycles (nor brute-force unserializability)
/// across many randomized executions on the causal-store simulator; and for
/// a program with a known violation, some execution exhibits it.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "frontend/Frontend.h"
#include "store/DynamicAnalyzer.h"
#include "store/Interpreter.h"

#include <gtest/gtest.h>

using namespace c4;

namespace {

/// Runs \p Rounds random transactions over two replicas with random
/// delivery; returns the store.
void randomWorkload(const CompiledProgram &P, CausalStore &Store, Rng &R,
                    unsigned Rounds) {
  ProgramRunner Runner(P, Store);
  std::vector<unsigned> Sessions = {Store.openSession(0),
                                    Store.openSession(1)};
  for (unsigned S : Sessions)
    for (const std::string &Name : P.AST->SessionConsts)
      Runner.setSessionConst(S, Name, 50 + S);
  for (const std::string &Name : P.AST->GlobalConsts)
    Runner.setGlobalConst(Name, 99);
  std::string Error;
  for (unsigned Round = 0; Round != Rounds; ++Round) {
    const TxnDecl &T = P.AST->Txns[R.below(P.AST->Txns.size())];
    std::vector<int64_t> Args;
    for (size_t I = 0; I != T.Params.size(); ++I)
      Args.push_back(R.range(1, 2));
    ASSERT_TRUE(Runner.runTxn(Sessions[R.below(2)], T.Name, Args, Error))
        << Error;
    while (R.chance(1, 2) && Store.deliverRandom(R)) {
    }
  }
  Store.deliverAll();
}

void expectNoDynamicViolations(const char *Source, unsigned Trials,
                               unsigned Rounds) {
  CompileResult C = compileC4L(Source);
  ASSERT_TRUE(C.ok()) << C.Error;
  AnalysisResult Static = analyze(*C.Program->History);
  ASSERT_TRUE(Static.Violations.empty())
      << "fixture expects a serializable program:\n"
      << reportStr(*C.Program->History, Static);
  Rng R(0xFEED);
  for (unsigned Trial = 0; Trial != Trials; ++Trial) {
    CausalStore Store(*C.Program->Sch, 2);
    randomWorkload(*C.Program, Store, R, Rounds);
    DynamicReport Dyn = analyzeDynamic(Store.history(), Store.schedule());
    EXPECT_FALSE(Dyn.violationFound())
        << "dynamic violation in a statically-proved program (soundness!)";
    if (Store.history().numTransactions() <= 6) {
      EXPECT_TRUE(isSerializable(Store.history()));
    }
  }
}

} // namespace

TEST(Integration, ProvedSessionKeyProgramNeverMisbehaves) {
  // Figure 7: all accesses of a session use the session's key.
  expectNoDynamicViolations(R"(
container map M;
session u;
txn P(y) { M.put(u, y); }
txn G()  { let v = M.get(u); return v; }
)",
                            /*Trials=*/40, /*Rounds=*/5);
}

TEST(Integration, ProvedLeaseProgramNeverMisbehaves) {
  expectNoDynamicViolations(R"(
container table Leases;
session me;
txn acquire(t) { Leases.set(me, "until", t); }
txn release() { Leases.set(me, "until", 0); }
txn held() {
  let e = Leases.get(me, "until");
  display(e);
}
)",
                            /*Trials=*/40, /*Rounds=*/5);
}

TEST(Integration, ProvedGlobalKeyProgramNeverMisbehaves) {
  expectNoDynamicViolations(R"(
container map M;
global k;
txn W(v) { M.put(k, v); }
txn R()  { let x = M.get(k); return x; }
)",
                            /*Trials=*/40, /*Rounds=*/5);
}

TEST(Integration, FlaggedProgramExhibitsViolationUnderSomeTiming) {
  const char *Source = R"(
container map M;
txn P(x, y) { M.put(x, y); }
txn G(z)    { let v = M.get(z); return v; }
)";
  CompileResult C = compileC4L(Source);
  ASSERT_TRUE(C.ok()) << C.Error;
  AnalysisResult Static = analyze(*C.Program->History);
  ASSERT_FALSE(Static.Violations.empty());

  // Search random timings for a dynamic manifestation.
  Rng R(0xBEEF);
  bool Seen = false;
  for (unsigned Trial = 0; Trial != 200 && !Seen; ++Trial) {
    CausalStore Store(*C.Program->Sch, 2);
    CompiledProgram &P = *C.Program;
    ProgramRunner Runner(P, Store);
    unsigned S0 = Store.openSession(0), S1 = Store.openSession(1);
    std::string Error;
    for (int I = 0; I != 6; ++I) {
      const TxnDecl &T = P.AST->Txns[R.below(P.AST->Txns.size())];
      std::vector<int64_t> Args;
      for (size_t J = 0; J != T.Params.size(); ++J)
        Args.push_back(R.range(1, 2));
      ASSERT_TRUE(
          Runner.runTxn(R.chance(1, 2) ? S0 : S1, T.Name, Args, Error));
      if (R.chance(1, 3))
        Store.deliverRandom(R);
    }
    Store.deliverAll();
    Seen = analyzeDynamic(Store.history(), Store.schedule())
               .violationFound();
  }
  EXPECT_TRUE(Seen) << "the statically-reported violation never "
                       "manifested dynamically in 200 random executions";
}

TEST(Integration, StaticSubsumesDynamicOnRandomWorkloads) {
  // Whenever the dynamic analyzer flags an executed history of a program,
  // the static analysis must have flagged the program (static soundness
  // relative to the dynamic criterion).
  const char *Sources[] = {
      R"(container map M;
txn W(k, v) { M.put(k, v); }
txn R(k) { let x = M.get(k); return x; })",
      R"(container table T;
txn A(r, v) { T.set(r, "f", v); }
txn D(r) { T.del(r); }
txn Q(r) { let x = T.get(r, "f"); return x; })",
      R"(container set S;
txn Add(x) { S.add(x); }
txn Rem(x) { S.remove(x); }
txn Has(x) { let b = S.contains(x); return b; })",
  };
  Rng R(0xACE);
  for (const char *Source : Sources) {
    CompileResult C = compileC4L(Source);
    ASSERT_TRUE(C.ok()) << C.Error;
    AnalysisResult Static = analyze(*C.Program->History);
    bool DynamicEverFlags = false;
    for (unsigned Trial = 0; Trial != 30; ++Trial) {
      CausalStore Store(*C.Program->Sch, 2);
      randomWorkload(*C.Program, Store, R, 5);
      DynamicEverFlags =
          DynamicEverFlags ||
          analyzeDynamic(Store.history(), Store.schedule())
              .violationFound();
    }
    if (DynamicEverFlags) {
      EXPECT_FALSE(Static.Violations.empty())
          << "dynamic found a violation the static analysis missed:\n"
          << Source;
    }
  }
}
