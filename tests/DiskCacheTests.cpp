//===- tests/DiskCacheTests.cpp - Cross-run cache persistence -------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the persistent cross-run cache stack: DiskCache crash safety
/// (torn and corrupt entries are misses, never errors; stale tmp files are
/// swept; a killed writer cannot publish a partial entry), OracleSnapshot
/// round-tripping, fingerprint sensitivity, AnalysisResult serialization,
/// and the end-to-end determinism contract — a warm analyzeCached run must
/// reproduce the cold run's serialized result byte for byte on every
/// example program.
///
//===----------------------------------------------------------------------===//

#include "analysis/Pipeline.h"
#include "frontend/Frontend.h"
#include "passes/PassManager.h"
#include "support/DiskCache.h"

#include "gtest/gtest.h"

#include <atomic>
#include <cstdio>
#include <dirent.h>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace c4;

namespace {

/// Fresh cache directory per test, under gtest's temp dir.
std::string freshDir(const char *Name) {
  std::string Dir = testing::TempDir() + "c4cache_" + Name;
  // Best-effort clean slate (the fixed DiskCache layout only).
  for (const char *Sub : {"/objects", "/tmp"}) {
    std::string D = Dir + Sub;
    if (DIR *Handle = ::opendir(D.c_str())) {
      while (struct dirent *E = ::readdir(Handle)) {
        std::string N = E->d_name;
        if (N != "." && N != "..")
          ::remove((D + "/" + N).c_str());
      }
      ::closedir(Handle);
    }
  }
  std::remove((Dir + "/VERSION").c_str());
  return Dir;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << Path;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

void writeFile(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << Bytes;
  ASSERT_TRUE(Out.good()) << Path;
}

TEST(DiskCache, PutGetRoundTrip) {
  DiskCache C(freshDir("roundtrip"));
  ASSERT_TRUE(C.enabled());
  EXPECT_FALSE(C.get("absent").has_value());
  C.put("key-1", "payload bytes \x01\x02\n with newline");
  auto Got = C.get("key-1");
  ASSERT_TRUE(Got.has_value());
  EXPECT_EQ(*Got, "payload bytes \x01\x02\n with newline");
  // Overwrite wins.
  C.put("key-1", "second");
  EXPECT_EQ(C.get("key-1").value_or(""), "second");
  DiskCacheStats S = C.stats();
  EXPECT_EQ(S.Stores, 2u);
  EXPECT_EQ(S.Hits, 2u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Corrupt, 0u);
}

TEST(DiskCache, TruncatedEntryIsMissAndUnlinked) {
  DiskCache C(freshDir("truncated"));
  ASSERT_TRUE(C.enabled());
  C.put("victim", std::string(4096, 'x'));
  ASSERT_TRUE(C.get("victim").has_value());

  // Simulate a torn write published by some other path: cut the file short.
  std::string Path = C.entryPath("victim");
  std::string Bytes = readFile(Path);
  writeFile(Path, Bytes.substr(0, Bytes.size() / 2));

  EXPECT_FALSE(C.get("victim").has_value());
  EXPECT_EQ(C.stats().Corrupt, 1u);
  // The torn entry was unlinked so the next store repairs the slot.
  EXPECT_EQ(std::fopen(Path.c_str(), "rb"), nullptr);
  C.put("victim", "repaired");
  EXPECT_EQ(C.get("victim").value_or(""), "repaired");
}

TEST(DiskCache, CorruptPayloadFailsChecksum) {
  DiskCache C(freshDir("corrupt"));
  ASSERT_TRUE(C.enabled());
  C.put("victim", "the quick brown fox");
  std::string Path = C.entryPath("victim");
  std::string Bytes = readFile(Path);
  Bytes[Bytes.size() - 3] ^= 0x40; // flip a payload bit, keep the length
  writeFile(Path, Bytes);
  EXPECT_FALSE(C.get("victim").has_value());
  EXPECT_EQ(C.stats().Corrupt, 1u);
}

TEST(DiskCache, ForeignFileIsMissNotCrash) {
  DiskCache C(freshDir("foreign"));
  ASSERT_TRUE(C.enabled());
  writeFile(C.entryPath("alien"), "not a cache entry at all");
  EXPECT_FALSE(C.get("alien").has_value());
  EXPECT_EQ(C.stats().Corrupt, 1u);
}

TEST(DiskCache, KilledWriterLeavesNoEntryAndTmpIsSwept) {
  std::string Dir = freshDir("killed");
  {
    DiskCache C(Dir);
    ASSERT_TRUE(C.enabled());
  }
  // A writer killed mid-write leaves only a tmp file — the final name was
  // never renamed into place.
  writeFile(Dir + "/tmp/victim.12345.0", "half-written garbage");
  DiskCache C(Dir); // reopen: sweeps tmp/
  EXPECT_FALSE(C.get("victim").has_value());
  EXPECT_EQ(std::fopen((Dir + "/tmp/victim.12345.0").c_str(), "rb"),
            nullptr);
}

TEST(DiskCache, UnusableDirectoryDegradesToCold) {
  // Root path is an existing *file*: the cache must disable itself, and
  // every operation must be a safe no-op.
  std::string Path = testing::TempDir() + "c4cache_notadir";
  writeFile(Path, "occupied");
  DiskCache C(Path);
  EXPECT_FALSE(C.enabled());
  EXPECT_FALSE(C.get("k").has_value());
  C.put("k", "v"); // no-op, no crash
  EXPECT_FALSE(C.get("k").has_value());
}

TEST(DiskCache, HostileKeysCannotEscapeObjectsDir) {
  std::string Dir = freshDir("hostile");
  DiskCache C(Dir);
  ASSERT_TRUE(C.enabled());
  C.put("../../etc/passwd", "nope");
  // Sanitized into the objects directory; retrievable under the same key.
  EXPECT_EQ(C.get("../../etc/passwd").value_or(""), "nope");
  std::string Prefix = Dir + "/objects/";
  std::string Path = C.entryPath("../../etc/passwd");
  ASSERT_EQ(Path.find(Prefix), 0u);
  // No path separators survive in the file name: dots are harmless once
  // the slashes are gone, the name stays flat inside objects/.
  EXPECT_EQ(Path.find('/', Prefix.size()), std::string::npos);
}

TEST(OracleSnapshot, SerializeDeserializeRoundTrip) {
  // Build a snapshot by exporting from a real oracle run, then round-trip.
  std::string Source = readFile(std::string(C4_SOURCE_DIR) +
                                "/examples/c4l/fig11_add_follower.c4l");
  CompileResult P = compileC4L(Source);
  ASSERT_TRUE(P.ok()) << P.Error;
  CommutativityOracle Oracle;
  AnalyzerOptions O;
  O.ExternalOracle = &Oracle;
  analyze(*P.Program->History, O);

  OracleSnapshot Snap;
  Oracle.exportSats(Snap);
  ASSERT_GT(Snap.size(), 0u) << "analysis should have queried the oracle";

  std::string Blob = Snap.serialize();
  std::optional<OracleSnapshot> Back = OracleSnapshot::deserialize(Blob);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->size(), Snap.size());
  EXPECT_EQ(Back->serialize(), Blob); // canonical form is a fixed point

  // Importing into a fresh oracle against the same registry restores every
  // entry (type names resolve, no skips).
  CommutativityOracle Fresh;
  EXPECT_EQ(Fresh.importSats(*Back, *P.Program->Registry), Snap.size());
}

TEST(OracleSnapshot, DeserializeRejectsDamage) {
  OracleSnapshot Empty;
  std::string Blob = Empty.serialize();
  EXPECT_TRUE(OracleSnapshot::deserialize(Blob).has_value());
  EXPECT_FALSE(OracleSnapshot::deserialize("").has_value());
  EXPECT_FALSE(OracleSnapshot::deserialize("wrong header\n").has_value());
  // Truncated mid-line (no trailing newline) must be rejected, not
  // half-imported: a torn snapshot is all-or-nothing.
  std::string Truncated = Blob + "+set|0|1|0||";
  EXPECT_FALSE(OracleSnapshot::deserialize(Truncated).has_value());
  // Verdict marker must be + or -.
  EXPECT_FALSE(
      OracleSnapshot::deserialize(Blob + "?set|0|1|0||\n").has_value());
}

TEST(Fingerprint, SensitiveToProgramAndOptions) {
  std::string A = readFile(std::string(C4_SOURCE_DIR) +
                           "/examples/c4l/fig11_add_follower.c4l");
  std::string B = readFile(std::string(C4_SOURCE_DIR) +
                           "/examples/c4l/uniqueness_bug.c4l");
  CompileResult PA = compileC4L(A), PA2 = compileC4L(A), PB = compileC4L(B);
  ASSERT_TRUE(PA.ok() && PA2.ok() && PB.ok());

  AnalyzerOptions O;
  std::string FpA = fingerprintAnalysis(*PA.Program->History, O);
  EXPECT_EQ(FpA.size(), 32u);
  // Deterministic across independent compilations of the same source.
  EXPECT_EQ(FpA, fingerprintAnalysis(*PA2.Program->History, O));
  // Different program, different key.
  EXPECT_NE(FpA, fingerprintAnalysis(*PB.Program->History, O));

  // Verdict-affecting options move the key...
  AnalyzerOptions OK2 = O;
  OK2.MaxK = O.MaxK + 1;
  EXPECT_NE(FpA, fingerprintAnalysis(*PA.Program->History, OK2));
  AnalyzerOptions ONoCom = O;
  ONoCom.Features.Commutativity = false;
  EXPECT_NE(FpA, fingerprintAnalysis(*PA.Program->History, ONoCom));
  AnalyzerOptions OBudget = O;
  OBudget.Budget.Rlimit += 1;
  EXPECT_NE(FpA, fingerprintAnalysis(*PA.Program->History, OBudget));

  // ...observability-only options do not.
  AnalyzerOptions OThreads = O;
  OThreads.NumThreads = 7;
  EXPECT_EQ(FpA, fingerprintAnalysis(*PA.Program->History, OThreads));
  AnalyzerOptions ONoOracle = O;
  ONoOracle.UseOracle = false;
  EXPECT_EQ(FpA, fingerprintAnalysis(*PA.Program->History, ONoOracle));
}

TEST(VerdictSerialization, RoundTripIsExact) {
  std::string Source = readFile(std::string(C4_SOURCE_DIR) +
                                "/examples/c4l/uniqueness_bug.c4l");
  CompileResult P = compileC4L(Source);
  ASSERT_TRUE(P.ok());
  AnalyzerOptions O;
  AnalysisResult R = analyze(*P.Program->History, O);
  ASSERT_FALSE(R.Violations.empty()) << "example should violate";

  std::string Blob = serializeResult(R);
  std::optional<AnalysisResult> Back = deserializeResult(Blob);
  ASSERT_TRUE(Back.has_value());
  // Re-serialization is the identity: every persisted field survived.
  EXPECT_EQ(serializeResult(*Back), Blob);
  EXPECT_EQ(Back->Violations.size(), R.Violations.size());
  EXPECT_EQ(Back->serializable(), R.serializable());
  EXPECT_EQ(verdictDigest(*Back), verdictDigest(R));

  // Damage in any field is a miss, not a misparse.
  EXPECT_FALSE(deserializeResult("").has_value());
  EXPECT_FALSE(deserializeResult("c4-verdict 2\n").has_value());
  EXPECT_FALSE(deserializeResult(Blob + "trailing junk\n").has_value());
  EXPECT_FALSE(
      deserializeResult(Blob.substr(0, Blob.size() / 2)).has_value());
}

/// The end-to-end determinism contract over every example program: cold
/// populates, a second AnalysisCache over the same directory serves warm,
/// and the serialized results must be byte-identical.
TEST(AnalysisCacheTest, WarmIsByteIdenticalToColdOnAllExamples) {
  std::string ExampleDir = std::string(C4_SOURCE_DIR) + "/examples/c4l";
  std::vector<std::string> Examples;
  DIR *D = ::opendir(ExampleDir.c_str());
  ASSERT_NE(D, nullptr);
  while (struct dirent *E = ::readdir(D)) {
    std::string Name = E->d_name;
    if (Name.size() > 4 && Name.substr(Name.size() - 4) == ".c4l")
      Examples.push_back(ExampleDir + "/" + Name);
  }
  ::closedir(D);
  ASSERT_GE(Examples.size(), 6u);

  std::string Dir = freshDir("determinism");
  std::vector<std::string> ColdBlobs;
  {
    AnalysisCache Cache(Dir);
    ASSERT_TRUE(Cache.enabled());
    for (const std::string &Path : Examples) {
      CompileResult P = compileC4L(readFile(Path));
      ASSERT_TRUE(P.ok()) << Path << ": " << P.Error;
      PassOptions PassOpts;
      PassOpts.Lint = false;
      ASSERT_TRUE(runPasses(*P.Program, PassOpts).Ok) << Path;
      AnalyzerOptions O;
      PipelineResult PR = analyzeCached(*P.Program->History, O,
                                        *P.Program->Registry, &Cache);
      EXPECT_FALSE(PR.CacheHit) << Path;
      ColdBlobs.push_back(serializeResult(PR.R));
    }
  }
  // A fresh cache object over the same directory: the warm pass runs from
  // disk, as a restarted process would.
  AnalysisCache Cache(Dir);
  for (size_t I = 0; I != Examples.size(); ++I) {
    CompileResult P = compileC4L(readFile(Examples[I]));
    ASSERT_TRUE(P.ok());
    PassOptions PassOpts;
    PassOpts.Lint = false;
    ASSERT_TRUE(runPasses(*P.Program, PassOpts).Ok);
    AnalyzerOptions O;
    PipelineResult PR = analyzeCached(*P.Program->History, O,
                                      *P.Program->Registry, &Cache);
    EXPECT_TRUE(PR.CacheHit) << Examples[I];
    EXPECT_EQ(serializeResult(PR.R), ColdBlobs[I]) << Examples[I];
  }
  EXPECT_EQ(Cache.verdictHits(), Examples.size());
}

/// Cold-path fallback: corrupting a cached verdict on disk must silently
/// re-analyze with an identical verdict and repair the entry.
TEST(AnalysisCacheTest, CorruptVerdictFallsBackColdAndRepairs) {
  std::string Path =
      std::string(C4_SOURCE_DIR) + "/examples/c4l/fig1_put_get.c4l";
  std::string Dir = freshDir("fallback");
  std::string ColdBlob, Fingerprint;
  {
    AnalysisCache Cache(Dir);
    CompileResult P = compileC4L(readFile(Path));
    ASSERT_TRUE(P.ok());
    AnalyzerOptions O;
    PipelineResult PR =
        analyzeCached(*P.Program->History, O, *P.Program->Registry, &Cache);
    ColdBlob = serializeResult(PR.R);
    Fingerprint = PR.Fingerprint;
  }
  // Corrupt the verdict entry on disk (the oracle snapshot stays intact).
  {
    DiskCache Disk(Dir);
    std::string Key = "verdict-r1-" + Fingerprint;
    ASSERT_TRUE(Disk.get(Key).has_value());
    std::string EntryPath = Disk.entryPath(Key);
    writeFile(EntryPath, "garbage");
  }
  AnalysisCache Cache(Dir);
  CompileResult P = compileC4L(readFile(Path));
  ASSERT_TRUE(P.ok());
  AnalyzerOptions O;
  PipelineResult PR =
      analyzeCached(*P.Program->History, O, *P.Program->Registry, &Cache);
  EXPECT_FALSE(PR.CacheHit); // corrupt entry is a miss...
  // ...re-analyzed to the same verdict (stage timings and oracle counters
  // differ between independent cold runs; the conclusion must not).
  std::optional<AnalysisResult> ColdR = deserializeResult(ColdBlob);
  ASSERT_TRUE(ColdR.has_value());
  EXPECT_EQ(verdictDigest(PR.R), verdictDigest(*ColdR));
  // ...and the store was repaired: the next run rehydrates byte for byte.
  PipelineResult PR2 =
      analyzeCached(*P.Program->History, O, *P.Program->Registry, &Cache);
  EXPECT_TRUE(PR2.CacheHit);
  EXPECT_EQ(serializeResult(PR2.R), serializeResult(PR.R));
}

/// The stampede contract behind c4-serve's single-flight layer: many
/// threads requesting one fingerprint through a shared AnalysisCache cost
/// exactly one backend run, and every thread gets the identical blob —
/// whether it rode the flight or hit the disk right after the leader
/// stored.
TEST(AnalysisCacheTest, ConcurrentStampedeRunsBackendOnce) {
  std::string Path =
      std::string(C4_SOURCE_DIR) + "/examples/c4l/fig11_add_follower.c4l";
  CompileResult P = compileC4L(readFile(Path));
  ASSERT_TRUE(P.ok());
  PassOptions PassOpts;
  PassOpts.Lint = false;
  ASSERT_TRUE(runPasses(*P.Program, PassOpts).Ok);

  std::string Dir = freshDir("stampede");
  AnalysisCache Cache(Dir);
  ASSERT_TRUE(Cache.enabled());

  constexpr unsigned N = 8;
  std::atomic<unsigned> Ready{0};
  std::atomic<bool> Go{false};
  std::vector<std::string> Blobs(N);
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I != N; ++I)
    Threads.emplace_back([&, I] {
      ++Ready;
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      AnalyzerOptions O;
      PipelineResult PR =
          analyzeCached(*P.Program->History, O, *P.Program->Registry, &Cache);
      Blobs[I] = serializeResult(PR.R);
    });
  while (Ready.load() != N)
    std::this_thread::yield();
  Go.store(true, std::memory_order_release);
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Cache.backendRuns(), 1u);
  // Everyone who did not lead either waited on the flight or hit the
  // stored verdict — nothing fell through to a second analysis.
  EXPECT_EQ(Cache.verdictHits() + Cache.flightWaits(), N - 1);
  for (unsigned I = 1; I != N; ++I)
    EXPECT_EQ(Blobs[0], Blobs[I]);
}

/// flush() persists oracle snapshot growth and is idempotent — the serving
/// tier calls it on graceful drain.
TEST(AnalysisCacheTest, FlushPersistsOracleGrowth) {
  std::string Path =
      std::string(C4_SOURCE_DIR) + "/examples/c4l/fig1_put_get.c4l";
  std::string Dir = freshDir("flush");
  size_t Entries = 0;
  {
    AnalysisCache Cache(Dir);
    CompileResult P = compileC4L(readFile(Path));
    ASSERT_TRUE(P.ok());
    AnalyzerOptions O;
    analyzeCached(*P.Program->History, O, *P.Program->Registry, &Cache);
    Entries = Cache.oracleEntries();
    Cache.flush();
    Cache.flush(); // idempotent
  }
  AnalysisCache Reopened(Dir);
  EXPECT_EQ(Reopened.oracleEntries(), Entries);
}

} // namespace
