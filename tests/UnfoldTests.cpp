//===- tests/UnfoldTests.cpp - k-unfolding tests --------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the unfolder (§7.1): session-spec enumeration (singles and
/// so-linked pairs, multisets up to session permutation), variable
/// inheritance, the transaction-universe restriction, and the Definition 4
/// SCC unfolding of transactions with cyclic event order (loops), including
/// the invariant-retention rules (Inv kept on R edges, dropped on
/// I'/O'/B').
///
//===----------------------------------------------------------------------===//

#include "unfold/Unfolder.h"

#include "support/Digraph.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace c4;

namespace {

class UnfoldFixture : public ::testing::Test {
public:
  UnfoldFixture() { M = Sch.addContainer("M", Reg.lookup("map")); }

  unsigned op(const char *Name) {
    const DataTypeSpec *T = Sch.container(M).Type;
    return T->opIndex(*T->findOp(Name));
  }

  TypeRegistry Reg;
  Schema Sch;
  unsigned M = 0;
};

} // namespace

TEST_F(UnfoldFixture, EnumerationCountsAndShape) {
  // Two transactions, so allowed only P -> G.
  AbstractHistory A(Sch);
  unsigned P = A.addTransaction("P");
  A.addEo(A.entry(P), A.addEvent(P, M, op("put"), {}));
  unsigned G = A.addTransaction("G");
  A.addEo(A.entry(G), A.addEvent(G, M, op("get"), {}));
  A.setMaySo(P, G);

  bool Truncated = false;
  std::vector<Unfolding> Us = enumerateUnfoldings(A, 2, 100000, Truncated);
  EXPECT_FALSE(Truncated);
  // Specs: {P}, {G}, {P,G} -> multisets of size 2 over 3 specs = C(4,2)=6.
  EXPECT_EQ(Us.size(), 6u);
  for (const Unfolding &U : Us) {
    EXPECT_EQ(U.NumSessions, 2u);
    EXPECT_LE(U.H.numTxns(), 4u);
    EXPECT_EQ(U.OrigTxn.size(), U.H.numTxns());
    EXPECT_EQ(U.SessionTags.size(), U.H.numTxns());
    EXPECT_EQ(U.OrigEvent.size(), U.H.numEvents());
    // Events map to original events with the same label.
    for (unsigned E = 0; E != U.H.numEvents(); ++E)
      EXPECT_EQ(U.H.event(E).Label, A.event(U.OrigEvent[E]).Label);
  }
}

TEST_F(UnfoldFixture, SoPairsRespectTransitiveClosure) {
  // a -> b -> c: the pair (a,c) is reachable through the closure.
  AbstractHistory A(Sch);
  unsigned TA = A.addTransaction("a");
  A.addEo(A.entry(TA), A.addEvent(TA, M, op("put"), {}));
  unsigned TB = A.addTransaction("b");
  A.addEo(A.entry(TB), A.addEvent(TB, M, op("put"), {}));
  unsigned TC = A.addTransaction("c");
  A.addEo(A.entry(TC), A.addEvent(TC, M, op("put"), {}));
  A.setMaySo(TA, TB);
  A.setMaySo(TB, TC);

  bool Truncated = false;
  std::vector<Unfolding> Us = enumerateUnfoldings(A, 1, 100000, Truncated);
  // Session specs: 3 singles + pairs (a,b),(b,c),(a,c) = 6 one-session
  // unfoldings.
  EXPECT_EQ(Us.size(), 6u);
  bool SawAC = false;
  for (const Unfolding &U : Us) {
    std::vector<unsigned> Set = U.origTxnSet();
    if (Set == std::vector<unsigned>{TA, TC})
      SawAC = true;
  }
  EXPECT_TRUE(SawAC);
}

TEST_F(UnfoldFixture, UniverseRestriction) {
  AbstractHistory A(Sch);
  unsigned P = A.addTransaction("P");
  A.addEo(A.entry(P), A.addEvent(P, M, op("put"), {}));
  unsigned G = A.addTransaction("G");
  A.addEo(A.entry(G), A.addEvent(G, M, op("get"), {}));
  A.allowAllSo();

  std::vector<unsigned> OnlyP = {P};
  bool Truncated = false;
  std::vector<Unfolding> Us =
      enumerateUnfoldings(A, 2, 100000, Truncated, &OnlyP);
  for (const Unfolding &U : Us)
    for (unsigned T : U.OrigTxn)
      EXPECT_EQ(T, P);
  (void)G;
}

TEST_F(UnfoldFixture, VariablesInherited) {
  AbstractHistory A(Sch);
  unsigned L = A.addLocalVar();
  unsigned Gv = A.addGlobalVar();
  unsigned P = A.addTransaction("P");
  A.addEo(A.entry(P), A.addEvent(P, M, op("put"), {AbsFact::localVar(L)}));
  A.allowAllSo();
  (void)Gv;
  bool Truncated = false;
  std::vector<Unfolding> Us = enumerateUnfoldings(A, 2, 1000, Truncated);
  ASSERT_FALSE(Us.empty());
  EXPECT_EQ(Us[0].H.numLocalVars(), 1u);
  EXPECT_EQ(Us[0].H.numGlobalVars(), 1u);
}

TEST_F(UnfoldFixture, AcyclicTransactionsUnfoldToThemselves) {
  AbstractHistory A(Sch);
  unsigned T = A.addTransaction("t");
  unsigned E1 = A.addEvent(T, M, op("get"), {});
  unsigned E2 = A.addEvent(T, M, op("put"), {});
  A.addEo(A.entry(T), E1);
  A.addEo(E1, E2, Cond::lt(Term::argSrc(1), Term::constant(10)));
  A.addInv(E1, E2, Cond::eq(Term::argSrc(0), Term::argTgt(0)));

  UnfoldedTxnTemplate Tmpl = unfoldTransaction(A, T);
  EXPECT_EQ(Tmpl.Orig.size(), 3u); // entry + get + put
  EXPECT_EQ(Tmpl.Eo.size(), 2u);
  EXPECT_EQ(Tmpl.Invs.size(), 1u);
  // The guard survives on the straight-line edge.
  bool GuardSeen = false;
  for (const AbstractConstraint &E : Tmpl.Eo)
    GuardSeen = GuardSeen || !E.C.isTrue();
  EXPECT_TRUE(GuardSeen);
}

TEST_F(UnfoldFixture, Definition4UnfoldsLoops) {
  // entry -> q -> u -> exit with a back edge u -> q: a loop (Fig. 8).
  AbstractHistory A(Sch);
  unsigned T = A.addTransaction("loop");
  unsigned Q = A.addEvent(T, M, op("get"), {});
  unsigned U = A.addEvent(T, M, op("put"), {});
  unsigned Exit = A.addMarker(T, "exit");
  A.addEo(A.entry(T), Q);
  A.addEo(Q, U, Cond::lt(Term::argSrc(1), Term::constant(10)));
  A.addEo(U, Q); // back edge: loop
  A.addEo(U, Exit);
  A.addInv(Q, U, Cond::eq(Term::argSrc(0), Term::argTgt(0)));

  UnfoldedTxnTemplate Tmpl = unfoldTransaction(A, T);
  // The SCC {q,u} is duplicated: entry + exit + 2 copies of {q,u} = 6.
  EXPECT_EQ(Tmpl.Orig.size(), 6u);
  // The result is acyclic.
  Digraph G(static_cast<unsigned>(Tmpl.Orig.size()));
  for (const AbstractConstraint &E : Tmpl.Eo)
    G.addEdge(E.Src, E.Tgt);
  EXPECT_FALSE(G.hasCycle());
  // Both copies carry the q->u invariant-bearing R edge; the pair
  // invariant is duplicated per copy.
  EXPECT_EQ(Tmpl.Invs.size(), 2u);
  // Each copy of q and u appears exactly twice.
  std::map<unsigned, unsigned> Copies;
  for (unsigned Orig : Tmpl.Orig)
    ++Copies[Orig];
  EXPECT_EQ(Copies[Q], 2u);
  EXPECT_EQ(Copies[U], 2u);
  EXPECT_EQ(Copies[Exit], 1u);
}

TEST_F(UnfoldFixture, Definition4EdgeClasses) {
  // Same loop; check the rewiring: entry reaches both the loop head copy1
  // (I' includes Is x Bt), copy1 reaches copy2 via back-edge images, and
  // both copies reach the exit (O' from copy1 and copy2).
  AbstractHistory A(Sch);
  unsigned T = A.addTransaction("loop");
  unsigned Q = A.addEvent(T, M, op("get"), {});
  unsigned U = A.addEvent(T, M, op("put"), {});
  unsigned Exit = A.addMarker(T, "exit");
  A.addEo(A.entry(T), Q);
  A.addEo(Q, U);
  A.addEo(U, Q);
  A.addEo(U, Exit);

  UnfoldedTxnTemplate Tmpl = unfoldTransaction(A, T);
  Digraph G(static_cast<unsigned>(Tmpl.Orig.size()));
  for (const AbstractConstraint &E : Tmpl.Eo)
    G.addEdge(E.Src, E.Tgt);
  // Local index 0 is the entry; find exit and the copies.
  unsigned EntryIdx = 0, ExitIdx = ~0u;
  std::vector<unsigned> QIdx, UIdx;
  for (unsigned I = 0; I != Tmpl.Orig.size(); ++I) {
    if (Tmpl.Orig[I] == Exit)
      ExitIdx = I;
    if (Tmpl.Orig[I] == Q)
      QIdx.push_back(I);
    if (Tmpl.Orig[I] == U)
      UIdx.push_back(I);
  }
  ASSERT_EQ(QIdx.size(), 2u);
  ASSERT_EQ(UIdx.size(), 2u);
  ASSERT_NE(ExitIdx, ~0u);
  // Entry reaches every copy; every update copy reaches the exit.
  std::vector<bool> FromEntry = G.reachableFrom(EntryIdx);
  for (unsigned I : QIdx)
    EXPECT_TRUE(FromEntry[I]);
  for (unsigned I : UIdx) {
    EXPECT_TRUE(FromEntry[I]);
    EXPECT_TRUE(G.reachableFrom(I)[ExitIdx]);
  }
}

TEST_F(UnfoldFixture, BuildUnfoldingSessionLayout) {
  AbstractHistory A(Sch);
  unsigned P = A.addTransaction("P");
  A.addEo(A.entry(P), A.addEvent(P, M, op("put"), {}));
  unsigned G = A.addTransaction("G");
  A.addEo(A.entry(G), A.addEvent(G, M, op("get"), {}));
  A.allowAllSo();

  Unfolding U = buildUnfolding(A, {{P, G}, {G}});
  EXPECT_EQ(U.NumSessions, 2u);
  ASSERT_EQ(U.H.numTxns(), 3u);
  EXPECT_EQ(U.SessionTags[0], 0u);
  EXPECT_EQ(U.SessionTags[1], 0u);
  EXPECT_EQ(U.SessionTags[2], 1u);
  EXPECT_TRUE(U.H.maySo(0, 1));  // chain inside session 0
  EXPECT_FALSE(U.H.maySo(1, 0));
  EXPECT_FALSE(U.H.maySo(0, 2)); // no cross-session order
  EXPECT_EQ(U.origTxnSet(), (std::vector<unsigned>{P, G}));
}
