//===- tests/PassesTests.cpp - Pass framework tests -----------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the dataflow pass framework (src/passes): CFG construction,
/// the individual reduction passes, fresh-identity promotion, and the
/// differential soundness guarantee — the analyzer's verdict is byte-for-
/// byte identical with and without the reduction pipeline on every shipped
/// example and every Table 1 benchmark application.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "apps/Apps.h"
#include "frontend/Frontend.h"
#include "passes/CFG.h"
#include "passes/PassManager.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

using namespace c4;

namespace {

CompiledProgram compile(const std::string &Source) {
  CompileResult R = compileC4L(Source);
  EXPECT_TRUE(R.ok()) << R.Error;
  return std::move(*R.Program);
}

/// Canonical verdict string for the differential tests: serializability
/// bit plus the sorted violation set (transaction names + triage class).
std::string verdictKey(const AnalysisResult &R) {
  std::vector<std::string> Keys;
  for (const Violation &V : R.Violations) {
    std::string K;
    for (const std::string &N : V.TxnNames) {
      K += N;
      K += ',';
    }
    K += V.Inconclusive ? '?' : (V.Validated ? '!' : '~');
    Keys.push_back(std::move(K));
  }
  std::sort(Keys.begin(), Keys.end());
  std::string Out = R.serializable() ? "S|" : "V|";
  for (const std::string &K : Keys) {
    Out += K;
    Out += ';';
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// CFG construction
//===----------------------------------------------------------------------===//

TEST(CFGTest, StraightLine) {
  CompiledProgram P = compile("container map M;\n"
                              "txn t(k, v) {\n"
                              "  M.put(k, v);\n"
                              "  M.put(k, 1);\n"
                              "  let x = M.get(k);\n"
                              "}\n");
  TxnCFG G(P.AST->Txns[0]);
  // A loop-free body with no branches is one straight path: every block
  // has at most one successor and all three statements appear in order.
  unsigned Stmts = 0;
  for (unsigned N = 0; N != G.numNodes(); ++N) {
    EXPECT_LE(G.node(N).Succs.size(), 1u);
    EXPECT_EQ(G.node(N).Term, nullptr);
    Stmts += static_cast<unsigned>(G.node(N).Stmts.size());
  }
  EXPECT_EQ(Stmts, 3u);
  EXPECT_TRUE(G.dominates(G.entry(), G.exitNode()));
  EXPECT_TRUE(G.postDominates(G.exitNode(), G.entry()));
  EXPECT_EQ(G.rpo().size(), G.numNodes());
  EXPECT_EQ(G.rpo().front(), G.entry());
}

TEST(CFGTest, BranchDiamond) {
  CompiledProgram P = compile("container map M;\n"
                              "txn t(k, c) {\n"
                              "  M.put(k, 1);\n"
                              "  if (c) {\n"
                              "    M.put(k, 2);\n"
                              "  } else {\n"
                              "    M.put(k, 3);\n"
                              "  }\n"
                              "  M.put(k, 4);\n"
                              "}\n");
  TxnCFG G(P.AST->Txns[0]);
  // Exactly one branch block, with distinct then/else successors.
  unsigned Branches = 0, BranchNode = 0;
  for (unsigned N = 0; N != G.numNodes(); ++N)
    if (G.node(N).Term) {
      ++Branches;
      BranchNode = N;
    }
  ASSERT_EQ(Branches, 1u);
  const CFGNode &B = G.node(BranchNode);
  ASSERT_EQ(B.Succs.size(), 2u);
  unsigned Then = B.Succs[0], Else = B.Succs[1];
  EXPECT_NE(Then, Else);
  // The branch dominates both arms; neither arm dominates the exit, but
  // the branch (and the entry) do. The exit post-dominates everything.
  EXPECT_TRUE(G.dominates(BranchNode, Then));
  EXPECT_TRUE(G.dominates(BranchNode, Else));
  EXPECT_FALSE(G.dominates(Then, G.exitNode()));
  EXPECT_FALSE(G.dominates(Else, G.exitNode()));
  EXPECT_TRUE(G.dominates(BranchNode, G.exitNode()));
  for (unsigned N = 0; N != G.numNodes(); ++N)
    EXPECT_TRUE(G.postDominates(G.exitNode(), N));
  EXPECT_FALSE(G.postDominates(Then, BranchNode));
}

TEST(CFGTest, GuardChain) {
  CompiledProgram P = compile("container map M;\n"
                              "txn t(k, a, b) {\n"
                              "  if (a) {\n"
                              "    if (b) {\n"
                              "      M.put(k, 1);\n"
                              "    }\n"
                              "  }\n"
                              "  M.put(k, 2);\n"
                              "}\n");
  TxnCFG G(P.AST->Txns[0]);
  // Two branch blocks; the outer one dominates the inner one, and both
  // dominate the innermost update's block.
  std::vector<unsigned> Branches;
  for (unsigned N : G.rpo())
    if (G.node(N).Term)
      Branches.push_back(N);
  ASSERT_EQ(Branches.size(), 2u);
  unsigned Outer = Branches[0], Inner = Branches[1];
  EXPECT_TRUE(G.dominates(Outer, Inner));
  EXPECT_FALSE(G.dominates(Inner, Outer));
  unsigned InnerThen = G.node(Inner).Succs[0];
  EXPECT_TRUE(G.dominates(Outer, InnerThen));
  EXPECT_TRUE(G.dominates(Inner, InnerThen));
  EXPECT_EQ(G.node(InnerThen).Stmts.size(), 1u);
  // Idom sanity: the entry is its own idom; every other node's idom
  // strictly dominates it.
  EXPECT_EQ(G.idom()[G.entry()], G.entry());
  for (unsigned N = 0; N != G.numNodes(); ++N)
    if (N != G.entry()) {
      EXPECT_TRUE(G.dominates(G.idom()[N], N));
    }
}

//===----------------------------------------------------------------------===//
// Reduction passes
//===----------------------------------------------------------------------===//

TEST(PassTest, InfeasibleBranchPruned) {
  CompiledProgram P = compile("container map M;\n"
                              "txn t(k) {\n"
                              "  let y = M.get(k);\n"
                              "  if (y == 3) {\n"
                              "    if (y == 4) {\n"
                              "      M.put(k, 9);\n"
                              "    }\n"
                              "  }\n"
                              "}\n");
  unsigned Before = P.History->numStoreEvents();
  PassResult R = runPasses(P, PassOptions());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GE(R.Stats.PrunedBranches, 1u);
  EXPECT_LT(P.History->numStoreEvents(), Before);
  bool SawW003 = false;
  for (const LintDiagnostic &D : R.Lints)
    SawW003 = SawW003 || D.Id == "C4L-W003";
  EXPECT_TRUE(SawW003);
}

TEST(PassTest, FeasibleBranchKept) {
  CompiledProgram P = compile("container map M;\n"
                              "txn t(k) {\n"
                              "  let y = M.get(k);\n"
                              "  if (y >= 3) {\n"
                              "    if (y <= 5) {\n"
                              "      M.put(k, 9);\n"
                              "    }\n"
                              "  }\n"
                              "}\n");
  unsigned Before = P.History->numStoreEvents();
  PassResult R = runPasses(P, PassOptions());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Stats.PrunedBranches, 0u);
  EXPECT_EQ(P.History->numStoreEvents(), Before);
}

TEST(PassTest, ConstantPropagation) {
  CompiledProgram P = compile("container map M;\n"
                              "txn t(k) {\n"
                              "  let y = M.get(k);\n"
                              "  if (y == 3) {\n"
                              "    M.put(k, y);\n"
                              "  }\n"
                              "}\n");
  PassResult R = runPasses(P, PassOptions());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GE(R.Stats.ConstProps, 1u);
  // The put's value argument became the literal 3 in the rewritten AST.
  const TxnDecl &T = P.AST->Txns[0];
  const Stmt &If = *T.Body[1];
  ASSERT_EQ(If.Kind, Stmt::If);
  ASSERT_FALSE(If.Then.empty());
  const Stmt &Put = *If.Then[0];
  ASSERT_EQ(Put.Args.size(), 2u);
  EXPECT_EQ(Put.Args[1].Kind, Expr::IntLit);
  EXPECT_EQ(Put.Args[1].Value, 3);
}

TEST(PassTest, AbsorbedWriteEliminated) {
  CompiledProgram P = compile("container map M;\n"
                              "txn t(k) {\n"
                              "  M.put(k, 7);\n"
                              "  M.put(k, 7);\n"
                              "}\n");
  unsigned Before = P.History->numStoreEvents();
  PassResult R = runPasses(P, PassOptions());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Stats.DeadWrites, 1u);
  EXPECT_EQ(P.History->numStoreEvents(), Before - 1);
  bool SawW005 = false;
  for (const LintDiagnostic &D : R.Lints)
    SawW005 = SawW005 || D.Id == "C4L-W005";
  EXPECT_TRUE(SawW005);
}

TEST(PassTest, InterveningReadBlocksElimination) {
  CompiledProgram P = compile("container map M;\n"
                              "txn t(k) {\n"
                              "  M.put(k, 7);\n"
                              "  let z = M.get(k);\n"
                              "  M.put(k, 7);\n"
                              "  display(z);\n"
                              "}\n");
  unsigned Before = P.History->numStoreEvents();
  PassResult R = runPasses(P, PassOptions());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Stats.DeadWrites, 0u);
  EXPECT_EQ(P.History->numStoreEvents(), Before);
}

TEST(PassTest, DifferentArgsBlockElimination) {
  CompiledProgram P = compile("container map M;\n"
                              "txn t(k) {\n"
                              "  M.put(k, 7);\n"
                              "  M.put(k, 8);\n"
                              "}\n");
  PassResult R = runPasses(P, PassOptions());
  ASSERT_TRUE(R.Ok) << R.Error;
  // put(k,7) IS far-absorbed by put(k,8), but the value slots differ, so
  // removal is not mechanically verdict-preserving and must not happen
  // under the relevant-slot-identity restriction.
  EXPECT_EQ(R.Stats.DeadWrites, 0u);
}

TEST(PassTest, NoPassesModeOnlyLints) {
  CompiledProgram P = compile("container map M;\n"
                              "txn t(k) {\n"
                              "  M.put(k, 7);\n"
                              "  M.put(k, 7);\n"
                              "}\n");
  unsigned Before = P.History->numStoreEvents();
  PassOptions Opts;
  Opts.Reduce = false;
  PassResult R = runPasses(P, Opts);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_FALSE(R.Changed);
  EXPECT_EQ(R.Stats.DeadWrites, 0u);
  EXPECT_EQ(P.History->numStoreEvents(), Before);
  // Lints still fire (W001: M is never queried).
  bool SawW001 = false;
  for (const LintDiagnostic &D : R.Lints)
    SawW001 = SawW001 || D.Id == "C4L-W001";
  EXPECT_TRUE(SawW001);
}

//===----------------------------------------------------------------------===//
// Fresh-identity promotion
//===----------------------------------------------------------------------===//

TEST(FreshPromotionTest, CreatorUsePromoted) {
  CompiledProgram P = compile("container table T;\n"
                              "txn t(q) {\n"
                              "  let x = T.add_row();\n"
                              "  T.set(x, \"f\", q);\n"
                              "}\n");
  EXPECT_GE(promoteFreshFacts(P), 1u);
}

TEST(FreshPromotionTest, NonCreatorNotPromoted) {
  CompiledProgram P = compile("container table T;\n"
                              "session current;\n"
                              "txn t(q) {\n"
                              "  T.set(current, \"f\", q);\n"
                              "}\n");
  EXPECT_EQ(promoteFreshFacts(P), 0u);
}

TEST(FreshPromotionTest, VerdictPreservedOnFig12) {
  std::ifstream In(std::string(C4_SOURCE_DIR) +
                   "/examples/c4l/fig12_fresh_rows.c4l");
  ASSERT_TRUE(In.good());
  std::stringstream Buf;
  Buf << In.rdbuf();
  const std::string Source = Buf.str();

  CompiledProgram Raw = compile(Source);
  AnalysisResult RawR = analyze(*Raw.History, AnalyzerOptions());

  CompiledProgram Reduced = compile(Source);
  PassResult Passes = runPasses(Reduced, PassOptions());
  ASSERT_TRUE(Passes.Ok) << Passes.Error;
  EXPECT_GE(Passes.Stats.FreshPromotions, 1u);
  AnalysisResult RedR = analyze(*Reduced.History, AnalyzerOptions());

  EXPECT_EQ(verdictKey(RawR), verdictKey(RedR));
  // The promotion can only shrink the solver's work, never grow it.
  EXPECT_LE(RedR.SmtQueries, RawR.SmtQueries);
}

//===----------------------------------------------------------------------===//
// Differential soundness: identical verdicts with and without passes
//===----------------------------------------------------------------------===//

void expectDifferentialMatch(const std::string &Source,
                             const std::string &Label) {
  CompileResult RawC = compileC4L(Source);
  ASSERT_TRUE(RawC.ok()) << Label << ": " << RawC.Error;
  CompiledProgram &Raw = *RawC.Program;

  CompileResult RedC = compileC4L(Source);
  ASSERT_TRUE(RedC.ok());
  CompiledProgram &Reduced = *RedC.Program;
  PassResult Passes = runPasses(Reduced, PassOptions());
  ASSERT_TRUE(Passes.Ok) << Label << ": " << Passes.Error;

  AnalyzerOptions Unfiltered;
  EXPECT_EQ(verdictKey(analyze(*Raw.History, Unfiltered)),
            verdictKey(analyze(*Reduced.History, Unfiltered)))
      << Label << " (unfiltered)";

  AnalyzerOptions Filtered;
  Filtered.DisplayFilter = true;
  Filtered.UseAtomicSets = !Raw.AtomicSets.empty();
  Filtered.AtomicSets = Raw.AtomicSets;
  AnalyzerOptions FilteredRed = Filtered;
  FilteredRed.UseAtomicSets = !Reduced.AtomicSets.empty();
  FilteredRed.AtomicSets = Reduced.AtomicSets;
  EXPECT_EQ(verdictKey(analyze(*Raw.History, Filtered)),
            verdictKey(analyze(*Reduced.History, FilteredRed)))
      << Label << " (filtered)";
}

class ExampleDifferential : public testing::TestWithParam<const char *> {};

TEST_P(ExampleDifferential, VerdictUnchanged) {
  std::string Path =
      std::string(C4_SOURCE_DIR) + "/examples/c4l/" + GetParam();
  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << Path;
  std::stringstream Buf;
  Buf << In.rdbuf();
  expectDifferentialMatch(Buf.str(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Examples, ExampleDifferential,
    testing::Values("fig1_put_get.c4l", "fig7_session_keys.c4l",
                    "fig11_add_follower.c4l", "fig12_fresh_rows.c4l",
                    "highscore_fixed.c4l", "uniqueness_bug.c4l"),
    [](const testing::TestParamInfo<const char *> &Info) {
      std::string Name = Info.param;
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

class BenchDifferential : public testing::TestWithParam<unsigned> {};

TEST_P(BenchDifferential, VerdictUnchanged) {
  const c4bench::BenchApp &App = c4bench::benchApps()[GetParam()];
  expectDifferentialMatch(App.Source, App.Name);
}

INSTANTIATE_TEST_SUITE_P(
    BenchApps, BenchDifferential,
    testing::Range(0u,
                   static_cast<unsigned>(c4bench::benchApps().size())),
    [](const testing::TestParamInfo<unsigned> &Info) {
      std::string Name = c4bench::benchApps()[Info.param].Name;
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

} // namespace
