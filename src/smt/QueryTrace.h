//===- smt/QueryTrace.h - Structured solver query trace ---------*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A structured trace of every solver query an analysis run issues: one
/// record per ϕ_cyclic query with the pipeline stage, session bound,
/// unfolding id, retry/attempt counts, rlimit budget and spend, outcome and
/// wall time. Records are appended in commit order (the deterministic
/// enumeration order of the bounded check), so everything except the wall
/// and spent columns is reproducible across runs and thread counts. The
/// bench suite aggregates traces into per-stage query counts and retry
/// rates (`bench_table1 --governance`); ad-hoc tooling can consume the
/// JSONL rendering (`c4-analyze --trace <file>`, one JSON object per line).
///
//===----------------------------------------------------------------------===//

#ifndef C4_SMT_QUERYTRACE_H
#define C4_SMT_QUERYTRACE_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace c4 {

/// One solver query (up to `Attempts` escalating solve attempts).
struct QueryRecord {
  /// Pipeline stage: "bounded" (per-unfolding ϕ_cyclic) or "generalize"
  /// (§7.2 segment-infeasibility chunks).
  const char *Stage = "bounded";
  /// Session bound k of the round that issued the query.
  unsigned K = 0;
  /// Commit-order unfolding index within the round (-1: not applicable).
  long Unfolding = -1;
  /// Solve attempts issued (1 = no retry).
  unsigned Attempts = 1;
  /// The rlimit budget of the last attempt (0 = wall-clock only).
  uint64_t RlimitBudget = 0;
  /// Total resource units spent across all attempts of this query.
  uint64_t RlimitSpent = 0;
  /// "cycle", "no-cycle", "unknown" or "error".
  const char *Outcome = "unknown";
  /// The verdict came from the domain prefilter; no Z3 query was built
  /// (Attempts is 0 for such records).
  bool Prefiltered = false;
  /// The verdict was reused from the incremental layers — a persisted
  /// NoCycle record or a constraint-cache (green) hit — without reaching
  /// Z3 (Attempts is 0 for such records).
  bool Reused = false;
  /// Wall time across all attempts, milliseconds.
  double WallMs = 0;
};

/// Thread-safe accumulator for query records; rendered as JSONL.
class QueryTrace {
public:
  void append(const QueryRecord &R) {
    std::lock_guard<std::mutex> Lock(Mu);
    Records.push_back(R);
  }

  /// Snapshot of the records appended so far.
  std::vector<QueryRecord> records() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Records;
  }

  size_t size() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Records.size();
  }

  /// Renders the trace as JSONL: one `{"seq":N,...}` object per line.
  std::string toJsonl() const;

  /// Writes the JSONL rendering to \p Path; false on I/O failure.
  bool writeFile(const std::string &Path) const;

private:
  mutable std::mutex Mu;
  std::vector<QueryRecord> Records;
};

} // namespace c4

#endif // C4_SMT_QUERYTRACE_H
