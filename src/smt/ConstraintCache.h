//===- smt/ConstraintCache.h - Canonicalized constraint cache ---*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Green-style constraint cache (Visser/Geldenhuys/Dwyer, FSE 2012:
/// "Green: reducing, reusing and recycling constraints in program
/// analysis") for the ϕ_cyclic queries of the SMT stage. Every query is
/// *sliced* into independent conjunct groups (assertions connected by
/// shared uninterpreted constants — since groups share no symbols, the
/// query is unsatisfiable iff some group is), each group is
/// *canonicalized* (the per-query `q<generation>.`-decorated constant
/// names are renamed to `c0, c1, ...` in first-occurrence order, so two
/// queries that differ only in naming, query generation or assertion
/// grouping collapse to one key), and the sorted group texts are hashed
/// into a stable fingerprint. The cache memoizes **unsat** verdicts only:
/// an unsat proof is reusable as-is (NoCycle), while a sat verdict is
/// useless without its model — the analyzer must re-solve to extract the
/// counter-example witness anyway.
///
/// Determinism contract: lookups consult only the immutable *base* the
/// cache was constructed with (the snapshot loaded from disk at run
/// start); verdicts proved during the run are collected run-locally and
/// only merged into the persistent snapshot after the run. Hit/miss
/// counters are therefore pure functions of the base and the query
/// stream — identical across thread counts and scheduling.
///
/// Keys are portable across queries, runs and programs: the canonical
/// form contains no program names (all solver constants are decorated
/// and renamed) and no generation numbers, so structurally identical
/// unfolding queries from different programs share entries. The snapshot
/// is persisted next to the oracle snapshot in the analysis DiskCache.
///
//===----------------------------------------------------------------------===//

#ifndef C4_SMT_CONSTRAINTCACHE_H
#define C4_SMT_CONSTRAINTCACHE_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace c4 {

/// A portable set of canonical-query fingerprints proved unsatisfiable.
/// The unit of cross-run persistence (analysis/Pipeline stores one blob
/// per cache directory). Entries are kept sorted, so `serialize()` is
/// deterministic: equal snapshots produce byte-equal blobs.
class ConstraintSnapshot {
public:
  size_t size() const { return Keys.size(); }
  bool empty() const { return Keys.empty(); }
  bool contains(const std::string &Key) const { return Keys.count(Key) != 0; }
  void insert(const std::string &Key) { Keys.insert(Key); }

  /// Union with \p O.
  void merge(const ConstraintSnapshot &O);

  /// Versioned text serialization (one key per line, sorted).
  std::string serialize() const;

  /// Parses a blob produced by serialize(). Returns nullopt on a malformed
  /// or version-mismatched blob — callers treat that as an empty cache.
  static std::optional<ConstraintSnapshot> deserialize(const std::string &Blob);

private:
  std::set<std::string> Keys;
};

/// Slices and canonicalizes one rendered query. \p Assertions holds the
/// SMT-LIB text of each solver assertion (`expr::to_string()`); the
/// result is the stable cache key described in the file comment.
/// \p Context is an opaque tag hashed into the key — the solver uses it
/// to scope proofs to a deterministic budget (an unsat verdict at rlimit
/// R must not answer a query running under a smaller budget that would
/// itself have returned unknown). Exposed separately from the cache so
/// tests can exercise canonicalization round-trips directly.
std::string canonicalQueryKey(const std::vector<std::string> &Assertions,
                              const std::string &Context = std::string());

/// The run-facing cache: an immutable base consulted for lookups plus a
/// run-local overlay of freshly proved keys. Thread-safe.
class ConstraintCache {
public:
  /// \p BaseSnap may be null (empty base: every lookup misses). It must
  /// outlive the cache.
  explicit ConstraintCache(const ConstraintSnapshot *BaseSnap)
      : Base(BaseSnap) {}
  ConstraintCache(const ConstraintCache &) = delete;
  ConstraintCache &operator=(const ConstraintCache &) = delete;

  /// True when \p Key is a known-unsat query in the base. Counts a hit or
  /// a miss.
  bool knownUnsat(const std::string &Key);

  /// Records a freshly proved unsat key into the run-local overlay (never
  /// consulted by knownUnsat — see the determinism contract).
  void recordUnsat(const std::string &Key);

  /// Drains the run-local overlay into \p Out (merging).
  void exportProofs(ConstraintSnapshot &Out) const;

  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }

private:
  const ConstraintSnapshot *Base;
  mutable std::mutex Mu;
  std::set<std::string> Fresh;
  std::atomic<uint64_t> Hits{0}, Misses{0};
};

} // namespace c4

#endif // C4_SMT_CONSTRAINTCACHE_H
