//===- smt/CondSmt.cpp ----------------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "smt/CondSmt.h"

#include <z3++.h>

#include <functional>
#include <map>
#include <string>
#include <vector>

using namespace c4;

bool c4::z3CondSatisfiable(const Cond &C, const EventFacts &Src,
                           const EventFacts &Tgt) {
  z3::context Ctx;
  z3::solver Solver(Ctx);

  // One integer per referenced slot; shared symbol / fresh-identity
  // variables on demand.
  std::vector<z3::expr> SrcVars, TgtVars;
  std::map<unsigned, z3::expr> Symbols;
  std::map<unsigned, z3::expr> Uniques;
  auto SlotVar = [&](bool IsSrc, unsigned I) {
    std::vector<z3::expr> &Vars = IsSrc ? SrcVars : TgtVars;
    while (Vars.size() <= I) {
      std::string Name = (IsSrc ? "s" : "t") + std::to_string(Vars.size());
      Vars.push_back(Ctx.int_const(Name.c_str()));
    }
    return Vars[I];
  };
  auto AddFacts = [&](const EventFacts &F, bool IsSrc) {
    for (unsigned I = 0; I != F.size(); ++I) {
      z3::expr V = SlotVar(IsSrc, I);
      switch (F[I].Kind) {
      case ArgFact::Free:
        break;
      case ArgFact::Constant:
        Solver.add(V == Ctx.int_val(static_cast<int64_t>(F[I].Value)));
        break;
      case ArgFact::Symbolic: {
        auto It = Symbols.find(F[I].Symbol);
        if (It == Symbols.end()) {
          std::string Name = "y" + std::to_string(F[I].Symbol);
          It = Symbols.emplace(F[I].Symbol, Ctx.int_const(Name.c_str()))
                   .first;
        }
        Solver.add(V == It->second);
        break;
      }
      case ArgFact::Unique: {
        auto It = Uniques.find(F[I].Symbol);
        if (It == Uniques.end()) {
          std::string Name = "u" + std::to_string(F[I].Symbol);
          z3::expr U = Ctx.int_const(Name.c_str());
          Solver.add(U >= Ctx.int_val(FreshValueMin));
          for (const auto &[Id, Other] : Uniques)
            Solver.add(U != Other);
          It = Uniques.emplace(F[I].Symbol, U).first;
        }
        Solver.add(V == It->second);
        break;
      }
      }
    }
  };
  AddFacts(Src, /*IsSrc=*/true);
  AddFacts(Tgt, /*IsSrc=*/false);

  std::function<z3::expr(const Cond &)> Enc = [&](const Cond &K) {
    switch (K.kind()) {
    case Cond::NodeKind::True:
      return Ctx.bool_val(true);
    case Cond::NodeKind::False:
      return Ctx.bool_val(false);
    case Cond::NodeKind::Atom: {
      auto TermOf = [&](const Term &T) {
        if (T.Kind == Term::ArgSrc)
          return SlotVar(/*IsSrc=*/true, T.Index);
        if (T.Kind == Term::ArgTgt)
          return SlotVar(/*IsSrc=*/false, T.Index);
        return Ctx.int_val(static_cast<int64_t>(T.Value));
      };
      z3::expr L = TermOf(K.atomLHS()), R = TermOf(K.atomRHS());
      switch (K.atomCmp()) {
      case CmpKind::Eq:
        return L == R;
      case CmpKind::Lt:
        return L < R;
      case CmpKind::Le:
        return L <= R;
      }
      return Ctx.bool_val(false);
    }
    case Cond::NodeKind::Not:
      return !Enc(K.children()[0]);
    case Cond::NodeKind::And: {
      z3::expr E = Ctx.bool_val(true);
      for (const Cond &Child : K.children())
        E = E && Enc(Child);
      return E;
    }
    case Cond::NodeKind::Or: {
      z3::expr E = Ctx.bool_val(false);
      for (const Cond &Child : K.children())
        E = E || Enc(Child);
      return E;
    }
    }
    return Ctx.bool_val(false);
  };
  Solver.add(Enc(C));
  return Solver.check() == z3::sat;
}
