//===- smt/Encoding.cpp ---------------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "smt/Encoding.h"

#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <memory>
#include <optional>

using namespace c4;

namespace {

/// Fresh identities produced by add_row-style creators live above this
/// bound; program literals and interned strings stay below it. Shared with
/// the spec layer's congruence engine, which mirrors these axioms.
constexpr int64_t FreshMin = FreshValueMin;

class UnfoldingEncoder {
public:
  UnfoldingEncoder(const Unfolding &Unf, const SSG &Ssg,
                   const AnalysisFeatures &Feats, Z3Env &Env,
                   CommutativityOracle *CondOracle)
      : U(Unf), A(Unf.H), G(Ssg), F(Feats), Z(Env), Oracle(CondOracle) {}

  void encode(const std::vector<CandidateCycle> &Candidates);
  /// The chunk-independent part of the encoding: variables, orders,
  /// control flow, facts, fresh values, query values. Called once per
  /// solver context; successive candidate chunks are layered on top with
  /// encodeCycles() under push/pop (see LayoutSolver).
  void encodeBase();
  /// Encodes the cycle-selection constraints for one candidate chunk.
  /// Re-entrant across chunks: per-chunk selector state is reset, so the
  /// encoder may be reused after the chunk's scope is popped.
  void encodeCycles(const std::vector<CandidateCycle> &Candidates);
  /// Solves the encoded query. With \p CanonicalWitness the realized
  /// cycle of a sat result is minimized (see minimizeRealizedCycle);
  /// the extra re-checks are charged to \p T as context reuses.
  UnfoldingResult solve(bool CanonicalWitness = false,
                        SolveTelemetry *T = nullptr);

private:
  // --- variable construction -------------------------------------------
  void makeVariables();
  // --- constraint groups ------------------------------------------------
  void encodeOrders();
  void encodeControlFlow();
  void encodeFacts();
  void encodeFreshValues();
  void encodeQueryValues();
  // --- formula helpers --------------------------------------------------
  z3::expr argExpr(unsigned Event, unsigned Slot) const;
  z3::expr condZ3(const Cond &C, unsigned Src, unsigned Tgt) const;
  z3::expr termZ3(const Term &T, unsigned Src, unsigned Tgt) const;
  z3::expr arLess(unsigned EA, unsigned EB) const;
  z3::expr visTo(unsigned EA, unsigned EB) const;
  z3::expr notComZ3(unsigned EA, unsigned EB, CommuteMode Mode) const;
  z3::expr absZ3(unsigned EU, unsigned EV) const;
  z3::expr escape(unsigned EU, unsigned EQ) const;
  z3::expr edgeFormula(unsigned TS, unsigned TT, int Label) const;
  bool soBefore(unsigned TS, unsigned TT) const;

  CounterExample extract(const z3::model &M) const;
  unsigned realizedCycle(const z3::model &M) const;
  z3::model minimizeRealizedCycle(z3::model M,
                                  const z3::expr_vector &Assumptions,
                                  SolveTelemetry *T);

  const Unfolding &U;
  const AbstractHistory &A;
  const SSG &G;
  const AnalysisFeatures &F;
  Z3Env &Z;
  CommutativityOracle *Oracle;

  std::vector<z3::expr> TxnPresent, TxnPos;
  std::vector<std::vector<z3::expr>> TVis; // [s][t], dummy on diagonal
  std::vector<z3::expr> EvPresent, EvPos;
  std::vector<std::vector<z3::expr>> Args; // [event][slot]; empty for markers
  std::vector<z3::expr> GlobalVars;
  std::vector<std::vector<z3::expr>> LocalVars; // [session][var]
  std::vector<z3::expr> CycleSel;
  std::vector<unsigned> UpdateEvents;
  // Per candidate, per step: picked-label booleans aligned with StepLabels.
  std::vector<std::vector<std::vector<z3::expr>>> Picks;
  const std::vector<CandidateCycle> *Cands = nullptr;
};

void UnfoldingEncoder::makeVariables() {
  z3::context &C = Z.ctx();
  for (unsigned T = 0; T != A.numTxns(); ++T) {
    TxnPresent.push_back(Z.boolConst(strf("txn%u.present", T)));
    TxnPos.push_back(Z.intConst(strf("txn%u.pos", T)));
  }
  for (unsigned S = 0; S != A.numTxns(); ++S) {
    TVis.emplace_back();
    for (unsigned T = 0; T != A.numTxns(); ++T)
      TVis[S].push_back(S == T ? Z.boolVal(false)
                               : Z.boolConst(strf("vis.%u.%u", S, T)));
  }
  for (unsigned E = 0; E != A.numEvents(); ++E) {
    EvPresent.push_back(Z.boolConst(strf("ev%u.present", E)));
    EvPos.push_back(Z.intConst(strf("ev%u.pos", E)));
    Args.emplace_back();
    if (!A.event(E).isMarker()) {
      for (unsigned I = 0, N = A.op(E).numVals(); I != N; ++I)
        Args[E].push_back(Z.intConst(strf("ev%u.a%u", E, I)));
      if (A.isUpdate(E))
        UpdateEvents.push_back(E);
    }
  }
  // Note: the unfolding's abstract history shares the original's variable
  // counts (facts reference original variable ids).
  for (unsigned V = 0; V != A.numGlobalVars(); ++V)
    GlobalVars.push_back(Z.intConst(strf("varG%u", V)));
  for (unsigned S = 0; S != U.NumSessions; ++S) {
    LocalVars.emplace_back();
    for (unsigned V = 0; V != A.numLocalVars(); ++V)
      LocalVars[S].push_back(Z.intConst(strf("varL.%u.%u", S, V)));
  }
  (void)C;
}

bool UnfoldingEncoder::soBefore(unsigned TS, unsigned TT) const {
  // Sessions are instantiated in chain order, so within one session the
  // earlier transaction has the smaller id.
  return TS != TT && U.SessionTags[TS] == U.SessionTags[TT] && TS < TT;
}

z3::expr UnfoldingEncoder::argExpr(unsigned Event, unsigned Slot) const {
  assert(Slot < Args[Event].size() && "slot out of range");
  return Args[Event][Slot];
}

z3::expr UnfoldingEncoder::termZ3(const Term &T, unsigned Src,
                                  unsigned Tgt) const {
  switch (T.Kind) {
  case Term::ArgSrc:
    return argExpr(Src, T.Index);
  case Term::ArgTgt:
    return argExpr(Tgt, T.Index);
  case Term::Const:
    break;
  }
  return const_cast<Z3Env &>(Z).intVal(T.Value);
}

z3::expr UnfoldingEncoder::condZ3(const Cond &C, unsigned Src,
                                  unsigned Tgt) const {
  Z3Env &ZM = const_cast<Z3Env &>(Z);
  switch (C.kind()) {
  case Cond::NodeKind::True:
    return ZM.boolVal(true);
  case Cond::NodeKind::False:
    return ZM.boolVal(false);
  case Cond::NodeKind::Atom: {
    z3::expr L = termZ3(C.atomLHS(), Src, Tgt);
    z3::expr R = termZ3(C.atomRHS(), Src, Tgt);
    switch (C.atomCmp()) {
    case CmpKind::Eq:
      return L == R;
    case CmpKind::Lt:
      return L < R;
    case CmpKind::Le:
      return L <= R;
    }
    return ZM.boolVal(false);
  }
  case Cond::NodeKind::Not:
    return !condZ3(C.children()[0], Src, Tgt);
  case Cond::NodeKind::And: {
    z3::expr R = ZM.boolVal(true);
    for (const Cond &Child : C.children())
      R = R && condZ3(Child, Src, Tgt);
    return R;
  }
  case Cond::NodeKind::Or: {
    z3::expr R = ZM.boolVal(false);
    for (const Cond &Child : C.children())
      R = R || condZ3(Child, Src, Tgt);
    return R;
  }
  }
  return ZM.boolVal(false);
}

z3::expr UnfoldingEncoder::arLess(unsigned EA, unsigned EB) const {
  unsigned TA = A.event(EA).Txn, TB = A.event(EB).Txn;
  if (TA == TB)
    return EvPos[EA] < EvPos[EB];
  return TxnPos[TA] < TxnPos[TB];
}

z3::expr UnfoldingEncoder::visTo(unsigned EA, unsigned EB) const {
  unsigned TA = A.event(EA).Txn, TB = A.event(EB).Txn;
  if (TA == TB)
    return EvPos[EA] < EvPos[EB]; // session order within the transaction
  return TVis[TA][TB];
}

z3::expr UnfoldingEncoder::notComZ3(unsigned EA, unsigned EB,
                                    CommuteMode Mode) const {
  Z3Env &ZM = const_cast<Z3Env &>(Z);
  const AbstractEvent &AE = A.event(EA);
  const AbstractEvent &BE = A.event(EB);
  if (AE.Container != BE.Container)
    return ZM.boolVal(false);
  if (!F.Commutativity)
    // Ablation: ¬com becomes a boolean — true iff satisfiable.
    return ZM.boolVal(G.mayInterfere(EA, EB, Mode));
  const DataTypeSpec &Type = *A.schema().container(AE.Container).Type;
  if (Oracle)
    return condZ3(Oracle->notCommutes(Type, AE.Op, BE.Op, Mode), EA, EB);
  Cond NotCom = !commutesCond(Type, AE.Op, BE.Op, Mode);
  return condZ3(NotCom, EA, EB);
}

z3::expr UnfoldingEncoder::absZ3(unsigned EU, unsigned EV) const {
  Z3Env &ZM = const_cast<Z3Env &>(Z);
  if (!F.Absorption)
    return ZM.boolVal(false);
  const AbstractEvent &UE = A.event(EU);
  const AbstractEvent &VE = A.event(EV);
  if (UE.Container != VE.Container)
    return ZM.boolVal(false);
  const DataTypeSpec &Type = *A.schema().container(UE.Container).Type;
  if (Oracle)
    return condZ3(Oracle->absorbs(Type, UE.Op, VE.Op, /*Far=*/true), EU, EV);
  Cond Abs = absorbsCond(Type, UE.Op, VE.Op, /*Far=*/true);
  return condZ3(Abs, EU, EV);
}

z3::expr UnfoldingEncoder::escape(unsigned EU, unsigned EQ) const {
  // (D1)/(D2) escape: some visible update v with u ▷ v and u ar→ v vı→ q.
  Z3Env &ZM = const_cast<Z3Env &>(Z);
  z3::expr R = ZM.boolVal(false);
  for (unsigned EV : UpdateEvents) {
    if (EV == EU || EV == EQ)
      continue;
    z3::expr Abs = absZ3(EU, EV);
    if (Abs.is_false())
      continue;
    R = R || (EvPresent[EV] && Abs && arLess(EU, EV) && visTo(EV, EQ));
  }
  return R;
}

z3::expr UnfoldingEncoder::edgeFormula(unsigned TS, unsigned TT,
                                       int Label) const {
  Z3Env &ZM = const_cast<Z3Env &>(Z);
  z3::expr R = ZM.boolVal(false);
  if (Label == DepSO) {
    if (soBefore(TS, TT))
      R = TxnPresent[TS] && TxnPresent[TT];
    return R;
  }
  // The event pairs that can realize the edge come from the shared
  // enumeration the domain prefilter also uses (ssg/SSG.h), so the two
  // stages agree on the disjuncts by construction.
  for (const DepPairAlt &P : depPairAlternatives(A, TS, TT, Label, F)) {
    z3::expr NotCom = notComZ3(P.EU, P.EQ, P.Mode);
    if (NotCom.is_false())
      continue;
    switch (Label) {
    case DepDependency:
      R = R || (EvPresent[P.EU] && EvPresent[P.EQ] && visTo(P.EU, P.EQ) &&
                NotCom && !escape(P.EU, P.EQ));
      break;
    case DepAntiDep:
      R = R || (EvPresent[P.EU] && EvPresent[P.EQ] && !visTo(P.EU, P.EQ) &&
                NotCom && !escape(P.EU, P.EQ));
      break;
    case DepConflict:
      R = R || (EvPresent[P.EU] && EvPresent[P.EQ] && arLess(P.EU, P.EQ) &&
                NotCom);
      break;
    }
  }
  return R;
}

void UnfoldingEncoder::encodeOrders() {
  z3::solver &S = Z.solver();
  unsigned N = A.numTxns();
  // Distinct transaction positions.
  if (N > 1) {
    z3::expr_vector Positions(Z.ctx());
    for (unsigned T = 0; T != N; ++T)
      Positions.push_back(TxnPos[T]);
    S.add(z3::distinct(Positions));
  }
  for (unsigned TS = 0; TS != N; ++TS)
    for (unsigned TT = 0; TT != N; ++TT) {
      if (TS == TT)
        continue;
      // vı ⊆ ar.
      S.add(z3::implies(TVis[TS][TT], TxnPos[TS] < TxnPos[TT]));
      // so ⊆ vı when both transactions occur.
      if (soBefore(TS, TT))
        S.add(z3::implies(TxnPresent[TS] && TxnPresent[TT], TVis[TS][TT]));
      // Transitivity of vı.
      for (unsigned TU = 0; TU != N; ++TU) {
        if (TU == TS || TU == TT)
          continue;
        S.add(z3::implies(TVis[TS][TT] && TVis[TT][TU], TVis[TS][TU]));
      }
    }
}

void UnfoldingEncoder::encodeControlFlow() {
  z3::solver &S = Z.solver();
  for (unsigned T = 0; T != A.numTxns(); ++T) {
    const AbstractTxn &Txn = A.txn(T);
    if (!F.ControlFlow) {
      // Ablation: every event of a present transaction occurs, in
      // declaration order.
      for (unsigned I = 0; I != Txn.Events.size(); ++I) {
        unsigned E = Txn.Events[I];
        S.add(EvPresent[E] == TxnPresent[T]);
        S.add(EvPos[E] == Z.intVal(static_cast<int64_t>(I)));
      }
      continue;
    }
    S.add(EvPresent[A.entry(T)] == TxnPresent[T]);
    // Taken booleans per eo edge.
    std::vector<z3::expr> Taken;
    for (unsigned EI = 0; EI != Txn.Eo.size(); ++EI)
      Taken.push_back(
          Z.boolConst(strf("t%u.eo%u.taken", T, EI)));
    for (unsigned EI = 0; EI != Txn.Eo.size(); ++EI) {
      const AbstractConstraint &E = Txn.Eo[EI];
      z3::expr Guard = condZ3(E.C, E.Src, E.Tgt);
      S.add(z3::implies(Taken[EI],
                        EvPresent[E.Src] && Guard &&
                            EvPos[E.Src] < EvPos[E.Tgt]));
      // At most one outgoing / incoming taken edge per event: the present
      // events of a transaction form a path through eo.
      for (unsigned EJ = EI + 1; EJ != Txn.Eo.size(); ++EJ) {
        if (Txn.Eo[EJ].Src == E.Src)
          S.add(!(Taken[EI] && Taken[EJ]));
        if (Txn.Eo[EJ].Tgt == E.Tgt)
          S.add(!(Taken[EI] && Taken[EJ]));
      }
    }
    // Presence of non-entry events: exactly via an incoming taken edge.
    for (unsigned E : Txn.Events) {
      if (E == A.entry(T))
        continue;
      z3::expr In = Z.boolVal(false);
      for (unsigned EI = 0; EI != Txn.Eo.size(); ++EI)
        if (Txn.Eo[EI].Tgt == E)
          In = In || Taken[EI];
      S.add(EvPresent[E] == In);
    }
    // Transactions run to completion: a present event with eo successors
    // takes one of them (paths end only at eo leaves such as the exit
    // marker). Without this, partial transactions would manufacture
    // spurious anti-dependencies.
    for (unsigned E : Txn.Events) {
      z3::expr Out = Z.boolVal(false);
      bool HasSucc = false;
      for (unsigned EI = 0; EI != Txn.Eo.size(); ++EI)
        if (Txn.Eo[EI].Src == E) {
          HasSucc = true;
          Out = Out || Taken[EI];
        }
      if (HasSucc)
        S.add(z3::implies(EvPresent[E], Out));
    }
  }
}

void UnfoldingEncoder::encodeFacts() {
  if (!F.Constraints)
    return;
  z3::solver &S = Z.solver();
  for (unsigned E = 0; E != A.numEvents(); ++E) {
    const AbstractEvent &AE = A.event(E);
    if (AE.isMarker())
      continue;
    unsigned Tag = U.SessionTags[AE.Txn];
    for (unsigned I = 0; I != AE.Facts.size(); ++I) {
      const AbsFact &Fact = AE.Facts[I];
      switch (Fact.Kind) {
      case AbsFact::Free:
        break;
      case AbsFact::Const:
        S.add(argExpr(E, I) == Z.intVal(Fact.Value));
        break;
      case AbsFact::GlobalVar:
        S.add(argExpr(E, I) == GlobalVars[Fact.Var]);
        break;
      case AbsFact::LocalVar:
        S.add(argExpr(E, I) == LocalVars[Tag][Fact.Var]);
        break;
      case AbsFact::FreshVar:
        // Derived fact: the equality to the creator's return slot is
        // already entailed by the front end's pair-invariant chains plus
        // control flow, and the fresh-value axioms below cover uniqueness.
        // Asserting nothing keeps the formula identical to the unreduced
        // history's (the differential guardrail).
        break;
      }
    }
  }
  // Pair invariants hold whenever both endpoints occur.
  for (unsigned T = 0; T != A.numTxns(); ++T)
    for (const AbstractConstraint &Inv : A.txn(T).Invs)
      S.add(z3::implies(EvPresent[Inv.Src] && EvPresent[Inv.Tgt],
                        condZ3(Inv.C, Inv.Src, Inv.Tgt)));
}

void UnfoldingEncoder::encodeFreshValues() {
  if (!F.UniqueValues)
    return;
  z3::solver &S = Z.solver();
  std::vector<unsigned> FreshEvents;
  for (unsigned E = 0; E != A.numEvents(); ++E) {
    if (A.event(E).isMarker())
      continue;
    if (A.op(E).Fresh)
      FreshEvents.push_back(E);
  }
  for (unsigned C : FreshEvents) {
    z3::expr FV = argExpr(C, A.op(C).NumArgs); // the return slot
    // Fresh identities live above every program literal.
    S.add(FV >= Z.intVal(FreshMin));
    // Distinct from other fresh identities.
    for (unsigned C2 : FreshEvents)
      if (C2 > C)
        S.add(z3::implies(EvPresent[C] && EvPresent[C2],
                          FV != argExpr(C2, A.op(C2).NumArgs)));
    // No side channels: any event holding the identity observed the
    // creation (paper §8, fresh unique values).
    for (unsigned E = 0; E != A.numEvents(); ++E) {
      if (E == C || A.event(E).isMarker())
        continue;
      for (unsigned I = 0, N = A.op(E).numVals(); I != N; ++I) {
        if (A.op(E).Fresh && I == A.op(E).NumArgs)
          continue; // its own fresh identity
        S.add(z3::implies(EvPresent[C] && EvPresent[E] &&
                              argExpr(E, I) == FV,
                          visTo(C, E)));
      }
    }
  }
}

void UnfoldingEncoder::encodeQueryValues() {
  // Sequential semantics (S1) inside the small model: a query with no
  // visible interfering update returns the initial value 0; when the
  // arbitration-last visible interfering update has a simple determination
  // rule (ValueDet), the return value is fixed by it. Interference is
  // non-plain-commutativity, encoded symbolically.
  z3::solver &S = Z.solver();
  for (unsigned Q = 0; Q != A.numEvents(); ++Q) {
    if (A.event(Q).isMarker() || !A.isQuery(Q))
      continue;
    const OpSig &QOp = A.op(Q);
    z3::expr Ret = argExpr(Q, QOp.NumArgs);
    // interf(u) = present(u) ∧ vis(u,q) ∧ ¬plaincom(u,q).
    std::vector<unsigned> Us;
    std::vector<z3::expr> Interf;
    for (unsigned U2 : UpdateEvents) {
      if (U2 == Q)
        continue;
      z3::expr NotCom = notComZ3(U2, Q, CommuteMode::Plain);
      if (NotCom.is_false())
        continue;
      Us.push_back(U2);
      Interf.push_back(EvPresent[U2] && visTo(U2, Q) && NotCom);
    }
    z3::expr None = Z.boolVal(true);
    for (const z3::expr &I : Interf)
      None = None && !I;
    S.add(z3::implies(EvPresent[Q] && None, Ret == Z.intVal(0)));
    for (unsigned I = 0; I != Us.size(); ++I) {
      unsigned U2 = Us[I];
      const AbstractEvent &UE = A.event(U2);
      const DataTypeSpec &Type =
          *A.schema().container(UE.Container).Type;
      ValueDet Det = Type.valueDetermination(UE.Op, A.event(Q).Op);
      if (Det.Kind == ValueDet::Indeterminate)
        continue;
      if (Det.Kind == ValueDet::SlotLowerBound) {
        // Monotone determination: every visible interfering update is a
        // lower bound, regardless of arbitration position.
        S.add(z3::implies(EvPresent[Q] && Interf[I],
                          Ret >= argExpr(U2, Det.SlotIdx)));
        continue;
      }
      z3::expr IsLast = Interf[I];
      for (unsigned J = 0; J != Us.size(); ++J)
        if (J != I)
          IsLast = IsLast && !(Interf[J] && arLess(U2, Us[J]));
      z3::expr Val = Det.Kind == ValueDet::Slot
                         ? argExpr(U2, Det.SlotIdx)
                         : Z.intVal(Det.Value);
      S.add(z3::implies(EvPresent[Q] && IsLast, Ret == Val));
    }
  }
}

void UnfoldingEncoder::encodeCycles(
    const std::vector<CandidateCycle> &Candidates) {
  Cands = &Candidates;
  CycleSel.clear();
  Picks.clear();
  z3::solver &S = Z.solver();
  z3::expr Any = Z.boolVal(false);
  for (unsigned CI = 0; CI != Candidates.size(); ++CI) {
    const CandidateCycle &C = Candidates[CI];
    z3::expr Sel = Z.boolConst(strf("cycle%u", CI));
    CycleSel.push_back(Sel);
    Any = Any || Sel;
    Picks.emplace_back();
    z3::expr_vector AntiPicks(Z.ctx());
    z3::expr_vector ConfPicks(Z.ctx());
    unsigned NumSteps = C.Closed ? static_cast<unsigned>(C.Txns.size())
                                 : static_cast<unsigned>(C.Txns.size()) - 1;
    for (unsigned Step = 0; Step != NumSteps; ++Step) {
      unsigned From = C.Txns[Step];
      unsigned To = C.Txns[(Step + 1) % C.Txns.size()];
      Picks.back().emplace_back();
      z3::expr AnyLabel = Z.boolVal(false);
      for (unsigned LI = 0; LI != C.StepLabels[Step].size(); ++LI) {
        int Label = C.StepLabels[Step][LI];
        z3::expr P = Z.boolConst(strf("cycle%u.s%u.l%d", CI, Step, Label));
        Picks.back().back().push_back(P);
        S.add(z3::implies(P, edgeFormula(From, To, Label)));
        AnyLabel = AnyLabel || P;
        if (Label == DepAntiDep)
          AntiPicks.push_back(P);
        if (Label == DepConflict)
          ConfPicks.push_back(P);
      }
      S.add(z3::implies(Sel, AnyLabel));
    }
    if (C.Closed) {
      // (SC1): two anti-dependency steps, or one anti and one conflict.
      z3::expr SC1 = Z.boolVal(false);
      if (AntiPicks.size() >= 2)
        SC1 = SC1 || z3::atleast(AntiPicks, 2);
      if (AntiPicks.size() >= 1 && ConfPicks.size() >= 1)
        SC1 =
            SC1 || (z3::atleast(AntiPicks, 1) && z3::atleast(ConfPicks, 1));
      S.add(z3::implies(Sel, SC1));
    } else {
      // Open segment (§7.2): it must carry an anti-dependency.
      z3::expr HasAnti = AntiPicks.empty() ? Z.boolVal(false)
                                           : z3::atleast(AntiPicks, 1);
      S.add(z3::implies(Sel, HasAnti));
    }
  }
  S.add(Any);
}

void UnfoldingEncoder::encodeBase() {
  makeVariables();
  encodeOrders();
  encodeControlFlow();
  encodeFacts();
  encodeFreshValues();
  encodeQueryValues();
}

void UnfoldingEncoder::encode(
    const std::vector<CandidateCycle> &Candidates) {
  encodeBase();
  encodeCycles(Candidates);
}

CounterExample UnfoldingEncoder::extract(const z3::model &M) const {
  CounterExample CE{History(A.schema()), Schedule(0), {}, {}, {}};
  // Collect present transactions and their positions.
  struct TxnInst {
    unsigned UTxn;
    int64_t Pos;
  };
  std::vector<TxnInst> Present;
  for (unsigned T = 0; T != A.numTxns(); ++T)
    if (Z3Env::evalBool(M, TxnPresent[T]))
      Present.push_back({T, Z3Env::evalInt(M, TxnPos[T])});

  // Concrete sessions per abstract session tag, transactions in chain
  // order (ids grow along the chain).
  History &H = CE.H;
  std::map<unsigned, unsigned> SessionOf; // tag -> concrete session
  std::vector<int> ConcreteTxn(A.numTxns(), -1);
  std::vector<TxnInst> BySession = Present;
  std::sort(BySession.begin(), BySession.end(),
            [](const TxnInst &X, const TxnInst &Y) {
              return X.UTxn < Y.UTxn;
            });
  for (const TxnInst &TI : BySession) {
    unsigned Tag = U.SessionTags[TI.UTxn];
    auto It = SessionOf.find(Tag);
    if (It == SessionOf.end())
      It = SessionOf.emplace(Tag, H.addSession()).first;
    unsigned CT = H.beginTransaction(It->second);
    ConcreteTxn[TI.UTxn] = static_cast<int>(CT);
    // Events in intra-transaction position order.
    struct EvInst {
      unsigned Ev;
      int64_t Pos;
    };
    std::vector<EvInst> Evs;
    for (unsigned E : A.txn(TI.UTxn).Events) {
      if (A.event(E).isMarker())
        continue;
      if (!Z3Env::evalBool(M, EvPresent[E]))
        continue;
      Evs.push_back({E, Z3Env::evalInt(M, EvPos[E])});
    }
    std::sort(Evs.begin(), Evs.end(), [](const EvInst &X, const EvInst &Y) {
      return X.Pos < Y.Pos;
    });
    for (const EvInst &EI : Evs) {
      const AbstractEvent &AE = A.event(EI.Ev);
      const OpSig &Op = A.op(EI.Ev);
      std::vector<int64_t> ArgVals;
      for (unsigned I = 0; I != Op.NumArgs; ++I)
        ArgVals.push_back(Z3Env::evalInt(M, Args[EI.Ev][I]));
      std::optional<int64_t> Ret;
      if (Op.HasRet)
        Ret = Z3Env::evalInt(M, Args[EI.Ev][Op.NumArgs]);
      H.append(CT, AE.Container, AE.Op, std::move(ArgVals), Ret);
    }
  }

  // Pre-schedule: arbitration by (txn position, event position); the
  // events were appended per transaction in position order, so a stable
  // sort of transactions by position gives the event order.
  std::sort(Present.begin(), Present.end(),
            [](const TxnInst &X, const TxnInst &Y) { return X.Pos < Y.Pos; });
  Schedule S(H.numEvents());
  std::vector<unsigned> Order;
  for (const TxnInst &TI : Present)
    for (unsigned E : H.txn(static_cast<unsigned>(ConcreteTxn[TI.UTxn]))
                          .Events)
      Order.push_back(E);
  S.setArbitration(Order);
  // Visibility from the transaction-level booleans plus intra-transaction
  // session order.
  for (const TxnInst &TA : Present)
    for (const TxnInst &TB : Present) {
      if (TA.UTxn == TB.UTxn)
        continue;
      if (!Z3Env::evalBool(M, TVis[TA.UTxn][TB.UTxn]))
        continue;
      for (unsigned EA :
           H.txn(static_cast<unsigned>(ConcreteTxn[TA.UTxn])).Events)
        for (unsigned EB :
             H.txn(static_cast<unsigned>(ConcreteTxn[TB.UTxn])).Events)
          S.setVisible(EA, EB);
    }
  for (const TxnInst &TI : Present) {
    const std::vector<unsigned> &Evs =
        H.txn(static_cast<unsigned>(ConcreteTxn[TI.UTxn])).Events;
    for (unsigned I = 0; I != Evs.size(); ++I)
      for (unsigned J = I + 1; J != Evs.size(); ++J)
        S.setVisible(Evs[I], Evs[J]);
  }
  CE.S = std::move(S);

  // Re-derive query return values by replay (S1): the model is only a
  // pre-schedule, but with returns fixed up the witness becomes a genuine
  // causally-consistent execution whenever control flow permits.
  for (unsigned E = 0; E != H.numEvents(); ++E)
    if (H.isQuery(E))
      H.setReturn(E, evalQueryUnder(H, CE.S, E));

  // The selected cycle.
  for (unsigned CI = 0; CI != CycleSel.size(); ++CI) {
    if (!Z3Env::evalBool(M, CycleSel[CI]))
      continue;
    for (unsigned T : (*Cands)[CI].Txns) {
      CE.CycleTxns.push_back(static_cast<unsigned>(ConcreteTxn[T]));
      CE.OrigTxns.push_back(U.OrigTxn[T]);
    }
    break;
  }

  // Render.
  std::string Text;
  for (const auto &[Tag, Session] : SessionOf) {
    Text += strf("session %u:\n", Session);
    for (unsigned T : H.sessionTxns(Session)) {
      std::vector<std::string> Parts;
      for (unsigned E : H.txn(T).Events)
        Parts.push_back(H.eventStr(E));
      // Find the original name via the unfolded transaction.
      std::string Name;
      for (unsigned UT = 0; UT != A.numTxns(); ++UT)
        if (ConcreteTxn[UT] == static_cast<int>(T))
          Name = A.txn(UT).Name;
      Text += strf("  txn %s [%s]\n", Name.c_str(),
                   join(Parts, "; ").c_str());
    }
  }
  CE.Text = std::move(Text);
  return CE;
}

/// The lowest-index candidate selector the model sets — the cycle
/// extract() reports as the violation.
unsigned UnfoldingEncoder::realizedCycle(const z3::model &M) const {
  for (unsigned CI = 0; CI != CycleSel.size(); ++CI)
    if (Z3Env::evalBool(M, CycleSel[CI]))
      return CI;
  return 0; // unreachable: encodeCycles asserts at least one selector
}

/// Deterministic violation representative. Z3's model choice over the
/// candidate-cycle disjunction legally depends on the context's history
/// (AST numbering from earlier queries in a reused context steers
/// heuristic tie-breaks), so two runs that built different prior queries
/// can realize different cycles for the identical formula — and the
/// committed violation's transaction set drives subsumption, so every
/// downstream counter shifts with it. Re-checking restricted to strictly
/// earlier candidates until no earlier one is satisfiable pins the
/// reported cycle to the minimal satisfiable index: a pure function of
/// the query, stable across context histories (in particular across an
/// incremental warm run, which replays most queries and re-solves only
/// these). An unknown during minimization keeps the model already in
/// hand — the witness is still genuine, only canonicality degrades.
z3::model UnfoldingEncoder::minimizeRealizedCycle(
    z3::model M, const z3::expr_vector &Assumptions, SolveTelemetry *T) {
  unsigned CI = realizedCycle(M);
  z3::solver &S = Z.solver();
  while (CI != 0) {
    S.push();
    for (unsigned J = CI; J != CycleSel.size(); ++J)
      S.add(!CycleSel[J]);
    z3::check_result CR =
        Assumptions.empty() ? S.check() : S.check(Assumptions);
    if (T)
      ++T->CtxReuses; // the re-check rode the existing encoding
    if (CR != z3::sat) {
      S.pop();
      break; // no earlier candidate admits a cycle: CI is minimal
    }
    M = S.get_model();
    S.pop();
    CI = realizedCycle(M); // selectors >= old CI were forced off
  }
  return M;
}

UnfoldingResult UnfoldingEncoder::solve(bool CanonicalWitness,
                                        SolveTelemetry *T) {
  UnfoldingResult R;
  // First try under the assumption that updates write non-initial values:
  // counter-examples then exhibit genuinely observable anomalies instead of
  // coincidental writes of the initial value 0. Fall back to an
  // unconstrained check when the assumptions conflict with the program.
  z3::expr_vector Assumptions(Z.ctx());
  for (unsigned E : UpdateEvents) {
    const AbstractEvent &AE = A.event(E);
    for (unsigned I = 0, N = A.op(E).numVals(); I != N; ++I) {
      if (I < AE.Facts.size() && AE.Facts[I].Kind == AbsFact::Const)
        continue;
      Assumptions.push_back(argExpr(E, I) != Z.intVal(0));
    }
  }
  if (Z.solver().check(Assumptions) == z3::sat) {
    R.Status = UnfoldingResult::CycleFound;
    z3::model M = Z.solver().get_model();
    if (CanonicalWitness)
      M = minimizeRealizedCycle(std::move(M), Assumptions, T);
    R.CE = extract(M);
    return R;
  }
  switch (Z.solver().check()) {
  case z3::unsat:
    R.Status = UnfoldingResult::NoCycle;
    return R;
  case z3::unknown:
    R.Status = UnfoldingResult::Unknown;
    return R;
  case z3::sat:
    break;
  }
  R.Status = UnfoldingResult::CycleFound;
  z3::model M = Z.solver().get_model();
  if (CanonicalWitness) {
    z3::expr_vector None(Z.ctx());
    M = minimizeRealizedCycle(std::move(M), None, T);
  }
  R.CE = extract(M);
  return R;
}

} // namespace


namespace {

/// The constraint-cache context tag: green unsat proofs are only valid
/// for runs whose deterministic solver budget would reprove them, so the
/// budget (minus the wall backstop, which by design never decides first)
/// is part of every key.
std::string budgetTag(const SolverBudget &B) {
  return "rl" + std::to_string(B.Rlimit) + ".e" +
         std::to_string(B.Escalation) + ".r" + std::to_string(B.MaxRetries) +
         ".c" + std::to_string(B.RlimitCap);
}

/// Renders every assertion of the current solver as SMT-LIB text, the
/// input to canonicalQueryKey().
std::vector<std::string> assertionTexts(Z3Env &Env) {
  std::vector<std::string> Out;
  z3::expr_vector As = Env.solver().assertions();
  Out.reserve(As.size());
  for (unsigned I = 0; I != As.size(); ++I)
    Out.push_back(As[static_cast<int>(I)].to_string());
  return Out;
}

/// The escalating-rlimit retry loop against an *already encoded* solver:
/// an unknown re-arms the same solver with a geometrically larger rlimit
/// and re-checks (no re-encode). Each attempt runs under min(per-check
/// wall ceiling, remaining deadline) so a governed run cannot overshoot
/// its deadline by more than one check; the final unknown is the caller's
/// Violation::Inconclusive.
UnfoldingResult runAttempts(UnfoldingEncoder &Enc, Z3Env &Env,
                            const SolverPolicy &P, SolveTelemetry &T,
                            bool CanonicalWitness) {
  UnfoldingResult R;
  R.Status = UnfoldingResult::Unknown;
  for (unsigned Attempt = 0; Attempt <= P.Budget.MaxRetries; ++Attempt) {
    if (Attempt && P.DL && P.DL->expired())
      break; // deadline: report the unknown we already have
    uint64_t Rlimit = P.Budget.rlimitForAttempt(Attempt);
    unsigned WallMs = P.DL && P.DL->active()
                          ? P.DL->remainingMs(P.Budget.WallMs)
                          : P.Budget.WallMs;
    if (P.DL && P.DL->active() && WallMs == 0)
      break;
    ++T.Attempts;
    T.RlimitBudget = Rlimit;
    Env.rearm(Rlimit, WallMs);
    if (Attempt)
      ++T.CtxReuses; // retry re-check on the shared encoding
    uint64_t Before = Env.rlimitCount();
    R = Enc.solve(CanonicalWitness, &T);
    uint64_t After = Env.rlimitCount();
    if (After > Before)
      T.RlimitSpent += After - Before;
    if (R.Status != UnfoldingResult::Unknown)
      return R;
    if (!Rlimit || Rlimit >= P.Budget.RlimitCap)
      break; // nothing left to escalate (wall-only or already at the cap)
  }
  R = UnfoldingResult();
  R.Status = UnfoldingResult::Unknown;
  return R;
}

} // namespace

UnfoldingResult c4::solveUnfolding(const Unfolding &U, const SSG &G,
                                   const std::vector<CandidateCycle> &Cands,
                                   const AnalysisFeatures &F,
                                   const SolverPolicy &P,
                                   CommutativityOracle *Oracle, Z3Env *Reuse,
                                   SolveTelemetry *Telemetry,
                                   ConstraintCache *Green) {
  SolveTelemetry Local;
  SolveTelemetry &T = Telemetry ? *Telemetry : Local;
  T = SolveTelemetry();
  if (Cands.empty())
    return {};

  try {
    std::optional<Z3Env> Own;
    Z3Env *Env;
    if (Reuse) {
      Reuse->reset(P.Budget.rlimitForAttempt(0), P.Budget.WallMs);
      Env = Reuse;
    } else {
      Own.emplace(P.Budget);
      Env = &*Own;
    }
    UnfoldingEncoder Enc(U, G, F, *Env, Oracle);
    Enc.encode(Cands);
    std::string Key;
    if (Green) {
      Key = canonicalQueryKey(assertionTexts(*Env), budgetTag(P.Budget));
      if (Green->knownUnsat(Key)) {
        T.GreenHit = true;
        UnfoldingResult R;
        R.Status = UnfoldingResult::NoCycle;
        return R;
      }
    }
    // Canonicalize the witness: the bounded stage commits the realized
    // cycle as a violation, so it must not depend on the reused
    // context's query history (see minimizeRealizedCycle).
    UnfoldingResult R = runAttempts(Enc, *Env, P, T, /*CanonicalWitness=*/true);
    if (Green && R.Status == UnfoldingResult::NoCycle)
      Green->recordUnsat(Key);
    return R;
  } catch (const z3::exception &) {
    // Confine Z3 exceptions: treat failures as inconclusive.
    T.Error = true;
    UnfoldingResult R;
    R.Status = UnfoldingResult::Unknown;
    return R;
  }
}

struct LayoutSolver::Impl {
  SolverPolicy P;
  ConstraintCache *Green = nullptr;
  std::optional<Z3Env> Own;
  Z3Env *Env = nullptr;
  std::optional<UnfoldingEncoder> Enc;
  bool BaseEncoded = false;
  bool Dead = false; ///< a z3::exception poisoned the context
  unsigned Chunks = 0;
};

LayoutSolver::LayoutSolver(const Unfolding &U, const SSG &G,
                           const AnalysisFeatures &F, const SolverPolicy &P,
                           CommutativityOracle *Oracle, Z3Env *Reuse,
                           ConstraintCache *Green)
    : I(std::make_unique<Impl>()) {
  I->P = P;
  I->Green = Green;
  try {
    if (Reuse) {
      Reuse->reset(P.Budget.rlimitForAttempt(0), P.Budget.WallMs);
      I->Env = Reuse;
    } else {
      I->Own.emplace(P.Budget);
      I->Env = &*I->Own;
    }
    I->Enc.emplace(U, G, F, *I->Env, Oracle);
  } catch (const z3::exception &) {
    I->Dead = true;
  }
}

LayoutSolver::~LayoutSolver() = default;

UnfoldingResult LayoutSolver::solve(const std::vector<CandidateCycle> &Cands,
                                    SolveTelemetry *Telemetry) {
  SolveTelemetry Local;
  SolveTelemetry &T = Telemetry ? *Telemetry : Local;
  T = SolveTelemetry();
  if (Cands.empty())
    return {};
  UnfoldingResult Unk;
  Unk.Status = UnfoldingResult::Unknown;
  if (I->Dead) {
    T.Error = true;
    return Unk;
  }
  try {
    if (!I->BaseEncoded) {
      I->Enc->encodeBase();
      I->BaseEncoded = true;
    }
    z3::solver &S = I->Env->solver();
    S.push();
    I->Enc->encodeCycles(Cands);
    if (++I->Chunks > 1)
      ++T.CtxReuses; // the chunk rode an existing base encoding
    std::string Key;
    if (I->Green) {
      Key = canonicalQueryKey(assertionTexts(*I->Env), budgetTag(I->P.Budget));
      if (I->Green->knownUnsat(Key)) {
        T.GreenHit = true;
        S.pop();
        UnfoldingResult R;
        R.Status = UnfoldingResult::NoCycle;
        return R;
      }
    }
    // No witness canonicalization here: a generalize-stage cycle only
    // blocks the generalization (sat/unsat is already deterministic);
    // its realized cycle is never committed as a violation.
    UnfoldingResult R = runAttempts(*I->Enc, *I->Env, I->P, T,
                                    /*CanonicalWitness=*/false);
    if (I->Green && R.Status == UnfoldingResult::NoCycle)
      I->Green->recordUnsat(Key);
    S.pop();
    return R;
  } catch (const z3::exception &) {
    // The scope stack is in an unknown state; retire the context.
    I->Dead = true;
    T.Error = true;
    return Unk;
  }
}
