//===- smt/QueryTrace.cpp -------------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "smt/QueryTrace.h"

#include "support/Format.h"

#include <cstdio>

using namespace c4;

std::string QueryTrace::toJsonl() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::string Out;
  for (size_t I = 0; I != Records.size(); ++I) {
    const QueryRecord &R = Records[I];
    Out += strf("{\"seq\":%zu,\"stage\":\"%s\",\"k\":%u,\"unfolding\":%ld,"
                "\"attempts\":%u,\"retries\":%u,\"rlimit_budget\":%llu,"
                "\"rlimit_spent\":%llu,\"outcome\":\"%s\","
                "\"prefiltered\":%s,\"reused\":%s,\"wall_ms\":%.3f}\n",
                I, R.Stage, R.K, R.Unfolding, R.Attempts,
                R.Attempts ? R.Attempts - 1 : 0,
                static_cast<unsigned long long>(R.RlimitBudget),
                static_cast<unsigned long long>(R.RlimitSpent), R.Outcome,
                R.Prefiltered ? "true" : "false", R.Reused ? "true" : "false",
                R.WallMs);
  }
  return Out;
}

bool QueryTrace::writeFile(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string Body = toJsonl();
  size_t Written = std::fwrite(Body.data(), 1, Body.size(), F);
  bool Ok = Written == Body.size();
  Ok = std::fclose(F) == 0 && Ok;
  return Ok;
}
