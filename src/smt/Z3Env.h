//===- smt/Z3Env.h - Z3 solver environment ----------------------*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thin boundary around the Z3 C++ API. All Z3 usage in the analyzer goes
/// through this header; z3::exception is confined to the smt library (the
/// rest of the code base is exception-free, LLVM style).
///
//===----------------------------------------------------------------------===//

#ifndef C4_SMT_Z3ENV_H
#define C4_SMT_Z3ENV_H

#include <z3++.h>

#include <cstdint>
#include <string>

namespace c4 {

/// Owns a Z3 context and solver with a configured timeout.
class Z3Env {
public:
  explicit Z3Env(unsigned TimeoutMs = 10000) : Solver(Ctx) {
    z3::params P(Ctx);
    P.set("timeout", TimeoutMs);
    Solver.set(P);
  }

  z3::context &ctx() { return Ctx; }
  z3::solver &solver() { return Solver; }

  /// Discards all assertions by installing a fresh solver, keeping the
  /// context alive. Context construction and destruction dominate the cost
  /// of small queries, so callers issuing many queries reuse one env and
  /// reset between them. Each reset starts a new query generation: constant
  /// names are decorated with the generation number so a reused context
  /// never re-interns a name from an earlier query. Reusing an interned
  /// symbol would hand the new query an AST with a stale (low) id, and Z3's
  /// term orderings are id-sensitive — models (though not sat/unsat
  /// verdicts) could then depend on which queries the env solved earlier.
  /// With fresh names every query builds its ASTs in its own creation
  /// order, exactly as on a brand-new context, keeping results independent
  /// of env history.
  void reset(unsigned TimeoutMs) {
    ++Generation;
    Solver = z3::solver(Ctx);
    z3::params P(Ctx);
    P.set("timeout", TimeoutMs);
    Solver.set(P);
  }

  z3::expr intConst(const std::string &Name) {
    return Ctx.int_const(decorate(Name).c_str());
  }
  z3::expr boolConst(const std::string &Name) {
    return Ctx.bool_const(decorate(Name).c_str());
  }
  z3::expr intVal(int64_t V) {
    return Ctx.int_val(static_cast<int64_t>(V));
  }
  z3::expr boolVal(bool B) { return Ctx.bool_val(B); }

  /// Evaluates an integer term in a model, defaulting to 0 for
  /// don't-care values.
  static int64_t evalInt(const z3::model &M, const z3::expr &E) {
    z3::expr R = M.eval(E, /*model_completion=*/true);
    int64_t V = 0;
    if (R.is_numeral_i64(V))
      return V;
    return 0;
  }

  /// Evaluates a boolean term in a model (false for don't-care).
  static bool evalBool(const z3::model &M, const z3::expr &E) {
    z3::expr R = M.eval(E, /*model_completion=*/true);
    return R.is_true();
  }

private:
  std::string decorate(const std::string &Name) const {
    return "q" + std::to_string(Generation) + "." + Name;
  }

  z3::context Ctx;
  z3::solver Solver;
  unsigned Generation = 0;
};

} // namespace c4

#endif // C4_SMT_Z3ENV_H
