//===- smt/Z3Env.h - Z3 solver environment ----------------------*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thin boundary around the Z3 C++ API. All Z3 usage in the analyzer goes
/// through this header; z3::exception is confined to the smt library (the
/// rest of the code base is exception-free, LLVM style).
///
//===----------------------------------------------------------------------===//

#ifndef C4_SMT_Z3ENV_H
#define C4_SMT_Z3ENV_H

#include <z3++.h>

#include <cstdint>
#include <string>

namespace c4 {

/// Resource budget for one solver query (paper §7 precise stage).
///
/// The primary budget is Z3's \e rlimit — an abstract deduction count that
/// is a pure function of the query, independent of machine speed or load —
/// so budget-exhaustion verdicts (`unknown`) are bit-identical across
/// machines and runs. A wall-clock ceiling remains as a backstop only: with
/// a sane rlimit it never fires first, but it bounds the damage if a query
/// hits a pathological high-cost-per-unit search region. A query that comes
/// back unknown is retried with the rlimit escalated geometrically
/// (`Escalation`) up to `RlimitCap`, after which it is reported as
/// inconclusive.
struct SolverBudget {
  /// Per-check rlimit, in Z3 resource units (0 = no rlimit, wall only).
  /// One ϕ_cyclic query issues up to two checks (the non-initial-value
  /// assumption pass and the unconstrained pass); each gets this budget.
  uint64_t Rlimit = 20000000;
  /// Geometric escalation factor applied to `Rlimit` on each retry.
  unsigned Escalation = 4;
  /// Retries after the first unknown (total attempts = 1 + MaxRetries).
  unsigned MaxRetries = 2;
  /// Escalation ceiling; attempts clamp their rlimit to this.
  uint64_t RlimitCap = 320000000;
  /// Wall-clock backstop per check, milliseconds (0 = none).
  unsigned WallMs = 10000;

  /// The rlimit for attempt \p Attempt (0-based), clamped to the cap and
  /// to Z3's 32-bit parameter range.
  uint64_t rlimitForAttempt(unsigned Attempt) const {
    if (!Rlimit)
      return 0;
    uint64_t R = Rlimit;
    for (unsigned I = 0; I != Attempt; ++I) {
      if (R > RlimitCap / (Escalation ? Escalation : 1)) {
        R = RlimitCap;
        break;
      }
      R *= Escalation ? Escalation : 1;
    }
    if (R > RlimitCap)
      R = RlimitCap;
    if (R > 0xFFFFFFFFull)
      R = 0xFFFFFFFFull;
    return R;
  }
};

/// Owns a Z3 context and solver configured with a resource budget.
class Z3Env {
public:
  explicit Z3Env(const SolverBudget &B = SolverBudget()) : Solver(Ctx) {
    configure(B.Rlimit, B.WallMs);
  }

  z3::context &ctx() { return Ctx; }
  z3::solver &solver() { return Solver; }

  /// Discards all assertions by installing a fresh solver, keeping the
  /// context alive. Context construction and destruction dominate the cost
  /// of small queries, so callers issuing many queries reuse one env and
  /// reset between them. Each reset starts a new query generation: constant
  /// names are decorated with the generation number so a reused context
  /// never re-interns a name from an earlier query. Reusing an interned
  /// symbol would hand the new query an AST with a stale (low) id, and Z3's
  /// term orderings are id-sensitive — models (though not sat/unsat
  /// verdicts) could then depend on which queries the env solved earlier.
  /// With fresh names every query builds its ASTs in its own creation
  /// order, exactly as on a brand-new context, keeping results independent
  /// of env history.
  void reset(uint64_t Rlimit, unsigned WallMs) {
    ++Generation;
    Solver = z3::solver(Ctx);
    configure(Rlimit, WallMs);
  }

  /// Re-installs a (typically escalated) budget on the *current* solver
  /// without discarding its assertions or starting a new name generation.
  /// Used by the retry loop: an unknown verdict is re-checked with a larger
  /// rlimit against the already-encoded query, so the encode work is paid
  /// once per query instead of once per attempt.
  void rearm(uint64_t Rlimit, unsigned WallMs) { configure(Rlimit, WallMs); }

  /// Context-cumulative resource count ("rlimit count" solver statistic).
  /// Callers measure one query's cost as a delta of this counter; returns
  /// 0 if the statistic is unavailable.
  uint64_t rlimitCount() {
    try {
      z3::stats St = Solver.statistics();
      for (unsigned I = 0; I != St.size(); ++I)
        if (St.key(I) == "rlimit count")
          return St.is_uint(I) ? St.uint_value(I)
                               : static_cast<uint64_t>(St.double_value(I));
    } catch (const z3::exception &) {
      // Statistics are telemetry only; never let them fail a query.
    }
    return 0;
  }

  z3::expr intConst(const std::string &Name) {
    return Ctx.int_const(decorate(Name).c_str());
  }
  z3::expr boolConst(const std::string &Name) {
    return Ctx.bool_const(decorate(Name).c_str());
  }
  z3::expr intVal(int64_t V) {
    return Ctx.int_val(static_cast<int64_t>(V));
  }
  z3::expr boolVal(bool B) { return Ctx.bool_val(B); }

  /// Evaluates an integer term in a model, defaulting to 0 for
  /// don't-care values.
  static int64_t evalInt(const z3::model &M, const z3::expr &E) {
    z3::expr R = M.eval(E, /*model_completion=*/true);
    int64_t V = 0;
    if (R.is_numeral_i64(V))
      return V;
    return 0;
  }

  /// Evaluates a boolean term in a model (false for don't-care).
  static bool evalBool(const z3::model &M, const z3::expr &E) {
    z3::expr R = M.eval(E, /*model_completion=*/true);
    return R.is_true();
  }

private:
  /// Installs the budget on the current solver. The rlimit is a scoped
  /// per-check() budget (verified empirically: each check() call spends up
  /// to the configured units and returns unknown when exhausted); the
  /// wall timeout is per check as well.
  void configure(uint64_t Rlimit, unsigned WallMs) {
    z3::params P(Ctx);
    if (WallMs)
      P.set("timeout", WallMs);
    if (Rlimit)
      P.set("rlimit",
            static_cast<unsigned>(Rlimit > 0xFFFFFFFFull ? 0xFFFFFFFFull
                                                         : Rlimit));
    Solver.set(P);
  }

  std::string decorate(const std::string &Name) const {
    return "q" + std::to_string(Generation) + "." + Name;
  }

  z3::context Ctx;
  z3::solver Solver;
  unsigned Generation = 0;
};

} // namespace c4

#endif // C4_SMT_Z3ENV_H
