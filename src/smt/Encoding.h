//===- smt/Encoding.h - The ϕ_cyclic SMT encoding (§7) ----------*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Encodes the serializability criterion for one k-unfolding into a
/// first-order query for Z3 (paper §7): a model is a pre-schedule of a
/// one-to-one concretization of the unfolding whose DSG contains a cycle.
///
/// Model variables:
///  * per transaction: a presence boolean and an integer arbitration
///    position (atomic visibility S3 makes transactions contiguous in ar,
///    so transaction-level positions are exact),
///  * per ordered transaction pair: a visibility boolean (transitive,
///    including session order — causal consistency S2),
///  * per event: a presence boolean, an integer position inside its
///    transaction, and one integer per combined value slot,
///  * per eo edge: a "taken" boolean — present events form a path through
///    the transaction's event order with all guards satisfied (§8
///    control-flow constraints),
///  * session-local and global symbolic constants (VarL, VarG).
///
/// Dependencies follow D1-D3 with the far-commutativity / far-absorption
/// rewrite specification, asymmetric commutativity on anti-dependencies and
/// the fresh-unique-value axioms (§8). The cycle itself is selected from the
/// SC1-feasible simple cycles of the unfolding's instantiated SSG.
///
//===----------------------------------------------------------------------===//

#ifndef C4_SMT_ENCODING_H
#define C4_SMT_ENCODING_H

#include "abstract/Features.h"
#include "history/Schedule.h"
#include "smt/ConstraintCache.h"
#include "smt/Z3Env.h"
#include "ssg/SSG.h"
#include "support/Deadline.h"
#include "unfold/Unfolder.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace c4 {

/// A concrete witness extracted from a Z3 model: a history, the
/// pre-schedule, and the DSG cycle found.
struct CounterExample {
  History H;
  Schedule S;
  /// Transactions on the cycle, as concrete transaction ids of H.
  std::vector<unsigned> CycleTxns;
  /// The original (syntactic) transaction ids of the cycle.
  std::vector<unsigned> OrigTxns;
  /// Human-readable rendering.
  std::string Text;
};

/// Result of solving one unfolding.
struct UnfoldingResult {
  enum StatusKind { NoCycle, CycleFound, Unknown } Status = NoCycle;
  std::optional<CounterExample> CE;
};

/// Resource-governance policy for the precise stage: the per-query budget
/// and an optional analysis deadline. The deadline is consulted between
/// solve attempts (never mid-check — the per-attempt wall ceiling, clamped
/// to the remaining deadline, bounds overshoot instead) so cancellation is
/// always sound: an interrupted query reports Unknown, not a verdict.
struct SolverPolicy {
  SolverBudget Budget;
  const Deadline *DL = nullptr;
};

/// Per-query telemetry filled by \ref solveUnfolding for the query trace
/// and the analysis statistics.
struct SolveTelemetry {
  /// Solve attempts issued (1 = solved within the base budget).
  unsigned Attempts = 0;
  /// The rlimit budget of the last attempt.
  uint64_t RlimitBudget = 0;
  /// Resource units spent across all attempts (0 when unavailable).
  uint64_t RlimitSpent = 0;
  /// True when a z3::exception was confined to an Unknown result.
  bool Error = false;
  /// Times an already-encoded solver context answered instead of a fresh
  /// encode: retry re-checks under an escalated budget (`Z3Env::rearm`)
  /// plus, through \ref LayoutSolver, additional cycle chunks solved
  /// against a shared base encoding.
  unsigned CtxReuses = 0;
  /// The query was answered NoCycle by the canonicalized constraint cache
  /// without any Z3 check (Attempts stays 0).
  bool GreenHit = false;
};

/// Builds and solves ϕ_cyclic for \p U. \p Candidates are the SC1-feasible
/// simple cycles of the unfolding's instantiated SSG \p G (built with the
/// same features \p F). \p P governs the solver resources: the primary
/// budget is a deterministic rlimit (escalated geometrically on unknown up
/// to the cap), the wall clock is a backstop only. \p Oracle, when given,
/// memoizes the rewrite-spec conditions used by the encoding (shared with
/// the SSG stage; thread-safe). \p Reuse, when given, supplies the Z3
/// environment: it is reset, encoded into and solved on, amortizing Z3
/// context construction/destruction (~15ms each on small queries) across
/// many calls. The query is encoded once; an unknown is retried by
/// re-arming the *same* solver with an escalated rlimit
/// (`Z3Env::rearm`) and re-checking — the re-encode per attempt is gone,
/// and each such re-check counts into `SolveTelemetry::CtxReuses`. An env
/// must not be shared between threads; each worker keeps its own.
/// \p Green, when given, is consulted after encoding: a canonical-form
/// hit proves NoCycle without any Z3 check, and a fresh unsat proof is
/// recorded back. \p Telemetry, when given, receives the attempt/spend
/// accounting.
UnfoldingResult solveUnfolding(const Unfolding &U, const SSG &G,
                               const std::vector<CandidateCycle> &Candidates,
                               const AnalysisFeatures &F,
                               const SolverPolicy &P = {},
                               CommutativityOracle *Oracle = nullptr,
                               Z3Env *Reuse = nullptr,
                               SolveTelemetry *Telemetry = nullptr,
                               ConstraintCache *Green = nullptr);

/// A shared solver context for the many cycle/segment chunks of one
/// session layout (the §7.2 generalization loop solves the same unfolding
/// against successive candidate-segment chunks). The base encoding —
/// orders, control flow, facts, fresh values, query values — is built
/// exactly once; each \ref solve call pushes a scope, encodes only the
/// chunk's cycle selectors, solves (with the same escalating-rlimit retry
/// governance as \ref solveUnfolding), and pops. Every chunk after the
/// first counts a context reuse. Not thread-safe; one instance per worker
/// per unfolding.
class LayoutSolver {
public:
  /// \p Reuse, when given, supplies the env (reset once here); otherwise a
  /// private env is created. All referees must outlive the solver.
  LayoutSolver(const Unfolding &U, const SSG &G, const AnalysisFeatures &F,
               const SolverPolicy &P, CommutativityOracle *Oracle = nullptr,
               Z3Env *Reuse = nullptr, ConstraintCache *Green = nullptr);
  ~LayoutSolver();
  LayoutSolver(const LayoutSolver &) = delete;
  LayoutSolver &operator=(const LayoutSolver &) = delete;

  /// Solves ϕ_cyclic restricted to \p Candidates on the shared base
  /// encoding. Semantics and telemetry match \ref solveUnfolding.
  UnfoldingResult solve(const std::vector<CandidateCycle> &Candidates,
                        SolveTelemetry *Telemetry = nullptr);

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace c4

#endif // C4_SMT_ENCODING_H
