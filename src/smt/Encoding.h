//===- smt/Encoding.h - The ϕ_cyclic SMT encoding (§7) ----------*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Encodes the serializability criterion for one k-unfolding into a
/// first-order query for Z3 (paper §7): a model is a pre-schedule of a
/// one-to-one concretization of the unfolding whose DSG contains a cycle.
///
/// Model variables:
///  * per transaction: a presence boolean and an integer arbitration
///    position (atomic visibility S3 makes transactions contiguous in ar,
///    so transaction-level positions are exact),
///  * per ordered transaction pair: a visibility boolean (transitive,
///    including session order — causal consistency S2),
///  * per event: a presence boolean, an integer position inside its
///    transaction, and one integer per combined value slot,
///  * per eo edge: a "taken" boolean — present events form a path through
///    the transaction's event order with all guards satisfied (§8
///    control-flow constraints),
///  * session-local and global symbolic constants (VarL, VarG).
///
/// Dependencies follow D1-D3 with the far-commutativity / far-absorption
/// rewrite specification, asymmetric commutativity on anti-dependencies and
/// the fresh-unique-value axioms (§8). The cycle itself is selected from the
/// SC1-feasible simple cycles of the unfolding's instantiated SSG.
///
//===----------------------------------------------------------------------===//

#ifndef C4_SMT_ENCODING_H
#define C4_SMT_ENCODING_H

#include "abstract/Features.h"
#include "history/Schedule.h"
#include "smt/Z3Env.h"
#include "ssg/SSG.h"
#include "support/Deadline.h"
#include "unfold/Unfolder.h"

#include <optional>
#include <string>
#include <vector>

namespace c4 {

/// A concrete witness extracted from a Z3 model: a history, the
/// pre-schedule, and the DSG cycle found.
struct CounterExample {
  History H;
  Schedule S;
  /// Transactions on the cycle, as concrete transaction ids of H.
  std::vector<unsigned> CycleTxns;
  /// The original (syntactic) transaction ids of the cycle.
  std::vector<unsigned> OrigTxns;
  /// Human-readable rendering.
  std::string Text;
};

/// Result of solving one unfolding.
struct UnfoldingResult {
  enum StatusKind { NoCycle, CycleFound, Unknown } Status = NoCycle;
  std::optional<CounterExample> CE;
};

/// Resource-governance policy for the precise stage: the per-query budget
/// and an optional analysis deadline. The deadline is consulted between
/// solve attempts (never mid-check — the per-attempt wall ceiling, clamped
/// to the remaining deadline, bounds overshoot instead) so cancellation is
/// always sound: an interrupted query reports Unknown, not a verdict.
struct SolverPolicy {
  SolverBudget Budget;
  const Deadline *DL = nullptr;
};

/// Per-query telemetry filled by \ref solveUnfolding for the query trace
/// and the analysis statistics.
struct SolveTelemetry {
  /// Solve attempts issued (1 = solved within the base budget).
  unsigned Attempts = 0;
  /// The rlimit budget of the last attempt.
  uint64_t RlimitBudget = 0;
  /// Resource units spent across all attempts (0 when unavailable).
  uint64_t RlimitSpent = 0;
  /// True when a z3::exception was confined to an Unknown result.
  bool Error = false;
};

/// Builds and solves ϕ_cyclic for \p U. \p Candidates are the SC1-feasible
/// simple cycles of the unfolding's instantiated SSG \p G (built with the
/// same features \p F). \p P governs the solver resources: the primary
/// budget is a deterministic rlimit (escalated geometrically on unknown up
/// to the cap), the wall clock is a backstop only. \p Oracle, when given,
/// memoizes the rewrite-spec conditions used by the encoding (shared with
/// the SSG stage; thread-safe). \p Reuse, when given, supplies the Z3
/// environment: it is reset, encoded into and solved on, amortizing Z3
/// context construction/destruction (~15ms each on small queries) across
/// many calls; each retry resets it again, so retries re-encode on a fresh
/// name generation. An env must not be shared between threads; each worker
/// keeps its own. \p Telemetry, when given, receives the attempt/spend
/// accounting.
UnfoldingResult solveUnfolding(const Unfolding &U, const SSG &G,
                               const std::vector<CandidateCycle> &Candidates,
                               const AnalysisFeatures &F,
                               const SolverPolicy &P = {},
                               CommutativityOracle *Oracle = nullptr,
                               Z3Env *Reuse = nullptr,
                               SolveTelemetry *Telemetry = nullptr);

} // namespace c4

#endif // C4_SMT_ENCODING_H
