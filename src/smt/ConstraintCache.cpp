//===- smt/ConstraintCache.cpp --------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "smt/ConstraintCache.h"

#include "support/Fingerprint.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>
#include <vector>

using namespace c4;

namespace {

constexpr const char *SnapshotHeader = "c4-green-snapshot 1";

/// Characters that may continue an SMT-LIB simple symbol as our encoder
/// emits them (letters, digits, '.', '_'). The decorated constant names
/// ("q<gen>.<name>") use only these.
bool isSymbolChar(char C) {
  return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
         (C >= '0' && C <= '9') || C == '.' || C == '_';
}

/// One decorated-constant occurrence in an assertion text.
struct Token {
  size_t Pos;
  size_t Len;
  std::string Text;
};

/// Extracts the `q<gen>.`-decorated constant tokens of \p S, in order.
std::vector<Token> extractTokens(const std::string &S) {
  std::vector<Token> Out;
  size_t I = 0, N = S.size();
  while (I != N) {
    if (S[I] != 'q' || (I && isSymbolChar(S[I - 1]))) {
      ++I;
      continue;
    }
    size_t J = I + 1;
    while (J != N && S[J] >= '0' && S[J] <= '9')
      ++J;
    if (J == I + 1 || J == N || S[J] != '.') {
      ++I;
      continue;
    }
    // "q<digits>." confirmed; take the maximal symbol run.
    while (J != N && isSymbolChar(S[J]))
      ++J;
    Out.push_back({I, J - I, S.substr(I, J - I)});
    I = J;
  }
  return Out;
}

/// Rewrites \p S replacing each token (from \p Toks, positions into \p S)
/// with its canonical name from \p Rename.
std::string rewrite(const std::string &S, const std::vector<Token> &Toks,
                    const std::unordered_map<std::string, std::string> &Rename) {
  std::string Out;
  Out.reserve(S.size());
  size_t Prev = 0;
  for (const Token &T : Toks) {
    Out.append(S, Prev, T.Pos - Prev);
    Out += Rename.at(T.Text);
    Prev = T.Pos + T.Len;
  }
  Out.append(S, Prev, S.size() - Prev);
  return Out;
}

struct UnionFind {
  std::vector<unsigned> Parent;
  explicit UnionFind(unsigned N) : Parent(N) {
    for (unsigned I = 0; I != N; ++I)
      Parent[I] = I;
  }
  unsigned find(unsigned X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  }
  void unite(unsigned A, unsigned B) { Parent[find(A)] = find(B); }
};

} // namespace

std::string c4::canonicalQueryKey(const std::vector<std::string> &Assertions,
                                  const std::string &Context) {
  unsigned N = static_cast<unsigned>(Assertions.size());
  std::vector<std::vector<Token>> Toks(N);
  for (unsigned I = 0; I != N; ++I)
    Toks[I] = extractTokens(Assertions[I]);

  // Slice: group assertions connected by shared symbols.
  UnionFind UF(N);
  std::unordered_map<std::string, unsigned> FirstUse;
  for (unsigned I = 0; I != N; ++I)
    for (const Token &T : Toks[I]) {
      auto [It, Inserted] = FirstUse.emplace(T.Text, I);
      if (!Inserted)
        UF.unite(I, It->second);
    }

  // Canonicalize each group: rename symbols to c0, c1, ... in
  // first-occurrence order within the group, then concatenate the group's
  // assertions in their original (deterministic encode) order.
  std::unordered_map<unsigned, std::vector<unsigned>> Groups;
  for (unsigned I = 0; I != N; ++I)
    Groups[UF.find(I)].push_back(I);
  std::vector<std::string> GroupTexts;
  GroupTexts.reserve(Groups.size());
  for (auto &[Root, Members] : Groups) {
    (void)Root;
    std::unordered_map<std::string, std::string> Rename;
    for (unsigned I : Members)
      for (const Token &T : Toks[I]) {
        std::string Canon = "c";
        Canon += std::to_string(Rename.size());
        Rename.emplace(T.Text, std::move(Canon));
      }
    std::string Text;
    for (unsigned I : Members) {
      Text += rewrite(Assertions[I], Toks[I], Rename);
      Text += '\n';
    }
    GroupTexts.push_back(std::move(Text));
  }

  // Sorting the group texts makes the key independent of how the encoder
  // interleaved unrelated conjuncts.
  std::sort(GroupTexts.begin(), GroupTexts.end());
  Fingerprint FP;
  FP.addStr("c4-green-key-1");
  FP.addStr(Context);
  FP.addU64(GroupTexts.size());
  for (const std::string &T : GroupTexts)
    FP.addStr(T);
  return FP.digest();
}

void ConstraintSnapshot::merge(const ConstraintSnapshot &O) {
  Keys.insert(O.Keys.begin(), O.Keys.end());
}

std::string ConstraintSnapshot::serialize() const {
  std::string Out = SnapshotHeader;
  Out += '\n';
  Out += std::to_string(Keys.size());
  Out += '\n';
  for (const std::string &K : Keys) {
    Out += K;
    Out += '\n';
  }
  return Out;
}

std::optional<ConstraintSnapshot>
ConstraintSnapshot::deserialize(const std::string &Blob) {
  size_t Pos = 0;
  auto NextLine = [&]() -> std::optional<std::string> {
    if (Pos >= Blob.size())
      return std::nullopt;
    size_t NL = Blob.find('\n', Pos);
    if (NL == std::string::npos)
      return std::nullopt;
    std::string L = Blob.substr(Pos, NL - Pos);
    Pos = NL + 1;
    return L;
  };
  auto Header = NextLine();
  if (!Header || *Header != SnapshotHeader)
    return std::nullopt;
  auto CountLine = NextLine();
  if (!CountLine)
    return std::nullopt;
  char *End = nullptr;
  unsigned long long Count = std::strtoull(CountLine->c_str(), &End, 10);
  if (!End || *End || Count > 10000000ull)
    return std::nullopt;
  ConstraintSnapshot S;
  for (unsigned long long I = 0; I != Count; ++I) {
    auto K = NextLine();
    if (!K || K->empty())
      return std::nullopt;
    S.Keys.insert(*K);
  }
  return S;
}

bool ConstraintCache::knownUnsat(const std::string &Key) {
  if (Base && Base->contains(Key)) {
    Hits.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  Misses.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void ConstraintCache::recordUnsat(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(Mu);
  Fresh.insert(Key);
}

void ConstraintCache::exportProofs(ConstraintSnapshot &Out) const {
  std::lock_guard<std::mutex> Lock(Mu);
  for (const std::string &K : Fresh)
    Out.insert(K);
}
