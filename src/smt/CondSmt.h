//===- smt/CondSmt.h - Z3 reference check for Cond sat ----------*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Z3-backed reference decision procedure for `Cond` satisfiability under
/// a pair of fact vectors — the ground truth the relational domain
/// (domain/AbstractDomain.h) and the congruence-closure engine
/// (Cond::satisfiableUnder) are measured against. Encodes the exact fact
/// semantics both deciders assume: constants pin values, symbols alias
/// slots, and Unique facts are fresh identities (>= FreshValueMin, equal
/// iff the identity matches). Used by `--check-prefilter` and the
/// differential fuzzers; too slow for the analysis hot path (a fresh Z3
/// context per call).
///
//===----------------------------------------------------------------------===//

#ifndef C4_SMT_CONDSMT_H
#define C4_SMT_CONDSMT_H

#include "spec/Cond.h"

namespace c4 {

/// Decides with Z3 whether \p C has a model under \p Src / \p Tgt.
bool z3CondSatisfiable(const Cond &C, const EventFacts &Src,
                       const EventFacts &Tgt);

} // namespace c4

#endif // C4_SMT_CONDSMT_H
