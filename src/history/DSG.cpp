//===- history/DSG.cpp ----------------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "history/DSG.h"

#include "support/Format.h"

using namespace c4;

const char *c4::depLabelName(int Label) {
  switch (Label) {
  case DepSO:
    return "so";
  case DepDependency:
    return "dep";
  case DepAntiDep:
    return "anti";
  case DepConflict:
    return "conf";
  }
  return "?";
}

/// Shared implementation: \p Keep masks the considered events.
static DependenceTriple computeImpl(const History &H, const Schedule &S,
                                    const EventRelations &Rel,
                                    const std::vector<bool> &Keep) {
  unsigned N = H.numEvents();
  DependenceTriple T;
  T.Dep.assign(N, std::vector<bool>(N, false));
  T.AntiDep = T.Conflict = T.Dep;

  // The absorption escape of (D1)/(D2): some kept update v far-absorbs u,
  // u ar→ v, and v is visible to q.
  auto AbsorbedBefore = [&](unsigned U, unsigned Q) {
    for (unsigned V = 0; V != N; ++V) {
      if (!Keep[V] || V == U || V == Q || !H.isUpdate(V))
        continue;
      if (Rel.farAbsorbs(U, V) && S.arLess(U, V) && S.visible(V, Q))
        return true;
    }
    return false;
  };

  for (unsigned U = 0; U != N; ++U) {
    if (!Keep[U] || !H.isUpdate(U))
      continue;
    for (unsigned Q = 0; Q != N; ++Q) {
      if (!Keep[Q] || U == Q || !H.isQuery(Q))
        continue;
      if (S.visible(U, Q)) {
        // (D1) ⊕: u vı→ q and no escape.
        if (!Rel.farCommute(U, Q) && !AbsorbedBefore(U, Q))
          T.Dep[U][Q] = true;
      } else {
        // (D2) ⊖: u not visible to q and no escape (asymmetric variant).
        if (!Rel.antiDepCommute(U, Q) && !AbsorbedBefore(U, Q))
          T.AntiDep[Q][U] = true;
      }
    }
    // (D3) ⊗: u ar→ v and no plain commutativity.
    for (unsigned V = 0; V != N; ++V) {
      if (!Keep[V] || U == V || !H.isUpdate(V))
        continue;
      if (S.arLess(U, V) && !Rel.plainCommute(U, V))
        T.Conflict[U][V] = true;
    }
  }
  return T;
}

DependenceTriple c4::computeDependencies(const History &H, const Schedule &S,
                                         const EventRelations &Rel) {
  std::vector<bool> Keep(H.numEvents(), true);
  return computeImpl(H, S, Rel, Keep);
}

DependenceTriple c4::computeDependenciesRestricted(
    const History &H, const Schedule &S, const EventRelations &Rel,
    const std::vector<bool> &Keep) {
  return computeImpl(H, S, Rel, Keep);
}

Digraph c4::buildDSG(const History &H, const DependenceTriple &T) {
  unsigned NumTxns = H.numTransactions();
  unsigned N = H.numEvents();
  Digraph G(NumTxns);

  // Session order, lifted: all ordered pairs of one session.
  for (unsigned A = 0; A != NumTxns; ++A)
    for (unsigned B = 0; B != NumTxns; ++B)
      if (H.txnSoLess(A, B))
        G.addEdge(A, B, DepSO);

  // Lift the event relations; add at most one arc per (pair, label).
  auto LiftInto =
      [&](const std::vector<std::vector<bool>> &R, int Label) {
        std::vector<std::vector<bool>> Added(
            NumTxns, std::vector<bool>(NumTxns, false));
        for (unsigned E = 0; E != N; ++E)
          for (unsigned F = 0; F != N; ++F) {
            if (!R[E][F])
              continue;
            unsigned TS = H.event(E).Txn, TT = H.event(F).Txn;
            if (TS == TT || Added[TS][TT])
              continue;
            Added[TS][TT] = true;
            G.addEdge(TS, TT, Label);
          }
      };
  LiftInto(T.Dep, DepDependency);
  LiftInto(T.AntiDep, DepAntiDep);
  LiftInto(T.Conflict, DepConflict);
  return G;
}

bool c4::hasAcyclicDSG(const History &H, const Schedule &S, FarMode Mode,
                       bool AsymmetricAntiDeps) {
  EventRelations Rel(H, Mode, AsymmetricAntiDeps);
  DependenceTriple T = computeDependencies(H, S, Rel);
  return !buildDSG(H, T).hasCycle();
}

std::string c4::dsgStr(const History &H, const Digraph &G) {
  std::string Out;
  for (const Digraph::Edge &E : G.edges()) {
    const Transaction &TS = H.txn(E.From);
    const Transaction &TT = H.txn(E.To);
    Out += strf("t%u(s%u) -%s-> t%u(s%u)\n", TS.Id, TS.Session,
                depLabelName(E.Label), TT.Id, TT.Session);
  }
  return Out;
}
