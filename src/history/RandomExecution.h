//===- history/RandomExecution.h - Random legal executions ------*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random histories together with legal schedules (satisfying
/// S1-S3) over a given schema. Construction order: random session /
/// transaction / event skeleton, a random arbitration order respecting
/// session order, random transaction-level visibility closed causally, and
/// finally query return values computed by replay — so S1 holds by
/// construction. Used by property-based tests and the dynamic-analysis
/// comparison bench.
///
//===----------------------------------------------------------------------===//

#ifndef C4_HISTORY_RANDOMEXECUTION_H
#define C4_HISTORY_RANDOMEXECUTION_H

#include "history/Schedule.h"
#include "support/Rng.h"

namespace c4 {

/// Shape parameters for random executions.
struct RandomExecOptions {
  unsigned MinSessions = 2, MaxSessions = 3;
  unsigned MaxTxnsPerSession = 2;
  unsigned MaxEventsPerTxn = 3;
  /// Arguments are drawn from [0, ArgDomain).
  int64_t ArgDomain = 3;
  /// Probability (percent) that an ar-ordered transaction pair is visible.
  unsigned VisPercent = 50;
};

/// A history with a legal schedule.
struct RandomExecution {
  History H;
  Schedule S;
};

/// Generates a random execution over \p Sch.
RandomExecution generateRandomExecution(const Schema &Sch, Rng &R,
                                        const RandomExecOptions &O = {});

} // namespace c4

#endif // C4_HISTORY_RANDOMEXECUTION_H
