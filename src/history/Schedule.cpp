//===- history/Schedule.cpp -----------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "history/Schedule.h"

#include <algorithm>
#include <functional>
#include <cassert>

using namespace c4;

void Schedule::setArbitration(const std::vector<unsigned> &Order) {
  assert(Order.size() == ArPos.size() && "order must cover all events");
  std::vector<bool> Seen(ArPos.size(), false);
  for (unsigned Pos = 0; Pos != Order.size(); ++Pos) {
    assert(!Seen[Order[Pos]] && "duplicate event in arbitration order");
    Seen[Order[Pos]] = true;
    ArPos[Order[Pos]] = Pos;
  }
}

std::vector<unsigned> Schedule::arOrder() const {
  std::vector<unsigned> Order(ArPos.size());
  for (unsigned E = 0; E != ArPos.size(); ++E)
    Order[ArPos[E]] = E;
  return Order;
}

void Schedule::closeCausally(const History &H) {
  unsigned N = numEvents();
  // Seed with session order.
  for (unsigned S = 0; S != H.numSessions(); ++S) {
    const std::vector<unsigned> &Sess = H.session(S);
    for (unsigned I = 0; I != Sess.size(); ++I)
      for (unsigned J = I + 1; J != Sess.size(); ++J)
        Vis[Sess[I]][Sess[J]] = true;
  }
  // Transitive closure (Floyd-Warshall style; histories are small).
  for (unsigned K = 0; K != N; ++K)
    for (unsigned I = 0; I != N; ++I) {
      if (!Vis[I][K])
        continue;
      for (unsigned J = 0; J != N; ++J)
        if (Vis[K][J])
          Vis[I][J] = true;
    }
}

int64_t c4::evalQueryUnder(const History &H, const Schedule &S, unsigned Q) {
  const Event &QE = H.event(Q);
  assert(H.op(QE).isQuery() && "expected a query event");
  // Collect visible updates on the same container and replay in ar order.
  std::vector<unsigned> Upds;
  for (unsigned E = 0; E != H.numEvents(); ++E)
    if (H.isUpdate(E) && S.visible(E, Q) &&
        H.event(E).Container == QE.Container)
      Upds.push_back(E);
  std::sort(Upds.begin(), Upds.end(),
            [&](unsigned A, unsigned B) { return S.arLess(A, B); });
  const ContainerDecl &C = H.schema().container(QE.Container);
  std::unique_ptr<ContainerState> State = C.Type->makeState();
  for (unsigned U : Upds)
    State->apply(H.op(U), H.event(U).vals());
  return State->eval(H.op(QE), QE.Args);
}

bool c4::satisfiesLegality(const History &H, const Schedule &S) {
  for (unsigned E = 0; E != H.numEvents(); ++E) {
    if (!H.isQuery(E))
      continue;
    if (evalQueryUnder(H, S, E) != *H.event(E).Ret)
      return false;
  }
  return true;
}

bool c4::satisfiesCausality(const History &H, const Schedule &S) {
  unsigned N = H.numEvents();
  // so ⊆ vı and vı ⊆ ar and no self-visibility.
  for (unsigned A = 0; A != N; ++A)
    for (unsigned B = 0; B != N; ++B) {
      if (H.soLess(A, B) && !S.visible(A, B))
        return false;
      if (S.visible(A, B) && !S.arLess(A, B))
        return false;
    }
  // vı transitive.
  for (unsigned A = 0; A != N; ++A)
    for (unsigned B = 0; B != N; ++B) {
      if (!S.visible(A, B))
        continue;
      for (unsigned C = 0; C != N; ++C)
        if (S.visible(B, C) && !S.visible(A, C))
          return false;
    }
  return true;
}

bool c4::satisfiesAtomicVisibility(const History &H, const Schedule &S) {
  for (unsigned T1 = 0; T1 != H.numTransactions(); ++T1)
    for (unsigned T2 = 0; T2 != H.numTransactions(); ++T2) {
      if (T1 == T2)
        continue;
      const std::vector<unsigned> &Es1 = H.txn(T1).Events;
      const std::vector<unsigned> &Es2 = H.txn(T2).Events;
      if (Es1.empty() || Es2.empty())
        continue;
      bool Vis0 = S.visible(Es1[0], Es2[0]);
      bool Ar0 = S.arLess(Es1[0], Es2[0]);
      for (unsigned E1 : Es1)
        for (unsigned E2 : Es2) {
          if (S.visible(E1, E2) != Vis0)
            return false;
          if (S.arLess(E1, E2) != Ar0)
            return false;
        }
    }
  return true;
}

bool c4::isLegalSchedule(const History &H, const Schedule &S) {
  return satisfiesCausality(H, S) && satisfiesAtomicVisibility(H, S) &&
         satisfiesLegality(H, S);
}

bool c4::isSerial(const History &H, const Schedule &S) {
  unsigned N = H.numEvents();
  for (unsigned A = 0; A != N; ++A)
    for (unsigned B = 0; B != N; ++B)
      if (S.visible(A, B) != S.arLess(A, B))
        return false;
  return true;
}

Schedule c4::makeSerialSchedule(const History &H,
                                const std::vector<unsigned> &TxnOrder) {
  assert(TxnOrder.size() == H.numTransactions() && "order must cover txns");
  Schedule S(H.numEvents());
  std::vector<unsigned> Order;
  Order.reserve(H.numEvents());
  for (unsigned T : TxnOrder)
    for (unsigned E : H.txn(T).Events)
      Order.push_back(E);
  S.setArbitration(Order);
  for (unsigned I = 0; I != Order.size(); ++I)
    for (unsigned J = I + 1; J != Order.size(); ++J)
      S.setVisible(Order[I], Order[J]);
  return S;
}

namespace {

/// Enumerates linearizations of the transactions respecting session order
/// until \p Fn returns true; returns whether any call did.
bool forEachTxnLinearization(const History &H,
                             const std::function<bool(
                                 const std::vector<unsigned> &)> &Fn) {
  unsigned NumSessions = H.numSessions();
  std::vector<unsigned> Next(NumSessions, 0); // next txn index per session
  std::vector<unsigned> Order;
  // Recursive backtracking over which session provides the next transaction.
  std::function<bool()> Rec = [&]() -> bool {
    if (Order.size() == H.numTransactions())
      return Fn(Order);
    for (unsigned S = 0; S != NumSessions; ++S) {
      if (Next[S] == H.sessionTxns(S).size())
        continue;
      Order.push_back(H.sessionTxns(S)[Next[S]]);
      ++Next[S];
      if (Rec())
        return true;
      --Next[S];
      Order.pop_back();
    }
    return false;
  };
  return Rec();
}

} // namespace

std::optional<Schedule> c4::findSerialSchedule(const History &H) {
  std::optional<Schedule> Result;
  forEachTxnLinearization(H, [&](const std::vector<unsigned> &TxnOrder) {
    Schedule S = makeSerialSchedule(H, TxnOrder);
    if (!satisfiesLegality(H, S))
      return false;
    Result = std::move(S);
    return true;
  });
  return Result;
}
