//===- history/DSG.h - Dependency serialization graphs ----------*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dependence triple (paper §4.2) and the dependency serialization graph
/// (DSG). Given a history and a schedule:
///
///  (D1) dependencies     ⊕ ⊆ U×Q : a query depends on a visible update
///       unless the update far-commutes with it or is far-absorbed by an
///       intermediate visible update,
///  (D2) anti-dependencies ⊖ ⊆ Q×U : a query anti-depends on an invisible
///       update under the same escape conditions,
///  (D3) conflict deps    ⊗ ⊆ U×U : an update conflict-depends on a later
///       (in ar) update unless they plainly commute.
///
/// Lifting these relations (plus session order) to transactions yields the
/// DSG. Theorem 1: if a schedule induces an acyclic DSG, the history is
/// serializable. Theorem 2 (locality): restricting a schedule to a subset of
/// events never loses dependencies between the remaining events.
///
//===----------------------------------------------------------------------===//

#ifndef C4_HISTORY_DSG_H
#define C4_HISTORY_DSG_H

#include "history/Relations.h"
#include "history/Schedule.h"
#include "support/Digraph.h"

#include <string>

namespace c4 {

/// Edge labels of serialization graphs (DSG and SSG alike).
enum DepLabel : int {
  DepSO = 0,       ///< session order
  DepDependency,   ///< ⊕
  DepAntiDep,      ///< ⊖
  DepConflict      ///< ⊗
};

/// Returns "so", "dep", "anti" or "conf".
const char *depLabelName(int Label);

/// The event-level dependence triple.
struct DependenceTriple {
  /// Dep[u][q], AntiDep[q][u], Conflict[u][v] — oriented as in the paper.
  std::vector<std::vector<bool>> Dep, AntiDep, Conflict;
};

/// Computes (D1)-(D3) for the given history, schedule and relations.
DependenceTriple computeDependencies(const History &H, const Schedule &S,
                                     const EventRelations &Rel);

/// Computes the triple for the restriction of the schedule to the event set
/// \p Keep (used to validate the locality theorem). Events outside \p Keep
/// are ignored entirely.
DependenceTriple computeDependenciesRestricted(const History &H,
                                               const Schedule &S,
                                               const EventRelations &Rel,
                                               const std::vector<bool> &Keep);

/// Builds the DSG: nodes are the history's transactions; arcs are the
/// lifted session-order / ⊕ / ⊖ / ⊗ relations (one arc per label per
/// transaction pair).
Digraph buildDSG(const History &H, const DependenceTriple &T);

/// Convenience: computes relations, dependencies and the DSG, and returns
/// true iff the DSG is acyclic (sufficient for serializability, Thm. 1).
bool hasAcyclicDSG(const History &H, const Schedule &S,
                   FarMode Mode = FarMode::Spec,
                   bool AsymmetricAntiDeps = true);

/// Renders a DSG for diagnostics (one "s -label-> t" line per arc).
std::string dsgStr(const History &H, const Digraph &G);

} // namespace c4

#endif // C4_HISTORY_DSG_H
