//===- history/Schedule.h - Schedules and their axioms -----------*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A schedule S = (vı, ar) for a history (paper §3): a strict total
/// arbitration order `ar` over the events and a visibility relation
/// `vı ⊆ ar`. Legal schedules satisfy
///
///   (S1) every query's return value is consistent with replaying its
///        visible updates in arbitration order,
///   (S2) vı = (so ∪ vı)+  — causal consistency,
///   (S3) atomic visibility: transactions never interleave in vı or ar.
///
/// A schedule is serial iff vı = ar; a history is serializable iff it has a
/// serial legal schedule. This module provides the axiom checks and a
/// brute-force serializability decision for small histories, which serves as
/// the ground truth for the static analyses.
///
//===----------------------------------------------------------------------===//

#ifndef C4_HISTORY_SCHEDULE_H
#define C4_HISTORY_SCHEDULE_H

#include "history/History.h"

#include <optional>
#include <vector>

namespace c4 {

/// A schedule over the events of one history.
class Schedule {
public:
  explicit Schedule(unsigned NumEvents)
      : ArPos(NumEvents), Vis(NumEvents, std::vector<bool>(NumEvents, false)) {
    for (unsigned I = 0; I != NumEvents; ++I)
      ArPos[I] = I;
  }

  unsigned numEvents() const { return static_cast<unsigned>(ArPos.size()); }

  /// Installs the arbitration order: \p Order lists event ids from first to
  /// last. Must be a permutation of all events.
  void setArbitration(const std::vector<unsigned> &Order);

  /// Arbitration position of an event (0 = earliest).
  unsigned arPos(unsigned E) const { return ArPos[E]; }
  bool arLess(unsigned A, unsigned B) const { return ArPos[A] < ArPos[B]; }

  /// Event ids sorted by arbitration order.
  std::vector<unsigned> arOrder() const;

  void setVisible(unsigned From, unsigned To, bool V = true) {
    Vis[From][To] = V;
  }
  /// True if \p From is visible to \p To (From vı→ To).
  bool visible(unsigned From, unsigned To) const { return Vis[From][To]; }

  /// Closes visibility under (so ∪ vı)+ as required by S2, adding session
  /// order and transitive edges. Also useful when constructing schedules.
  void closeCausally(const History &H);

private:
  std::vector<unsigned> ArPos;
  std::vector<std::vector<bool>> Vis;
};

/// S1: every query agrees with the ar-ordered replay of its visible updates.
bool satisfiesLegality(const History &H, const Schedule &S);

/// S2: vı ⊇ so, vı transitive, vı ⊆ ar.
bool satisfiesCausality(const History &H, const Schedule &S);

/// S3: distinct transactions never interleave in vı or ar.
bool satisfiesAtomicVisibility(const History &H, const Schedule &S);

/// All of S1, S2, S3.
bool isLegalSchedule(const History &H, const Schedule &S);

/// vı = ar.
bool isSerial(const History &H, const Schedule &S);

/// Builds the serial schedule executing transactions in \p TxnOrder
/// (events of each transaction in session order). \p TxnOrder must respect
/// session order for the result to be legal w.r.t. S2.
Schedule makeSerialSchedule(const History &H,
                            const std::vector<unsigned> &TxnOrder);

/// Searches all linearizations of the transactions (respecting session
/// order) for a serial legal schedule. Exponential: intended for small
/// histories in tests and for validating counter-examples.
std::optional<Schedule> findSerialSchedule(const History &H);

/// True iff the history possesses a serial legal schedule.
inline bool isSerializable(const History &H) {
  return findSerialSchedule(H).has_value();
}

/// Computes the correct return value of query \p Q under schedule \p S:
/// replays the updates visible to Q in arbitration order. Useful when
/// constructing S1-satisfying histories.
int64_t evalQueryUnder(const History &H, const Schedule &S, unsigned Q);

} // namespace c4

#endif // C4_HISTORY_SCHEDULE_H
