//===- history/History.h - Concrete events, histories, sessions -*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concrete execution model of paper §3. A history H = (Ev, so, Tx)
/// consists of events partitioned into sessions (chains under session order
/// so) which are in turn partitioned into contiguous transactions. Events
/// carry an operation on a schema container, concrete arguments, and an
/// optional return value.
///
//===----------------------------------------------------------------------===//

#ifndef C4_HISTORY_HISTORY_H
#define C4_HISTORY_HISTORY_H

#include "spec/Registry.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace c4 {

/// One executed operation.
struct Event {
  unsigned Id;        ///< dense index within the history
  unsigned Container; ///< schema container id
  unsigned Op;        ///< operation index within the container's type
  std::vector<int64_t> Args;
  std::optional<int64_t> Ret;
  unsigned Session; ///< owning session index
  unsigned Txn;     ///< owning transaction index

  /// The combined value vector: arguments followed by the return value.
  std::vector<int64_t> vals() const {
    std::vector<int64_t> V = Args;
    if (Ret)
      V.push_back(*Ret);
    return V;
  }
};

/// A transaction: a contiguous block of events of one session.
struct Transaction {
  unsigned Id;
  unsigned Session;
  std::vector<unsigned> Events; ///< event ids in session order
};

/// A concrete history. Build sessions/transactions/events in order with
/// addSession / beginTransaction / append.
class History {
public:
  explicit History(const Schema &S) : Sch(&S) {}

  const Schema &schema() const { return *Sch; }

  unsigned addSession();
  /// Starts a new transaction in \p Session (sessions only grow at the end).
  unsigned beginTransaction(unsigned Session);
  /// Appends an event to transaction \p Txn, which must be the most recent
  /// transaction of its session. Returns the event id.
  unsigned append(unsigned Txn, unsigned Container, unsigned Op,
                  std::vector<int64_t> Args,
                  std::optional<int64_t> Ret = std::nullopt);

  /// Overwrites the return value of an event (the operation must have one).
  /// Used by generators that fix up query outcomes after choosing a
  /// schedule, and by the store interpreter.
  void setReturn(unsigned EventId, int64_t Ret);

  unsigned numEvents() const { return static_cast<unsigned>(Events_.size()); }
  unsigned numSessions() const {
    return static_cast<unsigned>(Sessions_.size());
  }
  unsigned numTransactions() const {
    return static_cast<unsigned>(Txns_.size());
  }

  const Event &event(unsigned Id) const { return Events_[Id]; }
  const Transaction &txn(unsigned Id) const { return Txns_[Id]; }
  /// Event ids of one session, in session order.
  const std::vector<unsigned> &session(unsigned Id) const {
    return Sessions_[Id];
  }
  /// Transaction ids of one session, in session order.
  const std::vector<unsigned> &sessionTxns(unsigned Id) const {
    return SessionTxns_[Id];
  }

  /// The operation signature of an event.
  const OpSig &op(const Event &E) const {
    return Sch->op(E.Container, E.Op);
  }
  const OpSig &op(unsigned EventId) const { return op(Events_[EventId]); }

  bool isUpdate(unsigned EventId) const { return op(EventId).isUpdate(); }
  bool isQuery(unsigned EventId) const { return op(EventId).isQuery(); }

  /// Session order on events: strictly earlier in the same session.
  bool soLess(unsigned A, unsigned B) const;
  /// Session order on transactions.
  bool txnSoLess(unsigned S, unsigned T) const;

  /// Renders an event like "M.put(1,2)" or "M.get(1):5".
  std::string eventStr(unsigned EventId) const;

private:
  const Schema *Sch;
  std::vector<Event> Events_;
  std::vector<Transaction> Txns_;
  std::vector<std::vector<unsigned>> Sessions_;     // event ids
  std::vector<std::vector<unsigned>> SessionTxns_;  // txn ids
};

} // namespace c4

#endif // C4_HISTORY_HISTORY_H
