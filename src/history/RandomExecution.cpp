//===- history/RandomExecution.cpp ----------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "history/RandomExecution.h"

#include <algorithm>

using namespace c4;

/// Fresh identities live far above both program literals and interned
/// strings so they can never collide.
static constexpr int64_t FreshBase = 9000000;

RandomExecution c4::generateRandomExecution(const Schema &Sch, Rng &R,
                                            const RandomExecOptions &O) {
  History H(Sch);
  int64_t NextFresh = FreshBase;

  // Skeleton: sessions, transactions, events.
  unsigned NumSessions =
      static_cast<unsigned>(R.range(O.MinSessions, O.MaxSessions));
  for (unsigned S = 0; S != NumSessions; ++S) {
    unsigned Session = H.addSession();
    unsigned NumTxns = static_cast<unsigned>(R.range(1, O.MaxTxnsPerSession));
    for (unsigned T = 0; T != NumTxns; ++T) {
      unsigned Txn = H.beginTransaction(Session);
      unsigned NumEvents =
          static_cast<unsigned>(R.range(1, O.MaxEventsPerTxn));
      for (unsigned E = 0; E != NumEvents; ++E) {
        unsigned Container =
            static_cast<unsigned>(R.below(Sch.numContainers()));
        const DataTypeSpec &Type = *Sch.container(Container).Type;
        unsigned Op = static_cast<unsigned>(R.below(Type.ops().size()));
        const OpSig &Sig = Type.ops()[Op];
        std::vector<int64_t> Args;
        for (unsigned A = 0; A != Sig.NumArgs; ++A)
          Args.push_back(R.range(0, O.ArgDomain - 1));
        std::optional<int64_t> Ret;
        if (Sig.HasRet)
          Ret = Sig.Fresh ? NextFresh++ : 0; // queries fixed up below
        H.append(Txn, Container, Op, std::move(Args), Ret);
      }
    }
  }

  // Arbitration: a random linear extension of session order on
  // transactions; events of a transaction stay contiguous in session order.
  std::vector<unsigned> NextTxn(H.numSessions(), 0);
  std::vector<unsigned> TxnOrder;
  while (TxnOrder.size() != H.numTransactions()) {
    unsigned S = static_cast<unsigned>(R.below(H.numSessions()));
    if (NextTxn[S] == H.sessionTxns(S).size())
      continue;
    TxnOrder.push_back(H.sessionTxns(S)[NextTxn[S]++]);
  }
  Schedule S(H.numEvents());
  std::vector<unsigned> EventOrder;
  for (unsigned T : TxnOrder)
    for (unsigned E : H.txn(T).Events)
      EventOrder.push_back(E);
  S.setArbitration(EventOrder);

  // Transaction-level visibility: each ar-ordered pair independently, then
  // the causal closure. Closure only adds ar-forward pairs, so vı ⊆ ar is
  // preserved.
  std::vector<unsigned> TxnPos(H.numTransactions());
  for (unsigned I = 0; I != TxnOrder.size(); ++I)
    TxnPos[TxnOrder[I]] = I;
  for (unsigned A = 0; A != H.numTransactions(); ++A)
    for (unsigned B = 0; B != H.numTransactions(); ++B) {
      if (A == B || TxnPos[A] >= TxnPos[B])
        continue;
      if (!R.chance(O.VisPercent, 100))
        continue;
      for (unsigned E1 : H.txn(A).Events)
        for (unsigned E2 : H.txn(B).Events)
          S.setVisible(E1, E2);
    }
  S.closeCausally(H);

  // S1 by construction: every query returns its replayed value.
  for (unsigned E = 0; E != H.numEvents(); ++E)
    if (H.isQuery(E))
      H.setReturn(E, evalQueryUnder(H, S, E));

  return {std::move(H), std::move(S)};
}
