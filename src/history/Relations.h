//===- history/Relations.h - Far commutativity and absorption ---*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pairwise algebraic relations between the concrete events of a history:
/// plain commutativity, far commutativity ↷º (R2), far absorption ▷ (R1),
/// and the asymmetric variant used for anti-dependencies (paper §8).
///
/// Two computation modes:
///  * Spec: evaluate the data types' far formulas directly. Context
///    independent, hence compatible with the locality theorem (Thm. 2).
///  * Fixpoint: compute ↷º as the greatest fixpoint of R2 restricted to the
///    updates present in the history (the coinductive definition: start from
///    plain commutativity and repeatedly remove pairs (u,q) for which some
///    update v neither commutes with u, nor far-commutes with q, nor absorbs
///    u). At least as precise as Spec on the same history.
///
//===----------------------------------------------------------------------===//

#ifndef C4_HISTORY_RELATIONS_H
#define C4_HISTORY_RELATIONS_H

#include "history/History.h"

#include <vector>

namespace c4 {

/// How to compute far commutativity. See the file comment.
enum class FarMode { Spec, Fixpoint };

/// Precomputed pairwise relations between the events of one history.
class EventRelations {
public:
  EventRelations(const History &H, FarMode Mode = FarMode::Spec,
                 bool AsymmetricAntiDeps = true);

  /// Plain commutativity: e f ≡ f e.
  bool plainCommute(unsigned A, unsigned B) const {
    return PlainCom[A][B];
  }
  /// Far commutativity ↷º, extended to all event pairs (queries always
  /// far-commute with queries; update/update uses plain commutativity).
  bool farCommute(unsigned A, unsigned B) const { return FarCom[A][B]; }
  /// Far commutativity for anti-dependency computation: the asymmetric
  /// variant if enabled, otherwise identical to farCommute. Oriented as
  /// (update, query).
  bool antiDepCommute(unsigned U, unsigned Q) const {
    return AntiCom[U][Q];
  }
  /// Far absorption: A ▷ B (A's effect dies under a later B).
  bool farAbsorbs(unsigned A, unsigned B) const { return FarAbs[A][B]; }

private:
  std::vector<std::vector<bool>> PlainCom, FarCom, AntiCom, FarAbs;
};

} // namespace c4

#endif // C4_HISTORY_RELATIONS_H
