//===- history/History.cpp ------------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "history/History.h"

#include "support/Format.h"

#include <cassert>

using namespace c4;

unsigned History::addSession() {
  Sessions_.emplace_back();
  SessionTxns_.emplace_back();
  return numSessions() - 1;
}

unsigned History::beginTransaction(unsigned Session) {
  assert(Session < numSessions() && "unknown session");
  unsigned Id = numTransactions();
  Txns_.push_back({Id, Session, {}});
  SessionTxns_[Session].push_back(Id);
  return Id;
}

unsigned History::append(unsigned Txn, unsigned Container, unsigned Op,
                         std::vector<int64_t> Args,
                         std::optional<int64_t> Ret) {
  assert(Txn < numTransactions() && "unknown transaction");
  Transaction &T = Txns_[Txn];
  assert(SessionTxns_[T.Session].back() == Txn &&
         "transactions must stay contiguous: only the most recent "
         "transaction of a session may grow");
  const OpSig &Sig = Sch->op(Container, Op);
  assert(Args.size() == Sig.NumArgs && "argument count mismatch");
  assert(Ret.has_value() == Sig.HasRet && "return value mismatch");
  (void)Sig;
  unsigned Id = numEvents();
  Events_.push_back({Id, Container, Op, std::move(Args), Ret, T.Session, Txn});
  T.Events.push_back(Id);
  Sessions_[T.Session].push_back(Id);
  return Id;
}

void History::setReturn(unsigned EventId, int64_t Ret) {
  assert(op(EventId).HasRet && "operation has no return value");
  Events_[EventId].Ret = Ret;
}

bool History::soLess(unsigned A, unsigned B) const {
  const Event &EA = Events_[A];
  const Event &EB = Events_[B];
  if (EA.Session != EB.Session)
    return false;
  // Events are appended in session order, so ids grow along a session.
  return A < B;
}

bool History::txnSoLess(unsigned S, unsigned T) const {
  const Transaction &TS = Txns_[S];
  const Transaction &TT = Txns_[T];
  return TS.Session == TT.Session && S != T && TS.Id < TT.Id;
}

std::string History::eventStr(unsigned EventId) const {
  const Event &E = Events_[EventId];
  const OpSig &Sig = op(E);
  std::vector<std::string> Args;
  for (int64_t A : E.Args)
    Args.push_back(strf("%lld", static_cast<long long>(A)));
  std::string S = Sch->container(E.Container).Name + "." + Sig.Name + "(" +
                  join(Args, ",") + ")";
  if (E.Ret)
    S += strf(":%lld", static_cast<long long>(*E.Ret));
  return S;
}
