//===- history/Relations.cpp ----------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "history/Relations.h"

#include "spec/DataType.h"

using namespace c4;

/// Evaluates the rewrite-spec condition of kind \p Mode between two concrete
/// events. Cross-container pairs always commute.
static bool evalCommute(const History &H, unsigned A, unsigned B,
                        CommuteMode Mode) {
  const Event &EA = H.event(A);
  const Event &EB = H.event(B);
  if (EA.Container != EB.Container)
    return true;
  const DataTypeSpec &Type = *H.schema().container(EA.Container).Type;
  Cond C = commutesCond(Type, EA.Op, EB.Op, Mode);
  return C.eval(EA.vals(), EB.vals());
}

/// Evaluates absorption: A (earlier) absorbed by B (later). Cross-container
/// pairs never absorb.
static bool evalAbsorb(const History &H, unsigned A, unsigned B, bool Far) {
  const Event &EA = H.event(A);
  const Event &EB = H.event(B);
  if (EA.Container != EB.Container)
    return false;
  const DataTypeSpec &Type = *H.schema().container(EA.Container).Type;
  Cond C = absorbsCond(Type, EA.Op, EB.Op, Far);
  return C.eval(EA.vals(), EB.vals());
}

EventRelations::EventRelations(const History &H, FarMode Mode,
                               bool AsymmetricAntiDeps) {
  unsigned N = H.numEvents();
  PlainCom.assign(N, std::vector<bool>(N, false));
  FarCom = AntiCom = FarAbs = PlainCom;

  for (unsigned A = 0; A != N; ++A)
    for (unsigned B = 0; B != N; ++B) {
      if (A == B)
        continue;
      PlainCom[A][B] = evalCommute(H, A, B, CommuteMode::Plain);
      FarAbs[A][B] = H.isUpdate(A) && H.isUpdate(B) &&
                     evalAbsorb(H, A, B, /*Far=*/true);
    }

  if (Mode == FarMode::Spec) {
    for (unsigned A = 0; A != N; ++A)
      for (unsigned B = 0; B != N; ++B) {
        if (A == B)
          continue;
        FarCom[A][B] = evalCommute(H, A, B, CommuteMode::Far);
      }
  } else {
    // Greatest fixpoint of R2 over the update events of this history.
    // Start from plain commutativity for update/query pairs; queries
    // far-commute with queries; update/update pairs use plain.
    std::vector<unsigned> Updates;
    for (unsigned E = 0; E != N; ++E)
      if (H.isUpdate(E))
        Updates.push_back(E);
    for (unsigned A = 0; A != N; ++A)
      for (unsigned B = 0; B != N; ++B) {
        if (A == B)
          continue;
        if (H.isQuery(A) && H.isQuery(B))
          FarCom[A][B] = true;
        else
          FarCom[A][B] = PlainCom[A][B];
      }
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (unsigned U : Updates)
        for (unsigned B = 0; B != N; ++B) {
          if (U == B || !H.isQuery(B) || !FarCom[U][B])
            continue;
          // (R2) u ↷º q requires: for every update v, uv ≡ vu or v ↷º q
          // or u ▷ v.
          bool Ok = true;
          for (unsigned V : Updates) {
            if (V == U)
              continue;
            if (PlainCom[U][V] || FarCom[V][B] || FarAbs[U][V])
              continue;
            Ok = false;
            break;
          }
          if (!Ok) {
            FarCom[U][B] = false;
            FarCom[B][U] = false; // query-update pairs are symmetric
            Changed = true;
          }
        }
    }
  }

  // Anti-dependency commutativity: asymmetric variant on top of far.
  for (unsigned U = 0; U != N; ++U)
    for (unsigned Q = 0; Q != N; ++Q) {
      if (U == Q) {
        AntiCom[U][Q] = true;
        continue;
      }
      bool C = FarCom[U][Q];
      if (!C && AsymmetricAntiDeps && H.isUpdate(U) && H.isQuery(Q))
        C = evalCommute(H, U, Q, CommuteMode::Asym);
      AntiCom[U][Q] = C;
    }
}
