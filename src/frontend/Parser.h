//===- frontend/Parser.h - C4L parser ---------------------------*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for C4L (grammar in AST.h).
///
//===----------------------------------------------------------------------===//

#ifndef C4_FRONTEND_PARSER_H
#define C4_FRONTEND_PARSER_H

#include "frontend/AST.h"
#include "frontend/Token.h"

#include <string>
#include <vector>

namespace c4 {

/// Parses a token stream into a ProgramAST. On error, returns false and
/// sets \p Error (message includes the line).
bool parseProgram(const std::vector<Token> &Tokens, ProgramAST &AST,
                  std::string &Error);

} // namespace c4

#endif // C4_FRONTEND_PARSER_H
