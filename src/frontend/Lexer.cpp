//===- frontend/Lexer.cpp -------------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include "support/Format.h"

#include <cctype>
#include <map>

using namespace c4;

const char *c4::tokenKindName(TokenKind K) {
  switch (K) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Ident:
    return "identifier";
  case TokenKind::Int:
    return "integer";
  case TokenKind::String:
    return "string";
  case TokenKind::KwContainer:
    return "'container'";
  case TokenKind::KwGlobal:
    return "'global'";
  case TokenKind::KwSession:
    return "'session'";
  case TokenKind::KwAtomicSet:
    return "'atomicset'";
  case TokenKind::KwOrder:
    return "'order'";
  case TokenKind::KwAny:
    return "'any'";
  case TokenKind::KwTxn:
    return "'txn'";
  case TokenKind::KwLet:
    return "'let'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwDisplay:
    return "'display'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwSkip:
    return "'skip'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Arrow:
    return "'->'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::BangEq:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEq:
    return "'>='";
  }
  return "?";
}

static TokenKind keywordKind(const std::string &S) {
  static const std::map<std::string, TokenKind> Keywords = {
      {"container", TokenKind::KwContainer},
      {"global", TokenKind::KwGlobal},
      {"session", TokenKind::KwSession},
      {"atomicset", TokenKind::KwAtomicSet},
      {"order", TokenKind::KwOrder},
      {"any", TokenKind::KwAny},
      {"txn", TokenKind::KwTxn},
      {"let", TokenKind::KwLet},
      {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},
      {"display", TokenKind::KwDisplay},
      {"return", TokenKind::KwReturn},
      {"skip", TokenKind::KwSkip},
  };
  auto It = Keywords.find(S);
  return It == Keywords.end() ? TokenKind::Ident : It->second;
}

bool c4::lexSource(const std::string &Source, std::vector<Token> &Tokens,
                   std::string &Error) {
  Tokens.clear();
  unsigned Line = 1;
  size_t I = 0, N = Source.size();
  auto Push = [&](TokenKind K, std::string Text = "", int64_t V = 0) {
    Tokens.push_back({K, std::move(Text), V, Line});
  };
  while (I < N) {
    char C = Source[I];
    if (C == '\n') {
      ++Line;
      ++I;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    if (C == '/' && I + 1 < N && Source[I + 1] == '/') {
      while (I < N && Source[I] != '\n')
        ++I;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = I;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '_'))
        ++I;
      std::string Text = Source.substr(Start, I - Start);
      TokenKind K = keywordKind(Text);
      Push(K, K == TokenKind::Ident ? Text : "");
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '-' && I + 1 < N &&
         std::isdigit(static_cast<unsigned char>(Source[I + 1])))) {
      size_t Start = I;
      if (C == '-')
        ++I;
      while (I < N && std::isdigit(static_cast<unsigned char>(Source[I])))
        ++I;
      Push(TokenKind::Int, "",
           std::stoll(Source.substr(Start, I - Start)));
      continue;
    }
    if (C == '"') {
      size_t Start = ++I;
      while (I < N && Source[I] != '"' && Source[I] != '\n')
        ++I;
      if (I == N || Source[I] != '"') {
        Error = strf("line %u: unterminated string literal", Line);
        return false;
      }
      Push(TokenKind::String, Source.substr(Start, I - Start));
      ++I;
      continue;
    }
    auto Two = [&](char Next, TokenKind IfTwo, TokenKind IfOne) {
      if (I + 1 < N && Source[I + 1] == Next) {
        Push(IfTwo);
        I += 2;
      } else {
        Push(IfOne);
        ++I;
      }
    };
    switch (C) {
    case '(':
      Push(TokenKind::LParen);
      ++I;
      break;
    case ')':
      Push(TokenKind::RParen);
      ++I;
      break;
    case '{':
      Push(TokenKind::LBrace);
      ++I;
      break;
    case '}':
      Push(TokenKind::RBrace);
      ++I;
      break;
    case ',':
      Push(TokenKind::Comma);
      ++I;
      break;
    case ';':
      Push(TokenKind::Semi);
      ++I;
      break;
    case '.':
      Push(TokenKind::Dot);
      ++I;
      break;
    case '-':
      Two('>', TokenKind::Arrow, TokenKind::Eof);
      if (Tokens.back().Kind == TokenKind::Eof) {
        Error = strf("line %u: stray '-'", Line);
        return false;
      }
      break;
    case '=':
      Two('=', TokenKind::EqEq, TokenKind::Assign);
      break;
    case '!':
      Two('=', TokenKind::BangEq, TokenKind::Bang);
      break;
    case '<':
      Two('=', TokenKind::LessEq, TokenKind::Less);
      break;
    case '>':
      Two('=', TokenKind::GreaterEq, TokenKind::Greater);
      break;
    default:
      Error = strf("line %u: unexpected character '%c'", Line, C);
      return false;
    }
  }
  Push(TokenKind::Eof);
  return true;
}
