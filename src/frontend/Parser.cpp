//===- frontend/Parser.cpp ------------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include "support/Format.h"

using namespace c4;

namespace {

class Parser {
public:
  Parser(const std::vector<Token> &Tokens, ProgramAST &AST,
         std::string &Error)
      : Tokens(Tokens), AST(AST), Error(Error) {}

  bool run() {
    while (!at(TokenKind::Eof)) {
      if (at(TokenKind::KwContainer)) {
        if (!parseContainer())
          return false;
      } else if (at(TokenKind::KwGlobal) || at(TokenKind::KwSession)) {
        if (!parseConsts())
          return false;
      } else if (at(TokenKind::KwAtomicSet)) {
        if (!parseAtomicSet())
          return false;
      } else if (at(TokenKind::KwOrder)) {
        if (!parseOrder())
          return false;
      } else if (at(TokenKind::KwTxn)) {
        if (!parseTxn())
          return false;
      } else {
        return fail("expected a declaration");
      }
    }
    return true;
  }

private:
  const Token &cur() const { return Tokens[Pos]; }
  bool at(TokenKind K) const { return cur().Kind == K; }
  Token take() { return Tokens[Pos++]; }

  bool fail(const std::string &Msg) {
    Error = strf("line %u: %s (found %s)", cur().Line, Msg.c_str(),
                 tokenKindName(cur().Kind));
    return false;
  }

  bool expect(TokenKind K, Token *Out = nullptr) {
    if (!at(K))
      return fail(strf("expected %s", tokenKindName(K)));
    Token T = take();
    if (Out)
      *Out = std::move(T);
    return true;
  }

  bool parseContainer() {
    unsigned Line = cur().Line;
    take(); // container
    Token Type, Name;
    if (!expect(TokenKind::Ident, &Type) || !expect(TokenKind::Ident, &Name))
      return false;
    if (!expect(TokenKind::Semi))
      return false;
    AST.Containers.push_back({Type.Text, Name.Text, Line});
    return true;
  }

  bool parseConsts() {
    bool Global = at(TokenKind::KwGlobal);
    take();
    while (true) {
      Token Name;
      if (!expect(TokenKind::Ident, &Name))
        return false;
      (Global ? AST.GlobalConsts : AST.SessionConsts).push_back(Name.Text);
      if (at(TokenKind::Comma)) {
        take();
        continue;
      }
      break;
    }
    return expect(TokenKind::Semi);
  }

  bool parseAtomicSet() {
    unsigned Line = cur().Line;
    take(); // atomicset
    Token Name;
    if (!expect(TokenKind::Ident, &Name) || !expect(TokenKind::LBrace))
      return false;
    AtomicSetDecl Decl{Name.Text, {}, Line};
    while (true) {
      Token C;
      if (!expect(TokenKind::Ident, &C))
        return false;
      Decl.Containers.push_back(C.Text);
      if (at(TokenKind::Comma)) {
        take();
        continue;
      }
      break;
    }
    if (!expect(TokenKind::RBrace))
      return false;
    AST.AtomicSets.push_back(std::move(Decl));
    return true;
  }

  bool parseOrder() {
    unsigned Line = cur().Line;
    take(); // order
    if (at(TokenKind::KwAny)) {
      take();
      AST.Orders.push_back({true, "", "", Line});
      return expect(TokenKind::Semi);
    }
    Token From, To;
    if (!expect(TokenKind::Ident, &From) || !expect(TokenKind::Arrow) ||
        !expect(TokenKind::Ident, &To))
      return false;
    AST.Orders.push_back({false, From.Text, To.Text, Line});
    return expect(TokenKind::Semi);
  }

  bool parseTxn() {
    unsigned Line = cur().Line;
    take(); // txn
    TxnDecl Txn;
    Txn.Line = Line;
    Token Name;
    if (!expect(TokenKind::Ident, &Name) || !expect(TokenKind::LParen))
      return false;
    Txn.Name = Name.Text;
    if (!at(TokenKind::RParen)) {
      while (true) {
        Token P;
        if (!expect(TokenKind::Ident, &P))
          return false;
        Txn.Params.push_back(P.Text);
        if (at(TokenKind::Comma)) {
          take();
          continue;
        }
        break;
      }
    }
    if (!expect(TokenKind::RParen))
      return false;
    if (!parseBlock(Txn.Body))
      return false;
    AST.Txns.push_back(std::move(Txn));
    return true;
  }

  bool parseBlock(std::vector<StmtPtr> &Out) {
    if (!expect(TokenKind::LBrace))
      return false;
    while (!at(TokenKind::RBrace)) {
      StmtPtr S;
      if (!parseStmt(S))
        return false;
      Out.push_back(std::move(S));
    }
    take(); // }
    return true;
  }

  bool parseExpr(Expr &E) {
    E.Line = cur().Line;
    if (at(TokenKind::Int)) {
      E.Kind = Expr::IntLit;
      E.Value = take().Value;
      return true;
    }
    if (at(TokenKind::String)) {
      E.Kind = Expr::StringLit;
      E.Text = take().Text;
      return true;
    }
    if (at(TokenKind::Ident)) {
      E.Kind = Expr::Name;
      E.Text = take().Text;
      return true;
    }
    return fail("expected an argument expression");
  }

  bool parseArgs(std::vector<Expr> &Args) {
    if (!expect(TokenKind::LParen))
      return false;
    if (!at(TokenKind::RParen)) {
      while (true) {
        Expr E;
        if (!parseExpr(E))
          return false;
        Args.push_back(std::move(E));
        if (at(TokenKind::Comma)) {
          take();
          continue;
        }
        break;
      }
    }
    return expect(TokenKind::RParen);
  }

  /// Parses `Container.op(args)` into \p S.
  bool parseCallInto(Stmt &S) {
    Token C, Op;
    if (!expect(TokenKind::Ident, &C) || !expect(TokenKind::Dot) ||
        !expect(TokenKind::Ident, &Op))
      return false;
    S.Container = C.Text;
    S.Op = Op.Text;
    return parseArgs(S.Args);
  }

  bool parseCond(CondExpr &C) {
    C.Line = cur().Line;
    if (at(TokenKind::Bang)) {
      take();
      Token Name;
      if (!expect(TokenKind::Ident, &Name))
        return false;
      C.Cmp = CondExpr::Falsy;
      C.Name = Name.Text;
      return true;
    }
    Token Name;
    if (!expect(TokenKind::Ident, &Name))
      return false;
    C.Name = Name.Text;
    switch (cur().Kind) {
    case TokenKind::EqEq:
      C.Cmp = CondExpr::Eq;
      break;
    case TokenKind::BangEq:
      C.Cmp = CondExpr::Ne;
      break;
    case TokenKind::Less:
      C.Cmp = CondExpr::Lt;
      break;
    case TokenKind::LessEq:
      C.Cmp = CondExpr::Le;
      break;
    case TokenKind::Greater:
      C.Cmp = CondExpr::Gt;
      break;
    case TokenKind::GreaterEq:
      C.Cmp = CondExpr::Ge;
      break;
    default:
      C.Cmp = CondExpr::Truthy;
      return true;
    }
    take();
    return parseExpr(C.Rhs);
  }

  bool parseStmt(StmtPtr &Out) {
    Out = std::make_unique<Stmt>();
    Stmt &S = *Out;
    S.Line = cur().Line;
    if (at(TokenKind::KwLet)) {
      take();
      Token Name;
      if (!expect(TokenKind::Ident, &Name) || !expect(TokenKind::Assign))
        return false;
      S.Kind = Stmt::Let;
      S.LetName = Name.Text;
      if (!parseCallInto(S))
        return false;
      return expect(TokenKind::Semi);
    }
    if (at(TokenKind::KwIf)) {
      take();
      S.Kind = Stmt::If;
      if (!expect(TokenKind::LParen) || !parseCond(S.Cond) ||
          !expect(TokenKind::RParen))
        return false;
      if (!parseBlock(S.Then))
        return false;
      if (at(TokenKind::KwElse)) {
        take();
        if (!parseBlock(S.Else))
          return false;
      }
      return true;
    }
    if (at(TokenKind::KwDisplay)) {
      take();
      S.Kind = Stmt::Display;
      Token Name;
      if (!expect(TokenKind::LParen) || !expect(TokenKind::Ident, &Name) ||
          !expect(TokenKind::RParen))
        return false;
      S.ValueName = Name.Text;
      return expect(TokenKind::Semi);
    }
    if (at(TokenKind::KwReturn)) {
      take();
      S.Kind = Stmt::Return;
      if (at(TokenKind::Ident))
        S.ValueName = take().Text;
      else if (at(TokenKind::Int))
        take();
      return expect(TokenKind::Semi);
    }
    if (at(TokenKind::KwSkip)) {
      take();
      S.Kind = Stmt::Skip;
      return expect(TokenKind::Semi);
    }
    S.Kind = Stmt::Call;
    if (!parseCallInto(S))
      return false;
    return expect(TokenKind::Semi);
  }

  const std::vector<Token> &Tokens;
  ProgramAST &AST;
  std::string &Error;
  size_t Pos = 0;
};

} // namespace

bool c4::parseProgram(const std::vector<Token> &Tokens, ProgramAST &AST,
                      std::string &Error) {
  Parser P(Tokens, AST, Error);
  return P.run();
}
