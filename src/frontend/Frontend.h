//===- frontend/Frontend.h - C4L compilation entry point --------*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-call front end: compiles C4L source into a schema plus abstract
/// history (the analyzer's input), inferring argument facts, argument
/// equalities (paper §8 / Fig. 10), control-flow guards (Fig. 11),
/// display-code marks and atomic sets (§9.1).
///
//===----------------------------------------------------------------------===//

#ifndef C4_FRONTEND_FRONTEND_H
#define C4_FRONTEND_FRONTEND_H

#include "abstract/AbstractHistory.h"
#include "frontend/AST.h"
#include "support/Interner.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace c4 {

/// The compiled form of a C4L program. Sub-objects are heap-allocated so
/// that internal cross-references survive moves.
struct CompiledProgram {
  std::unique_ptr<TypeRegistry> Registry;
  std::unique_ptr<Schema> Sch;
  std::unique_ptr<AbstractHistory> History;
  std::unique_ptr<Interner> Strings;
  /// The parsed syntax, retained so the store interpreter (src/store) can
  /// execute the program concretely.
  std::unique_ptr<ProgramAST> AST;
  /// Atomic sets as groups of container ids (empty if none declared).
  std::vector<std::vector<unsigned>> AtomicSets;
  /// Front-end time in seconds (the FE column of Table 1).
  double FrontendSeconds = 0;
  /// Per-stage front-end timing (sums to ~FrontendSeconds).
  double LexSeconds = 0, ParseSeconds = 0, BuildSeconds = 0;
};

/// Result of compilation: a program or an error message.
struct CompileResult {
  std::optional<CompiledProgram> Program;
  std::string Error;
  bool ok() const { return Program.has_value(); }
};

/// Compiles C4L source text.
CompileResult compileC4L(const std::string &Source);

/// Rebuilds \p P's schema, abstract history and atomic sets from \p AST,
/// reusing the program's type registry and string interner (so interned
/// string constants keep their ids). Used by the pass pipeline after AST
/// transformations. On failure, returns false with \p Error set and leaves
/// \p P unchanged.
bool rebuildFromAST(CompiledProgram &P, const ProgramAST &AST,
                    std::string &Error);

} // namespace c4

#endif // C4_FRONTEND_FRONTEND_H
