//===- frontend/Token.h - C4L tokens ----------------------------*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token definitions for C4L, the small transactional language used as the
/// analysis front end (DESIGN.md explains how C4L substitutes for the
/// paper's TouchDevelop and Cassandra/Java front ends).
///
//===----------------------------------------------------------------------===//

#ifndef C4_FRONTEND_TOKEN_H
#define C4_FRONTEND_TOKEN_H

#include <cstdint>
#include <string>

namespace c4 {

enum class TokenKind : uint8_t {
  Eof,
  Ident,
  Int,
  String,
  // Keywords.
  KwContainer,
  KwGlobal,
  KwSession,
  KwAtomicSet,
  KwOrder,
  KwAny,
  KwTxn,
  KwLet,
  KwIf,
  KwElse,
  KwDisplay,
  KwReturn,
  KwSkip,
  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  Comma,
  Semi,
  Dot,
  Arrow, // ->
  Assign,
  Bang,
  EqEq,
  BangEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,
};

/// Returns a human-readable name for diagnostics.
const char *tokenKindName(TokenKind K);

struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string Text;  ///< identifier or string contents
  int64_t Value = 0; ///< integer literal value
  unsigned Line = 1;
};

} // namespace c4

#endif // C4_FRONTEND_TOKEN_H
