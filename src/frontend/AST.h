//===- frontend/AST.h - C4L abstract syntax ---------------------*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract syntax of C4L programs.
///
/// \code
///   container map M;               // schema
///   session u;  global admin;      // symbolic constants (VarL / VarG)
///   atomicset data { M }           // §9.1 atomic sets
///   order produce -> consume;      // abstract session order (default: any)
///
///   txn produce(x, v) {
///     M.put(x, v);
///     let n = M.size();
///     if (n < 10) { M.inc("count", 1); }
///     display(n);
///     return n;
///   }
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef C4_FRONTEND_AST_H
#define C4_FRONTEND_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace c4 {

/// An argument expression: literal, string, or a name (parameter, let
/// variable, session/global constant).
struct Expr {
  enum KindTy : uint8_t { IntLit, StringLit, Name } Kind = IntLit;
  int64_t Value = 0;
  std::string Text;
  unsigned Line = 1;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// A branch condition: `name`, `!name`, or `name <cmp> literal`.
struct CondExpr {
  enum CmpTy : uint8_t { Truthy, Falsy, Eq, Ne, Lt, Le, Gt, Ge } Cmp = Truthy;
  std::string Name;
  Expr Rhs; ///< literal side for the comparison forms
  unsigned Line = 1;
};

struct Stmt {
  enum KindTy : uint8_t { Call, Let, If, Display, Return, Skip } Kind = Call;
  unsigned Line = 1;
  // Call / Let.
  std::string Container;
  std::string Op;
  std::vector<Expr> Args;
  std::string LetName; ///< Let only
  // If.
  CondExpr Cond;
  std::vector<StmtPtr> Then;
  std::vector<StmtPtr> Else;
  // Display / Return.
  std::string ValueName; ///< display target / optional return name
};

struct TxnDecl {
  std::string Name;
  std::vector<std::string> Params;
  std::vector<StmtPtr> Body;
  unsigned Line = 1;
};

struct ContainerDeclAST {
  std::string TypeName;
  std::string Name;
  unsigned Line = 1;
};

struct AtomicSetDecl {
  std::string Name;
  std::vector<std::string> Containers;
  unsigned Line = 1;
};

struct OrderDecl {
  bool Any = false;
  std::string From, To;
  unsigned Line = 1;
};

struct ProgramAST {
  std::vector<ContainerDeclAST> Containers;
  std::vector<std::string> SessionConsts;
  std::vector<std::string> GlobalConsts;
  std::vector<AtomicSetDecl> AtomicSets;
  std::vector<OrderDecl> Orders;
  std::vector<TxnDecl> Txns;
};

} // namespace c4

#endif // C4_FRONTEND_AST_H
