//===- frontend/Lexer.h - C4L lexer -----------------------------*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for C4L. Supports // line comments, decimal integer
/// literals (with optional minus), double-quoted strings, identifiers and
/// the keywords/punctuation of Token.h.
///
//===----------------------------------------------------------------------===//

#ifndef C4_FRONTEND_LEXER_H
#define C4_FRONTEND_LEXER_H

#include "frontend/Token.h"

#include <string>
#include <vector>

namespace c4 {

/// Tokenizes \p Source. On error, returns false and sets \p Error.
bool lexSource(const std::string &Source, std::vector<Token> &Tokens,
               std::string &Error);

} // namespace c4

#endif // C4_FRONTEND_LEXER_H
