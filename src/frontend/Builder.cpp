//===- frontend/Builder.cpp - AST -> abstract history ---------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract interpreter of the C4L front end. Each syntactic store
/// operation becomes an abstract event. The builder tracks, per transaction,
/// where every value comes from (parameter, let-bound query result, literal,
/// session/global constant) and emits
///
///  * argument facts for literals and symbolic constants,
///  * pair invariants chaining all argument slots fed by the same local
///    value (Fig. 10's inferred equalities, including query-result flow
///    into later arguments, which drives the fresh-value reasoning of
///    Fig. 12),
///  * guarded event-order edges for branches whose condition tests the
///    immediately available query result (Fig. 11's control-flow
///    constraints), with skip markers for empty branches,
///  * display marks for query results that only feed display().
///
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"

#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "support/Format.h"

#include <chrono>
#include <map>

using namespace c4;

namespace {

/// Where a named value in a transaction comes from.
struct ValueSource {
  enum KindTy : uint8_t {
    Param,        ///< transaction parameter (free, equality-tracked)
    LetQuery,     ///< result of a let-bound operation (event + ret slot)
    SessionConst, ///< VarL
    GlobalConst   ///< VarG
  } Kind = Param;
  unsigned Class = 0; ///< equality class for Param/LetQuery
  unsigned Var = 0;   ///< variable id for the constants
  unsigned Event = 0; ///< producing event for LetQuery
};

class Builder {
public:
  Builder(const ProgramAST &AST, CompiledProgram &Out, std::string &Error)
      : AST(AST), Out(Out), Error(Error) {}

  bool run();

private:
  bool fail(unsigned Line, const std::string &Msg) {
    Error = strf("line %u: %s", Line, Msg.c_str());
    return false;
  }

  bool buildSchema();
  bool buildTxn(const TxnDecl &Txn);
  /// Builds a statement list; \p Entry is the incoming event. On success
  /// sets \p Exit to the last event of the chain.
  bool buildStmts(const std::vector<StmtPtr> &Stmts, unsigned Txn,
                  unsigned Entry, unsigned &Exit);
  bool buildCall(const Stmt &S, unsigned Txn, unsigned Prev, unsigned &Event);
  /// Builds the guard condition over the ret slot of \p Query.
  bool guardCond(const CondExpr &C, unsigned QueryRetSlot, bool Negate,
                 Cond &Out);

  const ProgramAST &AST;
  CompiledProgram &Out;
  std::string &Error;

  // Global name tables.
  std::map<std::string, unsigned> SessionVars, GlobalVars;
  std::map<std::string, unsigned> TxnIds;

  // Per-transaction state.
  std::map<std::string, ValueSource> Env;
  unsigned NextClass = 0;
  /// Slots fed by each equality class: (event, slot).
  std::map<unsigned, std::vector<std::pair<unsigned, unsigned>>> ClassSlots;
  /// Per class: the producing (event, ret slot) for let-bound results.
  std::map<unsigned, std::pair<unsigned, unsigned>> ClassProducer;
};

bool Builder::run() {
  if (!buildSchema())
    return false;
  for (const std::string &Name : AST.SessionConsts) {
    if (SessionVars.count(Name) || GlobalVars.count(Name))
      return fail(1, "duplicate constant '" + Name + "'");
    SessionVars.emplace(Name, Out.History->addLocalVar());
  }
  for (const std::string &Name : AST.GlobalConsts) {
    if (SessionVars.count(Name) || GlobalVars.count(Name))
      return fail(1, "duplicate constant '" + Name + "'");
    GlobalVars.emplace(Name, Out.History->addGlobalVar());
  }
  for (const TxnDecl &Txn : AST.Txns) {
    if (TxnIds.count(Txn.Name))
      return fail(Txn.Line, "duplicate transaction '" + Txn.Name + "'");
    if (!buildTxn(Txn))
      return false;
  }
  // Atomic sets.
  for (const AtomicSetDecl &Decl : AST.AtomicSets) {
    std::vector<unsigned> Set;
    for (const std::string &C : Decl.Containers) {
      int Id = Out.Sch->lookup(C);
      if (Id < 0)
        return fail(Decl.Line, "unknown container '" + C + "'");
      Set.push_back(static_cast<unsigned>(Id));
    }
    Out.AtomicSets.push_back(std::move(Set));
  }
  // Session order: default (or explicit 'order any') is unrestricted.
  bool Any = AST.Orders.empty();
  for (const OrderDecl &O : AST.Orders)
    Any = Any || O.Any;
  if (Any) {
    Out.History->allowAllSo();
    return true;
  }
  for (const OrderDecl &O : AST.Orders) {
    auto From = TxnIds.find(O.From);
    auto To = TxnIds.find(O.To);
    if (From == TxnIds.end())
      return fail(O.Line, "unknown transaction '" + O.From + "'");
    if (To == TxnIds.end())
      return fail(O.Line, "unknown transaction '" + O.To + "'");
    Out.History->setMaySo(From->second, To->second);
  }
  return true;
}

bool Builder::buildSchema() {
  for (const ContainerDeclAST &C : AST.Containers) {
    const DataTypeSpec *Type = Out.Registry->lookup(C.TypeName);
    if (!Type)
      return fail(C.Line, "unknown data type '" + C.TypeName + "'");
    if (Out.Sch->lookup(C.Name) >= 0)
      return fail(C.Line, "duplicate container '" + C.Name + "'");
    Out.Sch->addContainer(C.Name, Type);
  }
  return true;
}

bool Builder::buildTxn(const TxnDecl &Txn) {
  Env.clear();
  ClassSlots.clear();
  ClassProducer.clear();
  NextClass = 0;

  unsigned Id = Out.History->addTransaction(Txn.Name);
  TxnIds.emplace(Txn.Name, Id);
  for (const std::string &P : Txn.Params) {
    if (Env.count(P))
      return fail(Txn.Line, "duplicate parameter '" + P + "'");
    if (SessionVars.count(P) || GlobalVars.count(P))
      return fail(Txn.Line, "parameter '" + P + "' shadows a constant");
    Env[P] = {ValueSource::Param, NextClass++, 0, 0};
  }

  unsigned Exit = 0;
  if (!buildStmts(Txn.Body, Id, Out.History->entry(Id), Exit))
    return false;
  unsigned ExitMarker = Out.History->addMarker(Id, "exit");
  Out.History->addEo(Exit, ExitMarker);

  // Emit the equality invariants: chain all slots of each class, starting
  // from the producing ret slot for let-bound results.
  for (const auto &[Class, Slots] : ClassSlots) {
    std::vector<std::pair<unsigned, unsigned>> Chain;
    auto Producer = ClassProducer.find(Class);
    if (Producer != ClassProducer.end())
      Chain.push_back(Producer->second);
    Chain.insert(Chain.end(), Slots.begin(), Slots.end());
    for (size_t I = 0; I + 1 < Chain.size(); ++I)
      Out.History->addInv(
          Chain[I].first, Chain[I + 1].first,
          Cond::eq(Term::argSrc(Chain[I].second),
                   Term::argTgt(Chain[I + 1].second)));
  }
  return true;
}

bool Builder::guardCond(const CondExpr &C, unsigned QueryRetSlot, bool Negate,
                        Cond &Out) {
  Term Ret = Term::argSrc(QueryRetSlot);
  Cond Base;
  switch (C.Cmp) {
  case CondExpr::Truthy:
    Base = Cond::ne(Ret, Term::constant(0));
    break;
  case CondExpr::Falsy:
    Base = Cond::eq(Ret, Term::constant(0));
    break;
  default: {
    if (C.Rhs.Kind == Expr::Name) {
      // Comparison against a parameter or constant: the branch outcome is
      // not expressible over the query's slots alone; treat the branch as
      // nondeterministic (sound over-approximation).
      Out = Cond::t();
      return true;
    }
    int64_t V = C.Rhs.Kind == Expr::IntLit
                    ? C.Rhs.Value
                    : this->Out.Strings->intern(C.Rhs.Text);
    Term Lit = Term::constant(V);
    switch (C.Cmp) {
    case CondExpr::Eq:
      Base = Cond::eq(Ret, Lit);
      break;
    case CondExpr::Ne:
      Base = Cond::ne(Ret, Lit);
      break;
    case CondExpr::Lt:
      Base = Cond::lt(Ret, Lit);
      break;
    case CondExpr::Le:
      Base = Cond::le(Ret, Lit);
      break;
    case CondExpr::Gt:
      Base = !Cond::le(Ret, Lit);
      break;
    case CondExpr::Ge:
      Base = !Cond::lt(Ret, Lit);
      break;
    default:
      break;
    }
    break;
  }
  }
  Out = Negate ? !Base : Base;
  return true;
}

bool Builder::buildCall(const Stmt &S, unsigned Txn, unsigned Prev,
                        unsigned &Event) {
  int ContainerId = Out.Sch->lookup(S.Container);
  if (ContainerId < 0)
    return fail(S.Line, "unknown container '" + S.Container + "'");
  const DataTypeSpec *Type =
      Out.Sch->container(static_cast<unsigned>(ContainerId)).Type;
  const OpSig *Op = Type->findOp(S.Op);
  if (!Op)
    return fail(S.Line, "container '" + S.Container + "' of type '" +
                            Type->name() + "' has no operation '" + S.Op +
                            "'");
  if (S.Args.size() != Op->NumArgs)
    return fail(S.Line, strf("operation '%s' expects %u argument(s), got "
                             "%zu",
                             S.Op.c_str(), Op->NumArgs, S.Args.size()));
  if (S.Kind == Stmt::Let && !Op->HasRet)
    return fail(S.Line, "operation '" + S.Op + "' returns nothing");

  // Resolve arguments into facts and equality-class memberships.
  AbsFacts Facts(Op->numVals());
  std::vector<std::pair<unsigned, unsigned>> PendingClassSlots; // class,slot
  for (unsigned I = 0; I != S.Args.size(); ++I) {
    const Expr &E = S.Args[I];
    switch (E.Kind) {
    case Expr::IntLit:
      Facts[I] = AbsFact::constant(E.Value);
      break;
    case Expr::StringLit:
      Facts[I] = AbsFact::constant(Out.Strings->intern(E.Text));
      break;
    case Expr::Name: {
      auto SV = SessionVars.find(E.Text);
      if (SV != SessionVars.end()) {
        Facts[I] = AbsFact::localVar(SV->second);
        break;
      }
      auto GV = GlobalVars.find(E.Text);
      if (GV != GlobalVars.end()) {
        Facts[I] = AbsFact::globalVar(GV->second);
        break;
      }
      auto It = Env.find(E.Text);
      if (It == Env.end())
        return fail(E.Line, "unknown name '" + E.Text + "'");
      PendingClassSlots.push_back({It->second.Class, I});
      break;
    }
    }
  }

  Event = Out.History->addEvent(Txn, static_cast<unsigned>(ContainerId),
                                Type->opIndex(*Op), std::move(Facts));
  Out.History->addEo(Prev, Event);
  for (auto [Class, Slot] : PendingClassSlots)
    ClassSlots[Class].push_back({Event, Slot});

  if (S.Kind == Stmt::Let) {
    unsigned Class = NextClass++;
    Env[S.LetName] = {ValueSource::LetQuery, Class, 0, Event};
    ClassProducer[Class] = {Event, Op->NumArgs};
  }
  return true;
}

bool Builder::buildStmts(const std::vector<StmtPtr> &Stmts, unsigned Txn,
                         unsigned Entry, unsigned &Exit) {
  AbstractHistory &H = *Out.History;
  unsigned Prev = Entry;
  for (const StmtPtr &SP : Stmts) {
    const Stmt &S = *SP;
    switch (S.Kind) {
    case Stmt::Call:
    case Stmt::Let: {
      unsigned Event = 0;
      if (!buildCall(S, Txn, Prev, Event))
        return false;
      Prev = Event;
      break;
    }
    case Stmt::If: {
      // Resolve the condition: if it tests a let-bound query result we
      // emit symbolic guards; otherwise the branch is nondeterministic.
      auto It = Env.find(S.Cond.Name);
      if (It == Env.end() && !SessionVars.count(S.Cond.Name) &&
          !GlobalVars.count(S.Cond.Name))
        return fail(S.Cond.Line, "unknown name '" + S.Cond.Name + "'");
      bool Symbolic =
          It != Env.end() && It->second.Kind == ValueSource::LetQuery;
      unsigned Query = Symbolic ? It->second.Event : 0;
      unsigned RetSlot =
          Symbolic ? H.op(Query).NumArgs : 0;
      Cond ThenC = Cond::t(), ElseC = Cond::t();
      if (Symbolic) {
        if (!guardCond(S.Cond, RetSlot, /*Negate=*/false, ThenC) ||
            !guardCond(S.Cond, RetSlot, /*Negate=*/true, ElseC))
          return false;
      }

      // Build both arms with explicit skip markers for empty arms, then a
      // join marker. The guard sits on the edge when the query is the
      // immediate predecessor; otherwise it becomes a pair invariant
      // between the query and the arm's first event.
      auto BuildArm = [&](const std::vector<StmtPtr> &Body, Cond Guard,
                          const char *SkipLabel,
                          unsigned &ArmExit) -> bool {
        unsigned Head;
        unsigned BodyEntry;
        if (Body.empty()) {
          Head = H.addMarker(Txn, SkipLabel);
          BodyEntry = Head;
          ArmExit = Head;
        } else {
          // Temporarily route through a marker so the arm has a single
          // head even if its first statement is a nested if.
          Head = H.addMarker(Txn, std::string(SkipLabel) + ".head");
          BodyEntry = Head;
          if (!buildStmts(Body, Txn, Head, ArmExit))
            return false;
        }
        if (Symbolic && Prev == Query) {
          H.addEo(Prev, BodyEntry, Guard);
        } else {
          H.addEo(Prev, BodyEntry);
          if (Symbolic)
            H.addInv(Query, BodyEntry, Guard);
        }
        return true;
      };
      unsigned ThenExit = 0, ElseExit = 0;
      if (!BuildArm(S.Then, ThenC, "then", ThenExit) ||
          !BuildArm(S.Else, ElseC, "else", ElseExit))
        return false;
      unsigned Join = H.addMarker(Txn, "join");
      H.addEo(ThenExit, Join);
      H.addEo(ElseExit, Join);
      Prev = Join;
      break;
    }
    case Stmt::Display: {
      auto It = Env.find(S.ValueName);
      if (It == Env.end() || It->second.Kind != ValueSource::LetQuery)
        return fail(S.Line,
                    "display() expects a let-bound query result");
      // Mark the producing query as display-only (§9.1).
      H.setDisplay(It->second.Event, true);
      break;
    }
    case Stmt::Return:
    case Stmt::Skip:
      break;
    }
  }
  Exit = Prev;
  return true;
}

} // namespace

CompileResult c4::compileC4L(const std::string &Source) {
  using Clock = std::chrono::steady_clock;
  auto Seconds = [](Clock::time_point From, Clock::time_point To) {
    return std::chrono::duration<double>(To - From).count();
  };
  auto Start = Clock::now();
  CompileResult Result;

  std::vector<Token> Tokens;
  if (!lexSource(Source, Tokens, Result.Error))
    return Result;
  auto Lexed = Clock::now();
  auto AST = std::make_unique<ProgramAST>();
  if (!parseProgram(Tokens, *AST, Result.Error))
    return Result;
  auto Parsed = Clock::now();

  CompiledProgram P;
  P.Registry = std::make_unique<TypeRegistry>();
  P.Sch = std::make_unique<Schema>();
  P.Strings = std::make_unique<Interner>();
  // The history needs the schema to exist first; containers are added by
  // the builder before any events reference them.
  P.History = std::make_unique<AbstractHistory>(*P.Sch);

  Builder B(*AST, P, Result.Error);
  if (!B.run())
    return Result;
  P.AST = std::move(AST);

  auto End = Clock::now();
  P.LexSeconds = Seconds(Start, Lexed);
  P.ParseSeconds = Seconds(Lexed, Parsed);
  P.BuildSeconds = Seconds(Parsed, End);
  P.FrontendSeconds = Seconds(Start, End);
  Result.Program = std::move(P);
  return Result;
}

bool c4::rebuildFromAST(CompiledProgram &P, const ProgramAST &AST,
                        std::string &Error) {
  // Build into fresh schema/history objects and swap them in only on
  // success, so a failed rebuild leaves the program untouched. The registry
  // and interner are shared: re-interning a known string returns its
  // original id, keeping Const facts stable across rebuilds.
  auto NewSch = std::make_unique<Schema>();
  auto NewHistory = std::make_unique<AbstractHistory>(*NewSch);
  std::vector<std::vector<unsigned>> SavedSets = std::move(P.AtomicSets);
  P.AtomicSets.clear();
  std::swap(P.Sch, NewSch);
  std::swap(P.History, NewHistory);
  Builder B(AST, P, Error);
  if (B.run())
    return true;
  std::swap(P.Sch, NewSch);
  std::swap(P.History, NewHistory);
  P.AtomicSets = std::move(SavedSets);
  return false;
}
