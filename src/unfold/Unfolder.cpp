//===- unfold/Unfolder.cpp ------------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "unfold/Unfolder.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

using namespace c4;

std::vector<unsigned> Unfolding::origTxnSet() const {
  std::vector<unsigned> S = OrigTxn;
  std::sort(S.begin(), S.end());
  S.erase(std::unique(S.begin(), S.end()), S.end());
  return S;
}

namespace {

/// Working representation of a transaction's eo graph on local indices.
struct LocalGraph {
  std::vector<unsigned> Orig;
  std::vector<AbstractConstraint> Eo;   // local indices
  std::vector<AbstractConstraint> Invs; // local indices
};

/// Finds one non-trivial SCC of the local eo graph; returns its members or
/// an empty vector if the graph is acyclic.
std::vector<unsigned> findCyclicSCC(const LocalGraph &G) {
  unsigned N = static_cast<unsigned>(G.Orig.size());
  // Simple O(N * E) reachability-based SCC detection (graphs are tiny).
  auto Reaches = [&](unsigned From, unsigned To) {
    std::vector<bool> Seen(N, false);
    std::vector<unsigned> Work{From};
    while (!Work.empty()) {
      unsigned V = Work.back();
      Work.pop_back();
      for (const AbstractConstraint &E : G.Eo) {
        if (E.Src != V || Seen[E.Tgt])
          continue;
        if (E.Tgt == To)
          return true;
        Seen[E.Tgt] = true;
        Work.push_back(E.Tgt);
      }
    }
    return false;
  };
  for (unsigned V = 0; V != N; ++V) {
    if (!Reaches(V, V))
      continue;
    std::vector<unsigned> SCC;
    for (unsigned W = 0; W != N; ++W)
      if ((W == V) || (Reaches(V, W) && Reaches(W, V)))
        SCC.push_back(W);
    return SCC;
  }
  return {};
}

/// Applies one Definition 4 unfolding step to the component \p V.
LocalGraph unfoldOneSCC(const LocalGraph &G, const std::vector<unsigned> &V) {
  unsigned N = static_cast<unsigned>(G.Orig.size());
  std::vector<bool> InV(N, false);
  for (unsigned X : V)
    InV[X] = true;

  // Classify edges: I (into V), O (out of V), and inside V either B (back
  // edges of a DFS) or R (the rest). Edges not touching V are untouched.
  std::vector<unsigned> IEdges, OEdges, BEdges, REdges, Others;
  // DFS over V to find back edges. Roots: targets of incoming edges, or
  // the first member.
  std::vector<unsigned> Roots;
  for (unsigned EI = 0; EI != G.Eo.size(); ++EI) {
    const AbstractConstraint &E = G.Eo[EI];
    if (!InV[E.Src] && InV[E.Tgt])
      Roots.push_back(E.Tgt);
  }
  if (Roots.empty())
    Roots.push_back(V[0]);

  enum Color { White, Gray, Black };
  std::vector<Color> Colors(N, White);
  std::vector<bool> IsBack(G.Eo.size(), false);
  // Iterative DFS restricted to V; classifies edges to Gray nodes as back.
  struct Frame {
    unsigned Node;
    unsigned Next;
  };
  for (unsigned Root : Roots) {
    if (Colors[Root] != White)
      continue;
    std::vector<Frame> Stack{{Root, 0}};
    Colors[Root] = Gray;
    while (!Stack.empty()) {
      Frame &F = Stack.back();
      bool Descended = false;
      for (; F.Next != G.Eo.size(); ++F.Next) {
        const AbstractConstraint &E = G.Eo[F.Next];
        if (E.Src != F.Node || !InV[E.Tgt])
          continue;
        if (Colors[E.Tgt] == Gray) {
          IsBack[F.Next] = true;
          continue;
        }
        if (Colors[E.Tgt] == White) {
          Colors[E.Tgt] = Gray;
          unsigned Child = E.Tgt;
          ++F.Next;
          Stack.push_back({Child, 0});
          Descended = true;
          break;
        }
      }
      if (!Descended && !Stack.empty() && Stack.back().Next == G.Eo.size()) {
        Colors[Stack.back().Node] = Black;
        Stack.pop_back();
      }
    }
  }

  for (unsigned EI = 0; EI != G.Eo.size(); ++EI) {
    const AbstractConstraint &E = G.Eo[EI];
    bool SrcIn = InV[E.Src], TgtIn = InV[E.Tgt];
    if (!SrcIn && !TgtIn)
      Others.push_back(EI);
    else if (!SrcIn && TgtIn)
      IEdges.push_back(EI);
    else if (SrcIn && !TgtIn)
      OEdges.push_back(EI);
    else if (IsBack[EI])
      BEdges.push_back(EI);
    else
      REdges.push_back(EI);
  }

  // Build the unfolded graph: V is replaced by copies V1 and V2.
  LocalGraph Out;
  std::vector<unsigned> Copy1(N, ~0u), Copy2(N, ~0u), Keep(N, ~0u);
  for (unsigned X = 0; X != N; ++X) {
    if (InV[X])
      continue;
    Keep[X] = static_cast<unsigned>(Out.Orig.size());
    Out.Orig.push_back(G.Orig[X]);
  }
  for (unsigned X : V) {
    Copy1[X] = static_cast<unsigned>(Out.Orig.size());
    Out.Orig.push_back(G.Orig[X]);
  }
  for (unsigned X : V) {
    Copy2[X] = static_cast<unsigned>(Out.Orig.size());
    Out.Orig.push_back(G.Orig[X]);
  }

  auto AddEdge = [&](unsigned S, unsigned T, Cond C) {
    Out.Eo.push_back({S, T, std::move(C)});
  };

  // Untouched edges keep their guards.
  for (unsigned EI : Others)
    AddEdge(Keep[G.Eo[EI].Src], Keep[G.Eo[EI].Tgt], G.Eo[EI].C);

  // Source/target vertex sets of I, O, B.
  std::set<unsigned> Is, Bt, Bs, Ot;
  for (unsigned EI : IEdges)
    Is.insert(G.Eo[EI].Src);
  for (unsigned EI : BEdges) {
    Bs.insert(G.Eo[EI].Src);
    Bt.insert(G.Eo[EI].Tgt);
  }
  for (unsigned EI : OEdges)
    Ot.insert(G.Eo[EI].Tgt);

  // I' = (1 x i1)[I ∪ Is × Bt], guards dropped.
  std::set<std::pair<unsigned, unsigned>> Added;
  auto AddOnce = [&](unsigned S, unsigned T) {
    if (Added.insert({S, T}).second)
      AddEdge(S, T, Cond::t());
  };
  for (unsigned EI : IEdges)
    AddOnce(Keep[G.Eo[EI].Src], Copy1[G.Eo[EI].Tgt]);
  for (unsigned S : Is)
    for (unsigned T : Bt)
      AddOnce(Keep[S], Copy1[T]);
  // B' = (i1 x i2)[Bs × Bt].
  for (unsigned S : Bs)
    for (unsigned T : Bt)
      AddOnce(Copy1[S], Copy2[T]);
  // O' = (i1 x 1)[O] ∪ (i2 x 1)[O ∪ Bs × Ot].
  for (unsigned EI : OEdges) {
    AddOnce(Copy1[G.Eo[EI].Src], Keep[G.Eo[EI].Tgt]);
    AddOnce(Copy2[G.Eo[EI].Src], Keep[G.Eo[EI].Tgt]);
  }
  for (unsigned S : Bs)
    for (unsigned T : Ot)
      AddOnce(Copy2[S], Keep[T]);
  // R' = (i1 x i1)[R] ∪ (i2 x i2)[R], keeping invariants (guards).
  for (unsigned EI : REdges) {
    AddEdge(Copy1[G.Eo[EI].Src], Copy1[G.Eo[EI].Tgt], G.Eo[EI].C);
    AddEdge(Copy2[G.Eo[EI].Src], Copy2[G.Eo[EI].Tgt], G.Eo[EI].C);
  }

  // Pair invariants: keep outside pairs; duplicate inside pairs per copy;
  // drop boundary-crossing pairs (sound: fewer constraints).
  for (const AbstractConstraint &Inv : G.Invs) {
    bool SrcIn = InV[Inv.Src], TgtIn = InV[Inv.Tgt];
    if (!SrcIn && !TgtIn)
      Out.Invs.push_back({Keep[Inv.Src], Keep[Inv.Tgt], Inv.C});
    else if (SrcIn && TgtIn) {
      Out.Invs.push_back({Copy1[Inv.Src], Copy1[Inv.Tgt], Inv.C});
      Out.Invs.push_back({Copy2[Inv.Src], Copy2[Inv.Tgt], Inv.C});
    }
  }
  return Out;
}

} // namespace

UnfoldedTxnTemplate c4::unfoldTransaction(const AbstractHistory &A,
                                          unsigned Txn) {
  const AbstractTxn &T = A.txn(Txn);
  // Map global event ids to local indices.
  LocalGraph G;
  std::vector<unsigned> LocalOf(A.numEvents(), ~0u);
  for (unsigned E : T.Events) {
    LocalOf[E] = static_cast<unsigned>(G.Orig.size());
    G.Orig.push_back(E);
  }
  for (const AbstractConstraint &E : T.Eo)
    G.Eo.push_back({LocalOf[E.Src], LocalOf[E.Tgt], E.C});
  for (const AbstractConstraint &E : T.Invs)
    G.Invs.push_back({LocalOf[E.Src], LocalOf[E.Tgt], E.C});

  // Repeatedly unfold cyclic SCCs until the graph is a DAG. Each step
  // removes one cyclic component, so this terminates.
  for (unsigned Guard = 0; Guard != 64; ++Guard) {
    std::vector<unsigned> SCC = findCyclicSCC(G);
    if (SCC.empty())
      break;
    assert(LocalOf[A.entry(Txn)] != SCC[0] &&
           "entry marker cannot sit on an eo cycle");
    G = unfoldOneSCC(G, SCC);
  }
  assert(findCyclicSCC(G).empty() && "transaction unfolding did not converge");
  return {G.Orig, G.Eo, G.Invs};
}

namespace {

/// Instantiates one unfolded transaction template into the unfolding's
/// abstract history.
unsigned instantiateTxn(const AbstractHistory &A,
                        const UnfoldedTxnTemplate &Tmpl, unsigned OrigTxnId,
                        Unfolding &U, unsigned SessionTag) {
  AbstractHistory &H = U.H;
  unsigned NewTxn = H.addTransaction(A.txn(OrigTxnId).Name);
  U.SessionTags.push_back(SessionTag);
  U.OrigTxn.push_back(OrigTxnId);
  // addTransaction created an entry marker; record its origin.
  U.OrigEvent.push_back(A.entry(OrigTxnId));

  // Template local index 0 is the original entry marker; reuse the new one.
  std::vector<unsigned> NewId(Tmpl.Orig.size(), ~0u);
  for (unsigned L = 0; L != Tmpl.Orig.size(); ++L) {
    unsigned OrigEv = Tmpl.Orig[L];
    const AbstractEvent &E = A.event(OrigEv);
    if (OrigEv == A.entry(OrigTxnId)) {
      NewId[L] = H.entry(NewTxn);
      continue;
    }
    unsigned New;
    if (E.isMarker())
      New = H.addMarker(NewTxn, E.Label);
    else
      New = H.addEvent(NewTxn, E.Container, E.Op, E.Facts, E.Display);
    NewId[L] = New;
    U.OrigEvent.push_back(OrigEv);
  }
  for (const AbstractConstraint &E : Tmpl.Eo)
    H.addEo(NewId[E.Src], NewId[E.Tgt], E.C);
  for (const AbstractConstraint &E : Tmpl.Invs)
    H.addInv(NewId[E.Src], NewId[E.Tgt], E.C);

  // FreshVar facts name a creator event of the original transaction; remap
  // the creator into this instance so each instance carries its own unique
  // identity. If the template duplicated the creator (possible only for
  // synthetic cyclic eo graphs; C4L programs are loop-free), the reference
  // is ambiguous — weaken to Free, which is always sound.
  std::map<unsigned, unsigned> CreatorCopy; // orig event -> copies, new id
  std::map<unsigned, unsigned> CreatorCount;
  for (unsigned L = 0; L != Tmpl.Orig.size(); ++L) {
    CreatorCopy[Tmpl.Orig[L]] = NewId[L];
    ++CreatorCount[Tmpl.Orig[L]];
  }
  for (unsigned L = 0; L != Tmpl.Orig.size(); ++L) {
    const AbstractEvent &E = A.event(Tmpl.Orig[L]);
    if (E.isMarker())
      continue;
    for (unsigned I = 0; I != E.Facts.size(); ++I) {
      if (E.Facts[I].Kind != AbsFact::FreshVar)
        continue;
      auto It = CreatorCopy.find(E.Facts[I].Var);
      if (It != CreatorCopy.end() && CreatorCount[E.Facts[I].Var] == 1)
        H.setFact(NewId[L], I, AbsFact::freshVar(It->second));
      else
        H.setFact(NewId[L], I, AbsFact::free());
    }
  }
  return NewTxn;
}

} // namespace

Unfolding c4::buildUnfolding(
    const AbstractHistory &A,
    const std::vector<std::vector<unsigned>> &Sessions) {
  Unfolding U{AbstractHistory(A.schema()), {}, {}, {},
              static_cast<unsigned>(Sessions.size())};
  for (unsigned I = 0; I != A.numLocalVars(); ++I)
    U.H.addLocalVar();
  for (unsigned I = 0; I != A.numGlobalVars(); ++I)
    U.H.addGlobalVar();
  for (unsigned Session = 0; Session != Sessions.size(); ++Session) {
    unsigned Prev = ~0u;
    for (unsigned OrigTxnId : Sessions[Session]) {
      UnfoldedTxnTemplate Tmpl = unfoldTransaction(A, OrigTxnId);
      unsigned NewTxn = instantiateTxn(A, Tmpl, OrigTxnId, U, Session);
      if (Prev != ~0u)
        U.H.setMaySo(Prev, NewTxn);
      Prev = NewTxn;
    }
  }
  return U;
}

std::vector<Unfolding> c4::enumerateUnfoldings(
    const AbstractHistory &A, unsigned K, unsigned MaxCount, bool &Truncated,
    const std::vector<unsigned> *Universe,
    const std::function<bool(const std::vector<std::vector<unsigned>> &)>
        *SpecFilter, const Deadline *DL) {
  Truncated = false;
  std::vector<Unfolding> Result;
  unsigned T = A.numTxns();
  if (T == 0 || K == 0)
    return Result;
  std::vector<bool> InUniverse(T, Universe == nullptr);
  if (Universe)
    for (unsigned X : *Universe)
      InUniverse[X] = true;

  // Transitive closure of maySo for session pairs.
  std::vector<std::vector<bool>> Closure(T, std::vector<bool>(T, false));
  for (unsigned S = 0; S != T; ++S)
    for (unsigned D = 0; D != T; ++D)
      Closure[S][D] = A.maySo(S, D);
  for (unsigned M = 0; M != T; ++M)
    for (unsigned I = 0; I != T; ++I) {
      if (!Closure[I][M])
        continue;
      for (unsigned J = 0; J != T; ++J)
        if (Closure[M][J])
          Closure[I][J] = true;
    }

  // Session specs: one transaction, or an so-linked pair.
  std::vector<std::vector<unsigned>> Specs;
  for (unsigned S = 0; S != T; ++S)
    if (InUniverse[S])
      Specs.push_back({S});
  for (unsigned S = 0; S != T; ++S)
    for (unsigned D = 0; D != T; ++D)
      if (InUniverse[S] && InUniverse[D] && Closure[S][D])
        Specs.push_back({S, D});
  if (Specs.empty())
    return Result;

  // Definition 4 templates, once per transaction.
  std::vector<UnfoldedTxnTemplate> Templates;
  for (unsigned Txn = 0; Txn != T; ++Txn)
    Templates.push_back(unfoldTransaction(A, Txn));

  // Multisets of K specs (sessions are symmetric).
  std::vector<unsigned> Pick(K, 0);
  std::vector<std::vector<unsigned>> Layout(K);
  unsigned Steps = 0;
  while (true) {
    if (Result.size() >= MaxCount) {
      Truncated = true;
      return Result;
    }
    // Deadline poll every 256 layouts. Stopping early is reported as
    // truncation, which soundly blocks generalization; the driver reports
    // the round as deferred.
    if (DL && (++Steps & 0xFFu) == 0 && DL->expired()) {
      Truncated = true;
      return Result;
    }
    bool Skip = false;
    if (SpecFilter) {
      for (unsigned Session = 0; Session != K; ++Session)
        Layout[Session] = Specs[Pick[Session]];
      Skip = !(*SpecFilter)(Layout);
    }
    if (Skip) {
      // Advance without building.
      int Pos = static_cast<int>(K) - 1;
      while (Pos >= 0 && Pick[Pos] == Specs.size() - 1)
        --Pos;
      if (Pos < 0)
        break;
      unsigned Next = Pick[Pos] + 1;
      for (unsigned I = static_cast<unsigned>(Pos); I != K; ++I)
        Pick[I] = Next;
      continue;
    }
    Unfolding U{AbstractHistory(A.schema()), {}, {}, {}, K};
    // The unfolding shares the original's symbolic constants: facts carry
    // original variable ids.
    for (unsigned I = 0; I != A.numLocalVars(); ++I)
      U.H.addLocalVar();
    for (unsigned I = 0; I != A.numGlobalVars(); ++I)
      U.H.addGlobalVar();
    for (unsigned Session = 0; Session != K; ++Session) {
      unsigned Prev = ~0u;
      for (unsigned OrigTxnId : Specs[Pick[Session]]) {
        unsigned NewTxn = instantiateTxn(A, Templates[OrigTxnId], OrigTxnId,
                                         U, Session);
        if (Prev != ~0u)
          U.H.setMaySo(Prev, NewTxn);
        Prev = NewTxn;
      }
    }
    Result.push_back(std::move(U));

    // Advance the non-decreasing index vector.
    int Pos = static_cast<int>(K) - 1;
    while (Pos >= 0 && Pick[Pos] == Specs.size() - 1)
      --Pos;
    if (Pos < 0)
      break;
    unsigned Next = Pick[Pos] + 1;
    for (unsigned I = static_cast<unsigned>(Pos); I != K; ++I)
      Pick[I] = Next;
  }
  return Result;
}
