//===- unfold/Unfolder.h - k-unfoldings of abstract histories ---*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unfoldings (paper §7.1). A k-unfolding arranges instances of abstract
/// transactions into k abstract sessions; each session holds one transaction
/// or a pair linked by (the transitive closure of) the abstract session
/// order. Minimal DSG cycles spanning at most k sessions map one-to-one into
/// some k-unfolding (U1), and are realized by one-to-one concretizations
/// (U2) — the small-model property exploited by the SMT stage.
///
/// Transactions with a cyclic intra-transaction event order are made acyclic
/// by the SCC unfolding of Definition 4: the component is duplicated, edges
/// are classified as incoming (I), outgoing (O), back (B) or remaining (R),
/// and re-wired such that every two-event window of any loop execution is
/// still represented; invariants survive only on R edges.
///
//===----------------------------------------------------------------------===//

#ifndef C4_UNFOLD_UNFOLDER_H
#define C4_UNFOLD_UNFOLDER_H

#include "abstract/AbstractHistory.h"
#include "support/Deadline.h"

#include <functional>
#include <vector>

namespace c4 {

/// A k-unfolding: itself an abstract history, with tracing information back
/// to the original abstract history.
struct Unfolding {
  AbstractHistory H;
  /// Per unfolded transaction: its abstract session index (0..k-1).
  std::vector<unsigned> SessionTags;
  /// Per unfolded transaction: the original transaction id.
  std::vector<unsigned> OrigTxn;
  /// Per unfolded event: the original event id.
  std::vector<unsigned> OrigEvent;
  /// Number of sessions.
  unsigned NumSessions = 0;

  /// The set of distinct original (syntactic) transactions involved,
  /// sorted — the subsumption key of §7.
  std::vector<unsigned> origTxnSet() const;
};

/// The acyclic rewrite of one transaction per Definition 4, kept as a
/// template for instantiation into unfoldings. Events are local indices;
/// Orig maps them back to original event ids.
struct UnfoldedTxnTemplate {
  std::vector<unsigned> Orig;                ///< local idx -> original event
  std::vector<AbstractConstraint> Eo;        ///< local indices
  std::vector<AbstractConstraint> Invs;      ///< local indices
};

/// Computes the Definition 4 template for one transaction. Transactions
/// with acyclic eo unfold to themselves.
UnfoldedTxnTemplate unfoldTransaction(const AbstractHistory &A, unsigned Txn);

/// Builds a single unfolding with the given session layout: \p Sessions
/// lists, per abstract session, the original transaction ids to instantiate
/// in chain order. Used by the enumerator and by the §7.2 generalization
/// check (session merging).
Unfolding buildUnfolding(const AbstractHistory &A,
                         const std::vector<std::vector<unsigned>> &Sessions);

/// Enumerates all k-unfoldings of \p A (up to session permutation). The
/// result can be large; \p MaxCount caps it and sets \p Truncated.
/// \p Universe optionally restricts the transactions considered (the
/// analyzer passes one suspicious SSG component at a time: a minimal DSG
/// cycle projects onto a cycle of the SSG, hence into one strongly
/// connected component).
/// \p SpecFilter, when set, is called with each candidate session layout
/// (original transaction ids per session) before the unfolding is built;
/// returning false skips it. The analyzer uses this to discard layouts that
/// cannot carry a candidate cycle or segment (cheap graph check), avoiding
/// the construction cost.
/// \p DL, when set, is the analysis deadline: enumeration polls it and, on
/// expiry, stops early with \p Truncated set — sound, because a truncated
/// enumeration already blocks both generalization and completeness claims
/// downstream; the caller additionally observes the expiry on the deadline
/// itself and reports the round as deferred.
std::vector<Unfolding> enumerateUnfoldings(
    const AbstractHistory &A, unsigned K, unsigned MaxCount, bool &Truncated,
    const std::vector<unsigned> *Universe = nullptr,
    const std::function<bool(const std::vector<std::vector<unsigned>> &)>
        *SpecFilter = nullptr,
    const Deadline *DL = nullptr);

} // namespace c4

#endif // C4_UNFOLD_UNFOLDER_H
