//===- spec/TableType.cpp - Row/field table with fresh identities ---------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `table` data type models TouchDevelop tables and Cassandra rows
/// (paper §8): rows addressed by identity, holding scalar fields and
/// set-valued fields. Rows are created implicitly by any update that touches
/// them ("implicit record creation"), or explicitly with a guaranteed-fresh
/// identity via add_row. The asymmetric commutativity entries encode that
/// contains(r):true survives creations and contains(r):false survives
/// deletions.
///
//===----------------------------------------------------------------------===//

#include "spec/Registry.h"
#include "spec/TypeTables.h"

#include <cassert>
#include <map>
#include <set>

using namespace c4;

static Term s(unsigned I) { return Term::argSrc(I); }
static Term g(unsigned I) { return Term::argTgt(I); }
static Cond eq(Term A, Term B) { return Cond::eq(A, B); }
static Cond ne(Term A, Term B) { return Cond::ne(A, B); }
static Cond one(Term T) { return Cond::eq(T, Term::constant(1)); }
static Cond zero(Term T) { return Cond::eq(T, Term::constant(0)); }

namespace {

struct Row {
  std::map<int64_t, int64_t> Scalars;
  std::map<int64_t, std::set<int64_t>> SetFields;
};

class TableState : public ContainerState {
public:
  void apply(const OpSig &Op, const std::vector<int64_t> &Vals) override {
    if (Op.Name == "add_row") {
      Rows[Vals[0]]; // create an empty row with the chosen fresh identity
      return;
    }
    if (Op.Name == "set") {
      Rows[Vals[0]].Scalars[Vals[1]] = Vals[2];
      return;
    }
    if (Op.Name == "del") {
      Rows.erase(Vals[0]);
      return;
    }
    if (Op.Name == "add") {
      Rows[Vals[0]].SetFields[Vals[1]].insert(Vals[2]);
      return;
    }
    assert(Op.Name == "sremove" && "unknown table update");
    Rows[Vals[0]].SetFields[Vals[1]].erase(Vals[2]);
  }

  int64_t eval(const OpSig &Op,
               const std::vector<int64_t> &Args) const override {
    if (Op.Name == "get") {
      auto RowIt = Rows.find(Args[0]);
      if (RowIt == Rows.end())
        return 0;
      auto It = RowIt->second.Scalars.find(Args[1]);
      return It == RowIt->second.Scalars.end() ? 0 : It->second;
    }
    if (Op.Name == "contains")
      return Rows.count(Args[0]) ? 1 : 0;
    if (Op.Name == "scontains") {
      auto RowIt = Rows.find(Args[0]);
      if (RowIt == Rows.end())
        return 0;
      auto It = RowIt->second.SetFields.find(Args[1]);
      if (It == RowIt->second.SetFields.end())
        return 0;
      return It->second.count(Args[2]) ? 1 : 0;
    }
    assert(Op.Name == "size" && "unknown table query");
    return static_cast<int64_t>(Rows.size());
  }

  std::unique_ptr<ContainerState> clone() const override {
    return std::make_unique<TableState>(*this);
  }

private:
  std::map<int64_t, Row> Rows;
};

class TableType : public TableSpec {
public:
  enum { AddRow, Set, Del, Add, SRemove, Get, Contains, SContains, Size };

  TableType()
      : TableSpec("table",
                  {{"add_row", OpKind::Update, 0, true, /*Fresh=*/true},
                   {"set", OpKind::Update, 3, false},
                   {"del", OpKind::Update, 1, false},
                   {"add", OpKind::Update, 3, false},
                   {"sremove", OpKind::Update, 3, false},
                   {"get", OpKind::Query, 2, true},
                   {"contains", OpKind::Query, 1, true},
                   {"scontains", OpKind::Query, 3, true},
                   {"size", OpKind::Query, 0, true}}) {
    // Row identity is combined-value slot 0 for every operation (add_row
    // exposes its created identity through its return slot, which is its
    // only slot).
    Cond RowDiff = ne(s(0), g(0));
    Cond RowSame = eq(s(0), g(0));

    com(AddRow, AddRow, RowDiff);
    com(AddRow, Set, RowDiff);
    com(AddRow, Del, RowDiff);
    com(AddRow, Add, RowDiff);
    com(AddRow, SRemove, RowDiff);
    com(AddRow, Get, Cond::t()); // fields of an empty row read as 0
    com(AddRow, Contains, RowDiff);
    com(AddRow, SContains, Cond::t());
    com(AddRow, Size, Cond::f());

    com(Set, Set, RowDiff || ne(s(1), g(1)) || eq(s(2), g(2)));
    com(Set, Del, RowDiff);
    com(Set, Add, Cond::t()); // disjoint storage; creation is idempotent
    com(Set, SRemove, Cond::t());
    com(Set, Get, RowDiff || ne(s(1), g(1)));
    com(Set, Contains, RowDiff);
    com(Set, SContains, Cond::t());
    com(Set, Size, Cond::f());

    com(Del, Del, Cond::t());
    com(Del, Add, RowDiff);
    com(Del, SRemove, RowDiff);
    com(Del, Get, RowDiff);
    com(Del, Contains, RowDiff);
    com(Del, SContains, RowDiff);
    com(Del, Size, Cond::f());

    Cond ElemDiff = RowDiff || ne(s(1), g(1)) || ne(s(2), g(2));
    com(Add, Add, Cond::t());
    com(Add, SRemove, ElemDiff);
    com(Add, Get, Cond::t());
    com(Add, Contains, RowDiff);
    com(Add, SContains, ElemDiff);
    com(Add, Size, Cond::f());

    com(SRemove, SRemove, Cond::t());
    com(SRemove, Get, Cond::t());
    com(SRemove, Contains, RowDiff);
    com(SRemove, SContains, ElemDiff);
    com(SRemove, Size, Cond::f());

    // Asymmetric entries (§8). Return slots: contains -> 1, scontains -> 3.
    asym(AddRow, Contains, RowDiff || one(g(1)));
    asym(Set, Contains, RowDiff || one(g(1)));
    asym(Add, Contains, RowDiff || one(g(1)));
    asym(SRemove, Contains, RowDiff || one(g(1)));
    asym(Del, Contains, RowDiff || zero(g(1)));
    asym(Add, SContains, ElemDiff || one(g(3)));
    asym(SRemove, SContains, ElemDiff || zero(g(3)));
    asym(Del, SContains, RowDiff || zero(g(3)));

    // Absorption: deletion wipes every earlier update on the same row; a
    // same-slot write wipes an earlier one.
    abs(Set, Set, RowSame && eq(s(1), g(1)));
    abs(Set, Del, RowSame);
    abs(Add, Del, RowSame);
    abs(SRemove, Del, RowSame);
    abs(AddRow, Del, RowSame);
    abs(Del, Del, RowSame);
    Cond ElemSame = RowSame && eq(s(1), g(1)) && eq(s(2), g(2));
    abs(Add, Add, ElemSame);
    abs(Add, SRemove, ElemSame);
    abs(SRemove, Add, ElemSame);
    abs(SRemove, SRemove, ElemSame);

    // Query-value determination (S1 inside the small model).
    det(Set, Get, ValueDet::slot(2));
    det(Del, Get, ValueDet::constant(0));
    det(AddRow, Contains, ValueDet::constant(1));
    det(Set, Contains, ValueDet::constant(1));
    det(Add, Contains, ValueDet::constant(1));
    det(SRemove, Contains, ValueDet::constant(1));
    det(Del, Contains, ValueDet::constant(0));
    det(Add, SContains, ValueDet::constant(1));
    det(SRemove, SContains, ValueDet::constant(0));
    det(Del, SContains, ValueDet::constant(0));
  }

  std::unique_ptr<ContainerState> makeState() const override {
    return std::make_unique<TableState>();
  }
};

} // namespace

std::unique_ptr<DataTypeSpec> c4::makeTableType() {
  return std::make_unique<TableType>();
}
