//===- spec/DataType.h - Replicated data type specifications ----*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A replicated data type bundles (a) the operations it offers, (b) its
/// *rewrite specification* (Definition 2 of the paper): symbolic sufficient
/// conditions for commutativity and absorption between events, in plain, far
/// (§4.1) and asymmetric (§8) variants, and (c) its sequential semantics as
/// an executable container state, which defines legality of event sequences
/// (S1, §3).
///
/// Rewrite-spec conventions. For operations A (source, arbitrated earlier)
/// and B (target, arbitrated later), with A's values bound to `argsrc` slots
/// and B's to `argtgt` slots:
///
///  * `plainCommutes(A,B)`  implies  AB ≡ BA           (adjacent swap)
///  * `farCommutes(A,B)`    implies  A ↷º B            (R2; only consulted
///                                                      for update/query or
///                                                      query/update pairs —
///                                                      on update/update
///                                                      pairs ↷º is plain
///                                                      commutativity)
///  * `plainAbsorbs(A,B)`   implies  AB ≡ B            (B absorbs A)
///  * `farAbsorbs(A,B)`     implies  A ▷ B             (R1)
///  * `asymFarCommutes(U,Q)` is the asymmetric variant used only for
///    anti-dependency computation (§8): making U visible to Q cannot change
///    Q's already-observed outcome.
///
/// Queries always far-commute with queries (paper §4.1); events on different
/// containers always commute and never absorb each other. Both rules are
/// applied by the free functions at the bottom of this header, so the
/// per-type virtual methods only answer for pairs on the *same* container.
///
//===----------------------------------------------------------------------===//

#ifndef C4_SPEC_DATATYPE_H
#define C4_SPEC_DATATYPE_H

#include "spec/Cond.h"
#include "spec/Ops.h"

#include <memory>
#include <string>
#include <vector>

namespace c4 {

/// Executable sequential state of one container. Defines legality: a
/// sequence of events on the container is legal iff replaying it, every
/// query's recorded return value matches `eval`.
class ContainerState {
public:
  virtual ~ContainerState();

  /// Applies an update. \p Vals is the combined value vector (arguments
  /// followed by the return value, if any — fresh creators receive their
  /// chosen identity through the return slot).
  virtual void apply(const OpSig &Op, const std::vector<int64_t> &Vals) = 0;

  /// Evaluates a query on the current state and returns its value.
  virtual int64_t eval(const OpSig &Op,
                       const std::vector<int64_t> &Args) const = 0;

  virtual std::unique_ptr<ContainerState> clone() const = 0;
};

/// How an update determines a query's return value when it is the
/// arbitration-last *interfering* (non-plainly-commuting) update visible to
/// the query. Used by the SMT stage to encode the sequential semantics (S1)
/// inside the small model: e.g. the last visible same-key put determines a
/// get; any visible same-row creation forces contains to true.
struct ValueDet {
  enum KindTy : uint8_t {
    Indeterminate, ///< no simple rule (e.g. increments accumulate)
    Slot,          ///< the query returns this combined-value slot of the
                   ///< update
    Constant,      ///< the query returns a fixed constant
    SlotLowerBound ///< *every* visible interfering update bounds the query
                   ///< from below by this slot (monotone types: max-register)
  } Kind = Indeterminate;
  unsigned SlotIdx = 0;
  int64_t Value = 0;

  static ValueDet indeterminate() { return {}; }
  static ValueDet slot(unsigned I) { return {Slot, I, 0}; }
  static ValueDet constant(int64_t V) { return {Constant, 0, V}; }
  static ValueDet slotLowerBound(unsigned I) {
    return {SlotLowerBound, I, 0};
  }
};

/// Specification of one replicated data type.
class DataTypeSpec {
public:
  virtual ~DataTypeSpec();

  const std::string &name() const { return Name; }
  const std::vector<OpSig> &ops() const { return Ops; }

  /// Finds an operation by name; returns nullptr if unknown.
  const OpSig *findOp(const std::string &OpName) const;
  /// Index of \p Op within ops(). \p Op must belong to this type.
  unsigned opIndex(const OpSig &Op) const;

  /// See the file comment for the semantics of these four tables.
  /// Indices are positions in ops().
  virtual Cond plainCommutes(unsigned A, unsigned B) const = 0;
  virtual Cond plainAbsorbs(unsigned A, unsigned B) const = 0;
  virtual Cond farCommutes(unsigned A, unsigned B) const;
  virtual Cond farAbsorbs(unsigned A, unsigned B) const;
  virtual Cond asymFarCommutes(unsigned U, unsigned Q) const;

  /// Value determination of query \p Q by an interfering update \p U (see
  /// ValueDet). Defaults to Indeterminate (no axiom).
  virtual ValueDet valueDetermination(unsigned U, unsigned Q) const;

  /// Creates an empty sequential state for a container of this type.
  virtual std::unique_ptr<ContainerState> makeState() const = 0;

protected:
  DataTypeSpec(std::string Name, std::vector<OpSig> Ops);

private:
  std::string Name;
  std::vector<OpSig> Ops;
};

/// Variants of the commutativity relation used by different analysis stages.
enum class CommuteMode {
  Plain, ///< adjacent-swap commutativity (D3, conflict dependencies)
  Far,   ///< far commutativity ↷º (D1, dependencies)
  Asym   ///< asymmetric far commutativity (D2, anti-dependencies, §8)
};

/// Returns the sufficient condition for events with operations \p A and
/// \p B *on the same container of type \p Type* to commute in \p Mode.
/// Applies the generic rules (queries commute with queries; on
/// update/update pairs, far and asym collapse to plain).
Cond commutesCond(const DataTypeSpec &Type, unsigned A, unsigned B,
                  CommuteMode Mode);

/// Returns the sufficient condition for the event with operation \p A to be
/// absorbed by a later event with operation \p B on the same container.
/// \p Far selects far absorption (R1) vs plain absorption.
Cond absorbsCond(const DataTypeSpec &Type, unsigned A, unsigned B, bool Far);

} // namespace c4

#endif // C4_SPEC_DATATYPE_H
