//===- spec/TypeTables.h - Table-driven rewrite specs (private) -*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal helper for defining data types declaratively: rewrite
/// specifications are stored as per-operation-pair condition tables.
/// Commutativity entries are set symmetrically (the flipped condition is
/// installed for the reversed pair); absorption and asymmetric entries are
/// directional. Unset commutativity/absorption entries default to false,
/// which is always sound (more dependencies, never fewer).
///
//===----------------------------------------------------------------------===//

#ifndef C4_SPEC_TYPETABLES_H
#define C4_SPEC_TYPETABLES_H

#include "spec/DataType.h"

#include <optional>

namespace c4 {

/// Base class for data types whose rewrite spec is a finite condition table.
class TableSpec : public DataTypeSpec {
public:
  Cond plainCommutes(unsigned A, unsigned B) const override {
    return get(PlainCom, A, B, Cond::f());
  }
  Cond plainAbsorbs(unsigned A, unsigned B) const override {
    return get(PlainAbs, A, B, Cond::f());
  }
  Cond farCommutes(unsigned A, unsigned B) const override {
    return get(FarCom, A, B, plainCommutes(A, B));
  }
  Cond farAbsorbs(unsigned A, unsigned B) const override {
    return get(FarAbs, A, B, plainAbsorbs(A, B));
  }
  Cond asymFarCommutes(unsigned U, unsigned Q) const override {
    return get(AsymCom, U, Q, farCommutes(U, Q));
  }
  ValueDet valueDetermination(unsigned U, unsigned Q) const override {
    if (const std::optional<ValueDet> &E = Dets[U][Q])
      return *E;
    return ValueDet::indeterminate();
  }

protected:
  TableSpec(std::string TypeName, std::vector<OpSig> TypeOps)
      : DataTypeSpec(std::move(TypeName), std::move(TypeOps)) {
    unsigned N = static_cast<unsigned>(ops().size());
    PlainCom.assign(N, std::vector<std::optional<Cond>>(N));
    PlainAbs = FarCom = FarAbs = AsymCom = PlainCom;
    Dets.assign(N, std::vector<std::optional<ValueDet>>(N));
  }

  using Table = std::vector<std::vector<std::optional<Cond>>>;

  /// Sets plain commutativity for (A,B) and the flipped form for (B,A).
  void com(unsigned A, unsigned B, Cond C) {
    PlainCom[A][B] = C;
    PlainCom[B][A] = C.flipped();
  }
  /// Sets far commutativity, symmetrically.
  void farCom(unsigned A, unsigned B, Cond C) {
    FarCom[A][B] = C;
    FarCom[B][A] = C.flipped();
  }
  /// Sets "A absorbed by later B" (directional).
  void abs(unsigned A, unsigned B, Cond C) { PlainAbs[A][B] = C; }
  /// Sets far absorption (directional).
  void farAbs(unsigned A, unsigned B, Cond C) { FarAbs[A][B] = C; }
  /// Sets asymmetric far commutativity for update \p U vs query \p Q.
  void asym(unsigned U, unsigned Q, Cond C) { AsymCom[U][Q] = C; }
  /// Sets the value determination of query \p Q by update \p U.
  void det(unsigned U, unsigned Q, ValueDet D) { Dets[U][Q] = D; }

private:
  static Cond get(const Table &T, unsigned A, unsigned B, Cond Default) {
    if (const std::optional<Cond> &E = T[A][B])
      return *E;
    return Default;
  }

  Table PlainCom, PlainAbs, FarCom, FarAbs, AsymCom;
  std::vector<std::vector<std::optional<ValueDet>>> Dets;
};

} // namespace c4

#endif // C4_SPEC_TYPETABLES_H
