//===- spec/Registry.cpp --------------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "spec/Registry.h"

#include <cassert>

using namespace c4;

TypeRegistry::TypeRegistry() {
  add(makeRegisterType());
  add(makeCounterType());
  add(makeMapType());
  add(makeSetType());
  add(makeTableType());
  add(makeCRegType());
  add(makeMaxRegType());
}

const DataTypeSpec *TypeRegistry::lookup(const std::string &Name) const {
  for (const std::unique_ptr<DataTypeSpec> &T : Types)
    if (T->name() == Name)
      return T.get();
  return nullptr;
}

const DataTypeSpec *TypeRegistry::add(std::unique_ptr<DataTypeSpec> Type) {
  assert(!lookup(Type->name()) && "duplicate type name");
  Types.push_back(std::move(Type));
  return Types.back().get();
}

unsigned Schema::addContainer(const std::string &Name,
                              const DataTypeSpec *Type) {
  assert(Type && "container needs a type");
  assert(lookup(Name) < 0 && "duplicate container name");
  Containers.push_back({Name, Type});
  return numContainers() - 1;
}

int Schema::lookup(const std::string &Name) const {
  for (unsigned I = 0, E = numContainers(); I != E; ++I)
    if (Containers[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}
