//===- spec/Cond.cpp ------------------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "spec/Cond.h"

#include "support/Format.h"
#include "support/UnionFind.h"

#include <cassert>
#include <map>
#include <optional>

using namespace c4;

std::string Term::str() const {
  switch (Kind) {
  case ArgSrc:
    return strf("src%u", Index);
  case ArgTgt:
    return strf("tgt%u", Index);
  case Const:
    return strf("%lld", static_cast<long long>(Value));
  }
  return "?";
}

std::string Literal::str() const {
  const char *Op = "=";
  if (Cmp == CmpKind::Lt)
    Op = Negated ? ">=" : "<";
  else if (Cmp == CmpKind::Le)
    Op = Negated ? ">" : "<=";
  else if (Negated)
    Op = "!=";
  return A.str() + Op + B.str();
}

struct Cond::Node {
  NodeKind Kind;
  // Atom fields.
  CmpKind Cmp = CmpKind::Eq;
  Term A = Term::constant(0);
  Term B = Term::constant(0);
  // Not/And/Or children.
  std::vector<Cond> Children;
};

static const std::shared_ptr<const Cond::Node> &trueNode() {
  static const std::shared_ptr<const Cond::Node> N =
      std::make_shared<Cond::Node>(Cond::Node{Cond::NodeKind::True,
                                              CmpKind::Eq, Term::constant(0),
                                              Term::constant(0), {}});
  return N;
}

static const std::shared_ptr<const Cond::Node> &falseNode() {
  static const std::shared_ptr<const Cond::Node> N =
      std::make_shared<Cond::Node>(Cond::Node{Cond::NodeKind::False,
                                              CmpKind::Eq, Term::constant(0),
                                              Term::constant(0), {}});
  return N;
}

Cond::Cond() : Root(trueNode()) {}

Cond Cond::t() { return Cond(trueNode()); }
Cond Cond::f() { return Cond(falseNode()); }

Cond Cond::cmp(CmpKind K, Term A, Term B) {
  // Fold ground atoms immediately.
  if (A.Kind == Term::Const && B.Kind == Term::Const) {
    bool V = false;
    switch (K) {
    case CmpKind::Eq:
      V = A.Value == B.Value;
      break;
    case CmpKind::Lt:
      V = A.Value < B.Value;
      break;
    case CmpKind::Le:
      V = A.Value <= B.Value;
      break;
    }
    return V ? t() : f();
  }
  if (K == CmpKind::Eq && A == B)
    return t();
  return Cond(std::make_shared<Node>(Node{NodeKind::Atom, K, A, B, {}}));
}

Cond Cond::operator&&(const Cond &O) const {
  if (isFalse() || O.isFalse())
    return f();
  if (isTrue())
    return O;
  if (O.isTrue())
    return *this;
  return Cond(std::make_shared<Node>(Node{NodeKind::And, CmpKind::Eq,
                                          Term::constant(0), Term::constant(0),
                                          {*this, O}}));
}

Cond Cond::operator||(const Cond &O) const {
  if (isTrue() || O.isTrue())
    return t();
  if (isFalse())
    return O;
  if (O.isFalse())
    return *this;
  return Cond(std::make_shared<Node>(Node{NodeKind::Or, CmpKind::Eq,
                                          Term::constant(0), Term::constant(0),
                                          {*this, O}}));
}

Cond Cond::operator!() const {
  if (isTrue())
    return f();
  if (isFalse())
    return t();
  if (kind() == NodeKind::Not)
    return Root->Children[0];
  return Cond(std::make_shared<Node>(Node{NodeKind::Not, CmpKind::Eq,
                                          Term::constant(0), Term::constant(0),
                                          {*this}}));
}

Cond::NodeKind Cond::kind() const { return Root->Kind; }
CmpKind Cond::atomCmp() const { return Root->Cmp; }
Term Cond::atomLHS() const { return Root->A; }
Term Cond::atomRHS() const { return Root->B; }
const std::vector<Cond> &Cond::children() const { return Root->Children; }

static int64_t evalTerm(const Term &T, const std::vector<int64_t> &SrcVals,
                        const std::vector<int64_t> &TgtVals) {
  switch (T.Kind) {
  case Term::ArgSrc:
    assert(T.Index < SrcVals.size() && "source slot out of range");
    return SrcVals[T.Index];
  case Term::ArgTgt:
    assert(T.Index < TgtVals.size() && "target slot out of range");
    return TgtVals[T.Index];
  case Term::Const:
    return T.Value;
  }
  return 0;
}

bool Cond::eval(const std::vector<int64_t> &SrcVals,
                const std::vector<int64_t> &TgtVals) const {
  switch (kind()) {
  case NodeKind::True:
    return true;
  case NodeKind::False:
    return false;
  case NodeKind::Atom: {
    int64_t A = evalTerm(Root->A, SrcVals, TgtVals);
    int64_t B = evalTerm(Root->B, SrcVals, TgtVals);
    switch (Root->Cmp) {
    case CmpKind::Eq:
      return A == B;
    case CmpKind::Lt:
      return A < B;
    case CmpKind::Le:
      return A <= B;
    }
    return false;
  }
  case NodeKind::Not:
    return !Root->Children[0].eval(SrcVals, TgtVals);
  case NodeKind::And:
    for (const Cond &C : Root->Children)
      if (!C.eval(SrcVals, TgtVals))
        return false;
    return true;
  case NodeKind::Or:
    for (const Cond &C : Root->Children)
      if (C.eval(SrcVals, TgtVals))
        return true;
    return false;
  }
  return false;
}

namespace {
/// Bounded DNF builder. Clauses are conjunctions of literals.
struct DNFBuilder {
  static constexpr size_t MaxClauses = 4096;
  bool Overflow = false;

  using Clause = std::vector<Literal>;
  using Clauses = std::vector<Clause>;

  Clauses build(const Cond &C, bool Negate) {
    if (Overflow)
      return {{}};
    switch (C.kind()) {
    case Cond::NodeKind::True:
      return Negate ? Clauses{} : Clauses{{}};
    case Cond::NodeKind::False:
      return Negate ? Clauses{{}} : Clauses{};
    case Cond::NodeKind::Atom:
      return {{Literal{C.atomCmp(), C.atomLHS(), C.atomRHS(), Negate}}};
    case Cond::NodeKind::Not:
      return build(C.children()[0], !Negate);
    case Cond::NodeKind::And:
    case Cond::NodeKind::Or: {
      bool IsAnd = (C.kind() == Cond::NodeKind::And) != Negate;
      Clauses Acc;
      if (IsAnd) {
        Acc = {{}};
        for (const Cond &Child : C.children()) {
          Clauses Next = build(Child, Negate);
          Clauses Product;
          for (const Clause &L : Acc)
            for (const Clause &R : Next) {
              Clause Merged = L;
              Merged.insert(Merged.end(), R.begin(), R.end());
              Product.push_back(std::move(Merged));
              if (Product.size() > MaxClauses) {
                Overflow = true;
                return {{}};
              }
            }
          Acc = std::move(Product);
        }
      } else {
        for (const Cond &Child : C.children()) {
          Clauses Next = build(Child, Negate);
          Acc.insert(Acc.end(), Next.begin(), Next.end());
          if (Acc.size() > MaxClauses) {
            Overflow = true;
            return {{}};
          }
        }
      }
      return Acc;
    }
    }
    return {{}};
  }
};
} // namespace

std::vector<std::vector<Literal>> Cond::dnf() const {
  bool Overflow = false;
  return dnf(Overflow);
}

std::vector<std::vector<Literal>> Cond::dnf(bool &Overflow) const {
  DNFBuilder Builder;
  std::vector<std::vector<Literal>> R = Builder.build(*this, /*Negate=*/false);
  Overflow = Builder.Overflow;
  return R;
}

namespace {
/// A node in the congruence-closure universe: every distinct argument slot,
/// symbol, or constant becomes one element.
struct CCUniverse {
  // Element ids: per-slot elements first, then symbols, then constants.
  UnionFind UF;
  std::vector<std::optional<int64_t>> ClassConst; // constant value per element
  // Unique-identity witness per element (paper §8 fresh values). Two classes
  // with different witnesses are provably disequal; a class with a witness is
  // provably disequal from any constant below FreshValueMin. A constant
  // >= FreshValueMin may coincide with a fresh id (the SMT back end only
  // asserts fresh values are >= FreshValueMin and pairwise distinct), so that
  // combination stays satisfiable.
  std::vector<std::optional<unsigned>> ClassUnique;
  std::map<int64_t, unsigned> ConstElem;
  std::map<unsigned, unsigned> SymbolElem;
  std::map<unsigned, unsigned> UniqueElem;
  unsigned SrcBase = 0, TgtBase = 0;

  CCUniverse(const EventFacts &Src, const EventFacts &Tgt) {
    SrcBase = 0;
    TgtBase = static_cast<unsigned>(Src.size());
    unsigned N = TgtBase + static_cast<unsigned>(Tgt.size());
    UF.reset(N);
    ClassConst.assign(N, std::nullopt);
    ClassUnique.assign(N, std::nullopt);
    applyFacts(Src, SrcBase);
    applyFacts(Tgt, TgtBase);
  }

  unsigned constElem(int64_t V) {
    auto It = ConstElem.find(V);
    if (It != ConstElem.end())
      return It->second;
    unsigned E = UF.add();
    ClassConst.push_back(V);
    ClassUnique.push_back(std::nullopt);
    ConstElem.emplace(V, E);
    return E;
  }

  unsigned symbolElem(unsigned S) {
    auto It = SymbolElem.find(S);
    if (It != SymbolElem.end())
      return It->second;
    unsigned E = UF.add();
    ClassConst.push_back(std::nullopt);
    ClassUnique.push_back(std::nullopt);
    SymbolElem.emplace(S, E);
    return E;
  }

  unsigned uniqueElem(unsigned Id) {
    auto It = UniqueElem.find(Id);
    if (It != UniqueElem.end())
      return It->second;
    unsigned E = UF.add();
    ClassConst.push_back(std::nullopt);
    ClassUnique.push_back(Id);
    UniqueElem.emplace(Id, E);
    return E;
  }

  /// Merges two elements; returns false on constant or unique-identity
  /// clash.
  bool merge(unsigned A, unsigned B) {
    unsigned RA = UF.find(A), RB = UF.find(B);
    if (RA == RB)
      return true;
    std::optional<int64_t> CA = ClassConst[RA], CB = ClassConst[RB];
    if (CA && CB && *CA != *CB)
      return false;
    std::optional<unsigned> UA = ClassUnique[RA], UB = ClassUnique[RB];
    if (UA && UB && *UA != *UB)
      return false;
    // A fresh identity is always >= FreshValueMin; smaller constants can
    // never equal one.
    std::optional<int64_t> CC = CA ? CA : CB;
    if ((UA || UB) && CC && *CC < FreshValueMin)
      return false;
    unsigned R = UF.merge(RA, RB);
    ClassConst[R] = CC;
    ClassUnique[R] = UA ? UA : UB;
    return true;
  }

  void applyFacts(const EventFacts &Facts, unsigned Base) {
    for (unsigned I = 0, E = static_cast<unsigned>(Facts.size()); I != E; ++I) {
      const ArgFact &F = Facts[I];
      if (F.Kind == ArgFact::Constant)
        merge(Base + I, constElem(F.Value));
      else if (F.Kind == ArgFact::Symbolic)
        merge(Base + I, symbolElem(F.Symbol));
      else if (F.Kind == ArgFact::Unique)
        merge(Base + I, uniqueElem(F.Symbol));
    }
  }

  /// Returns the element for a term, or nullopt if the slot is out of the
  /// facts range (treated as free; we add an element lazily).
  unsigned termElem(const Term &T, const EventFacts &Src,
                    const EventFacts &Tgt) {
    switch (T.Kind) {
    case Term::Const:
      return constElem(T.Value);
    case Term::ArgSrc:
      if (T.Index < Src.size())
        return SrcBase + T.Index;
      break;
    case Term::ArgTgt:
      if (T.Index < Tgt.size())
        return TgtBase + T.Index;
      break;
    }
    // Out-of-range slot: allocate a fresh free element. This only happens
    // when facts vectors are shorter than the op's slot count. Both
    // per-class side vectors must grow in lockstep or a later merge reads
    // ClassUnique out of bounds.
    unsigned E = UF.add();
    ClassConst.push_back(std::nullopt);
    ClassUnique.push_back(std::nullopt);
    return E;
  }
};
} // namespace

bool c4::clauseSatisfiableUnder(const std::vector<Literal> &Clause,
                                const EventFacts &Src, const EventFacts &Tgt) {
  CCUniverse U(Src, Tgt);

  // Pass 1: positive equalities.
  for (const Literal &L : Clause) {
    if (L.Cmp != CmpKind::Eq || L.Negated)
      continue;
    if (!U.merge(U.termElem(L.A, Src, Tgt), U.termElem(L.B, Src, Tgt)))
      return false;
  }
  // Facts themselves can conflict only through merges above, which we have
  // already rejected. Pass 2: disequalities and order literals.
  for (const Literal &L : Clause) {
    unsigned A = U.UF.find(U.termElem(L.A, Src, Tgt));
    unsigned B = U.UF.find(U.termElem(L.B, Src, Tgt));
    std::optional<int64_t> CA = U.ClassConst[A], CB = U.ClassConst[B];
    switch (L.Cmp) {
    case CmpKind::Eq:
      if (!L.Negated)
        continue;
      if (A == B)
        return false;
      if (CA && CB && *CA == *CB)
        return false;
      continue;
    case CmpKind::Lt:
      if (CA && CB && ((*CA < *CB) == L.Negated))
        return false;
      if (A == B && !L.Negated)
        return false; // x < x
      continue;
    case CmpKind::Le:
      if (CA && CB && ((*CA <= *CB) == L.Negated))
        return false;
      if (A == B && L.Negated)
        return false; // !(x <= x)
      continue;
    }
  }
  return true;
}

bool Cond::satisfiableUnder(const EventFacts &Src,
                            const EventFacts &Tgt) const {
  for (const std::vector<Literal> &Clause : dnf())
    if (clauseSatisfiableUnder(Clause, Src, Tgt))
      return true;
  return false;
}

std::string Cond::str() const {
  switch (kind()) {
  case NodeKind::True:
    return "true";
  case NodeKind::False:
    return "false";
  case NodeKind::Atom: {
    Literal L{Root->Cmp, Root->A, Root->B, false};
    return L.str();
  }
  case NodeKind::Not:
    return "!(" + Root->Children[0].str() + ")";
  case NodeKind::And:
  case NodeKind::Or: {
    std::vector<std::string> Parts;
    for (const Cond &C : Root->Children)
      Parts.push_back(C.str());
    const char *Sep = kind() == NodeKind::And ? " && " : " || ";
    return "(" + join(Parts, Sep) + ")";
  }
  }
  return "?";
}

static Term flipTerm(const Term &T) {
  if (T.Kind == Term::ArgSrc)
    return Term::argTgt(T.Index);
  if (T.Kind == Term::ArgTgt)
    return Term::argSrc(T.Index);
  return T;
}

Cond Cond::flipped() const {
  switch (kind()) {
  case NodeKind::True:
  case NodeKind::False:
    return *this;
  case NodeKind::Atom:
    return cmp(Root->Cmp, flipTerm(Root->A), flipTerm(Root->B));
  case NodeKind::Not:
    return !Root->Children[0].flipped();
  case NodeKind::And: {
    Cond R = t();
    for (const Cond &C : Root->Children)
      R = R && C.flipped();
    return R;
  }
  case NodeKind::Or: {
    Cond R = f();
    for (const Cond &C : Root->Children)
      R = R || C.flipped();
    return R;
  }
  }
  return *this;
}
