//===- spec/CommutativityCache.cpp ----------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "spec/CommutativityCache.h"

#include <cstdlib>
#include <mutex>
#include <shared_mutex>

using namespace c4;

namespace {

/// Snapshot blob header. The version is independent of the DiskCache entry
/// format (which frames and checksums the blob); it covers the *textual*
/// key encoding below.
constexpr const char *SnapshotHeader = "c4-oracle-snapshot 2";

/// Renders one fact vector as `kind.value.symbol` triples joined by ','.
void renderFacts(std::string &Out, const EventFacts &F) {
  for (size_t I = 0; I != F.size(); ++I) {
    if (I)
      Out += ',';
    Out += std::to_string(static_cast<unsigned>(F[I].Kind));
    Out += '.';
    Out += std::to_string(static_cast<long long>(F[I].Value));
    Out += '.';
    Out += std::to_string(F[I].Symbol);
  }
}

bool parseFacts(const std::string &S, EventFacts &Out) {
  Out.clear();
  if (S.empty())
    return true;
  size_t Pos = 0;
  while (true) {
    size_t End = S.find(',', Pos);
    std::string Item =
        S.substr(Pos, End == std::string::npos ? End : End - Pos);
    size_t D1 = Item.find('.');
    size_t D2 = D1 == std::string::npos ? D1 : Item.find('.', D1 + 1);
    if (D2 == std::string::npos)
      return false;
    char *E1 = nullptr, *E2 = nullptr, *E3 = nullptr;
    std::string KindS = Item.substr(0, D1);
    std::string ValS = Item.substr(D1 + 1, D2 - D1 - 1);
    std::string SymS = Item.substr(D2 + 1);
    unsigned long Kind = std::strtoul(KindS.c_str(), &E1, 10);
    long long Val = std::strtoll(ValS.c_str(), &E2, 10);
    unsigned long Sym = std::strtoul(SymS.c_str(), &E3, 10);
    if (!E1 || *E1 || !E2 || *E2 || !E3 || *E3 ||
        Kind > ArgFact::Unique)
      return false;
    ArgFact F;
    F.Kind = static_cast<ArgFact::KindTy>(Kind);
    F.Value = Val;
    F.Symbol = static_cast<unsigned>(Sym);
    Out.push_back(F);
    if (End == std::string::npos)
      return true;
    Pos = End + 1;
  }
}

} // namespace

static size_t hashCombine(size_t Seed, size_t V) {
  // Boost-style mix; good enough for cache keys.
  return Seed ^ (V + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2));
}

size_t CommutativityOracle::CondKeyHash::operator()(const CondKey &K) const {
  size_t H = std::hash<const void *>()(K.Type);
  H = hashCombine(H, K.A);
  H = hashCombine(H, K.B);
  H = hashCombine(H, static_cast<size_t>(K.Sel));
  return H;
}

bool CommutativityOracle::SatKey::operator==(const SatKey &O) const {
  if (!(CK == O.CK) || Assist != O.Assist || Src.size() != O.Src.size() ||
      Tgt.size() != O.Tgt.size())
    return false;
  auto FactsEq = [](const EventFacts &X, const EventFacts &Y) {
    for (size_t I = 0; I != X.size(); ++I)
      if (X[I].Kind != Y[I].Kind || X[I].Value != Y[I].Value ||
          X[I].Symbol != Y[I].Symbol)
        return false;
    return true;
  };
  return FactsEq(Src, O.Src) && FactsEq(Tgt, O.Tgt);
}

size_t CommutativityOracle::SatKeyHash::operator()(const SatKey &K) const {
  size_t H = CondKeyHash()(K.CK);
  H = hashCombine(H, static_cast<size_t>(K.Assist));
  auto MixFacts = [&H](const EventFacts &F) {
    H = hashCombine(H, F.size());
    for (const ArgFact &A : F) {
      H = hashCombine(H, static_cast<size_t>(A.Kind));
      H = hashCombine(H, static_cast<size_t>(A.Value));
      H = hashCombine(H, A.Symbol);
    }
  };
  MixFacts(K.Src);
  MixFacts(K.Tgt);
  return H;
}

CommutativityOracle::CondSel
CommutativityOracle::notComSel(CommuteMode Mode) {
  switch (Mode) {
  case CommuteMode::Plain:
    return CondSel::NotComPlain;
  case CommuteMode::Far:
    return CondSel::NotComFar;
  case CommuteMode::Asym:
    break;
  }
  return CondSel::NotComAsym;
}

const Cond &CommutativityOracle::condFor(CondKey K) {
  {
    std::shared_lock<std::shared_mutex> Lock(CondMu);
    auto It = Conds.find(K);
    if (It != Conds.end()) {
      CondHits.fetch_add(1, std::memory_order_relaxed);
      return It->second;
    }
  }
  CondMisses.fetch_add(1, std::memory_order_relaxed);
  Cond C;
  switch (K.Sel) {
  case CondSel::NotComPlain:
    C = !commutesCond(*K.Type, K.A, K.B, CommuteMode::Plain);
    break;
  case CondSel::NotComFar:
    C = !commutesCond(*K.Type, K.A, K.B, CommuteMode::Far);
    break;
  case CondSel::NotComAsym:
    C = !commutesCond(*K.Type, K.A, K.B, CommuteMode::Asym);
    break;
  case CondSel::AbsPlain:
    C = absorbsCond(*K.Type, K.A, K.B, /*Far=*/false);
    break;
  case CondSel::AbsFar:
    C = absorbsCond(*K.Type, K.A, K.B, /*Far=*/true);
    break;
  case CondSel::NotAbsPlain:
    C = !absorbsCond(*K.Type, K.A, K.B, /*Far=*/false);
    break;
  case CondSel::NotAbsFar:
    C = !absorbsCond(*K.Type, K.A, K.B, /*Far=*/true);
    break;
  }
  std::unique_lock<std::shared_mutex> Lock(CondMu);
  // On a race, keep the first insertion (both computed the same condition).
  return Conds.try_emplace(K, std::move(C)).first->second;
}

const Cond &CommutativityOracle::notCommutes(const DataTypeSpec &Type,
                                             unsigned A, unsigned B,
                                             CommuteMode Mode) {
  return condFor({&Type, A, B, notComSel(Mode)});
}

const Cond &CommutativityOracle::absorbs(const DataTypeSpec &Type, unsigned A,
                                         unsigned B, bool Far) {
  return condFor({&Type, A, B, Far ? CondSel::AbsFar : CondSel::AbsPlain});
}

const Cond &CommutativityOracle::notAbsorbs(const DataTypeSpec &Type,
                                            unsigned A, unsigned B,
                                            bool Far) {
  return condFor(
      {&Type, A, B, Far ? CondSel::NotAbsFar : CondSel::NotAbsPlain});
}

bool CommutativityOracle::satisfiable(CondKey K, const EventFacts &Src,
                                      const EventFacts &Tgt,
                                      const SatAssist *Assist) {
  bool HaveAssist = Assist && *Assist;
  SatKey SK{K, Src, Tgt, HaveAssist};
  {
    std::shared_lock<std::shared_mutex> Lock(SatMu);
    auto It = Sats.find(SK);
    if (It != Sats.end()) {
      SatHits.fetch_add(1, std::memory_order_relaxed);
      if (It->second.Imported)
        ImportedHits.fetch_add(1, std::memory_order_relaxed);
      return It->second.Sat;
    }
  }
  SatMisses.fetch_add(1, std::memory_order_relaxed);
  const Cond &C = condFor(K);
  bool Verdict;
  AssistVerdict AV =
      HaveAssist ? (*Assist)(C, Src, Tgt) : AssistVerdict::Unknown;
  if (AV != AssistVerdict::Unknown) {
    SatAssistProven.fetch_add(1, std::memory_order_relaxed);
    Verdict = AV == AssistVerdict::Sat;
  } else {
    Verdict = C.satisfiableUnder(Src, Tgt);
  }
  std::unique_lock<std::shared_mutex> Lock(SatMu);
  return Sats.try_emplace(std::move(SK), SatVal{Verdict, /*Imported=*/false})
      .first->second.Sat;
}

bool CommutativityOracle::notCommutesSatisfiable(
    const DataTypeSpec &Type, unsigned A, unsigned B, CommuteMode Mode,
    const EventFacts &Src, const EventFacts &Tgt, const SatAssist *Assist) {
  return satisfiable({&Type, A, B, notComSel(Mode)}, Src, Tgt, Assist);
}

bool CommutativityOracle::notAbsorbsSatisfiable(
    const DataTypeSpec &Type, unsigned A, unsigned B, bool Far,
    const EventFacts &Src, const EventFacts &Tgt, const SatAssist *Assist) {
  return satisfiable({&Type, A, B, Far ? CondSel::NotAbsFar : CondSel::NotAbsPlain},
                     Src, Tgt, Assist);
}

void OracleSnapshot::merge(const OracleSnapshot &O) {
  for (const auto &[K, V] : O.Entries)
    Entries.emplace(K, V);
}

std::string OracleSnapshot::serialize() const {
  std::string Out = SnapshotHeader;
  Out += '\n';
  for (const auto &[K, V] : Entries) {
    Out += V ? '+' : '-';
    Out += K;
    Out += '\n';
  }
  return Out;
}

std::optional<OracleSnapshot> OracleSnapshot::deserialize(
    const std::string &Blob) {
  size_t Nl = Blob.find('\n');
  if (Nl == std::string::npos || Blob.substr(0, Nl) != SnapshotHeader)
    return std::nullopt;
  OracleSnapshot S;
  size_t Pos = Nl + 1;
  while (Pos < Blob.size()) {
    size_t End = Blob.find('\n', Pos);
    if (End == std::string::npos)
      return std::nullopt; // truncated final line
    if (End == Pos)
      return std::nullopt; // empty line: not something serialize() emits
    char Verdict = Blob[Pos];
    if (Verdict != '+' && Verdict != '-')
      return std::nullopt;
    S.Entries.emplace(Blob.substr(Pos + 1, End - Pos - 1), Verdict == '+');
    Pos = End + 1;
  }
  return S;
}

void CommutativityOracle::exportSats(OracleSnapshot &Out) const {
  std::shared_lock<std::shared_mutex> Lock(SatMu);
  for (const auto &[K, Val] : Sats) {
    std::string Key = K.CK.Type->name();
    Key += '|';
    Key += std::to_string(K.CK.A);
    Key += '|';
    Key += std::to_string(K.CK.B);
    Key += '|';
    Key += std::to_string(static_cast<unsigned>(K.CK.Sel));
    Key += '|';
    Key += K.Assist ? '1' : '0';
    Key += '|';
    renderFacts(Key, K.Src);
    Key += '|';
    renderFacts(Key, K.Tgt);
    Out.Entries.emplace(std::move(Key), Val.Sat);
  }
}

unsigned CommutativityOracle::importSats(const OracleSnapshot &S,
                                         const TypeRegistry &Reg) {
  unsigned Imported = 0;
  std::unique_lock<std::shared_mutex> Lock(SatMu);
  for (const auto &[Key, Verdict] : S.Entries) {
    // Split `type|A|B|sel|assist|srcfacts|tgtfacts`.
    size_t P1 = Key.find('|');
    size_t P2 = P1 == std::string::npos ? P1 : Key.find('|', P1 + 1);
    size_t P3 = P2 == std::string::npos ? P2 : Key.find('|', P2 + 1);
    size_t P4 = P3 == std::string::npos ? P3 : Key.find('|', P3 + 1);
    size_t P5 = P4 == std::string::npos ? P4 : Key.find('|', P4 + 1);
    size_t P6 = P5 == std::string::npos ? P5 : Key.find('|', P5 + 1);
    if (P6 == std::string::npos)
      continue;
    const DataTypeSpec *Type = Reg.lookup(Key.substr(0, P1));
    if (!Type)
      continue; // snapshot from a registry with extra custom types
    char *EA = nullptr, *EB = nullptr, *ES = nullptr;
    std::string AS = Key.substr(P1 + 1, P2 - P1 - 1);
    std::string BS = Key.substr(P2 + 1, P3 - P2 - 1);
    std::string SelS = Key.substr(P3 + 1, P4 - P3 - 1);
    std::string AssistS = Key.substr(P4 + 1, P5 - P4 - 1);
    unsigned long A = std::strtoul(AS.c_str(), &EA, 10);
    unsigned long B = std::strtoul(BS.c_str(), &EB, 10);
    unsigned long Sel = std::strtoul(SelS.c_str(), &ES, 10);
    if (!EA || *EA || !EB || *EB || !ES || *ES ||
        Sel > static_cast<unsigned long>(CondSel::NotAbsFar) ||
        A >= Type->ops().size() || B >= Type->ops().size() ||
        (AssistS != "0" && AssistS != "1"))
      continue;
    SatKey SK;
    SK.CK = {Type, static_cast<unsigned>(A), static_cast<unsigned>(B),
             static_cast<CondSel>(Sel)};
    SK.Assist = AssistS == "1";
    if (!parseFacts(Key.substr(P5 + 1, P6 - P5 - 1), SK.Src) ||
        !parseFacts(Key.substr(P6 + 1), SK.Tgt))
      continue;
    if (Sats.try_emplace(std::move(SK), SatVal{Verdict, /*Imported=*/true})
            .second)
      ++Imported;
  }
  return Imported;
}

OracleStats CommutativityOracle::stats() const {
  OracleStats S;
  S.CondHits = CondHits.load(std::memory_order_relaxed);
  S.CondMisses = CondMisses.load(std::memory_order_relaxed);
  S.SatHits = SatHits.load(std::memory_order_relaxed);
  S.SatMisses = SatMisses.load(std::memory_order_relaxed);
  S.SatAssistProven = SatAssistProven.load(std::memory_order_relaxed);
  S.ImportedHits = ImportedHits.load(std::memory_order_relaxed);
  return S;
}
