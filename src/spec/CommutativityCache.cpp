//===- spec/CommutativityCache.cpp ----------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "spec/CommutativityCache.h"

#include <mutex>

using namespace c4;

static size_t hashCombine(size_t Seed, size_t V) {
  // Boost-style mix; good enough for cache keys.
  return Seed ^ (V + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2));
}

size_t CommutativityOracle::CondKeyHash::operator()(const CondKey &K) const {
  size_t H = std::hash<const void *>()(K.Type);
  H = hashCombine(H, K.A);
  H = hashCombine(H, K.B);
  H = hashCombine(H, static_cast<size_t>(K.Sel));
  return H;
}

bool CommutativityOracle::SatKey::operator==(const SatKey &O) const {
  if (!(CK == O.CK) || Src.size() != O.Src.size() ||
      Tgt.size() != O.Tgt.size())
    return false;
  auto FactsEq = [](const EventFacts &X, const EventFacts &Y) {
    for (size_t I = 0; I != X.size(); ++I)
      if (X[I].Kind != Y[I].Kind || X[I].Value != Y[I].Value ||
          X[I].Symbol != Y[I].Symbol)
        return false;
    return true;
  };
  return FactsEq(Src, O.Src) && FactsEq(Tgt, O.Tgt);
}

size_t CommutativityOracle::SatKeyHash::operator()(const SatKey &K) const {
  size_t H = CondKeyHash()(K.CK);
  auto MixFacts = [&H](const EventFacts &F) {
    H = hashCombine(H, F.size());
    for (const ArgFact &A : F) {
      H = hashCombine(H, static_cast<size_t>(A.Kind));
      H = hashCombine(H, static_cast<size_t>(A.Value));
      H = hashCombine(H, A.Symbol);
    }
  };
  MixFacts(K.Src);
  MixFacts(K.Tgt);
  return H;
}

CommutativityOracle::CondSel
CommutativityOracle::notComSel(CommuteMode Mode) {
  switch (Mode) {
  case CommuteMode::Plain:
    return CondSel::NotComPlain;
  case CommuteMode::Far:
    return CondSel::NotComFar;
  case CommuteMode::Asym:
    break;
  }
  return CondSel::NotComAsym;
}

const Cond &CommutativityOracle::condFor(CondKey K) {
  {
    std::shared_lock<std::shared_mutex> Lock(CondMu);
    auto It = Conds.find(K);
    if (It != Conds.end()) {
      CondHits.fetch_add(1, std::memory_order_relaxed);
      return It->second;
    }
  }
  CondMisses.fetch_add(1, std::memory_order_relaxed);
  Cond C;
  switch (K.Sel) {
  case CondSel::NotComPlain:
    C = !commutesCond(*K.Type, K.A, K.B, CommuteMode::Plain);
    break;
  case CondSel::NotComFar:
    C = !commutesCond(*K.Type, K.A, K.B, CommuteMode::Far);
    break;
  case CondSel::NotComAsym:
    C = !commutesCond(*K.Type, K.A, K.B, CommuteMode::Asym);
    break;
  case CondSel::AbsPlain:
    C = absorbsCond(*K.Type, K.A, K.B, /*Far=*/false);
    break;
  case CondSel::AbsFar:
    C = absorbsCond(*K.Type, K.A, K.B, /*Far=*/true);
    break;
  case CondSel::NotAbsPlain:
    C = !absorbsCond(*K.Type, K.A, K.B, /*Far=*/false);
    break;
  case CondSel::NotAbsFar:
    C = !absorbsCond(*K.Type, K.A, K.B, /*Far=*/true);
    break;
  }
  std::unique_lock<std::shared_mutex> Lock(CondMu);
  // On a race, keep the first insertion (both computed the same condition).
  return Conds.try_emplace(K, std::move(C)).first->second;
}

const Cond &CommutativityOracle::notCommutes(const DataTypeSpec &Type,
                                             unsigned A, unsigned B,
                                             CommuteMode Mode) {
  return condFor({&Type, A, B, notComSel(Mode)});
}

const Cond &CommutativityOracle::absorbs(const DataTypeSpec &Type, unsigned A,
                                         unsigned B, bool Far) {
  return condFor({&Type, A, B, Far ? CondSel::AbsFar : CondSel::AbsPlain});
}

const Cond &CommutativityOracle::notAbsorbs(const DataTypeSpec &Type,
                                            unsigned A, unsigned B,
                                            bool Far) {
  return condFor(
      {&Type, A, B, Far ? CondSel::NotAbsFar : CondSel::NotAbsPlain});
}

bool CommutativityOracle::satisfiable(CondKey K, const EventFacts &Src,
                                      const EventFacts &Tgt) {
  SatKey SK{K, Src, Tgt};
  {
    std::shared_lock<std::shared_mutex> Lock(SatMu);
    auto It = Sats.find(SK);
    if (It != Sats.end()) {
      SatHits.fetch_add(1, std::memory_order_relaxed);
      return It->second;
    }
  }
  SatMisses.fetch_add(1, std::memory_order_relaxed);
  bool Verdict = condFor(K).satisfiableUnder(Src, Tgt);
  std::unique_lock<std::shared_mutex> Lock(SatMu);
  return Sats.try_emplace(std::move(SK), Verdict).first->second;
}

bool CommutativityOracle::notCommutesSatisfiable(
    const DataTypeSpec &Type, unsigned A, unsigned B, CommuteMode Mode,
    const EventFacts &Src, const EventFacts &Tgt) {
  return satisfiable({&Type, A, B, notComSel(Mode)}, Src, Tgt);
}

bool CommutativityOracle::notAbsorbsSatisfiable(const DataTypeSpec &Type,
                                                unsigned A, unsigned B,
                                                bool Far,
                                                const EventFacts &Src,
                                                const EventFacts &Tgt) {
  return satisfiable({&Type, A, B, Far ? CondSel::NotAbsFar : CondSel::NotAbsPlain},
                     Src, Tgt);
}

OracleStats CommutativityOracle::stats() const {
  OracleStats S;
  S.CondHits = CondHits.load(std::memory_order_relaxed);
  S.CondMisses = CondMisses.load(std::memory_order_relaxed);
  S.SatHits = SatHits.load(std::memory_order_relaxed);
  S.SatMisses = SatMisses.load(std::memory_order_relaxed);
  return S;
}
