//===- spec/Cond.h - Symbolic conditions over event arguments ---*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The condition language Φ of the paper: boolean combinations of equalities
/// and integer comparisons over the arguments of a *source* and a *target*
/// event plus integer constants. Conditions serve three roles:
///
///  1. rewrite specifications (Definition 2): sufficient conditions for
///     commutativity and absorption between two events,
///  2. invariants attached to abstract event-order edges (Definition 1), and
///  3. control-flow path conditions inferred by the front end (paper §8).
///
/// A condition can be (a) evaluated on concrete argument vectors, (b) checked
/// for satisfiability under per-argument facts — the engine behind the
/// SSG-based analysis (paper §6) — and (c) translated to Z3 terms by the SMT
/// back end (src/smt). Satisfiability uses DNF expansion plus congruence
/// closure over equalities; order atoms are treated conservatively (assumed
/// satisfiable unless ground), which keeps the analysis sound.
///
//===----------------------------------------------------------------------===//

#ifndef C4_SPEC_COND_H
#define C4_SPEC_COND_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace c4 {

/// Smallest value a freshly generated unique identity (paper §8) can take.
/// The SMT back end axiomatises fresh return values as pairwise distinct and
/// `>= FreshValueMin`; the congruence engine below mirrors exactly those
/// axioms when reasoning about `ArgFact::Unique` facts, so the two layers
/// must agree on this bound.
inline constexpr int64_t FreshValueMin = 1000000000;

/// A term: an argument slot of the source event, an argument slot of the
/// target event, or an integer constant. Argument slot indices address the
/// combined value vector (input arguments followed by the return value).
struct Term {
  enum KindTy : uint8_t { ArgSrc, ArgTgt, Const } Kind;
  unsigned Index = 0; ///< Slot index for ArgSrc/ArgTgt.
  int64_t Value = 0;  ///< Constant value for Const.

  static Term argSrc(unsigned I) { return {ArgSrc, I, 0}; }
  static Term argTgt(unsigned I) { return {ArgTgt, I, 0}; }
  static Term constant(int64_t V) { return {Const, 0, V}; }

  bool operator==(const Term &O) const {
    return Kind == O.Kind && Index == O.Index && Value == O.Value;
  }

  std::string str() const;
};

/// The comparison operator of an atom.
enum class CmpKind : uint8_t { Eq, Lt, Le };

/// A possibly negated comparison literal.
struct Literal {
  CmpKind Cmp;
  Term A;
  Term B;
  bool Negated;

  std::string str() const;
};

/// What is known statically about one argument slot of an abstract event.
/// Used by the SSG stage to decide satisfiability of ¬com / ¬abs formulas
/// under the abstract history's invariants (paper §6).
struct ArgFact {
  enum KindTy : uint8_t {
    Free,     ///< nothing known
    Constant, ///< slot equals an integer constant
    Symbolic, ///< slot equals a named symbolic constant (VarG, or VarL
              ///< resolved per session)
    Unique    ///< slot equals a freshly generated unique identity (paper §8);
              ///< distinct ids are guaranteed disequal, and any id is
              ///< disequal from constants below FreshValueMin
  } Kind = Free;
  int64_t Value = 0;   ///< for Constant
  unsigned Symbol = 0; ///< for Symbolic/Unique: a globally resolved id

  static ArgFact free() { return {}; }
  static ArgFact constant(int64_t V) { return {Constant, V, 0}; }
  static ArgFact symbol(unsigned S) { return {Symbolic, 0, S}; }
  static ArgFact unique(unsigned Id) { return {Unique, 0, Id}; }
};

/// Per-event argument facts (one entry per combined value slot).
using EventFacts = std::vector<ArgFact>;

/// An immutable boolean condition over source/target argument terms.
///
/// Conditions have value semantics; internally they share subtrees.
class Cond {
public:
  enum class NodeKind : uint8_t { True, False, Atom, Not, And, Or };

  /// The always-true condition (also the default).
  Cond();

  static Cond t();
  static Cond f();
  static Cond cmp(CmpKind K, Term A, Term B);
  static Cond eq(Term A, Term B) { return cmp(CmpKind::Eq, A, B); }
  static Cond ne(Term A, Term B) { return !eq(A, B); }
  static Cond lt(Term A, Term B) { return cmp(CmpKind::Lt, A, B); }
  static Cond le(Term A, Term B) { return cmp(CmpKind::Le, A, B); }

  Cond operator&&(const Cond &O) const;
  Cond operator||(const Cond &O) const;
  Cond operator!() const;

  NodeKind kind() const;
  bool isTrue() const { return kind() == NodeKind::True; }
  bool isFalse() const { return kind() == NodeKind::False; }

  /// For Atom nodes: the (un-negated) literal parts.
  CmpKind atomCmp() const;
  Term atomLHS() const;
  Term atomRHS() const;
  /// For Not/And/Or nodes: the children.
  const std::vector<Cond> &children() const;

  /// Evaluates the condition on concrete value vectors.
  bool eval(const std::vector<int64_t> &SrcVals,
            const std::vector<int64_t> &TgtVals) const;

  /// Expands to disjunctive normal form: a disjunction of conjunctions of
  /// literals. An empty outer vector means "false"; an empty inner clause
  /// means "true". Expansion is capped; on overflow, returns a single empty
  /// clause (i.e. over-approximates by "true"), keeping clients sound.
  std::vector<std::vector<Literal>> dnf() const;

  /// As above, but additionally reports whether the expansion overflowed
  /// (and thus over-approximates by "true"). Clients proving *un*satisfiable
  /// must treat an overflowed expansion as inconclusive.
  std::vector<std::vector<Literal>> dnf(bool &Overflow) const;

  /// Returns true if the condition can be satisfied under the given facts
  /// about the two events' argument slots. The check is complete for
  /// equality literals (congruence closure over constants and symbols) and
  /// conservative (may answer true) for order literals on free slots.
  bool satisfiableUnder(const EventFacts &Src, const EventFacts &Tgt) const;

  /// Renders the condition for diagnostics.
  std::string str() const;

  /// Swaps the roles of source and target arguments in every term. Used to
  /// orient rewrite-spec formulas, which are indexed by ordered operation
  /// pairs.
  Cond flipped() const;

  /// Internal tree node; public only so implementation helpers can build
  /// shared singletons. Not part of the stable API.
  struct Node;

private:
  explicit Cond(std::shared_ptr<const Node> N) : Root(std::move(N)) {}
  std::shared_ptr<const Node> Root;
};

/// Decides satisfiability of a conjunction of literals under argument facts.
/// Exposed for testing; `Cond::satisfiableUnder` DNF-expands and calls this
/// per clause.
bool clauseSatisfiableUnder(const std::vector<Literal> &Clause,
                            const EventFacts &Src, const EventFacts &Tgt);

} // namespace c4

#endif // C4_SPEC_COND_H
