//===- spec/CommutativityCache.h - Memoized rewrite-spec oracle -*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A shared, thread-safe oracle memoizing the two symbolic quantities every
/// analysis stage keeps recomputing:
///
///  1. the ¬commutes / absorbs / ¬absorbs `Cond` for an ordered operation
///     pair of one data type (`commutesCond` / `absorbsCond` build a fresh
///     condition tree on every call, and the analyzer asks for the same
///     `(type, opA, opB, mode)` tuple once per event pair per SSG — thousands
///     of times per run across unfoldings and merges), and
///
///  2. the `satisfiableUnder` verdict of such a condition under a pair of
///     resolved argument-fact vectors. The verdict depends only on the
///     condition and the two fact vectors (congruence closure sees symbol
///     *identities*, never their origin), so it is keyed by
///     `(cond key, source facts, target facts)` and valid across abstract
///     histories, unfoldings and merges alike.
///
/// One oracle is constructed per `analyze()` call and threaded through the
/// SSG builder, the bounded-check loop and the SMT encoder.
///
/// Thread-safety contract: all lookup methods may be called concurrently
/// (the parallel bounded check shares one oracle across workers). Lookups
/// take a shared lock; on a miss the value is computed outside any lock and
/// inserted under an exclusive lock (duplicated computation on a race is
/// harmless — both sides compute the same value). `Cond` references returned
/// by the cond accessors stay valid for the oracle's lifetime (node-based
/// map, no erasure). The hit/miss counters are relaxed atomics; `stats()`
/// gives a point-in-time snapshot.
///
//===----------------------------------------------------------------------===//

#ifndef C4_SPEC_COMMUTATIVITYCACHE_H
#define C4_SPEC_COMMUTATIVITYCACHE_H

#include "spec/Registry.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>

namespace c4 {

/// Point-in-time snapshot of the oracle's cache counters.
struct OracleStats {
  uint64_t CondHits = 0;
  uint64_t CondMisses = 0;
  uint64_t SatHits = 0;
  uint64_t SatMisses = 0;
  /// Satisfiability misses decided by the assist callback (no congruence
  /// fallback needed). Subset of SatMisses.
  uint64_t SatAssistProven = 0;
  /// Hits whose entry came from an imported snapshot rather than being
  /// computed this run — persisted pair verdicts (commutativity /
  /// absorption satisfiability, the inputs of every SSG edge) actually
  /// reused. Subset of SatHits.
  uint64_t ImportedHits = 0;
};

/// Verdict of an external satisfiability assist (see SatAssist).
enum class AssistVerdict : uint8_t { Sat, Unsat, Unknown };

/// An optional decision procedure the analyzer may plug into the oracle's
/// satisfiability path. On a cache miss the oracle first consults the
/// assist; a definite Sat/Unsat verdict is cached as-is, Unknown falls back
/// to the built-in DNF + congruence-closure check. A definite verdict must
/// be a *proof* about the condition's concretizations under the given fact
/// vectors (Unsat: none satisfies it; Sat: a witness exists) — typically
/// the assist decides strictly more structure than congruence closure
/// (ordering atoms, fresh-value bounds), so it may answer Unsat where the
/// fallback conservatively answers sat. Verdicts are cached and persisted;
/// the assist must be safe to call concurrently. Declared here as a
/// std::function so the spec layer stays independent of whichever domain
/// implements it.
using SatAssist =
    std::function<AssistVerdict(const Cond &, const EventFacts &,
                                const EventFacts &)>;

/// A portable image of an oracle's satisfiability table, the unit of
/// cross-run cache persistence. In-memory oracle keys hold `DataTypeSpec`
/// pointers, which are meaningless outside the owning process (every
/// compiled program carries its own `TypeRegistry`); a snapshot flattens
/// each key into a stable textual form — type *name*, op indices, condition
/// selector and the two resolved fact vectors — so entries can be written
/// to disk and rehydrated into any process whose registry knows the same
/// type names. Verdict reuse across programs is sound because
/// `satisfiableUnder` sees only symbol identities and constants, never
/// which history produced the facts (see the oracle's file comment).
///
/// Entries are kept sorted (std::map), so `serialize()` is deterministic:
/// equal snapshots produce byte-equal blobs.
class OracleSnapshot {
public:
  size_t size() const { return Entries.size(); }
  bool empty() const { return Entries.empty(); }

  /// Union with \p O. On a key collision both sides hold the same verdict
  /// (entries are pure functions of the key); the existing one is kept.
  void merge(const OracleSnapshot &O);

  /// Versioned text serialization (one entry per line, sorted).
  std::string serialize() const;

  /// Parses a blob produced by serialize(). Returns nullopt on a malformed
  /// or version-mismatched blob — callers treat that as an empty cache.
  static std::optional<OracleSnapshot> deserialize(const std::string &Blob);

private:
  friend class CommutativityOracle;
  /// Stable textual sat-key → verdict.
  std::map<std::string, bool> Entries;
};

/// Memoizes rewrite-spec conditions and their satisfiability verdicts. See
/// the file comment for the thread-safety contract.
class CommutativityOracle {
public:
  CommutativityOracle() = default;
  CommutativityOracle(const CommutativityOracle &) = delete;
  CommutativityOracle &operator=(const CommutativityOracle &) = delete;

  /// The memoized `!commutesCond(Type, A, B, Mode)`.
  const Cond &notCommutes(const DataTypeSpec &Type, unsigned A, unsigned B,
                          CommuteMode Mode);

  /// The memoized `absorbsCond(Type, A, B, Far)`.
  const Cond &absorbs(const DataTypeSpec &Type, unsigned A, unsigned B,
                      bool Far);

  /// The memoized `!absorbsCond(Type, A, B, Far)`.
  const Cond &notAbsorbs(const DataTypeSpec &Type, unsigned A, unsigned B,
                         bool Far);

  /// Memoized `notCommutes(...).satisfiableUnder(Src, Tgt)`. The caller is
  /// expected to have short-circuited the constant-false case via
  /// notCommutes() (the verdict is still correct without, just slower).
  /// \p Assist, when non-null and non-empty, is consulted first on a cache
  /// miss (see SatAssist). Assisted and unassisted verdicts are cached under
  /// distinct keys: the assist decides strictly more ordering structure, so
  /// mixing them would make results depend on call order.
  bool notCommutesSatisfiable(const DataTypeSpec &Type, unsigned A,
                              unsigned B, CommuteMode Mode,
                              const EventFacts &Src, const EventFacts &Tgt,
                              const SatAssist *Assist = nullptr);

  /// Memoized `notAbsorbs(...).satisfiableUnder(Src, Tgt)`.
  bool notAbsorbsSatisfiable(const DataTypeSpec &Type, unsigned A, unsigned B,
                             bool Far, const EventFacts &Src,
                             const EventFacts &Tgt,
                             const SatAssist *Assist = nullptr);

  OracleStats stats() const;

  /// Flattens the satisfiability table into \p Out (merging with whatever
  /// \p Out already holds). Thread-safe; takes the sat lock shared.
  void exportSats(OracleSnapshot &Out) const;

  /// Pre-seeds the satisfiability table from \p S, resolving type names
  /// against \p Reg. Entries naming unknown types are skipped; returns the
  /// number imported. Hit/miss counters are untouched — imported entries
  /// count as hits when the analysis actually reaches them. Call before
  /// the oracle is shared with workers (takes the sat lock exclusively).
  unsigned importSats(const OracleSnapshot &S, const TypeRegistry &Reg);

private:
  /// Which derived condition of the pair is meant. Values double as part of
  /// the hash key.
  enum class CondSel : uint8_t {
    NotComPlain,
    NotComFar,
    NotComAsym,
    AbsPlain,
    AbsFar,
    NotAbsPlain,
    NotAbsFar,
  };

  struct CondKey {
    const DataTypeSpec *Type;
    unsigned A;
    unsigned B;
    CondSel Sel;
    bool operator==(const CondKey &O) const {
      return Type == O.Type && A == O.A && B == O.B && Sel == O.Sel;
    }
  };
  struct CondKeyHash {
    size_t operator()(const CondKey &K) const;
  };

  struct SatKey {
    CondKey CK;
    EventFacts Src;
    EventFacts Tgt;
    /// Whether the verdict was produced with an assist installed. Assisted
    /// runs can prove more conjunctions unsatisfiable, so the two verdict
    /// families live under distinct keys (and snapshot entries).
    bool Assist = false;
    bool operator==(const SatKey &O) const;
  };
  struct SatKeyHash {
    size_t operator()(const SatKey &K) const;
  };

  /// A cached satisfiability verdict, tagged with whether it was imported
  /// from a snapshot (for the ImportedHits / pair_verdicts_reused stat).
  struct SatVal {
    bool Sat;
    bool Imported;
  };

  static CondSel notComSel(CommuteMode Mode);
  const Cond &condFor(CondKey K);
  bool satisfiable(CondKey K, const EventFacts &Src, const EventFacts &Tgt,
                   const SatAssist *Assist);

  mutable std::shared_mutex CondMu;
  std::unordered_map<CondKey, Cond, CondKeyHash> Conds;
  mutable std::shared_mutex SatMu;
  std::unordered_map<SatKey, SatVal, SatKeyHash> Sats;

  std::atomic<uint64_t> CondHits{0}, CondMisses{0};
  std::atomic<uint64_t> SatHits{0}, SatMisses{0};
  std::atomic<uint64_t> SatAssistProven{0};
  std::atomic<uint64_t> ImportedHits{0};
};

} // namespace c4

#endif // C4_SPEC_COMMUTATIVITYCACHE_H
