//===- spec/CommutativityCache.h - Memoized rewrite-spec oracle -*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A shared, thread-safe oracle memoizing the two symbolic quantities every
/// analysis stage keeps recomputing:
///
///  1. the ¬commutes / absorbs / ¬absorbs `Cond` for an ordered operation
///     pair of one data type (`commutesCond` / `absorbsCond` build a fresh
///     condition tree on every call, and the analyzer asks for the same
///     `(type, opA, opB, mode)` tuple once per event pair per SSG — thousands
///     of times per run across unfoldings and merges), and
///
///  2. the `satisfiableUnder` verdict of such a condition under a pair of
///     resolved argument-fact vectors. The verdict depends only on the
///     condition and the two fact vectors (congruence closure sees symbol
///     *identities*, never their origin), so it is keyed by
///     `(cond key, source facts, target facts)` and valid across abstract
///     histories, unfoldings and merges alike.
///
/// One oracle is constructed per `analyze()` call and threaded through the
/// SSG builder, the bounded-check loop and the SMT encoder.
///
/// Thread-safety contract: all lookup methods may be called concurrently
/// (the parallel bounded check shares one oracle across workers). Lookups
/// take a shared lock; on a miss the value is computed outside any lock and
/// inserted under an exclusive lock (duplicated computation on a race is
/// harmless — both sides compute the same value). `Cond` references returned
/// by the cond accessors stay valid for the oracle's lifetime (node-based
/// map, no erasure). The hit/miss counters are relaxed atomics; `stats()`
/// gives a point-in-time snapshot.
///
//===----------------------------------------------------------------------===//

#ifndef C4_SPEC_COMMUTATIVITYCACHE_H
#define C4_SPEC_COMMUTATIVITYCACHE_H

#include "spec/DataType.h"

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <unordered_map>

namespace c4 {

/// Point-in-time snapshot of the oracle's cache counters.
struct OracleStats {
  uint64_t CondHits = 0;
  uint64_t CondMisses = 0;
  uint64_t SatHits = 0;
  uint64_t SatMisses = 0;
};

/// Memoizes rewrite-spec conditions and their satisfiability verdicts. See
/// the file comment for the thread-safety contract.
class CommutativityOracle {
public:
  CommutativityOracle() = default;
  CommutativityOracle(const CommutativityOracle &) = delete;
  CommutativityOracle &operator=(const CommutativityOracle &) = delete;

  /// The memoized `!commutesCond(Type, A, B, Mode)`.
  const Cond &notCommutes(const DataTypeSpec &Type, unsigned A, unsigned B,
                          CommuteMode Mode);

  /// The memoized `absorbsCond(Type, A, B, Far)`.
  const Cond &absorbs(const DataTypeSpec &Type, unsigned A, unsigned B,
                      bool Far);

  /// The memoized `!absorbsCond(Type, A, B, Far)`.
  const Cond &notAbsorbs(const DataTypeSpec &Type, unsigned A, unsigned B,
                         bool Far);

  /// Memoized `notCommutes(...).satisfiableUnder(Src, Tgt)`. The caller is
  /// expected to have short-circuited the constant-false case via
  /// notCommutes() (the verdict is still correct without, just slower).
  bool notCommutesSatisfiable(const DataTypeSpec &Type, unsigned A,
                              unsigned B, CommuteMode Mode,
                              const EventFacts &Src, const EventFacts &Tgt);

  /// Memoized `notAbsorbs(...).satisfiableUnder(Src, Tgt)`.
  bool notAbsorbsSatisfiable(const DataTypeSpec &Type, unsigned A, unsigned B,
                             bool Far, const EventFacts &Src,
                             const EventFacts &Tgt);

  OracleStats stats() const;

private:
  /// Which derived condition of the pair is meant. Values double as part of
  /// the hash key.
  enum class CondSel : uint8_t {
    NotComPlain,
    NotComFar,
    NotComAsym,
    AbsPlain,
    AbsFar,
    NotAbsPlain,
    NotAbsFar,
  };

  struct CondKey {
    const DataTypeSpec *Type;
    unsigned A;
    unsigned B;
    CondSel Sel;
    bool operator==(const CondKey &O) const {
      return Type == O.Type && A == O.A && B == O.B && Sel == O.Sel;
    }
  };
  struct CondKeyHash {
    size_t operator()(const CondKey &K) const;
  };

  struct SatKey {
    CondKey CK;
    EventFacts Src;
    EventFacts Tgt;
    bool operator==(const SatKey &O) const;
  };
  struct SatKeyHash {
    size_t operator()(const SatKey &K) const;
  };

  static CondSel notComSel(CommuteMode Mode);
  const Cond &condFor(CondKey K);
  bool satisfiable(CondKey K, const EventFacts &Src, const EventFacts &Tgt);

  mutable std::shared_mutex CondMu;
  std::unordered_map<CondKey, Cond, CondKeyHash> Conds;
  mutable std::shared_mutex SatMu;
  std::unordered_map<SatKey, bool, SatKeyHash> Sats;

  std::atomic<uint64_t> CondHits{0}, CondMisses{0};
  std::atomic<uint64_t> SatHits{0}, SatMisses{0};
};

} // namespace c4

#endif // C4_SPEC_COMMUTATIVITYCACHE_H
