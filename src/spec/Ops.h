//===- spec/Ops.h - Operation signatures ------------------------*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operation signatures for replicated data types. The store is accessed via
/// a fixed set of updates (modify state, no return value) and queries (return
/// a value, no state change) — paper §3. The one hybrid is `add_row`-style
/// creation, which is an update that also returns a fresh unique identity
/// (paper §8, "fresh unique values").
///
//===----------------------------------------------------------------------===//

#ifndef C4_SPEC_OPS_H
#define C4_SPEC_OPS_H

#include <string>

namespace c4 {

/// Whether an operation modifies the store or reads from it.
enum class OpKind { Update, Query };

/// The static signature of one store operation.
struct OpSig {
  std::string Name;
  OpKind Kind;
  /// Number of input arguments (the return value, if any, is not counted).
  unsigned NumArgs;
  /// True if the operation returns a value. All queries return a value;
  /// updates normally do not, except fresh-id creators such as add_row.
  bool HasRet;
  /// True if the returned value is a freshly generated unique identity.
  bool Fresh = false;

  bool isUpdate() const { return Kind == OpKind::Update; }
  bool isQuery() const { return Kind == OpKind::Query; }

  /// Number of slots in the event's combined value vector (args + return).
  unsigned numVals() const { return NumArgs + (HasRet ? 1u : 0u); }
};

} // namespace c4

#endif // C4_SPEC_OPS_H
