//===- spec/MaxRegType.cpp - Monotonic max-register -----------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A monotonic max-register: put(v) merges by maximum, get() reads the
/// current maximum. This is the CRDT one *should* use for high scores: puts
/// always commute (max is commutative), a put of a smaller value is
/// absorbed by a larger one, and a get that returned r tolerates any put of
/// v ≤ r moving past it. The analyzer proves Tetris-style leaderboards
/// serializable once they use this type (examples/fix_with_crdts.cpp) —
/// the constructive counterpart of the paper's bug class (2),
/// read-modify-write on high-level data.
///
//===----------------------------------------------------------------------===//

#include "spec/Registry.h"
#include "spec/TypeTables.h"

#include <algorithm>
#include <cassert>

using namespace c4;

namespace {

class MaxRegState : public ContainerState {
public:
  void apply(const OpSig &Op, const std::vector<int64_t> &Vals) override {
    assert(Op.Name == "put" && "max-register has a single update");
    (void)Op;
    Val = std::max(Val, Vals[0]);
  }
  int64_t eval(const OpSig &Op,
               const std::vector<int64_t> &Args) const override {
    assert(Op.Name == "get" && "max-register has a single query");
    (void)Op;
    (void)Args;
    return Val;
  }
  std::unique_ptr<ContainerState> clone() const override {
    return std::make_unique<MaxRegState>(*this);
  }

private:
  int64_t Val = 0;
};

class MaxRegType : public TableSpec {
public:
  enum { Put, Get };
  MaxRegType()
      : TableSpec("maxreg",
                  {{"put", OpKind::Update, 1, false},
                   {"get", OpKind::Query, 0, true}}) {
    // max is commutative and idempotent: puts always commute.
    com(Put, Put, Cond::t());
    com(Put, Get, Cond::f());
    // A put is absorbed by any later put of a not-smaller value.
    abs(Put, Put, Cond::le(Term::argSrc(0), Term::argTgt(0)));
    // get():r tolerates a put(v) with v <= r moving before it (the maximum
    // cannot drop). Return slot of get is its only slot (index 0).
    asym(Put, Get, Cond::le(Term::argSrc(0), Term::argTgt(0)));
    // Monotonicity: every visible put bounds a get from below.
    det(Put, Get, ValueDet::slotLowerBound(0));
  }
  std::unique_ptr<ContainerState> makeState() const override {
    return std::make_unique<MaxRegState>();
  }
};

} // namespace

std::unique_ptr<DataTypeSpec> c4::makeMaxRegType() {
  return std::make_unique<MaxRegType>();
}
