//===- spec/BasicTypes.cpp - register, counter, map, set ------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rewrite specifications and sequential semantics for the register, counter,
/// map (Fig. 6) and set data types. For these types the far relations
/// coincide with the plain ones (paper §4.1), so only the plain tables and
/// the asymmetric entries are populated.
///
//===----------------------------------------------------------------------===//

#include "spec/Registry.h"
#include "spec/TypeTables.h"

#include <cassert>
#include <map>
#include <set>

using namespace c4;

// Term shorthands: source/target argument slots.
static Term s(unsigned I) { return Term::argSrc(I); }
static Term g(unsigned I) { return Term::argTgt(I); }
static Cond eq(Term A, Term B) { return Cond::eq(A, B); }
static Cond ne(Term A, Term B) { return Cond::ne(A, B); }

//===----------------------------------------------------------------------===//
// Register: put(v), get():v
//===----------------------------------------------------------------------===//

namespace {

class RegisterState : public ContainerState {
public:
  void apply(const OpSig &Op, const std::vector<int64_t> &Vals) override {
    assert(Op.Name == "put" && "register has a single update");
    (void)Op;
    Val = Vals[0];
  }
  int64_t eval(const OpSig &Op,
               const std::vector<int64_t> &Args) const override {
    assert(Op.Name == "get" && "register has a single query");
    (void)Op;
    (void)Args;
    return Val;
  }
  std::unique_ptr<ContainerState> clone() const override {
    return std::make_unique<RegisterState>(*this);
  }

private:
  int64_t Val = 0;
};

class RegisterType : public TableSpec {
public:
  enum { Put, Get };
  RegisterType()
      : TableSpec("register",
                  {{"put", OpKind::Update, 1, false},
                   {"get", OpKind::Query, 0, true}}) {
    com(Put, Put, eq(s(0), g(0))); // same written value
    com(Put, Get, Cond::f());
    abs(Put, Put, Cond::t());
    det(Put, Get, ValueDet::slot(0)); // the last put determines a get
  }
  std::unique_ptr<ContainerState> makeState() const override {
    return std::make_unique<RegisterState>();
  }
};

//===----------------------------------------------------------------------===//
// Counter: inc(d), read():n
//===----------------------------------------------------------------------===//

class CounterState : public ContainerState {
public:
  void apply(const OpSig &Op, const std::vector<int64_t> &Vals) override {
    assert(Op.Name == "inc" && "counter has a single update");
    (void)Op;
    Sum += Vals[0];
  }
  int64_t eval(const OpSig &Op,
               const std::vector<int64_t> &Args) const override {
    assert(Op.Name == "read" && "counter has a single query");
    (void)Op;
    (void)Args;
    return Sum;
  }
  std::unique_ptr<ContainerState> clone() const override {
    return std::make_unique<CounterState>(*this);
  }

private:
  int64_t Sum = 0;
};

class CounterType : public TableSpec {
public:
  enum { Inc, Read };
  CounterType()
      : TableSpec("counter",
                  {{"inc", OpKind::Update, 1, false},
                   {"read", OpKind::Query, 0, true}}) {
    com(Inc, Inc, Cond::t());
    com(Inc, Read, eq(s(0), Term::constant(0))); // inc by 0 is a no-op
    // Nothing absorbs increments; increments absorb nothing.
  }
  std::unique_ptr<ContainerState> makeState() const override {
    return std::make_unique<CounterState>();
  }
};

//===----------------------------------------------------------------------===//
// Map (dictionary, Fig. 6 extended with remove and inc):
//   put(k,v), remove(k), inc(k,d), get(k):v, contains(k):b, size():n
//===----------------------------------------------------------------------===//

class MapState : public ContainerState {
public:
  void apply(const OpSig &Op, const std::vector<int64_t> &Vals) override {
    if (Op.Name == "put") {
      Vals_[Vals[0]] = Vals[1];
      return;
    }
    if (Op.Name == "remove") {
      Vals_.erase(Vals[0]);
      return;
    }
    assert(Op.Name == "inc" && "unknown map update");
    Vals_[Vals[0]] += Vals[1]; // missing keys read as 0 and get created
  }
  int64_t eval(const OpSig &Op,
               const std::vector<int64_t> &Args) const override {
    if (Op.Name == "get") {
      auto It = Vals_.find(Args[0]);
      return It == Vals_.end() ? 0 : It->second;
    }
    if (Op.Name == "contains")
      return Vals_.count(Args[0]) ? 1 : 0;
    assert(Op.Name == "size" && "unknown map query");
    return static_cast<int64_t>(Vals_.size());
  }
  std::unique_ptr<ContainerState> clone() const override {
    return std::make_unique<MapState>(*this);
  }

private:
  std::map<int64_t, int64_t> Vals_;
};

class MapType : public TableSpec {
public:
  enum { Put, Remove, Inc, Get, Contains, Size };
  MapType()
      : TableSpec("map",
                  {{"put", OpKind::Update, 2, false},
                   {"remove", OpKind::Update, 1, false},
                   {"inc", OpKind::Update, 2, false},
                   {"get", OpKind::Query, 1, true},
                   {"contains", OpKind::Query, 1, true},
                   {"size", OpKind::Query, 0, true}}) {
    Cond KeyDiff = ne(s(0), g(0));
    com(Put, Put, KeyDiff || eq(s(1), g(1)));
    com(Put, Remove, KeyDiff);
    com(Put, Inc, KeyDiff);
    com(Put, Get, KeyDiff);
    com(Put, Contains, KeyDiff);
    com(Put, Size, Cond::f());
    com(Remove, Remove, Cond::t());
    com(Remove, Inc, KeyDiff);
    com(Remove, Get, KeyDiff);
    com(Remove, Contains, KeyDiff);
    com(Remove, Size, Cond::f());
    com(Inc, Inc, Cond::t());
    com(Inc, Get, KeyDiff || eq(s(1), Term::constant(0)));
    com(Inc, Contains, KeyDiff);
    com(Inc, Size, Cond::f());

    // Asymmetric variants (§8): making the update visible cannot change the
    // query's already-observed outcome. contains:true survives creations;
    // contains:false survives removals. The query's return slot is its last
    // combined-value slot: contains has arg slot 0 and return slot 1.
    asym(Put, Contains, KeyDiff || eq(g(1), Term::constant(1)));
    asym(Inc, Contains, KeyDiff || eq(g(1), Term::constant(1)));
    asym(Remove, Contains, KeyDiff || eq(g(1), Term::constant(0)));

    // Absorption (Fig. 6b, extended): a later same-key put or remove wipes
    // out earlier same-key puts, incs and removes.
    Cond KeySame = eq(s(0), g(0));
    abs(Put, Put, KeySame);
    abs(Put, Remove, KeySame);
    abs(Inc, Put, KeySame);
    abs(Inc, Remove, KeySame);
    abs(Remove, Put, KeySame);
    abs(Remove, Remove, KeySame);

    // Query-value determination (S1 inside the small model): the last
    // interfering visible update fixes get/contains outcomes.
    det(Put, Get, ValueDet::slot(1));
    det(Remove, Get, ValueDet::constant(0));
    det(Put, Contains, ValueDet::constant(1));
    det(Inc, Contains, ValueDet::constant(1));
    det(Remove, Contains, ValueDet::constant(0));
  }
  std::unique_ptr<ContainerState> makeState() const override {
    return std::make_unique<MapState>();
  }
};

//===----------------------------------------------------------------------===//
// Set: add(x), remove(x), contains(x):b, size():n
//===----------------------------------------------------------------------===//

class SetState : public ContainerState {
public:
  void apply(const OpSig &Op, const std::vector<int64_t> &Vals) override {
    if (Op.Name == "add") {
      Elems.insert(Vals[0]);
      return;
    }
    assert(Op.Name == "remove" && "unknown set update");
    Elems.erase(Vals[0]);
  }
  int64_t eval(const OpSig &Op,
               const std::vector<int64_t> &Args) const override {
    if (Op.Name == "contains")
      return Elems.count(Args[0]) ? 1 : 0;
    assert(Op.Name == "size" && "unknown set query");
    return static_cast<int64_t>(Elems.size());
  }
  std::unique_ptr<ContainerState> clone() const override {
    return std::make_unique<SetState>(*this);
  }

private:
  std::set<int64_t> Elems;
};

class SetType : public TableSpec {
public:
  enum { Add, Remove, Contains, Size };
  SetType()
      : TableSpec("set",
                  {{"add", OpKind::Update, 1, false},
                   {"remove", OpKind::Update, 1, false},
                   {"contains", OpKind::Query, 1, true},
                   {"size", OpKind::Query, 0, true}}) {
    Cond ElemDiff = ne(s(0), g(0));
    com(Add, Add, Cond::t());
    com(Add, Remove, ElemDiff);
    com(Add, Contains, ElemDiff);
    com(Add, Size, Cond::f());
    com(Remove, Remove, Cond::t());
    com(Remove, Contains, ElemDiff);
    com(Remove, Size, Cond::f());

    asym(Add, Contains, ElemDiff || eq(g(1), Term::constant(1)));
    asym(Remove, Contains, ElemDiff || eq(g(1), Term::constant(0)));

    Cond ElemSame = eq(s(0), g(0));
    abs(Add, Add, ElemSame);
    abs(Add, Remove, ElemSame);
    abs(Remove, Add, ElemSame);
    abs(Remove, Remove, ElemSame);

    det(Add, Contains, ValueDet::constant(1));
    det(Remove, Contains, ValueDet::constant(0));
  }
  std::unique_ptr<ContainerState> makeState() const override {
    return std::make_unique<SetState>();
  }
};

} // namespace

std::unique_ptr<DataTypeSpec> c4::makeRegisterType() {
  return std::make_unique<RegisterType>();
}
std::unique_ptr<DataTypeSpec> c4::makeCounterType() {
  return std::make_unique<CounterType>();
}
std::unique_ptr<DataTypeSpec> c4::makeMapType() {
  return std::make_unique<MapType>();
}
std::unique_ptr<DataTypeSpec> c4::makeSetType() {
  return std::make_unique<SetType>();
}
