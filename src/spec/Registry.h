//===- spec/Registry.h - Data type registry and store schema ----*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The registry of built-in replicated data types and the *schema*: the set
/// of named containers a program operates on, each of a declared type. All
/// analyzer stages resolve events against a schema.
///
/// Built-in types:
///   register  put(v), get():v
///   counter   inc(d), read():n
///   map       put(k,v), remove(k), inc(k,d), get(k):v, contains(k):b,
///             size():n                                   (Fig. 6 dictionary)
///   set       add(x), remove(x), contains(x):b, size():n
///   table     add_row():r (fresh), set(r,f,v), del(r), add(r,f,x),
///             sremove(r,f,x), get(r,f):v, contains(r):b, scontains(r,f,x):b,
///             size():n               (TouchDevelop/Cassandra rows, §8)
///   creg      put(k,v), inc(k,d), cp(a,b), get(k):v
///             (copy-register family: far-commutativity and far-absorption
///              genuinely differ from the plain versions, paper §4.1)
///   maxreg    put(v), get():v — a monotonic max-register whose puts always
///             commute (the CRDT fix for high-score bugs)
///
//===----------------------------------------------------------------------===//

#ifndef C4_SPEC_REGISTRY_H
#define C4_SPEC_REGISTRY_H

#include "spec/DataType.h"

#include <memory>
#include <string>
#include <vector>

namespace c4 {

/// Revision of the built-in rewrite specifications together with the
/// condition/fact semantics they compile to. Persisted caches (oracle
/// snapshots, whole-history verdicts — see support/DiskCache.h) mix this
/// into their keys, so bump it whenever a spec or the satisfiability
/// semantics changes in a verdict-affecting way: stale entries then miss
/// instead of poisoning new runs.
inline constexpr unsigned kSpecRevision = 1;

/// Factories for the built-in types (mainly exposed for tests).
std::unique_ptr<DataTypeSpec> makeRegisterType();
std::unique_ptr<DataTypeSpec> makeCounterType();
std::unique_ptr<DataTypeSpec> makeMapType();
std::unique_ptr<DataTypeSpec> makeSetType();
std::unique_ptr<DataTypeSpec> makeTableType();
std::unique_ptr<DataTypeSpec> makeCRegType();
std::unique_ptr<DataTypeSpec> makeMaxRegType();

/// Owns data type specifications and resolves them by name.
class TypeRegistry {
public:
  /// Constructs a registry pre-populated with all built-in types.
  TypeRegistry();

  /// Returns the type named \p Name, or nullptr.
  const DataTypeSpec *lookup(const std::string &Name) const;

  /// Registers an additional (custom) type. The name must be unused.
  const DataTypeSpec *add(std::unique_ptr<DataTypeSpec> Type);

private:
  std::vector<std::unique_ptr<DataTypeSpec>> Types;
};

/// A named container of a registered data type.
struct ContainerDecl {
  std::string Name;
  const DataTypeSpec *Type;
};

/// The store schema: the containers a program accesses, by dense id.
class Schema {
public:
  /// Declares a container; returns its id. The name must be unused.
  unsigned addContainer(const std::string &Name, const DataTypeSpec *Type);

  unsigned numContainers() const {
    return static_cast<unsigned>(Containers.size());
  }
  const ContainerDecl &container(unsigned Id) const { return Containers[Id]; }

  /// Resolves a container by name; returns -1 if unknown.
  int lookup(const std::string &Name) const;

  /// Resolves (container id, op index) to the operation signature.
  const OpSig &op(unsigned ContainerId, unsigned OpIdx) const {
    return Containers[ContainerId].Type->ops()[OpIdx];
  }

private:
  std::vector<ContainerDecl> Containers;
};

} // namespace c4

#endif // C4_SPEC_REGISTRY_H
