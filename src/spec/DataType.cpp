//===- spec/DataType.cpp --------------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "spec/DataType.h"

#include <cassert>

using namespace c4;

ContainerState::~ContainerState() = default;

DataTypeSpec::DataTypeSpec(std::string TypeName, std::vector<OpSig> TypeOps)
    : Name(std::move(TypeName)), Ops(std::move(TypeOps)) {}

DataTypeSpec::~DataTypeSpec() = default;

const OpSig *DataTypeSpec::findOp(const std::string &OpName) const {
  for (const OpSig &Op : Ops)
    if (Op.Name == OpName)
      return &Op;
  return nullptr;
}

unsigned DataTypeSpec::opIndex(const OpSig &Op) const {
  assert(&Op >= Ops.data() && &Op < Ops.data() + Ops.size() &&
         "operation does not belong to this type");
  return static_cast<unsigned>(&Op - Ops.data());
}

Cond DataTypeSpec::farCommutes(unsigned A, unsigned B) const {
  return plainCommutes(A, B);
}

Cond DataTypeSpec::farAbsorbs(unsigned A, unsigned B) const {
  return plainAbsorbs(A, B);
}

Cond DataTypeSpec::asymFarCommutes(unsigned U, unsigned Q) const {
  return farCommutes(U, Q);
}

ValueDet DataTypeSpec::valueDetermination(unsigned U, unsigned Q) const {
  (void)U;
  (void)Q;
  return ValueDet::indeterminate();
}

Cond c4::commutesCond(const DataTypeSpec &Type, unsigned A, unsigned B,
                      CommuteMode Mode) {
  const OpSig &OpA = Type.ops()[A];
  const OpSig &OpB = Type.ops()[B];
  // Queries never interfere with queries.
  if (OpA.isQuery() && OpB.isQuery())
    return Cond::t();
  switch (Mode) {
  case CommuteMode::Plain:
    return Type.plainCommutes(A, B);
  case CommuteMode::Far:
    // ↷º on update/update pairs is plain commutativity (paper §4.1).
    if (OpA.isUpdate() && OpB.isUpdate())
      return Type.plainCommutes(A, B);
    return Type.farCommutes(A, B);
  case CommuteMode::Asym:
    if (OpA.isUpdate() && OpB.isQuery())
      return Type.asymFarCommutes(A, B);
    if (OpA.isQuery() && OpB.isUpdate())
      // Orient the asymmetric table as (update, query) and flip.
      return Type.asymFarCommutes(B, A).flipped();
    return Type.plainCommutes(A, B);
  }
  return Cond::f();
}

Cond c4::absorbsCond(const DataTypeSpec &Type, unsigned A, unsigned B,
                     bool Far) {
  const OpSig &OpA = Type.ops()[A];
  const OpSig &OpB = Type.ops()[B];
  // Absorption relates updates only.
  if (!OpA.isUpdate() || !OpB.isUpdate())
    return Cond::f();
  return Far ? Type.farAbsorbs(A, B) : Type.plainAbsorbs(A, B);
}
