//===- spec/CRegType.cpp - Copy-register family (far ≠ plain) -------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Keyed registers with put, inc, a cp(a,b) operation copying the value of
/// key a to key b, and get. This is the paper's §4.1 example of a type where
/// the far relations genuinely differ from the plain ones: cp can smuggle a
/// value out of a key before a later overwrite, so
///
///   inc(a,1) cp(a,b) put(a,2)  !≡  cp(a,b) put(a,2)
///
/// breaks far absorption, and put(a,2) no longer far-commutes with
/// get(b):2. Consequently every far table entry of this type is false.
///
//===----------------------------------------------------------------------===//

#include "spec/Registry.h"
#include "spec/TypeTables.h"

#include <cassert>
#include <map>

using namespace c4;

static Term s(unsigned I) { return Term::argSrc(I); }
static Term g(unsigned I) { return Term::argTgt(I); }
static Cond eq(Term A, Term B) { return Cond::eq(A, B); }
static Cond ne(Term A, Term B) { return Cond::ne(A, B); }

namespace {

class CRegState : public ContainerState {
public:
  void apply(const OpSig &Op, const std::vector<int64_t> &Vals) override {
    if (Op.Name == "put") {
      Regs[Vals[0]] = Vals[1];
      return;
    }
    if (Op.Name == "inc") {
      Regs[Vals[0]] += Vals[1];
      return;
    }
    assert(Op.Name == "cp" && "unknown creg update");
    Regs[Vals[1]] = value(Vals[0]);
  }
  int64_t eval(const OpSig &Op,
               const std::vector<int64_t> &Args) const override {
    assert(Op.Name == "get" && "unknown creg query");
    (void)Op;
    return value(Args[0]);
  }
  std::unique_ptr<ContainerState> clone() const override {
    return std::make_unique<CRegState>(*this);
  }

private:
  int64_t value(int64_t Key) const {
    auto It = Regs.find(Key);
    return It == Regs.end() ? 0 : It->second;
  }
  std::map<int64_t, int64_t> Regs;
};

class CRegType : public TableSpec {
public:
  enum { Put, Inc, Cp, Get };

  CRegType()
      : TableSpec("creg",
                  {{"put", OpKind::Update, 2, false},
                   {"inc", OpKind::Update, 2, false},
                   {"cp", OpKind::Update, 2, false},
                   {"get", OpKind::Query, 1, true}}) {
    Cond KeyDiff = ne(s(0), g(0));
    com(Put, Put, KeyDiff || eq(s(1), g(1)));
    com(Put, Inc, KeyDiff);
    com(Put, Cp, ne(s(0), g(0)) && ne(s(0), g(1)));
    com(Put, Get, KeyDiff);
    com(Inc, Inc, Cond::t());
    com(Inc, Cp, ne(s(0), g(0)) && ne(s(0), g(1)));
    com(Inc, Get, KeyDiff);
    // cp(a,b) reads slot 0, writes slot 1.
    com(Cp, Cp, ne(s(1), g(0)) && ne(g(1), s(0)) && ne(s(1), g(1)));
    com(Cp, Get, ne(s(1), g(0)));

    abs(Put, Put, eq(s(0), g(0)));
    abs(Inc, Put, eq(s(0), g(0)));
    abs(Cp, Put, eq(s(1), g(0)));
    abs(Put, Cp, eq(s(0), g(1)));
    abs(Inc, Cp, eq(s(0), g(1)));
    abs(Cp, Cp, eq(s(1), g(1)));

    det(Put, Get, ValueDet::slot(1));

    // Far relations: cp defeats every far property (see file comment).
    for (unsigned U : {Put, Inc, Cp}) {
      farCom(U, Get, Cond::f());
      for (unsigned V : {Put, Inc, Cp})
        farAbs(U, V, Cond::f());
    }
  }

  std::unique_ptr<ContainerState> makeState() const override {
    return std::make_unique<CRegState>();
  }
};

} // namespace

std::unique_ptr<DataTypeSpec> c4::makeCRegType() {
  return std::make_unique<CRegType>();
}
