//===- abstract/AbstractHistory.h - Abstract histories (§5) -----*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstraction of all concrete histories of a program (paper Definition
/// 1). An abstract history consists of
///
///  * abstract events — one per syntactic store operation, carrying
///    *argument facts* (slot = constant / session-local variable / global
///    variable) and a display-code mark (§9.1),
///  * abstract transactions — syntactic transactions grouping the events,
///    each with a unique *entry marker* and an intra-transaction *event
///    order* `eo` whose edges carry guard/invariant conditions (the map Inv),
///  * additional *pair invariants* between events of one transaction
///    (inferred argument equalities, §8),
///  * an abstract session order: which transactions may follow each other
///    within one session, and
///  * counts of session-local (VarL) and global (VarG) symbolic constants.
///
/// Markers (entry / join / exit) are pseudo-events without store semantics;
/// they carry control flow only and are ignored by dependency reasoning.
///
/// A concrete history lies in the concretization γ(H) if its events map to
/// abstract events such that transactions map into abstract transactions,
/// consecutive events of a transaction follow eo edges (possibly through
/// markers) with guards satisfied, consecutive transactions of a session are
/// allowed by the abstract session order, and all facts and pair invariants
/// hold under a per-session valuation of VarL and a single valuation of
/// VarG (see Concretize.h).
///
//===----------------------------------------------------------------------===//

#ifndef C4_ABSTRACT_ABSTRACTHISTORY_H
#define C4_ABSTRACT_ABSTRACTHISTORY_H

#include "spec/Cond.h"
#include "spec/Registry.h"

#include <string>
#include <vector>

namespace c4 {

/// What is known about one argument slot of an abstract event.
struct AbsFact {
  enum KindTy : uint8_t {
    Free,
    Const,
    LocalVar,
    GlobalVar,
    FreshVar ///< slot carries the fresh unique identity (paper §8) returned
             ///< by the creator event `Var` of the same transaction; only
             ///< valid when the creator dominates this event in eo
  } Kind = Free;
  int64_t Value = 0; ///< for Const
  unsigned Var = 0;  ///< for LocalVar / GlobalVar / FreshVar

  static AbsFact free() { return {}; }
  static AbsFact constant(int64_t V) { return {Const, V, 0}; }
  static AbsFact localVar(unsigned V) { return {LocalVar, 0, V}; }
  static AbsFact globalVar(unsigned V) { return {GlobalVar, 0, V}; }
  static AbsFact freshVar(unsigned CreatorEvent) {
    return {FreshVar, 0, CreatorEvent};
  }
};

using AbsFacts = std::vector<AbsFact>;

/// An abstract event: a syntactic store operation (or a control marker).
struct AbstractEvent {
  unsigned Id;
  unsigned Txn;
  /// Container id, or AbstractEvent::MarkerContainer for markers.
  unsigned Container;
  unsigned Op; ///< op index; unused for markers
  AbsFacts Facts;
  bool Display = false; ///< query used for display only (§9.1 filter)
  std::string Label;    ///< diagnostic name (marker label or op rendering)

  static constexpr unsigned MarkerContainer = ~0u;
  bool isMarker() const { return Container == MarkerContainer; }
};

/// A guarded eo edge or a pair invariant between two events of one
/// transaction. The condition's `argsrc` terms refer to \p Src's combined
/// value slots and `argtgt` to \p Tgt's.
struct AbstractConstraint {
  unsigned Src;
  unsigned Tgt;
  Cond C;
};

/// An abstract transaction.
struct AbstractTxn {
  unsigned Id;
  std::string Name;
  std::vector<unsigned> Events; ///< including markers; Events[0] is entry
  std::vector<AbstractConstraint> Eo;   ///< guarded event-order edges
  std::vector<AbstractConstraint> Invs; ///< extra pair invariants
};

/// The abstract history of a program.
class AbstractHistory {
public:
  explicit AbstractHistory(const Schema &S) : Sch(&S) {}

  const Schema &schema() const { return *Sch; }

  /// Creates a transaction with its entry marker. Returns the txn id.
  unsigned addTransaction(const std::string &Name);

  /// Adds a store-operation event to \p Txn. Facts may be shorter than the
  /// op's slot count (missing slots are free).
  unsigned addEvent(unsigned Txn, unsigned Container, unsigned Op,
                    AbsFacts Facts = {}, bool Display = false);

  /// Adds a control marker event (join/exit) to \p Txn.
  unsigned addMarker(unsigned Txn, const std::string &Label);

  /// Adds a guarded eo edge between two events of the same transaction.
  void addEo(unsigned Src, unsigned Tgt, Cond Guard = Cond::t());

  /// Adds a pair invariant between two events of the same transaction.
  void addInv(unsigned Src, unsigned Tgt, Cond C);

  /// Marks a query as display-only (the §9.1 display-code filter).
  void setDisplay(unsigned EventId, bool Display = true) {
    Events_[EventId].Display = Display;
  }

  /// Replaces one argument-slot fact of an event. Used by the pass pipeline
  /// (fresh-identity promotion) and by the unfolder when remapping FreshVar
  /// creators into instantiated copies. Extends the stored fact vector if
  /// the slot is one of the trailing implicitly-free ones.
  void setFact(unsigned EventId, unsigned Slot, AbsFact F) {
    AbsFacts &Fs = Events_[EventId].Facts;
    if (Fs.size() <= Slot)
      Fs.resize(Slot + 1);
    Fs[Slot] = F;
  }

  /// Declares fresh symbolic constants; returns the variable id.
  unsigned addLocalVar() { return NumLocal++; }
  unsigned addGlobalVar() { return NumGlobal++; }
  unsigned numLocalVars() const { return NumLocal; }
  unsigned numGlobalVars() const { return NumGlobal; }

  /// Abstract session order: may transaction \p T directly follow \p S in a
  /// session? Defaults to false; use allowAllSo for unconstrained clients.
  void setMaySo(unsigned S, unsigned T, bool May = true);
  void allowAllSo();
  bool maySo(unsigned S, unsigned T) const;

  unsigned numEvents() const { return static_cast<unsigned>(Events_.size()); }
  unsigned numTxns() const { return static_cast<unsigned>(Txns_.size()); }
  const AbstractEvent &event(unsigned Id) const { return Events_[Id]; }
  const AbstractTxn &txn(unsigned Id) const { return Txns_[Id]; }
  /// Entry marker of a transaction.
  unsigned entry(unsigned Txn) const { return Txns_[Txn].Events[0]; }

  /// Number of non-marker events (the paper's E column counts these).
  unsigned numStoreEvents() const;

  /// The operation signature of a non-marker event.
  const OpSig &op(unsigned EventId) const;
  bool isUpdate(unsigned EventId) const;
  bool isQuery(unsigned EventId) const;

  /// True if \p A reaches \p B through one or more eo edges (same txn).
  bool eoReaches(unsigned A, unsigned B) const;

  /// eo successors/predecessors of an event (indices into the txn's Eo).
  std::vector<const AbstractConstraint *> eoSuccs(unsigned Event) const;
  std::vector<const AbstractConstraint *> eoPreds(unsigned Event) const;

  /// Resolves an event's facts to congruence-closure symbols, placing the
  /// event in the session identified by \p SessionTag: global variable g
  /// becomes symbol g; local variable v becomes symbol
  /// NumGlobal + SessionTag * NumLocal + v.
  EventFacts resolveFacts(unsigned EventId, unsigned SessionTag) const;

  /// Renders an event for diagnostics ("t1.put(?,?)" style).
  std::string eventStr(unsigned EventId) const;

private:
  const Schema *Sch;
  std::vector<AbstractEvent> Events_;
  std::vector<AbstractTxn> Txns_;
  std::vector<std::vector<bool>> MaySo_;
  unsigned NumLocal = 0, NumGlobal = 0;
};

} // namespace c4

#endif // C4_ABSTRACT_ABSTRACTHISTORY_H
