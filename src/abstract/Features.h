//===- abstract/Features.h - Analysis feature toggles -----------*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Precision feature toggles, mirroring the ablation study of paper §9.3:
///
///  * Commutativity — when off, ¬com(e,f) is replaced by true if satisfiable
///    and false otherwise (no symbolic argument reasoning),
///  * Absorption — when off, abs(e,f) is replaced by false,
///  * Constraints — when off, argument facts and pair invariants are
///    dropped (Inv becomes the constant true),
///  * ControlFlow — when off, the abstract event order relates all events of
///    a transaction and edge guards are ignored,
///
/// plus the §8 extensions (asymmetric commutativity, fresh unique values),
/// which are on by default.
///
//===----------------------------------------------------------------------===//

#ifndef C4_ABSTRACT_FEATURES_H
#define C4_ABSTRACT_FEATURES_H

namespace c4 {

/// Toggles for the precision features of the SSG and SMT stages.
struct AnalysisFeatures {
  bool Commutativity = true;
  bool Absorption = true;
  bool Constraints = true;
  bool ControlFlow = true;
  bool AsymmetricAntiDeps = true;
  bool UniqueValues = true;

  /// The configuration used throughout the paper's main evaluation.
  static AnalysisFeatures all() { return {}; }
  /// Everything off: the precision of a plain syntactic SSG.
  static AnalysisFeatures none() {
    return {false, false, false, false, false, false};
  }
};

} // namespace c4

#endif // C4_ABSTRACT_FEATURES_H
