//===- abstract/Concretize.cpp --------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "abstract/Concretize.h"

#include <cassert>
#include <functional>
#include <map>

using namespace c4;

namespace {

/// Evaluates an eo guard or invariant between two (possibly marker)
/// endpoints, given the concrete value vectors of their instances. Marker
/// endpoints contribute empty value vectors; guards must not reference
/// their slots (the front end never emits such conditions).
bool evalConstraint(const Cond &C, const std::vector<int64_t> &SrcVals,
                    const std::vector<int64_t> &TgtVals) {
  return C.eval(SrcVals, TgtVals);
}

/// Enumerates embeddings of the concrete event sequence \p Seq (of one
/// concrete transaction) into the eo graph of abstract transaction \p T:
/// walks from the entry marker, skipping markers, matching each concrete
/// event to an abstract event with the same container/op whose guards hold.
/// Calls \p Yield with the event map for the sequence; stops when Yield
/// returns true.
class TxnEmbedder {
public:
  TxnEmbedder(const History &Hist, const AbstractHistory &Abs,
              unsigned AbsTxn, const std::vector<unsigned> &EventSeq,
              std::function<bool(const std::vector<unsigned> &)> OnMatch)
      : H(Hist), A(Abs), T(Abs.txn(AbsTxn)), Seq(EventSeq),
        Yield(std::move(OnMatch)) {}

  bool run() {
    Map.assign(Seq.size(), 0);
    return walk(A.entry(T.Id), {}, 0, /*Steps=*/0);
  }

private:
  /// \p Node is the current abstract event (already matched or a marker);
  /// \p NodeVals its concrete values; \p NextIdx the next concrete event to
  /// match. Marker-only chains are bounded by Steps to survive eo cycles.
  bool walk(unsigned Node, const std::vector<int64_t> &NodeVals,
            unsigned NextIdx, unsigned Steps) {
    if (NextIdx == Seq.size())
      return Yield(Map);
    if (Steps > 4 * T.Events.size())
      return false;
    const Event &C = H.event(Seq[NextIdx]);
    for (const AbstractConstraint *E : A.eoSuccs(Node)) {
      const AbstractEvent &Tgt = A.event(E->Tgt);
      if (Tgt.isMarker()) {
        if (!evalConstraint(E->C, NodeVals, {}))
          continue;
        if (walk(E->Tgt, {}, NextIdx, Steps + 1))
          return true;
        continue;
      }
      if (Tgt.Container != C.Container || Tgt.Op != C.Op)
        continue;
      std::vector<int64_t> Vals = C.vals();
      if (!evalConstraint(E->C, NodeVals, Vals))
        continue;
      Map[NextIdx] = E->Tgt;
      if (walk(E->Tgt, Vals, NextIdx + 1, Steps + 1))
        return true;
    }
    return false;
  }

  const History &H;
  const AbstractHistory &A;
  const AbstractTxn &T;
  const std::vector<unsigned> &Seq;
  std::function<bool(const std::vector<unsigned> &)> Yield;
  std::vector<unsigned> Map;
};

/// Checks argument facts for one concrete event under partial valuations,
/// extending them where slots are still unassigned.
bool applyFacts(const AbstractHistory &A, const Event &C, unsigned AbsEvent,
                std::map<unsigned, int64_t> &Globals,
                std::map<std::pair<unsigned, unsigned>, int64_t> &Locals) {
  const AbstractEvent &E = A.event(AbsEvent);
  std::vector<int64_t> Vals = C.vals();
  assert(Vals.size() == E.Facts.size() && "slot count mismatch");
  for (unsigned I = 0; I != Vals.size(); ++I) {
    const AbsFact &F = E.Facts[I];
    switch (F.Kind) {
    case AbsFact::Free:
      break;
    case AbsFact::Const:
      if (Vals[I] != F.Value)
        return false;
      break;
    case AbsFact::GlobalVar: {
      auto [It, New] = Globals.emplace(F.Var, Vals[I]);
      if (!New && It->second != Vals[I])
        return false;
      break;
    }
    case AbsFact::LocalVar: {
      auto [It, New] = Locals.emplace(std::make_pair(C.Session, F.Var),
                                      Vals[I]);
      if (!New && It->second != Vals[I])
        return false;
      break;
    }
    case AbsFact::FreshVar:
      // Fresh-identity facts are derived (the creator's equality chain is
      // checked via the pair invariants); accept any value here.
      break;
    }
  }
  return true;
}

/// Checks the pair invariants of abstract transaction \p AbsTxn against a
/// fully mapped concrete transaction.
bool checkInvs(const History &H, const AbstractHistory &A, unsigned AbsTxn,
               const std::vector<unsigned> &Seq,
               const std::vector<unsigned> &Map) {
  for (const AbstractConstraint &Inv : A.txn(AbsTxn).Invs)
    for (unsigned I = 0; I != Seq.size(); ++I) {
      if (Map[I] != Inv.Src)
        continue;
      for (unsigned J = 0; J != Seq.size(); ++J) {
        if (Map[J] != Inv.Tgt)
          continue;
        if (!evalConstraint(Inv.C, H.event(Seq[I]).vals(),
                            H.event(Seq[J]).vals()))
          return false;
      }
    }
  return true;
}

} // namespace

bool c4::isConcretization(const History &H, const AbstractHistory &A,
                          const ConcretizationModel &M) {
  if (M.EventMap.size() != H.numEvents() ||
      M.TxnMap.size() != H.numTransactions())
    return false;

  // Session order between consecutive transactions.
  for (unsigned S = 0; S != H.numSessions(); ++S) {
    const std::vector<unsigned> &Txns = H.sessionTxns(S);
    for (unsigned I = 0; I + 1 < Txns.size(); ++I)
      if (!A.maySo(M.TxnMap[Txns[I]], M.TxnMap[Txns[I + 1]]))
        return false;
  }

  std::map<unsigned, int64_t> Globals;
  std::map<std::pair<unsigned, unsigned>, int64_t> Locals;

  for (unsigned T = 0; T != H.numTransactions(); ++T) {
    const std::vector<unsigned> &Seq = H.txn(T).Events;
    unsigned AbsTxn = M.TxnMap[T];
    // The claimed event map must itself be an embedding; re-run the walker
    // constrained to it.
    bool Found = false;
    TxnEmbedder Embedder(H, A, AbsTxn, Seq,
                         [&](const std::vector<unsigned> &Map) {
                           for (unsigned I = 0; I != Seq.size(); ++I)
                             if (Map[I] != M.EventMap[Seq[I]])
                               return false;
                           Found = true;
                           return true;
                         });
    Embedder.run();
    if (!Found)
      return false;
    for (unsigned E : Seq)
      if (!applyFacts(A, H.event(E), M.EventMap[E], Globals, Locals))
        return false;
    std::vector<unsigned> Map;
    for (unsigned E : Seq)
      Map.push_back(M.EventMap[E]);
    if (!checkInvs(H, A, AbsTxn, Seq, Map))
      return false;
  }

  // The explicit valuations must agree with the inferred ones.
  for (const auto &[Var, Val] : Globals)
    if (Var >= M.GlobalVals.size() || M.GlobalVals[Var] != Val)
      return false;
  for (const auto &[Key, Val] : Locals) {
    auto [Session, Var] = Key;
    if (Session >= M.LocalVals.size() || Var >= M.LocalVals[Session].size() ||
        M.LocalVals[Session][Var] != Val)
      return false;
  }
  return true;
}

std::optional<ConcretizationModel>
c4::findConcretization(const History &H, const AbstractHistory &A) {
  ConcretizationModel M;
  M.EventMap.assign(H.numEvents(), 0);
  M.TxnMap.assign(H.numTransactions(), 0);

  std::map<unsigned, int64_t> Globals;
  std::map<std::pair<unsigned, unsigned>, int64_t> Locals;

  // Assign abstract transactions one concrete transaction at a time.
  std::function<bool(unsigned)> Assign = [&](unsigned T) -> bool {
    if (T == H.numTransactions())
      return true;
    const std::vector<unsigned> &Seq = H.txn(T).Events;
    // Session-order constraint against the previous txn of this session.
    unsigned Session = H.txn(T).Session;
    int Prev = -1;
    for (unsigned X : H.sessionTxns(Session)) {
      if (X == T)
        break;
      Prev = static_cast<int>(X);
    }
    for (unsigned AbsTxn = 0; AbsTxn != A.numTxns(); ++AbsTxn) {
      if (Prev >= 0 && !A.maySo(M.TxnMap[Prev], AbsTxn))
        continue;
      bool Done = false;
      TxnEmbedder Embedder(
          H, A, AbsTxn, Seq, [&](const std::vector<unsigned> &Map) {
            // Tentatively apply facts; roll back on failure.
            std::map<unsigned, int64_t> SavedG = Globals;
            auto SavedL = Locals;
            bool Ok = true;
            for (unsigned I = 0; I != Seq.size() && Ok; ++I)
              Ok = applyFacts(A, H.event(Seq[I]), Map[I], Globals, Locals);
            if (Ok)
              Ok = checkInvs(H, A, AbsTxn, Seq, Map);
            if (Ok) {
              M.TxnMap[T] = AbsTxn;
              for (unsigned I = 0; I != Seq.size(); ++I)
                M.EventMap[Seq[I]] = Map[I];
              if (Assign(T + 1)) {
                Done = true;
                return true;
              }
            }
            Globals = std::move(SavedG);
            Locals = std::move(SavedL);
            return false;
          });
      Embedder.run();
      if (Done)
        return true;
    }
    return false;
  };

  if (!Assign(0))
    return std::nullopt;

  // Materialize valuations (unconstrained variables default to 0).
  M.GlobalVals.assign(A.numGlobalVars(), 0);
  for (const auto &[Var, Val] : Globals)
    M.GlobalVals[Var] = Val;
  M.LocalVals.assign(H.numSessions(),
                     std::vector<int64_t>(A.numLocalVars(), 0));
  for (const auto &[Key, Val] : Locals)
    M.LocalVals[Key.first][Key.second] = Val;
  return M;
}
