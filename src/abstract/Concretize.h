//===- abstract/Concretize.h - Concretization membership (γ) ----*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decides whether a concrete history belongs to the concretization γ(H) of
/// an abstract history: checks a given concretization model, or searches for
/// one by backtracking (small histories only — used by tests and to validate
/// SMT counter-examples end to end).
///
//===----------------------------------------------------------------------===//

#ifndef C4_ABSTRACT_CONCRETIZE_H
#define C4_ABSTRACT_CONCRETIZE_H

#include "abstract/AbstractHistory.h"
#include "history/History.h"

#include <optional>
#include <vector>

namespace c4 {

/// A witness that a concrete history concretizes an abstract one.
struct ConcretizationModel {
  /// Concrete event id -> abstract event id.
  std::vector<unsigned> EventMap;
  /// Concrete transaction id -> abstract transaction id.
  std::vector<unsigned> TxnMap;
  /// Valuation of the global symbolic constants.
  std::vector<int64_t> GlobalVals;
  /// Per concrete session, valuation of the session-local constants.
  std::vector<std::vector<int64_t>> LocalVals;
};

/// Verifies a concretization model: operation agreement, eo-path embedding
/// of every transaction (markers are skipped; edge guards must hold),
/// argument facts under the valuations, pair invariants, and the abstract
/// session order between consecutive transactions.
bool isConcretization(const History &H, const AbstractHistory &A,
                      const ConcretizationModel &M);

/// Searches for a concretization model by backtracking.
std::optional<ConcretizationModel>
findConcretization(const History &H, const AbstractHistory &A);

} // namespace c4

#endif // C4_ABSTRACT_CONCRETIZE_H
