//===- abstract/AbstractHistory.cpp ---------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "abstract/AbstractHistory.h"

#include "support/Format.h"

#include <cassert>

using namespace c4;

unsigned AbstractHistory::addTransaction(const std::string &Name) {
  unsigned Id = numTxns();
  Txns_.push_back({Id, Name, {}, {}, {}});
  for (std::vector<bool> &Row : MaySo_)
    Row.push_back(false);
  MaySo_.emplace_back(numTxns(), false);
  addMarker(Id, "entry");
  return Id;
}

unsigned AbstractHistory::addEvent(unsigned Txn, unsigned Container,
                                   unsigned Op, AbsFacts Facts, bool Display) {
  assert(Txn < numTxns() && "unknown transaction");
  assert(Container < Sch->numContainers() && "unknown container");
  const OpSig &Sig = Sch->op(Container, Op);
  assert(Facts.size() <= Sig.numVals() && "too many facts");
  Facts.resize(Sig.numVals());
  unsigned Id = numEvents();
  std::string Label = Sch->container(Container).Name + "." + Sig.Name;
  Events_.push_back({Id, Txn, Container, Op, std::move(Facts), Display,
                     std::move(Label)});
  Txns_[Txn].Events.push_back(Id);
  return Id;
}

unsigned AbstractHistory::addMarker(unsigned Txn, const std::string &Label) {
  assert(Txn < numTxns() && "unknown transaction");
  unsigned Id = numEvents();
  Events_.push_back(
      {Id, Txn, AbstractEvent::MarkerContainer, 0, {}, false, Label});
  Txns_[Txn].Events.push_back(Id);
  return Id;
}

void AbstractHistory::addEo(unsigned Src, unsigned Tgt, Cond Guard) {
  assert(Events_[Src].Txn == Events_[Tgt].Txn && "eo edge must stay in txn");
  Txns_[Events_[Src].Txn].Eo.push_back({Src, Tgt, std::move(Guard)});
}

void AbstractHistory::addInv(unsigned Src, unsigned Tgt, Cond C) {
  assert(Events_[Src].Txn == Events_[Tgt].Txn && "invariant must stay in txn");
  Txns_[Events_[Src].Txn].Invs.push_back({Src, Tgt, std::move(C)});
}

void AbstractHistory::setMaySo(unsigned S, unsigned T, bool May) {
  MaySo_[S][T] = May;
}

void AbstractHistory::allowAllSo() {
  for (std::vector<bool> &Row : MaySo_)
    Row.assign(numTxns(), true);
}

bool AbstractHistory::maySo(unsigned S, unsigned T) const {
  return MaySo_[S][T];
}

unsigned AbstractHistory::numStoreEvents() const {
  unsigned N = 0;
  for (const AbstractEvent &E : Events_)
    if (!E.isMarker())
      ++N;
  return N;
}

const OpSig &AbstractHistory::op(unsigned EventId) const {
  const AbstractEvent &E = Events_[EventId];
  assert(!E.isMarker() && "markers have no operation");
  return Sch->op(E.Container, E.Op);
}

bool AbstractHistory::isUpdate(unsigned EventId) const {
  return !Events_[EventId].isMarker() && op(EventId).isUpdate();
}

bool AbstractHistory::isQuery(unsigned EventId) const {
  return !Events_[EventId].isMarker() && op(EventId).isQuery();
}

bool AbstractHistory::eoReaches(unsigned A, unsigned B) const {
  if (Events_[A].Txn != Events_[B].Txn)
    return false;
  const AbstractTxn &T = Txns_[Events_[A].Txn];
  std::vector<unsigned> Work{A};
  std::vector<bool> Seen(numEvents(), false);
  Seen[A] = true;
  while (!Work.empty()) {
    unsigned V = Work.back();
    Work.pop_back();
    for (const AbstractConstraint &E : T.Eo) {
      if (E.Src != V || Seen[E.Tgt])
        continue;
      if (E.Tgt == B)
        return true;
      Seen[E.Tgt] = true;
      Work.push_back(E.Tgt);
    }
  }
  return false;
}

std::vector<const AbstractConstraint *>
AbstractHistory::eoSuccs(unsigned Event) const {
  std::vector<const AbstractConstraint *> R;
  for (const AbstractConstraint &E : Txns_[Events_[Event].Txn].Eo)
    if (E.Src == Event)
      R.push_back(&E);
  return R;
}

std::vector<const AbstractConstraint *>
AbstractHistory::eoPreds(unsigned Event) const {
  std::vector<const AbstractConstraint *> R;
  for (const AbstractConstraint &E : Txns_[Events_[Event].Txn].Eo)
    if (E.Tgt == Event)
      R.push_back(&E);
  return R;
}

EventFacts AbstractHistory::resolveFacts(unsigned EventId,
                                         unsigned SessionTag) const {
  const AbstractEvent &E = Events_[EventId];
  EventFacts R;
  R.reserve(E.Facts.size());
  for (const AbsFact &F : E.Facts) {
    switch (F.Kind) {
    case AbsFact::Free:
      R.push_back(ArgFact::free());
      break;
    case AbsFact::Const:
      R.push_back(ArgFact::constant(F.Value));
      break;
    case AbsFact::GlobalVar:
      R.push_back(ArgFact::symbol(F.Var));
      break;
    case AbsFact::LocalVar:
      R.push_back(
          ArgFact::symbol(NumGlobal + SessionTag * NumLocal + F.Var));
      break;
    case AbsFact::FreshVar:
      // One unique identity per (session instance, creator event). Unique
      // ids live in their own namespace, so no collision with Symbolic ids.
      R.push_back(ArgFact::unique(SessionTag * numEvents() + F.Var));
      break;
    }
  }
  return R;
}

std::string AbstractHistory::eventStr(unsigned EventId) const {
  const AbstractEvent &E = Events_[EventId];
  return strf("e%u[%s]@%s", E.Id, E.Label.c_str(),
              Txns_[E.Txn].Name.c_str());
}
