//===- passes/Lint.cpp ----------------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "passes/Lint.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

using namespace c4;

void c4::sortLints(std::vector<LintDiagnostic> &Lints) {
  std::sort(Lints.begin(), Lints.end(),
            [](const LintDiagnostic &A, const LintDiagnostic &B) {
              if (A.Line != B.Line)
                return A.Line < B.Line;
              if (A.Id != B.Id)
                return A.Id < B.Id;
              return A.Message < B.Message;
            });
}

namespace {

/// Parses the `c4l-allow` directives of one source line. Returns false if the
/// line carries none; otherwise fills \p Ids with the listed warning IDs
/// (empty meaning "allow everything").
bool parseAllow(const std::string &Line, std::vector<std::string> &Ids) {
  size_t Pos = Line.find("c4l-allow");
  if (Pos == std::string::npos)
    return false;
  // Only honor the directive inside a comment, so an identifier merely
  // containing the text cannot suppress diagnostics.
  size_t Comment = Line.find("//");
  if (Comment == std::string::npos || Comment > Pos)
    return false;
  std::istringstream SS(Line.substr(Pos + std::string("c4l-allow").size()));
  std::string Tok;
  while (SS >> Tok) {
    // Stop at anything that is not a warning ID (free-form comment text).
    if (Tok.rfind("C4L-", 0) != 0)
      break;
    Ids.push_back(Tok);
  }
  return true;
}

} // namespace

std::vector<LintDiagnostic>
c4::filterSuppressedLints(std::vector<LintDiagnostic> Lints,
                          const std::string &Source) {
  // Allow[L] holds the directive attached to 1-based source line L: absent,
  // bare (empty vector), or a list of IDs.
  std::vector<std::pair<bool, std::vector<std::string>>> Allow;
  Allow.emplace_back(false, std::vector<std::string>{}); // line 0 (unused)
  std::istringstream SS(Source);
  std::string Line;
  while (std::getline(SS, Line)) {
    std::vector<std::string> Ids;
    bool Has = parseAllow(Line, Ids);
    Allow.emplace_back(Has, std::move(Ids));
  }

  auto Suppressed = [&](const LintDiagnostic &D) {
    // A directive applies to its own line and, when it is the sole content
    // of its line, to the line below.
    for (unsigned L : {D.Line, D.Line ? D.Line - 1 : 0u}) {
      if (L == 0 || L >= Allow.size() || !Allow[L].first)
        continue;
      const std::vector<std::string> &Ids = Allow[L].second;
      if (Ids.empty() ||
          std::find(Ids.begin(), Ids.end(), D.Id) != Ids.end())
        return true;
    }
    return false;
  };
  Lints.erase(std::remove_if(Lints.begin(), Lints.end(), Suppressed),
              Lints.end());
  return Lints;
}

std::string c4::renderLintText(const std::vector<LintDiagnostic> &Lints,
                               const std::string &File) {
  std::string Out;
  for (const LintDiagnostic &D : Lints) {
    Out += File;
    Out += ':';
    Out += std::to_string(D.Line);
    Out += ": warning ";
    Out += D.Id;
    Out += ": ";
    Out += D.Message;
    if (!D.Txn.empty()) {
      Out += " [txn ";
      Out += D.Txn;
      Out += ']';
    }
    Out += '\n';
  }
  return Out;
}

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace

std::string c4::renderLintJson(const std::vector<LintDiagnostic> &Lints,
                               const std::string &File) {
  std::string Out = "{\n  \"file\": \"" + jsonEscape(File) + "\",\n";
  Out += "  \"warnings\": [";
  for (size_t I = 0; I != Lints.size(); ++I) {
    const LintDiagnostic &D = Lints[I];
    Out += I ? ",\n    " : "\n    ";
    Out += "{\"id\": \"" + jsonEscape(D.Id) + "\", ";
    Out += "\"line\": " + std::to_string(D.Line) + ", ";
    Out += "\"txn\": \"" + jsonEscape(D.Txn) + "\", ";
    Out += "\"message\": \"" + jsonEscape(D.Message) + "\"}";
  }
  Out += Lints.empty() ? "]\n" : "\n  ]\n";
  Out += "}\n";
  return Out;
}
