//===- passes/Dataflow.h - Worklist dataflow engine -------------*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small generic forward dataflow engine over transaction CFGs (CFG.h).
/// Clients supply a lattice state, a per-block transfer function, an
/// edge-specific transfer (so branch outcomes can refine the state per arm),
/// and a meet. The engine iterates a worklist in reverse post-order until a
/// fixpoint; since C4L CFGs are acyclic this converges in a single sweep,
/// but the engine does not rely on it.
///
/// Conventions:
///  * `In[N]` is the state at the start of block `N`.
///  * The transfer runs the whole block: `Out = Transfer(In[N], N)`.
///  * `EdgeTransfer(Out, N, SuccIdx)` refines the block's out-state for its
///    `SuccIdx`-th successor (e.g. asserting the branch condition).
///  * `Meet(Into, From) -> bool` joins `From` into `Into`, returning whether
///    `Into` changed. The engine initializes non-entry in-states with the
///    client's `Top` value (conventionally an "unreachable" state that the
///    meet treats as identity).
///
//===----------------------------------------------------------------------===//

#ifndef C4_PASSES_DATAFLOW_H
#define C4_PASSES_DATAFLOW_H

#include "passes/CFG.h"

#include <deque>
#include <vector>

namespace c4 {

template <typename State, typename Transfer, typename EdgeTransfer,
          typename Meet>
std::vector<State> runForwardDataflow(const TxnCFG &G, State EntryState,
                                      State Top, Transfer F,
                                      EdgeTransfer EF, Meet M) {
  std::vector<State> In(G.numNodes(), Top);
  In[G.entry()] = std::move(EntryState);

  std::vector<bool> Queued(G.numNodes(), false);
  std::deque<unsigned> Work;
  for (unsigned N : G.rpo()) {
    Work.push_back(N);
    Queued[N] = true;
  }
  while (!Work.empty()) {
    unsigned N = Work.front();
    Work.pop_front();
    Queued[N] = false;
    State Out = F(In[N], N);
    const CFGNode &Node = G.node(N);
    for (unsigned I = 0; I != Node.Succs.size(); ++I) {
      unsigned S = Node.Succs[I];
      State Edge = EF(Out, N, I);
      if (M(In[S], Edge) && !Queued[S]) {
        Work.push_back(S);
        Queued[S] = true;
      }
    }
  }
  return In;
}

} // namespace c4

#endif // C4_PASSES_DATAFLOW_H
