//===- passes/Lint.h - Structured lint diagnostics --------------*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lint layer of the pass framework: structured diagnostics with stable
/// warning IDs, source lines (from the AST's Line fields) and deterministic
/// ordering, rendered as text or JSON by `c4-analyze --lint` /
/// `--lint-json`.
///
/// Warning catalog (stable IDs — never renumber):
///   C4L-W001  unused write: a container is updated but never queried by
///             any transaction, so its writes are unobservable.
///   C4L-W002  read of a never-written container: a container is queried
///             but no transaction ever updates it.
///   C4L-W003  always-false guard: a branch arm is statically infeasible
///             under the guards dominating it (guard implication).
///   C4L-W004  multi-container update outside any atomic set: a transaction
///             updates several containers that no declared atomic set
///             groups together (§9.1 filters cannot relate them).
///   C4L-W005  redundant operation: an update is provably absorbed by a
///             later update of the same transaction (far absorption) and
///             was eliminated by the reduction pipeline.
///   C4L-W006  statically unsatisfiable condition: the relational abstract
///             domain (src/domain) proves an event-order guard of the
///             compiled transaction unsatisfiable under the transaction's
///             own facts, so the guarded code can never execute. Catches
///             relational contradictions (e.g. comparing a value against
///             itself, or against a fresh unique identity) that the
///             unary guard dataflow behind C4L-W003 cannot see.
///
/// Suppression: a source line carrying (or immediately preceded by a line
/// carrying) a `c4l-allow` comment suppresses warnings reported for that
/// line — all of them for a bare `c4l-allow`, or only the listed IDs, e.g.
/// `// c4l-allow C4L-W001`.
///
//===----------------------------------------------------------------------===//

#ifndef C4_PASSES_LINT_H
#define C4_PASSES_LINT_H

#include <string>
#include <vector>

namespace c4 {

/// One lint warning.
struct LintDiagnostic {
  std::string Id;   ///< stable warning ID, e.g. "C4L-W001"
  unsigned Line = 0;
  std::string Txn;  ///< enclosing transaction, or "" for program-level
  std::string Message;
};

/// Sorts diagnostics into the canonical (line, id, message) order. All
/// renderers expect sorted input; the order is deterministic for a given
/// program.
void sortLints(std::vector<LintDiagnostic> &Lints);

/// Removes diagnostics suppressed by `c4l-allow` comments in \p Source.
std::vector<LintDiagnostic>
filterSuppressedLints(std::vector<LintDiagnostic> Lints,
                      const std::string &Source);

/// Renders "FILE:LINE: warning ID: message [txn]" lines.
std::string renderLintText(const std::vector<LintDiagnostic> &Lints,
                           const std::string &File);

/// Renders the documented JSON schema:
/// {"file": ..., "warnings": [{"id", "line", "txn", "message"}, ...]}
std::string renderLintJson(const std::vector<LintDiagnostic> &Lints,
                           const std::string &File);

} // namespace c4

#endif // C4_PASSES_LINT_H
