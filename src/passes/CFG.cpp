//===- passes/CFG.cpp -----------------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "passes/CFG.h"

#include <algorithm>
#include <cassert>

using namespace c4;

unsigned TxnCFG::addNode() {
  Nodes_.emplace_back();
  return static_cast<unsigned>(Nodes_.size() - 1);
}

unsigned TxnCFG::buildList(std::vector<StmtPtr> &Stmts, unsigned Cur) {
  for (StmtPtr &SP : Stmts) {
    Stmt &S = *SP;
    if (S.Kind != Stmt::If) {
      Nodes_[Cur].Stmts.push_back(&S);
      continue;
    }
    Nodes_[Cur].Term = &S;
    unsigned ThenEntry = addNode();
    unsigned ElseEntry = addNode();
    Nodes_[Cur].Succs = {ThenEntry, ElseEntry};
    Nodes_[ThenEntry].Preds.push_back(Cur);
    Nodes_[ElseEntry].Preds.push_back(Cur);
    unsigned ThenExit = buildList(S.Then, ThenEntry);
    unsigned ElseExit = buildList(S.Else, ElseEntry);
    unsigned Join = addNode();
    Nodes_[ThenExit].Succs.push_back(Join);
    Nodes_[ElseExit].Succs.push_back(Join);
    Nodes_[Join].Preds = {ThenExit, ElseExit};
    Cur = Join;
  }
  return Cur;
}

TxnCFG::TxnCFG(TxnDecl &Txn) : Txn_(&Txn) {
  unsigned Entry = addNode();
  (void)Entry;
  assert(Entry == 0 && "entry must be node 0");
  Exit_ = buildList(Txn.Body, 0);
  computeOrders();
}

void TxnCFG::computeOrders() {
  // Post-order DFS from the entry; the graph is acyclic by construction.
  std::vector<bool> Visited(Nodes_.size(), false);
  std::vector<unsigned> Post;
  Post.reserve(Nodes_.size());
  // Iterative DFS: (node, next successor index).
  std::vector<std::pair<unsigned, unsigned>> Stack{{0u, 0u}};
  Visited[0] = true;
  while (!Stack.empty()) {
    auto &[N, I] = Stack.back();
    if (I < Nodes_[N].Succs.size()) {
      unsigned S = Nodes_[N].Succs[I++];
      if (!Visited[S]) {
        Visited[S] = true;
        Stack.push_back({S, 0});
      }
      continue;
    }
    Post.push_back(N);
    Stack.pop_back();
  }
  Rpo_.assign(Post.rbegin(), Post.rend());

  // Iterative dominators (Cooper–Harvey–Kennedy) over the RPO.
  std::vector<unsigned> RpoPos(Nodes_.size(), ~0u);
  for (unsigned I = 0; I != Rpo_.size(); ++I)
    RpoPos[Rpo_[I]] = I;
  auto Intersect = [&](const std::vector<unsigned> &Idom,
                       const std::vector<unsigned> &Pos, unsigned A,
                       unsigned B) {
    while (A != B) {
      while (Pos[A] > Pos[B])
        A = Idom[A];
      while (Pos[B] > Pos[A])
        B = Idom[B];
    }
    return A;
  };
  Idom_.assign(Nodes_.size(), ~0u);
  Idom_[0] = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned N : Rpo_) {
      if (N == 0)
        continue;
      unsigned New = ~0u;
      for (unsigned P : Nodes_[N].Preds) {
        if (Idom_[P] == ~0u)
          continue;
        New = New == ~0u ? P : Intersect(Idom_, RpoPos, New, P);
      }
      if (New != ~0u && Idom_[N] != New) {
        Idom_[N] = New;
        Changed = true;
      }
    }
  }

  // Post-dominators: the same algorithm on the reversed graph from the
  // (unique) exit, ordered by reverse RPO.
  std::vector<unsigned> RevOrder(Rpo_.rbegin(), Rpo_.rend());
  std::vector<unsigned> RevPos(Nodes_.size(), ~0u);
  for (unsigned I = 0; I != RevOrder.size(); ++I)
    RevPos[RevOrder[I]] = I;
  PostIdom_.assign(Nodes_.size(), ~0u);
  PostIdom_[Exit_] = Exit_;
  Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned N : RevOrder) {
      if (N == Exit_)
        continue;
      unsigned New = ~0u;
      for (unsigned S : Nodes_[N].Succs) {
        if (PostIdom_[S] == ~0u)
          continue;
        New = New == ~0u ? S : Intersect(PostIdom_, RevPos, New, S);
      }
      if (New != ~0u && PostIdom_[N] != New) {
        PostIdom_[N] = New;
        Changed = true;
      }
    }
  }
}

bool TxnCFG::dominates(unsigned A, unsigned B) const {
  while (true) {
    if (A == B)
      return true;
    if (B == 0 || Idom_[B] == ~0u)
      return false;
    B = Idom_[B];
  }
}

bool TxnCFG::postDominates(unsigned B, unsigned A) const {
  while (true) {
    if (A == B)
      return true;
    if (A == Exit_ || PostIdom_[A] == ~0u)
      return false;
    A = PostIdom_[A];
  }
}
