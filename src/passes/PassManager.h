//===- passes/PassManager.h - Reduction + lint pipeline ---------*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pass pipeline that runs between `compileC4L()` and analysis. It
/// rewrites a clone of the program AST with sound history reductions —
/// verdict-preserving by construction, see docs/passes.md for the
/// per-pass soundness arguments — and emits the structured lint
/// diagnostics of Lint.h:
///
///   1. Guard-constraint analysis (dataflow over the per-transaction CFG):
///      tracks interval/equality constraints on let-bound names implied by
///      the guards dominating each block.
///   2. Infeasible-branch pruning: a branch arm whose edge constraint
///      contradicts the incoming state is deleted (C4L-W003).
///   3. Constant propagation: a name constrained to a single value is
///      replaced by the literal, so derived argument equalities become
///      constant facts in the abstract history (fewer non-commutativity
///      edges).
///   4. Dead/absorbed-write elimination: an update provably absorbed by a
///      later update of the same basic block is deleted (C4L-W005), using
///      the far-absorption specs of src/spec.
///
/// Steps 1–4 iterate to a fixpoint, then the reduced AST is re-built into
/// the CompiledProgram. Afterwards, fresh-identity promotion upgrades
/// argument slots provably equal to a `fresh` creator's return into
/// AbsFact::FreshVar facts (paper §8 unique-value reasoning without SMT),
/// and the program-level lints (C4L-W001/2/4) run.
///
//===----------------------------------------------------------------------===//

#ifndef C4_PASSES_PASSMANAGER_H
#define C4_PASSES_PASSMANAGER_H

#include "passes/Lint.h"

#include <memory>
#include <string>
#include <vector>

namespace c4 {

class AbstractHistory;
struct CompiledProgram;
struct ProgramAST;

/// Pipeline configuration.
struct PassOptions {
  /// Run the reducing passes (branch pruning, const-prop, dead-write
  /// elimination, fresh promotion). When false only the lints run —
  /// this is `c4-analyze --no-passes`.
  bool Reduce = true;
  /// Whether the downstream analysis models unique values (paper §8).
  /// Fresh-identity promotion is only sound (and only useful) then.
  bool UniqueValues = true;
  /// Collect lint diagnostics.
  bool Lint = true;
};

/// Per-pipeline telemetry, surfaced in `--stats-json`.
struct PassStats {
  unsigned EventsBefore = 0;  ///< abstract-history events before reduction
  unsigned EventsAfter = 0;   ///< ... and after
  unsigned DeadWrites = 0;    ///< updates removed by absorption (W005)
  unsigned PrunedBranches = 0; ///< statically infeasible arms removed (W003)
  unsigned ConstProps = 0;    ///< name arguments replaced by literals
  unsigned FreshPromotions = 0; ///< slots promoted to FreshVar facts
  unsigned Iterations = 0;    ///< reduction fixpoint rounds executed
  double Seconds = 0;         ///< wall time of the whole pipeline
};

/// Result of running the pipeline.
struct PassResult {
  PassStats Stats;
  std::vector<LintDiagnostic> Lints; ///< sorted, suppression-filtered
  bool Changed = false; ///< the program was rewritten
  bool Ok = true;
  std::string Error; ///< set when Ok is false (internal rebuild failure)
};

/// Runs the pipeline over \p P in place. \p Source, when provided, is the
/// original program text, used only to honor `c4l-allow` suppressions.
/// On internal failure the program is left exactly as compiled.
PassResult runPasses(CompiledProgram &P, const PassOptions &Opts,
                     const std::string *Source = nullptr);

/// Deep-copies a program AST (exposed for tests).
std::unique_ptr<ProgramAST> cloneAST(const ProgramAST &AST);

/// Fresh-identity promotion alone (exposed for tests): upgrades argument
/// slots provably carrying the fresh value returned by a dominating
/// creator event of the same transaction to AbsFact::FreshVar. Returns the
/// number of promoted slots.
unsigned promoteFreshFacts(CompiledProgram &P);
unsigned promoteFreshFacts(AbstractHistory &H);

} // namespace c4

#endif // C4_PASSES_PASSMANAGER_H
