//===- passes/CFG.h - Per-transaction control-flow graphs -------*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control-flow graphs over C4L transaction bodies. C4L is loop-free, so
/// every CFG is a DAG with a single entry and a single exit; `if` statements
/// produce diamond shapes (then/else arms joining below). The CFG is the
/// substrate for the dataflow engine (Dataflow.h) and for the reduction and
/// lint passes (PassManager.h).
///
/// Nodes are basic blocks of consecutive straight-line statements. A block
/// that ends at a branch stores the `if` statement as its terminator; its
/// successor 0 is the then-arm and successor 1 the else-arm. Statements
/// inside the blocks point into the caller's AST (not owned).
///
//===----------------------------------------------------------------------===//

#ifndef C4_PASSES_CFG_H
#define C4_PASSES_CFG_H

#include "frontend/AST.h"

#include <vector>

namespace c4 {

/// One basic block of a transaction CFG.
struct CFGNode {
  /// Straight-line statements of the block, in execution order. Branch
  /// (`if`) statements are not listed here; they become terminators.
  std::vector<Stmt *> Stmts;
  /// The `if` statement ending the block, or null for fall-through blocks.
  Stmt *Term = nullptr;
  /// Successor blocks. For branch blocks: [then, else]. At most one
  /// successor otherwise.
  std::vector<unsigned> Succs;
  std::vector<unsigned> Preds;
};

/// The control-flow graph of one transaction body.
class TxnCFG {
public:
  /// Builds the CFG for \p Txn. The transaction must outlive the CFG.
  explicit TxnCFG(TxnDecl &Txn);

  const TxnDecl &txn() const { return *Txn_; }
  unsigned entry() const { return 0; }
  unsigned exitNode() const { return Exit_; }
  unsigned numNodes() const { return static_cast<unsigned>(Nodes_.size()); }
  const CFGNode &node(unsigned Id) const { return Nodes_[Id]; }

  /// Nodes in reverse post-order from the entry (a topological order, since
  /// C4L CFGs are acyclic).
  const std::vector<unsigned> &rpo() const { return Rpo_; }

  /// True if every path from the entry to \p B passes through \p A.
  /// Reflexive: dominates(X, X) is true.
  bool dominates(unsigned A, unsigned B) const;

  /// True if every path from \p A to the exit passes through \p B.
  /// Reflexive: postDominates(X, X) is true.
  bool postDominates(unsigned B, unsigned A) const;

  /// Immediate dominator of each node (entry maps to itself).
  const std::vector<unsigned> &idom() const { return Idom_; }
  /// Immediate post-dominator of each node (exit maps to itself).
  const std::vector<unsigned> &postIdom() const { return PostIdom_; }

private:
  unsigned addNode();
  /// Builds \p Stmts starting in block \p Cur; returns the block the list
  /// falls through to.
  unsigned buildList(std::vector<StmtPtr> &Stmts, unsigned Cur);
  void computeOrders();

  TxnDecl *Txn_;
  std::vector<CFGNode> Nodes_;
  unsigned Exit_ = 0;
  std::vector<unsigned> Rpo_;
  std::vector<unsigned> Idom_, PostIdom_;
};

} // namespace c4

#endif // C4_PASSES_CFG_H
