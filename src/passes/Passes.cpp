//===- passes/Passes.cpp - Reduction passes and lint layer ----------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// The pass pipeline of PassManager.h. See docs/passes.md for the soundness
// argument of each reduction.
//
//===----------------------------------------------------------------------===//

#include "passes/PassManager.h"

#include "domain/AbstractDomain.h"
#include "frontend/Frontend.h"
#include "passes/CFG.h"
#include "passes/Dataflow.h"
#include "spec/DataType.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>
#include <set>

using namespace c4;

//===----------------------------------------------------------------------===//
// AST cloning
//===----------------------------------------------------------------------===//

static StmtPtr cloneStmt(const Stmt &S) {
  auto N = std::make_unique<Stmt>();
  N->Kind = S.Kind;
  N->Line = S.Line;
  N->Container = S.Container;
  N->Op = S.Op;
  N->Args = S.Args;
  N->LetName = S.LetName;
  N->Cond = S.Cond;
  N->ValueName = S.ValueName;
  for (const StmtPtr &C : S.Then)
    N->Then.push_back(cloneStmt(*C));
  for (const StmtPtr &C : S.Else)
    N->Else.push_back(cloneStmt(*C));
  return N;
}

std::unique_ptr<ProgramAST> c4::cloneAST(const ProgramAST &AST) {
  auto N = std::make_unique<ProgramAST>();
  N->Containers = AST.Containers;
  N->SessionConsts = AST.SessionConsts;
  N->GlobalConsts = AST.GlobalConsts;
  N->AtomicSets = AST.AtomicSets;
  N->Orders = AST.Orders;
  for (const TxnDecl &T : AST.Txns) {
    TxnDecl NT;
    NT.Name = T.Name;
    NT.Params = T.Params;
    NT.Line = T.Line;
    for (const StmtPtr &S : T.Body)
      NT.Body.push_back(cloneStmt(*S));
    N->Txns.push_back(std::move(NT));
  }
  return N;
}

//===----------------------------------------------------------------------===//
// Guard-constraint analysis
//===----------------------------------------------------------------------===//

namespace {

/// One unary constraint `name <rel> Lit` implied by the guards dominating a
/// program point. String literals are interned; a name constrained against
/// both string and integer literals is treated as unconstrained (sound).
struct GuardCon {
  enum RelTy : uint8_t { Eq, Ne, Lt, Le, Gt, Ge } Rel = Eq;
  int64_t Lit = 0;
  bool IsStr = false;

  bool operator==(const GuardCon &O) const {
    return Rel == O.Rel && Lit == O.Lit && IsStr == O.IsStr;
  }
};

/// The dataflow state: which constraints hold on each name at a program
/// point, on every path reaching it. `Reached` false is the lattice top
/// (no path seen yet); the meet treats it as identity.
struct GuardState {
  bool Reached = false;
  std::map<std::string, std::vector<GuardCon>> Names;
};

bool relHolds(int64_t V, GuardCon::RelTy R, int64_t L) {
  switch (R) {
  case GuardCon::Eq:
    return V == L;
  case GuardCon::Ne:
    return V != L;
  case GuardCon::Lt:
    return V < L;
  case GuardCon::Le:
    return V <= L;
  case GuardCon::Gt:
    return V > L;
  case GuardCon::Ge:
    return V >= L;
  }
  return true;
}

/// Complete satisfiability for a conjunction of unary constraints on one
/// name. The satisfying set is a union of intervals whose endpoints are
/// mentioned literals, so testing every literal and its neighbors decides
/// it exactly. Mixed string/integer constraint sets are conservatively
/// satisfiable (interned ids and program integers live in one value space,
/// but we never exploit their concrete coincidences).
bool satisfiable(const std::vector<GuardCon> &Cs) {
  bool AnyStr = false, AnyInt = false;
  for (const GuardCon &C : Cs)
    (C.IsStr ? AnyStr : AnyInt) = true;
  if (AnyStr && AnyInt)
    return true;
  if (AnyStr) {
    // Strings only ever appear in Eq/Ne constraints.
    std::optional<int64_t> Must;
    for (const GuardCon &C : Cs)
      if (C.Rel == GuardCon::Eq) {
        if (Must && *Must != C.Lit)
          return false;
        Must = C.Lit;
      }
    if (!Must)
      return true;
    for (const GuardCon &C : Cs)
      if (C.Rel == GuardCon::Ne && C.Lit == *Must)
        return false;
    return true;
  }
  if (Cs.empty())
    return true;
  for (const GuardCon &C : Cs)
    for (int64_t D : {-1, 0, 1}) {
      int64_t V = C.Lit + D;
      bool Ok = true;
      for (const GuardCon &O : Cs)
        Ok = Ok && relHolds(V, O.Rel, O.Lit);
      if (Ok)
        return true;
    }
  return false;
}

/// If the constraints pin the name to a single integer value, returns it.
std::optional<int64_t> pointValue(const std::vector<GuardCon> &Cs) {
  for (const GuardCon &C : Cs)
    if (C.IsStr)
      return std::nullopt;
  if (!satisfiable(Cs))
    return std::nullopt;
  for (const GuardCon &C : Cs)
    if (C.Rel == GuardCon::Eq)
      return C.Lit;
  return std::nullopt;
}

GuardCon::RelTy negateRel(GuardCon::RelTy R) {
  switch (R) {
  case GuardCon::Eq:
    return GuardCon::Ne;
  case GuardCon::Ne:
    return GuardCon::Eq;
  case GuardCon::Lt:
    return GuardCon::Ge;
  case GuardCon::Le:
    return GuardCon::Gt;
  case GuardCon::Gt:
    return GuardCon::Le;
  case GuardCon::Ge:
    return GuardCon::Lt;
  }
  return R;
}

/// The constraint a guard imposes on its name along the taken (then) or
/// not-taken (else) edge, if one is expressible.
std::optional<GuardCon> guardConstraint(const CondExpr &C, bool Taken,
                                        Interner &Str) {
  GuardCon G;
  switch (C.Cmp) {
  case CondExpr::Truthy:
    G.Rel = Taken ? GuardCon::Ne : GuardCon::Eq;
    return G;
  case CondExpr::Falsy:
    G.Rel = Taken ? GuardCon::Eq : GuardCon::Ne;
    return G;
  case CondExpr::Eq:
    G.Rel = GuardCon::Eq;
    break;
  case CondExpr::Ne:
    G.Rel = GuardCon::Ne;
    break;
  case CondExpr::Lt:
    G.Rel = GuardCon::Lt;
    break;
  case CondExpr::Le:
    G.Rel = GuardCon::Le;
    break;
  case CondExpr::Gt:
    G.Rel = GuardCon::Gt;
    break;
  case CondExpr::Ge:
    G.Rel = GuardCon::Ge;
    break;
  }
  switch (C.Rhs.Kind) {
  case Expr::IntLit:
    G.Lit = C.Rhs.Value;
    break;
  case Expr::StringLit:
    if (G.Rel != GuardCon::Eq && G.Rel != GuardCon::Ne)
      return std::nullopt;
    G.Lit = Str.intern(C.Rhs.Text);
    G.IsStr = true;
    break;
  case Expr::Name:
    return std::nullopt; // relational constraints are not tracked
  }
  if (!Taken)
    G.Rel = negateRel(G.Rel);
  return G;
}

GuardState transferBlock(GuardState S, const CFGNode &N) {
  if (!S.Reached)
    return S;
  // A `let` rebinds its name: constraints on the old binding die.
  for (const Stmt *St : N.Stmts)
    if (St->Kind == Stmt::Let)
      S.Names.erase(St->LetName);
  return S;
}

GuardState edgeRefine(GuardState Out, const CFGNode &N, unsigned I,
                      Interner &Str) {
  if (!Out.Reached || !N.Term)
    return Out;
  if (std::optional<GuardCon> G = guardConstraint(N.Term->Cond, I == 0, Str)) {
    std::vector<GuardCon> &V = Out.Names[N.Term->Cond.Name];
    if (std::find(V.begin(), V.end(), *G) == V.end())
      V.push_back(*G);
  }
  return Out;
}

bool meetInto(GuardState &Into, const GuardState &From) {
  if (!From.Reached)
    return false;
  if (!Into.Reached) {
    Into = From;
    return true;
  }
  // A constraint survives the meet only if every incoming path implies it.
  bool Changed = false;
  for (auto It = Into.Names.begin(); It != Into.Names.end();) {
    auto FIt = From.Names.find(It->first);
    std::vector<GuardCon> &V = It->second;
    size_t Before = V.size();
    if (FIt == From.Names.end())
      V.clear();
    else
      V.erase(std::remove_if(V.begin(), V.end(),
                             [&](const GuardCon &C) {
                               return std::find(FIt->second.begin(),
                                                FIt->second.end(),
                                                C) == FIt->second.end();
                             }),
              V.end());
    Changed = Changed || V.size() != Before;
    if (V.empty())
      It = Into.Names.erase(It);
    else
      ++It;
  }
  return Changed;
}

bool stateUnsat(const GuardState &S) {
  for (const auto &[Name, Cs] : S.Names)
    if (!satisfiable(Cs))
      return true;
  return false;
}

std::string renderCond(const CondExpr &C) {
  switch (C.Cmp) {
  case CondExpr::Truthy:
    return C.Name;
  case CondExpr::Falsy:
    return "!" + C.Name;
  default:
    break;
  }
  static const char *RelStr[] = {"", "", "==", "!=", "<", "<=", ">", ">="};
  std::string Rhs;
  switch (C.Rhs.Kind) {
  case Expr::IntLit:
    Rhs = std::to_string(C.Rhs.Value);
    break;
  case Expr::StringLit:
    Rhs = "\"" + C.Rhs.Text + "\"";
    break;
  case Expr::Name:
    Rhs = C.Rhs.Text;
    break;
  }
  return C.Name + " " + RelStr[C.Cmp] + " " + Rhs;
}

//===----------------------------------------------------------------------===//
// Dead/absorbed-write elimination
//===----------------------------------------------------------------------===//

/// Collects the slot indices the \p Src (or \p Tgt) side of \p C mentions.
void collectSlots(const Cond &C, bool Src, std::set<unsigned> &Out) {
  switch (C.kind()) {
  case Cond::NodeKind::Atom:
    for (Term T : {C.atomLHS(), C.atomRHS()})
      if (Src ? T.Kind == Term::ArgSrc : T.Kind == Term::ArgTgt)
        Out.insert(T.Index);
    break;
  case Cond::NodeKind::Not:
  case Cond::NodeKind::And:
  case Cond::NodeKind::Or:
    for (const Cond &Ch : C.children())
      collectSlots(Ch, Src, Out);
    break;
  default:
    break;
  }
}

/// The argument slots of operation \p OpIdx that any interference formula of
/// the analysis can inspect: slots mentioned in a commutativity or
/// absorption condition pairing \p OpIdx with any operation of the type (in
/// any mode, on either side), plus value-determination slots. Two events
/// that agree syntactically on these slots are interchangeable for the
/// SSG's edge predicates.
std::set<unsigned> relevantSlots(const DataTypeSpec &T, unsigned OpIdx) {
  std::set<unsigned> S;
  unsigned N = static_cast<unsigned>(T.ops().size());
  for (unsigned X = 0; X != N; ++X) {
    for (CommuteMode M :
         {CommuteMode::Plain, CommuteMode::Far, CommuteMode::Asym}) {
      collectSlots(commutesCond(T, OpIdx, X, M), true, S);
      collectSlots(commutesCond(T, X, OpIdx, M), false, S);
    }
    for (bool Far : {false, true}) {
      collectSlots(absorbsCond(T, OpIdx, X, Far), true, S);
      collectSlots(absorbsCond(T, X, OpIdx, Far), false, S);
    }
    if (T.ops()[X].isQuery()) {
      ValueDet VD = T.valueDetermination(OpIdx, X);
      if (VD.Kind == ValueDet::Slot || VD.Kind == ValueDet::SlotLowerBound)
        S.insert(VD.SlotIdx);
    }
  }
  return S;
}

bool sameExpr(const Expr &A, const Expr &B) {
  if (A.Kind != B.Kind)
    return false;
  return A.Kind == Expr::IntLit ? A.Value == B.Value : A.Text == B.Text;
}

/// Decides whether update statement \p U is provably absorbed by the later
/// same-op update \p V of the same basic block, with \p Rebound the names
/// `let`-rebound between them.
bool provablyAbsorbed(const Stmt &U, const Stmt &V, const DataTypeSpec &T,
                      const OpSig &Op, const std::set<std::string> &Rebound,
                      Interner &Str) {
  if (U.Args.size() != Op.NumArgs || V.Args.size() != Op.NumArgs)
    return false;
  // A rebound name in V denotes a different value than the same text in U,
  // so neither the shared-symbol facts nor syntactic identity would hold.
  for (const Expr &E : V.Args)
    if (E.Kind == Expr::Name && Rebound.count(E.Text))
      return false;
  unsigned OpIdx = T.opIndex(Op);
  for (unsigned S : relevantSlots(T, OpIdx)) {
    if (S >= Op.NumArgs)
      continue;
    if (!sameExpr(U.Args[S], V.Args[S]))
      return false;
  }
  Cond Abs = absorbsCond(T, OpIdx, OpIdx, /*Far=*/true);
  if (Abs.isFalse())
    return false;
  if (Abs.isTrue())
    return true;
  // Far absorption must *hold* (not merely be satisfiable) under the
  // syntactic arguments: same name => same value (symbol), literals =>
  // constants. It holds iff its negation is unsatisfiable.
  EventFacts FU(Op.numVals()), FV(Op.numVals());
  std::map<std::string, unsigned> Sym;
  auto ExprFact = [&](const Expr &E) {
    switch (E.Kind) {
    case Expr::IntLit:
      return ArgFact::constant(E.Value);
    case Expr::StringLit:
      return ArgFact::constant(Str.intern(E.Text));
    case Expr::Name:
      break;
    }
    auto It = Sym.emplace(E.Text, static_cast<unsigned>(Sym.size())).first;
    return ArgFact::symbol(It->second);
  };
  for (unsigned K = 0; K != Op.NumArgs; ++K) {
    FU[K] = ExprFact(U.Args[K]);
    FV[K] = ExprFact(V.Args[K]);
  }
  return !(!Abs).satisfiableUnder(FU, FV);
}

//===----------------------------------------------------------------------===//
// Per-transaction analysis and rewriting
//===----------------------------------------------------------------------===//

/// The rewrites one analysis round decided on, keyed by AST node. Statement
/// objects are heap-allocated, so the keys stay valid while arms are
/// spliced.
struct TxnActions {
  /// If-statement => surviving arm: 0 keep-then, 1 keep-else, 2 drop both.
  std::map<Stmt *, int> PruneIf;
  std::set<Stmt *> Remove; ///< absorbed updates to delete
  std::vector<std::pair<Expr *, int64_t>> Props; ///< name arg => literal
  std::vector<LintDiagnostic> Lints;

  bool any() const {
    return !PruneIf.empty() || !Remove.empty() || !Props.empty();
  }
};

void dweScan(const CFGNode &Node, const Schema &Sch, Interner &Str,
             const std::string &TxnName, TxnActions &A) {
  for (size_t I = 0; I != Node.Stmts.size(); ++I) {
    Stmt *U = Node.Stmts[I];
    if (U->Kind != Stmt::Call)
      continue;
    int CId = Sch.lookup(U->Container);
    if (CId < 0)
      continue;
    const DataTypeSpec *T = Sch.container(static_cast<unsigned>(CId)).Type;
    const OpSig *Op = T->findOp(U->Op);
    // Only plain updates are candidates: queries have no absorbable effect,
    // and fresh creators return identities the transaction may rely on.
    if (!Op || !Op->isUpdate() || Op->Fresh || Op->HasRet)
      continue;
    std::set<std::string> Rebound;
    for (size_t J = I + 1; J != Node.Stmts.size(); ++J) {
      Stmt *V = Node.Stmts[J];
      if (V->Kind == Stmt::Let) {
        if (V->Container == U->Container)
          break; // the query observes U; not dead
        Rebound.insert(V->LetName);
        continue;
      }
      if (V->Kind != Stmt::Call)
        continue;
      if (V->Container != U->Container)
        continue; // other containers commute with U
      if (V->Op == U->Op && provablyAbsorbed(*U, *V, *T, *Op, Rebound, Str)) {
        A.Remove.insert(U);
        A.Lints.push_back(
            {"C4L-W005", U->Line, TxnName,
             "redundant update '" + U->Container + "." + U->Op +
                 "' is absorbed by the identical update on line " +
                 std::to_string(V->Line)});
      }
      break; // any other same-container access ends U's absorption window
    }
  }
}

TxnActions analyzeTxn(TxnDecl &Txn, const Schema &Sch, Interner &Str,
                      const std::set<std::string> &SymbolicNames) {
  TxnActions A;
  TxnCFG G(Txn);
  std::vector<GuardState> In = runForwardDataflow(
      G, GuardState{true, {}}, GuardState{},
      [&](GuardState S, unsigned N) {
        return transferBlock(std::move(S), G.node(N));
      },
      [&](const GuardState &Out, unsigned N, unsigned I) {
        return edgeRefine(Out, G.node(N), I, Str);
      },
      meetInto);

  for (unsigned N : G.rpo()) {
    // A block whose in-state is contradictory is dynamically unreachable;
    // the branch that introduced the contradiction is reported (and pruned)
    // at its own node, so skip derived findings here.
    if (!In[N].Reached || stateUnsat(In[N]))
      continue;
    const CFGNode &Node = G.node(N);
    GuardState Cur = In[N];
    for (Stmt *S : Node.Stmts) {
      if (S->Kind == Stmt::Call || S->Kind == Stmt::Let)
        for (Expr &E : S->Args) {
          if (E.Kind != Expr::Name || SymbolicNames.count(E.Text))
            continue;
          auto It = Cur.Names.find(E.Text);
          if (It == Cur.Names.end())
            continue;
          if (std::optional<int64_t> V = pointValue(It->second))
            A.Props.push_back({&E, *V});
        }
      if (S->Kind == Stmt::Let)
        Cur.Names.erase(S->LetName);
    }
    if (Stmt *IfS = Node.Term) {
      bool Inf[2] = {false, false};
      for (int I = 0; I != 2; ++I)
        if (std::optional<GuardCon> GC =
                guardConstraint(IfS->Cond, I == 0, Str)) {
          std::vector<GuardCon> L;
          if (auto It = Cur.Names.find(IfS->Cond.Name);
              It != Cur.Names.end())
            L = It->second;
          L.push_back(*GC);
          Inf[I] = !satisfiable(L);
        }
      if (Inf[0] || Inf[1]) {
        A.PruneIf[IfS] = Inf[0] && Inf[1] ? 2 : (Inf[0] ? 1 : 0);
        // Pruning an empty arm is a useful reduction (it deletes the guard
        // structure) but not worth a diagnostic.
        if (Inf[0] && !IfS->Then.empty())
          A.Lints.push_back({"C4L-W003", IfS->Cond.Line, Txn.Name,
                             "guard '" + renderCond(IfS->Cond) +
                                 "' is always false; the then branch is "
                                 "unreachable"});
        if (Inf[1] && !IfS->Else.empty())
          A.Lints.push_back({"C4L-W003", IfS->Cond.Line, Txn.Name,
                             "guard '" + renderCond(IfS->Cond) +
                                 "' is always true; the else branch is "
                                 "unreachable"});
      }
    }
    dweScan(Node, Sch, Str, Txn.Name, A);
  }
  return A;
}

void applyToList(std::vector<StmtPtr> &L, const TxnActions &A) {
  for (size_t I = 0; I < L.size();) {
    Stmt *S = L[I].get();
    if (A.Remove.count(S)) {
      L.erase(L.begin() + static_cast<ptrdiff_t>(I));
      continue;
    }
    if (S->Kind == Stmt::If) {
      auto It = A.PruneIf.find(S);
      if (It != A.PruneIf.end()) {
        std::vector<StmtPtr> Arm;
        if (It->second != 2)
          Arm = std::move(It->second == 0 ? S->Then : S->Else);
        L.erase(L.begin() + static_cast<ptrdiff_t>(I));
        L.insert(L.begin() + static_cast<ptrdiff_t>(I),
                 std::make_move_iterator(Arm.begin()),
                 std::make_move_iterator(Arm.end()));
        continue; // reprocess the spliced statements
      }
      applyToList(S->Then, A);
      applyToList(S->Else, A);
    }
    ++I;
  }
}

void applyActions(TxnDecl &Txn, const TxnActions &A) {
  // Literal substitution first: some targeted expressions live in arms
  // about to be spliced away (mutating them is harmless).
  for (const auto &[E, V] : A.Props) {
    E->Kind = Expr::IntLit;
    E->Value = V;
    E->Text.clear();
  }
  applyToList(Txn.Body, A);
}

//===----------------------------------------------------------------------===//
// Program-level lints (W001 / W002 / W004)
//===----------------------------------------------------------------------===//

void walkContainerUses(const std::vector<StmtPtr> &L, const Schema &Sch,
                       std::vector<bool> &Upd, std::vector<bool> &Qry,
                       std::set<unsigned> &TxnUpd) {
  for (const StmtPtr &SP : L) {
    const Stmt &S = *SP;
    if (S.Kind == Stmt::If) {
      walkContainerUses(S.Then, Sch, Upd, Qry, TxnUpd);
      walkContainerUses(S.Else, Sch, Upd, Qry, TxnUpd);
      continue;
    }
    if (S.Kind != Stmt::Call && S.Kind != Stmt::Let)
      continue;
    int CId = Sch.lookup(S.Container);
    if (CId < 0)
      continue;
    const OpSig *Op =
        Sch.container(static_cast<unsigned>(CId)).Type->findOp(S.Op);
    if (!Op)
      continue;
    if (Op->isUpdate()) {
      Upd[static_cast<unsigned>(CId)] = true;
      TxnUpd.insert(static_cast<unsigned>(CId));
    } else {
      Qry[static_cast<unsigned>(CId)] = true;
    }
  }
}

void programLints(const ProgramAST &AST, const Schema &Sch,
                  std::vector<LintDiagnostic> &Out) {
  std::vector<bool> Upd(Sch.numContainers()), Qry(Sch.numContainers());

  // Resolve declared atomic sets to container-id groups.
  std::vector<std::set<unsigned>> Sets;
  for (const AtomicSetDecl &D : AST.AtomicSets) {
    std::set<unsigned> Ids;
    for (const std::string &Name : D.Containers)
      if (int CId = Sch.lookup(Name); CId >= 0)
        Ids.insert(static_cast<unsigned>(CId));
    Sets.push_back(std::move(Ids));
  }

  for (const TxnDecl &T : AST.Txns) {
    std::set<unsigned> TxnUpd;
    walkContainerUses(T.Body, Sch, Upd, Qry, TxnUpd);
    if (TxnUpd.size() < 2)
      continue;
    bool Covered = false;
    for (const std::set<unsigned> &S : Sets)
      Covered = Covered || std::includes(S.begin(), S.end(), TxnUpd.begin(),
                                         TxnUpd.end());
    if (Covered)
      continue;
    std::string List;
    for (unsigned C : TxnUpd)
      List += (List.empty() ? "'" : ", '") + Sch.container(C).Name + "'";
    Out.push_back({"C4L-W004", T.Line, T.Name,
                   "updates " + std::to_string(TxnUpd.size()) +
                       " containers (" + List +
                       ") that no atomic set groups together"});
  }

  auto DeclLine = [&](const std::string &Name) -> unsigned {
    for (const ContainerDeclAST &D : AST.Containers)
      if (D.Name == Name)
        return D.Line;
    return 1;
  };
  for (unsigned C = 0; C != Sch.numContainers(); ++C) {
    const std::string &Name = Sch.container(C).Name;
    if (Upd[C] && !Qry[C])
      Out.push_back({"C4L-W001", DeclLine(Name), "",
                     "container '" + Name +
                         "' is updated but never queried; its writes are "
                         "unobservable"});
    if (Qry[C] && !Upd[C])
      Out.push_back({"C4L-W002", DeclLine(Name), "",
                     "container '" + Name +
                         "' is queried but no transaction ever updates it"});
  }
}

//===----------------------------------------------------------------------===//
// Compiled-history lint (W006)
//===----------------------------------------------------------------------===//

/// W006: event-order guards the relational abstract domain proves
/// unsatisfiable. Runs over the compiled history, after the front end has
/// resolved names to per-slot facts, so it sees relational contradictions
/// (same symbol on both sides of a strict comparison, constants against
/// fresh unique identities) that the unary AST dataflow behind W003 cannot
/// express. A ProvenUnsat answer is a real proof — the domain never claims
/// bottom after an overflow — so every report here is a true positive.
void unsatGuardLints(const AbstractHistory &H, const ProgramAST *AST,
                     std::vector<LintDiagnostic> &Out) {
  auto TxnLine = [&](const std::string &Name) -> unsigned {
    if (AST)
      for (const TxnDecl &T : AST->Txns)
        if (T.Name == Name)
          return T.Line;
    return 1;
  };
  for (unsigned T = 0; T != H.numTxns(); ++T) {
    const AbstractTxn &Txn = H.txn(T);
    for (const AbstractConstraint &E : Txn.Eo) {
      if (E.C.isTrue())
        continue;
      // Both endpoints belong to one transaction instance, so their local
      // variables resolve in the same session: one shared tag.
      EventFacts Src = H.resolveFacts(E.Src, /*SessionTag=*/0);
      EventFacts Tgt = H.resolveFacts(E.Tgt, /*SessionTag=*/0);
      if (domainDecide(E.C, Src, Tgt) == DomainVerdict::ProvenUnsat)
        Out.push_back({"C4L-W006", TxnLine(Txn.Name), Txn.Name,
                       "guard '" + E.C.str() + "' on the edge " +
                           H.eventStr(E.Src) + " -> " + H.eventStr(E.Tgt) +
                           " is statically unsatisfiable; the guarded "
                           "code can never execute"});
    }
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Fresh-identity promotion
//===----------------------------------------------------------------------===//

unsigned c4::promoteFreshFacts(CompiledProgram &P) {
  return promoteFreshFacts(*P.History);
}

unsigned c4::promoteFreshFacts(AbstractHistory &H) {
  unsigned Count = 0;
  for (unsigned T = 0; T != H.numTxns(); ++T) {
    const AbstractTxn &Txn = H.txn(T);
    unsigned NE = static_cast<unsigned>(Txn.Events.size());
    std::map<unsigned, unsigned> Local;
    for (unsigned I = 0; I != NE; ++I)
      Local[Txn.Events[I]] = I;
    std::vector<std::vector<unsigned>> Preds(NE), Succs(NE);
    for (const AbstractConstraint &E : Txn.Eo) {
      unsigned S = Local.at(E.Src), D = Local.at(E.Tgt);
      Succs[S].push_back(D);
      Preds[D].push_back(S);
    }

    // Reachability from the entry marker (local index 0).
    std::vector<bool> Reach(NE, false);
    std::vector<unsigned> Work{0};
    Reach[0] = true;
    while (!Work.empty()) {
      unsigned N = Work.back();
      Work.pop_back();
      for (unsigned S : Succs[N])
        if (!Reach[S]) {
          Reach[S] = true;
          Work.push_back(S);
        }
    }

    // Event-level dominators over the eo DAG, ignoring edge guards: every
    // eo path counts, so domination is harder to establish than in any
    // single execution — conservative in the right direction. Transactions
    // are small; the quadratic set representation is fine.
    std::vector<std::vector<bool>> Dom(NE, std::vector<bool>(NE, true));
    Dom[0].assign(NE, false);
    Dom[0][0] = true;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (unsigned I = 1; I < NE; ++I) {
        if (Preds[I].empty())
          continue;
        std::vector<bool> New(NE, true);
        for (unsigned Pd : Preds[I])
          for (unsigned K = 0; K != NE; ++K)
            New[K] = New[K] && Dom[Pd][K];
        New[I] = true;
        if (New != Dom[I]) {
          Dom[I] = std::move(New);
          Changed = true;
        }
      }
    }

    // Provenance fixpoint: (event, slot) pairs provably carrying the fresh
    // identity of a dominating creator. Seeds are the creators' return
    // slots; equalities inferred by the front end (pair invariants of the
    // exact shape argsrc(i) == argtgt(j)) extend the set, but only across a
    // hop whose known end dominates the other — the invariant is vacuous on
    // executions that skip either event, so domination is what guarantees
    // the value actually flows.
    std::map<std::pair<unsigned, unsigned>, unsigned> Prov;
    for (unsigned I = 0; I != NE; ++I) {
      unsigned Ev = Txn.Events[I];
      if (H.event(Ev).isMarker() || !Reach[I])
        continue;
      const OpSig &Op = H.op(Ev);
      if (Op.Fresh && Op.HasRet)
        Prov[{Ev, Op.NumArgs}] = Ev;
    }
    bool PChanged = !Prov.empty();
    while (PChanged) {
      PChanged = false;
      for (const AbstractConstraint &Inv : Txn.Invs) {
        if (Inv.C.kind() != Cond::NodeKind::Atom ||
            Inv.C.atomCmp() != CmpKind::Eq)
          continue;
        Term L = Inv.C.atomLHS(), R = Inv.C.atomRHS();
        unsigned SIdx, TIdx;
        if (L.Kind == Term::ArgSrc && R.Kind == Term::ArgTgt) {
          SIdx = L.Index;
          TIdx = R.Index;
        } else if (L.Kind == Term::ArgTgt && R.Kind == Term::ArgSrc) {
          SIdx = R.Index;
          TIdx = L.Index;
        } else {
          continue;
        }
        unsigned S = Inv.Src, G = Inv.Tgt;
        auto SIt = Prov.find({S, SIdx}), TIt = Prov.find({G, TIdx});
        if (SIt != Prov.end() && TIt == Prov.end() && Reach[Local.at(G)] &&
            Dom[Local.at(G)][Local.at(S)]) {
          Prov[{G, TIdx}] = SIt->second;
          PChanged = true;
        } else if (TIt != Prov.end() && SIt == Prov.end() &&
                   Reach[Local.at(S)] && Dom[Local.at(S)][Local.at(G)]) {
          Prov[{S, SIdx}] = TIt->second;
          PChanged = true;
        }
      }
    }

    for (const auto &[Key, Creator] : Prov) {
      auto [Ev, Slot] = Key;
      const AbstractEvent &AE = H.event(Ev);
      AbsFact Cur =
          Slot < AE.Facts.size() ? AE.Facts[Slot] : AbsFact::free();
      if (Cur.Kind != AbsFact::Free)
        continue; // existing facts are at least as strong; keep them
      H.setFact(Ev, Slot, AbsFact::freshVar(Creator));
      ++Count;
    }
  }
  return Count;
}

//===----------------------------------------------------------------------===//
// Pipeline driver
//===----------------------------------------------------------------------===//

PassResult c4::runPasses(CompiledProgram &P, const PassOptions &Opts,
                         const std::string *Source) {
  auto T0 = std::chrono::steady_clock::now();
  PassResult R;
  auto Finish = [&]() -> PassResult & {
    R.Stats.Seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
            .count();
    return R;
  };

  R.Stats.EventsBefore = P.History->numStoreEvents();
  if (Opts.Lint && P.AST)
    programLints(*P.AST, *P.Sch, R.Lints);

  if ((Opts.Lint || Opts.Reduce) && P.AST) {
    std::set<std::string> SymbolicNames(P.AST->SessionConsts.begin(),
                                        P.AST->SessionConsts.end());
    SymbolicNames.insert(P.AST->GlobalConsts.begin(),
                         P.AST->GlobalConsts.end());
    std::unique_ptr<ProgramAST> Clone = cloneAST(*P.AST);
    bool Any = false;
    constexpr unsigned MaxRounds = 8;
    for (unsigned Round = 0; Round != MaxRounds; ++Round) {
      bool Changed = false;
      for (TxnDecl &Txn : Clone->Txns) {
        TxnActions A = analyzeTxn(Txn, *P.Sch, *P.Strings, SymbolicNames);
        if (Opts.Lint)
          R.Lints.insert(R.Lints.end(), A.Lints.begin(), A.Lints.end());
        if (!Opts.Reduce || !A.any())
          continue;
        for (const auto &[IfS, Keep] : A.PruneIf) {
          (void)IfS;
          (void)Keep;
          ++R.Stats.PrunedBranches;
        }
        R.Stats.DeadWrites += static_cast<unsigned>(A.Remove.size());
        R.Stats.ConstProps += static_cast<unsigned>(A.Props.size());
        applyActions(Txn, A);
        Changed = true;
      }
      if (Changed) {
        Any = true;
        R.Stats.Iterations = Round + 1;
      }
      if (!Opts.Reduce || !Changed)
        break;
    }
    if (Any) {
      std::string Err;
      if (!rebuildFromAST(P, *Clone, Err)) {
        R.Ok = false;
        R.Error = "pass pipeline: " + Err;
        R.Lints.clear();
        R.Stats = PassStats{};
        R.Stats.EventsBefore = R.Stats.EventsAfter =
            P.History->numStoreEvents();
        return Finish();
      }
      P.AST = std::move(Clone);
      R.Changed = true;
    }
  }

  if (Opts.Reduce && Opts.UniqueValues)
    R.Stats.FreshPromotions = promoteFreshFacts(P);

  if (Opts.Lint) {
    // W006 wants fresh-identity facts, which only exist after promotion;
    // promote a scratch copy so `--no-passes --lint` still sees them
    // without the reduction pipeline mutating the analyzed history.
    AbstractHistory Scratch = *P.History;
    if (Opts.UniqueValues)
      promoteFreshFacts(Scratch);
    unsatGuardLints(Scratch, P.AST.get(), R.Lints);
  }

  R.Stats.EventsAfter = P.History->numStoreEvents();
  sortLints(R.Lints);
  if (Source)
    R.Lints = filterSuppressedLints(std::move(R.Lints), *Source);
  return Finish();
}
