//===- support/Fingerprint.h - Stable content fingerprints ------*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A streaming 128-bit content hasher used to key the persistent analysis
/// cache (support/DiskCache.h). Two independent FNV-1a-64 lanes (distinct
/// offset bases, both fed every byte) give a digest whose accidental
/// collision probability is negligible at cache scale while staying fully
/// deterministic across platforms, processes and runs — unlike
/// `std::hash`, whose value is implementation-defined and may be salted.
///
/// Field framing: every `add*` call first hashes a one-byte tag plus the
/// value's length, so adjacent variable-length fields cannot alias
/// (`"ab","c"` vs `"a","bc"` produce different digests). Callers stream the
/// *semantic* content of a structure in a fixed traversal order; the digest
/// is then a stable identity for "the same analysis input".
///
//===----------------------------------------------------------------------===//

#ifndef C4_SUPPORT_FINGERPRINT_H
#define C4_SUPPORT_FINGERPRINT_H

#include <cstdint>
#include <cstddef>
#include <string>

namespace c4 {

/// Streaming content hasher with a stable, platform-independent digest.
class Fingerprint {
public:
  /// Hashes raw bytes into both lanes.
  void addBytes(const void *Data, size_t Len) {
    const unsigned char *P = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I != Len; ++I) {
      A = (A ^ P[I]) * Prime;
      B = (B ^ P[I]) * Prime;
    }
  }

  /// Hashes an unsigned integer as 8 little-endian bytes (fixed width, so
  /// the encoding is identical on every platform).
  void addU64(uint64_t V) {
    unsigned char Buf[9] = {TagU64};
    for (unsigned I = 0; I != 8; ++I)
      Buf[1 + I] = static_cast<unsigned char>(V >> (8 * I));
    addBytes(Buf, sizeof(Buf));
  }

  void addI64(int64_t V) { addU64(static_cast<uint64_t>(V)); }
  void addBool(bool V) { addU64(V ? TagTrue : TagFalse); }

  /// Hashes a length-framed string.
  void addStr(const std::string &S) {
    unsigned char Tag = TagStr;
    addBytes(&Tag, 1);
    addU64(S.size());
    addBytes(S.data(), S.size());
  }

  /// The 32-hex-character digest of everything streamed so far.
  std::string digest() const {
    static const char Hex[] = "0123456789abcdef";
    std::string Out;
    Out.reserve(32);
    for (uint64_t Lane : {A, B})
      for (int Shift = 60; Shift >= 0; Shift -= 4)
        Out += Hex[(Lane >> Shift) & 0xF];
    return Out;
  }

private:
  static constexpr uint64_t Prime = 0x100000001b3ull;
  static constexpr unsigned char TagU64 = 0x01, TagStr = 0x02;
  static constexpr uint64_t TagTrue = 0xF1, TagFalse = 0xF0;
  // Lane A is standard FNV-1a-64; lane B starts from a different basis so
  // the lanes decorrelate despite sharing the multiplier.
  uint64_t A = 0xcbf29ce484222325ull;
  uint64_t B = 0x9ae16a3b2f90404full;
};

/// FNV-1a-64 of a buffer, for cheap integrity checksums (DiskCache entry
/// headers). Distinct from Fingerprint: no framing, single lane.
inline uint64_t fnv1a64(const void *Data, size_t Len) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  uint64_t H = 0xcbf29ce484222325ull;
  for (size_t I = 0; I != Len; ++I)
    H = (H ^ P[I]) * 0x100000001b3ull;
  return H;
}

} // namespace c4

#endif // C4_SUPPORT_FINGERPRINT_H
