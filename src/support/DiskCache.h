//===- support/DiskCache.h - Crash-safe on-disk KV store --------*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistence layer under the cross-run analysis cache: a versioned,
/// crash-safe key→blob store rooted at a directory. Keys are short
/// identifier strings (typically content fingerprints, see
/// support/Fingerprint.h); values are opaque byte strings.
///
/// Crash safety. Every entry is a single file written with the atomic
/// tmp-file-then-rename protocol: the value is serialized (with a header
/// carrying a magic, the format version, the payload length and an FNV-1a
/// checksum) into `tmp/<key>.<pid>.<seq>`, flushed, and `rename(2)`d to its
/// final path. POSIX rename is atomic within a filesystem, so a reader
/// never observes a half-written entry under the final name, and a process
/// killed mid-write leaves at most a stale file in `tmp/` (swept
/// opportunistically on open). Defense in depth: `get` re-validates the
/// header and checksum anyway — a torn or corrupted entry (however it came
/// to be) is treated as a miss and unlinked, so the caller falls back to
/// the cold path and the next store repairs the cache. Corruption is
/// counted, never fatal.
///
/// Versioning. The on-disk format version is part of every entry header
/// and of the entry's file name suffix, so a cache directory written by an
/// older (or newer) format simply misses rather than misparses. Logical
/// schema changes of the *cached content* are the caller's concern: bake a
/// revision (e.g. `kSpecRevision`) into the key.
///
/// Concurrency. Multiple processes may share one cache directory: writes
/// are atomic replacements (last writer wins — fine for deterministic
/// content, where both writers store identical bytes), reads validate.
/// Within one process the class is thread-safe; the counters are atomics.
///
//===----------------------------------------------------------------------===//

#ifndef C4_SUPPORT_DISKCACHE_H
#define C4_SUPPORT_DISKCACHE_H

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

namespace c4 {

/// Point-in-time snapshot of a cache's access counters.
struct DiskCacheStats {
  uint64_t Hits = 0;      ///< get() found a valid entry
  uint64_t Misses = 0;    ///< get() found nothing
  uint64_t Corrupt = 0;   ///< get() found an invalid entry (counted as miss)
  uint64_t Stores = 0;    ///< successful put()s
  uint64_t StoreErrors = 0; ///< put()s that failed (I/O error, read-only fs)
};

/// A crash-safe on-disk key→blob store. See the file comment for the
/// protocol. All methods are safe to call concurrently.
class DiskCache {
public:
  /// Opens (creating if needed) a cache rooted at \p Dir. On failure the
  /// cache is *disabled*: every get misses, every put is a no-op — callers
  /// degrade to cold-path analysis rather than erroring out.
  explicit DiskCache(const std::string &Dir);

  /// True when the directory was usable at construction time.
  bool enabled() const { return Enabled; }
  const std::string &dir() const { return Root; }

  /// Looks up \p Key. Returns the stored blob, or nullopt on miss or on a
  /// corrupt entry (which is unlinked and counted).
  std::optional<std::string> get(const std::string &Key);

  /// Stores \p Value under \p Key via tmp-file + atomic rename. Failures
  /// are counted, not raised.
  void put(const std::string &Key, const std::string &Value);

  DiskCacheStats stats() const;

  /// The filesystem path an entry for \p Key lives at (exposed so tests
  /// can corrupt entries deliberately).
  std::string entryPath(const std::string &Key) const;

private:
  std::string Root;    // cache root directory
  std::string Objects; // <root>/objects
  std::string Tmp;     // <root>/tmp
  bool Enabled = false;
  std::atomic<uint64_t> Seq{0}; // uniquifies tmp names within the process
  mutable std::atomic<uint64_t> Hits{0}, Misses{0}, Corrupt{0}, Stores{0},
      StoreErrors{0};
};

} // namespace c4

#endif // C4_SUPPORT_DISKCACHE_H
