//===- support/Digraph.cpp ------------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "support/Digraph.h"

#include <algorithm>
#include <cassert>

using namespace c4;

unsigned Digraph::addEdge(unsigned From, unsigned To, int Label) {
  assert(From < numNodes() && To < numNodes() && "edge endpoint out of range");
  unsigned Idx = numEdges();
  Edges.push_back({From, To, Label});
  Succs[From].push_back(Idx);
  Preds[To].push_back(Idx);
  return Idx;
}

bool Digraph::hasEdge(unsigned From, unsigned To) const {
  for (unsigned EI : Succs[From])
    if (Edges[EI].To == To)
      return true;
  return false;
}

std::vector<unsigned> Digraph::edgesBetween(unsigned From, unsigned To) const {
  std::vector<unsigned> Result;
  for (unsigned EI : Succs[From])
    if (Edges[EI].To == To)
      Result.push_back(EI);
  return Result;
}

std::vector<unsigned>
Digraph::stronglyConnectedComponents(unsigned &NumComponents) const {
  unsigned N = numNodes();
  std::vector<unsigned> Component(N, 0);
  std::vector<unsigned> Index(N, 0), LowLink(N, 0);
  std::vector<bool> OnStack(N, false), Visited(N, false);
  std::vector<unsigned> Stack;
  NumComponents = 0;
  unsigned NextIndex = 1;

  // Iterative Tarjan: each frame remembers the node and the position in its
  // successor list.
  struct Frame {
    unsigned Node;
    unsigned EdgePos;
  };
  std::vector<Frame> CallStack;

  for (unsigned Root = 0; Root != N; ++Root) {
    if (Visited[Root])
      continue;
    CallStack.push_back({Root, 0});
    Visited[Root] = true;
    Index[Root] = LowLink[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = true;

    while (!CallStack.empty()) {
      Frame &F = CallStack.back();
      unsigned V = F.Node;
      if (F.EdgePos < Succs[V].size()) {
        unsigned W = Edges[Succs[V][F.EdgePos++]].To;
        if (!Visited[W]) {
          Visited[W] = true;
          Index[W] = LowLink[W] = NextIndex++;
          Stack.push_back(W);
          OnStack[W] = true;
          CallStack.push_back({W, 0});
        } else if (OnStack[W]) {
          LowLink[V] = std::min(LowLink[V], Index[W]);
        }
        continue;
      }
      // All successors processed: maybe emit a component, then return.
      if (LowLink[V] == Index[V]) {
        while (true) {
          unsigned W = Stack.back();
          Stack.pop_back();
          OnStack[W] = false;
          Component[W] = NumComponents;
          if (W == V)
            break;
        }
        ++NumComponents;
      }
      CallStack.pop_back();
      if (!CallStack.empty()) {
        unsigned Parent = CallStack.back().Node;
        LowLink[Parent] = std::min(LowLink[Parent], LowLink[V]);
      }
    }
  }
  return Component;
}

bool Digraph::hasCycle() const {
  for (const Edge &E : Edges)
    if (E.From == E.To)
      return true;
  unsigned NumComponents = 0;
  std::vector<unsigned> Component = stronglyConnectedComponents(NumComponents);
  // A cycle exists iff some component has more than one node.
  std::vector<unsigned> Size(NumComponents, 0);
  for (unsigned C : Component)
    ++Size[C];
  for (unsigned S : Size)
    if (S > 1)
      return true;
  return false;
}

std::vector<unsigned> Digraph::topologicalOrder() const {
  unsigned N = numNodes();
  std::vector<unsigned> InDegree(N, 0);
  for (const Edge &E : Edges)
    ++InDegree[E.To];
  std::vector<unsigned> Order;
  Order.reserve(N);
  std::vector<unsigned> Ready;
  for (unsigned V = 0; V != N; ++V)
    if (InDegree[V] == 0)
      Ready.push_back(V);
  while (!Ready.empty()) {
    unsigned V = Ready.back();
    Ready.pop_back();
    Order.push_back(V);
    for (unsigned EI : Succs[V])
      if (--InDegree[Edges[EI].To] == 0)
        Ready.push_back(Edges[EI].To);
  }
  if (Order.size() != N)
    return {};
  return Order;
}

std::vector<bool> Digraph::reachableFrom(unsigned Start) const {
  std::vector<bool> Seen(numNodes(), false);
  std::vector<unsigned> Work{Start};
  Seen[Start] = true;
  while (!Work.empty()) {
    unsigned V = Work.back();
    Work.pop_back();
    for (unsigned EI : Succs[V]) {
      unsigned W = Edges[EI].To;
      if (!Seen[W]) {
        Seen[W] = true;
        Work.push_back(W);
      }
    }
  }
  return Seen;
}

namespace {

/// State for Johnson's simple-cycle enumeration restricted to nodes >= Root
/// within one strongly-connected region.
class JohnsonState {
public:
  JohnsonState(const Digraph &Graph, unsigned CycleCap,
               std::vector<std::vector<unsigned>> &OutCycles, bool &Trunc)
      : G(Graph), MaxCycles(CycleCap), Out(OutCycles), Truncated(Trunc),
        Blocked(Graph.numNodes(), false), BlockMap(Graph.numNodes()) {}

  void run() {
    for (unsigned R = 0, N = G.numNodes(); R != N; ++R) {
      if (Out.size() >= MaxCycles) {
        Truncated = true;
        return;
      }
      std::fill(Blocked.begin(), Blocked.end(), false);
      for (auto &B : BlockMap)
        B.clear();
      Root = R;
      circuit(R);
    }
  }

private:
  bool circuit(unsigned V) {
    bool Found = false;
    Path.push_back(V);
    Blocked[V] = true;
    for (unsigned EI : G.succEdges(V)) {
      unsigned W = G.edge(EI).To;
      if (W < Root) // Only consider nodes >= Root to avoid duplicates.
        continue;
      if (W == Root) {
        Out.push_back(Path);
        Found = true;
        if (Out.size() >= MaxCycles) {
          Truncated = true;
          Path.pop_back();
          return true;
        }
      } else if (!Blocked[W]) {
        if (circuit(W))
          Found = true;
        if (Truncated) {
          Path.pop_back();
          return Found;
        }
      }
    }
    if (Found)
      unblock(V);
    else
      for (unsigned EI : G.succEdges(V)) {
        unsigned W = G.edge(EI).To;
        if (W < Root || W == Root)
          continue;
        auto &B = BlockMap[W];
        if (std::find(B.begin(), B.end(), V) == B.end())
          B.push_back(V);
      }
    Path.pop_back();
    return Found;
  }

  void unblock(unsigned V) {
    Blocked[V] = false;
    std::vector<unsigned> Work;
    Work.swap(BlockMap[V]);
    for (unsigned W : Work)
      if (Blocked[W])
        unblock(W);
  }

  const Digraph &G;
  unsigned MaxCycles;
  std::vector<std::vector<unsigned>> &Out;
  bool &Truncated;
  std::vector<bool> Blocked;
  std::vector<std::vector<unsigned>> BlockMap;
  std::vector<unsigned> Path;
  unsigned Root = 0;
};

} // namespace

std::vector<std::vector<unsigned>>
Digraph::simpleCycles(unsigned MaxCycles, bool &Truncated) const {
  std::vector<std::vector<unsigned>> Result;
  Truncated = false;
  JohnsonState State(*this, MaxCycles, Result, Truncated);
  State.run();
  return Result;
}
