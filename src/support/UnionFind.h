//===- support/UnionFind.h - Disjoint set union -----------------*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Union-find with path compression and union by rank. Used by the abstract
/// interpreter to track equalities between local variables and arguments.
///
//===----------------------------------------------------------------------===//

#ifndef C4_SUPPORT_UNIONFIND_H
#define C4_SUPPORT_UNIONFIND_H

#include <cassert>
#include <cstdint>
#include <numeric>
#include <vector>

namespace c4 {

/// Disjoint-set forest over dense unsigned ids.
class UnionFind {
public:
  explicit UnionFind(unsigned N = 0) { reset(N); }

  /// Re-initializes to \p N singleton sets.
  void reset(unsigned N) {
    Parent.resize(N);
    Rank.assign(N, 0);
    std::iota(Parent.begin(), Parent.end(), 0u);
  }

  /// Adds a fresh singleton element and returns its id.
  unsigned add() {
    Parent.push_back(static_cast<unsigned>(Parent.size()));
    Rank.push_back(0);
    return static_cast<unsigned>(Parent.size()) - 1;
  }

  unsigned size() const { return static_cast<unsigned>(Parent.size()); }

  /// Finds the representative of \p X.
  unsigned find(unsigned X) {
    assert(X < Parent.size() && "element out of range");
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  }

  /// Merges the sets of \p A and \p B; returns the new representative.
  unsigned merge(unsigned A, unsigned B) {
    A = find(A);
    B = find(B);
    if (A == B)
      return A;
    if (Rank[A] < Rank[B])
      std::swap(A, B);
    Parent[B] = A;
    if (Rank[A] == Rank[B])
      ++Rank[A];
    return A;
  }

  /// Returns true if \p A and \p B are in the same set.
  bool connected(unsigned A, unsigned B) { return find(A) == find(B); }

private:
  std::vector<unsigned> Parent;
  std::vector<uint8_t> Rank;
};

} // namespace c4

#endif // C4_SUPPORT_UNIONFIND_H
