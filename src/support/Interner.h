//===- support/Interner.h - String interning --------------------*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns strings to dense int64 ids. The analyzer models every store value
/// as an integer (paper §7: the invariant fragment is equalities and integer
/// comparisons); the front end uses this interner to map string literals to
/// distinct integers while keeping reports human-readable.
///
//===----------------------------------------------------------------------===//

#ifndef C4_SUPPORT_INTERNER_H
#define C4_SUPPORT_INTERNER_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace c4 {

/// Bidirectional string <-> int64 interner.
///
/// Interned ids start at a large base so they never collide with small
/// integer literals appearing in programs.
class Interner {
public:
  static constexpr int64_t Base = 1000000;

  /// Returns the id for \p S, interning it on first use.
  int64_t intern(const std::string &S) {
    auto It = Ids.find(S);
    if (It != Ids.end())
      return It->second;
    int64_t Id = Base + static_cast<int64_t>(Strings.size());
    Ids.emplace(S, Id);
    Strings.push_back(S);
    return Id;
  }

  /// Returns the string for \p Id, or nullptr if \p Id is not interned.
  const std::string *lookup(int64_t Id) const {
    if (Id < Base || Id >= Base + static_cast<int64_t>(Strings.size()))
      return nullptr;
    return &Strings[static_cast<size_t>(Id - Base)];
  }

private:
  std::unordered_map<std::string, int64_t> Ids;
  std::vector<std::string> Strings;
};

} // namespace c4

#endif // C4_SUPPORT_INTERNER_H
