//===- support/ThreadPool.h - Minimal fixed-size thread pool ----*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size worker pool used by the parallel bounded check: tasks
/// are submitted as callables and their results retrieved through
/// std::future, which lets the analyzer commit outcomes in submission order
/// (the ordered-commit scheme that keeps parallel runs bit-identical to
/// sequential ones). Tasks run FIFO; the destructor drains the queue and
/// joins all workers.
///
/// Cancellation is cooperative. A pool can be bound to a Deadline (or
/// cancelled manually); every queued task still runs — a packaged task must
/// execute for its future to become ready — but deadline-aware tasks check
/// `cancelled()` at entry and return a sentinel result in microseconds, so
/// draining a long queue after expiry costs almost nothing. `cancelled()`
/// latches via the Deadline, making post-expiry polls one relaxed atomic
/// load (no clock reads on the worker hot path).
///
//===----------------------------------------------------------------------===//

#ifndef C4_SUPPORT_THREADPOOL_H
#define C4_SUPPORT_THREADPOOL_H

#include "support/Deadline.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace c4 {

class ThreadPool {
public:
  /// \p Cancel, when given, is the run's deadline: once it expires,
  /// `cancelled()` turns true for every worker and submitter.
  explicit ThreadPool(unsigned NumThreads,
                      const Deadline *CancelDeadline = nullptr)
      : Cancel(CancelDeadline) {
    if (NumThreads == 0)
      NumThreads = 1;
    for (unsigned I = 0; I != NumThreads; ++I)
      Workers.emplace_back([this] { workerLoop(); });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Stopping = true;
    }
    Cv.notify_all();
    for (std::thread &W : Workers)
      W.join();
  }

  unsigned numThreads() const { return static_cast<unsigned>(Workers.size()); }

  /// True once the bound deadline expired or `cancel()` was called. Tasks
  /// poll this at entry and wind down; results produced after this point
  /// are still well-formed (the ordered commit loop decides what to keep).
  bool cancelled() const {
    return ManualCancel.load(std::memory_order_relaxed) ||
           (Cancel && Cancel->expired());
  }

  /// Manual cooperative cancellation, independent of any deadline.
  void cancel() { ManualCancel.store(true, std::memory_order_relaxed); }

  /// Enqueues \p Fn and returns a future for its result. Safe to call from
  /// multiple threads. Tasks must not block on futures of tasks submitted
  /// later (FIFO execution with a bounded worker count would deadlock).
  template <typename Fn>
  auto submit(Fn &&F) -> std::future<std::invoke_result_t<Fn>> {
    using Ret = std::invoke_result_t<Fn>;
    // std::function requires copyable targets; wrap the move-only
    // packaged_task in a shared_ptr.
    auto Task =
        std::make_shared<std::packaged_task<Ret()>>(std::forward<Fn>(F));
    std::future<Ret> Result = Task->get_future();
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Queue.emplace_back([Task] { (*Task)(); });
    }
    Cv.notify_one();
    return Result;
  }

private:
  void workerLoop() {
    while (true) {
      std::function<void()> Task;
      {
        std::unique_lock<std::mutex> Lock(Mu);
        Cv.wait(Lock, [this] { return Stopping || !Queue.empty(); });
        if (Queue.empty())
          return; // Stopping and drained
        Task = std::move(Queue.front());
        Queue.pop_front();
      }
      // Run even when cancelled: the task's future must become ready, and
      // cancellation-aware tasks exit in microseconds once `cancelled()`.
      Task();
    }
  }

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mu;
  std::condition_variable Cv;
  bool Stopping = false;
  const Deadline *Cancel;
  std::atomic<bool> ManualCancel{false};
};

} // namespace c4

#endif // C4_SUPPORT_THREADPOOL_H
