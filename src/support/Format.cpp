//===- support/Format.cpp -------------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"

#include <cstdio>

using namespace c4;

std::string c4::strf(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list Copy;
  va_copy(Copy, Args);
  int Size = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  std::string Result;
  if (Size > 0) {
    Result.resize(static_cast<size_t>(Size) + 1);
    std::vsnprintf(Result.data(), Result.size(), Fmt, Args);
    Result.resize(static_cast<size_t>(Size));
  }
  va_end(Args);
  return Result;
}

std::string c4::join(const std::vector<std::string> &Parts,
                     const std::string &Sep) {
  std::string Result;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}
