//===- support/EventLoop.h - Minimal poll(2)-based reactor ------*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small single-threaded reactor over poll(2), built for the analysis
/// serving tier: one thread multiplexes every listening socket and client
/// connection (thousands of mostly-idle fds) while the CPU-bound analysis
/// work runs on a ThreadPool. Handlers are level-triggered callbacks keyed
/// by fd; interest is a Read/Write bitmask updated as connections
/// accumulate or drain buffered replies.
///
/// Threading model: `add`, `setInterest`, `remove` and `runOnce` belong to
/// the loop thread. The *only* cross-thread entry point is `post`, which
/// enqueues a function and wakes the poller through a self-pipe — worker
/// threads use it to hand completed replies back to the loop, and signal
/// handlers write to the same style of pipe (a one-byte write is
/// async-signal-safe where a condition variable is not).
///
/// The owner drives the loop (`while (...) Loop.runOnce(timeoutMs)`)
/// instead of a captive run(): the serving tier re-evaluates drain progress
/// and deadlines between iterations.
///
//===----------------------------------------------------------------------===//

#ifndef C4_SUPPORT_EVENTLOOP_H
#define C4_SUPPORT_EVENTLOOP_H

#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace c4 {

class EventLoop {
public:
  /// Interest / event bitmask. Error is only ever delivered, never
  /// requested; POLLHUP surfaces as Read so handlers observe EOF from
  /// read() the normal way.
  enum Event : unsigned { Read = 1, Write = 2, Error = 4 };
  using Handler = std::function<void(unsigned Events)>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop &) = delete;
  EventLoop &operator=(const EventLoop &) = delete;

  /// False when the wake pipe could not be created; the loop is unusable.
  bool ok() const { return WakeRead >= 0; }

  /// Registers \p Fd with the given interest; replaces any prior handler.
  void add(int Fd, unsigned Interest, Handler H);

  /// Updates the interest mask of a registered fd (no-op if unknown).
  void setInterest(int Fd, unsigned Interest);

  /// Deregisters \p Fd (no-op if unknown). Does not close the fd.
  void remove(int Fd);

  /// Number of registered fds (the wake pipe is not counted).
  size_t size() const { return Watches.size(); }

  /// Thread-safe: queues \p Fn to run on the loop thread during the next
  /// runOnce iteration (before fd dispatch) and wakes the poller.
  void post(std::function<void()> Fn);

  /// One iteration: waits up to \p TimeoutMs (-1 = indefinitely) for
  /// events, runs posted functions, then dispatches fd handlers. Returns
  /// false only on an unrecoverable poll error (EINTR is a normal wake).
  bool runOnce(int TimeoutMs);

private:
  struct Watch {
    unsigned Interest = 0;
    std::shared_ptr<Handler> H; ///< shared so a handler may remove itself
  };
  std::unordered_map<int, Watch> Watches;
  int WakeRead = -1, WakeWrite = -1;
  std::mutex PostMu;
  std::vector<std::function<void()>> Posted;
};

} // namespace c4

#endif // C4_SUPPORT_EVENTLOOP_H
