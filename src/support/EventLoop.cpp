//===- support/EventLoop.cpp ----------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "support/EventLoop.h"

#include <cerrno>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

using namespace c4;

EventLoop::EventLoop() {
  int P[2];
  if (::pipe(P) != 0)
    return;
  for (int Fd : P) {
    ::fcntl(Fd, F_SETFL, ::fcntl(Fd, F_GETFL) | O_NONBLOCK);
    ::fcntl(Fd, F_SETFD, FD_CLOEXEC);
  }
  WakeRead = P[0];
  WakeWrite = P[1];
}

EventLoop::~EventLoop() {
  if (WakeRead >= 0)
    ::close(WakeRead);
  if (WakeWrite >= 0)
    ::close(WakeWrite);
}

void EventLoop::add(int Fd, unsigned Interest, Handler H) {
  Watches[Fd] = Watch{Interest, std::make_shared<Handler>(std::move(H))};
}

void EventLoop::setInterest(int Fd, unsigned Interest) {
  auto It = Watches.find(Fd);
  if (It != Watches.end())
    It->second.Interest = Interest;
}

void EventLoop::remove(int Fd) { Watches.erase(Fd); }

void EventLoop::post(std::function<void()> Fn) {
  {
    std::lock_guard<std::mutex> Lock(PostMu);
    Posted.push_back(std::move(Fn));
  }
  // One byte wakes the poller; a full pipe means a wake is already
  // pending, which is just as good.
  char B = 1;
  ssize_t N;
  do {
    N = ::write(WakeWrite, &B, 1);
  } while (N < 0 && errno == EINTR);
}

bool EventLoop::runOnce(int TimeoutMs) {
  std::vector<pollfd> Fds;
  Fds.reserve(Watches.size() + 1);
  Fds.push_back({WakeRead, POLLIN, 0});
  for (const auto &[Fd, W] : Watches) {
    short Ev = 0;
    if (W.Interest & Read)
      Ev |= POLLIN;
    if (W.Interest & Write)
      Ev |= POLLOUT;
    Fds.push_back({Fd, Ev, 0});
  }

  int N = ::poll(Fds.data(), Fds.size(), TimeoutMs);
  if (N < 0)
    return errno == EINTR; // a signal interrupting poll is a normal wake

  if (Fds[0].revents & POLLIN) {
    char Buf[256];
    while (::read(WakeRead, Buf, sizeof(Buf)) > 0) {
    }
  }

  // Posted functions first: completed replies enter connection buffers
  // before the fd dispatch below gets a chance to flush them.
  std::vector<std::function<void()>> Run;
  {
    std::lock_guard<std::mutex> Lock(PostMu);
    Run.swap(Posted);
  }
  for (auto &Fn : Run)
    Fn();

  for (size_t I = 1; I < Fds.size(); ++I) {
    if (!Fds[I].revents)
      continue;
    auto It = Watches.find(Fds[I].fd);
    if (It == Watches.end())
      continue; // removed by a posted function or an earlier handler
    unsigned Ev = 0;
    if (Fds[I].revents & (POLLIN | POLLHUP))
      Ev |= Read;
    if (Fds[I].revents & POLLOUT)
      Ev |= Write;
    if (Fds[I].revents & (POLLERR | POLLNVAL))
      Ev |= Error;
    // Keep the handler alive across self-removal.
    std::shared_ptr<Handler> H = It->second.H;
    (*H)(Ev);
  }
  return true;
}
