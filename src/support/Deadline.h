//===- support/Deadline.h - Analysis deadline / cancellation ---*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A monotonic deadline with sticky expiry, shared read-only by every stage
/// of an analysis run (the bounded-check drivers, the thread-pool workers,
/// the layout-viability DFS and the solver retry loop). Cancellation is
/// cooperative: stages poll `expired()` at their natural granularity (per
/// unfolding, per solver attempt, every few thousand DFS steps) and wind
/// down by reporting the remaining work as deferred rather than aborting
/// mid-computation, which keeps partial results sound.
///
//===----------------------------------------------------------------------===//

#ifndef C4_SUPPORT_DEADLINE_H
#define C4_SUPPORT_DEADLINE_H

#include <atomic>
#include <chrono>
#include <cstdint>

namespace c4 {

/// A wall-clock deadline. Default-constructed deadlines never expire.
/// Once `expired()` observes the clock past the deadline (or `cancel()` is
/// called) the state latches: all later polls return true without touching
/// the clock, so a run that starts winding down keeps winding down even if
/// polls race with each other across threads.
class Deadline {
public:
  /// Never expires.
  Deadline() = default;

  /// Expires \p Ms milliseconds from now (0 = never).
  explicit Deadline(unsigned Ms) { armIn(Ms); }

  /// Arms (or re-arms) the deadline \p Ms milliseconds from now; 0 leaves
  /// it unarmed. Not synchronized with concurrent `expired()` polls: the
  /// arming must happen-before any poll from another thread — the serving
  /// tier arms a request's deadline before handing the request to the
  /// analysis. `cancel()` from any thread remains safe at all times.
  void armIn(unsigned Ms) {
    if (!Ms)
      return;
    Armed = true;
    Due = std::chrono::steady_clock::now() + std::chrono::milliseconds(Ms);
  }

  /// True when a finite deadline (or manual cancellation) governs this run.
  bool active() const {
    return Armed || Tripped.load(std::memory_order_relaxed);
  }

  /// Polls the deadline. Cheap after the first expiry (one relaxed atomic
  /// load); before that, one steady_clock read per call.
  bool expired() const {
    if (Tripped.load(std::memory_order_relaxed))
      return true;
    if (!Armed)
      return false;
    if (std::chrono::steady_clock::now() < Due)
      return false;
    Tripped.store(true, std::memory_order_relaxed);
    return true;
  }

  /// Manual cancellation; observed by the next `expired()` poll everywhere.
  void cancel() { Tripped.store(true, std::memory_order_relaxed); }

  /// Milliseconds until expiry, saturating at 0; \p Cap for inactive
  /// deadlines. Used to derive per-query wall ceilings so no single solver
  /// call can overshoot the analysis deadline by more than its own budget.
  unsigned remainingMs(unsigned Cap) const {
    if (!Armed)
      return Cap;
    if (expired())
      return 0;
    auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
        Due - std::chrono::steady_clock::now());
    if (Left.count() <= 0)
      return 0;
    uint64_t Ms = static_cast<uint64_t>(Left.count());
    return static_cast<unsigned>(Ms < Cap ? Ms : Cap);
  }

private:
  bool Armed = false;
  std::chrono::steady_clock::time_point Due{};
  mutable std::atomic<bool> Tripped{false};
};

} // namespace c4

#endif // C4_SUPPORT_DEADLINE_H
