//===- support/Rng.h - Deterministic random number generator ---*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic RNG (SplitMix64). Used by the causal store
/// simulator, the concretization sampler, and property-based tests. We avoid
/// std::mt19937 so that results are reproducible across standard libraries.
///
//===----------------------------------------------------------------------===//

#ifndef C4_SUPPORT_RNG_H
#define C4_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace c4 {

/// Deterministic SplitMix64 generator.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Returns the next raw 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a uniform value in [0, Bound). \p Bound must be positive.
  uint64_t below(uint64_t Bound) {
    assert(Bound > 0 && "empty range");
    return next() % Bound;
  }

  /// Returns a uniform value in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "inverted range");
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return below(Den) < Num; }

private:
  uint64_t State;
};

} // namespace c4

#endif // C4_SUPPORT_RNG_H
