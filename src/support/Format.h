//===- support/Format.h - Small string formatting helpers ------*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style formatting into std::string plus small joining helpers used
/// throughout the analyzer for diagnostics and report rendering.
///
//===----------------------------------------------------------------------===//

#ifndef C4_SUPPORT_FORMAT_H
#define C4_SUPPORT_FORMAT_H

#include <cstdarg>
#include <string>
#include <vector>

namespace c4 {

/// Formats \p Fmt printf-style and returns the result as a std::string.
std::string strf(const char *Fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins the elements of \p Parts with \p Sep in between.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

} // namespace c4

#endif // C4_SUPPORT_FORMAT_H
