//===- support/Digraph.h - Labeled directed multigraph ----------*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small labeled directed multigraph over dense node ids, together with the
/// graph algorithms the analyzer relies on: Tarjan strongly-connected
/// components, acyclicity / topological order, reachability, and bounded
/// enumeration of node-simple cycles (Johnson's algorithm). Dependency
/// serialization graphs (DSGs, paper §4) and static serialization graphs
/// (SSGs, paper §6) are both instances of this structure.
///
//===----------------------------------------------------------------------===//

#ifndef C4_SUPPORT_DIGRAPH_H
#define C4_SUPPORT_DIGRAPH_H

#include <cstdint>
#include <vector>

namespace c4 {

/// A directed multigraph with integer edge labels.
class Digraph {
public:
  struct Edge {
    unsigned From;
    unsigned To;
    int Label;
  };

  explicit Digraph(unsigned NumNodes = 0) : Succs(NumNodes), Preds(NumNodes) {}

  unsigned numNodes() const { return static_cast<unsigned>(Succs.size()); }
  unsigned numEdges() const { return static_cast<unsigned>(Edges.size()); }

  /// Adds a node and returns its id.
  unsigned addNode() {
    Succs.emplace_back();
    Preds.emplace_back();
    return numNodes() - 1;
  }

  /// Adds an edge and returns its index. Parallel edges are allowed.
  unsigned addEdge(unsigned From, unsigned To, int Label = 0);

  const Edge &edge(unsigned Idx) const { return Edges[Idx]; }
  const std::vector<Edge> &edges() const { return Edges; }

  /// Edge indices leaving \p Node.
  const std::vector<unsigned> &succEdges(unsigned Node) const {
    return Succs[Node];
  }
  /// Edge indices entering \p Node.
  const std::vector<unsigned> &predEdges(unsigned Node) const {
    return Preds[Node];
  }

  /// Returns true if there is at least one From -> To edge.
  bool hasEdge(unsigned From, unsigned To) const;

  /// All edge indices from \p From to \p To (parallel edges included).
  std::vector<unsigned> edgesBetween(unsigned From, unsigned To) const;

  /// Computes strongly-connected components. Returns the component id of
  /// every node; ids are dense and in reverse topological order (a Tarjan
  /// property: the component of a node is emitted after its successors).
  /// \param [out] NumComponents number of components found.
  std::vector<unsigned> stronglyConnectedComponents(
      unsigned &NumComponents) const;

  /// Returns true if the graph has a directed cycle (self-loops count).
  bool hasCycle() const;

  /// Returns a topological order of the nodes, or an empty vector if the
  /// graph is cyclic.
  std::vector<unsigned> topologicalOrder() const;

  /// Returns the set of nodes reachable from \p Start (including Start).
  std::vector<bool> reachableFrom(unsigned Start) const;

  /// Enumerates node-simple directed cycles as sequences of node ids
  /// (each cycle lists its nodes once; the closing arc back to the first
  /// node is implicit). Cycles of length one (self-loops) are included.
  /// Stops after \p MaxCycles cycles and sets \p Truncated.
  /// Cycles are canonicalized to start at their smallest node id.
  std::vector<std::vector<unsigned>> simpleCycles(unsigned MaxCycles,
                                                  bool &Truncated) const;

private:
  std::vector<Edge> Edges;
  std::vector<std::vector<unsigned>> Succs;
  std::vector<std::vector<unsigned>> Preds;
};

} // namespace c4

#endif // C4_SUPPORT_DIGRAPH_H
