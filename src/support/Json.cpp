//===- support/Json.cpp ---------------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include "support/Format.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace c4;

std::optional<bool> JsonValue::asBool() const {
  if (K == Kind::Bool)
    return B;
  return std::nullopt;
}

std::optional<int64_t> JsonValue::asInt() const {
  if (K == Kind::Int)
    return I;
  if (K == Kind::Double && std::floor(D) == D &&
      D >= -9007199254740992.0 && D <= 9007199254740992.0)
    return static_cast<int64_t>(D);
  return std::nullopt;
}

std::optional<double> JsonValue::asDouble() const {
  if (K == Kind::Double)
    return D;
  if (K == Kind::Int)
    return static_cast<double>(I);
  return std::nullopt;
}

const std::string *JsonValue::asString() const {
  return K == Kind::String ? &S : nullptr;
}

const std::vector<JsonValue> *JsonValue::asArray() const {
  return K == Kind::Array ? &Arr : nullptr;
}

const std::vector<std::pair<std::string, JsonValue>> *
JsonValue::asObject() const {
  return K == Kind::Object ? &Obj : nullptr;
}

const JsonValue *JsonValue::get(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, Val] : Obj)
    if (Name == Key)
      return &Val;
  return nullptr;
}

JsonValue JsonValue::boolean(bool V) {
  JsonValue J;
  J.K = Kind::Bool;
  J.B = V;
  return J;
}

JsonValue JsonValue::integer(int64_t V) {
  JsonValue J;
  J.K = Kind::Int;
  J.I = V;
  return J;
}

JsonValue JsonValue::number(double V) {
  JsonValue J;
  J.K = Kind::Double;
  J.D = V;
  return J;
}

JsonValue JsonValue::str(std::string V) {
  JsonValue J;
  J.K = Kind::String;
  J.S = std::move(V);
  return J;
}

JsonValue JsonValue::array(std::vector<JsonValue> V) {
  JsonValue J;
  J.K = Kind::Array;
  J.Arr = std::move(V);
  return J;
}

JsonValue
JsonValue::object(std::vector<std::pair<std::string, JsonValue>> V) {
  JsonValue J;
  J.K = Kind::Object;
  J.Obj = std::move(V);
  return J;
}

namespace {

/// Strict recursive-descent JSON parser with a depth cap (a hostile
/// request must not be able to overflow the stack with `[[[[...`).
class Parser {
public:
  Parser(const std::string &Text, std::string &Error)
      : T(Text), Err(Error) {}

  std::optional<JsonValue> run() {
    skipWs();
    std::optional<JsonValue> V = value(0);
    if (!V)
      return std::nullopt;
    skipWs();
    if (P != T.size()) {
      fail("trailing characters after JSON document");
      return std::nullopt;
    }
    return V;
  }

private:
  static constexpr unsigned MaxDepth = 64;

  void fail(const std::string &Msg) {
    if (Err.empty())
      Err = strf("json error at offset %zu: %s", P, Msg.c_str());
  }

  void skipWs() {
    while (P != T.size() && (T[P] == ' ' || T[P] == '\t' || T[P] == '\n' ||
                             T[P] == '\r'))
      ++P;
  }

  bool consume(char C) {
    if (P != T.size() && T[P] == C) {
      ++P;
      return true;
    }
    return false;
  }

  bool literal(const char *Word) {
    size_t N = std::strlen(Word);
    if (T.compare(P, N, Word) == 0) {
      P += N;
      return true;
    }
    return false;
  }

  std::optional<JsonValue> value(unsigned Depth) {
    if (Depth > MaxDepth) {
      fail("nesting too deep");
      return std::nullopt;
    }
    if (P == T.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    switch (T[P]) {
    case '{':
      return object(Depth);
    case '[':
      return array(Depth);
    case '"': {
      std::optional<std::string> S = string();
      if (!S)
        return std::nullopt;
      return JsonValue::str(std::move(*S));
    }
    case 't':
      if (literal("true"))
        return JsonValue::boolean(true);
      break;
    case 'f':
      if (literal("false"))
        return JsonValue::boolean(false);
      break;
    case 'n':
      if (literal("null"))
        return JsonValue::null();
      break;
    default:
      return number();
    }
    fail("invalid value");
    return std::nullopt;
  }

  std::optional<JsonValue> number() {
    size_t Start = P;
    if (consume('-')) {
    }
    if (P == T.size() || !std::isdigit(static_cast<unsigned char>(T[P]))) {
      fail("invalid number");
      return std::nullopt;
    }
    while (P != T.size() && std::isdigit(static_cast<unsigned char>(T[P])))
      ++P;
    bool Integral = true;
    if (P != T.size() && T[P] == '.') {
      Integral = false;
      ++P;
      if (P == T.size() || !std::isdigit(static_cast<unsigned char>(T[P]))) {
        fail("invalid fraction");
        return std::nullopt;
      }
      while (P != T.size() && std::isdigit(static_cast<unsigned char>(T[P])))
        ++P;
    }
    if (P != T.size() && (T[P] == 'e' || T[P] == 'E')) {
      Integral = false;
      ++P;
      if (P != T.size() && (T[P] == '+' || T[P] == '-'))
        ++P;
      if (P == T.size() || !std::isdigit(static_cast<unsigned char>(T[P]))) {
        fail("invalid exponent");
        return std::nullopt;
      }
      while (P != T.size() && std::isdigit(static_cast<unsigned char>(T[P])))
        ++P;
    }
    std::string Lit = T.substr(Start, P - Start);
    if (Integral) {
      errno = 0;
      char *End = nullptr;
      long long V = std::strtoll(Lit.c_str(), &End, 10);
      if (errno != ERANGE && End && *End == '\0')
        return JsonValue::integer(V);
      // Out-of-range integers degrade to double, like most parsers.
    }
    errno = 0;
    double D = std::strtod(Lit.c_str(), nullptr);
    if (errno == ERANGE && (D == HUGE_VAL || D == -HUGE_VAL)) {
      fail("number out of range");
      return std::nullopt;
    }
    return JsonValue::number(D);
  }

  std::optional<std::string> string() {
    if (!consume('"')) {
      fail("expected string");
      return std::nullopt;
    }
    std::string Out;
    while (true) {
      if (P == T.size()) {
        fail("unterminated string");
        return std::nullopt;
      }
      unsigned char C = static_cast<unsigned char>(T[P]);
      if (C == '"') {
        ++P;
        return Out;
      }
      if (C < 0x20) {
        fail("unescaped control character in string");
        return std::nullopt;
      }
      if (C != '\\') {
        Out += static_cast<char>(C);
        ++P;
        continue;
      }
      ++P;
      if (P == T.size()) {
        fail("unterminated escape");
        return std::nullopt;
      }
      char E = T[P++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        unsigned V = 0;
        for (int I = 0; I != 4; ++I) {
          if (P == T.size() ||
              !std::isxdigit(static_cast<unsigned char>(T[P]))) {
            fail("invalid \\u escape");
            return std::nullopt;
          }
          char H = T[P++];
          V = V * 16 + (H <= '9'   ? H - '0'
                        : H <= 'F' ? H - 'A' + 10
                                   : H - 'a' + 10);
        }
        // Encode the code point as UTF-8. Surrogate pairs are passed
        // through as two 3-byte sequences (requests never need them; the
        // payloads are program text and identifiers).
        if (V < 0x80) {
          Out += static_cast<char>(V);
        } else if (V < 0x800) {
          Out += static_cast<char>(0xC0 | (V >> 6));
          Out += static_cast<char>(0x80 | (V & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (V >> 12));
          Out += static_cast<char>(0x80 | ((V >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (V & 0x3F));
        }
        break;
      }
      default:
        fail("invalid escape character");
        return std::nullopt;
      }
    }
  }

  std::optional<JsonValue> array(unsigned Depth) {
    consume('[');
    std::vector<JsonValue> Items;
    skipWs();
    if (consume(']'))
      return JsonValue::array(std::move(Items));
    while (true) {
      skipWs();
      std::optional<JsonValue> V = value(Depth + 1);
      if (!V)
        return std::nullopt;
      Items.push_back(std::move(*V));
      skipWs();
      if (consume(']'))
        return JsonValue::array(std::move(Items));
      if (!consume(',')) {
        fail("expected ',' or ']' in array");
        return std::nullopt;
      }
    }
  }

  std::optional<JsonValue> object(unsigned Depth) {
    consume('{');
    std::vector<std::pair<std::string, JsonValue>> Members;
    skipWs();
    if (consume('}'))
      return JsonValue::object(std::move(Members));
    while (true) {
      skipWs();
      std::optional<std::string> Key = string();
      if (!Key)
        return std::nullopt;
      skipWs();
      if (!consume(':')) {
        fail("expected ':' after object key");
        return std::nullopt;
      }
      skipWs();
      std::optional<JsonValue> V = value(Depth + 1);
      if (!V)
        return std::nullopt;
      Members.emplace_back(std::move(*Key), std::move(*V));
      skipWs();
      if (consume('}'))
        return JsonValue::object(std::move(Members));
      if (!consume(',')) {
        fail("expected ',' or '}' in object");
        return std::nullopt;
      }
    }
  }

  const std::string &T;
  std::string &Err;
  size_t P = 0;
};

} // namespace

std::optional<JsonValue> c4::parseJson(const std::string &Text,
                                       std::string &Error) {
  Error.clear();
  return Parser(Text, Error).run();
}

std::string c4::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}
