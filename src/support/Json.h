//===- support/Json.h - Minimal JSON value model and parser -----*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small JSON layer for the analysis service (tools/c4-serve): a value
/// model, a strict recursive-descent parser, and string escaping for the
/// emitters. It intentionally covers exactly the JSON-lines request/reply
/// protocol's needs — objects, arrays, strings, 64-bit integers, doubles,
/// booleans, null — with no external dependency.
///
/// Numbers: integral literals that fit int64 are kept exact (`asInt`);
/// anything else is parsed as double. Object member order is preserved;
/// duplicate keys resolve to the first occurrence (lookups scan in order).
///
//===----------------------------------------------------------------------===//

#ifndef C4_SUPPORT_JSON_H
#define C4_SUPPORT_JSON_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace c4 {

/// One parsed JSON value.
class JsonValue {
public:
  enum class Kind : uint8_t { Null, Bool, Int, Double, String, Array, Object };

  JsonValue() = default; // null

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }

  /// Typed accessors; nullopt / nullptr when the kind does not match.
  /// `asInt` also accepts doubles with an exact integral value, so clients
  /// writing `"max_k": 3.0` behave as expected.
  std::optional<bool> asBool() const;
  std::optional<int64_t> asInt() const;
  std::optional<double> asDouble() const;
  const std::string *asString() const;
  const std::vector<JsonValue> *asArray() const;

  /// Object member by key, or nullptr (also when not an object).
  const JsonValue *get(const std::string &Key) const;
  const std::vector<std::pair<std::string, JsonValue>> *asObject() const;

  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool B);
  static JsonValue integer(int64_t I);
  static JsonValue number(double D);
  static JsonValue str(std::string S);
  static JsonValue array(std::vector<JsonValue> A);
  static JsonValue object(std::vector<std::pair<std::string, JsonValue>> O);

private:
  Kind K = Kind::Null;
  bool B = false;
  int64_t I = 0;
  double D = 0;
  std::string S;
  std::vector<JsonValue> Arr;
  std::vector<std::pair<std::string, JsonValue>> Obj;
};

/// Parses one complete JSON document from \p Text. Trailing
/// non-whitespace, malformed escapes, unterminated structures etc. fail
/// with a position-bearing message in \p Error.
std::optional<JsonValue> parseJson(const std::string &Text,
                                   std::string &Error);

/// Escapes \p S for embedding inside a double-quoted JSON string literal
/// (quotes, backslashes, control characters).
std::string jsonEscape(const std::string &S);

} // namespace c4

#endif // C4_SUPPORT_JSON_H
