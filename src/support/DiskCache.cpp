//===- support/DiskCache.cpp ----------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "support/DiskCache.h"

#include "support/Fingerprint.h"

#include <cstdio>
#include <sys/stat.h>
#include <sys/types.h>
#include <dirent.h>
#include <unistd.h>

using namespace c4;

namespace {

/// On-disk format version. Part of every entry's file-name suffix and
/// header, so incompatible formats miss instead of misparse.
constexpr uint32_t FormatVersion = 1;
constexpr uint32_t Magic = 0x43344331; // "C4C1"

/// Entry header, serialized little-endian (fixed layout, no padding
/// dependence): magic, format version, payload length, payload checksum.
constexpr size_t HeaderSize = 4 + 4 + 8 + 8;

void putLE(std::string &Out, uint64_t V, unsigned Bytes) {
  for (unsigned I = 0; I != Bytes; ++I)
    Out += static_cast<char>((V >> (8 * I)) & 0xFF);
}

uint64_t getLE(const unsigned char *P, unsigned Bytes) {
  uint64_t V = 0;
  for (unsigned I = 0; I != Bytes; ++I)
    V |= static_cast<uint64_t>(P[I]) << (8 * I);
  return V;
}

bool ensureDir(const std::string &Path) {
  struct stat St;
  if (::stat(Path.c_str(), &St) == 0)
    return S_ISDIR(St.st_mode);
  return ::mkdir(Path.c_str(), 0777) == 0 ||
         (::stat(Path.c_str(), &St) == 0 && S_ISDIR(St.st_mode));
}

/// Keys become file names; restrict to a safe identifier alphabet so a
/// hostile or buggy key cannot escape the objects directory.
std::string sanitizeKey(const std::string &Key) {
  std::string Out;
  Out.reserve(Key.size());
  for (char C : Key) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '-' || C == '_' || C == '.';
    Out += Ok ? C : '_';
  }
  return Out.empty() ? std::string("_") : Out;
}

} // namespace

DiskCache::DiskCache(const std::string &Dir) : Root(Dir) {
  Objects = Root + "/objects";
  Tmp = Root + "/tmp";
  Enabled = ensureDir(Root) && ensureDir(Objects) && ensureDir(Tmp);
  if (!Enabled)
    return;
  // Advisory marker for humans inspecting the directory (the authoritative
  // version lives in every entry header and file name).
  std::string Marker = Root + "/VERSION";
  struct stat St;
  if (::stat(Marker.c_str(), &St) != 0) {
    if (FILE *F = std::fopen(Marker.c_str(), "w")) {
      std::fprintf(F, "c4-cache-format %u\n", FormatVersion);
      std::fclose(F);
    }
  }
  // Sweep stale tmp files left by killed writers. Only our own directory,
  // only the tmp namespace — final entries are never touched here.
  if (DIR *D = ::opendir(Tmp.c_str())) {
    while (struct dirent *E = ::readdir(D)) {
      std::string Name = E->d_name;
      if (Name == "." || Name == "..")
        continue;
      ::unlink((Tmp + "/" + Name).c_str());
    }
    ::closedir(D);
  }
}

std::string DiskCache::entryPath(const std::string &Key) const {
  return Objects + "/" + sanitizeKey(Key) + ".v" +
         std::to_string(FormatVersion);
}

std::optional<std::string> DiskCache::get(const std::string &Key) {
  if (!Enabled) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  std::string Path = entryPath(Key);
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  unsigned char Header[HeaderSize];
  bool Ok = std::fread(Header, 1, HeaderSize, F) == HeaderSize &&
            getLE(Header, 4) == Magic &&
            getLE(Header + 4, 4) == FormatVersion;
  std::string Payload;
  if (Ok) {
    uint64_t Len = getLE(Header + 8, 8);
    // Reject absurd lengths before allocating (a torn header could claim
    // petabytes).
    Ok = Len <= (1ull << 32);
    if (Ok) {
      Payload.resize(static_cast<size_t>(Len));
      Ok = std::fread(Payload.data(), 1, Payload.size(), F) ==
               Payload.size() &&
           std::fgetc(F) == EOF &&
           fnv1a64(Payload.data(), Payload.size()) == getLE(Header + 16, 8);
    }
  }
  std::fclose(F);
  if (!Ok) {
    // Torn or foreign file: drop it so the next store repairs the slot,
    // and fall back to the cold path.
    ::unlink(Path.c_str());
    Corrupt.fetch_add(1, std::memory_order_relaxed);
    Misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  Hits.fetch_add(1, std::memory_order_relaxed);
  return Payload;
}

void DiskCache::put(const std::string &Key, const std::string &Value) {
  if (!Enabled)
    return;
  std::string Blob;
  Blob.reserve(HeaderSize + Value.size());
  putLE(Blob, Magic, 4);
  putLE(Blob, FormatVersion, 4);
  putLE(Blob, Value.size(), 8);
  putLE(Blob, fnv1a64(Value.data(), Value.size()), 8);
  Blob += Value;

  std::string TmpPath = Tmp + "/" + sanitizeKey(Key) + "." +
                        std::to_string(static_cast<long>(::getpid())) + "." +
                        std::to_string(Seq.fetch_add(1));
  FILE *F = std::fopen(TmpPath.c_str(), "wb");
  bool Ok = F != nullptr;
  if (F) {
    Ok = std::fwrite(Blob.data(), 1, Blob.size(), F) == Blob.size();
    // Flush user-space buffers and push the bytes to the kernel before the
    // rename publishes the entry; a reader after rename must see the full
    // payload (the checksum catches the power-loss case fsync would cover).
    Ok = (std::fflush(F) == 0) && Ok;
    std::fclose(F);
  }
  if (Ok)
    Ok = std::rename(TmpPath.c_str(), entryPath(Key).c_str()) == 0;
  if (!Ok) {
    ::unlink(TmpPath.c_str());
    StoreErrors.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Stores.fetch_add(1, std::memory_order_relaxed);
}

DiskCacheStats DiskCache::stats() const {
  DiskCacheStats S;
  S.Hits = Hits.load(std::memory_order_relaxed);
  S.Misses = Misses.load(std::memory_order_relaxed);
  S.Corrupt = Corrupt.load(std::memory_order_relaxed);
  S.Stores = Stores.load(std::memory_order_relaxed);
  S.StoreErrors = StoreErrors.load(std::memory_order_relaxed);
  return S;
}
