//===- support/SingleFlight.h - Stampede-collapsing computation -*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Single-flight execution: when several threads ask for the same expensive
/// computation (identified by a string key) at the same time, exactly one —
/// the *leader* — performs it while the rest — the *followers* — block and
/// receive the leader's published value. This is the classic cache-stampede
/// guard for the serving tier: a thousand concurrent requests for one
/// analysis fingerprint cost one backend run, not a thousand.
///
/// The flight value is an opaque string (the serving tier stores the
/// serialized AnalysisResult blob, the same bytes the disk verdict layer
/// persists). A leader may decline to share — `complete(..., Share=false)`
/// — which wakes the followers empty-handed so each retries on its own;
/// the pipeline uses that for deadline-expired partial verdicts, which are
/// timing accidents that must not fan out.
///
/// Protocol: `join` returns the flight and whether the caller leads. The
/// leader must call `complete` exactly once (use an RAII guard around the
/// computation so an exception still releases the followers); followers
/// call `wait`. A flight is retired from the table *before* its followers
/// wake, so a request arriving after completion starts a fresh flight —
/// callers are expected to consult their durable cache first, which the
/// leader populates before completing.
///
//===----------------------------------------------------------------------===//

#ifndef C4_SUPPORT_SINGLEFLIGHT_H
#define C4_SUPPORT_SINGLEFLIGHT_H

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace c4 {

class SingleFlight {
public:
  struct Flight {
    std::mutex Mu;
    std::condition_variable Cv;
    bool Done = false;   ///< leader finished (value may be unshared)
    bool Shared = false; ///< Value is valid and safe for followers to reuse
    /// The published blob, behind a shared_ptr so every follower aliases
    /// the one buffer the leader serialized instead of copying it — with
    /// many waiters on one large result the copies used to dominate the
    /// wake-up.
    std::shared_ptr<const std::string> Value;
  };
  using FlightPtr = std::shared_ptr<Flight>;

  /// Joins (or starts) the flight for \p Key. On return \p Leader says
  /// which side the caller is on: the leader computes and must call
  /// complete() exactly once; a follower calls wait().
  FlightPtr join(const std::string &Key, bool &Leader) {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Active.find(Key);
    if (It != Active.end()) {
      Leader = false;
      return It->second;
    }
    auto F = std::make_shared<Flight>();
    Active.emplace(Key, F);
    Leader = true;
    return F;
  }

  /// Leader side: publishes the outcome and retires the flight. With
  /// \p Share false the followers wake empty-handed and retry on their own.
  /// The flight leaves the table before followers wake, so late joiners
  /// start fresh rather than attaching to a completed flight.
  void complete(const std::string &Key, const FlightPtr &F, bool Share,
                std::string Value = std::string()) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      auto It = Active.find(Key);
      if (It != Active.end() && It->second == F)
        Active.erase(It);
    }
    {
      std::lock_guard<std::mutex> Lock(F->Mu);
      F->Shared = Share;
      if (Share)
        F->Value = std::make_shared<const std::string>(std::move(Value));
      F->Done = true;
    }
    F->Cv.notify_all();
  }

  /// Follower side: blocks until the leader completes. Returns the shared
  /// value (all followers alias one buffer), or null when the leader
  /// declined to share (retry yourself).
  static std::shared_ptr<const std::string> wait(const FlightPtr &F) {
    std::unique_lock<std::mutex> Lock(F->Mu);
    F->Cv.wait(Lock, [&F] { return F->Done; });
    if (!F->Shared)
      return nullptr;
    return F->Value;
  }

private:
  std::mutex Mu;
  std::unordered_map<std::string, FlightPtr> Active;
};

} // namespace c4

#endif // C4_SUPPORT_SINGLEFLIGHT_H
