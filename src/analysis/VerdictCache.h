//===- analysis/VerdictCache.h - Whole-history verdict persistence *- C++ -*-=//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Content-addressed persistence of whole-history analysis results: the
/// second layer of the cross-run cache (the first is the portable oracle
/// snapshot, spec/CommutativityCache.h).
///
/// The cache key is `fingerprintAnalysis(A, O)`: a stable digest of every
/// input the verdict depends on — the schema (container and type names, op
/// signatures), the complete abstract history (events with facts, labels,
/// guarded eo edges and pair invariants rendered via Cond::str(), the
/// abstract session order, symbolic-variable counts) and the
/// verdict-affecting analyzer options (feature toggles, k/enumeration caps,
/// solver budget, deadline, DFS budget, filters, atomic sets) — plus the
/// rewrite-spec revision (kSpecRevision) and the blob format version.
/// Deliberately *excluded*: thread count, oracle on/off and tracing, which
/// change observability but never the verdict (parallel runs commit in
/// enumeration order, see AnalyzerOptions::NumThreads).
///
/// The value is `serializeResult(R)`: a versioned, deterministic text blob
/// holding the full AnalysisResult — verdict, violations (with their
/// rendered counter-example text; the structural CounterExample is not
/// persisted, see Violation::CEText) and *all* statistics including the
/// recorded stage timings. A warm hit therefore replays the cold run's
/// stats byte-for-byte, which is what makes "warm output identical to cold
/// output" testable at the CLI layer.
///
/// `deserializeResult` is strict: any malformed field yields nullopt, and
/// callers fall back to the cold path (the same contract DiskCache has for
/// torn entries).
///
//===----------------------------------------------------------------------===//

#ifndef C4_ANALYSIS_VERDICTCACHE_H
#define C4_ANALYSIS_VERDICTCACHE_H

#include "analysis/Analyzer.h"

#include <optional>
#include <string>

namespace c4 {

/// Stable content fingerprint of one (abstract history, options) analysis
/// instance; 32 hex characters, usable directly as a DiskCache key.
std::string fingerprintAnalysis(const AbstractHistory &A,
                                const AnalyzerOptions &O);

/// Serializes \p R into a deterministic, versioned text blob. Doubles are
/// stored as hexfloats, so they round-trip exactly.
std::string serializeResult(const AnalysisResult &R);

/// Parses a blob produced by serializeResult. Strict: nullopt on any
/// malformed or version-mismatched input.
std::optional<AnalysisResult> deserializeResult(const std::string &Blob);

/// Canonical digest of the *verdict* alone (serializability, violation
/// transaction sets and their triage classes) — the equality the service
/// and bench differential checks compare across cold/warm runs and thread
/// counts. Statistics do not contribute.
std::string verdictDigest(const AnalysisResult &R);

} // namespace c4

#endif // C4_ANALYSIS_VERDICTCACHE_H
