//===- analysis/Pipeline.cpp ----------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "analysis/Pipeline.h"

#include "support/Json.h"

#include <cstdio>

using namespace c4;

namespace {

std::string oracleKey() {
  return "oracle-r" + std::to_string(kSpecRevision);
}

std::string verdictKey(const std::string &Fingerprint) {
  return "verdict-r" + std::to_string(kSpecRevision) + "-" + Fingerprint;
}

std::string incrKey() { return "incr-r" + std::to_string(kSpecRevision); }

std::string greenKey() { return "green-r" + std::to_string(kSpecRevision); }

} // namespace

AnalysisCache::AnalysisCache(const std::string &Dir, bool Incremental)
    : Disk(Dir), Incr(Incremental) {
  if (!Disk.enabled())
    return;
  if (std::optional<std::string> Blob = Disk.get(oracleKey())) {
    if (std::optional<OracleSnapshot> S = OracleSnapshot::deserialize(*Blob)) {
      Snapshot = std::move(*S);
      PersistedSize = Snapshot.size();
    }
    // A blob that fails to parse is treated exactly like a missing one: the
    // snapshot starts empty and the next persist overwrites the slot.
  }
  if (!Incr)
    return;
  if (std::optional<std::string> Blob = Disk.get(incrKey())) {
    if (std::optional<IncrementalSnapshot> S =
            IncrementalSnapshot::deserialize(*Blob)) {
      IncrSnap = std::move(*S);
      PersistedIncrRecords = IncrSnap.numRecords();
      PersistedIncrTxns = IncrSnap.numTxns();
    }
  }
  if (std::optional<std::string> Blob = Disk.get(greenKey())) {
    if (std::optional<ConstraintSnapshot> S =
            ConstraintSnapshot::deserialize(*Blob)) {
      GreenSnap = std::move(*S);
      PersistedGreenSize = GreenSnap.size();
    }
  }
}

size_t AnalysisCache::oracleEntries() {
  std::lock_guard<std::mutex> Lock(SnapMu);
  return Snapshot.size();
}

size_t AnalysisCache::incrRecords() {
  std::lock_guard<std::mutex> Lock(SnapMu);
  return IncrSnap.numRecords();
}

size_t AnalysisCache::incrTxns() {
  std::lock_guard<std::mutex> Lock(SnapMu);
  return IncrSnap.numTxns();
}

size_t AnalysisCache::greenProofs() {
  std::lock_guard<std::mutex> Lock(SnapMu);
  return GreenSnap.size();
}

void AnalysisCache::flush() {
  std::lock_guard<std::mutex> Lock(SnapMu);
  if (!Disk.enabled())
    return;
  if (Snapshot.size() > PersistedSize) {
    Disk.put(oracleKey(), Snapshot.serialize());
    PersistedSize = Snapshot.size();
  }
  if (!Incr)
    return;
  if (IncrSnap.numRecords() > PersistedIncrRecords ||
      IncrSnap.numTxns() > PersistedIncrTxns) {
    Disk.put(incrKey(), IncrSnap.serialize());
    PersistedIncrRecords = IncrSnap.numRecords();
    PersistedIncrTxns = IncrSnap.numTxns();
  }
  if (GreenSnap.size() > PersistedGreenSize) {
    Disk.put(greenKey(), GreenSnap.serialize());
    PersistedGreenSize = GreenSnap.size();
  }
}

namespace {
/// Guarantees a joined-as-leader flight completes exactly once: an early
/// exit (exception in the analysis) releases the followers unshared, so
/// they retry instead of blocking forever.
struct FlightGuard {
  SingleFlight &SF;
  const std::string &Key;
  SingleFlight::FlightPtr F;
  bool Completed = false;

  void share(std::string Blob) {
    SF.complete(Key, F, /*Share=*/true, std::move(Blob));
    Completed = true;
  }
  void decline() {
    SF.complete(Key, F, /*Share=*/false);
    Completed = true;
  }
  ~FlightGuard() {
    if (!Completed)
      SF.complete(Key, F, /*Share=*/false);
  }
};
} // namespace

namespace c4 {
/// Befriended by AnalysisCache: the cold/warm path over its two layers,
/// with per-fingerprint single-flight between them. Concurrent identical
/// requests elect one leader; everyone else reuses its result (or, on a
/// disk hit, never enters the flight at all), so a stampede on one
/// fingerprint costs one backend run.
struct PipelineRunner {
  static PipelineResult run(const AbstractHistory &A,
                            const AnalyzerOptions &O, const TypeRegistry &Reg,
                            AnalysisCache &C) {
    PipelineResult PR;
    PR.Fingerprint = fingerprintAnalysis(A, O);

    for (;;) {
      // Verdict layer first: a hit skips the back end entirely.
      if (std::optional<std::string> Blob =
              C.Disk.get(verdictKey(PR.Fingerprint))) {
        if (std::optional<AnalysisResult> R = deserializeResult(*Blob)) {
          C.VerdictHits.fetch_add(1, std::memory_order_relaxed);
          PR.R = std::move(*R);
          PR.CacheHit = true;
          return PR;
        }
        // Parse failure after a checksum-clean read means a format skew
        // within one version — fall through to the cold path; the store
        // below repairs the slot.
      }

      bool Leader = false;
      SingleFlight::FlightPtr F = C.Flights.join(PR.Fingerprint, Leader);
      if (!Leader) {
        // Another request is computing this exact analysis right now; wait
        // for its blob instead of redoing the work.
        C.FlightWaits.fetch_add(1, std::memory_order_relaxed);
        if (std::shared_ptr<const std::string> Blob = SingleFlight::wait(F)) {
          if (std::optional<AnalysisResult> R = deserializeResult(*Blob)) {
            PR.R = std::move(*R);
            PR.CacheHit = true;
            return PR;
          }
        }
        // The leader declined to share (deadline-expired partial) or the
        // blob was malformed: start over — the disk may have been
        // populated meanwhile, or this request becomes the next leader.
        continue;
      }

      C.VerdictMisses.fetch_add(1, std::memory_order_relaxed);
      C.BackendRuns.fetch_add(1, std::memory_order_relaxed);
      FlightGuard Guard{C.Flights, PR.Fingerprint, F};

      // Cold path with a pre-seeded per-run oracle. The oracle is private
      // to this run (snapshot entries resolve to *this* program's spec
      // pointers), so concurrent requests never contend on it.
      CommutativityOracle Oracle;
      AnalyzerOptions O2 = O;
      if (O.UseOracle && !O.ExternalOracle) {
        {
          std::lock_guard<std::mutex> Lock(C.SnapMu);
          PR.OracleImported = Oracle.importSats(C.Snapshot, Reg);
        }
        O2.ExternalOracle = &Oracle;
      }

      // Incremental layers: freeze private copies of the shared snapshots
      // for this run (lookups must see one immutable base — see the
      // determinism contract in analysis/Incremental.h) and hand the
      // analyzer a store/cache over them. Check-prefilter mode opts out:
      // replayed verdicts would mask the disagreements it exists to find.
      std::optional<IncrementalSnapshot> IncrBase;
      std::optional<ConstraintSnapshot> GreenBase;
      std::optional<IncrementalStore> Store;
      std::optional<ConstraintCache> Green;
      if (C.Incr && O.UseIncremental && !O.CheckPrefilter) {
        {
          std::lock_guard<std::mutex> Lock(C.SnapMu);
          IncrBase = C.IncrSnap;
          GreenBase = C.GreenSnap;
        }
        Store.emplace(&*IncrBase);
        Green.emplace(&*GreenBase);
        O2.Incremental = &*Store;
        O2.Green = &*Green;
      }

      PR.R = analyze(A, O2);

      // Fold new sat verdicts back and persist the snapshot when it grew.
      if (O2.ExternalOracle == &Oracle) {
        std::lock_guard<std::mutex> Lock(C.SnapMu);
        Oracle.exportSats(C.Snapshot);
        if (C.Snapshot.size() > C.PersistedSize) {
          C.Disk.put(oracleKey(), C.Snapshot.serialize());
          C.PersistedSize = C.Snapshot.size();
        }
      }

      // Fold the incremental layers back. Constraint-cache proofs are
      // always kept (an unsat slice proof is sound regardless of how the
      // run ended); per-unfolding records and txn digests are dropped on
      // an expired deadline — a wound-down run records only a prefix of
      // its queries, and its txn digests would claim "seen" for work that
      // never completed.
      if (Store) {
        std::lock_guard<std::mutex> Lock(C.SnapMu);
        Green->exportProofs(C.GreenSnap);
        if (!PR.R.DeadlineExpired)
          Store->exportInto(C.IncrSnap);
        if (C.IncrSnap.numRecords() > C.PersistedIncrRecords ||
            C.IncrSnap.numTxns() > C.PersistedIncrTxns) {
          C.Disk.put(incrKey(), C.IncrSnap.serialize());
          C.PersistedIncrRecords = C.IncrSnap.numRecords();
          C.PersistedIncrTxns = C.IncrSnap.numTxns();
        }
        if (C.GreenSnap.size() > C.PersistedGreenSize) {
          C.Disk.put(greenKey(), C.GreenSnap.serialize());
          C.PersistedGreenSize = C.GreenSnap.size();
        }
      }

      // Persist and share the verdict — unless the deadline expired: that
      // result is a timing-dependent partial answer a rerun might improve
      // on, so it neither enters the disk layer nor fans out to waiters.
      // Disk store happens before the flight completes, so a request
      // joining after completion finds the blob on its first probe.
      if (!PR.R.DeadlineExpired) {
        std::string Blob = serializeResult(PR.R);
        C.Disk.put(verdictKey(PR.Fingerprint), Blob);
        Guard.share(std::move(Blob));
      } else {
        Guard.decline();
      }
      return PR;
    }
  }
};
} // namespace c4

PipelineResult c4::analyzeCached(const AbstractHistory &A,
                                 const AnalyzerOptions &O,
                                 const TypeRegistry &Reg,
                                 AnalysisCache *Cache) {
  if (!Cache || !Cache->enabled()) {
    PipelineResult PR;
    PR.R = analyze(A, O);
    return PR;
  }
  return PipelineRunner::run(A, O, Reg, *Cache);
}

std::string c4::renderStatsJson(const StatsJsonFields &F,
                                const AnalysisResult &R) {
  std::string Json;
  char Buf[256];
  Json += "{\n";
  std::snprintf(Buf, sizeof(Buf), "  \"file\": \"%s\",\n",
                jsonEscape(F.File).c_str());
  Json += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  \"transactions\": %u,\n  \"events\": %u,\n"
                "  \"frontend_seconds\": %.6f,\n"
                "  \"lex_seconds\": %.6f,\n"
                "  \"parse_seconds\": %.6f,\n"
                "  \"build_seconds\": %.6f,\n",
                F.Transactions, F.Events, F.FrontendSeconds, F.LexSeconds,
                F.ParseSeconds, F.BuildSeconds);
  Json += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  \"pass_seconds\": %.6f,\n"
                "  \"pass_iterations\": %u,\n"
                "  \"events_before_passes\": %u,\n"
                "  \"events_after_passes\": %u,\n"
                "  \"dead_writes\": %u,\n  \"pruned_branches\": %u,\n"
                "  \"const_props\": %u,\n  \"fresh_promotions\": %u,\n"
                "  \"lint_warnings\": %zu,\n",
                F.PassSeconds, F.PassIterations, F.EventsBefore,
                F.EventsAfter, F.DeadWrites, F.PrunedBranches, F.ConstProps,
                F.FreshPromotions, F.LintWarnings);
  Json += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  \"serializable\": %s,\n  \"generalized\": %s,\n"
                "  \"fast_proved\": %s,\n  \"violations\": %zu,\n"
                "  \"violations_validated\": %u,\n"
                "  \"violations_unvalidated\": %u,\n"
                "  \"violations_inconclusive\": %u,\n"
                "  \"k_checked\": %u,\n  \"truncated\": %s,\n",
                R.serializable() ? "true" : "false",
                R.Generalized ? "true" : "false",
                R.FastProvedSerializable ? "true" : "false",
                R.Violations.size(), R.validatedViolations(),
                R.unvalidatedViolations(), R.inconclusiveViolations(),
                R.KChecked, R.Truncated ? "true" : "false");
  Json += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  \"unfoldings_checked\": %u,\n"
                "  \"unfoldings_subsumed\": %u,\n"
                "  \"layouts_filtered\": %u,\n  \"ssg_flagged\": %u,\n"
                "  \"ssg_edges\": %u,\n  \"smt_queries\": %u,\n"
                "  \"smt_refuted\": %u,\n  \"smt_unknown\": %u,\n",
                R.UnfoldingsChecked, R.UnfoldingsSubsumed, R.LayoutsFiltered,
                R.SSGFlagged, R.SSGEdges, R.SmtQueries, R.SMTRefuted,
                R.SMTUnknown);
  Json += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  \"smt_queries_prefiltered\": %u,\n"
                "  \"prefilter_unknowns\": %u,\n"
                "  \"prefilter_disagreements\": %u,\n"
                "  \"sat_assist_proven\": %llu,\n"
                "  \"prefilter_seconds\": %.6f,\n",
                R.SmtQueriesPrefiltered, R.PrefilterUnknowns,
                R.PrefilterDisagreements,
                static_cast<unsigned long long>(R.SatAssistProven),
                R.PrefilterSeconds);
  Json += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  \"smt_retries\": %u,\n"
                "  \"rlimit_spent\": %llu,\n"
                "  \"deadline_expired\": %s,\n"
                "  \"unfoldings_deferred\": %u,\n"
                "  \"dfs_budget_exhausted\": %u,\n",
                R.SMTRetries,
                static_cast<unsigned long long>(R.RlimitSpent),
                R.DeadlineExpired ? "true" : "false", R.UnfoldingsDeferred,
                R.DfsBudgetExhausted);
  Json += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  \"cond_cache_hits\": %llu,\n"
                "  \"cond_cache_misses\": %llu,\n"
                "  \"sat_cache_hits\": %llu,\n"
                "  \"sat_cache_misses\": %llu,\n",
                static_cast<unsigned long long>(R.CondCacheHits),
                static_cast<unsigned long long>(R.CondCacheMisses),
                static_cast<unsigned long long>(R.SatCacheHits),
                static_cast<unsigned long long>(R.SatCacheMisses));
  Json += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  \"smt_solves\": %u,\n"
                "  \"txn_fingerprint_hits\": %llu,\n"
                "  \"pair_verdicts_reused\": %llu,\n"
                "  \"constraint_cache_hits\": %llu,\n"
                "  \"constraint_cache_misses\": %llu,\n"
                "  \"solver_ctx_reuses\": %llu,\n"
                "  \"incremental_seconds\": %.6f,\n",
                R.SmtSolves,
                static_cast<unsigned long long>(R.TxnFingerprintHits),
                static_cast<unsigned long long>(R.PairVerdictsReused),
                static_cast<unsigned long long>(R.ConstraintCacheHits),
                static_cast<unsigned long long>(R.ConstraintCacheMisses),
                static_cast<unsigned long long>(R.SolverCtxReuses),
                R.IncrementalSeconds);
  Json += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  \"ssg_seconds\": %.6f,\n  \"enum_seconds\": %.6f,\n"
                "  \"smt_seconds\": %.6f,\n  \"backend_seconds\": %.6f\n}\n",
                R.SSGSeconds, R.EnumSeconds, R.SmtSeconds, R.BackendSeconds);
  Json += Buf;
  return Json;
}
