//===- analysis/Pipeline.h - Cached analysis entry point --------*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared entry point above `analyze()` used by the CLI (--cache-dir)
/// and the analysis service (tools/c4-serve): persistent cross-run caching
/// plus the canonical stats-JSON emitter, so both tools speak byte-identical
/// schemas.
///
/// An `AnalysisCache` wires the two persistence layers together on top of
/// one DiskCache directory:
///
///  * the *oracle layer* — a portable OracleSnapshot of satisfiability
///    verdicts, accumulated across runs in memory and persisted whenever it
///    grows. Every cold analysis pre-seeds a fresh per-run oracle from it
///    (resolved against the program's own TypeRegistry; entries are valid
///    across programs, see spec/CommutativityCache.h) and folds its new
///    entries back in afterwards;
///
///  * the *verdict layer* — whole-history results keyed by
///    `fingerprintAnalysis`. A hit skips the back end entirely and
///    rehydrates the cold run's result, statistics included, byte for byte.
///
/// In *incremental* mode (`--incremental-cache`) two more layers ride on
/// the same directory, for the case where the verdict layer misses because
/// the program was edited:
///
///  * the *incremental layer* — per-unfolding NoCycle records keyed by
///    transaction content digests (analysis/Incremental.h), replaying
///    bounded-check and generalization queries whose transactions did not
///    change;
///
///  * the *constraint layer* — a Green-style canonicalized constraint
///    cache of unsat ϕ_cyclic slices (smt/ConstraintCache.h), valid across
///    queries, runs and programs.
///
/// All layers are advisory: any miss, corruption or disabled directory
/// falls back to the plain cold path with identical verdicts. Results whose
/// deadline expired are *not* persisted — they are timing-dependent
/// partial verdicts, and caching one would freeze a wall-clock accident
/// into future runs.
///
/// One AnalysisCache may be shared by concurrent requests (the service
/// does): DiskCache is internally thread-safe, the snapshot is guarded
/// here, and per-run oracles are private to their run.
///
//===----------------------------------------------------------------------===//

#ifndef C4_ANALYSIS_PIPELINE_H
#define C4_ANALYSIS_PIPELINE_H

#include "analysis/Incremental.h"
#include "analysis/VerdictCache.h"
#include "smt/ConstraintCache.h"
#include "spec/CommutativityCache.h"
#include "support/DiskCache.h"
#include "support/SingleFlight.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

namespace c4 {

/// The persistent cross-run cache: one disk directory, two layers.
class AnalysisCache {
public:
  /// Opens (creating if needed) the cache rooted at \p Dir and loads the
  /// persisted oracle snapshot. A directory that cannot be created leaves
  /// the cache disabled (analyses still run, uncached). With \p Incremental
  /// the per-unfolding record and constraint snapshots are loaded too and
  /// cold runs consult/extend them (`--incremental-cache`).
  explicit AnalysisCache(const std::string &Dir, bool Incremental = false);

  bool enabled() const { return Disk.enabled(); }
  bool incremental() const { return Incr; }

  DiskCacheStats diskStats() const { return Disk.stats(); }
  uint64_t verdictHits() const { return VerdictHits.load(); }
  uint64_t verdictMisses() const { return VerdictMisses.load(); }
  /// Analyses that actually ran the back end through this cache. Under
  /// concurrent identical requests the single-flight layer keeps this at
  /// one per distinct fingerprint — the serving tier's stampede guard.
  uint64_t backendRuns() const { return BackendRuns.load(); }
  /// Requests that waited on another request's in-flight identical
  /// analysis instead of running their own.
  uint64_t flightWaits() const { return FlightWaits.load(); }
  size_t oracleEntries();
  /// Incremental-layer sizes (0 when not in incremental mode).
  size_t incrRecords();
  size_t incrTxns();
  size_t greenProofs();

  /// Persists any unwritten oracle snapshot growth. Writes are already
  /// eager on the cold path, so this is a cheap idempotent safety net the
  /// serving tier calls during graceful drain.
  void flush();

private:
  friend struct PipelineRunner;
  DiskCache Disk;
  bool Incr = false; ///< incremental layers enabled for this cache
  std::mutex SnapMu;
  OracleSnapshot Snapshot;  ///< accumulated across runs, guarded by SnapMu
  size_t PersistedSize = 0; ///< snapshot size at the last disk write
  // Incremental-mode state, all guarded by SnapMu like the oracle snapshot.
  IncrementalSnapshot IncrSnap; ///< per-unfolding records + txn digests
  ConstraintSnapshot GreenSnap; ///< canonical unsat constraint keys
  size_t PersistedIncrRecords = 0, PersistedIncrTxns = 0;
  size_t PersistedGreenSize = 0;
  std::atomic<uint64_t> VerdictHits{0}, VerdictMisses{0};
  std::atomic<uint64_t> BackendRuns{0}, FlightWaits{0};
  SingleFlight Flights; ///< per-fingerprint stampede protection
};

/// Outcome of analyzeCached.
struct PipelineResult {
  AnalysisResult R;
  bool CacheHit = false;     ///< verdict layer hit; R was rehydrated
  std::string Fingerprint;   ///< empty when no cache was configured
  unsigned OracleImported = 0; ///< sat verdicts pre-seeded on the cold path
};

/// Runs the analysis through the cache (or plain `analyze()` when \p Cache
/// is null/disabled). \p Reg must be the registry the history's schema was
/// built against — the oracle snapshot resolves type names through it.
PipelineResult analyzeCached(const AbstractHistory &A,
                             const AnalyzerOptions &O, const TypeRegistry &Reg,
                             AnalysisCache *Cache);

/// Front-end/pass measurements and labels accompanying a result in the
/// stats-JSON object. Plain values rather than frontend/passes types: this
/// library sits below both, and the service fills the same fields from its
/// request context.
struct StatsJsonFields {
  std::string File; ///< echoed verbatim in "file"
  unsigned Transactions = 0, Events = 0;
  double FrontendSeconds = 0, LexSeconds = 0, ParseSeconds = 0,
         BuildSeconds = 0;
  double PassSeconds = 0;
  unsigned PassIterations = 0, EventsBefore = 0, EventsAfter = 0;
  unsigned DeadWrites = 0, PrunedBranches = 0, ConstProps = 0,
           FreshPromotions = 0;
  size_t LintWarnings = 0;
};

/// Renders the canonical `--stats-json` object (one schema for the CLI and
/// the service; see docs/cli.md for the field reference). Byte-for-byte
/// deterministic in its inputs.
std::string renderStatsJson(const StatsJsonFields &F,
                            const AnalysisResult &R);

} // namespace c4

#endif // C4_ANALYSIS_PIPELINE_H
