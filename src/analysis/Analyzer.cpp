//===- analysis/Analyzer.cpp ----------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"

#include "abstract/Concretize.h"
#include "analysis/Incremental.h"
#include "domain/AbstractDomain.h"
#include "domain/Prefilter.h"
#include "smt/CondSmt.h"
#include "spec/CommutativityCache.h"
#include "support/Format.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <set>
#include <thread>

using namespace c4;

namespace {

/// Accumulates wall time into a double on scope exit (per-stage stats).
class StageTimer {
public:
  explicit StageTimer(double &Dest)
      : Acc(Dest), Start(std::chrono::steady_clock::now()) {}
  ~StageTimer() {
    Acc += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Start)
               .count();
  }

private:
  double &Acc;
  std::chrono::steady_clock::time_point Start;
};

/// Shared state of one analysis run (one event mask).
class Run {
public:
  Run(const AbstractHistory &Hist, const AnalyzerOptions &Opts,
      std::vector<bool> EventMask, CommutativityOracle *CondOracle,
      const SatAssist *SatAsst, const Deadline *Dl)
      : A(Hist), O(Opts), Mask(std::move(EventMask)), Oracle(CondOracle),
        Assist(SatAsst), DL(Dl) {
    // The incremental layers are disabled in prefilter-check mode: check
    // mode exists to actually run Z3 against domain proofs, and a replayed
    // verdict would mask the disagreement it is hunting for.
    IncrOn = O.UseIncremental && !O.CheckPrefilter &&
             (O.Incremental || O.Green);
    if (IncrOn && O.Incremental) {
      StageTimer Timer(IncrSec);
      IncrCtx = incrementalContextDigest(A, O, Mask);
    }
  }

  void execute(AnalysisResult &R);

private:
  bool subsumed(const Unfolding &U, const std::vector<Violation> &V) const;
  /// Runs one bounded round; returns false when the analysis deadline
  /// expired before every unfolding of the round was conclusively handled
  /// (the remainder is counted in AnalysisResult::UnfoldingsDeferred and
  /// the round must not count towards KChecked).
  bool checkBounded(unsigned K, AnalysisResult &R,
                    const std::vector<unsigned> &Universe);
  /// One worker unit of the bounded check: SSG + candidate cycles + SMT for
  /// a single unfolding. Pure apart from the shared oracle (thread-safe).
  struct UnfoldingOutcome {
    bool PrunedEarly = false; ///< subsumed at task start; result not needed
    bool Cancelled = false;   ///< deadline expired before the solve started
    bool CandTruncated = false;
    bool Flagged = false; ///< the instantiated SSG admitted candidates
    bool Prefiltered = false; ///< every candidate killed by the domain; the
                              ///< NoCycle verdict needed no Z3 query
    bool PrefilterUnknown = false; ///< prefilter ran but left candidates
    bool PrefilterDisagree = false; ///< --check-prefilter: Z3 contradicted
    bool Reused = false; ///< replayed from a persisted incremental record;
                         ///< prefilter and solve were both skipped
    UnfoldingResult Res;
    SolveTelemetry Tel;
    bool CEValid = false;
    double SSGSec = 0, SmtSec = 0, PrefilterSec = 0, IncrSec = 0;
  };
  UnfoldingOutcome solveOne(const Unfolding &U,
                            const std::vector<Violation> *Committed,
                            std::mutex *CommitMu, Z3Env *Env);
  /// Applies one outcome to \p R exactly as the sequential loop would,
  /// re-checking subsumption against the violations committed so far.
  /// \p K / \p Index identify the query for the trace (commit order).
  void commitOutcome(const Unfolding &U, UnfoldingOutcome &&Out,
                     AnalysisResult &R, unsigned K, long Index);
  unsigned effectiveThreads(size_t Work) const;
  bool generalizes(unsigned K, const AnalysisResult &R,
                   const std::vector<unsigned> &Universe);
  std::vector<struct MergeCtx>
  buildMerges(const Unfolding &U,
              const std::vector<std::vector<bool>> &SoClosure);
  std::vector<bool> maskForUnfolding(const Unfolding &U) const;
  /// Returns true if a new violation was recorded (false on duplicates).
  bool recordViolation(AnalysisResult &R, std::vector<unsigned> OrigTxns,
                       std::optional<CounterExample> CE, bool Inconclusive);
  bool validateCE(const CounterExample &CE) const;

  /// Cheap pre-filter for session layouts: can the layout carry a
  /// candidate cycle (Closed) or a §7.2 spanning segment (open)? Checked on
  /// a mini-graph over the layout's transactions using the precomputed
  /// general SSG edges (a sound over-approximation of every instantiated
  /// SSG) plus intra-session order. Skipping a layout that fails avoids
  /// building its abstract history entirely.
  bool layoutViable(const std::vector<std::vector<unsigned>> &Layout,
                    bool Closed, bool RequireAllNodes) const;
  static bool layoutSubsumed(const std::vector<std::vector<unsigned>> &Layout,
                             const std::vector<Violation> &V);
  void precomputeGeneralEdges();
  /// Folds the run's stage timers and layout-filter counts into \p R.
  void finishStats(AnalysisResult &R) const {
    R.SSGSeconds += SSGSec;
    R.EnumSeconds += EnumSec;
    R.SmtSeconds += SmtSec;
    R.PrefilterSeconds += PrefilterSec;
    R.LayoutsFiltered += LayoutsFilteredGen;
    R.SMTRetries += SmtRetriesGen;
    R.SmtQueries += SmtQueriesGen;
    R.SmtQueriesPrefiltered += SmtQueriesPrefilteredGen;
    R.PrefilterUnknowns += PrefilterUnknownsGen;
    R.PrefilterDisagreements += PrefilterDisagreeGen;
    R.RlimitSpent += RlimitSpentGen;
    R.SmtSolves += SmtSolvesGen;
    R.SolverCtxReuses += SolverCtxReusesGen;
    R.IncrementalSeconds += IncrSec;
    R.DfsBudgetExhausted += DfsExhaustions;
    R.DeadlineExpired = R.DeadlineExpired || DeadlineHit;
  }

  const AbstractHistory &A;
  const AnalyzerOptions &O;
  std::vector<bool> Mask; // original events included in this run
  CommutativityOracle *Oracle; // shared memoization, may be null
  const SatAssist *Assist;     // domain assist for sat queries, may be null
  const Deadline *DL;          // the run's analysis deadline (never null)
  // General-SSG pairwise edges over original transactions (self-pairs
  // describe two instances of the same transaction).
  std::vector<std::vector<bool>> GenAny, GenAnti;
  // Per-stage time accumulators, folded into the AnalysisResult by
  // execute(); see AnalysisResult for their meaning. LayoutsFilteredGen
  // counts viability-filtered layouts of the generalization check (whose
  // result object is const at filter time).
  double SSGSec = 0, EnumSec = 0, SmtSec = 0, PrefilterSec = 0;
  unsigned LayoutsFilteredGen = 0;
  // Governance accumulators outside the result object: the generalization
  // check sees a const result, and the viability filter runs under both
  // const and non-const result contexts. Folded in by finishStats.
  unsigned SmtRetriesGen = 0;
  unsigned SmtQueriesGen = 0;
  unsigned SmtQueriesPrefilteredGen = 0;
  unsigned PrefilterUnknownsGen = 0;
  unsigned PrefilterDisagreeGen = 0;
  uint64_t RlimitSpentGen = 0;
  unsigned SmtSolvesGen = 0;
  uint64_t SolverCtxReusesGen = 0;
  double IncrSec = 0; ///< digest/key computation + record lookups
  mutable unsigned DfsExhaustions = 0;
  bool DeadlineHit = false;
  /// True when the incremental layers (record store / constraint cache)
  /// participate in this run; see the constructor.
  bool IncrOn = false;
  /// The run-level context digest scoping every record key (empty when the
  /// record store is off).
  std::string IncrCtx;
  /// The constraint cache to thread into the SMT stage (null when the
  /// incremental layers are off for this run).
  ConstraintCache *green() const { return IncrOn ? O.Green : nullptr; }
  std::vector<SSGViolation> Components; // Stage-1 suspicious components

  /// The Z3 environment reused by every main-thread SMT query of this run
  /// (sequential bounded checks and the generalization chunks). Contexts
  /// cost ~15ms to create+destroy — more than most solves — so queries
  /// reset and reuse one env instead. Lazily built: runs refuted by the
  /// fast stage never pay for a context.
  Z3Env &seqEnv() {
    if (O.ReuseEnv)
      return *O.ReuseEnv;
    if (!SeqEnv)
      SeqEnv = std::make_unique<Z3Env>();
    return *SeqEnv;
  }
  std::unique_ptr<Z3Env> SeqEnv;
};

/// Per-thread Z3 environment for parallel workers, lazily built on first
/// use and dropped when the pool thread exits (pools live for one bounded
/// round). Z3 contexts must not be shared between threads.
thread_local std::unique_ptr<Z3Env> WorkerEnv;

bool Run::layoutSubsumed(
    const std::vector<std::vector<unsigned>> &Layout,
    const std::vector<Violation> &V) {
  std::vector<unsigned> Set;
  for (const std::vector<unsigned> &Session : Layout)
    Set.insert(Set.end(), Session.begin(), Session.end());
  std::sort(Set.begin(), Set.end());
  Set.erase(std::unique(Set.begin(), Set.end()), Set.end());
  for (const Violation &Viol : V)
    if (std::includes(Set.begin(), Set.end(), Viol.OrigTxns.begin(),
                      Viol.OrigTxns.end()))
      return true;
  return false;
}

void Run::precomputeGeneralEdges() {
  StageTimer Timer(SSGSec);
  SSG G(A, O.Features);
  G.setOracle(Oracle);
  G.setSatAssist(Assist);
  G.setEventMask(Mask);
  G.analyze();
  unsigned N = A.numTxns();
  GenAny.assign(N, std::vector<bool>(N, false));
  GenAnti = GenAny;
  for (const Digraph::Edge &E : G.graph().edges()) {
    if (E.Label == DepSO)
      continue; // session order is layout-dependent; added per layout
    GenAny[E.From][E.To] = true;
    if (E.Label == DepAntiDep)
      GenAnti[E.From][E.To] = true;
  }
}

bool Run::layoutViable(const std::vector<std::vector<unsigned>> &Layout,
                       bool Closed, bool RequireAllNodes) const {
  // Mini-graph nodes: the layout's transaction instances.
  struct Node {
    unsigned Orig;
    unsigned Session;
  };
  std::vector<Node> Nodes;
  for (unsigned S = 0; S != Layout.size(); ++S)
    for (unsigned T : Layout[S])
      Nodes.push_back({T, S});
  unsigned N = static_cast<unsigned>(Nodes.size());
  unsigned FullMask = (1u << Layout.size()) - 1;

  auto HasEdge = [&](unsigned I, unsigned J, bool &Anti) {
    Anti = GenAnti[Nodes[I].Orig][Nodes[J].Orig];
    if (GenAny[Nodes[I].Orig][Nodes[J].Orig])
      return true;
    // Intra-session order: instances were listed in chain order.
    return Nodes[I].Session == Nodes[J].Session && I < J;
  };

  // DFS over simple paths: cover every session, use >= 1 anti edge, and
  // (for cycles) return to the start. The search is budgeted: on dense
  // mini-graphs we give up and conservatively keep the layout (the precise
  // machinery decides). Exhaustions are counted — a run that silently falls
  // back to "viable" everywhere has lost its pre-filter and the operator
  // should know (surfaced in AnalysisResult::DfsBudgetExhausted) — and the
  // budget is configurable (AnalyzerOptions::LayoutDfsBudget).
  std::vector<bool> OnPath(N, false);
  unsigned Covered = 0;
  unsigned Budget = O.LayoutDfsBudget;
  bool Exhausted = false;
  std::function<bool(unsigned, unsigned, unsigned, bool)> Dfs =
      [&](unsigned Start, unsigned Node2, unsigned SessMask,
          bool Anti) -> bool {
    if (Budget == 0) {
      Exhausted = true;
      return true; // budget exhausted: treat as viable
    }
    --Budget;
    // Deadline poll every 4096 steps: a dense mini-graph DFS can run for
    // a while, and the enumeration filter is on the round's critical path.
    if ((Budget & 0xFFFu) == 0 && DL->expired()) {
      Exhausted = true;
      return true; // cancelled: conservatively viable (round is deferred)
    }
    if (SessMask == FullMask && Anti &&
        (!RequireAllNodes || Covered == N)) {
      if (!Closed)
        return true;
      bool EdgeAnti = false;
      if (HasEdge(Node2, Start, EdgeAnti))
        return true;
    }
    for (unsigned Next = 0; Next != N; ++Next) {
      if (OnPath[Next])
        continue;
      bool EdgeAnti = false;
      if (!HasEdge(Node2, Next, EdgeAnti))
        continue;
      OnPath[Next] = true;
      ++Covered;
      if (Dfs(Start, Next, SessMask | (1u << Nodes[Next].Session),
              Anti || EdgeAnti)) {
        OnPath[Next] = false;
        --Covered;
        return true;
      }
      OnPath[Next] = false;
      --Covered;
    }
    return false;
  };
  for (unsigned Start = 0; Start != N; ++Start) {
    std::fill(OnPath.begin(), OnPath.end(), false);
    OnPath[Start] = true;
    Covered = 1;
    if (Dfs(Start, Start, 1u << Nodes[Start].Session, false)) {
      DfsExhaustions += Exhausted;
      return true;
    }
  }
  DfsExhaustions += Exhausted;
  return false;
}

bool Run::subsumed(const Unfolding &U,
                   const std::vector<Violation> &V) const {
  std::vector<unsigned> Set = U.origTxnSet();
  for (const Violation &Viol : V)
    if (std::includes(Set.begin(), Set.end(), Viol.OrigTxns.begin(),
                      Viol.OrigTxns.end()))
      return true;
  return false;
}

std::vector<bool> Run::maskForUnfolding(const Unfolding &U) const {
  std::vector<bool> M(U.H.numEvents(), true);
  for (unsigned E = 0; E != U.H.numEvents(); ++E)
    M[E] = Mask[U.OrigEvent[E]];
  return M;
}

bool Run::recordViolation(AnalysisResult &R, std::vector<unsigned> OrigTxns,
                          std::optional<CounterExample> CE,
                          bool Inconclusive) {
  std::sort(OrigTxns.begin(), OrigTxns.end());
  OrigTxns.erase(std::unique(OrigTxns.begin(), OrigTxns.end()),
                 OrigTxns.end());
  for (const Violation &V : R.Violations)
    if (V.OrigTxns == OrigTxns)
      return false;
  Violation V;
  V.OrigTxns = std::move(OrigTxns);
  for (unsigned T : V.OrigTxns)
    V.TxnNames.push_back(A.txn(T).Name);
  V.CE = std::move(CE);
  if (V.CE)
    V.CEText = V.CE->Text;
  V.Inconclusive = Inconclusive;
  R.Violations.push_back(std::move(V));
  return true;
}

bool Run::validateCE(const CounterExample &CE) const {
  // End-to-end check of the extracted witness: it must concretize the
  // abstract history and its schedule's DSG must be cyclic (the criterion's
  // definition of a violation). Validation can fail legitimately when the
  // S1 return-value fix-up changed a guard-feeding query, leaving a
  // pre-schedule witness (see DESIGN.md).
  if (!findConcretization(CE.H, A).has_value())
    return false;
  EventRelations Rel(CE.H);
  DependenceTriple T = computeDependencies(CE.H, CE.S, Rel);
  return buildDSG(CE.H, T).hasCycle();
}

unsigned Run::effectiveThreads(size_t Work) const {
  unsigned T = O.NumThreads ? O.NumThreads
                            : std::max(1u, std::thread::hardware_concurrency());
  return static_cast<unsigned>(
      std::min<size_t>(T, std::max<size_t>(Work, 1)));
}

Run::UnfoldingOutcome Run::solveOne(const Unfolding &U,
                                    const std::vector<Violation> *Committed,
                                    std::mutex *CommitMu, Z3Env *Env) {
  UnfoldingOutcome Out;
  if (DL->expired()) {
    // Cooperative cancellation: report the unit as cancelled without doing
    // the work; the commit loop counts it as deferred.
    Out.Cancelled = true;
    return Out;
  }
  if (Committed) {
    // Early pruning against the violations committed so far. Safe for
    // determinism: the committed set only grows, so anything subsumed now
    // is still subsumed at commit time, where the authoritative (in-order)
    // re-check happens and the result of this task is not consulted.
    std::lock_guard<std::mutex> Lock(*CommitMu);
    if (subsumed(U, *Committed)) {
      Out.PrunedEarly = true;
      return Out;
    }
  }
  SSG G(U.H, O.Features, U.SessionTags);
  std::vector<CandidateCycle> Cands;
  {
    StageTimer Timer(Out.SSGSec);
    G.setOracle(Oracle);
    G.setSatAssist(Assist);
    G.setEventMask(maskForUnfolding(U));
    G.analyze();
    Cands = G.candidateCycles(O.MaxCandidateCycles, Out.CandTruncated);
  }
  if (Cands.empty())
    return Out;
  Out.Flagged = true;
  // Incremental record lookup, ahead of the prefilter: a persisted NoCycle
  // outcome replays the whole prefilter+solve tail of this unit, counters
  // included, so a warm run's non-timing statistics match a cold run's.
  // The key covers the unfolding's name-free content and the exact
  // candidate set; the store only ever holds NoCycle outcomes (cycles are
  // re-solved for their counter-example text, unknowns are never frozen).
  std::string RecKey;
  if (IncrOn && O.Incremental) {
    StageTimer Timer(Out.IncrSec);
    RecKey = unfoldingRecordKey(IncrCtx, U, Cands, "bounded");
    if (const IncrRecord *Rec = O.Incremental->lookup(RecKey)) {
      Out.Reused = true;
      Out.Prefiltered = Rec->Prefiltered;
      Out.PrefilterUnknown = Rec->PrefilterUnknown;
      Out.Res.Status = UnfoldingResult::NoCycle;
      Out.Tel.Attempts = Rec->Attempts;
      Out.Tel.CtxReuses = Rec->CtxReuses;
      Out.Tel.RlimitBudget = Rec->RlimitBudget;
      return Out;
    }
  }
  if (O.UsePrefilter) {
    // The domain prefilter: when every candidate is proven unrealizable,
    // NoCycle holds without building a Z3 query. Partial kills fall through
    // to the full solve (the counter-example text must stay byte-identical
    // to a --no-prefilter run, so the SMT stage sees the original
    // candidate list).
    StageTimer Timer(Out.PrefilterSec);
    PrefilterResult PR =
        prefilterCandidates(U, G, Cands, O.Features, Oracle);
    if (PR.allKilled())
      Out.Prefiltered = true;
    else
      Out.PrefilterUnknown = true;
  }
  if (Out.Prefiltered) {
    Out.Res.Status = UnfoldingResult::NoCycle;
    if (!O.CheckPrefilter) {
      if (!RecKey.empty())
        O.Incremental->record(RecKey, {/*Prefiltered=*/true,
                                       /*PrefilterUnknown=*/false,
                                       /*Attempts=*/0, /*CtxReuses=*/0,
                                       /*RlimitBudget=*/0});
      return Out;
    }
    // Debug cross-check: solve anyway. A cycle found by Z3 refutes the
    // domain proof — count the disagreement and trust Z3 (an unknown does
    // not contradict a proof; the domain verdict stands).
    UnfoldingResult Check;
    {
      StageTimer Timer(Out.SmtSec);
      SolverPolicy P{O.Budget, DL};
      Check = solveUnfolding(U, G, Cands, O.Features, P, Oracle, Env,
                             &Out.Tel);
    }
    if (Check.Status == UnfoldingResult::CycleFound) {
      Out.PrefilterDisagree = true;
      Out.Prefiltered = false;
      Out.Res = std::move(Check);
      Out.CEValid = validateCE(*Out.Res.CE);
    }
    return Out;
  }
  {
    StageTimer Timer(Out.SmtSec);
    SolverPolicy P{O.Budget, DL};
    Out.Res = solveUnfolding(U, G, Cands, O.Features, P, Oracle, Env,
                             &Out.Tel, green());
  }
  if (Out.Res.Status == UnfoldingResult::CycleFound)
    Out.CEValid = validateCE(*Out.Res.CE);
  else if (!RecKey.empty() &&
           Out.Res.Status == UnfoldingResult::NoCycle && !Out.Tel.Error)
    O.Incremental->record(RecKey,
                          {/*Prefiltered=*/false, Out.PrefilterUnknown,
                           Out.Tel.Attempts, Out.Tel.CtxReuses,
                           Out.Tel.RlimitBudget});
  return Out;
}

void Run::commitOutcome(const Unfolding &U, UnfoldingOutcome &&Out,
                        AnalysisResult &R, unsigned K, long Index) {
  // Authoritative subsumption check, in enumeration order — reproduces the
  // sequential loop's decision exactly.
  if (subsumed(U, R.Violations)) {
    ++R.UnfoldingsSubsumed;
    return;
  }
  assert(!Out.PrunedEarly && "commit set is a superset of the pruning set");
  ++R.UnfoldingsChecked;
  R.Truncated = R.Truncated || Out.CandTruncated;
  if (!Out.Flagged)
    return;
  ++R.SSGFlagged;
  if (Out.Prefiltered)
    ++R.SmtQueriesPrefiltered; // the NoCycle verdict cost no Z3 query
  else
    ++R.SmtQueries;
  R.PrefilterUnknowns += Out.PrefilterUnknown;
  R.PrefilterDisagreements += Out.PrefilterDisagree;
  // Governance accounting and the trace record happen at commit time, in
  // enumeration order, so both are deterministic across thread counts.
  // (RlimitSpent is telemetry — Z3's spent counter can jitter by a few
  // thousand units with context history — but attempts/verdicts are exact.)
  if (Out.Tel.Attempts > 1)
    R.SMTRetries += Out.Tel.Attempts - 1;
  R.RlimitSpent += Out.Tel.RlimitSpent;
  // Reused records replay the cold run's attempt/retry counters above, but
  // only queries that actually reached Z3 this run count as solves.
  if (!Out.Reused && Out.Tel.Attempts > 0)
    ++R.SmtSolves;
  R.SolverCtxReuses += Out.Tel.CtxReuses;
  const char *Outcome = "unknown";
  switch (Out.Res.Status) {
  case UnfoldingResult::NoCycle:
    ++R.SMTRefuted;
    Outcome = "no-cycle";
    break;
  case UnfoldingResult::Unknown:
    ++R.SMTUnknown;
    Outcome = Out.Tel.Error ? "error" : "unknown";
    // Sound default: report the unfolding's transactions as a potential
    // violation.
    recordViolation(R, U.origTxnSet(), std::nullopt,
                    /*Inconclusive=*/true);
    break;
  case UnfoldingResult::CycleFound:
    Outcome = "cycle";
    break;
  }
  if (O.Trace) {
    QueryRecord Rec;
    Rec.Stage = "bounded";
    Rec.K = K;
    Rec.Unfolding = Index;
    // Prefiltered, reused and constraint-cache-answered queries issued no
    // solve attempt; for reused records the replayed count matches the
    // cold run's trace line.
    Rec.Attempts = Out.Prefiltered || Out.Reused || Out.Tel.GreenHit
                       ? Out.Tel.Attempts
                       : std::max(1u, Out.Tel.Attempts);
    Rec.RlimitBudget = Out.Tel.RlimitBudget;
    Rec.RlimitSpent = Out.Tel.RlimitSpent;
    Rec.Outcome = Outcome;
    Rec.Prefiltered = Out.Prefiltered;
    Rec.Reused = Out.Reused || Out.Tel.GreenHit;
    Rec.WallMs = (Out.SmtSec + Out.PrefilterSec + Out.IncrSec) * 1000.0;
    O.Trace->append(Rec);
  }
  if (Out.Res.Status == UnfoldingResult::CycleFound) {
    // Copy the key first: the CE is moved into the violation.
    std::vector<unsigned> Key = Out.Res.CE->OrigTxns;
    if (recordViolation(R, std::move(Key), std::move(Out.Res.CE),
                        /*Inconclusive=*/false))
      R.Violations.back().Validated = Out.CEValid;
  }
}

bool Run::checkBounded(unsigned K, AnalysisResult &R,
                       const std::vector<unsigned> &Universe) {
  bool Truncated = false;
  std::function<bool(const std::vector<std::vector<unsigned>> &)> Filter =
      [&](const std::vector<std::vector<unsigned>> &Layout) {
        if (layoutSubsumed(Layout, R.Violations)) {
          ++R.UnfoldingsSubsumed;
          return false;
        }
        if (layoutViable(Layout, /*Closed=*/true,
                         /*RequireAllNodes=*/false))
          return true;
        ++R.LayoutsFiltered;
        return false;
      };
  std::vector<Unfolding> Unfoldings;
  {
    StageTimer Timer(EnumSec);
    Unfoldings = enumerateUnfoldings(A, K, O.MaxUnfoldings, Truncated,
                                     &Universe, &Filter, DL);
  }
  R.Truncated = R.Truncated || Truncated;
  if (DL->expired()) {
    // Deadline hit during enumeration: everything in this round is
    // deferred (Truncated is already set if enumeration stopped early,
    // blocking generalization downstream).
    R.UnfoldingsDeferred += static_cast<unsigned>(Unfoldings.size());
    R.DeadlineExpired = true;
    return false;
  }

  unsigned Threads = effectiveThreads(Unfoldings.size());
  if (Threads <= 1) {
    // Sequential: solve and commit one unfolding at a time (the early
    // subsumption check inside solveOne is skipped; commitOutcome decides).
    for (size_t I = 0; I != Unfoldings.size(); ++I) {
      const Unfolding &U = Unfoldings[I];
      if (DL->expired()) {
        R.UnfoldingsDeferred += static_cast<unsigned>(Unfoldings.size() - I);
        R.DeadlineExpired = true;
        return false;
      }
      if (subsumed(U, R.Violations)) {
        ++R.UnfoldingsSubsumed;
        continue;
      }
      UnfoldingOutcome Out = solveOne(U, nullptr, nullptr, &seqEnv());
      SSGSec += Out.SSGSec;
      SmtSec += Out.SmtSec;
      PrefilterSec += Out.PrefilterSec;
      IncrSec += Out.IncrSec;
      if (Out.Cancelled) {
        R.UnfoldingsDeferred += static_cast<unsigned>(Unfoldings.size() - I);
        R.DeadlineExpired = true;
        return false;
      }
      commitOutcome(U, std::move(Out), R, K, static_cast<long>(I));
    }
    return true;
  }

  // Parallel: workers solve unfoldings speculatively; the main thread
  // commits results strictly in enumeration order, so violation sets and
  // every statistic are identical to the sequential run. Workers prune
  // against the committed violations (guarded by CommitMu) to bound the
  // speculative waste. The pool is bound to the deadline: once it expires,
  // workers short-circuit at task entry and the commit loop defers every
  // unit from the first cancelled/expired index on — outcomes that raced
  // past the expiry are discarded rather than committed, so a deadline run
  // commits a prefix of the enumeration order (where the cut lands is
  // timing-dependent; without a deadline, runs stay bit-identical).
  std::mutex CommitMu;
  ThreadPool Pool(Threads, DL);
  std::vector<std::future<UnfoldingOutcome>> Futures;
  Futures.reserve(Unfoldings.size());
  for (const Unfolding &U : Unfoldings)
    Futures.push_back(
        Pool.submit([this, &U, &R, &CommitMu, &Pool]() -> UnfoldingOutcome {
          if (Pool.cancelled()) {
            UnfoldingOutcome Out;
            Out.Cancelled = true;
            return Out;
          }
          if (!WorkerEnv)
            WorkerEnv = std::make_unique<Z3Env>();
          return solveOne(U, &R.Violations, &CommitMu, WorkerEnv.get());
        }));
  bool Winding = false;
  unsigned Deferred = 0;
  for (size_t I = 0; I != Unfoldings.size(); ++I) {
    UnfoldingOutcome Out = Futures[I].get();
    SSGSec += Out.SSGSec;
    SmtSec += Out.SmtSec;
    PrefilterSec += Out.PrefilterSec;
    if (Winding || Out.Cancelled || DL->expired()) {
      Winding = true;
      ++Deferred;
      continue; // drain the remaining futures, discarding outcomes
    }
    std::lock_guard<std::mutex> Lock(CommitMu);
    commitOutcome(Unfoldings[I], std::move(Out), R, K,
                  static_cast<long>(I));
  }
  if (Winding) {
    R.UnfoldingsDeferred += Deferred;
    R.DeadlineExpired = true;
    return false;
  }
  return true;
}

/// The session layout of an unfolding: per session, the original
/// transaction ids in chain order.
static std::vector<std::vector<unsigned>>
sessionSpecs(const Unfolding &U) {
  std::vector<std::vector<unsigned>> Specs(U.NumSessions);
  // Transactions were instantiated session by session in chain order, so
  // increasing transaction id preserves both.
  for (unsigned T = 0; T != U.H.numTxns(); ++T)
    Specs[U.SessionTags[T]].push_back(U.OrigTxn[T]);
  return Specs;
}

/// A session merge of an unfolding: the transaction mapping into the merged
/// unfolding plus the merged instantiated SSG.
struct MergeCtx {
  std::vector<unsigned> MapTxn;
  Digraph Graph;
};

/// Builds all legal one-session merges of \p U (session J appended to
/// session I when the abstract session order permits) with their SSGs.
std::vector<MergeCtx>
Run::buildMerges(const Unfolding &U,
                 const std::vector<std::vector<bool>> &SoClosure) {
  std::vector<MergeCtx> Result;
  std::vector<std::vector<unsigned>> Specs = sessionSpecs(U);
  std::vector<std::vector<unsigned>> OldIds(U.NumSessions);
  for (unsigned T = 0; T != U.H.numTxns(); ++T)
    OldIds[U.SessionTags[T]].push_back(T);
  for (unsigned I = 0; I != U.NumSessions; ++I)
    for (unsigned J = 0; J != U.NumSessions; ++J) {
      if (I == J || Specs[I].empty() || Specs[J].empty())
        continue;
      if (!SoClosure[Specs[I].back()][Specs[J].front()])
        continue;
      std::vector<std::vector<unsigned>> Merged;
      std::vector<unsigned> MapTxn(U.H.numTxns(), 0);
      unsigned Next = 0;
      for (unsigned S = 0; S != U.NumSessions; ++S) {
        if (S == J)
          continue;
        std::vector<unsigned> Spec = Specs[S];
        for (unsigned T : OldIds[S])
          MapTxn[T] = Next++;
        if (S == I) {
          Spec.insert(Spec.end(), Specs[J].begin(), Specs[J].end());
          for (unsigned T : OldIds[J])
            MapTxn[T] = Next++;
        }
        Merged.push_back(std::move(Spec));
      }
      Unfolding MU = buildUnfolding(A, Merged);
      StageTimer Timer(SSGSec);
      SSG G(MU.H, O.Features, MU.SessionTags);
      G.setOracle(Oracle);
      G.setSatAssist(Assist);
      G.setEventMask(maskForUnfolding(MU));
      G.analyze();
      Result.push_back({std::move(MapTxn), G.graph()});
    }
  return Result;
}

/// §7.2 short-cut: can the segment pattern be reduced by one session? We
/// merge the transactions of one spanned session onto the end of another
/// (when the abstract session order permits) and check that every segment
/// step still has an SSG edge with one of its labels in the merged
/// unfolding. If so, any cycle containing the segment transforms into a
/// cycle over fewer sessions with the same syntactic transactions, which
/// the bounded check (or a further reduction) covers.
static bool shortcutReducibleWith(const std::vector<MergeCtx> &Merges,
                                  const CandidateCycle &Seg) {
  for (const MergeCtx &M : Merges) {
    bool AllSteps = true;
    for (unsigned Step = 0; Step + 1 < Seg.Txns.size() && AllSteps;
         ++Step) {
      unsigned From = M.MapTxn[Seg.Txns[Step]];
      unsigned To = M.MapTxn[Seg.Txns[Step + 1]];
      bool Any = false;
      for (unsigned EI : M.Graph.edgesBetween(From, To))
        for (int L : Seg.StepLabels[Step])
          Any = Any || M.Graph.edge(EI).Label == L;
      AllSteps = Any;
    }
    if (AllSteps)
      return true;
  }
  return false;
}

bool Run::generalizes(unsigned K, const AnalysisResult &R,
                      const std::vector<unsigned> &Universe) {
  // Any violation we could not conclusively analyze blocks generalization.
  for (const Violation &V : R.Violations)
    if (V.Inconclusive)
      return false;
  // A generalization claim covers *every* number of sessions; under an
  // expired deadline we cannot afford the evidence, so refuse (sound).
  if (DL->expired()) {
    DeadlineHit = true;
    return false;
  }
  bool Truncated = false;
  std::function<bool(const std::vector<std::vector<unsigned>> &)> Filter =
      [&](const std::vector<std::vector<unsigned>> &Layout) {
        // Segments are only examined on the layout holding exactly their
        // transactions (any segment of a larger layout is covered by its
        // exact one), so subsumption applies at layout granularity and the
        // spanning path must cover every transaction.
        if (layoutSubsumed(Layout, R.Violations))
          return false;
        if (layoutViable(Layout, /*Closed=*/false,
                         /*RequireAllNodes=*/true))
          return true;
        ++LayoutsFilteredGen;
        return false;
      };
  std::vector<Unfolding> Unfoldings;
  {
    StageTimer Timer(EnumSec);
    Unfoldings = enumerateUnfoldings(A, K, O.MaxUnfoldings, Truncated,
                                     &Universe, &Filter, DL);
  }
  if (DL->expired()) {
    DeadlineHit = true;
    return false;
  }
  if (Truncated) {
    if (std::getenv("C4_DEBUG_GEN"))
      std::fputs("gen blocked: unfolding enumeration truncated\n", stderr);
    return false;
  }

  // Transitive closure of the original may-follow relation (for merges).
  unsigned N = A.numTxns();
  std::vector<std::vector<bool>> SoClosure(N, std::vector<bool>(N, false));
  for (unsigned S = 0; S != N; ++S)
    for (unsigned T = 0; T != N; ++T)
      SoClosure[S][T] = A.maySo(S, T);
  for (unsigned M = 0; M != N; ++M)
    for (unsigned I = 0; I != N; ++I) {
      if (!SoClosure[I][M])
        continue;
      for (unsigned J = 0; J != N; ++J)
        if (SoClosure[M][J])
          SoClosure[I][J] = true;
    }

  long GenIndex = -1;
  for (const Unfolding &U : Unfoldings) {
    ++GenIndex;
    if (DL->expired()) {
      DeadlineHit = true;
      return false;
    }
    SSG G(U.H, O.Features, U.SessionTags);
    G.setOracle(Oracle);
    G.setSatAssist(Assist);
    G.setEventMask(maskForUnfolding(U));
    {
      StageTimer Timer(SSGSec);
      G.analyze();
    }
    // (a) Segments subsumed by known violations are dropped during
    // enumeration; (b) the cheap SSG-level short-cut (session merging)
    // handles most of the rest.
    std::vector<MergeCtx> Merges;
    bool MergesBuilt = false;
    std::function<bool(const CandidateCycle &)> Unsubsumed =
        [&](const CandidateCycle &Seg) {
          std::vector<unsigned> SegSet;
          for (unsigned T : Seg.Txns)
            SegSet.push_back(U.OrigTxn[T]);
          std::sort(SegSet.begin(), SegSet.end());
          SegSet.erase(std::unique(SegSet.begin(), SegSet.end()),
                       SegSet.end());
          for (const Violation &V : R.Violations)
            if (std::includes(SegSet.begin(), SegSet.end(),
                              V.OrigTxns.begin(), V.OrigTxns.end()))
              return false;
          return true;
        };
    bool SegTruncated = false;
    std::vector<CandidateCycle> Segments;
    {
      StageTimer Timer(SSGSec);
      Segments = G.spanningSegments(U.NumSessions, /*MaxSegments=*/4096,
                                    SegTruncated, U.OrigTxn, &Unsubsumed,
                                    /*RequireAllTxns=*/true);
    }
    if (SegTruncated) {
      if (std::getenv("C4_DEBUG_GEN"))
        std::fputs("gen blocked: segment enumeration truncated\n", stderr);
      return false;
    }
    if (Segments.empty())
      continue;

    std::vector<CandidateCycle> Remaining;
    for (CandidateCycle &Seg : Segments) {
      if (!MergesBuilt) {
        Merges = buildMerges(U, SoClosure);
        MergesBuilt = true;
      }
      if (!shortcutReducibleWith(Merges, Seg))
        Remaining.push_back(std::move(Seg));
    }
    if (Remaining.empty())
      continue;

    // (c) SMT: the remaining segments must be infeasible. Query in chunks
    // to keep individual encodings small.
    UnfoldingResult Res;
    Res.Status = UnfoldingResult::NoCycle;
    {
      StageTimer Timer(SmtSec);
      SolverPolicy P{O.Budget, DL};
      // One shared solver context per unfolding: the session layout's base
      // encoding (orders, control flow, facts) is built once and chunks
      // 2..n add only their cycle selectors under push/pop, instead of
      // re-encoding everything per chunk. Lazily built — unfoldings whose
      // chunks are all prefiltered or replayed never pay for an encoding.
      std::optional<LayoutSolver> LS;
      for (size_t Begin = 0;
           Begin < Remaining.size() &&
           Res.Status == UnfoldingResult::NoCycle;
           Begin += 64) {
        if (DL->expired()) {
          DeadlineHit = true;
          return false;
        }
        std::vector<CandidateCycle> Chunk(
            Remaining.begin() + Begin,
            Remaining.begin() +
                std::min(Remaining.size(), Begin + 64));
        SolveTelemetry Tel;
        double ChunkSec = 0;
        bool Prefiltered = false;
        bool Reused = false;
        // Incremental record lookup first (see solveOne): a persisted
        // NoCycle outcome replays the chunk's prefilter+solve counters.
        std::string RecKey;
        if (IncrOn && O.Incremental) {
          double IncrChunkSec = 0;
          {
            StageTimer IncrTimer(IncrChunkSec);
            RecKey = unfoldingRecordKey(IncrCtx, U, Chunk, "generalize");
            if (const IncrRecord *Rec = O.Incremental->lookup(RecKey)) {
              Reused = true;
              Prefiltered = Rec->Prefiltered;
              Res.Status = UnfoldingResult::NoCycle;
              Tel.Attempts = Rec->Attempts;
              Tel.CtxReuses = Rec->CtxReuses;
              Tel.RlimitBudget = Rec->RlimitBudget;
              if (Prefiltered)
                ++SmtQueriesPrefilteredGen;
              else
                ++SmtQueriesGen;
              PrefilterUnknownsGen += Rec->PrefilterUnknown;
              if (Tel.Attempts > 1)
                SmtRetriesGen += Tel.Attempts - 1;
              SolverCtxReusesGen += Tel.CtxReuses;
            }
          }
          IncrSec += IncrChunkSec;
          ChunkSec += IncrChunkSec;
        }
        bool PrefUnknown = false;
        if (!Reused) {
          // Domain prefilter per chunk, mirroring the bounded stage: when
          // every segment of the chunk dies, the NoCycle verdict needs no
          // Z3 query (in check mode the solve still runs, Z3 is trusted).
          if (O.UsePrefilter) {
            double PfSec = 0;
            {
              StageTimer PfTimer(PfSec);
              PrefilterResult PR =
                  prefilterCandidates(U, G, Chunk, O.Features, Oracle);
              Prefiltered = PR.allKilled();
            }
            PrefilterSec += PfSec;
            ChunkSec += PfSec;
            if (!Prefiltered) {
              ++PrefilterUnknownsGen;
              PrefUnknown = true;
            }
          }
          if (Prefiltered && !O.CheckPrefilter) {
            Res.Status = UnfoldingResult::NoCycle;
            ++SmtQueriesPrefilteredGen;
            if (!RecKey.empty())
              O.Incremental->record(RecKey, {/*Prefiltered=*/true,
                                             /*PrefilterUnknown=*/false,
                                             /*Attempts=*/0, /*CtxReuses=*/0,
                                             /*RlimitBudget=*/0});
          } else {
            {
              StageTimer ChunkTimer(ChunkSec);
              if (!LS)
                LS.emplace(U, G, O.Features, P, Oracle, &seqEnv(), green());
              Res = LS->solve(Chunk, &Tel);
            }
            if (Prefiltered) {
              if (Res.Status == UnfoldingResult::CycleFound) {
                ++PrefilterDisagreeGen; // Z3 refuted the domain proof
                Prefiltered = false;
                ++SmtQueriesGen;
              } else {
                Res.Status = UnfoldingResult::NoCycle;
                ++SmtQueriesPrefilteredGen;
              }
            } else {
              ++SmtQueriesGen;
            }
            if (Tel.Attempts > 1)
              SmtRetriesGen += Tel.Attempts - 1;
            RlimitSpentGen += Tel.RlimitSpent;
            SolverCtxReusesGen += Tel.CtxReuses;
            if (Tel.Attempts > 0)
              ++SmtSolvesGen;
            if (!RecKey.empty() &&
                Res.Status == UnfoldingResult::NoCycle && !Tel.Error)
              O.Incremental->record(RecKey, {/*Prefiltered=*/false,
                                             PrefUnknown, Tel.Attempts,
                                             Tel.CtxReuses,
                                             Tel.RlimitBudget});
          }
        }
        if (O.Trace) {
          QueryRecord Rec;
          Rec.Stage = "generalize";
          Rec.K = K;
          Rec.Unfolding = GenIndex;
          Rec.Attempts = Prefiltered || Reused || Tel.GreenHit
                             ? Tel.Attempts
                             : std::max(1u, Tel.Attempts);
          Rec.RlimitBudget = Tel.RlimitBudget;
          Rec.RlimitSpent = Tel.RlimitSpent;
          Rec.Outcome = Res.Status == UnfoldingResult::NoCycle ? "no-cycle"
                        : Res.Status == UnfoldingResult::CycleFound
                            ? "cycle"
                            : (Tel.Error ? "error" : "unknown");
          Rec.Prefiltered = Prefiltered;
          Rec.Reused = Reused || Tel.GreenHit;
          Rec.WallMs = ChunkSec * 1000.0;
          O.Trace->append(Rec);
        }
      }
    }
    if (Res.Status != UnfoldingResult::NoCycle) {
      if (std::getenv("C4_DEBUG_GEN")) {
        std::string Msg = "gen blocked in:";
        for (unsigned T = 0; T != U.H.numTxns(); ++T)
          Msg += strf(" %s/s%u", U.H.txn(T).Name.c_str(), U.SessionTags[T]);
        Msg += strf(" (%zu segs, status %d); first:",
                    Remaining.size(), static_cast<int>(Res.Status));
        for (unsigned T : Remaining.front().Txns)
          Msg += strf(" %u", T);
        for (const auto &L : Remaining.front().StepLabels) {
          Msg += " [";
          for (int X : L)
            Msg += strf("%d,", X);
          Msg += "]";
        }
        Msg += "\n";
        std::fputs(Msg.c_str(), stderr);
      }
      return false;
    }
  }
  return true;
}

void Run::execute(AnalysisResult &R) {
  precomputeGeneralEdges();
  // Stage 1: the fast general SSG analysis.
  bool FastProved = false;
  {
    StageTimer Timer(SSGSec);
    SSG General(A, O.Features);
    General.setOracle(Oracle);
    General.setSatAssist(Assist);
    General.setEventMask(Mask);
    General.analyze();
    R.SSGEdges +=
        static_cast<unsigned>(General.graph().edges().size());
    if (General.provesSerializable()) {
      FastProved = true;
    } else {
      // Stage 2 below consumes the suspicious components.
      Components = General.violations();
    }
  }
  if (FastProved) {
    R.FastProvedSerializable = true;
    R.Generalized = true;
    finishStats(R);
    return;
  }

  // Stage 2: per suspicious component (a minimal DSG cycle projects onto a
  // cycle of the SSG, hence into one strongly connected component), run
  // bounded checks with increasing k, then generalize (§7.2).
  bool AllGeneralized = true;
  for (const SSGViolation &Component : Components) {
    unsigned K = 2;
    bool Generalized = false;
    while (true) {
      if (DL->expired()) {
        // Deadline before this round started: nothing of it was checked,
        // so KChecked keeps its last fully-completed value.
        DeadlineHit = true;
        break;
      }
      bool Completed = checkBounded(K, R, Component.Txns);
      if (!Completed) {
        // Partial round: results committed so far are sound findings, but
        // the bound K was not exhaustively checked — it must not count, and
        // neither generalization nor completeness can be claimed.
        DeadlineHit = true;
        break;
      }
      R.KChecked = std::max(R.KChecked, K);
      ++K;
      if (generalizes(K, R, Component.Txns)) {
        Generalized = true;
        break;
      }
      if (K > O.MaxK)
        break;
    }
    AllGeneralized = AllGeneralized && Generalized;
  }
  R.Generalized = AllGeneralized;
  finishStats(R);
}

} // namespace

AnalysisResult c4::analyze(const AbstractHistory &A,
                           const AnalyzerOptions &O) {
  auto Start = std::chrono::steady_clock::now();
  AnalysisResult R;

  // The global deadline, shared by every Run (atomic sets share one budget:
  // the flag bounds the whole analysis, not each subset). A caller-owned
  // deadline takes precedence so the serving tier can cancel the run.
  Deadline OwnDL(O.DeadlineMs);
  const Deadline &DL = O.ExternalDeadline ? *O.ExternalDeadline : OwnDL;

  // One memoization oracle per analyze() call: the rewrite-spec conditions
  // and satisfiability verdicts are shared by every SSG instantiation and
  // SMT encoding of the run (across atomic sets, unfoldings and threads).
  // A caller-provided long-lived oracle (service / verdict cache) takes
  // precedence, carrying verdicts across runs.
  CommutativityOracle Oracle;
  CommutativityOracle *OraclePtr =
      !O.UseOracle ? nullptr
                   : (O.ExternalOracle ? O.ExternalOracle : &Oracle);

  // The domain assist strengthening the SSG stage's satisfiability tests
  // (oracle call site of the prefilter). Thread-safe: domainDecide is pure
  // and the check-mode counter is atomic. In check mode every domain proof
  // is cross-checked against Z3; a contradiction is counted and the
  // verdict degraded to Unknown so the congruence fallback (whose verdicts
  // Z3 vouches for separately) stays authoritative.
  std::atomic<unsigned> AssistDisagreements{0};
  SatAssist Assist;
  if (O.UsePrefilter) {
    bool Check = O.CheckPrefilter;
    Assist = [Check, &AssistDisagreements](
                 const Cond &C, const EventFacts &Src,
                 const EventFacts &Tgt) -> AssistVerdict {
      DomainVerdict V = domainDecide(C, Src, Tgt);
      if (V == DomainVerdict::Unknown)
        return AssistVerdict::Unknown;
      bool Sat = V == DomainVerdict::ProvenSat;
      if (Check && z3CondSatisfiable(C, Src, Tgt) != Sat) {
        AssistDisagreements.fetch_add(1, std::memory_order_relaxed);
        return AssistVerdict::Unknown;
      }
      return Sat ? AssistVerdict::Sat : AssistVerdict::Unsat;
    };
  }
  const SatAssist *AssistPtr = Assist ? &Assist : nullptr;

  // Base mask: the display-code filter.
  std::vector<bool> Base(A.numEvents(), true);
  if (O.DisplayFilter)
    for (unsigned E = 0; E != A.numEvents(); ++E)
      if (A.event(E).Display)
        Base[E] = false;

  // Transaction fingerprinting (once per analyze() call, not per atomic-set
  // sub-run): note every transaction's content digest in the incremental
  // store and count how many were already present in the persisted base —
  // the `txn_fingerprint_hits` signal of how much of the program survived
  // the edit unchanged.
  if (O.UseIncremental && !O.CheckPrefilter && O.Incremental) {
    StageTimer Timer(R.IncrementalSeconds);
    for (unsigned T = 0; T != A.numTxns(); ++T) {
      std::string D = txnContentDigest(A, T);
      R.TxnFingerprintHits += O.Incremental->baseHasTxn(D);
      O.Incremental->noteTxn(D);
    }
  }

  if (O.UseAtomicSets && !O.AtomicSets.empty()) {
    // Analyze each atomic set independently and merge.
    bool AllGeneralized = true, AllFast = true;
    for (const std::vector<unsigned> &Set : O.AtomicSets) {
      std::vector<bool> Mask = Base;
      for (unsigned E = 0; E != A.numEvents(); ++E) {
        if (A.event(E).isMarker())
          continue;
        bool In = std::find(Set.begin(), Set.end(),
                            A.event(E).Container) != Set.end();
        Mask[E] = Mask[E] && In;
      }
      AnalysisResult Sub;
      Run(A, O, std::move(Mask), OraclePtr, AssistPtr, &DL).execute(Sub);
      for (Violation &V : Sub.Violations) {
        bool Dup = false;
        for (const Violation &Old : R.Violations)
          Dup = Dup || Old.OrigTxns == V.OrigTxns;
        if (!Dup)
          R.Violations.push_back(std::move(V));
      }
      AllGeneralized = AllGeneralized && Sub.Generalized;
      // The whole app is fast-proved only when *every* atomic set was: one
      // SSG-clean set must not mask another set's SMT-stage work.
      AllFast = AllFast && Sub.FastProvedSerializable;
      R.KChecked = std::max(R.KChecked, Sub.KChecked);
      R.UnfoldingsChecked += Sub.UnfoldingsChecked;
      R.UnfoldingsSubsumed += Sub.UnfoldingsSubsumed;
      R.LayoutsFiltered += Sub.LayoutsFiltered;
      R.SSGEdges += Sub.SSGEdges;
      R.SmtQueries += Sub.SmtQueries;
      R.SmtQueriesPrefiltered += Sub.SmtQueriesPrefiltered;
      R.PrefilterUnknowns += Sub.PrefilterUnknowns;
      R.PrefilterDisagreements += Sub.PrefilterDisagreements;
      R.SSGFlagged += Sub.SSGFlagged;
      R.SMTRefuted += Sub.SMTRefuted;
      R.SMTUnknown += Sub.SMTUnknown;
      R.SMTRetries += Sub.SMTRetries;
      R.SmtSolves += Sub.SmtSolves;
      R.SolverCtxReuses += Sub.SolverCtxReuses;
      R.RlimitSpent += Sub.RlimitSpent;
      R.UnfoldingsDeferred += Sub.UnfoldingsDeferred;
      R.DfsBudgetExhausted += Sub.DfsBudgetExhausted;
      R.DeadlineExpired = R.DeadlineExpired || Sub.DeadlineExpired;
      R.Truncated = R.Truncated || Sub.Truncated;
      R.SSGSeconds += Sub.SSGSeconds;
      R.EnumSeconds += Sub.EnumSeconds;
      R.SmtSeconds += Sub.SmtSeconds;
      R.PrefilterSeconds += Sub.PrefilterSeconds;
      R.IncrementalSeconds += Sub.IncrementalSeconds;
    }
    R.Generalized = AllGeneralized;
    R.FastProvedSerializable = AllFast && R.Violations.empty();
  } else {
    Run(A, O, std::move(Base), OraclePtr, AssistPtr, &DL).execute(R);
  }

  R.PrefilterDisagreements +=
      AssistDisagreements.load(std::memory_order_relaxed);
  OracleStats OS = OraclePtr ? OraclePtr->stats() : OracleStats{};
  R.CondCacheHits = OS.CondHits;
  R.CondCacheMisses = OS.CondMisses;
  R.SatCacheHits = OS.SatHits;
  R.SatCacheMisses = OS.SatMisses;
  R.SatAssistProven = OS.SatAssistProven;
  R.PairVerdictsReused = OS.ImportedHits;
  if (O.Green && O.UseIncremental && !O.CheckPrefilter) {
    R.ConstraintCacheHits = O.Green->hits();
    R.ConstraintCacheMisses = O.Green->misses();
  }
  R.BackendSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return R;
}

std::string c4::reportStr(const AbstractHistory &A, const AnalysisResult &R) {
  std::string Out;
  if (R.serializable()) {
    Out += "result: serializable (for any number of sessions)\n";
  } else if (R.Violations.empty()) {
    if (R.DeadlineExpired)
      Out += strf("result: no violations found before the deadline "
                  "(checked up to k=%u; partial)\n",
                  R.KChecked);
    else
      Out += strf("result: no violations up to k=%u sessions "
                  "(generalization incomplete)\n",
                  R.KChecked);
  } else {
    // Triage: a solver-budget timeout must never read as a proven
    // violation, so the three classes are reported side by side.
    Out += strf("result: %zu violation(s): %u validated, %u unvalidated, "
                "%u inconclusive%s\n",
                R.Violations.size(), R.validatedViolations(),
                R.unvalidatedViolations(), R.inconclusiveViolations(),
                R.inconclusiveViolations() ? " (solver budget exhausted)"
                                           : "");
  }
  if (R.DeadlineExpired)
    Out += strf("deadline: analysis budget expired; checked up to k=%u, "
                "%u unfolding(s) deferred (partial but sound: reported "
                "violations are real findings, deferred work unchecked)\n",
                R.KChecked, R.UnfoldingsDeferred);
  for (const Violation &V : R.Violations) {
    Out += "violation involving transactions: " + join(V.TxnNames, ", ");
    if (V.Inconclusive)
      Out += " (inconclusive: solver budget exhausted)";
    else if (V.Validated)
      Out += " (validated counter-example)";
    Out += "\n";
    if (V.CE)
      Out += V.CE->Text;
    else if (!V.CEText.empty()) // cache-rehydrated: only the text survives
      Out += V.CEText;
  }
  Out += strf("stats: unfoldings checked %u, subsumed %u, "
              "layouts filtered %u, SSG-flagged %u, "
              "SMT-refuted %u, unknown %u, retries %u, deferred %u, "
              "dfs-budget-exhausted %u, backend %.3fs\n",
              R.UnfoldingsChecked, R.UnfoldingsSubsumed, R.LayoutsFiltered,
              R.SSGFlagged, R.SMTRefuted, R.SMTUnknown, R.SMTRetries,
              R.UnfoldingsDeferred, R.DfsBudgetExhausted, R.BackendSeconds);
  Out += strf("prefilter: %u quer%s killed, %u fell through, "
              "%u oracle-assisted verdict(s)%s; %.3fs\n",
              R.SmtQueriesPrefiltered,
              R.SmtQueriesPrefiltered == 1 ? "y" : "ies",
              R.PrefilterUnknowns,
              static_cast<unsigned>(R.SatAssistProven),
              R.PrefilterDisagreements
                  ? strf(", %u DISAGREEMENT(S)", R.PrefilterDisagreements)
                        .c_str()
                  : "",
              R.PrefilterSeconds);
  Out += strf("cache: cond %llu hits / %llu misses, sat %llu hits / "
              "%llu misses; rlimit spent %llu; stages: ssg %.3fs, "
              "enum %.3fs, smt %.3fs\n",
              static_cast<unsigned long long>(R.CondCacheHits),
              static_cast<unsigned long long>(R.CondCacheMisses),
              static_cast<unsigned long long>(R.SatCacheHits),
              static_cast<unsigned long long>(R.SatCacheMisses),
              static_cast<unsigned long long>(R.RlimitSpent),
              R.SSGSeconds, R.EnumSeconds, R.SmtSeconds);
  // The incremental layers only report when something was actually reused
  // (or attempted): cold runs without a cache keep their baseline report.
  if (R.TxnFingerprintHits || R.PairVerdictsReused || R.ConstraintCacheHits ||
      R.ConstraintCacheMisses || R.SolverCtxReuses)
    Out += strf("incremental: %llu txn fingerprint hit(s), %llu pair "
                "verdict(s) reused, constraint cache %llu hits / %llu "
                "misses, %llu solver ctx reuse(s); %.3fs\n",
                static_cast<unsigned long long>(R.TxnFingerprintHits),
                static_cast<unsigned long long>(R.PairVerdictsReused),
                static_cast<unsigned long long>(R.ConstraintCacheHits),
                static_cast<unsigned long long>(R.ConstraintCacheMisses),
                static_cast<unsigned long long>(R.SolverCtxReuses),
                R.IncrementalSeconds);
  (void)A;
  return Out;
}
