//===- analysis/Analyzer.cpp ----------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"

#include "abstract/Concretize.h"
#include "support/Format.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <set>

using namespace c4;

namespace {

/// Shared state of one analysis run (one event mask).
class Run {
public:
  Run(const AbstractHistory &A, const AnalyzerOptions &O,
      std::vector<bool> Mask)
      : A(A), O(O), Mask(std::move(Mask)) {}

  void execute(AnalysisResult &R);

private:
  bool subsumed(const Unfolding &U, const std::vector<Violation> &V) const;
  void checkBounded(unsigned K, AnalysisResult &R,
                    const std::vector<unsigned> &Universe);
  bool generalizes(unsigned K, const AnalysisResult &R,
                   const std::vector<unsigned> &Universe);
  std::vector<struct MergeCtx>
  buildMerges(const Unfolding &U,
              const std::vector<std::vector<bool>> &SoClosure);
  std::vector<bool> maskForUnfolding(const Unfolding &U) const;
  /// Returns true if a new violation was recorded (false on duplicates).
  bool recordViolation(AnalysisResult &R, std::vector<unsigned> OrigTxns,
                       std::optional<CounterExample> CE, bool Inconclusive);
  bool validateCE(const CounterExample &CE) const;

  /// Cheap pre-filter for session layouts: can the layout carry a
  /// candidate cycle (Closed) or a §7.2 spanning segment (open)? Checked on
  /// a mini-graph over the layout's transactions using the precomputed
  /// general SSG edges (a sound over-approximation of every instantiated
  /// SSG) plus intra-session order. Skipping a layout that fails avoids
  /// building its abstract history entirely.
  bool layoutViable(const std::vector<std::vector<unsigned>> &Layout,
                    bool Closed, bool RequireAllNodes) const;
  static bool layoutSubsumed(const std::vector<std::vector<unsigned>> &Layout,
                             const std::vector<Violation> &V);
  void precomputeGeneralEdges();

  const AbstractHistory &A;
  const AnalyzerOptions &O;
  std::vector<bool> Mask; // original events included in this run
  // General-SSG pairwise edges over original transactions (self-pairs
  // describe two instances of the same transaction).
  std::vector<std::vector<bool>> GenAny, GenAnti;
};

bool Run::layoutSubsumed(
    const std::vector<std::vector<unsigned>> &Layout,
    const std::vector<Violation> &V) {
  std::vector<unsigned> Set;
  for (const std::vector<unsigned> &Session : Layout)
    Set.insert(Set.end(), Session.begin(), Session.end());
  std::sort(Set.begin(), Set.end());
  Set.erase(std::unique(Set.begin(), Set.end()), Set.end());
  for (const Violation &Viol : V)
    if (std::includes(Set.begin(), Set.end(), Viol.OrigTxns.begin(),
                      Viol.OrigTxns.end()))
      return true;
  return false;
}

void Run::precomputeGeneralEdges() {
  SSG G(A, O.Features);
  G.setEventMask(Mask);
  G.analyze();
  unsigned N = A.numTxns();
  GenAny.assign(N, std::vector<bool>(N, false));
  GenAnti = GenAny;
  for (const Digraph::Edge &E : G.graph().edges()) {
    if (E.Label == DepSO)
      continue; // session order is layout-dependent; added per layout
    GenAny[E.From][E.To] = true;
    if (E.Label == DepAntiDep)
      GenAnti[E.From][E.To] = true;
  }
}

bool Run::layoutViable(const std::vector<std::vector<unsigned>> &Layout,
                       bool Closed, bool RequireAllNodes) const {
  // Mini-graph nodes: the layout's transaction instances.
  struct Node {
    unsigned Orig;
    unsigned Session;
  };
  std::vector<Node> Nodes;
  for (unsigned S = 0; S != Layout.size(); ++S)
    for (unsigned T : Layout[S])
      Nodes.push_back({T, S});
  unsigned N = static_cast<unsigned>(Nodes.size());
  unsigned FullMask = (1u << Layout.size()) - 1;

  auto HasEdge = [&](unsigned I, unsigned J, bool &Anti) {
    Anti = GenAnti[Nodes[I].Orig][Nodes[J].Orig];
    if (GenAny[Nodes[I].Orig][Nodes[J].Orig])
      return true;
    // Intra-session order: instances were listed in chain order.
    return Nodes[I].Session == Nodes[J].Session && I < J;
  };

  // DFS over simple paths: cover every session, use >= 1 anti edge, and
  // (for cycles) return to the start. The search is budgeted: on dense
  // mini-graphs we give up and conservatively keep the layout (the precise
  // machinery decides).
  std::vector<bool> OnPath(N, false);
  unsigned Covered = 0;
  unsigned Budget = 20000;
  std::function<bool(unsigned, unsigned, unsigned, bool)> Dfs =
      [&](unsigned Start, unsigned Node2, unsigned SessMask,
          bool Anti) -> bool {
    if (Budget == 0)
      return true; // budget exhausted: treat as viable
    --Budget;
    if (SessMask == FullMask && Anti &&
        (!RequireAllNodes || Covered == N)) {
      if (!Closed)
        return true;
      bool EdgeAnti = false;
      if (HasEdge(Node2, Start, EdgeAnti))
        return true;
    }
    for (unsigned Next = 0; Next != N; ++Next) {
      if (OnPath[Next])
        continue;
      bool EdgeAnti = false;
      if (!HasEdge(Node2, Next, EdgeAnti))
        continue;
      OnPath[Next] = true;
      ++Covered;
      if (Dfs(Start, Next, SessMask | (1u << Nodes[Next].Session),
              Anti || EdgeAnti)) {
        OnPath[Next] = false;
        --Covered;
        return true;
      }
      OnPath[Next] = false;
      --Covered;
    }
    return false;
  };
  for (unsigned Start = 0; Start != N; ++Start) {
    std::fill(OnPath.begin(), OnPath.end(), false);
    OnPath[Start] = true;
    Covered = 1;
    if (Dfs(Start, Start, 1u << Nodes[Start].Session, false))
      return true;
  }
  return false;
}

bool Run::subsumed(const Unfolding &U,
                   const std::vector<Violation> &V) const {
  std::vector<unsigned> Set = U.origTxnSet();
  for (const Violation &Viol : V)
    if (std::includes(Set.begin(), Set.end(), Viol.OrigTxns.begin(),
                      Viol.OrigTxns.end()))
      return true;
  return false;
}

std::vector<bool> Run::maskForUnfolding(const Unfolding &U) const {
  std::vector<bool> M(U.H.numEvents(), true);
  for (unsigned E = 0; E != U.H.numEvents(); ++E)
    M[E] = Mask[U.OrigEvent[E]];
  return M;
}

bool Run::recordViolation(AnalysisResult &R, std::vector<unsigned> OrigTxns,
                          std::optional<CounterExample> CE,
                          bool Inconclusive) {
  std::sort(OrigTxns.begin(), OrigTxns.end());
  OrigTxns.erase(std::unique(OrigTxns.begin(), OrigTxns.end()),
                 OrigTxns.end());
  for (const Violation &V : R.Violations)
    if (V.OrigTxns == OrigTxns)
      return false;
  Violation V;
  V.OrigTxns = std::move(OrigTxns);
  for (unsigned T : V.OrigTxns)
    V.TxnNames.push_back(A.txn(T).Name);
  V.CE = std::move(CE);
  V.Inconclusive = Inconclusive;
  R.Violations.push_back(std::move(V));
  return true;
}

bool Run::validateCE(const CounterExample &CE) const {
  // End-to-end check of the extracted witness: it must concretize the
  // abstract history and its schedule's DSG must be cyclic (the criterion's
  // definition of a violation). Validation can fail legitimately when the
  // S1 return-value fix-up changed a guard-feeding query, leaving a
  // pre-schedule witness (see DESIGN.md).
  if (!findConcretization(CE.H, A).has_value())
    return false;
  EventRelations Rel(CE.H);
  DependenceTriple T = computeDependencies(CE.H, CE.S, Rel);
  return buildDSG(CE.H, T).hasCycle();
}

void Run::checkBounded(unsigned K, AnalysisResult &R,
                       const std::vector<unsigned> &Universe) {
  bool Truncated = false;
  std::function<bool(const std::vector<std::vector<unsigned>> &)> Filter =
      [&](const std::vector<std::vector<unsigned>> &Layout) {
        if (layoutSubsumed(Layout, R.Violations)) {
          ++R.UnfoldingsSubsumed;
          return false;
        }
        return layoutViable(Layout, /*Closed=*/true,
                            /*RequireAllNodes=*/false);
      };
  std::vector<Unfolding> Unfoldings = enumerateUnfoldings(
      A, K, O.MaxUnfoldings, Truncated, &Universe, &Filter);
  R.Truncated = R.Truncated || Truncated;
  for (const Unfolding &U : Unfoldings) {
    if (subsumed(U, R.Violations)) {
      ++R.UnfoldingsSubsumed;
      continue;
    }
    ++R.UnfoldingsChecked;
    SSG G(U.H, O.Features, U.SessionTags);
    G.setEventMask(maskForUnfolding(U));
    G.analyze();
    bool CandTruncated = false;
    std::vector<CandidateCycle> Cands =
        G.candidateCycles(O.MaxCandidateCycles, CandTruncated);
    R.Truncated = R.Truncated || CandTruncated;
    if (Cands.empty())
      continue;
    ++R.SSGFlagged;
    UnfoldingResult Res =
        solveUnfolding(U, G, Cands, O.Features, O.SmtTimeoutMs);
    switch (Res.Status) {
    case UnfoldingResult::NoCycle:
      ++R.SMTRefuted;
      break;
    case UnfoldingResult::Unknown:
      ++R.SMTUnknown;
      // Sound default: report the unfolding's transactions as a potential
      // violation.
      recordViolation(R, U.origTxnSet(), std::nullopt,
                      /*Inconclusive=*/true);
      break;
    case UnfoldingResult::CycleFound: {
      // Copy the key first: the CE is moved into the violation.
      std::vector<unsigned> Key = Res.CE->OrigTxns;
      bool Valid = validateCE(*Res.CE);
      if (recordViolation(R, std::move(Key), std::move(Res.CE),
                          /*Inconclusive=*/false))
        R.Violations.back().Validated = Valid;
      break;
    }
    }
  }
}

/// The session layout of an unfolding: per session, the original
/// transaction ids in chain order.
static std::vector<std::vector<unsigned>>
sessionSpecs(const Unfolding &U) {
  std::vector<std::vector<unsigned>> Specs(U.NumSessions);
  // Transactions were instantiated session by session in chain order, so
  // increasing transaction id preserves both.
  for (unsigned T = 0; T != U.H.numTxns(); ++T)
    Specs[U.SessionTags[T]].push_back(U.OrigTxn[T]);
  return Specs;
}

/// A session merge of an unfolding: the transaction mapping into the merged
/// unfolding plus the merged instantiated SSG.
struct MergeCtx {
  std::vector<unsigned> MapTxn;
  Digraph Graph;
};

/// Builds all legal one-session merges of \p U (session J appended to
/// session I when the abstract session order permits) with their SSGs.
std::vector<MergeCtx>
Run::buildMerges(const Unfolding &U,
                 const std::vector<std::vector<bool>> &SoClosure) {
  std::vector<MergeCtx> Result;
  std::vector<std::vector<unsigned>> Specs = sessionSpecs(U);
  std::vector<std::vector<unsigned>> OldIds(U.NumSessions);
  for (unsigned T = 0; T != U.H.numTxns(); ++T)
    OldIds[U.SessionTags[T]].push_back(T);
  for (unsigned I = 0; I != U.NumSessions; ++I)
    for (unsigned J = 0; J != U.NumSessions; ++J) {
      if (I == J || Specs[I].empty() || Specs[J].empty())
        continue;
      if (!SoClosure[Specs[I].back()][Specs[J].front()])
        continue;
      std::vector<std::vector<unsigned>> Merged;
      std::vector<unsigned> MapTxn(U.H.numTxns(), 0);
      unsigned Next = 0;
      for (unsigned S = 0; S != U.NumSessions; ++S) {
        if (S == J)
          continue;
        std::vector<unsigned> Spec = Specs[S];
        for (unsigned T : OldIds[S])
          MapTxn[T] = Next++;
        if (S == I) {
          Spec.insert(Spec.end(), Specs[J].begin(), Specs[J].end());
          for (unsigned T : OldIds[J])
            MapTxn[T] = Next++;
        }
        Merged.push_back(std::move(Spec));
      }
      Unfolding MU = buildUnfolding(A, Merged);
      SSG G(MU.H, O.Features, MU.SessionTags);
      G.setEventMask(maskForUnfolding(MU));
      G.analyze();
      Result.push_back({std::move(MapTxn), G.graph()});
    }
  return Result;
}

/// §7.2 short-cut: can the segment pattern be reduced by one session? We
/// merge the transactions of one spanned session onto the end of another
/// (when the abstract session order permits) and check that every segment
/// step still has an SSG edge with one of its labels in the merged
/// unfolding. If so, any cycle containing the segment transforms into a
/// cycle over fewer sessions with the same syntactic transactions, which
/// the bounded check (or a further reduction) covers.
static bool shortcutReducibleWith(const std::vector<MergeCtx> &Merges,
                                  const CandidateCycle &Seg) {
  for (const MergeCtx &M : Merges) {
    bool AllSteps = true;
    for (unsigned Step = 0; Step + 1 < Seg.Txns.size() && AllSteps;
         ++Step) {
      unsigned From = M.MapTxn[Seg.Txns[Step]];
      unsigned To = M.MapTxn[Seg.Txns[Step + 1]];
      bool Any = false;
      for (unsigned EI : M.Graph.edgesBetween(From, To))
        for (int L : Seg.StepLabels[Step])
          Any = Any || M.Graph.edge(EI).Label == L;
      AllSteps = Any;
    }
    if (AllSteps)
      return true;
  }
  return false;
}

bool Run::generalizes(unsigned K, const AnalysisResult &R,
                      const std::vector<unsigned> &Universe) {
  // Any violation we could not conclusively analyze blocks generalization.
  for (const Violation &V : R.Violations)
    if (V.Inconclusive)
      return false;
  bool Truncated = false;
  std::function<bool(const std::vector<std::vector<unsigned>> &)> Filter =
      [&](const std::vector<std::vector<unsigned>> &Layout) {
        // Segments are only examined on the layout holding exactly their
        // transactions (any segment of a larger layout is covered by its
        // exact one), so subsumption applies at layout granularity and the
        // spanning path must cover every transaction.
        if (layoutSubsumed(Layout, R.Violations))
          return false;
        return layoutViable(Layout, /*Closed=*/false,
                            /*RequireAllNodes=*/true);
      };
  std::vector<Unfolding> Unfoldings = enumerateUnfoldings(
      A, K, O.MaxUnfoldings, Truncated, &Universe, &Filter);
  if (Truncated) {
    if (std::getenv("C4_DEBUG_GEN"))
      std::fputs("gen blocked: unfolding enumeration truncated\n", stderr);
    return false;
  }

  // Transitive closure of the original may-follow relation (for merges).
  unsigned N = A.numTxns();
  std::vector<std::vector<bool>> SoClosure(N, std::vector<bool>(N, false));
  for (unsigned S = 0; S != N; ++S)
    for (unsigned T = 0; T != N; ++T)
      SoClosure[S][T] = A.maySo(S, T);
  for (unsigned M = 0; M != N; ++M)
    for (unsigned I = 0; I != N; ++I) {
      if (!SoClosure[I][M])
        continue;
      for (unsigned J = 0; J != N; ++J)
        if (SoClosure[M][J])
          SoClosure[I][J] = true;
    }

  for (const Unfolding &U : Unfoldings) {
    SSG G(U.H, O.Features, U.SessionTags);
    G.setEventMask(maskForUnfolding(U));
    G.analyze();
    // (a) Segments subsumed by known violations are dropped during
    // enumeration; (b) the cheap SSG-level short-cut (session merging)
    // handles most of the rest.
    std::vector<MergeCtx> Merges;
    bool MergesBuilt = false;
    std::function<bool(const CandidateCycle &)> Unsubsumed =
        [&](const CandidateCycle &Seg) {
          std::vector<unsigned> SegSet;
          for (unsigned T : Seg.Txns)
            SegSet.push_back(U.OrigTxn[T]);
          std::sort(SegSet.begin(), SegSet.end());
          SegSet.erase(std::unique(SegSet.begin(), SegSet.end()),
                       SegSet.end());
          for (const Violation &V : R.Violations)
            if (std::includes(SegSet.begin(), SegSet.end(),
                              V.OrigTxns.begin(), V.OrigTxns.end()))
              return false;
          return true;
        };
    bool SegTruncated = false;
    std::vector<CandidateCycle> Segments =
        G.spanningSegments(U.NumSessions, /*MaxSegments=*/4096, SegTruncated,
                           U.OrigTxn, &Unsubsumed,
                           /*RequireAllTxns=*/true);
    if (SegTruncated) {
      if (std::getenv("C4_DEBUG_GEN"))
        std::fputs("gen blocked: segment enumeration truncated\n", stderr);
      return false;
    }
    if (Segments.empty())
      continue;

    std::vector<CandidateCycle> Remaining;
    for (CandidateCycle &Seg : Segments) {
      if (!MergesBuilt) {
        Merges = buildMerges(U, SoClosure);
        MergesBuilt = true;
      }
      if (!shortcutReducibleWith(Merges, Seg))
        Remaining.push_back(std::move(Seg));
    }
    if (Remaining.empty())
      continue;

    // (c) SMT: the remaining segments must be infeasible. Query in chunks
    // to keep individual encodings small.
    UnfoldingResult Res;
    Res.Status = UnfoldingResult::NoCycle;
    for (size_t Begin = 0;
         Begin < Remaining.size() && Res.Status == UnfoldingResult::NoCycle;
         Begin += 64) {
      std::vector<CandidateCycle> Chunk(
          Remaining.begin() + Begin,
          Remaining.begin() +
              std::min(Remaining.size(), Begin + 64));
      Res = solveUnfolding(U, G, Chunk, O.Features, O.SmtTimeoutMs);
    }
    if (Res.Status != UnfoldingResult::NoCycle) {
      if (std::getenv("C4_DEBUG_GEN")) {
        std::string Msg = "gen blocked in:";
        for (unsigned T = 0; T != U.H.numTxns(); ++T)
          Msg += strf(" %s/s%u", U.H.txn(T).Name.c_str(), U.SessionTags[T]);
        Msg += strf(" (%zu segs, status %d); first:",
                    Remaining.size(), static_cast<int>(Res.Status));
        for (unsigned T : Remaining.front().Txns)
          Msg += strf(" %u", T);
        for (const auto &L : Remaining.front().StepLabels) {
          Msg += " [";
          for (int X : L)
            Msg += strf("%d,", X);
          Msg += "]";
        }
        Msg += "\n";
        std::fputs(Msg.c_str(), stderr);
      }
      return false;
    }
  }
  return true;
}

void Run::execute(AnalysisResult &R) {
  precomputeGeneralEdges();
  // Stage 1: the fast general SSG analysis.
  SSG General(A, O.Features);
  General.setEventMask(Mask);
  General.analyze();
  if (General.provesSerializable()) {
    R.FastProvedSerializable = true;
    R.Generalized = true;
    return;
  }

  // Stage 2: per suspicious component (a minimal DSG cycle projects onto a
  // cycle of the SSG, hence into one strongly connected component), run
  // bounded checks with increasing k, then generalize (§7.2).
  bool AllGeneralized = true;
  for (const SSGViolation &Component : General.violations()) {
    unsigned K = 2;
    bool Generalized = false;
    while (true) {
      checkBounded(K, R, Component.Txns);
      R.KChecked = std::max(R.KChecked, K);
      ++K;
      if (generalizes(K, R, Component.Txns)) {
        Generalized = true;
        break;
      }
      if (K > O.MaxK)
        break;
    }
    AllGeneralized = AllGeneralized && Generalized;
  }
  R.Generalized = AllGeneralized;
}

} // namespace

AnalysisResult c4::analyze(const AbstractHistory &A,
                           const AnalyzerOptions &O) {
  auto Start = std::chrono::steady_clock::now();
  AnalysisResult R;

  // Base mask: the display-code filter.
  std::vector<bool> Base(A.numEvents(), true);
  if (O.DisplayFilter)
    for (unsigned E = 0; E != A.numEvents(); ++E)
      if (A.event(E).Display)
        Base[E] = false;

  if (O.UseAtomicSets && !O.AtomicSets.empty()) {
    // Analyze each atomic set independently and merge.
    bool AllGeneralized = true, AnyFast = false;
    for (const std::vector<unsigned> &Set : O.AtomicSets) {
      std::vector<bool> Mask = Base;
      for (unsigned E = 0; E != A.numEvents(); ++E) {
        if (A.event(E).isMarker())
          continue;
        bool In = std::find(Set.begin(), Set.end(),
                            A.event(E).Container) != Set.end();
        Mask[E] = Mask[E] && In;
      }
      AnalysisResult Sub;
      Run(A, O, std::move(Mask)).execute(Sub);
      for (Violation &V : Sub.Violations) {
        bool Dup = false;
        for (const Violation &Old : R.Violations)
          Dup = Dup || Old.OrigTxns == V.OrigTxns;
        if (!Dup)
          R.Violations.push_back(std::move(V));
      }
      AllGeneralized = AllGeneralized && Sub.Generalized;
      AnyFast = AnyFast || Sub.FastProvedSerializable;
      R.KChecked = std::max(R.KChecked, Sub.KChecked);
      R.UnfoldingsChecked += Sub.UnfoldingsChecked;
      R.UnfoldingsSubsumed += Sub.UnfoldingsSubsumed;
      R.SSGFlagged += Sub.SSGFlagged;
      R.SMTRefuted += Sub.SMTRefuted;
      R.SMTUnknown += Sub.SMTUnknown;
      R.Truncated = R.Truncated || Sub.Truncated;
    }
    R.Generalized = AllGeneralized;
    R.FastProvedSerializable = AnyFast && R.Violations.empty();
  } else {
    Run(A, O, std::move(Base)).execute(R);
  }

  R.BackendSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return R;
}

std::string c4::reportStr(const AbstractHistory &A, const AnalysisResult &R) {
  std::string Out;
  if (R.serializable()) {
    Out += "result: serializable (for any number of sessions)\n";
  } else if (R.Violations.empty()) {
    Out += strf("result: no violations up to k=%u sessions "
                "(generalization incomplete)\n",
                R.KChecked);
  } else {
    Out += strf("result: %zu violation(s)\n", R.Violations.size());
  }
  for (const Violation &V : R.Violations) {
    Out += "violation involving transactions: " + join(V.TxnNames, ", ");
    if (V.Inconclusive)
      Out += " (inconclusive: solver timeout)";
    else if (V.Validated)
      Out += " (validated counter-example)";
    Out += "\n";
    if (V.CE)
      Out += V.CE->Text;
  }
  Out += strf("stats: unfoldings checked %u, subsumed %u, SSG-flagged %u, "
              "SMT-refuted %u, unknown %u, backend %.3fs\n",
              R.UnfoldingsChecked, R.UnfoldingsSubsumed, R.SSGFlagged,
              R.SMTRefuted, R.SMTUnknown, R.BackendSeconds);
  (void)A;
  return Out;
}
