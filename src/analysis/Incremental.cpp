//===- analysis/Incremental.cpp -------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "analysis/Incremental.h"

#include "abstract/AbstractHistory.h"
#include "analysis/Analyzer.h"
#include "ssg/SSG.h"
#include "support/Fingerprint.h"
#include "unfold/Unfolder.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

using namespace c4;

namespace {

constexpr const char *SnapshotHeader = "c4-incr-snapshot 1";

} // namespace

std::string c4::txnContentDigest(const AbstractHistory &A, unsigned T) {
  const AbstractTxn &Txn = A.txn(T);
  // Global event id -> position within this transaction. Every event
  // reference in the digest goes through this map, so the digest is
  // unaffected by how many events *other* transactions contribute to the
  // global numbering.
  std::unordered_map<unsigned, unsigned> Local;
  Local.reserve(Txn.Events.size());
  for (unsigned I = 0; I != Txn.Events.size(); ++I)
    Local.emplace(Txn.Events[I], I);
  auto LocalId = [&Local](unsigned E) -> uint64_t {
    auto It = Local.find(E);
    // References outside the transaction cannot occur by construction;
    // treat one defensively as a distinct out-of-band value.
    return It == Local.end() ? ~uint64_t{0} : It->second;
  };

  Fingerprint F;
  F.addStr("c4-txn-digest-1");
  F.addU64(Txn.Events.size());
  for (unsigned E : Txn.Events) {
    const AbstractEvent &Ev = A.event(E);
    F.addU64(Ev.Container);
    F.addU64(Ev.Op);
    F.addBool(Ev.Display);
    F.addStr(Ev.Label);
    F.addU64(Ev.Facts.size());
    for (const AbsFact &Fact : Ev.Facts) {
      F.addU64(static_cast<uint64_t>(Fact.Kind));
      F.addI64(Fact.Value);
      // A FreshVar fact names its creator *event*; localize it like the
      // constraint endpoints. Local/global variable ids are program-level
      // names shared across transactions and stay as-is.
      if (Fact.Kind == AbsFact::FreshVar)
        F.addU64(LocalId(Fact.Var));
      else
        F.addU64(Fact.Var);
    }
  }
  auto AddConstraints = [&](const std::vector<AbstractConstraint> &Cs) {
    F.addU64(Cs.size());
    for (const AbstractConstraint &C : Cs) {
      F.addU64(LocalId(C.Src));
      F.addU64(LocalId(C.Tgt));
      F.addStr(C.C.str());
    }
  };
  AddConstraints(Txn.Eo);
  AddConstraints(Txn.Invs);
  return F.digest();
}

std::string c4::incrementalContextDigest(const AbstractHistory &A,
                                         const AnalyzerOptions &O,
                                         const std::vector<bool> &Mask) {
  Fingerprint F;
  F.addStr("c4-incr-ctx-1");
  F.addU64(kSpecRevision);

  // Schema: the digested container/op ids below are indices into it.
  const Schema &S = A.schema();
  F.addU64(S.numContainers());
  for (unsigned C = 0; C != S.numContainers(); ++C) {
    const ContainerDecl &D = S.container(C);
    F.addStr(D.Name);
    F.addStr(D.Type->name());
    F.addU64(D.Type->ops().size());
    for (const OpSig &Op : D.Type->ops()) {
      F.addStr(Op.Name);
      F.addU64(static_cast<uint64_t>(Op.Kind));
      F.addU64(Op.NumArgs);
      F.addBool(Op.HasRet);
      F.addBool(Op.Fresh);
    }
  }
  // Variable ids in the per-transaction fact digests are program-level
  // names; the counts pin the numbering universe.
  F.addU64(A.numLocalVars());
  F.addU64(A.numGlobalVars());
  // The run's event mask (display filter / atomic set): masked events
  // change SSG edges and hence candidate sets and formulas.
  F.addU64(Mask.size());
  for (bool B : Mask)
    F.addBool(B);

  // Options shaping the per-query formula, outcome or replayed counters.
  // Enumeration-level knobs (MaxK, MaxUnfoldings, deadlines) are absent:
  // records are per-unfolding and do not depend on how many unfoldings a
  // run enumerates.
  F.addBool(O.Features.Commutativity);
  F.addBool(O.Features.Absorption);
  F.addBool(O.Features.Constraints);
  F.addBool(O.Features.ControlFlow);
  F.addBool(O.Features.AsymmetricAntiDeps);
  F.addBool(O.Features.UniqueValues);
  F.addU64(O.MaxCandidateCycles);
  F.addU64(O.Budget.Rlimit);
  F.addU64(O.Budget.Escalation);
  F.addU64(O.Budget.MaxRetries);
  F.addU64(O.Budget.RlimitCap);
  F.addU64(O.Budget.WallMs);
  F.addBool(O.UsePrefilter);
  F.addBool(O.DisplayFilter);
  return F.digest();
}

std::string c4::unfoldingRecordKey(const std::string &Context,
                                   const Unfolding &U,
                                   const std::vector<CandidateCycle> &Cands,
                                   const char *Stage) {
  Fingerprint F;
  F.addStr("c4-incr-key-1");
  F.addStr(Context);
  F.addStr(Stage);
  F.addU64(U.NumSessions);
  F.addU64(U.H.numTxns());
  for (unsigned T = 0; T != U.H.numTxns(); ++T) {
    F.addU64(U.SessionTags[T]);
    F.addStr(txnContentDigest(U.H, T));
  }
  F.addU64(Cands.size());
  for (const CandidateCycle &C : Cands) {
    F.addBool(C.Closed);
    F.addU64(C.Txns.size());
    for (unsigned T : C.Txns)
      F.addU64(T);
    F.addU64(C.StepLabels.size());
    for (const std::vector<int> &Step : C.StepLabels) {
      F.addU64(Step.size());
      for (int L : Step)
        F.addI64(L);
    }
  }
  return F.digest();
}

//===----------------------------------------------------------------------===//
// Snapshot
//===----------------------------------------------------------------------===//

void IncrementalSnapshot::merge(const IncrementalSnapshot &O) {
  TxnDigests.insert(O.TxnDigests.begin(), O.TxnDigests.end());
  for (const auto &[Key, Rec] : O.Records)
    Records.emplace(Key, Rec);
}

std::string IncrementalSnapshot::serialize() const {
  std::string Out = SnapshotHeader;
  Out += '\n';
  Out += "txns " + std::to_string(TxnDigests.size()) + '\n';
  for (const std::string &D : TxnDigests) {
    Out += D;
    Out += '\n';
  }
  Out += "records " + std::to_string(Records.size()) + '\n';
  for (const auto &[Key, R] : Records) {
    Out += Key;
    Out += ' ';
    Out += std::to_string(R.Prefiltered);
    Out += ' ';
    Out += std::to_string(R.PrefilterUnknown);
    Out += ' ';
    Out += std::to_string(R.Attempts);
    Out += ' ';
    Out += std::to_string(R.CtxReuses);
    Out += ' ';
    Out += std::to_string(R.RlimitBudget);
    Out += '\n';
  }
  return Out;
}

std::optional<IncrementalSnapshot>
IncrementalSnapshot::deserialize(const std::string &B) {
  size_t Pos = 0;
  auto NextLine = [&]() -> std::optional<std::string> {
    if (Pos >= B.size())
      return std::nullopt;
    size_t NL = B.find('\n', Pos);
    if (NL == std::string::npos)
      return std::nullopt;
    std::string L = B.substr(Pos, NL - Pos);
    Pos = NL + 1;
    return L;
  };
  auto Count = [&](const char *Key) -> std::optional<unsigned long long> {
    auto L = NextLine();
    size_t KeyLen = std::strlen(Key);
    if (!L || L->size() < KeyLen + 2 || L->compare(0, KeyLen, Key) != 0 ||
        (*L)[KeyLen] != ' ')
      return std::nullopt;
    char *End = nullptr;
    errno = 0;
    unsigned long long N = std::strtoull(L->c_str() + KeyLen + 1, &End, 10);
    if (errno == ERANGE || !End || *End || N > 10000000ull)
      return std::nullopt;
    return N;
  };

  auto Header = NextLine();
  if (!Header || *Header != SnapshotHeader)
    return std::nullopt;
  IncrementalSnapshot S;
  auto NumTxns = Count("txns");
  if (!NumTxns)
    return std::nullopt;
  for (unsigned long long I = 0; I != *NumTxns; ++I) {
    auto D = NextLine();
    if (!D || D->empty())
      return std::nullopt;
    S.TxnDigests.insert(*D);
  }
  auto NumRecords = Count("records");
  if (!NumRecords)
    return std::nullopt;
  for (unsigned long long I = 0; I != *NumRecords; ++I) {
    auto L = NextLine();
    if (!L)
      return std::nullopt;
    size_t Sp = L->find(' ');
    if (Sp == std::string::npos || Sp == 0)
      return std::nullopt;
    std::string Key = L->substr(0, Sp);
    unsigned long long V[5];
    const char *P = L->c_str() + Sp;
    for (int J = 0; J != 5; ++J) {
      if (*P != ' ')
        return std::nullopt;
      char *End = nullptr;
      errno = 0;
      V[J] = std::strtoull(P + 1, &End, 10);
      if (errno == ERANGE || !End || End == P + 1)
        return std::nullopt;
      P = End;
    }
    if (*P || V[0] > 1 || V[1] > 1 || V[2] > 0xFFFFFFFFull ||
        V[3] > 0xFFFFFFFFull)
      return std::nullopt;
    IncrRecord R;
    R.Prefiltered = V[0] != 0;
    R.PrefilterUnknown = V[1] != 0;
    R.Attempts = static_cast<unsigned>(V[2]);
    R.CtxReuses = static_cast<unsigned>(V[3]);
    R.RlimitBudget = V[4];
    S.Records.emplace(std::move(Key), R);
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Store
//===----------------------------------------------------------------------===//

const IncrRecord *IncrementalStore::lookup(const std::string &Key) {
  const IncrRecord *Rec = Base ? Base->record(Key) : nullptr;
  if (Rec)
    Hits.fetch_add(1, std::memory_order_relaxed);
  else
    Misses.fetch_add(1, std::memory_order_relaxed);
  return Rec;
}

void IncrementalStore::record(const std::string &Key, const IncrRecord &Rec) {
  std::lock_guard<std::mutex> Lock(Mu);
  Fresh.emplace(Key, Rec);
}

void IncrementalStore::noteTxn(const std::string &Digest) {
  std::lock_guard<std::mutex> Lock(Mu);
  FreshTxns.insert(Digest);
}

void IncrementalStore::exportInto(IncrementalSnapshot &Out) const {
  std::lock_guard<std::mutex> Lock(Mu);
  for (const std::string &D : FreshTxns)
    Out.addTxn(D);
  for (const auto &[Key, Rec] : Fresh)
    Out.addRecord(Key, Rec);
}
