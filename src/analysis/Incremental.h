//===- analysis/Incremental.h - Per-transaction incremental reuse -*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental re-analysis layer: content-addressed reuse of
/// per-unfolding NoCycle proofs across runs, keyed so that an edit to one
/// transaction invalidates only the queries that touch it.
///
/// Three digests cooperate:
///
///  * `txnContentDigest` — a *name-free* digest of one transaction's
///    content (its events' containers, ops, facts and labels plus the
///    eo/invariant constraints, with every event reference localized to
///    the transaction). Renaming a transaction, or editing a *different*
///    transaction, leaves the digest unchanged — that is the invalidation
///    granularity the whole layer is built on.
///
///  * `incrementalContextDigest` — the run-level environment a per-query
///    verdict depends on beyond the unfolding's own content: spec revision,
///    schema, variable counts, the event mask and every option that shapes
///    the ϕ_cyclic query or the statistics it produces (features, solver
///    budget, prefilter mode). Runs with different contexts never share
///    records.
///
///  * `unfoldingRecordKey` — context + the unfolding's session layout
///    (session tag and name-free content digest per instantiated
///    transaction, in instantiation order) + the exact candidate set +
///    the pipeline stage. Two unfoldings with this key produce the same
///    solver query and the same prefilter behavior, so a NoCycle outcome
///    recorded under it can be replayed, counters included.
///
/// Only NoCycle outcomes are stored: a CycleFound verdict carries a
/// counter-example whose text names the *current* program's transactions,
/// so it is always re-solved (keeping warm-run output byte-identical to a
/// cold run of the edited program), and unknown/cancelled outcomes are
/// timing accidents that must not be frozen.
///
/// Determinism contract (same as the oracle snapshot and the constraint
/// cache): lookups consult only the immutable base snapshot loaded at run
/// start; fresh records are collected run-locally and merged after the
/// run, so hit/miss counters are independent of thread count.
///
//===----------------------------------------------------------------------===//

#ifndef C4_ANALYSIS_INCREMENTAL_H
#define C4_ANALYSIS_INCREMENTAL_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace c4 {

class AbstractHistory;
struct AnalyzerOptions;
struct CandidateCycle;
struct Unfolding;

/// One cached per-unfolding (or per-chunk) NoCycle outcome. Besides the
/// verdict itself the record replays the counters the cold run produced,
/// so a warm run's non-timing statistics match a cold run's.
struct IncrRecord {
  bool Prefiltered = false;      ///< the domain prefilter killed every
                                 ///< candidate; no Z3 query was built
  bool PrefilterUnknown = false; ///< the prefilter ran but fell through
  unsigned Attempts = 0;         ///< solve attempts of the cold run
  unsigned CtxReuses = 0;        ///< solver-context reuses (retry re-checks)
  uint64_t RlimitBudget = 0;     ///< rlimit budget of the last attempt
};

/// A portable image of the incremental layer, the unit of cross-run
/// persistence: the NoCycle records plus the set of transaction content
/// digests seen (powering the txn_fingerprint_hits statistic). Keys are
/// content digests, so entries survive transaction renames and are valid
/// across programs. Kept sorted — serialize() is deterministic.
class IncrementalSnapshot {
public:
  size_t numRecords() const { return Records.size(); }
  size_t numTxns() const { return TxnDigests.size(); }
  bool empty() const { return Records.empty() && TxnDigests.empty(); }

  const IncrRecord *record(const std::string &Key) const {
    auto It = Records.find(Key);
    return It == Records.end() ? nullptr : &It->second;
  }
  void addRecord(const std::string &Key, const IncrRecord &Rec) {
    Records.emplace(Key, Rec);
  }
  bool hasTxn(const std::string &Digest) const {
    return TxnDigests.count(Digest) != 0;
  }
  void addTxn(const std::string &Digest) { TxnDigests.insert(Digest); }

  /// Union with \p O. On a key collision both sides hold the same record
  /// (records are pure functions of the key); the existing one is kept.
  void merge(const IncrementalSnapshot &O);

  /// Versioned text serialization (sorted, deterministic).
  std::string serialize() const;

  /// Parses a blob produced by serialize(). Returns nullopt on a malformed
  /// or version-mismatched blob — callers treat that as an empty cache.
  static std::optional<IncrementalSnapshot> deserialize(const std::string &B);

private:
  std::set<std::string> TxnDigests;
  std::map<std::string, IncrRecord> Records;
};

/// The run-facing store: an immutable base consulted for lookups plus a
/// run-local overlay of fresh records. Thread-safe.
class IncrementalStore {
public:
  /// \p BaseSnap may be null (empty base). It must outlive the store.
  explicit IncrementalStore(const IncrementalSnapshot *BaseSnap)
      : Base(BaseSnap) {}
  IncrementalStore(const IncrementalStore &) = delete;
  IncrementalStore &operator=(const IncrementalStore &) = delete;

  /// The base's record for \p Key, or null. Counts a hit or a miss.
  const IncrRecord *lookup(const std::string &Key);

  /// Records a fresh NoCycle outcome into the run-local overlay (never
  /// consulted by lookup — see the determinism contract).
  void record(const std::string &Key, const IncrRecord &Rec);

  bool baseHasTxn(const std::string &Digest) const {
    return Base && Base->hasTxn(Digest);
  }
  /// Notes a transaction digest of the current program for export.
  void noteTxn(const std::string &Digest);

  /// Drains the run-local overlay into \p Out (merging).
  void exportInto(IncrementalSnapshot &Out) const;

  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }

private:
  const IncrementalSnapshot *Base;
  mutable std::mutex Mu;
  std::map<std::string, IncrRecord> Fresh;
  std::set<std::string> FreshTxns;
  std::atomic<uint64_t> Hits{0}, Misses{0};
};

/// Name-free content digest of transaction \p T of \p A: events (container,
/// op, display flag, label, facts) in transaction order plus the eo and
/// invariant constraints, with global event references rewritten to
/// transaction-local indices. The transaction's *name* is deliberately
/// excluded, as is anything about other transactions.
std::string txnContentDigest(const AbstractHistory &A, unsigned T);

/// Digest of the run-level environment per-query verdicts depend on (see
/// the file comment). \p Mask is the run's event mask over \p A's events.
std::string incrementalContextDigest(const AbstractHistory &A,
                                     const AnalyzerOptions &O,
                                     const std::vector<bool> &Mask);

/// Record key for one solver query: \p Context + the unfolding's session
/// layout with name-free per-transaction digests + the exact candidate set
/// + \p Stage ("bounded" or "generalize").
std::string unfoldingRecordKey(const std::string &Context, const Unfolding &U,
                               const std::vector<CandidateCycle> &Cands,
                               const char *Stage);

} // namespace c4

#endif // C4_ANALYSIS_INCREMENTAL_H
