//===- analysis/VerdictCache.cpp ------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "analysis/VerdictCache.h"

#include "abstract/AbstractHistory.h"
#include "support/Fingerprint.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace c4;

//===----------------------------------------------------------------------===//
// Fingerprint
//===----------------------------------------------------------------------===//

std::string c4::fingerprintAnalysis(const AbstractHistory &A,
                                    const AnalyzerOptions &O) {
  Fingerprint F;
  // Format + spec versioning: either bump invalidates every prior entry.
  F.addStr("c4-analysis-fp-1");
  F.addU64(kSpecRevision);

  // Schema: container names with their types' full op signatures (custom
  // registered types must not collide with built-ins of the same shape).
  const Schema &S = A.schema();
  F.addU64(S.numContainers());
  for (unsigned C = 0; C != S.numContainers(); ++C) {
    const ContainerDecl &D = S.container(C);
    F.addStr(D.Name);
    F.addStr(D.Type->name());
    F.addU64(D.Type->ops().size());
    for (const OpSig &Op : D.Type->ops()) {
      F.addStr(Op.Name);
      F.addU64(static_cast<uint64_t>(Op.Kind));
      F.addU64(Op.NumArgs);
      F.addBool(Op.HasRet);
      F.addBool(Op.Fresh);
    }
  }

  // The abstract history. Labels and transaction names are included: they
  // flow into the persisted counter-example text and violation names.
  F.addU64(A.numEvents());
  F.addU64(A.numTxns());
  F.addU64(A.numLocalVars());
  F.addU64(A.numGlobalVars());
  for (unsigned E = 0; E != A.numEvents(); ++E) {
    const AbstractEvent &Ev = A.event(E);
    F.addU64(Ev.Txn);
    F.addU64(Ev.Container);
    F.addU64(Ev.Op);
    F.addBool(Ev.Display);
    F.addStr(Ev.Label);
    F.addU64(Ev.Facts.size());
    for (const AbsFact &Fact : Ev.Facts) {
      F.addU64(static_cast<uint64_t>(Fact.Kind));
      F.addI64(Fact.Value);
      F.addU64(Fact.Var);
    }
  }
  for (unsigned T = 0; T != A.numTxns(); ++T) {
    const AbstractTxn &Txn = A.txn(T);
    F.addStr(Txn.Name);
    F.addU64(Txn.Events.size());
    for (unsigned E : Txn.Events)
      F.addU64(E);
    auto AddConstraints = [&F](const std::vector<AbstractConstraint> &Cs) {
      F.addU64(Cs.size());
      for (const AbstractConstraint &C : Cs) {
        F.addU64(C.Src);
        F.addU64(C.Tgt);
        F.addStr(C.C.str()); // deterministic rendering of the condition tree
      }
    };
    AddConstraints(Txn.Eo);
    AddConstraints(Txn.Invs);
  }
  for (unsigned X = 0; X != A.numTxns(); ++X)
    for (unsigned Y = 0; Y != A.numTxns(); ++Y)
      F.addBool(A.maySo(X, Y));

  // Verdict-affecting options. NumThreads, UseOracle, ExternalOracle,
  // ReuseEnv, Trace, UseIncremental and the incremental-layer pointers are
  // observability-only and deliberately absent (the incremental layers
  // replay solver-proved verdicts; their reuse counters vary with cache
  // state, like the oracle cache counters, and differential tooling
  // normalizes them).
  F.addBool(O.Features.Commutativity);
  F.addBool(O.Features.Absorption);
  F.addBool(O.Features.Constraints);
  F.addBool(O.Features.ControlFlow);
  F.addBool(O.Features.AsymmetricAntiDeps);
  F.addBool(O.Features.UniqueValues);
  F.addU64(O.MaxK);
  F.addU64(O.MaxUnfoldings);
  F.addU64(O.MaxCandidateCycles);
  F.addU64(O.Budget.Rlimit);
  F.addU64(O.Budget.Escalation);
  F.addU64(O.Budget.MaxRetries);
  F.addU64(O.Budget.RlimitCap);
  F.addU64(O.Budget.WallMs);
  F.addU64(O.DeadlineMs);
  F.addU64(O.LayoutDfsBudget);
  // The prefilter never changes the verdict, but it changes the persisted
  // statistics (query counts, prefilter counters), so A/B runs must not
  // share cache entries.
  F.addBool(O.UsePrefilter);
  F.addBool(O.CheckPrefilter);
  F.addBool(O.DisplayFilter);
  F.addBool(O.UseAtomicSets);
  F.addU64(O.AtomicSets.size());
  for (const std::vector<unsigned> &Set : O.AtomicSets) {
    F.addU64(Set.size());
    for (unsigned C : Set)
      F.addU64(C);
  }
  return F.digest();
}

//===----------------------------------------------------------------------===//
// Result serialization
//===----------------------------------------------------------------------===//

namespace {

constexpr const char *BlobHeader = "c4-verdict 3";

/// Newlines and backslashes are the only characters the line-based format
/// cannot carry verbatim.
std::string escapeLine(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '\\')
      Out += "\\\\";
    else if (C == '\n')
      Out += "\\n";
    else if (C == '\r')
      Out += "\\r";
    else
      Out += C;
  }
  return Out;
}

std::string unescapeLine(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (size_t I = 0; I != S.size(); ++I) {
    if (S[I] != '\\' || I + 1 == S.size()) {
      Out += S[I];
      continue;
    }
    char N = S[++I];
    Out += N == 'n' ? '\n' : N == 'r' ? '\r' : N;
  }
  return Out;
}

void addField(std::string &Out, const char *Key, const std::string &Val) {
  Out += Key;
  Out += ' ';
  Out += Val;
  Out += '\n';
}

std::string hexFloat(double D) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%a", D);
  return Buf;
}

/// Line-oriented strict reader over the blob.
class Reader {
public:
  explicit Reader(const std::string &Blob) : B(Blob) {}

  bool line(std::string &Out) {
    if (Pos >= B.size())
      return false;
    size_t End = B.find('\n', Pos);
    if (End == std::string::npos)
      return false; // truncated final line
    Out = B.substr(Pos, End - Pos);
    Pos = End + 1;
    return true;
  }

  /// Reads `<key> <value>` with an exact key match.
  bool field(const char *Key, std::string &Val) {
    std::string L;
    if (!line(L))
      return false;
    size_t KeyLen = std::strlen(Key);
    if (L.size() < KeyLen + 2 || L.compare(0, KeyLen, Key) != 0 ||
        L[KeyLen] != ' ')
      return false;
    Val = L.substr(KeyLen + 1);
    return true;
  }

  bool u64(const char *Key, uint64_t &Out) {
    std::string V;
    if (!field(Key, V) || V.empty())
      return false;
    char *End = nullptr;
    errno = 0;
    unsigned long long X = std::strtoull(V.c_str(), &End, 10);
    if (errno == ERANGE || !End || *End)
      return false;
    Out = X;
    return true;
  }

  bool u32(const char *Key, unsigned &Out) {
    uint64_t X = 0;
    if (!u64(Key, X) || X > 0xFFFFFFFFull)
      return false;
    Out = static_cast<unsigned>(X);
    return true;
  }

  bool boolean(const char *Key, bool &Out) {
    uint64_t X = 0;
    if (!u64(Key, X) || X > 1)
      return false;
    Out = X != 0;
    return true;
  }

  bool dbl(const char *Key, double &Out) {
    std::string V;
    if (!field(Key, V) || V.empty())
      return false;
    char *End = nullptr;
    Out = std::strtod(V.c_str(), &End);
    return End && !*End;
  }

  bool atEnd() const { return Pos == B.size(); }

private:
  const std::string &B;
  size_t Pos = 0;
};

} // namespace

std::string c4::serializeResult(const AnalysisResult &R) {
  std::string Out = BlobHeader;
  Out += '\n';
  addField(Out, "generalized", std::to_string(R.Generalized));
  addField(Out, "fast_proved", std::to_string(R.FastProvedSerializable));
  addField(Out, "k_checked", std::to_string(R.KChecked));
  addField(Out, "unfoldings_checked", std::to_string(R.UnfoldingsChecked));
  addField(Out, "unfoldings_subsumed", std::to_string(R.UnfoldingsSubsumed));
  addField(Out, "layouts_filtered", std::to_string(R.LayoutsFiltered));
  addField(Out, "ssg_edges", std::to_string(R.SSGEdges));
  addField(Out, "smt_queries", std::to_string(R.SmtQueries));
  addField(Out, "smt_queries_prefiltered",
           std::to_string(R.SmtQueriesPrefiltered));
  addField(Out, "prefilter_unknowns", std::to_string(R.PrefilterUnknowns));
  addField(Out, "prefilter_disagreements",
           std::to_string(R.PrefilterDisagreements));
  addField(Out, "ssg_flagged", std::to_string(R.SSGFlagged));
  addField(Out, "smt_refuted", std::to_string(R.SMTRefuted));
  addField(Out, "smt_unknown", std::to_string(R.SMTUnknown));
  addField(Out, "smt_retries", std::to_string(R.SMTRetries));
  addField(Out, "smt_solves", std::to_string(R.SmtSolves));
  addField(Out, "rlimit_spent", std::to_string(R.RlimitSpent));
  addField(Out, "truncated", std::to_string(R.Truncated));
  addField(Out, "deadline_expired", std::to_string(R.DeadlineExpired));
  addField(Out, "unfoldings_deferred", std::to_string(R.UnfoldingsDeferred));
  addField(Out, "dfs_budget_exhausted",
           std::to_string(R.DfsBudgetExhausted));
  addField(Out, "cond_cache_hits", std::to_string(R.CondCacheHits));
  addField(Out, "cond_cache_misses", std::to_string(R.CondCacheMisses));
  addField(Out, "sat_cache_hits", std::to_string(R.SatCacheHits));
  addField(Out, "sat_cache_misses", std::to_string(R.SatCacheMisses));
  addField(Out, "sat_assist_proven", std::to_string(R.SatAssistProven));
  addField(Out, "txn_fingerprint_hits", std::to_string(R.TxnFingerprintHits));
  addField(Out, "pair_verdicts_reused", std::to_string(R.PairVerdictsReused));
  addField(Out, "constraint_cache_hits",
           std::to_string(R.ConstraintCacheHits));
  addField(Out, "constraint_cache_misses",
           std::to_string(R.ConstraintCacheMisses));
  addField(Out, "solver_ctx_reuses", std::to_string(R.SolverCtxReuses));
  addField(Out, "backend_seconds", hexFloat(R.BackendSeconds));
  addField(Out, "ssg_seconds", hexFloat(R.SSGSeconds));
  addField(Out, "enum_seconds", hexFloat(R.EnumSeconds));
  addField(Out, "smt_seconds", hexFloat(R.SmtSeconds));
  addField(Out, "prefilter_seconds", hexFloat(R.PrefilterSeconds));
  addField(Out, "incremental_seconds", hexFloat(R.IncrementalSeconds));
  addField(Out, "violations", std::to_string(R.Violations.size()));
  for (const Violation &V : R.Violations) {
    addField(Out, "v.flags", std::to_string(V.Inconclusive) + " " +
                                 std::to_string(V.Validated));
    std::string Origs;
    for (size_t I = 0; I != V.OrigTxns.size(); ++I)
      Origs += (I ? "," : "") + std::to_string(V.OrigTxns[I]);
    addField(Out, "v.orig", Origs);
    addField(Out, "v.names", std::to_string(V.TxnNames.size()));
    for (const std::string &N : V.TxnNames)
      addField(Out, "v.name", escapeLine(N));
    addField(Out, "v.ce",
             escapeLine(V.CE ? V.CE->Text : V.CEText));
  }
  return Out;
}

std::optional<AnalysisResult> c4::deserializeResult(const std::string &Blob) {
  Reader Rd(Blob);
  std::string Header;
  if (!Rd.line(Header) || Header != BlobHeader)
    return std::nullopt;
  AnalysisResult R;
  unsigned NumViolations = 0;
  bool Ok = Rd.boolean("generalized", R.Generalized) &&
            Rd.boolean("fast_proved", R.FastProvedSerializable) &&
            Rd.u32("k_checked", R.KChecked) &&
            Rd.u32("unfoldings_checked", R.UnfoldingsChecked) &&
            Rd.u32("unfoldings_subsumed", R.UnfoldingsSubsumed) &&
            Rd.u32("layouts_filtered", R.LayoutsFiltered) &&
            Rd.u32("ssg_edges", R.SSGEdges) &&
            Rd.u32("smt_queries", R.SmtQueries) &&
            Rd.u32("smt_queries_prefiltered", R.SmtQueriesPrefiltered) &&
            Rd.u32("prefilter_unknowns", R.PrefilterUnknowns) &&
            Rd.u32("prefilter_disagreements", R.PrefilterDisagreements) &&
            Rd.u32("ssg_flagged", R.SSGFlagged) &&
            Rd.u32("smt_refuted", R.SMTRefuted) &&
            Rd.u32("smt_unknown", R.SMTUnknown) &&
            Rd.u32("smt_retries", R.SMTRetries) &&
            Rd.u32("smt_solves", R.SmtSolves) &&
            Rd.u64("rlimit_spent", R.RlimitSpent) &&
            Rd.boolean("truncated", R.Truncated) &&
            Rd.boolean("deadline_expired", R.DeadlineExpired) &&
            Rd.u32("unfoldings_deferred", R.UnfoldingsDeferred) &&
            Rd.u32("dfs_budget_exhausted", R.DfsBudgetExhausted) &&
            Rd.u64("cond_cache_hits", R.CondCacheHits) &&
            Rd.u64("cond_cache_misses", R.CondCacheMisses) &&
            Rd.u64("sat_cache_hits", R.SatCacheHits) &&
            Rd.u64("sat_cache_misses", R.SatCacheMisses) &&
            Rd.u64("sat_assist_proven", R.SatAssistProven) &&
            Rd.u64("txn_fingerprint_hits", R.TxnFingerprintHits) &&
            Rd.u64("pair_verdicts_reused", R.PairVerdictsReused) &&
            Rd.u64("constraint_cache_hits", R.ConstraintCacheHits) &&
            Rd.u64("constraint_cache_misses", R.ConstraintCacheMisses) &&
            Rd.u64("solver_ctx_reuses", R.SolverCtxReuses) &&
            Rd.dbl("backend_seconds", R.BackendSeconds) &&
            Rd.dbl("ssg_seconds", R.SSGSeconds) &&
            Rd.dbl("enum_seconds", R.EnumSeconds) &&
            Rd.dbl("smt_seconds", R.SmtSeconds) &&
            Rd.dbl("prefilter_seconds", R.PrefilterSeconds) &&
            Rd.dbl("incremental_seconds", R.IncrementalSeconds) &&
            Rd.u32("violations", NumViolations) &&
            NumViolations <= 4096;
  if (!Ok)
    return std::nullopt;
  for (unsigned I = 0; I != NumViolations; ++I) {
    Violation V;
    std::string Flags, Origs, CE;
    unsigned NumNames = 0;
    if (!Rd.field("v.flags", Flags) || Flags.size() != 3 ||
        (Flags[0] != '0' && Flags[0] != '1') || Flags[1] != ' ' ||
        (Flags[2] != '0' && Flags[2] != '1'))
      return std::nullopt;
    V.Inconclusive = Flags[0] == '1';
    V.Validated = Flags[2] == '1';
    if (!Rd.field("v.orig", Origs))
      return std::nullopt;
    size_t Pos = 0;
    while (Pos < Origs.size()) {
      size_t End = Origs.find(',', Pos);
      std::string Item = Origs.substr(
          Pos, End == std::string::npos ? End : End - Pos);
      char *E = nullptr;
      errno = 0;
      unsigned long T = std::strtoul(Item.c_str(), &E, 10);
      if (errno == ERANGE || !E || *E || T > 0xFFFFFFFFul)
        return std::nullopt;
      V.OrigTxns.push_back(static_cast<unsigned>(T));
      Pos = End == std::string::npos ? Origs.size() : End + 1;
    }
    if (!Rd.u32("v.names", NumNames) || NumNames > 4096)
      return std::nullopt;
    for (unsigned N = 0; N != NumNames; ++N) {
      std::string Name;
      if (!Rd.field("v.name", Name))
        return std::nullopt;
      V.TxnNames.push_back(unescapeLine(Name));
    }
    if (!Rd.field("v.ce", CE))
      return std::nullopt;
    V.CEText = unescapeLine(CE);
    R.Violations.push_back(std::move(V));
  }
  if (!Rd.atEnd())
    return std::nullopt;
  return R;
}

std::string c4::verdictDigest(const AnalysisResult &R) {
  std::string Out = R.serializable() ? "S|" : "V|";
  std::vector<std::string> Entries;
  for (const Violation &V : R.Violations) {
    std::string E;
    for (size_t I = 0; I != V.TxnNames.size(); ++I)
      E += (I ? "," : "") + V.TxnNames[I];
    E += V.Inconclusive ? '?' : (V.Validated ? '!' : '~');
    Entries.push_back(std::move(E));
  }
  std::sort(Entries.begin(), Entries.end());
  for (const std::string &E : Entries) {
    Out += E;
    Out += ';';
  }
  return Out;
}
