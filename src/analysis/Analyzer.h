//===- analysis/Analyzer.h - The C4 analysis driver (Alg. 1) ----*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end C4 back end (paper Figure 2 and Algorithm 1). Given an
/// abstract history, the analyzer
///
///  1. runs the fast general SSG analysis (§6); if it proves the program
///     serializable, done;
///  2. otherwise iterates k = 2, 3, ...: enumerates the k-unfoldings,
///     skips those subsumed by known violations, pre-filters with the
///     instantiated SSG, and asks the SMT stage (§7) for concrete DSG
///     cycles, which become violations with counter-examples;
///  3. after each round, attempts to generalize to an unbounded number of
///     sessions (§7.2): every (k+1)-session segment pattern must be
///     subsumed, infeasible, or short-cuttable.
///
/// Filters (§9.1): display-code queries can be excluded, and the analysis
/// can be run per atomic set of containers.
///
//===----------------------------------------------------------------------===//

#ifndef C4_ANALYSIS_ANALYZER_H
#define C4_ANALYSIS_ANALYZER_H

#include "abstract/Features.h"
#include "smt/Encoding.h"
#include "smt/QueryTrace.h"

#include <optional>
#include <string>
#include <vector>

namespace c4 {

class CommutativityOracle;
class Deadline;
class IncrementalStore;

/// Tuning knobs and feature/filter configuration for one analysis run.
struct AnalyzerOptions {
  AnalysisFeatures Features;
  /// Iteration limit for the session bound k.
  unsigned MaxK = 3;
  /// Caps for enumeration (a warning flag is set when hit).
  unsigned MaxUnfoldings = 200000;
  unsigned MaxCandidateCycles = 128;
  /// Per-query solver budget: deterministic rlimit first, wall-clock
  /// backstop, geometric retry on unknown (see SolverBudget).
  SolverBudget Budget;
  /// Global analysis deadline in milliseconds (0 = none). When it expires
  /// the run winds down cooperatively: remaining unfoldings are deferred
  /// (counted in UnfoldingsDeferred), generalization is skipped, and the
  /// result degrades to a partial-but-sound bounded verdict — never to a
  /// serializability claim.
  unsigned DeadlineMs = 0;
  /// Optional externally owned deadline governing this run instead of a
  /// fresh one built from DeadlineMs (which still describes the budget for
  /// fingerprinting — callers arm the external deadline from the same
  /// value). Lets a caller cancel an in-flight analysis cooperatively: the
  /// serving tier's graceful drain trips every live request's deadline and
  /// each run winds down to the usual partial-but-sound verdict. Not part
  /// of the verdict fingerprint — cancellation marks the result
  /// DeadlineExpired, which is never cached or shared.
  const Deadline *ExternalDeadline = nullptr;
  /// Step budget for the layout-viability DFS pre-filter. Exhaustion keeps
  /// the layout (sound) and is counted in DfsBudgetExhausted.
  unsigned LayoutDfsBudget = 20000;
  /// Optional structured query trace: one record per solver query.
  QueryTrace *Trace = nullptr;
  /// Worker threads for the bounded check (0 = hardware concurrency).
  /// Parallel runs commit results in enumeration order, so verdicts,
  /// violation sets and statistics are identical to a single-threaded run.
  unsigned NumThreads = 0;
  /// Shares one memoization oracle for rewrite-spec conditions and their
  /// satisfiability verdicts across all SSG instantiations and SMT
  /// encodings of the run. Identical verdicts either way; disabling it is
  /// for the oracle-equivalence tests and A/B measurements.
  bool UseOracle = true;
  /// Optional long-lived oracle to use instead of the run's own fresh one.
  /// The service and the verdict cache share one across requests so
  /// satisfiability verdicts memoized by earlier analyses (or imported from
  /// disk) carry over. Ignored when UseOracle is false. Verdicts are
  /// unaffected either way — entries are pure functions of their keys.
  CommutativityOracle *ExternalOracle = nullptr;
  /// Optional Z3 environment to reuse for the sequential stages instead of
  /// constructing a fresh one per run (a context costs ~15 ms, noticeable
  /// for a service answering many small requests). The caller guarantees
  /// no concurrent use; per-query name generations keep reuse sound.
  Z3Env *ReuseEnv = nullptr;
  /// Runs the relational-domain prefilter in front of the SMT stage and
  /// installs the domain assist on the satisfiability oracle. Verdicts are
  /// identical either way (the domain only reports *proofs*; anything it
  /// cannot decide falls through to SMT) — disabling is the
  /// `--no-prefilter` escape hatch and the A/B measurement baseline.
  bool UsePrefilter = true;
  /// Debug mode: every domain-proven verdict is cross-checked against Z3
  /// and disagreements are counted (PrefilterDisagreements) with Z3
  /// trusted. Expensive; for CI sweeps and bug triage.
  bool CheckPrefilter = false;
  /// Master switch for the incremental layers below (`--no-incremental`).
  /// Like NumThreads and UseOracle this is observability-only: the layers
  /// replay verdicts the solver itself proved, so results are identical
  /// either way, and the flag is absent from the verdict fingerprint. Their
  /// reuse counters (like the oracle cache counters) vary with cache state
  /// and are normalized by the differential tooling.
  bool UseIncremental = true;
  /// Optional incremental store of per-unfolding NoCycle records (see
  /// analysis/Incremental.h). Lookups consult only the immutable base
  /// loaded at run start; fresh records accumulate run-locally, so hits
  /// and misses are deterministic across thread counts. Ignored when
  /// UseIncremental is false or CheckPrefilter is on (check mode must
  /// actually solve to detect disagreements).
  IncrementalStore *Incremental = nullptr;
  /// Optional Green-style canonicalized constraint cache shared with the
  /// SMT stage (see smt/ConstraintCache.h). Same base/overlay determinism
  /// contract and the same UseIncremental / CheckPrefilter gating.
  ConstraintCache *Green = nullptr;
  /// §9.1 filters.
  bool DisplayFilter = false;
  bool UseAtomicSets = false;
  /// Atomic sets: groups of container ids analyzed independently.
  std::vector<std::vector<unsigned>> AtomicSets;
};

/// One detected serializability violation.
struct Violation {
  /// The sorted set of syntactic (original abstract) transactions on the
  /// cycle — the subsumption key.
  std::vector<unsigned> OrigTxns;
  std::vector<std::string> TxnNames;
  /// Concrete witness (absent if the solver returned unknown).
  std::optional<CounterExample> CE;
  /// Rendered witness text. Normally mirrors CE->Text; for results
  /// rehydrated from the verdict cache (where the structural witness is not
  /// persisted) it is the only surviving form. reportStr() prefers CE->Text
  /// and falls back to this.
  std::string CEText;
  /// True when recorded due to a solver timeout rather than a model.
  bool Inconclusive = false;
  /// True when the witness was checked end to end: it is a concretization
  /// of the abstract history and its schedule's DSG is cyclic.
  bool Validated = false;
};

/// Outcome and statistics of an analysis run.
struct AnalysisResult {
  std::vector<Violation> Violations;
  /// True when the result covers any number of sessions: either the fast
  /// analysis proved serializability, or the §7.2 generalization succeeded.
  bool Generalized = false;
  /// True when the general SSG analysis alone proved serializability.
  bool FastProvedSerializable = false;
  /// Largest session bound fully checked.
  unsigned KChecked = 0;
  // Statistics for the evaluation (§9.2).
  unsigned UnfoldingsChecked = 0;
  unsigned UnfoldingsSubsumed = 0;
  unsigned LayoutsFiltered = 0; ///< session layouts dropped by the cheap
                                ///< viability pre-filter (never unfolded)
  unsigned SSGEdges = 0;    ///< edge count of the general SSG (stage 1);
                            ///< summed over atomic-set runs
  unsigned SmtQueries = 0;  ///< solver queries issued (bounded + generalize)
  unsigned SmtQueriesPrefiltered = 0; ///< queries answered NoCycle by the
                                      ///< domain prefilter (no Z3 built)
  unsigned PrefilterUnknowns = 0; ///< prefilter runs that left candidates
                                  ///< alive (query fell through to SMT)
  unsigned PrefilterDisagreements = 0; ///< --check-prefilter only: domain
                                       ///< proofs contradicted by Z3
  unsigned SSGFlagged = 0;  ///< unfoldings whose SSG admitted cycles
  unsigned SMTRefuted = 0;  ///< ... of which the SMT stage refuted
  unsigned SMTUnknown = 0;
  unsigned SMTRetries = 0; ///< escalated re-solves after an unknown
  unsigned SmtSolves = 0; ///< queries that actually reached Z3 — SmtQueries
                          ///< minus incremental-record and constraint-cache
                          ///< reuse (the warm-run speedup metric)
  uint64_t RlimitSpent = 0; ///< solver resource units across all queries
  bool Truncated = false; ///< an enumeration cap was hit
  /// The --deadline-ms budget expired; the result is partial but sound
  /// (reported violations are real findings, but unchecked work remains).
  bool DeadlineExpired = false;
  /// Unfoldings of the last bounded round never conclusively checked
  /// because the deadline expired first.
  unsigned UnfoldingsDeferred = 0;
  /// Layout-viability DFS budget exhaustions (layouts conservatively kept).
  unsigned DfsBudgetExhausted = 0;
  double BackendSeconds = 0;

  // Observability (oracle cache + per-stage time). Stage seconds are
  // cumulative across workers, so with multiple threads they can exceed
  // BackendSeconds (they measure work, not wall time).
  uint64_t CondCacheHits = 0, CondCacheMisses = 0;
  uint64_t SatCacheHits = 0, SatCacheMisses = 0;
  uint64_t SatAssistProven = 0; ///< oracle sat misses decided by the domain
  // Incremental-layer observability (see analysis/Incremental.h). Like the
  // oracle cache counters these depend on the persisted cache state, not
  // on the program alone.
  uint64_t TxnFingerprintHits = 0; ///< transactions whose content digest
                                   ///< was already in the persisted store
  uint64_t PairVerdictsReused = 0; ///< oracle sat verdicts answered from
                                   ///< the imported snapshot (SSG edge and
                                   ///< commutativity/absorption reuse)
  uint64_t ConstraintCacheHits = 0, ConstraintCacheMisses = 0;
  uint64_t SolverCtxReuses = 0; ///< solver contexts shared instead of
                                ///< rebuilt (retry re-checks + generalize
                                ///< chunk reuse)
  double IncrementalSeconds = 0; ///< digest/key computation + lookups
  double SSGSeconds = 0;  ///< SSG construction + Theorem 3 + cycle/segment
                          ///< enumeration on instantiated graphs
  double EnumSeconds = 0; ///< unfolding enumeration (incl. layout filter)
  double SmtSeconds = 0;  ///< ϕ_cyclic encoding + solving
  double PrefilterSeconds = 0; ///< domain prefilter over candidate cycles

  bool serializable() const { return Violations.empty() && Generalized; }

  // Violation triage: a solver-budget timeout (Inconclusive) must never be
  // read as a proven violation, so reports and stats keep the three classes
  // apart.
  unsigned validatedViolations() const {
    unsigned N = 0;
    for (const Violation &V : Violations)
      N += !V.Inconclusive && V.Validated;
    return N;
  }
  unsigned unvalidatedViolations() const {
    unsigned N = 0;
    for (const Violation &V : Violations)
      N += !V.Inconclusive && !V.Validated;
    return N;
  }
  unsigned inconclusiveViolations() const {
    unsigned N = 0;
    for (const Violation &V : Violations)
      N += V.Inconclusive;
    return N;
  }
};

/// Runs the full pipeline on an abstract history.
AnalysisResult analyze(const AbstractHistory &A,
                       const AnalyzerOptions &O = {});

/// Renders a short report.
std::string reportStr(const AbstractHistory &A, const AnalysisResult &R);

} // namespace c4

#endif // C4_ANALYSIS_ANALYZER_H
