//===- domain/Prefilter.h - Candidate-cycle domain prefilter ----*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-candidate-cycle prefilter in front of the SMT stage. For each
/// candidate cycle (or §7.2 segment) of an instantiated SSG it collects a
/// *necessary* fragment of the ϕ_cyclic encoding — for every SC1-valid way
/// of picking one dependency label and one realizing event pair per step:
/// the ¬com condition of each picked pair, the argument facts of the events
/// involved, and (under the control-flow feature) the chain of branch guards
/// an event's presence forces — closes the conjunction in the relational
/// domain, and reports the candidate *killed* when every such conjunction is
/// bottom. Killed candidates cannot be realized by any model of the full
/// encoding (which only adds conjuncts: visibility, arbitration, escape
/// clauses), so when a whole unfolding's candidates die the analyzer may
/// report NoCycle without constructing a Z3 query. Anything the domain
/// cannot refute — DNF overflow, work-cap overruns, plain satisfiable
/// conjunctions — leaves the candidate alive and the SMT stage authoritative,
/// keeping verdicts byte-identical either way.
///
//===----------------------------------------------------------------------===//

#ifndef C4_DOMAIN_PREFILTER_H
#define C4_DOMAIN_PREFILTER_H

#include "ssg/SSG.h"
#include "unfold/Unfolder.h"

#include <vector>

namespace c4 {

/// Per-candidate outcome of one prefilter run.
struct PrefilterResult {
  /// Killed[i]: candidate i was proven unrealizable by the domain.
  std::vector<bool> Killed;
  unsigned NumKilled = 0;

  bool allKilled() const {
    return NumKilled == Killed.size() && NumKilled > 0;
  }
};

/// Runs the domain prefilter over \p Cands (candidate cycles or segments of
/// the instantiated SSG \p G built for unfolding \p U). \p Oracle, when
/// non-null, supplies the memoized ¬com conditions (identical formulas are
/// computed from the registry otherwise).
PrefilterResult prefilterCandidates(const Unfolding &U, const SSG &G,
                                    const std::vector<CandidateCycle> &Cands,
                                    const AnalysisFeatures &F,
                                    CommutativityOracle *Oracle);

} // namespace c4

#endif // C4_DOMAIN_PREFILTER_H
