//===- domain/AbstractDomain.cpp ------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "domain/AbstractDomain.h"

#include <algorithm>
#include <cassert>

using namespace c4;

//===----------------------------------------------------------------------===//
// DomainState
//===----------------------------------------------------------------------===//

DomainState::DomainState() : D(1, std::vector<int64_t>(1, 0)) {}

unsigned DomainState::addVar() {
  for (std::vector<int64_t> &Row : D)
    Row.push_back(INF);
  ++N;
  D.emplace_back(N, INF);
  D.back()[N - 1] = 0;
  // A fresh variable cannot create a negative cycle; closure state over the
  // old variables is preserved, and INF rows/columns keep it closed.
  return static_cast<unsigned>(N) - 1;
}

void DomainState::addDiff(unsigned A, unsigned B, int64_t C) {
  assert(A < N && B < N);
  if (A == B) {
    if (C < 0)
      Bottom = true; // x - x <= C < 0
    return;
  }
  if (C < -Huge) {
    Overflow = true; // weakened: admits more states
    C = -Huge;
  } else if (C > Huge) {
    Overflow = true; // tightened: bottom claims are withheld below
    C = Huge;
  }
  if (C < D[A][B]) {
    D[A][B] = C;
    Closed = false;
  }
}

void DomainState::addEq(unsigned A, unsigned B) {
  addDiff(A, B, 0);
  addDiff(B, A, 0);
}

void DomainState::addNe(unsigned A, unsigned B) {
  if (A == B) {
    Bottom = true;
    return;
  }
  std::pair<unsigned, unsigned> P{std::min(A, B), std::max(A, B)};
  if (std::find(Diseqs.begin(), Diseqs.end(), P) == Diseqs.end())
    Diseqs.push_back(P);
}

void DomainState::addLt(unsigned A, unsigned B) { addDiff(A, B, -1); }
void DomainState::addLe(unsigned A, unsigned B) { addDiff(A, B, 0); }

void DomainState::addConst(unsigned A, int64_t K) {
  addDiff(A, 0, K);
  addLowerBound(A, K);
}

void DomainState::addLowerBound(unsigned A, int64_t K) {
  if (K == INT64_MIN)
    return; // vacuous, and -K would not be representable
  addDiff(0, A, -K);
}

void DomainState::addUpperBound(unsigned A, int64_t K) { addDiff(A, 0, K); }

void DomainState::addUnique(unsigned A, unsigned Id) {
  addLowerBound(A, FreshValueMin);
  auto [It, Inserted] = UniqueRep.try_emplace(Id, A);
  if (!Inserted) {
    addEq(A, It->second); // same identity: same value
    return;
  }
  for (const auto &[OtherId, Rep] : UniqueRep)
    if (OtherId != Id)
      addNe(A, Rep); // distinct identities never coincide
}

void DomainState::close() {
  if (Closed)
    return;
  for (size_t K = 0; K != N; ++K)
    for (size_t I = 0; I != N; ++I) {
      if (D[I][K] == INF)
        continue;
      for (size_t J = 0; J != N; ++J) {
        if (D[K][J] == INF)
          continue;
        // Finite bounds are clamped to +/-Huge = 2^61, so the sum fits.
        int64_t Cand = D[I][K] + D[K][J];
        if (Cand < -Huge) {
          Overflow = true;
          Cand = -Huge;
        }
        if (Cand < D[I][J])
          D[I][J] = Cand;
      }
    }
  Closed = true;
  for (size_t I = 0; I != N; ++I)
    if (D[I][I] < 0)
      Bottom = true;
  if (!Bottom)
    for (const auto &[A, B] : Diseqs)
      if (D[A][B] != INF && D[A][B] <= 0 && D[B][A] != INF && D[B][A] <= 0)
        Bottom = true; // bounds force x_A == x_B
}

bool DomainState::isBottom() {
  close();
  // An overflow may have *tightened* a bound, so emptiness found afterwards
  // is not a proof; answer conservatively.
  return Bottom && !Overflow;
}

void DomainState::meetWith(const DomainState &O) {
  assert(N == O.N);
  for (size_t I = 0; I != N; ++I)
    for (size_t J = 0; J != N; ++J)
      if (O.D[I][J] < D[I][J]) {
        D[I][J] = O.D[I][J];
        Closed = false;
      }
  for (const auto &[A, B] : O.Diseqs)
    addNe(A, B);
  // Re-wiring the witnesses keeps cross-state identities disequal.
  for (const auto &[Id, Rep] : O.UniqueRep)
    addUnique(Rep, Id);
  Bottom = Bottom || O.Bottom;
  Overflow = Overflow || O.Overflow;
}

void DomainState::joinWith(DomainState &O) {
  assert(N == O.N);
  close();
  O.close();
  if (O.isBottom())
    return; // join with bottom is identity
  if (isBottom()) {
    *this = O;
    return;
  }
  for (size_t I = 0; I != N; ++I)
    for (size_t J = 0; J != N; ++J)
      D[I][J] = std::max(D[I][J], O.D[I][J]);
  // The pointwise max of two closed DBMs is closed.
  std::vector<std::pair<unsigned, unsigned>> Kept;
  for (const auto &P : Diseqs)
    if (std::find(O.Diseqs.begin(), O.Diseqs.end(), P) != O.Diseqs.end())
      Kept.push_back(P);
  Diseqs = std::move(Kept);
  for (auto It = UniqueRep.begin(); It != UniqueRep.end();) {
    auto OIt = O.UniqueRep.find(It->first);
    if (OIt == O.UniqueRep.end() || OIt->second != It->second)
      It = UniqueRep.erase(It);
    else
      ++It;
  }
  Overflow = Overflow || O.Overflow;
}

bool DomainState::extractModel(std::vector<int64_t> &Vals) {
  close();
  if (Bottom || Overflow)
    return false;
  // Shortest-path potentials from a virtual source with per-node weights
  // w_k: delta(i) = min_k (w_k + D[i][k]) satisfies every difference bound
  // of the closed DBM (delta(a) <= delta(b) + D[a][b] by the triangle
  // inequality). Spacing the weights makes otherwise-unconstrained
  // variables take distinct values, which is what the disequality edges
  // usually need; the caller re-verifies regardless.
  constexpr __int128 Spacing = 1048573;
  std::vector<__int128> Delta(N);
  for (size_t I = 0; I != N; ++I) {
    __int128 Best = static_cast<__int128>(I) * Spacing; // k == I, D[I][I] == 0
    for (size_t K = 0; K != N; ++K) {
      if (D[I][K] == INF)
        continue;
      __int128 Cand = static_cast<__int128>(K) * Spacing + D[I][K];
      if (Cand < Best)
        Best = Cand;
    }
    Delta[I] = Best;
  }
  Vals.assign(N, 0);
  for (size_t I = 0; I != N; ++I) {
    __int128 X = Delta[I] - Delta[0];
    if (X < INT64_MIN || X > INT64_MAX)
      return false;
    Vals[I] = static_cast<int64_t>(X);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// domainDecide
//===----------------------------------------------------------------------===//

namespace {

/// Maps the Term universe of one (source, target, constants) condition onto
/// domain variables, applying each slot's fact when it is first referenced.
struct CondFrame {
  CondFrame(const EventFacts &Src, const EventFacts &Tgt)
      : SrcF(Src), TgtF(Tgt) {}

  DomainState St;
  const EventFacts &SrcF;
  const EventFacts &TgtF;
  std::vector<int> SrcVar, TgtVar; ///< slot -> var, -1 = unreferenced
  std::map<int64_t, unsigned> ConstVar;
  std::map<unsigned, unsigned> SymVar; ///< symbol -> first var seen

  unsigned slotVar(bool IsSrc, unsigned I) {
    std::vector<int> &Vec = IsSrc ? SrcVar : TgtVar;
    if (I >= Vec.size())
      Vec.resize(I + 1, -1);
    if (Vec[I] >= 0)
      return static_cast<unsigned>(Vec[I]);
    unsigned V = St.addVar();
    Vec[I] = static_cast<int>(V);
    const EventFacts &Facts = IsSrc ? SrcF : TgtF;
    if (I < Facts.size()) {
      const ArgFact &F = Facts[I];
      switch (F.Kind) {
      case ArgFact::Free:
        break;
      case ArgFact::Constant:
        St.addConst(V, F.Value);
        break;
      case ArgFact::Symbolic: {
        auto [It, Inserted] = SymVar.try_emplace(F.Symbol, V);
        if (!Inserted)
          St.addEq(V, It->second);
        break;
      }
      case ArgFact::Unique:
        St.addUnique(V, F.Symbol);
        break;
      }
    }
    return V;
  }

  unsigned termVar(const Term &T) {
    if (T.Kind == Term::Const) {
      auto [It, Inserted] = ConstVar.try_emplace(T.Value, 0u);
      if (Inserted) {
        It->second = St.addVar();
        St.addConst(It->second, T.Value);
      }
      return It->second;
    }
    return slotVar(T.Kind == Term::ArgSrc, T.Index);
  }

  void addLiteral(const Literal &L) {
    unsigned A = termVar(L.A), B = termVar(L.B);
    switch (L.Cmp) {
    case CmpKind::Eq:
      L.Negated ? St.addNe(A, B) : St.addEq(A, B);
      break;
    case CmpKind::Lt:
      L.Negated ? St.addLe(B, A) : St.addLt(A, B);
      break;
    case CmpKind::Le:
      L.Negated ? St.addLt(B, A) : St.addLe(A, B);
      break;
    }
  }
};

bool literalHolds(const Literal &L, int64_t A, int64_t B) {
  bool H = false;
  switch (L.Cmp) {
  case CmpKind::Eq:
    H = A == B;
    break;
  case CmpKind::Lt:
    H = A < B;
    break;
  case CmpKind::Le:
    H = A <= B;
    break;
  }
  return H != L.Negated;
}

/// Checks an extracted model against one side's fact semantics. SymVal and
/// UniqVal accumulate across both sides (symbols and unique ids are global).
bool factsHold(const EventFacts &Facts, const std::vector<int> &VarOf,
               const std::vector<int64_t> &Vals,
               std::map<unsigned, int64_t> &SymVal,
               std::map<unsigned, int64_t> &UniqVal) {
  for (size_t I = 0; I != VarOf.size() && I != Facts.size(); ++I) {
    if (VarOf[I] < 0)
      continue; // unreferenced slots never block satisfiability
    int64_t X = Vals[static_cast<unsigned>(VarOf[I])];
    const ArgFact &F = Facts[I];
    switch (F.Kind) {
    case ArgFact::Free:
      break;
    case ArgFact::Constant:
      if (X != F.Value)
        return false;
      break;
    case ArgFact::Symbolic: {
      auto [It, Inserted] = SymVal.try_emplace(F.Symbol, X);
      if (!Inserted && It->second != X)
        return false;
      break;
    }
    case ArgFact::Unique: {
      if (X < FreshValueMin)
        return false;
      auto [It, Inserted] = UniqVal.try_emplace(F.Symbol, X);
      if (!Inserted && It->second != X)
        return false;
      break;
    }
    }
  }
  return true;
}

/// Full model verification: every clause literal holds and both events'
/// facts are respected, including pairwise distinctness of unique ids.
bool verifiedModel(CondFrame &F, const std::vector<Literal> &Clause) {
  std::vector<int64_t> Vals;
  if (!F.St.extractModel(Vals))
    return false;
  auto TermVal = [&](const Term &T) -> int64_t {
    if (T.Kind == Term::Const)
      return T.Value;
    const std::vector<int> &Vec = T.Kind == Term::ArgSrc ? F.SrcVar : F.TgtVar;
    return Vals[static_cast<unsigned>(Vec[T.Index])];
  };
  for (const Literal &L : Clause)
    if (!literalHolds(L, TermVal(L.A), TermVal(L.B)))
      return false;
  std::map<unsigned, int64_t> SymVal, UniqVal;
  if (!factsHold(F.SrcF, F.SrcVar, Vals, SymVal, UniqVal) ||
      !factsHold(F.TgtF, F.TgtVar, Vals, SymVal, UniqVal))
    return false;
  for (auto It = UniqVal.begin(); It != UniqVal.end(); ++It)
    for (auto Jt = std::next(It); Jt != UniqVal.end(); ++Jt)
      if (It->second == Jt->second)
        return false; // distinct identities must take distinct values
  return true;
}

} // namespace

DomainVerdict c4::domainDecide(const Cond &C, const EventFacts &Src,
                               const EventFacts &Tgt) {
  bool Overflow = false;
  std::vector<std::vector<Literal>> DNF = C.dnf(Overflow);
  if (DNF.empty())
    return DomainVerdict::ProvenUnsat; // literally false (overflow never
                                       // produces an empty expansion)
  if (Overflow)
    return DomainVerdict::Unknown;
  bool AllBottom = true;
  unsigned ModelAttempts = 0;
  for (const std::vector<Literal> &Clause : DNF) {
    CondFrame F(Src, Tgt);
    for (const Literal &L : Clause)
      F.addLiteral(L);
    if (F.St.isBottom())
      continue;
    AllBottom = false;
    // A non-bottom clause is only *maybe* satisfiable (disequalities and
    // uniqueness are checked lazily); claim SAT only on a verified model.
    if (ModelAttempts++ < 8 && !F.St.overflowed() &&
        verifiedModel(F, Clause))
      return DomainVerdict::ProvenSat;
  }
  return AllBottom ? DomainVerdict::ProvenUnsat : DomainVerdict::Unknown;
}
