//===- domain/AbstractDomain.h - Relational prefilter domain ----*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sound relational abstract domain over integer-valued argument slots:
/// difference bounds (a DBM with Floyd-Warshall closure) extended with
/// disequality edges and fresh-unique-identity witnesses (paper §8). It
/// generalizes the union-find congruence engine in spec/Cond.cpp: an equality
/// is just a pair of zero-weight difference bounds, so congruence classes,
/// ordering chains (x < y <= z < x), constant pinning and the FreshValueMin
/// lower bound of unique identities all fall out of one transitive closure.
///
/// `domainDecide` is the three-valued entry the analyzer's prefilter layers
/// use. Its answers are trustworthy by construction, not by review:
///
///  * Proven-UNSAT requires every DNF clause of the condition to close to
///    bottom, with neither the DNF expansion nor any closure having
///    overflowed;
///  * Proven-SAT is only returned after an explicit integer model has been
///    extracted from the closed DBM and re-verified literal by literal
///    against the clause and the fact semantics (constants pinned, symbols
///    congruent, unique identities pairwise distinct and >= FreshValueMin);
///  * everything else is Unknown, and callers fall back to the existing
///    congruence engine or the SMT stage, so verdicts never change.
///
//===----------------------------------------------------------------------===//

#ifndef C4_DOMAIN_ABSTRACTDOMAIN_H
#define C4_DOMAIN_ABSTRACTDOMAIN_H

#include "spec/Cond.h"

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace c4 {

/// Three-valued answer of the abstract domain.
enum class DomainVerdict : uint8_t {
  ProvenSat,   ///< a concrete model was constructed and verified
  ProvenUnsat, ///< every DNF clause closed to bottom (a real proof)
  Unknown      ///< fall back to the congruence engine / SMT stage
};

/// One relational abstract state over a set of integer variables.
///
/// Variable 0 is the distinguished zero node; constraints against constants
/// are difference bounds against it. Callers allocate further variables with
/// addVar() and pour in constraints; isBottom() and extractModel() close the
/// DBM on demand. All mutating operations are conjunctive (meet with one
/// constraint); joinWith() is the convex-hull-style DBM join with
/// intersection of the exact (disequality / witness) components.
class DomainState {
public:
  DomainState();

  /// Allocates a fresh unconstrained variable and returns its id.
  unsigned addVar();
  unsigned numVars() const { return static_cast<unsigned>(N) - 1; }

  /// x_A - x_B <= C.
  void addDiff(unsigned A, unsigned B, int64_t C);
  void addEq(unsigned A, unsigned B);
  void addNe(unsigned A, unsigned B);
  void addLt(unsigned A, unsigned B); ///< x_A < x_B (integers: <= B-1)
  void addLe(unsigned A, unsigned B);
  void addConst(unsigned A, int64_t K);      ///< x_A == K
  void addLowerBound(unsigned A, int64_t K); ///< x_A >= K
  void addUpperBound(unsigned A, int64_t K); ///< x_A <= K
  /// x_A equals the fresh unique identity \p Id (paper §8): >= FreshValueMin,
  /// equal to every other variable carrying the same id, disequal from every
  /// variable carrying a different id.
  void addUnique(unsigned A, unsigned Id);

  /// True when the state is *provably* empty: a negative cycle in the closed
  /// DBM, or a disequality edge whose endpoints the bounds force equal.
  /// Returns false when a closure overflowed (never claims bottom then).
  bool isBottom();

  /// True when some closure step left the representable range; bottom and
  /// model answers are withheld in that case.
  bool overflowed() const { return Overflow; }

  /// Conjunction with another state over the same variables.
  void meetWith(const DomainState &O);
  /// Sound upper bound of two states over the same variables.
  void joinWith(DomainState &O);

  /// Extracts a concrete assignment (Vals[0] == 0) satisfying every
  /// difference bound, from shortest-path potentials over the closed DBM
  /// with spaced source weights (so unconstrained variables come out
  /// distinct). Returns false on bottom or overflow. Disequalities are NOT
  /// guaranteed satisfied — callers re-verify the model.
  bool extractModel(std::vector<int64_t> &Vals);

private:
  void close();

  static constexpr int64_t INF = INT64_MAX;
  /// Finite bounds are clamped to +/-Huge (sums of two stay in int64);
  /// crossing it sets Overflow.
  static constexpr int64_t Huge = int64_t(1) << 61;

  size_t N = 1;                        ///< nodes incl. the zero node
  std::vector<std::vector<int64_t>> D; ///< D[i][j]: bound on x_i - x_j
  std::vector<std::pair<unsigned, unsigned>> Diseqs; ///< normalized a < b
  std::map<unsigned, unsigned> UniqueRep; ///< unique id -> representative var
  bool Closed = true;
  bool Bottom = false;
  bool Overflow = false;
};

/// Decides satisfiability of \p C under per-slot facts for the source and
/// target events — the same question as Cond::satisfiableUnder, but
/// three-valued and complete for ordering atoms over constrained slots.
DomainVerdict domainDecide(const Cond &C, const EventFacts &Src,
                           const EventFacts &Tgt);

} // namespace c4

#endif // C4_DOMAIN_ABSTRACTDOMAIN_H
