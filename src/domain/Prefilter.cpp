//===- domain/Prefilter.cpp -----------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "domain/Prefilter.h"

#include "domain/AbstractDomain.h"
#include "spec/DataType.h"

#include <map>
#include <utility>

using namespace c4;

namespace {

/// Closure budget per candidate: each DomainState closure costs one unit;
/// exhaustion leaves the candidate alive (the SMT stage stays
/// authoritative), it never flips an answer.
constexpr unsigned MaxStatesPerCandidate = 512;
/// Cap on enumerated per-step label assignments per candidate.
constexpr unsigned MaxAssignments = 256;
/// Branch-guard chains are walked at most this far toward the entry.
constexpr unsigned MaxGuardDepth = 16;

/// One necessary conjunct: a condition over a (source, target) event pair,
/// pre-expanded to DNF (conjuncts whose expansion overflowed are dropped —
/// dropping a conjunct only ever weakens the conjunction, which is sound
/// for refutation).
struct CondInst {
  unsigned SrcE;
  unsigned TgtE;
  std::vector<std::vector<Literal>> DNF;
};

/// One feasible event-pair alternative of a (step, label) choice, with all
/// its necessary conjuncts (¬com plus the endpoints' guard chains).
struct Alt {
  std::vector<CondInst> Conds;
};

/// One way a step can contribute to a pick set: a single label, or — since
/// the encoder allows a step to pick several labels at once — the
/// anti-dependency and conflict labels together (the only multi-pick that
/// can enable SC1 where no single pick does).
struct StepOption {
  unsigned AntiCount = 0;
  unsigned ConfCount = 0;
  std::vector<const std::vector<Alt> *> Dims;
};

/// A shared variable universe for one conjunction state: domain variables
/// per (event, slot), per constant, with symbol congruence applied lazily.
struct BuildState {
  DomainState St;
  std::map<std::pair<unsigned, unsigned>, unsigned> SlotVar;
  std::map<int64_t, unsigned> ConstVar;
  std::map<unsigned, unsigned> SymVar;
};

struct Ctx {
  const AbstractHistory &H;
  const std::vector<unsigned> &Tags;
  const AnalysisFeatures &F;
  const SSG &G;
  CommutativityOracle *Oracle;
  unsigned StatesLeft = MaxStatesPerCandidate;

  std::map<unsigned, EventFacts> FactsCache;
  std::map<unsigned, std::vector<CondInst>> GuardCache;
  std::map<unsigned, bool> PresencePossible;

  bool budget() {
    if (StatesLeft == 0)
      return false;
    --StatesLeft;
    return true;
  }

  /// The facts the encoder actually asserts for \p E: resolved per-session
  /// facts under the constraints feature, with fresh-unique facts downgraded
  /// to free unless the unique-values feature (which asserts the fresh
  /// axioms in the encoding) is on.
  const EventFacts &factsFor(unsigned E) {
    auto It = FactsCache.find(E);
    if (It != FactsCache.end())
      return It->second;
    EventFacts Facts;
    if (F.Constraints) {
      Facts = H.resolveFacts(E, Tags[H.event(E).Txn]);
      if (!F.UniqueValues)
        for (ArgFact &AF : Facts)
          if (AF.Kind == ArgFact::Unique)
            AF = ArgFact::free();
    } else {
      Facts = EventFacts(H.op(E).numVals());
    }
    return FactsCache.emplace(E, std::move(Facts)).first->second;
  }

  /// The chain of branch guards event \p E's presence forces: while an event
  /// has exactly one incoming eo edge, presence implies the edge was taken,
  /// hence its guard holds and its source is present too. Returns false when
  /// \p E can never be present (a non-entry event with no incoming edge).
  bool guards(unsigned E, std::vector<const CondInst *> &Out) {
    auto PI = PresencePossible.find(E);
    if (PI != PresencePossible.end()) {
      if (!PI->second)
        return false;
      for (const CondInst &CI : GuardCache[E])
        Out.push_back(&CI);
      return true;
    }
    std::vector<CondInst> Chain;
    bool Possible = true;
    if (F.ControlFlow) {
      unsigned T = H.event(E).Txn;
      const AbstractTxn &Txn = H.txn(T);
      unsigned Cur = E;
      for (unsigned Depth = 0; Depth != MaxGuardDepth; ++Depth) {
        if (Cur == H.entry(T))
          break;
        const AbstractConstraint *In = nullptr;
        bool Multiple = false;
        for (const AbstractConstraint &Eo : Txn.Eo)
          if (Eo.Tgt == Cur) {
            if (In) {
              Multiple = true;
              break;
            }
            In = &Eo;
          }
        if (Multiple)
          break; // a join: presence no longer forces a unique guard
        if (!In) {
          Possible = false; // unreachable non-entry event
          break;
        }
        if (!In->C.isTrue()) {
          bool Overflow = false;
          std::vector<std::vector<Literal>> DNF = In->C.dnf(Overflow);
          if (!Overflow)
            Chain.push_back({In->Src, In->Tgt, std::move(DNF)});
        }
        Cur = In->Src;
      }
    }
    PresencePossible[E] = Possible;
    GuardCache[E] = std::move(Chain);
    if (!Possible)
      return false;
    for (const CondInst &CI : GuardCache[E])
      Out.push_back(&CI);
    return true;
  }
};

unsigned slotVar(Ctx &C, BuildState &S, unsigned E, unsigned I) {
  auto [It, Inserted] = S.SlotVar.try_emplace({E, I}, 0u);
  if (!Inserted)
    return It->second;
  unsigned V = S.St.addVar();
  It->second = V;
  const EventFacts &Facts = C.factsFor(E);
  if (I < Facts.size()) {
    const ArgFact &F = Facts[I];
    switch (F.Kind) {
    case ArgFact::Free:
      break;
    case ArgFact::Constant:
      S.St.addConst(V, F.Value);
      break;
    case ArgFact::Symbolic: {
      auto [SIt, SNew] = S.SymVar.try_emplace(F.Symbol, V);
      if (!SNew)
        S.St.addEq(V, SIt->second);
      break;
    }
    case ArgFact::Unique:
      S.St.addUnique(V, F.Symbol);
      break;
    }
  }
  return V;
}

unsigned termVar(Ctx &C, BuildState &S, const CondInst &CI, const Term &T) {
  if (T.Kind == Term::Const) {
    auto [It, Inserted] = S.ConstVar.try_emplace(T.Value, 0u);
    if (Inserted) {
      It->second = S.St.addVar();
      S.St.addConst(It->second, T.Value);
    }
    return It->second;
  }
  return slotVar(C, S, T.Kind == Term::ArgSrc ? CI.SrcE : CI.TgtE, T.Index);
}

void addClause(Ctx &C, BuildState &S, const CondInst &CI,
               const std::vector<Literal> &Clause) {
  for (const Literal &L : Clause) {
    unsigned A = termVar(C, S, CI, L.A), B = termVar(C, S, CI, L.B);
    switch (L.Cmp) {
    case CmpKind::Eq:
      L.Negated ? S.St.addNe(A, B) : S.St.addEq(A, B);
      break;
    case CmpKind::Lt:
      L.Negated ? S.St.addLe(B, A) : S.St.addLt(A, B);
      break;
    case CmpKind::Le:
      L.Negated ? S.St.addLt(B, A) : S.St.addLe(A, B);
      break;
    }
  }
}

/// True iff every completion of \p Conj from index \p Idx on (one DNF
/// clause per conjunct) closes to bottom. False on any possibly-satisfiable
/// completion or on budget exhaustion — never an unsound "refuted".
bool refuteConj(Ctx &C, const std::vector<const CondInst *> &Conj,
                unsigned Idx, BuildState S) {
  if (!C.budget())
    return false;
  if (S.St.isBottom())
    return true; // every extension of a bottom state stays bottom
  if (Idx == Conj.size())
    return false;
  for (const std::vector<Literal> &Clause : Conj[Idx]->DNF) {
    BuildState S2 = S;
    addClause(C, S2, *Conj[Idx], Clause);
    if (!refuteConj(C, Conj, Idx + 1, std::move(S2)))
      return false;
  }
  // An empty DNF (condition literally false) has no completions: refuted.
  return true;
}

/// True iff every alternative combination drawn from \p Dims (one Alt per
/// dimension), conjoined with \p Conj, is refuted.
bool refuteAlts(Ctx &C, const std::vector<const std::vector<Alt> *> &Dims,
                unsigned DimIdx, std::vector<const CondInst *> &Conj) {
  if (DimIdx == Dims.size())
    return refuteConj(C, Conj, 0, BuildState());
  for (const Alt &A : *Dims[DimIdx]) {
    size_t Mark = Conj.size();
    for (const CondInst &CI : A.Conds)
      Conj.push_back(&CI);
    bool Refuted = refuteAlts(C, Dims, DimIdx + 1, Conj);
    Conj.resize(Mark);
    if (!Refuted)
      return false;
  }
  return true;
}

/// Mirrors the encoder's soBefore: abstract sessions are chains in
/// transaction order.
bool soBefore(const Ctx &C, unsigned TS, unsigned TT) {
  return TS != TT && C.Tags[TS] == C.Tags[TT] && TS < TT;
}

/// Computes the feasible alternatives for one (step, label) choice, each
/// with its necessary conjuncts attached. Standalone-infeasible alternatives
/// (their own conjuncts close to bottom) are dropped: the corresponding
/// encoder disjunct is unsatisfiable, so no model realizes the step that
/// way.
std::vector<Alt> labelAlternatives(Ctx &C, unsigned From, unsigned To,
                                   int Label) {
  std::vector<Alt> Alts;
  if (Label == DepSO) {
    if (soBefore(C, From, To))
      Alts.push_back({}); // presence-only: nothing for the domain to refute
    return Alts;
  }
  for (const DepPairAlt &P :
       depPairAlternatives(C.H, From, To, Label, C.F)) {
    const AbstractEvent &AE = C.H.event(P.EU);
    const AbstractEvent &BE = C.H.event(P.EQ);
    if (AE.Container != BE.Container)
      continue; // the encoder's ¬com is false across containers
    Alt A;
    std::vector<const CondInst *> Need;
    if (!C.guards(P.EU, Need) || !C.guards(P.EQ, Need))
      continue; // an endpoint can never be present
    for (const CondInst *G : Need)
      A.Conds.push_back(*G);
    if (!C.F.Commutativity) {
      // Ablation: ¬com is the boolean satisfiability verdict.
      if (!C.G.mayInterfere(P.EU, P.EQ, P.Mode))
        continue;
    } else {
      const DataTypeSpec &Type = *C.H.schema().container(AE.Container).Type;
      Cond NotCom = C.Oracle
                        ? C.Oracle->notCommutes(Type, AE.Op, BE.Op, P.Mode)
                        : !commutesCond(Type, AE.Op, BE.Op, P.Mode);
      if (NotCom.isFalse())
        continue;
      if (!NotCom.isTrue()) {
        bool Overflow = false;
        std::vector<std::vector<Literal>> DNF = NotCom.dnf(Overflow);
        if (!Overflow)
          A.Conds.push_back({P.EU, P.EQ, std::move(DNF)});
      }
    }
    // Standalone feasibility of this alternative under facts and guards.
    std::vector<const CondInst *> Conj;
    for (const CondInst &CI : A.Conds)
      Conj.push_back(&CI);
    if (refuteConj(C, Conj, 0, BuildState()))
      continue;
    Alts.push_back(std::move(A));
  }
  return Alts;
}

/// True iff the candidate is proven unrealizable: every SC1-valid per-step
/// pick assignment, over every alternative and DNF-clause choice, closes to
/// bottom in the domain.
bool candidateKilled(Ctx &C, const CandidateCycle &Cand) {
  unsigned NumSteps = Cand.Closed
                          ? static_cast<unsigned>(Cand.Txns.size())
                          : static_cast<unsigned>(Cand.Txns.size()) - 1;
  // Feasible alternatives per (step, label). Stored stably: StepOption
  // dimensions point into this.
  std::vector<std::map<int, std::vector<Alt>>> StepAlts(NumSteps);
  std::vector<std::vector<StepOption>> Options(NumSteps);
  for (unsigned Step = 0; Step != NumSteps; ++Step) {
    unsigned From = Cand.Txns[Step];
    unsigned To = Cand.Txns[(Step + 1) % Cand.Txns.size()];
    for (int Label : Cand.StepLabels[Step]) {
      if (StepAlts[Step].count(Label))
        continue; // duplicate label on a multi-edge
      StepAlts[Step][Label] = labelAlternatives(C, From, To, Label);
    }
    for (auto &[Label, Alts] : StepAlts[Step]) {
      if (Alts.empty())
        continue; // infeasible label: assignments over it are refuted
      StepOption O;
      O.AntiCount = Label == DepAntiDep;
      O.ConfCount = Label == DepConflict;
      O.Dims.push_back(&Alts);
      Options[Step].push_back(std::move(O));
    }
    // The encoder lets one step pick several labels at once; the only
    // multi-pick that can enable SC1 on its own is anti + conflict.
    auto AntiIt = StepAlts[Step].find(DepAntiDep);
    auto ConfIt = StepAlts[Step].find(DepConflict);
    if (AntiIt != StepAlts[Step].end() && !AntiIt->second.empty() &&
        ConfIt != StepAlts[Step].end() && !ConfIt->second.empty()) {
      StepOption O;
      O.AntiCount = O.ConfCount = 1;
      O.Dims.push_back(&AntiIt->second);
      O.Dims.push_back(&ConfIt->second);
      Options[Step].push_back(std::move(O));
    }
    if (Options[Step].empty())
      return true; // no step pick can be realized at all
  }

  // Enumerate per-step option assignments; only SC1-valid ones need
  // refutation (the encoder conjoins SC1 onto every selected candidate).
  uint64_t Product = 1;
  for (unsigned Step = 0; Step != NumSteps; ++Step) {
    Product *= Options[Step].size();
    if (Product > MaxAssignments)
      return false; // too many shapes: leave it to the SMT stage
  }
  std::vector<unsigned> Choice(NumSteps, 0);
  for (uint64_t I = 0; I != Product; ++I) {
    uint64_t Rest = I;
    unsigned Anti = 0, Conf = 0;
    for (unsigned Step = 0; Step != NumSteps; ++Step) {
      Choice[Step] = static_cast<unsigned>(Rest % Options[Step].size());
      Rest /= Options[Step].size();
      Anti += Options[Step][Choice[Step]].AntiCount;
      Conf += Options[Step][Choice[Step]].ConfCount;
    }
    bool SC1 = Cand.Closed ? (Anti >= 2 || (Anti >= 1 && Conf >= 1))
                           : Anti >= 1;
    if (!SC1)
      continue; // the encoder already rules this pick set out
    std::vector<const std::vector<Alt> *> Dims;
    for (unsigned Step = 0; Step != NumSteps; ++Step)
      for (const std::vector<Alt> *D : Options[Step][Choice[Step]].Dims)
        Dims.push_back(D);
    std::vector<const CondInst *> Conj;
    if (!refuteAlts(C, Dims, 0, Conj))
      return false;
  }
  return true;
}

} // namespace

PrefilterResult c4::prefilterCandidates(
    const Unfolding &U, const SSG &G, const std::vector<CandidateCycle> &Cands,
    const AnalysisFeatures &F, CommutativityOracle *Oracle) {
  PrefilterResult R;
  R.Killed.assign(Cands.size(), false);
  Ctx C{U.H, U.SessionTags, F, G, Oracle};
  for (size_t I = 0; I != Cands.size(); ++I) {
    C.StatesLeft = MaxStatesPerCandidate;
    if (candidateKilled(C, Cands[I])) {
      R.Killed[I] = true;
      ++R.NumKilled;
    }
  }
  return R;
}
