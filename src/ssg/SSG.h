//===- ssg/SSG.h - Static serialization graphs (§6) -------------*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static serialization graph (Definition 3) and the fast serializability
/// analysis of paper §6. The SSG summarizes every DSG of every concretization
/// of an abstract history: nodes are abstract transactions; an edge (s,t)
/// labeled ⊕/⊖/⊗ exists when some event pair could form that dependency in
/// some concretization — decided by satisfiability of ¬com under the events'
/// argument facts. Theorem 3 then refutes cycles per strongly-connected
/// component:
///
///   (SC1) a real violation needs an anti-dependency (and in simple-cycle
///         settings, two of them or one plus a conflict),
///   (SC2) (a) two updates that need not absorb each other, or
///         (b) a query-before-update transaction whose query and update both
///             interfere with the component.
///
/// The SSG operates in two modes:
///  * General — the standalone fast analysis over a raw abstract history.
///    An abstract transaction summarizes arbitrarily many concrete instances
///    on unknown sessions, so self-pairs (s = t, even e = f) are considered
///    and session-local variables resolve to distinct symbols per side.
///  * Instantiated — over a k-unfolding, where every transaction has exactly
///    one concrete instance on a known abstract session (small-model
///    property U2). Used as the pre-filter and cycle-candidate enumerator
///    for the SMT stage.
///
//===----------------------------------------------------------------------===//

#ifndef C4_SSG_SSG_H
#define C4_SSG_SSG_H

#include "abstract/AbstractHistory.h"
#include "abstract/Features.h"
#include "history/DSG.h"
#include "spec/CommutativityCache.h"
#include "support/Digraph.h"

#include <functional>
#include <optional>
#include <vector>

namespace c4 {

/// A candidate violation found by the fast analysis: the transactions of one
/// suspicious strongly-connected component.
struct SSGViolation {
  std::vector<unsigned> Txns;
};

/// A simple cycle (or open path) of an instantiated SSG, as input to the
/// SMT stage: the transaction sequence plus, per step, the set of labels
/// available on the corresponding edge. For cycles the final step wraps
/// from Txns.back() to Txns.front(); for open paths (§7.2 segments) there
/// are Txns.size()-1 steps and no SC1 requirement beyond one
/// anti-dependency.
struct CandidateCycle {
  std::vector<unsigned> Txns;
  std::vector<std::vector<int>> StepLabels;
  bool Closed = true;
};

/// One event-pair alternative behind a D1-D3 dependency edge disjunct: the
/// update-side event \p EU (always passed first to ¬com), the other event
/// \p EQ, and the commute mode of the ¬com conjunct.
struct DepPairAlt {
  unsigned EU;
  unsigned EQ;
  CommuteMode Mode;
};

/// Enumerates the event-pair alternatives of the edge (\p TS, \p TT,
/// \p Label): exactly the disjuncts the SMT encoder's edge formula ranges
/// over, in the same order. DepSO yields no pairs (it is a pure presence
/// edge; callers test session order themselves). Both the encoder and the
/// domain prefilter consume this, so the two stages can never drift apart
/// on which pairs realize an edge.
std::vector<DepPairAlt> depPairAlternatives(const AbstractHistory &A,
                                            unsigned TS, unsigned TT,
                                            int Label,
                                            const AnalysisFeatures &F);

/// Builds and analyzes the SSG of an abstract history.
class SSG {
public:
  /// General mode (standalone fast analysis).
  SSG(const AbstractHistory &A, const AnalysisFeatures &F);
  /// Instantiated mode (unfoldings): \p SessionTags gives each transaction's
  /// abstract session; transactions are one-to-one.
  SSG(const AbstractHistory &A, const AnalysisFeatures &F,
      std::vector<unsigned> SessionTags);

  /// Restricts the analysis to a subset of non-marker events (display-code
  /// and atomic-set filters, §9.1). Must be called before analyze().
  void setEventMask(std::vector<bool> Mask);

  /// Attaches a shared memoization oracle for the ¬com / ¬abs conditions
  /// and their satisfiability verdicts. Optional: without it, every query
  /// is computed from scratch (identical verdicts, more work). The oracle
  /// must outlive this SSG; it may be shared across SSGs and threads.
  void setOracle(CommutativityOracle *O) { Oracle = O; }

  /// Installs an optional satisfiability assist (see SatAssist): a sound
  /// decision procedure strengthening the edge-satisfiability tests with
  /// ordering and fresh-value structure. Consulted both through the oracle
  /// (distinct cache keys) and on the oracle-free path, so verdicts agree
  /// either way. The callback must outlive this SSG.
  void setSatAssist(const SatAssist *A) { Assist = A; }

  /// Builds the graph and runs the Theorem 3 checks.
  void analyze();

  const Digraph &graph() const { return Graph; }

  /// Potential violations (one per suspicious SCC). Empty means the abstract
  /// history is proved serializable by the fast analysis.
  const std::vector<SSGViolation> &violations() const { return Violations; }
  bool provesSerializable() const { return Violations.empty(); }

  /// Instantiated mode only: enumerates SC1-feasible simple cycles for the
  /// SMT stage.
  std::vector<CandidateCycle> candidateCycles(unsigned MaxCycles,
                                              bool &Truncated) const;

  /// Instantiated mode only: enumerates the §7.2 *segment patterns* —
  /// simple paths that span every abstract session (given by
  /// \p SessionTags at construction, \p NumSessions in total) and can carry
  /// at least one anti-dependency step.
  /// \p OrigTxn maps each transaction to its original (syntactic)
  /// transaction, used to collapse session-symmetric duplicates.
  /// \p Keep, when set, filters segments during enumeration (the analyzer
  /// drops segments already subsumed by known violations); only kept
  /// segments count toward \p MaxSegments.
  /// \p RequireAllTxns restricts to segments visiting every transaction —
  /// any segment is covered by the unfolding holding exactly its
  /// transactions, so the generalization check only needs those.
  std::vector<CandidateCycle> spanningSegments(
      unsigned NumSessions, unsigned MaxSegments, bool &Truncated,
      const std::vector<unsigned> &OrigTxn,
      const std::function<bool(const CandidateCycle &)> *Keep = nullptr,
      bool RequireAllTxns = false) const;

  /// The satisfiability test behind the edges: can events \p E and \p F (in
  /// transactions with the given side roles) interfere in mode \p Mode?
  /// Exposed for the SMT encoder and for tests.
  bool mayInterfere(unsigned E, unsigned F, CommuteMode Mode) const;

  /// Can update \p U fail to be absorbed by update \p V?
  bool mayNotAbsorb(unsigned U, unsigned V) const;

private:
  EventFacts factsFor(unsigned Event, bool SourceSide) const;
  bool included(unsigned Event) const;
  bool checkSC2(const std::vector<unsigned> &SCCTxns) const;

  const AbstractHistory &A;
  AnalysisFeatures Features;
  CommutativityOracle *Oracle = nullptr;
  const SatAssist *Assist = nullptr;
  std::optional<std::vector<unsigned>> SessionTags; // instantiated mode
  std::vector<bool> EventMask;
  Digraph Graph;
  std::vector<SSGViolation> Violations;
};

} // namespace c4

#endif // C4_SSG_SSG_H
