//===- ssg/GraphExport.cpp ------------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "ssg/GraphExport.h"

#include "history/DSG.h"
#include "support/Format.h"

using namespace c4;

/// DOT attributes per edge label, echoing the paper's figure style.
static const char *edgeStyle(int Label) {
  switch (Label) {
  case DepSO:
    return "color=black label=\"so\"";
  case DepDependency:
    return "color=blue style=dashed label=\"+\"";
  case DepAntiDep:
    return "color=red style=bold label=\"-\"";
  case DepConflict:
    return "color=darkgreen style=dotted label=\"x\"";
  }
  return "";
}

static std::string escapeDot(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

std::string c4::ssgToDot(const AbstractHistory &A, const Digraph &G) {
  std::string Out = "digraph SSG {\n  node [shape=box];\n";
  for (unsigned T = 0; T != A.numTxns(); ++T) {
    std::string Label = A.txn(T).Name + "\\n";
    for (unsigned E : A.txn(T).Events) {
      if (A.event(E).isMarker())
        continue;
      Label += escapeDot(A.event(E).Label) + "\\n";
    }
    Out += strf("  t%u [label=\"%s\"];\n", T, Label.c_str());
  }
  for (const Digraph::Edge &E : G.edges())
    Out += strf("  t%u -> t%u [%s];\n", E.From, E.To, edgeStyle(E.Label));
  Out += "}\n";
  return Out;
}

std::string c4::dsgToDot(const History &H, const Digraph &G) {
  std::string Out = "digraph DSG {\n  node [shape=box];\n";
  for (unsigned T = 0; T != H.numTransactions(); ++T) {
    std::string Label = strf("s%u\\n", H.txn(T).Session);
    for (unsigned E : H.txn(T).Events)
      Label += escapeDot(H.eventStr(E)) + "\\n";
    Out += strf("  t%u [label=\"%s\"];\n", T, Label.c_str());
  }
  for (const Digraph::Edge &E : G.edges())
    Out += strf("  t%u -> t%u [%s];\n", E.From, E.To, edgeStyle(E.Label));
  Out += "}\n";
  return Out;
}
