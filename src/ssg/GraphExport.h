//===- ssg/GraphExport.h - Graphviz rendering of SSGs and DSGs --*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders serialization graphs in Graphviz DOT format, in the style of the
/// paper's figures: session-order edges solid, dependencies (⊕) dashed,
/// anti-dependencies (⊖) bold red, conflicts (⊗) dotted.
///
//===----------------------------------------------------------------------===//

#ifndef C4_SSG_GRAPHEXPORT_H
#define C4_SSG_GRAPHEXPORT_H

#include "abstract/AbstractHistory.h"
#include "history/History.h"
#include "support/Digraph.h"

#include <string>

namespace c4 {

/// Renders a static serialization graph over the abstract transactions of
/// \p A as a DOT digraph.
std::string ssgToDot(const AbstractHistory &A, const Digraph &G);

/// Renders a dependency serialization graph over the concrete transactions
/// of \p H (nodes list their events, as in Figure 1 of the paper).
std::string dsgToDot(const History &H, const Digraph &G);

} // namespace c4

#endif // C4_SSG_GRAPHEXPORT_H
