//===- ssg/SSG.cpp --------------------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "ssg/SSG.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <set>

using namespace c4;

SSG::SSG(const AbstractHistory &A, const AnalysisFeatures &F)
    : A(A), Features(F) {}

SSG::SSG(const AbstractHistory &A, const AnalysisFeatures &F,
         std::vector<unsigned> Tags)
    : A(A), Features(F), SessionTags(std::move(Tags)) {
  assert(SessionTags->size() == A.numTxns() && "one tag per transaction");
}

void SSG::setEventMask(std::vector<bool> Mask) {
  assert(Mask.size() == A.numEvents() && "mask covers all events");
  EventMask = std::move(Mask);
}

bool SSG::included(unsigned Event) const {
  if (A.event(Event).isMarker())
    return false;
  return EventMask.empty() || EventMask[Event];
}

EventFacts SSG::factsFor(unsigned Event, bool SourceSide) const {
  if (!Features.Constraints) {
    // Drop all invariants: every slot is free.
    return EventFacts(A.op(Event).numVals());
  }
  unsigned Tag;
  if (SessionTags) {
    Tag = (*SessionTags)[A.event(Event).Txn];
  } else {
    // General mode: a transaction summarizes instances on unknown sessions.
    // Resolving the two sides of a pair to distinct sessions is the most
    // permissive (hence sound) choice.
    Tag = 2 * A.event(Event).Txn + (SourceSide ? 0 : 1);
  }
  return A.resolveFacts(Event, Tag);
}

bool SSG::mayInterfere(unsigned E, unsigned F, CommuteMode Mode) const {
  const AbstractEvent &AE = A.event(E);
  const AbstractEvent &AF = A.event(F);
  if (AE.Container != AF.Container)
    return false; // cross-container events always commute
  const DataTypeSpec &Type = *A.schema().container(AE.Container).Type;
  if (Oracle) {
    const Cond &NotCom = Oracle->notCommutes(Type, AE.Op, AF.Op, Mode);
    if (NotCom.isFalse())
      return false;
    if (NotCom.isTrue())
      return true;
    return Oracle->notCommutesSatisfiable(Type, AE.Op, AF.Op, Mode,
                                          factsFor(E, /*SourceSide=*/true),
                                          factsFor(F, /*SourceSide=*/false),
                                          Assist);
  }
  Cond NotCom = !commutesCond(Type, AE.Op, AF.Op, Mode);
  if (NotCom.isFalse())
    return false;
  EventFacts SrcF = factsFor(E, /*SourceSide=*/true);
  EventFacts TgtF = factsFor(F, /*SourceSide=*/false);
  if (Assist && *Assist) {
    AssistVerdict AV = (*Assist)(NotCom, SrcF, TgtF);
    if (AV != AssistVerdict::Unknown)
      return AV == AssistVerdict::Sat;
  }
  return NotCom.satisfiableUnder(SrcF, TgtF);
}

bool SSG::mayNotAbsorb(unsigned U, unsigned V) const {
  if (!Features.Absorption)
    return true; // ablation: absorption replaced by false
  const AbstractEvent &AU = A.event(U);
  const AbstractEvent &AV = A.event(V);
  if (AU.Container != AV.Container)
    return true; // cross-container updates never absorb
  const DataTypeSpec &Type = *A.schema().container(AU.Container).Type;
  if (Oracle) {
    const Cond &NotAbs = Oracle->notAbsorbs(Type, AU.Op, AV.Op, /*Far=*/true);
    if (NotAbs.isFalse())
      return false;
    if (NotAbs.isTrue())
      return true;
    return Oracle->notAbsorbsSatisfiable(Type, AU.Op, AV.Op, /*Far=*/true,
                                         factsFor(U, /*SourceSide=*/true),
                                         factsFor(V, /*SourceSide=*/false),
                                         Assist);
  }
  Cond NotAbs = !absorbsCond(Type, AU.Op, AV.Op, /*Far=*/true);
  if (NotAbs.isFalse())
    return false;
  if (NotAbs.isTrue())
    return true;
  EventFacts SrcF = factsFor(U, /*SourceSide=*/true);
  EventFacts TgtF = factsFor(V, /*SourceSide=*/false);
  if (Assist && *Assist) {
    AssistVerdict AV2 = (*Assist)(NotAbs, SrcF, TgtF);
    if (AV2 != AssistVerdict::Unknown)
      return AV2 == AssistVerdict::Sat;
  }
  return NotAbs.satisfiableUnder(SrcF, TgtF);
}

std::vector<DepPairAlt> c4::depPairAlternatives(const AbstractHistory &A,
                                                unsigned TS, unsigned TT,
                                                int Label,
                                                const AnalysisFeatures &F) {
  std::vector<DepPairAlt> R;
  switch (Label) {
  case DepSO:
    break; // presence-only edge, no event pairs
  case DepDependency:
    // (D1) ⊕: an update of TS visible to a query of TT.
    for (unsigned EU : A.txn(TS).Events) {
      if (A.event(EU).isMarker() || !A.isUpdate(EU))
        continue;
      for (unsigned EQ : A.txn(TT).Events) {
        if (A.event(EQ).isMarker() || !A.isQuery(EQ))
          continue;
        R.push_back({EU, EQ, CommuteMode::Far});
      }
    }
    break;
  case DepAntiDep:
    // (D2) ⊖ runs from the query's transaction TS to the update's TT.
    for (unsigned EQ : A.txn(TS).Events) {
      if (A.event(EQ).isMarker() || !A.isQuery(EQ))
        continue;
      for (unsigned EU : A.txn(TT).Events) {
        if (A.event(EU).isMarker() || !A.isUpdate(EU))
          continue;
        R.push_back({EU, EQ,
                     F.AsymmetricAntiDeps ? CommuteMode::Asym
                                          : CommuteMode::Far});
      }
    }
    break;
  case DepConflict:
    // (D3) ⊗: two non-commuting updates, arbitration-ordered.
    for (unsigned EU : A.txn(TS).Events) {
      if (A.event(EU).isMarker() || !A.isUpdate(EU))
        continue;
      for (unsigned EV : A.txn(TT).Events) {
        if (A.event(EV).isMarker() || !A.isUpdate(EV))
          continue;
        R.push_back({EU, EV, CommuteMode::Plain});
      }
    }
    break;
  }
  return R;
}

void SSG::analyze() {
  unsigned NumTxns = A.numTxns();
  Graph = Digraph(NumTxns);
  Violations.clear();

  // Session-order edges: the transitive closure of the may-follow relation.
  std::vector<std::vector<bool>> SoClosure(NumTxns,
                                           std::vector<bool>(NumTxns, false));
  for (unsigned S = 0; S != NumTxns; ++S)
    for (unsigned T = 0; T != NumTxns; ++T)
      SoClosure[S][T] = A.maySo(S, T);
  for (unsigned K = 0; K != NumTxns; ++K)
    for (unsigned I = 0; I != NumTxns; ++I) {
      if (!SoClosure[I][K])
        continue;
      for (unsigned J = 0; J != NumTxns; ++J)
        if (SoClosure[K][J])
          SoClosure[I][J] = true;
    }
  for (unsigned S = 0; S != NumTxns; ++S)
    for (unsigned T = 0; T != NumTxns; ++T) {
      if (!SoClosure[S][T])
        continue;
      if (SessionTags && (S == T || (*SessionTags)[S] != (*SessionTags)[T]))
        continue;
      Graph.addEdge(S, T, DepSO);
    }

  // Dependency edges: one per (pair, label).
  bool General = !SessionTags.has_value();
  for (unsigned S = 0; S != NumTxns; ++S)
    for (unsigned T = 0; T != NumTxns; ++T) {
      if (!General && S == T)
        continue;
      bool HasDep = false, HasAnti = false, HasConf = false;
      for (unsigned E : A.txn(S).Events) {
        if (!included(E))
          continue;
        for (unsigned F : A.txn(T).Events) {
          if (!included(F))
            continue;
          if (!General && E == F)
            continue;
          bool EUpd = A.isUpdate(E), FUpd = A.isUpdate(F);
          if (EUpd && !FUpd && !HasDep)
            HasDep = mayInterfere(E, F, CommuteMode::Far);
          if (!EUpd && FUpd && !HasAnti)
            HasAnti = mayInterfere(E, F,
                                   Features.AsymmetricAntiDeps
                                       ? CommuteMode::Asym
                                       : CommuteMode::Far);
          if (EUpd && FUpd && !HasConf)
            HasConf = mayInterfere(E, F, CommuteMode::Plain);
          if (HasDep && HasAnti && HasConf)
            break;
        }
        if (HasDep && HasAnti && HasConf)
          break;
      }
      if (HasDep)
        Graph.addEdge(S, T, DepDependency);
      if (HasAnti)
        Graph.addEdge(S, T, DepAntiDep);
      if (HasConf)
        Graph.addEdge(S, T, DepConflict);
    }

  // Theorem 3 per strongly-connected component.
  unsigned NumComponents = 0;
  std::vector<unsigned> Comp = Graph.stronglyConnectedComponents(
      NumComponents);
  std::vector<std::vector<unsigned>> Members(NumComponents);
  for (unsigned T = 0; T != NumTxns; ++T)
    Members[Comp[T]].push_back(T);
  // A component is cyclic if it has more than one member or a self-loop.
  std::vector<bool> Cyclic(NumComponents, false);
  for (unsigned C = 0; C != NumComponents; ++C)
    Cyclic[C] = Members[C].size() > 1;
  for (const Digraph::Edge &E : Graph.edges())
    if (E.From == E.To)
      Cyclic[Comp[E.From]] = true;

  for (unsigned C = 0; C != NumComponents; ++C) {
    if (!Cyclic[C])
      continue;
    // (SC1): the component must offer an anti-dependency edge. In general
    // mode a closed walk may traverse it twice, so one suffices.
    bool HasAnti = false;
    for (const Digraph::Edge &E : Graph.edges())
      if (E.Label == DepAntiDep && Comp[E.From] == C && Comp[E.To] == C)
        HasAnti = true;
    if (!HasAnti)
      continue;
    if (!checkSC2(Members[C]))
      continue;
    Violations.push_back({Members[C]});
  }
}

bool SSG::checkSC2(const std::vector<unsigned> &SCCTxns) const {
  // Collect the component's included events.
  std::vector<unsigned> Events, Updates;
  for (unsigned T : SCCTxns)
    for (unsigned E : A.txn(T).Events) {
      if (!included(E))
        continue;
      Events.push_back(E);
      if (A.isUpdate(E))
        Updates.push_back(E);
    }

  // (SC2a): two updates that may fail to absorb each other. In general mode
  // u and v may be two instances of the same abstract event.
  bool General = !SessionTags.has_value();
  for (unsigned U : Updates)
    for (unsigned V : Updates) {
      if (!General && U == V)
        continue;
      if (mayNotAbsorb(U, V))
        return true;
    }

  // (SC2b): a transaction with a query q followed (eo+) by an update u such
  // that u interferes with some component event and q with some component
  // update.
  for (unsigned T : SCCTxns)
    for (unsigned Q : A.txn(T).Events) {
      if (!included(Q) || !A.isQuery(Q))
        continue;
      for (unsigned U : A.txn(T).Events) {
        if (!included(U) || !A.isUpdate(U))
          continue;
        if (Features.ControlFlow && !A.eoReaches(Q, U))
          continue;
        bool UInterferes = false;
        for (unsigned E : Events)
          if ((E != U || General) &&
              mayInterfere(U, E, CommuteMode::Plain)) {
            UInterferes = true;
            break;
          }
        if (!UInterferes)
          continue;
        for (unsigned V : Updates)
          if ((V != Q || General) && mayInterfere(Q, V, CommuteMode::Far))
            return true;
      }
    }
  return false;
}

std::vector<CandidateCycle> SSG::candidateCycles(unsigned MaxCycles,
                                                 bool &Truncated) const {
  assert(SessionTags && "candidate cycles are for instantiated SSGs");
  std::vector<CandidateCycle> Result;
  std::vector<std::vector<unsigned>> Cycles =
      Graph.simpleCycles(MaxCycles, Truncated);
  for (const std::vector<unsigned> &Nodes : Cycles) {
    if (Nodes.size() < 2)
      continue;
    CandidateCycle C;
    C.Txns = Nodes;
    bool Ok = true;
    unsigned AntiSteps = 0, ConfSteps = 0;
    for (unsigned I = 0; I != Nodes.size() && Ok; ++I) {
      unsigned From = Nodes[I], To = Nodes[(I + 1) % Nodes.size()];
      std::vector<int> Labels;
      for (unsigned EI : Graph.edgesBetween(From, To))
        Labels.push_back(Graph.edge(EI).Label);
      if (Labels.empty())
        Ok = false;
      C.StepLabels.push_back(Labels);
      for (int L : Labels) {
        if (L == DepAntiDep) {
          ++AntiSteps;
          break;
        }
      }
      for (int L : Labels) {
        if (L == DepConflict) {
          ++ConfSteps;
          break;
        }
      }
    }
    if (!Ok)
      continue;
    // (SC1) on a simple cycle: two anti-dependency steps, or one anti step
    // plus a conflict step at a different position.
    bool SC1 = AntiSteps >= 2;
    if (!SC1 && AntiSteps == 1 && ConfSteps >= 1) {
      unsigned AntiAt = ~0u;
      for (unsigned I = 0; I != C.StepLabels.size() && AntiAt == ~0u; ++I)
        for (int L : C.StepLabels[I])
          if (L == DepAntiDep) {
            AntiAt = I;
            break;
          }
      for (unsigned I = 0; I != C.StepLabels.size() && !SC1; ++I) {
        if (I == AntiAt)
          continue;
        for (int L : C.StepLabels[I])
          if (L == DepConflict) {
            SC1 = true;
            break;
          }
      }
    }
    if (!SC1)
      continue;
    Result.push_back(std::move(C));
  }
  return Result;
}

std::vector<CandidateCycle> SSG::spanningSegments(
    unsigned NumSessions, unsigned MaxSegments, bool &Truncated,
    const std::vector<unsigned> &OrigTxn,
    const std::function<bool(const CandidateCycle &)> *Keep,
    bool RequireAllTxns) const {
  assert(SessionTags && "segments are for instantiated SSGs");
  Truncated = false;
  std::vector<CandidateCycle> Result;
  const Digraph &D = Graph;
  unsigned FullMask = (1u << NumSessions) - 1;

  // Session symmetry: two segments with the same original-transaction
  // sequence, labels, and same-session sharing pattern describe the same
  // pattern; keep one.
  std::set<std::vector<int>> Signatures;
  auto Record = [&](CandidateCycle C) {
    std::vector<int> Sig;
    for (unsigned I = 0; I != C.Txns.size(); ++I) {
      Sig.push_back(-1 - static_cast<int>(OrigTxn[C.Txns[I]]));
      // First path position sharing this node's session.
      for (unsigned J = 0; J <= I; ++J)
        if ((*SessionTags)[C.Txns[J]] == (*SessionTags)[C.Txns[I]]) {
          Sig.push_back(static_cast<int>(J));
          break;
        }
    }
    for (const std::vector<int> &Labels : C.StepLabels) {
      std::vector<int> Sorted = Labels;
      std::sort(Sorted.begin(), Sorted.end());
      Sig.push_back(-1000);
      Sig.insert(Sig.end(), Sorted.begin(), Sorted.end());
    }
    if (!Signatures.insert(std::move(Sig)).second)
      return;
    if (Keep && !(*Keep)(C))
      return;
    Result.push_back(std::move(C));
  };

  std::vector<bool> OnPath(D.numNodes(), false);
  std::vector<unsigned> Path;
  std::function<void(unsigned, unsigned, bool)> Dfs =
      [&](unsigned Node, unsigned SessMask, bool Anti) {
        if (Result.size() >= MaxSegments) {
          Truncated = true;
          return;
        }
        if (Path.size() > 2 * NumSessions)
          return; // minimal cycles use at most two txns per session
        if (SessMask == FullMask && Anti && Path.size() >= 2 &&
            (!RequireAllTxns || Path.size() == D.numNodes())) {
          // Materialize the segment with per-step label sets. Extensions of
          // a satisfied segment are redundant (any cycle containing the
          // extension also contains this minimal segment), so stop here.
          CandidateCycle C;
          C.Txns = Path;
          C.Closed = false;
          for (unsigned I = 0; I + 1 < Path.size(); ++I) {
            std::vector<int> Labels;
            for (unsigned EI : D.edgesBetween(Path[I], Path[I + 1]))
              Labels.push_back(D.edge(EI).Label);
            C.StepLabels.push_back(Labels);
          }
          Record(std::move(C));
          return;
        }
        for (unsigned EI : D.succEdges(Node)) {
          const Digraph::Edge &E = D.edge(EI);
          if (OnPath[E.To])
            continue;
          OnPath[E.To] = true;
          Path.push_back(E.To);
          Dfs(E.To, SessMask | (1u << (*SessionTags)[E.To]),
              Anti || E.Label == DepAntiDep);
          Path.pop_back();
          OnPath[E.To] = false;
        }
      };
  for (unsigned Start = 0; Start != D.numNodes(); ++Start) {
    OnPath[Start] = true;
    Path = {Start};
    Dfs(Start, 1u << (*SessionTags)[Start], false);
    OnPath[Start] = false;
  }
  return Result;
}
