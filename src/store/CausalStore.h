//===- store/CausalStore.h - Replicated causal store simulator --*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simulator for a causally-consistent, replicated data store with atomic
/// visibility — the execution substrate the paper's client applications run
/// on (COPS / Eiger / Walter / TouchDevelop-style). Substitutes for the
/// authors' deployments (see DESIGN.md).
///
///  * Transactions execute at one replica: queries see the transactions the
///    replica has received (plus the transaction's own buffered updates);
///    updates are buffered and commit as one atomic block.
///  * Replication delivers whole blocks, respecting causal order (a block is
///    deliverable only after everything its origin had seen). Hence
///    visibility is transitively closed and includes session order (S2) and
///    never fractures transactions (S3).
///  * Arbitration is a Lamport timestamp (logical clock, replica id
///    tie-break): replicas fold received blocks in timestamp order, so
///    concurrent conflicting updates resolve identically everywhere
///    (last-writer-wins) and query outcomes satisfy S1.
///
/// The store records everything into a History + Schedule, which tests
/// validate against the S1-S3 axioms and the dynamic analyzer consumes.
///
//===----------------------------------------------------------------------===//

#ifndef C4_STORE_CAUSALSTORE_H
#define C4_STORE_CAUSALSTORE_H

#include "history/Schedule.h"
#include "support/Rng.h"

#include <memory>
#include <set>
#include <vector>

namespace c4 {

/// Delivery discipline of the simulator. Causal delivery (the default) is
/// what the paper's stores guarantee; Eventual delivers blocks in any
/// order, demonstrating the anomalies causal consistency rules out (the
/// premise of the paper: causal is the strongest always-available model).
enum class ConsistencyMode { Causal, Eventual };

/// The replicated store simulator.
class CausalStore {
public:
  /// Creates a store over \p Sch with \p NumReplicas replicas.
  CausalStore(const Schema &Sch, unsigned NumReplicas,
              ConsistencyMode Mode = ConsistencyMode::Causal);

  unsigned numReplicas() const {
    return static_cast<unsigned>(Replicas.size());
  }

  /// Opens a client session pinned to \p Replica; returns the session id.
  unsigned openSession(unsigned Replica);

  /// Starts a transaction for \p Session. Only one transaction per session
  /// may be open at a time.
  void begin(unsigned Session);
  /// Executes a query inside the open transaction; returns its value.
  int64_t query(unsigned Session, unsigned Container, unsigned Op,
                const std::vector<int64_t> &Args);
  /// Buffers an update inside the open transaction. For fresh-id creators
  /// (add_row) the chosen identity is returned; other updates return 0.
  int64_t update(unsigned Session, unsigned Container, unsigned Op,
                 std::vector<int64_t> Args);
  /// Commits the open transaction: its block becomes visible at the origin
  /// replica and eligible for replication.
  void commit(unsigned Session);

  /// Delivers one random pending block to one random replica, respecting
  /// causal order. Returns false if nothing was deliverable.
  bool deliverRandom(Rng &R);
  /// Delivers everything everywhere (quiescence).
  void deliverAll();

  /// The recorded execution so far (committed transactions only).
  const History &history() const { return H; }
  /// The recorded schedule: visibility from delivery, arbitration from the
  /// Lamport order. Built on demand.
  Schedule schedule() const;

private:
  struct Block {
    unsigned Txn; ///< transaction id in H
    unsigned Origin;
    uint64_t Stamp; ///< Lamport time (already tie-broken by origin)
    std::set<unsigned> Seen; ///< blocks visible at the origin when created
    std::vector<unsigned> Updates; ///< event ids of the block's updates
  };
  struct Replica {
    std::set<unsigned> Received; ///< block indices received (causally closed)
  };
  struct Session {
    unsigned Replica;
    int OpenTxn = -1;              ///< txn id in H, -1 if none
    std::set<unsigned> SeenBlocks; ///< session guarantee: read your writes
    std::vector<unsigned> BufferedUpdates; ///< event ids
    std::vector<unsigned> BufferedQueries; ///< event ids
  };

  /// Evaluates a query against the blocks in \p Visible (folded in stamp
  /// order) plus the session's buffered updates.
  int64_t evalAt(const std::set<unsigned> &Visible,
                 const std::vector<unsigned> &Buffer, unsigned Container,
                 unsigned Op, const std::vector<int64_t> &Args) const;

  const Schema *Sch;
  ConsistencyMode Mode;
  History H;
  std::vector<Block> Blocks;
  std::vector<Replica> Replicas;
  std::vector<Session> Sessions;
  uint64_t Clock = 1;
  int64_t NextFresh;
};

} // namespace c4

#endif // C4_STORE_CAUSALSTORE_H
