//===- store/DynamicAnalyzer.cpp ------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "store/DynamicAnalyzer.h"

#include "history/Relations.h"

#include <algorithm>
#include <set>

using namespace c4;

DynamicReport c4::analyzeDynamic(const History &H, const Schedule &S,
                                 unsigned MaxCycles) {
  DynamicReport Report;
  EventRelations Rel(H, FarMode::Fixpoint);
  DependenceTriple T = computeDependencies(H, S, Rel);
  Digraph G = buildDSG(H, T);
  bool Truncated = false;
  std::vector<std::vector<unsigned>> Cycles =
      G.simpleCycles(MaxCycles, Truncated);
  std::set<std::vector<unsigned>> Sets;
  for (std::vector<unsigned> &C : Cycles) {
    std::sort(C.begin(), C.end());
    C.erase(std::unique(C.begin(), C.end()), C.end());
    if (Sets.insert(C).second)
      Report.CycleTxnSets.push_back(C);
  }
  return Report;
}
