//===- store/Interpreter.cpp ----------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "store/Interpreter.h"

#include <cassert>

using namespace c4;

int64_t ProgramRunner::evalExpr(const Expr &E, unsigned Session,
                                const std::map<std::string, int64_t> &Env)
    const {
  switch (E.Kind) {
  case Expr::IntLit:
    return E.Value;
  case Expr::StringLit:
    return P.Strings->intern(E.Text);
  case Expr::Name: {
    auto It = Env.find(E.Text);
    if (It != Env.end())
      return It->second;
    auto SC = SessionConsts.find({Session, E.Text});
    if (SC != SessionConsts.end())
      return SC->second;
    auto GC = GlobalConsts.find(E.Text);
    if (GC != GlobalConsts.end())
      return GC->second;
    return 0; // unset constants read as 0
  }
  }
  return 0;
}

void ProgramRunner::runStmts(const std::vector<StmtPtr> &Stmts,
                             unsigned Session,
                             std::map<std::string, int64_t> &Env,
                             bool &Returned) {
  for (const StmtPtr &SP : Stmts) {
    if (Returned)
      return;
    const Stmt &S = *SP;
    switch (S.Kind) {
    case Stmt::Call:
    case Stmt::Let: {
      int Container = P.Sch->lookup(S.Container);
      assert(Container >= 0 && "sema guarantees known containers");
      const DataTypeSpec *Type =
          P.Sch->container(static_cast<unsigned>(Container)).Type;
      const OpSig *Op = Type->findOp(S.Op);
      assert(Op && "sema guarantees known operations");
      std::vector<int64_t> Args;
      for (const Expr &E : S.Args)
        Args.push_back(evalExpr(E, Session, Env));
      int64_t Result;
      if (Op->isQuery())
        Result = Store.query(Session, static_cast<unsigned>(Container),
                             Type->opIndex(*Op), Args);
      else
        Result = Store.update(Session, static_cast<unsigned>(Container),
                              Type->opIndex(*Op), std::move(Args));
      if (S.Kind == Stmt::Let)
        Env[S.LetName] = Result;
      break;
    }
    case Stmt::If: {
      int64_t V = 0;
      auto It = Env.find(S.Cond.Name);
      if (It != Env.end())
        V = It->second;
      else
        V = evalExpr(Expr{Expr::Name, 0, S.Cond.Name, S.Cond.Line}, Session,
                     Env);
      bool Taken = false;
      int64_t Rhs = 0;
      if (S.Cond.Cmp != CondExpr::Truthy && S.Cond.Cmp != CondExpr::Falsy)
        Rhs = evalExpr(S.Cond.Rhs, Session, Env);
      switch (S.Cond.Cmp) {
      case CondExpr::Truthy:
        Taken = V != 0;
        break;
      case CondExpr::Falsy:
        Taken = V == 0;
        break;
      case CondExpr::Eq:
        Taken = V == Rhs;
        break;
      case CondExpr::Ne:
        Taken = V != Rhs;
        break;
      case CondExpr::Lt:
        Taken = V < Rhs;
        break;
      case CondExpr::Le:
        Taken = V <= Rhs;
        break;
      case CondExpr::Gt:
        Taken = V > Rhs;
        break;
      case CondExpr::Ge:
        Taken = V >= Rhs;
        break;
      }
      runStmts(Taken ? S.Then : S.Else, Session, Env, Returned);
      break;
    }
    case Stmt::Display:
    case Stmt::Skip:
      break;
    case Stmt::Return:
      Returned = true;
      return;
    }
  }
}

bool ProgramRunner::runTxn(unsigned Session, const std::string &Name,
                           const std::vector<int64_t> &Args,
                           std::string &Error) {
  const TxnDecl *Decl = nullptr;
  for (const TxnDecl &T : P.AST->Txns)
    if (T.Name == Name)
      Decl = &T;
  if (!Decl) {
    Error = "unknown transaction '" + Name + "'";
    return false;
  }
  if (Args.size() != Decl->Params.size()) {
    Error = "argument count mismatch for '" + Name + "'";
    return false;
  }
  std::map<std::string, int64_t> Env;
  for (unsigned I = 0; I != Args.size(); ++I)
    Env[Decl->Params[I]] = Args[I];
  Store.begin(Session);
  bool Returned = false;
  runStmts(Decl->Body, Session, Env, Returned);
  Store.commit(Session);
  return true;
}
