//===- store/Interpreter.h - Run C4L programs on the store ------*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes compiled C4L transactions concretely against the causal store
/// simulator. Used by the dynamic-analysis comparison (§9.5) and examples.
///
//===----------------------------------------------------------------------===//

#ifndef C4_STORE_INTERPRETER_H
#define C4_STORE_INTERPRETER_H

#include "frontend/Frontend.h"
#include "store/CausalStore.h"

#include <map>
#include <string>
#include <vector>

namespace c4 {

/// Runs the transactions of a compiled program on a store.
class ProgramRunner {
public:
  ProgramRunner(const CompiledProgram &Prog, CausalStore &S)
      : P(Prog), Store(S) {}

  /// Fixes the value of a session-local constant for one session.
  void setSessionConst(unsigned Session, const std::string &Name,
                       int64_t Value) {
    SessionConsts[{Session, Name}] = Value;
  }
  /// Fixes the value of a global constant.
  void setGlobalConst(const std::string &Name, int64_t Value) {
    GlobalConsts[Name] = Value;
  }

  /// Executes transaction \p Name with \p Args in \p Session (begins and
  /// commits it). Returns false and sets \p Error on failure (unknown
  /// transaction, argument mismatch). Unset constants default to 0.
  bool runTxn(unsigned Session, const std::string &Name,
              const std::vector<int64_t> &Args, std::string &Error);

private:
  int64_t evalExpr(const Expr &E, unsigned Session,
                   const std::map<std::string, int64_t> &Env) const;
  void runStmts(const std::vector<StmtPtr> &Stmts, unsigned Session,
                std::map<std::string, int64_t> &Env, bool &Returned);

  const CompiledProgram &P;
  CausalStore &Store;
  std::map<std::pair<unsigned, std::string>, int64_t> SessionConsts;
  std::map<std::string, int64_t> GlobalConsts;
};

} // namespace c4

#endif // C4_STORE_INTERPRETER_H
