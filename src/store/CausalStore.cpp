//===- store/CausalStore.cpp ----------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "store/CausalStore.h"

#include <algorithm>
#include <cassert>

using namespace c4;

/// Fresh identities minted by the store (same convention as the encoder).
static constexpr int64_t StoreFreshBase = 1000000000;

CausalStore::CausalStore(const Schema &Sch, unsigned NumReplicas,
                         ConsistencyMode Mode)
    : Sch(&Sch), Mode(Mode), H(Sch), Replicas(NumReplicas),
      NextFresh(StoreFreshBase) {
  assert(NumReplicas > 0 && "need at least one replica");
}

unsigned CausalStore::openSession(unsigned Replica) {
  assert(Replica < numReplicas() && "unknown replica");
  unsigned Id = H.addSession();
  Sessions.push_back({Replica, -1, {}, {}, {}});
  return Id;
}

void CausalStore::begin(unsigned SessionId) {
  Session &S = Sessions[SessionId];
  assert(S.OpenTxn < 0 && "transaction already open");
  S.OpenTxn = static_cast<int>(H.beginTransaction(SessionId));
  // Snapshot the replica's received blocks: queries of this transaction
  // read a frozen, causally-closed view (deliveries during the transaction
  // do not leak in).
  S.SeenBlocks = Replicas[S.Replica].Received;
  S.BufferedUpdates.clear();
  S.BufferedQueries.clear();
}

int64_t CausalStore::evalAt(const std::set<unsigned> &Visible,
                            const std::vector<unsigned> &Buffer,
                            unsigned Container, unsigned Op,
                            const std::vector<int64_t> &Args) const {
  // Fold visible blocks in arbitration (stamp) order, then the buffer.
  std::vector<unsigned> Ordered(Visible.begin(), Visible.end());
  std::sort(Ordered.begin(), Ordered.end(), [&](unsigned A, unsigned B) {
    return Blocks[A].Stamp < Blocks[B].Stamp;
  });
  std::unique_ptr<ContainerState> State =
      Sch->container(Container).Type->makeState();
  auto ApplyEvent = [&](unsigned E) {
    const Event &Ev = H.event(E);
    if (Ev.Container == Container)
      State->apply(H.op(Ev), Ev.vals());
  };
  for (unsigned B : Ordered)
    for (unsigned E : Blocks[B].Updates)
      ApplyEvent(E);
  for (unsigned E : Buffer)
    ApplyEvent(E);
  return State->eval(Sch->op(Container, Op), Args);
}

int64_t CausalStore::query(unsigned SessionId, unsigned Container,
                           unsigned Op, const std::vector<int64_t> &Args) {
  Session &S = Sessions[SessionId];
  assert(S.OpenTxn >= 0 && "no open transaction");
  assert(Sch->op(Container, Op).isQuery() && "expected a query");
  int64_t Value =
      evalAt(S.SeenBlocks, S.BufferedUpdates, Container, Op, Args);
  unsigned E = H.append(static_cast<unsigned>(S.OpenTxn), Container, Op,
                        Args, Value);
  S.BufferedQueries.push_back(E);
  return Value;
}

int64_t CausalStore::update(unsigned SessionId, unsigned Container,
                            unsigned Op, std::vector<int64_t> Args) {
  Session &S = Sessions[SessionId];
  assert(S.OpenTxn >= 0 && "no open transaction");
  const OpSig &Sig = Sch->op(Container, Op);
  assert(Sig.isUpdate() && "expected an update");
  std::optional<int64_t> Ret;
  int64_t Fresh = 0;
  if (Sig.HasRet) {
    assert(Sig.Fresh && "only fresh creators return from updates");
    Fresh = NextFresh++;
    Ret = Fresh;
  }
  unsigned E = H.append(static_cast<unsigned>(S.OpenTxn), Container, Op,
                        std::move(Args), Ret);
  S.BufferedUpdates.push_back(E);
  return Fresh;
}

void CausalStore::commit(unsigned SessionId) {
  Session &S = Sessions[SessionId];
  assert(S.OpenTxn >= 0 && "no open transaction");
  unsigned BlockId = static_cast<unsigned>(Blocks.size());
  Blocks.push_back({static_cast<unsigned>(S.OpenTxn), S.Replica, Clock++,
                    S.SeenBlocks, S.BufferedUpdates});
  Replicas[S.Replica].Received.insert(BlockId);
  S.OpenTxn = -1;
}

bool CausalStore::deliverRandom(Rng &R) {
  // Collect deliverable (replica, block) pairs.
  std::vector<std::pair<unsigned, unsigned>> Options;
  for (unsigned RI = 0; RI != numReplicas(); ++RI)
    for (unsigned BI = 0; BI != Blocks.size(); ++BI) {
      if (Replicas[RI].Received.count(BI))
        continue;
      bool Ready = true;
      if (Mode == ConsistencyMode::Causal)
        for (unsigned Dep : Blocks[BI].Seen)
          Ready = Ready && Replicas[RI].Received.count(Dep);
      if (Ready)
        Options.push_back({RI, BI});
    }
  if (Options.empty())
    return false;
  auto [RI, BI] = Options[R.below(Options.size())];
  Replicas[RI].Received.insert(BI);
  return true;
}

void CausalStore::deliverAll() {
  Rng R(0);
  while (deliverRandom(R)) {
  }
}

Schedule CausalStore::schedule() const {
  for ([[maybe_unused]] const Session &Open : Sessions)
    assert(Open.OpenTxn < 0 &&
           "schedule requires all transactions committed");
  Schedule S(H.numEvents());

  // Arbitration: blocks by stamp; events inside a block in session order.
  std::vector<unsigned> ByStamp(Blocks.size());
  for (unsigned I = 0; I != Blocks.size(); ++I)
    ByStamp[I] = I;
  std::sort(ByStamp.begin(), ByStamp.end(), [&](unsigned A, unsigned B) {
    return Blocks[A].Stamp < Blocks[B].Stamp;
  });
  std::vector<unsigned> Order;
  for (unsigned BI : ByStamp) {
    const Transaction &T = H.txn(Blocks[BI].Txn);
    for (unsigned E : T.Events)
      Order.push_back(E);
  }
  S.setArbitration(Order);

  // Visibility: a block sees its snapshot; within a transaction, earlier
  // events are visible to later ones (session order).
  for (unsigned BI = 0; BI != Blocks.size(); ++BI) {
    const Transaction &TB = H.txn(Blocks[BI].Txn);
    for (unsigned Dep : Blocks[BI].Seen) {
      const Transaction &TA = H.txn(Blocks[Dep].Txn);
      for (unsigned EA : TA.Events)
        for (unsigned EB : TB.Events)
          S.setVisible(EA, EB);
    }
    for (unsigned I = 0; I != TB.Events.size(); ++I)
      for (unsigned J = I + 1; J != TB.Events.size(); ++J)
        S.setVisible(TB.Events[I], TB.Events[J]);
  }
  return S;
}
