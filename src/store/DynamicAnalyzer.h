//===- store/DynamicAnalyzer.h - Dynamic DSG analysis -----------*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic-analysis baseline of paper §9.5 (the authors' earlier
/// ECRacer-style analyzer [11]): given an *executed* history and its
/// schedule, build the DSG and report cycles. A dynamic analyzer only sees
/// schedules that actually happened, so timing-dependent violations are
/// missed — which the comparison bench demonstrates.
///
//===----------------------------------------------------------------------===//

#ifndef C4_STORE_DYNAMICANALYZER_H
#define C4_STORE_DYNAMICANALYZER_H

#include "history/DSG.h"

#include <vector>

namespace c4 {

/// Result of dynamically analyzing one execution.
struct DynamicReport {
  /// Transaction-id sets of the detected DSG cycles (deduplicated).
  std::vector<std::vector<unsigned>> CycleTxnSets;
  bool violationFound() const { return !CycleTxnSets.empty(); }
};

/// Builds the DSG of the executed schedule and extracts its cycles. Uses the
/// R2-fixpoint far relations (a dynamic analyzer knows the whole execution).
DynamicReport analyzeDynamic(const History &H, const Schedule &S,
                             unsigned MaxCycles = 64);

} // namespace c4

#endif // C4_STORE_DYNAMICANALYZER_H
