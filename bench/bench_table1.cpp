//===- bench/bench_table1.cpp - Reproduces Table 1 ------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 1 of the paper: for each of the 28 benchmark
/// applications, the abstract history size (T/E), front-end and back-end
/// times, and the detected violations split into harmful (E), harmless (H)
/// and false alarms (F), unfiltered and with the §9.1 filters (atomic sets
/// and display code) enabled. Each row shows the paper's numbers alongside
/// for shape comparison (absolute counts differ: the models approximate the
/// original apps; see EXPERIMENTS.md).
///
/// Also prints the §9.2 summary: SSG-flagged unfoldings refuted by the SMT
/// stage per domain, and average violations per project before/after
/// filtering.
///
/// `--governance <file>` additionally traces every solver query of the
/// suite and writes a JSON aggregate: per-stage query counts, retry rates,
/// rlimit spend and the suite's wall time — the regression baseline for the
/// solver resource-governance layer.
///
/// The history-reduction passes run by default between compilation and
/// analysis (`--no-passes` disables them). `--passes <file>` additionally
/// analyzes every app twice — raw and reduced — compares the verdicts
/// (they must match; a mismatch is a soundness regression and fails the
/// run), and writes BENCH_passes.json with per-app and suite-wide event,
/// SSG-edge and SMT-query counts before/after reduction. The reduced
/// corpus is additionally analyzed a third time with the relational-domain
/// prefilter disabled: the verdicts must again match byte for byte (the
/// prefilter may only skip Z3 work, never change an answer), and the JSON
/// gains the prefilter kill fraction, domain time and on/off wall clocks.
///
/// `--serve-sim <file>` simulates the c4-serve cross-run cache instead of
/// printing the table: every app is analyzed twice through one
/// AnalysisCache rooted in a fresh temp directory — a cold pass that
/// populates the verdict and oracle layers, then a warm pass that must hit
/// on every request with a byte-identical serialized result (a mismatch or
/// warm miss fails the run). Writes the warm-vs-cold timing aggregate to
/// the given file (BENCH_serve.json in CI).
///
/// `--incremental <file>` measures the incremental re-analysis layers:
/// every app is analyzed cold through an incremental AnalysisCache (a
/// per-app subdirectory of a fresh temp directory — the warm cache must
/// derive only from the same program, see runIncremental), then a
/// scripted one-transaction edit (a rename, the
/// invalidation-granularity litmus test) is applied to its source and the
/// edited program is analyzed twice — once plain-cold as the reference and
/// once warm through the populated cache. The warm-edit verdicts must be
/// byte-identical to the cold reference (timing and cache-state counters
/// normalized), and across the suite the warm-edit pass must reach Z3 at
/// least 10x less often than cold (`smt_solves`). Writes the aggregate —
/// wall times, solve counts, constraint-cache hit rate, fingerprint and
/// pair-verdict reuse — to the given file (BENCH_incremental.json in CI).
///
/// `--fleet <file>` is the serving tier's load generator and soak harness:
/// it spawns a real c4-serve process on a loopback TCP port and drives the
/// corpus against it in three phases — per app, a stampede of identical
/// concurrent requests that must cost exactly one backend run
/// (single-flight); then `--fleet-clients` concurrent closed-loop client
/// connections (default 1000) each issuing `--fleet-requests` warm
/// requests (default 4); finally SIGTERM, which must drain cleanly to
/// exit 0. Every reply is checked byte-identical (modulo per-run timings)
/// against an in-process single-process reference analysis, and the
/// server must finish with zero dropped replies. Writes p50/p99 latency
/// and requests/sec to the given file (BENCH_fleet.json in CI); any
/// mismatch, drop or unclean drain fails the run.
///
//===----------------------------------------------------------------------===//

#include "analysis/Pipeline.h"
#include "apps/Apps.h"
#include "frontend/Frontend.h"
#include "passes/PassManager.h"
#include "support/Json.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace c4;
using namespace c4bench;

namespace {

struct Counts {
  unsigned E = 0, H = 0, F = 0;
  unsigned total() const { return E + H + F; }
};

Counts classifyAll(const BenchApp &App, const AnalysisResult &R) {
  Counts C;
  for (const Violation &V : R.Violations) {
    switch (classify(App, V.TxnNames)) {
    case ViolationClass::Harmful:
      ++C.E;
      break;
    case ViolationClass::Harmless:
      ++C.H;
      break;
    case ViolationClass::FalseAlarm:
      ++C.F;
      break;
    }
  }
  return C;
}

/// Canonical verdict string: serializability bit plus the sorted set of
/// violations (transaction names + triage class). Byte-equal keys mean the
/// analysis reached the same conclusion.
std::string verdictKey(const AnalysisResult &R) {
  std::vector<std::string> Keys;
  for (const Violation &V : R.Violations) {
    std::string K;
    for (const std::string &N : V.TxnNames) {
      K += N;
      K += ',';
    }
    K += V.Inconclusive ? '?' : (V.Validated ? '!' : '~');
    Keys.push_back(std::move(K));
  }
  std::sort(Keys.begin(), Keys.end());
  std::string Out = R.serializable() ? "S|" : "V|";
  for (const std::string &K : Keys) {
    Out += K;
    Out += ';';
  }
  return Out;
}

/// Per-app before/after measurements for the --passes comparison.
struct PassRow {
  const char *Name;
  unsigned EventsBefore, EventsAfter;
  unsigned EdgesBefore, EdgesAfter;
  unsigned QueriesBefore, QueriesAfter;
  bool VerdictMatch;
  unsigned QueriesPrefiltered; // reduced runs: queries the domain killed
  unsigned QueriesNoPrefilter; // reduced runs with the prefilter disabled
  bool PrefilterMatch;         // prefilter on/off verdicts agree
};

/// Per-app cold/warm measurements for the --serve-sim comparison.
struct ServeRow {
  const char *Name;
  double ColdSeconds, WarmSeconds;
  bool WarmHit;   // both warm requests were verdict-cache hits
  bool Identical; // serialized warm results byte-equal the cold ones
};

/// Removes a DiskCache directory tree (root/{VERSION,objects/*,tmp/*}).
/// Only the fixed two-level layout the cache creates — no recursion.
void removeCacheDir(const std::string &Root) {
  for (const char *Sub : {"/objects", "/tmp"}) {
    std::string Dir = Root + Sub;
    if (DIR *D = ::opendir(Dir.c_str())) {
      while (struct dirent *E = ::readdir(D)) {
        std::string Name = E->d_name;
        if (Name != "." && Name != "..")
          ::unlink((Dir + "/" + Name).c_str());
      }
      ::closedir(D);
    }
    ::rmdir(Dir.c_str());
  }
  ::unlink((Root + "/VERSION").c_str());
  ::rmdir(Root.c_str());
}

/// --serve-sim: warm-vs-cold comparison through the cross-run cache.
/// Every app is analyzed (unfiltered + filtered, like the table) through
/// an AnalysisCache rooted in a fresh temp directory; then the cache
/// object is torn down and a second instance — which must re-read the
/// oracle snapshot and verdicts from disk — replays the identical
/// requests. Every warm request must hit, and its serialized result must
/// be byte-identical to the cold one. Writes the timing aggregate to
/// \p OutPath and returns the process exit code.
int runServeSim(const char *OutPath, bool Quick, bool NoPasses) {
  char DirTemplate[] = "/tmp/c4-serve-sim-XXXXXX";
  if (!::mkdtemp(DirTemplate)) {
    std::fprintf(stderr, "error: cannot create temp cache directory\n");
    return 1;
  }
  std::string CacheDir = DirTemplate;

  std::printf("Serve simulation: cold vs warm analysis through the "
              "cross-run cache\n(cache dir %s, removed on exit)\n\n",
              CacheDir.c_str());

  // One request = compile + passes + analyzeCached, unfiltered and
  // filtered. Frontend work is repeated on both passes (the service
  // recompiles every request too); only the analysis is timed, since
  // that is what the cache elides.
  struct AppResult {
    std::string BlobU, BlobF;
    bool Hit = false;
    double Seconds = 0;
    bool Ok = false;
  };
  auto RunApp = [&](const BenchApp &App, AnalysisCache &Cache) {
    AppResult Out;
    CompileResult Compiled = compileC4L(App.Source);
    if (!Compiled.ok()) {
      std::fprintf(stderr, "%s: COMPILE ERROR: %s\n", App.Name,
                   Compiled.Error.c_str());
      return Out;
    }
    CompiledProgram &P = *Compiled.Program;
    if (!NoPasses) {
      PassOptions PassOpts;
      PassOpts.Lint = false;
      PassResult Passes = runPasses(P, PassOpts);
      if (!Passes.Ok) {
        std::fprintf(stderr, "%s: PASS ERROR: %s\n", App.Name,
                     Passes.Error.c_str());
        return Out;
      }
    }
    AnalyzerOptions Unfiltered;
    AnalyzerOptions Filtered;
    Filtered.DisplayFilter = true;
    Filtered.UseAtomicSets = !P.AtomicSets.empty();
    Filtered.AtomicSets = P.AtomicSets;
    auto Start = std::chrono::steady_clock::now();
    PipelineResult RU =
        analyzeCached(*P.History, Unfiltered, *P.Registry, &Cache);
    PipelineResult RF =
        analyzeCached(*P.History, Filtered, *P.Registry, &Cache);
    Out.Seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
    Out.BlobU = serializeResult(RU.R);
    Out.BlobF = serializeResult(RF.R);
    Out.Hit = RU.CacheHit && RF.CacheHit;
    Out.Ok = true;
    return Out;
  };

  std::vector<ServeRow> Rows;
  std::vector<AppResult> Cold;
  unsigned Projects = 0, Failures = 0;
  double ColdSeconds = 0, WarmSeconds = 0;
  unsigned WarmMisses = 0, Mismatches = 0;

  {
    AnalysisCache Cache(CacheDir);
    if (!Cache.enabled()) {
      std::fprintf(stderr, "error: cannot open cache directory %s\n",
                   CacheDir.c_str());
      return 1;
    }
    for (const BenchApp &App : benchApps()) {
      if (Quick && Projects >= 6)
        break;
      AppResult R = RunApp(App, Cache);
      if (!R.Ok) {
        ++Failures;
        continue;
      }
      ++Projects;
      ColdSeconds += R.Seconds;
      Cold.push_back(std::move(R));
    }
  }

  // Fresh cache object over the same directory: the warm pass must be
  // served from disk, as a restarted c4-serve process would be.
  {
    AnalysisCache Cache(CacheDir);
    unsigned Done = 0;
    for (const BenchApp &App : benchApps()) {
      if (Done == Cold.size())
        break;
      AppResult R = RunApp(App, Cache);
      if (!R.Ok)
        continue; // compiled cold, so this cannot happen
      const AppResult &C = Cold[Done++];
      bool Identical = R.BlobU == C.BlobU && R.BlobF == C.BlobF;
      if (!R.Hit)
        ++WarmMisses;
      if (!Identical)
        ++Mismatches;
      WarmSeconds += R.Seconds;
      Rows.push_back({App.Name, C.Seconds, R.Seconds, R.Hit, Identical});
    }
  }
  removeCacheDir(CacheDir);

  std::printf("  %-18s %10s %10s %9s  %s\n", "Program", "cold [s]",
              "warm [s]", "speedup", "verdict");
  for (const ServeRow &Row : Rows) {
    double Speedup =
        Row.WarmSeconds > 0 ? Row.ColdSeconds / Row.WarmSeconds : 0.0;
    std::printf("  %-18s %10.3f %10.3f %8.1fx  %s%s\n", Row.Name,
                Row.ColdSeconds, Row.WarmSeconds, Speedup,
                Row.Identical ? "identical" : "MISMATCH",
                Row.WarmHit ? "" : " (warm miss)");
  }
  double Speedup = WarmSeconds > 0 ? ColdSeconds / WarmSeconds : 0.0;
  std::printf("  %-18s %10.3f %10.3f %8.1fx  %s\n", "TOTAL", ColdSeconds,
              WarmSeconds, Speedup,
              Mismatches || WarmMisses ? "FAILURES" : "all identical");

  FILE *F = std::fopen(OutPath, "w");
  if (!F) {
    std::fprintf(stderr, "error: cannot write %s\n", OutPath);
    return 1;
  }
  std::fprintf(F,
               "{\n  \"projects\": %u,\n  \"cold_seconds\": %.3f,\n"
               "  \"warm_seconds\": %.3f,\n  \"speedup\": %.1f,\n"
               "  \"warm_misses\": %u,\n  \"verdict_mismatches\": %u,\n"
               "  \"apps\": [\n",
               Projects, ColdSeconds, WarmSeconds, Speedup, WarmMisses,
               Mismatches);
  for (size_t I = 0; I != Rows.size(); ++I) {
    const ServeRow &Row = Rows[I];
    std::fprintf(F,
                 "    {\"name\": \"%s\", \"cold_seconds\": %.3f, "
                 "\"warm_seconds\": %.3f, \"warm_hit\": %s, "
                 "\"verdict_identical\": %s}%s\n",
                 Row.Name, Row.ColdSeconds, Row.WarmSeconds,
                 Row.WarmHit ? "true" : "false",
                 Row.Identical ? "true" : "false",
                 I + 1 == Rows.size() ? "" : ",");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("  serve comparison written to %s\n", OutPath);
  return Failures || WarmMisses || Mismatches ? 1 : 0;
}

//===----------------------------------------------------------------------===//
// --incremental: warm-edit re-analysis through the incremental layers.
//===----------------------------------------------------------------------===//

/// The scripted one-transaction edit: renames the last top-level
/// transaction declaration in \p Source (appending "_edited" to its name).
/// A rename is the invalidation-granularity litmus test — every
/// transaction's *content* digest survives it, so the incremental layers
/// must replay everything except queries whose outcome mentions the name
/// (counter-examples). Returns the empty string when no declaration is
/// found.
std::string renameOneTxn(const std::string &Source) {
  size_t Last = std::string::npos;
  for (size_t P = 0; (P = Source.find("txn ", P)) != std::string::npos;
       P += 4)
    if (P == 0 || Source[P - 1] == '\n')
      Last = P;
  if (Last == std::string::npos)
    return std::string();
  size_t NameBegin = Last + 4;
  while (NameBegin < Source.size() && Source[NameBegin] == ' ')
    ++NameBegin;
  size_t NameEnd = NameBegin;
  while (NameEnd < Source.size() &&
         (std::isalnum(static_cast<unsigned char>(Source[NameEnd])) ||
          Source[NameEnd] == '_'))
    ++NameEnd;
  if (NameEnd == NameBegin)
    return std::string();
  return Source.substr(0, NameEnd) + "_edited" + Source.substr(NameEnd);
}

/// Strips the values of every field of a serialized AnalysisResult that
/// legitimately differs between a warm (cache-assisted) and a cold run of
/// the same program: wall times, solver resource accounting, every
/// cache-state-dependent reuse/lookup counter (see
/// AnalyzerOptions::UseIncremental — the layers are observability-only),
/// and the counterexample witness text. Witness constants are
/// model-chosen representatives: a Z3 context's history (how many chunks
/// the run actually solved before this one) legally changes which of the
/// many satisfying models it reports, the same way rlimit_spent jitters.
/// The violation *structure* — count, flags, original transaction sets and
/// names — is the verdict, and must match byte for byte, as must every
/// logical counter (smt_queries, prefilter, unfolding and SSG counts).
std::string stripIncrementalValues(const std::string &Blob) {
  static const char *const Strip[] = {
      "backend_seconds",     "ssg_seconds",
      "enum_seconds",        "smt_seconds",
      "prefilter_seconds",   "incremental_seconds",
      "rlimit_spent",        "smt_retries",
      "smt_solves",          "sat_cache_hits",
      "sat_cache_misses",    "sat_assist_proven",
      "cond_cache_hits",     "cond_cache_misses",
      "txn_fingerprint_hits", "pair_verdicts_reused",
      "constraint_cache_hits", "constraint_cache_misses",
      "solver_ctx_reuses",   "v.ce",
  };
  std::string Out;
  size_t Pos = 0;
  while (Pos < Blob.size()) {
    size_t End = Blob.find('\n', Pos);
    if (End == std::string::npos)
      End = Blob.size();
    std::string Line = Blob.substr(Pos, End - Pos);
    size_t Space = Line.find(' ');
    std::string Key = Space == std::string::npos ? Line : Line.substr(0, Space);
    bool Stripped = false;
    for (const char *S : Strip)
      if (Key == S) {
        Out += Key;
        Out += '\n';
        Stripped = true;
        break;
      }
    if (!Stripped) {
      Out += Line;
      Out += '\n';
    }
    Pos = End + 1;
  }
  return Out;
}

/// Per-app measurements for the --incremental comparison.
struct IncrRow {
  const char *Name;
  double ColdSeconds, WarmSeconds;
  unsigned ColdSolves, WarmSolves;
  uint64_t TxnHits, PairReused, GreenHits, GreenMisses, CtxReuses;
  bool Identical;
};

/// --incremental: cold-populate, edit one transaction, re-analyze warm.
/// See the file comment. Returns the process exit code.
int runIncremental(const char *OutPath, bool Quick, bool NoPasses) {
  char DirTemplate[] = "/tmp/c4-incr-XXXXXX";
  if (!::mkdtemp(DirTemplate)) {
    std::fprintf(stderr, "error: cannot create temp cache directory\n");
    return 1;
  }
  std::string CacheDir = DirTemplate;

  std::printf("Incremental re-analysis: cold run, one-transaction edit, "
              "warm re-analysis\n(cache dir %s, removed on exit)\n\n",
              CacheDir.c_str());

  // One request = compile + passes + analysis, unfiltered and filtered
  // (the filtered variant exercises atomic-set sub-runs, which carry their
  // own incremental context). Cache null = plain cold reference.
  struct AppRun {
    std::string BlobU, BlobF;
    double Seconds = 0;
    AnalysisResult RU, RF;
    bool Ok = false;
  };
  auto RunApp = [&](const char *Name, const std::string &Source,
                    AnalysisCache *Cache) {
    AppRun Out;
    CompileResult Compiled = compileC4L(Source);
    if (!Compiled.ok()) {
      std::fprintf(stderr, "%s: COMPILE ERROR: %s\n", Name,
                   Compiled.Error.c_str());
      return Out;
    }
    CompiledProgram &P = *Compiled.Program;
    if (!NoPasses) {
      PassOptions PassOpts;
      PassOpts.Lint = false;
      PassResult Passes = runPasses(P, PassOpts);
      if (!Passes.Ok) {
        std::fprintf(stderr, "%s: PASS ERROR: %s\n", Name,
                     Passes.Error.c_str());
        return Out;
      }
    }
    AnalyzerOptions Unfiltered;
    AnalyzerOptions Filtered;
    Filtered.DisplayFilter = true;
    Filtered.UseAtomicSets = !P.AtomicSets.empty();
    Filtered.AtomicSets = P.AtomicSets;
    auto Start = std::chrono::steady_clock::now();
    PipelineResult RU =
        analyzeCached(*P.History, Unfiltered, *P.Registry, Cache);
    PipelineResult RF =
        analyzeCached(*P.History, Filtered, *P.Registry, Cache);
    Out.Seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
    Out.BlobU = serializeResult(RU.R);
    Out.BlobF = serializeResult(RF.R);
    Out.RU = std::move(RU.R);
    Out.RF = std::move(RF.R);
    Out.Ok = true;
    return Out;
  };

  unsigned Projects = 0, Failures = 0, Mismatches = 0, EditFailures = 0;
  double ColdSeconds = 0, WarmSeconds = 0;
  uint64_t ColdSolves = 0, WarmSolves = 0;
  uint64_t TxnHits = 0, PairReused = 0, GreenHits = 0, GreenMisses = 0,
           CtxReuses = 0;
  std::vector<IncrRow> Rows;

  // Each app gets its own cache subdirectory: incremental re-analysis is
  // a per-program story (a developer edits one project and re-analyzes
  // against that project's cache), and scoping the cache keeps each
  // app's warm row a clean within-app measurement — a directory shared
  // across the corpus would pre-seed the oracle and record store with 27
  // other apps' entries and blur what the reuse columns mean.
  auto AppCacheDir = [&](const char *Name) {
    return CacheDir + "/" + Name;
  };

  // Phase 1: cold-populate each app's incremental cache with the unedited
  // program.
  const char *Only = ::getenv("C4_BENCH_INCR_ONLY"); // debug: one app
  for (const BenchApp &App : benchApps()) {
    if (Quick && Projects >= 6)
      break;
    AnalysisCache Cache(AppCacheDir(App.Name), /*Incremental=*/true);
    if (!Cache.enabled()) {
      std::fprintf(stderr, "error: cannot open cache directory %s\n",
                   AppCacheDir(App.Name).c_str());
      return 1;
    }
    ++Projects;
    if (Only && std::string(App.Name) != Only)
      continue;
    AppRun R = RunApp(App.Name, App.Source, &Cache);
    if (!R.Ok) {
      ++Failures;
      --Projects;
    }
  }

  // Phase 2: edit one transaction per app; analyze the edited program
  // plain-cold (the byte-identical reference) and warm through the app's
  // populated cache directory.
  {
    unsigned Done = 0;
    for (const BenchApp &App : benchApps()) {
      if (Done == Projects)
        break;
      if (Only && std::string(App.Name) != Only) {
        ++Done;
        continue;
      }
      // Fresh cache object over the populated per-app directory
      // (re-read from disk, as a restarted tool would).
      AnalysisCache Cache(AppCacheDir(App.Name), /*Incremental=*/true);
      std::string Edited = renameOneTxn(App.Source);
      if (Edited.empty()) {
        std::fprintf(stderr, "%s: EDIT FAILED: no txn declaration found\n",
                     App.Name);
        ++EditFailures;
        ++Done;
        continue;
      }
      AppRun Cold = RunApp(App.Name, Edited, nullptr);
      AppRun Warm = RunApp(App.Name, Edited, &Cache);
      ++Done;
      if (!Cold.Ok || !Warm.Ok) {
        ++EditFailures;
        continue;
      }
      bool Identical =
          stripIncrementalValues(Warm.BlobU) ==
              stripIncrementalValues(Cold.BlobU) &&
          stripIncrementalValues(Warm.BlobF) ==
              stripIncrementalValues(Cold.BlobF);
      if (!Identical) {
        ++Mismatches;
        // Debug aid: dump the normalized blobs for a diff. Pair with
        // C4_BENCH_INCR_ONLY=<app> to bisect a single program.
        if (::getenv("C4_BENCH_INCR_DUMP")) {
          auto Put = [&](const char *Tag, const std::string &S) {
            std::string Path = std::string("/tmp/c4dump_") + Tag + ".txt";
            std::ofstream(Path) << S;
          };
          Put("cold_U", stripIncrementalValues(Cold.BlobU));
          Put("warm_U", stripIncrementalValues(Warm.BlobU));
          Put("cold_F", stripIncrementalValues(Cold.BlobF));
          Put("warm_F", stripIncrementalValues(Warm.BlobF));
        }
      }
      unsigned CS = Cold.RU.SmtSolves + Cold.RF.SmtSolves;
      unsigned WS = Warm.RU.SmtSolves + Warm.RF.SmtSolves;
      IncrRow Row{App.Name,
                  Cold.Seconds,
                  Warm.Seconds,
                  CS,
                  WS,
                  Warm.RU.TxnFingerprintHits + Warm.RF.TxnFingerprintHits,
                  Warm.RU.PairVerdictsReused + Warm.RF.PairVerdictsReused,
                  Warm.RU.ConstraintCacheHits + Warm.RF.ConstraintCacheHits,
                  Warm.RU.ConstraintCacheMisses +
                      Warm.RF.ConstraintCacheMisses,
                  Warm.RU.SolverCtxReuses + Warm.RF.SolverCtxReuses,
                  Identical};
      ColdSeconds += Cold.Seconds;
      WarmSeconds += Warm.Seconds;
      ColdSolves += CS;
      WarmSolves += WS;
      TxnHits += Row.TxnHits;
      PairReused += Row.PairReused;
      GreenHits += Row.GreenHits;
      GreenMisses += Row.GreenMisses;
      CtxReuses += Row.CtxReuses;
      Rows.push_back(Row);
    }
  }
  for (const BenchApp &App : benchApps())
    removeCacheDir(AppCacheDir(App.Name));
  ::rmdir(CacheDir.c_str());

  std::printf("  %-18s %9s %9s %7s %7s %6s  %s\n", "Program", "cold [s]",
              "warm [s]", "solves", "solves", "reuse", "verdict");
  for (const IncrRow &Row : Rows)
    std::printf("  %-18s %9.3f %9.3f %7u %7u %6llu  %s\n", Row.Name,
                Row.ColdSeconds, Row.WarmSeconds, Row.ColdSolves,
                Row.WarmSolves,
                static_cast<unsigned long long>(Row.PairReused),
                Row.Identical ? "identical" : "MISMATCH");
  double QueryRatio =
      WarmSolves ? static_cast<double>(ColdSolves) / WarmSolves : 0.0;
  bool RatioOk = WarmSolves == 0 || QueryRatio >= 10.0;
  std::printf("  %-18s %9.3f %9.3f %7llu %7llu         %s\n", "TOTAL",
              ColdSeconds, WarmSeconds,
              static_cast<unsigned long long>(ColdSolves),
              static_cast<unsigned long long>(WarmSolves),
              Mismatches || EditFailures ? "FAILURES" : "all identical");
  std::printf("  warm-edit reached Z3 %.1fx less often than cold "
              "(target >= 10x: %s)\n",
              WarmSolves ? QueryRatio : 0.0, RatioOk ? "ok" : "MISSED");

  FILE *F = std::fopen(OutPath, "w");
  if (!F) {
    std::fprintf(stderr, "error: cannot write %s\n", OutPath);
    return 1;
  }
  double GreenRate = GreenHits + GreenMisses
                         ? static_cast<double>(GreenHits) /
                               static_cast<double>(GreenHits + GreenMisses)
                         : 0.0;
  std::fprintf(
      F,
      "{\n  \"projects\": %u,\n  \"cold_seconds\": %.3f,\n"
      "  \"warm_edit_seconds\": %.3f,\n  \"cold_smt_solves\": %llu,\n"
      "  \"warm_edit_smt_solves\": %llu,\n  \"query_ratio\": %.1f,\n"
      "  \"txn_fingerprint_hits\": %llu,\n  \"pair_verdicts_reused\": %llu,\n"
      "  \"constraint_cache_hits\": %llu,\n"
      "  \"constraint_cache_misses\": %llu,\n"
      "  \"constraint_cache_hit_rate\": %.3f,\n"
      "  \"solver_ctx_reuses\": %llu,\n"
      "  \"verdict_mismatches\": %u,\n  \"edit_failures\": %u,\n"
      "  \"apps\": [\n",
      Projects, ColdSeconds, WarmSeconds,
      static_cast<unsigned long long>(ColdSolves),
      static_cast<unsigned long long>(WarmSolves), QueryRatio,
      static_cast<unsigned long long>(TxnHits),
      static_cast<unsigned long long>(PairReused),
      static_cast<unsigned long long>(GreenHits),
      static_cast<unsigned long long>(GreenMisses), GreenRate,
      static_cast<unsigned long long>(CtxReuses), Mismatches, EditFailures);
  for (size_t I = 0; I != Rows.size(); ++I) {
    const IncrRow &Row = Rows[I];
    std::fprintf(F,
                 "    {\"name\": \"%s\", \"cold_seconds\": %.3f, "
                 "\"warm_edit_seconds\": %.3f, \"cold_smt_solves\": %u, "
                 "\"warm_edit_smt_solves\": %u, \"pair_verdicts_reused\": "
                 "%llu, \"verdict_identical\": %s}%s\n",
                 Row.Name, Row.ColdSeconds, Row.WarmSeconds, Row.ColdSolves,
                 Row.WarmSolves,
                 static_cast<unsigned long long>(Row.PairReused),
                 Row.Identical ? "true" : "false",
                 I + 1 == Rows.size() ? "" : ",");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("  incremental comparison written to %s\n", OutPath);
  return Failures || Mismatches || EditFailures || !RatioOk ? 1 : 0;
}

//===----------------------------------------------------------------------===//
// --fleet: load-generate a real c4-serve process over loopback TCP.
//===----------------------------------------------------------------------===//

/// A blocking client connection with line-buffered reads.
struct LineConn {
  int Fd = -1;
  std::string Buf;

  ~LineConn() { reset(); }
  void reset() {
    if (Fd >= 0)
      ::close(Fd);
    Fd = -1;
    Buf.clear();
  }

  bool connectTo(int Port, int TimeoutSec = 120) {
    reset();
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd < 0)
      return false;
    sockaddr_in Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(static_cast<uint16_t>(Port));
    ::inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
        0) {
      reset();
      return false;
    }
    timeval TV{TimeoutSec, 0};
    ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &TV, sizeof(TV));
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    return true;
  }

  bool sendAll(const std::string &Bytes) {
    size_t Off = 0;
    while (Off < Bytes.size()) {
      ssize_t N =
          ::send(Fd, Bytes.data() + Off, Bytes.size() - Off, MSG_NOSIGNAL);
      if (N < 0 && errno == EINTR)
        continue;
      if (N <= 0)
        return false;
      Off += static_cast<size_t>(N);
    }
    return true;
  }

  /// One newline-terminated line (stripped); empty on EOF/timeout.
  std::string recvLine() {
    for (;;) {
      size_t Nl = Buf.find('\n');
      if (Nl != std::string::npos) {
        std::string Line = Buf.substr(0, Nl);
        Buf.erase(0, Nl + 1);
        return Line;
      }
      char Tmp[65536];
      ssize_t N = ::recv(Fd, Tmp, sizeof(Tmp), 0);
      if (N < 0 && errno == EINTR)
        continue;
      if (N <= 0)
        return "";
      Buf.append(Tmp, static_cast<size_t>(N));
    }
  }
};

/// Strips the values of every "*_seconds" field and of "rlimit_spent"
/// from the "stats": suffix of a reply — the only bytes legitimately
/// differing between a cold run, a warm hit and the in-process reference.
/// (Z3's rlimit accounting drifts by a fraction of a percent with solver
/// context history — the server reuses one Z3Env per worker thread — so
/// it is resource telemetry, not verdict content.)
std::string stripTimingValues(const std::string &Reply) {
  size_t StatsPos = Reply.find("\"stats\":");
  if (StatsPos == std::string::npos)
    return Reply;
  std::string Out;
  size_t Pos = StatsPos;
  while (Pos < Reply.size()) {
    size_t Sec = Reply.find("_seconds\": ", Pos);
    size_t Rl = Reply.find("\"rlimit_spent\": ", Pos);
    size_t Key, Skip;
    if (Sec <= Rl) {
      Key = Sec;
      Skip = 11; // `_seconds": `
    } else {
      Key = Rl;
      Skip = 16; // `"rlimit_spent": `
    }
    if (Key == std::string::npos) {
      Out += Reply.substr(Pos);
      break;
    }
    size_t End = Reply.find_first_of(",}", Key + Skip);
    Out += Reply.substr(Pos, Key + Skip - Pos);
    Pos = End;
  }
  return Out;
}

std::string oneLineJson(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S)
    if (C != '\n')
      Out += C;
  return Out;
}

/// The single-process reference for one app: the exact analysis c4-serve
/// runs for `{"program": <source>}` with no option overrides, rendered
/// through the same stats emitter. \p Cache mirrors the server's (fresh
/// directory, same sequential app order), so oracle pre-seeding — and with
/// it every stats counter — matches the server's cold run byte for byte.
std::string fleetReference(const BenchApp &App, AnalysisCache &Cache) {
  std::string Source = App.Source;
  CompileResult Compiled = compileC4L(Source);
  if (!Compiled.ok())
    return "";
  CompiledProgram &P = *Compiled.Program;

  AnalyzerOptions Options;
  Options.DisplayFilter = true;
  Options.UseAtomicSets = true;
  Options.NumThreads = 1;
  PassOptions PassOpts;
  PassOpts.Reduce = true;
  PassOpts.UniqueValues = Options.Features.UniqueValues;
  PassOpts.Lint = false;
  PassResult Passes = runPasses(P, PassOpts, &Source);
  if (!Passes.Ok)
    return "";
  Options.AtomicSets = P.AtomicSets;

  PipelineResult PR = analyzeCached(*P.History, Options, *P.Registry, &Cache);

  StatsJsonFields F;
  F.File = "<inline>";
  F.Transactions = P.History->numTxns();
  F.Events = P.History->numStoreEvents();
  F.FrontendSeconds = P.FrontendSeconds;
  F.LexSeconds = P.LexSeconds;
  F.ParseSeconds = P.ParseSeconds;
  F.BuildSeconds = P.BuildSeconds;
  F.PassSeconds = Passes.Stats.Seconds;
  F.PassIterations = Passes.Stats.Iterations;
  F.EventsBefore = Passes.Stats.EventsBefore;
  F.EventsAfter = Passes.Stats.EventsAfter;
  F.DeadWrites = Passes.Stats.DeadWrites;
  F.PrunedBranches = Passes.Stats.PrunedBranches;
  F.ConstProps = Passes.Stats.ConstProps;
  F.FreshPromotions = Passes.Stats.FreshPromotions;
  F.LintWarnings = Passes.Lints.size();
  return "\"stats\": " + oneLineJson(renderStatsJson(F, PR.R));
}

/// Extracts the integer value of \p Key from a one-line stats reply.
long fleetStatField(const std::string &Reply, const char *Key) {
  std::string Needle = std::string("\"") + Key + "\": ";
  size_t Pos = Reply.find(Needle);
  if (Pos == std::string::npos)
    return -1;
  return std::atol(Reply.c_str() + Pos + Needle.size());
}

/// Raises the open-file soft limit to the hard limit: one connection per
/// client thread plus the server's mirror side needs more than the usual
/// 1024-fd default.
void raiseFdLimit() {
  rlimit RL;
  if (::getrlimit(RLIMIT_NOFILE, &RL) == 0 && RL.rlim_cur < RL.rlim_max) {
    RL.rlim_cur = RL.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &RL);
  }
}

int runFleet(const char *OutPath, bool Quick, unsigned Clients,
             unsigned RequestsPerClient) {
#ifndef C4_SERVE_BIN
  (void)OutPath;
  (void)Quick;
  (void)Clients;
  (void)RequestsPerClient;
  std::fprintf(stderr, "error: built without C4_SERVE_BIN\n");
  return 1;
#else
  raiseFdLimit();

  // The corpus and its per-app request lines + reference replies.
  std::vector<const BenchApp *> Apps;
  for (const BenchApp &App : benchApps()) {
    if (Quick && Apps.size() >= 6)
      break;
    Apps.push_back(&App);
  }

  char RefDirTemplate[] = "/tmp/c4-fleet-ref-XXXXXX";
  char SrvDirTemplate[] = "/tmp/c4-fleet-srv-XXXXXX";
  if (!::mkdtemp(RefDirTemplate) || !::mkdtemp(SrvDirTemplate)) {
    std::fprintf(stderr, "error: cannot create temp cache directories\n");
    return 1;
  }
  std::string RefDir = RefDirTemplate, SrvDir = SrvDirTemplate;

  std::printf("Fleet soak: %zu apps, %u clients x %u requests against a "
              "c4-serve process\n\n",
              Apps.size(), Clients, RequestsPerClient);

  // In-process references, sequentially in corpus order (the server's
  // stampede phase below replays the same order, so the two caches'
  // oracle snapshots evolve identically).
  std::vector<std::string> Requests, References;
  {
    AnalysisCache RefCache(RefDir);
    for (const BenchApp *App : Apps) {
      Requests.push_back("{\"id\": \"x\", \"program\": \"" +
                         jsonEscape(App->Source) + "\"}\n");
      References.push_back(fleetReference(*App, RefCache));
      if (References.back().empty()) {
        std::fprintf(stderr, "error: reference analysis failed for %s\n",
                     App->Name);
        removeCacheDir(RefDir);
        removeCacheDir(SrvDir);
        return 1;
      }
    }
  }
  removeCacheDir(RefDir);

  // Spawn the server on a kernel-chosen port.
  std::string ErrPath = SrvDir + "/serve.err";
  std::string Cmd = std::string("exec ") + C4_SERVE_BIN +
                    " --tcp 127.0.0.1:0 --workers 0 --max-inflight 0"
                    " --cache-dir " +
                    SrvDir + " 2> " + ErrPath;
  pid_t ServePid = ::fork();
  if (ServePid == 0) {
    ::execl("/bin/sh", "sh", "-c", Cmd.c_str(), static_cast<char *>(nullptr));
    _exit(127);
  }
  int Port = 0;
  for (int I = 0; I < 400 && Port == 0; ++I) {
    ::usleep(25 * 1000);
    FILE *E = std::fopen(ErrPath.c_str(), "r");
    if (!E)
      continue;
    char Line[256];
    while (std::fgets(Line, sizeof(Line), E))
      if (const char *Pos = std::strstr(Line, "listening on 127.0.0.1:"))
        Port = std::atoi(Pos + 23);
    std::fclose(E);
  }
  if (Port == 0) {
    std::fprintf(stderr, "error: c4-serve did not come up\n");
    ::kill(ServePid, SIGKILL);
    ::waitpid(ServePid, nullptr, 0);
    removeCacheDir(SrvDir);
    return 1;
  }

  unsigned Failures = 0, Mismatches = 0;
  std::vector<std::string> ColdReplies(Apps.size());

  // Phase 1 — stampede: per app, 8 connections fire the identical request
  // concurrently; the single-flight layer must hold the backend to exactly
  // one run per app, and every reply must match the reference.
  constexpr unsigned StampedeWidth = 8;
  LineConn Control;
  if (!Control.connectTo(Port)) {
    std::fprintf(stderr, "error: cannot connect control channel\n");
    ++Failures;
  }
  for (size_t A = 0; A < Apps.size() && !Failures; ++A) {
    LineConn Conns[StampedeWidth];
    for (LineConn &C : Conns)
      if (!C.connectTo(Port) || !C.sendAll(Requests[A]))
        ++Failures;
    for (LineConn &C : Conns) {
      std::string Reply = C.recvLine();
      if (Reply.find("\"ok\": true") == std::string::npos) {
        std::fprintf(stderr, "%s: bad stampede reply: %s\n", Apps[A]->Name,
                     Reply.c_str());
        ++Failures;
        continue;
      }
      if (ColdReplies[A].empty())
        ColdReplies[A] = Reply;
      std::string Got = stripTimingValues(Reply);
      std::string Want = stripTimingValues("{" + References[A] + "}");
      if (Got != Want) {
        size_t D = 0;
        while (D < Got.size() && D < Want.size() && Got[D] == Want[D])
          ++D;
        size_t From = D > 40 ? D - 40 : 0;
        std::fprintf(stderr,
                     "%s: reply diverges from the single-process reference\n"
                     "  got  ...%s\n  want ...%s\n",
                     Apps[A]->Name, Got.substr(From, 120).c_str(),
                     Want.substr(From, 120).c_str());
        ++Mismatches;
      }
    }
    Control.sendAll("{\"id\": 0, \"op\": \"stats\"}\n");
    long BackendRuns = fleetStatField(Control.recvLine(), "backend_runs");
    if (BackendRuns != static_cast<long>(A + 1)) {
      std::fprintf(stderr,
                   "%s: single-flight breach: %ld backend runs after %zu "
                   "apps\n",
                   Apps[A]->Name, BackendRuns, A + 1);
      ++Failures;
    }
  }
  unsigned StampedeBackendRuns = static_cast<unsigned>(Apps.size());

  // Phase 2 — fleet: Clients concurrent closed-loop connections, all warm.
  std::atomic<unsigned> Connected{0}, FleetFailures{0}, FleetMismatches{0};
  std::atomic<unsigned> OverloadRetries{0};
  std::atomic<bool> Go{false};
  std::vector<std::vector<double>> LatMs(Clients);
  std::vector<std::thread> Threads;
  Threads.reserve(Clients);
  for (unsigned T = 0; T < Clients; ++T) {
    Threads.emplace_back([&, T] {
      LineConn C;
      if (!C.connectTo(Port)) {
        ++FleetFailures;
        ++Connected;
        return;
      }
      ++Connected;
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      for (unsigned R = 0; R < RequestsPerClient; ++R) {
        size_t A = (T + R) % Apps.size();
        auto Start = std::chrono::steady_clock::now();
        std::string Reply;
        for (unsigned Attempt = 0; Attempt < 1000; ++Attempt) {
          if (!C.sendAll(Requests[A])) {
            ++FleetFailures;
            return;
          }
          Reply = C.recvLine();
          if (Reply.find("\"overloaded\": true") == std::string::npos)
            break;
          ++OverloadRetries;
          ::usleep(1000);
        }
        LatMs[T].push_back(std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - Start)
                               .count());
        if (Reply.find("\"ok\": true") == std::string::npos) {
          ++FleetFailures;
          return;
        }
        if (stripTimingValues(Reply) != stripTimingValues(ColdReplies[A]))
          ++FleetMismatches;
      }
    });
  }
  while (Connected.load() < Clients)
    ::usleep(1000);
  auto FleetStart = std::chrono::steady_clock::now();
  Go.store(true, std::memory_order_release);
  for (std::thread &T : Threads)
    T.join();
  double FleetSeconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - FleetStart)
                            .count();
  Failures += FleetFailures.load();
  Mismatches += FleetMismatches.load();

  // Post-traffic accounting from the server itself.
  long Dropped = -1, Overloads = -1, FlightWaits = -1, BackendRuns = -1;
  if (Control.Fd >= 0) {
    Control.sendAll("{\"id\": 0, \"op\": \"stats\"}\n");
    std::string Stats = Control.recvLine();
    Dropped = fleetStatField(Stats, "replies_dropped");
    Overloads = fleetStatField(Stats, "overload_rejects");
    FlightWaits = fleetStatField(Stats, "single_flight_waits");
    BackendRuns = fleetStatField(Stats, "backend_runs");
  }
  if (Dropped != 0) {
    std::fprintf(stderr, "error: %ld silently dropped replies\n", Dropped);
    ++Failures;
  }
  if (BackendRuns != static_cast<long>(Apps.size())) {
    std::fprintf(stderr, "error: %ld backend runs for %zu apps\n",
                 BackendRuns, Apps.size());
    ++Failures;
  }
  Control.reset();

  // Phase 3 — graceful drain: SIGTERM must end the process with exit 0.
  bool DrainClean = false;
  ::kill(ServePid, SIGTERM);
  for (int I = 0; I < 1000; ++I) {
    int St;
    if (::waitpid(ServePid, &St, WNOHANG) == ServePid) {
      DrainClean = WIFEXITED(St) && WEXITSTATUS(St) == 0;
      ServePid = -1;
      break;
    }
    ::usleep(10 * 1000);
  }
  if (ServePid != -1) {
    ::kill(ServePid, SIGKILL);
    ::waitpid(ServePid, nullptr, 0);
  }
  if (!DrainClean) {
    std::fprintf(stderr, "error: server did not drain cleanly on SIGTERM\n");
    ++Failures;
  }
  removeCacheDir(SrvDir);

  // Latency aggregation.
  std::vector<double> All;
  for (const std::vector<double> &L : LatMs)
    All.insert(All.end(), L.begin(), L.end());
  std::sort(All.begin(), All.end());
  auto Pct = [&](double P) {
    if (All.empty())
      return 0.0;
    size_t I = static_cast<size_t>(P * (All.size() - 1));
    return All[I];
  };
  double P50 = Pct(0.50), P99 = Pct(0.99);
  double Rps = FleetSeconds > 0 ? All.size() / FleetSeconds : 0.0;

  std::printf("  stampede: %zu apps x %u conns, backend runs %u, "
              "flight waits %ld\n",
              Apps.size(), StampedeWidth, StampedeBackendRuns, FlightWaits);
  std::printf("  fleet: %zu requests in %.2fs = %.0f req/s "
              "(p50 %.2f ms, p99 %.2f ms, %u overload retries)\n",
              All.size(), FleetSeconds, Rps, P50, P99,
              OverloadRetries.load());
  std::printf("  dropped replies %ld, overload rejects %ld, mismatches %u, "
              "drain %s\n",
              Dropped, Overloads, Mismatches,
              DrainClean ? "clean" : "UNCLEAN");

  FILE *F = std::fopen(OutPath, "w");
  if (!F) {
    std::fprintf(stderr, "error: cannot write %s\n", OutPath);
    return 1;
  }
  std::fprintf(F,
               "{\n  \"apps\": %zu,\n  \"clients\": %u,\n"
               "  \"requests_per_client\": %u,\n  \"requests\": %zu,\n"
               "  \"fleet_seconds\": %.3f,\n  \"rps\": %.0f,\n"
               "  \"p50_ms\": %.3f,\n  \"p99_ms\": %.3f,\n",
               Apps.size(), Clients, RequestsPerClient, All.size(),
               FleetSeconds, Rps, P50, P99);
  std::fprintf(F,
               "  \"stampede_width\": %u,\n"
               "  \"stampede_backend_runs\": %u,\n"
               "  \"single_flight_waits\": %ld,\n"
               "  \"overload_rejects\": %ld,\n"
               "  \"overload_retries\": %u,\n  \"replies_dropped\": %ld,\n"
               "  \"reference_mismatches\": %u,\n  \"failures\": %u,\n"
               "  \"drain_clean\": %s\n}\n",
               StampedeWidth, StampedeBackendRuns, FlightWaits, Overloads,
               OverloadRetries.load(), Dropped, Mismatches, Failures,
               DrainClean ? "true" : "false");
  std::fclose(F);
  std::printf("  fleet soak written to %s\n", OutPath);
  return Failures || Mismatches ? 1 : 0;
#endif
}

} // namespace

static const int StdoutLineBuffered = []() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  return 0;
}();

int main(int Argc, char **Argv) {
  bool Quick = false, NoPasses = false, LintOnly = false;
  const char *GovernancePath = nullptr;
  const char *PassesPath = nullptr;
  const char *ServeSimPath = nullptr;
  const char *IncrementalPath = nullptr;
  const char *FleetPath = nullptr;
  unsigned FleetClients = 1000, FleetRequests = 4;
  for (int I = 1; I != Argc; ++I) {
    if (!std::strcmp(Argv[I], "--quick"))
      Quick = true;
    else if (!std::strcmp(Argv[I], "--no-passes"))
      NoPasses = true;
    else if (!std::strcmp(Argv[I], "--lint"))
      LintOnly = true;
    else if (!std::strcmp(Argv[I], "--governance") && I + 1 != Argc)
      GovernancePath = Argv[++I];
    else if (!std::strcmp(Argv[I], "--passes") && I + 1 != Argc)
      PassesPath = Argv[++I];
    else if (!std::strcmp(Argv[I], "--serve-sim") && I + 1 != Argc)
      ServeSimPath = Argv[++I];
    else if (!std::strcmp(Argv[I], "--incremental") && I + 1 != Argc)
      IncrementalPath = Argv[++I];
    else if (!std::strcmp(Argv[I], "--fleet") && I + 1 != Argc)
      FleetPath = Argv[++I];
    else if (!std::strcmp(Argv[I], "--fleet-clients") && I + 1 != Argc)
      FleetClients = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--fleet-requests") && I + 1 != Argc)
      FleetRequests = static_cast<unsigned>(std::atoi(Argv[++I]));
  }

  if (FleetPath)
    return runFleet(FleetPath, Quick, FleetClients, FleetRequests);

  if (ServeSimPath)
    return runServeSim(ServeSimPath, Quick, NoPasses);

  if (IncrementalPath)
    return runIncremental(IncrementalPath, Quick, NoPasses);

  if (LintOnly) {
    // Lint every benchmark app (no analysis). Exits 1 on any unsuppressed
    // warning, so CI can gate on a lint-clean suite.
    unsigned Warnings = 0;
    for (const BenchApp &App : benchApps()) {
      std::string Source = App.Source;
      CompileResult Compiled = compileC4L(Source);
      if (!Compiled.ok()) {
        std::printf("%s: COMPILE ERROR: %s\n", App.Name,
                    Compiled.Error.c_str());
        ++Warnings;
        continue;
      }
      PassOptions Opts;
      Opts.Reduce = false;
      PassResult R = runPasses(*Compiled.Program, Opts, &Source);
      Warnings += static_cast<unsigned>(R.Lints.size());
      std::fputs(renderLintText(R.Lints, App.Name).c_str(), stdout);
    }
    std::printf("%u lint warning(s) across %zu apps\n", Warnings,
                benchApps().size());
    return Warnings ? 1 : 0;
  }
  QueryTrace Trace;
  auto SuiteStart = std::chrono::steady_clock::now();

  std::printf("Table 1: analysis results on the 28 benchmark "
              "applications\n");
  std::printf("(paper numbers in [brackets]; E/H/F = harmful / harmless / "
              "false alarm)\n\n");
  std::printf("%-18s %7s %13s | %-22s | %-22s\n", "Program", "T/E",
              "FE/BE [s]", "Unfiltered E/H/F/Sum", "Filtered E/H/F/Sum");

  Counts TotalUnf, TotalFil;
  unsigned TotalSSGFlagged = 0, TotalRefuted = 0, TotalUnknown = 0;
  unsigned TotalRetries = 0, TotalDfsExhausted = 0;
  uint64_t TotalRlimitSpent = 0;
  double TotalBackend = 0;
  unsigned Projects = 0, Failures = 0, NotGeneralized = 0;
  const char *LastDomain = "";

  // --passes comparison state.
  std::vector<PassRow> PassRows;
  PassStats TotalPassStats;
  double RawSeconds = 0, ReducedSeconds = 0, PassSeconds = 0;
  unsigned VerdictMismatches = 0;
  double PrefilterOffSeconds = 0, PrefilterDomainSeconds = 0;
  unsigned PrefilterMismatches = 0;

  for (const BenchApp &App : benchApps()) {
    if (Quick && Projects >= 6)
      break;
    if (std::strcmp(LastDomain, App.Domain)) {
      std::printf("--- %s ---\n", App.Domain);
      LastDomain = App.Domain;
    }
    CompileResult Compiled = compileC4L(App.Source);
    if (!Compiled.ok()) {
      std::printf("%-18s COMPILE ERROR: %s\n", App.Name,
                  Compiled.Error.c_str());
      ++Failures;
      continue;
    }
    ++Projects;
    CompiledProgram &P = *Compiled.Program;

    AnalyzerOptions Unfiltered;
    if (GovernancePath)
      Unfiltered.Trace = &Trace;

    // Raw (pre-reduction) baseline for the --passes comparison. Runs
    // before the passes mutate P so both variants see the same program.
    std::string RawKeyU, RawKeyF;
    unsigned RawEdges = 0, RawQueries = 0;
    unsigned RawEvents = P.History->numStoreEvents();
    if (PassesPath) {
      auto RawStart = std::chrono::steady_clock::now();
      AnalysisResult RawU = analyze(*P.History, Unfiltered);
      AnalyzerOptions RawFilteredOpts;
      RawFilteredOpts.DisplayFilter = true;
      RawFilteredOpts.UseAtomicSets = !P.AtomicSets.empty();
      RawFilteredOpts.AtomicSets = P.AtomicSets;
      AnalysisResult RawF = analyze(*P.History, RawFilteredOpts);
      RawSeconds += std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - RawStart)
                        .count();
      RawKeyU = verdictKey(RawU);
      RawKeyF = verdictKey(RawF);
      RawEdges = RawU.SSGEdges + RawF.SSGEdges;
      RawQueries = RawU.SmtQueries + RawF.SmtQueries;
    }

    if (!NoPasses) {
      PassOptions PassOpts;
      PassOpts.Lint = false;
      PassResult Passes = runPasses(P, PassOpts);
      if (!Passes.Ok) {
        std::printf("%-18s PASS ERROR: %s\n", App.Name,
                    Passes.Error.c_str());
        ++Failures;
        continue;
      }
      TotalPassStats.EventsBefore += Passes.Stats.EventsBefore;
      TotalPassStats.EventsAfter += Passes.Stats.EventsAfter;
      TotalPassStats.DeadWrites += Passes.Stats.DeadWrites;
      TotalPassStats.PrunedBranches += Passes.Stats.PrunedBranches;
      TotalPassStats.ConstProps += Passes.Stats.ConstProps;
      TotalPassStats.FreshPromotions += Passes.Stats.FreshPromotions;
      PassSeconds += Passes.Stats.Seconds;
    }

    auto ReducedStart = std::chrono::steady_clock::now();
    AnalysisResult RU = analyze(*P.History, Unfiltered);

    AnalyzerOptions Filtered;
    Filtered.DisplayFilter = true;
    Filtered.UseAtomicSets = !P.AtomicSets.empty();
    Filtered.AtomicSets = P.AtomicSets;
    if (GovernancePath)
      Filtered.Trace = &Trace;
    AnalysisResult RF = analyze(*P.History, Filtered);
    ReducedSeconds += std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - ReducedStart)
                          .count();

    if (PassesPath) {
      bool Match =
          RawKeyU == verdictKey(RU) && RawKeyF == verdictKey(RF);
      if (!Match)
        ++VerdictMismatches;

      // Prefilter A/B differential on the reduced history: rerun both
      // variants with the relational domain disabled. The verdicts must
      // match — the prefilter is only allowed to skip Z3 queries, never
      // to change an answer.
      AnalyzerOptions OffU;
      OffU.UsePrefilter = false;
      AnalyzerOptions OffF;
      OffF.DisplayFilter = true;
      OffF.UseAtomicSets = !P.AtomicSets.empty();
      OffF.AtomicSets = P.AtomicSets;
      OffF.UsePrefilter = false;
      auto OffStart = std::chrono::steady_clock::now();
      AnalysisResult OU = analyze(*P.History, OffU);
      AnalysisResult OF = analyze(*P.History, OffF);
      PrefilterOffSeconds += std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - OffStart)
                                 .count();
      bool PMatch =
          verdictKey(OU) == verdictKey(RU) && verdictKey(OF) == verdictKey(RF);
      if (!PMatch)
        ++PrefilterMismatches;
      PrefilterDomainSeconds += RU.PrefilterSeconds + RF.PrefilterSeconds;

      PassRows.push_back({App.Name, RawEvents,
                          P.History->numStoreEvents(), RawEdges,
                          RU.SSGEdges + RF.SSGEdges, RawQueries,
                          RU.SmtQueries + RF.SmtQueries, Match,
                          RU.SmtQueriesPrefiltered + RF.SmtQueriesPrefiltered,
                          OU.SmtQueries + OF.SmtQueries, PMatch});
    }

    Counts CU = classifyAll(App, RU);
    Counts CF = classifyAll(App, RF);
    TotalUnf.E += CU.E;
    TotalUnf.H += CU.H;
    TotalUnf.F += CU.F;
    TotalFil.E += CF.E;
    TotalFil.H += CF.H;
    TotalFil.F += CF.F;
    TotalSSGFlagged += RF.SSGFlagged + RU.SSGFlagged;
    TotalRefuted += RF.SMTRefuted + RU.SMTRefuted;
    TotalUnknown += RF.SMTUnknown + RU.SMTUnknown;
    TotalRetries += RF.SMTRetries + RU.SMTRetries;
    TotalDfsExhausted += RF.DfsBudgetExhausted + RU.DfsBudgetExhausted;
    TotalRlimitSpent += RF.RlimitSpent + RU.RlimitSpent;
    TotalBackend += RF.BackendSeconds + RU.BackendSeconds;
    if (!RU.Generalized || !RF.Generalized)
      ++NotGeneralized;

    std::printf("%-18s %3u/%-3u %6.2f/%-6.2f | %u/%u/%u/%u [%u/%u/%u/%u]%*s "
                "| %u/%u/%u/%u [%u/%u/%u/%u]%s\n",
                App.Name, P.History->numTxns(), P.History->numStoreEvents(),
                P.FrontendSeconds, RU.BackendSeconds + RF.BackendSeconds,
                CU.E, CU.H, CU.F, CU.total(), App.PaperUnfiltered.E,
                App.PaperUnfiltered.H, App.PaperUnfiltered.F,
                App.PaperUnfiltered.E + App.PaperUnfiltered.H +
                    App.PaperUnfiltered.F,
                1, "", CF.E, CF.H, CF.F, CF.total(), App.PaperFiltered.E,
                App.PaperFiltered.H, App.PaperFiltered.F,
                App.PaperFiltered.E + App.PaperFiltered.H +
                    App.PaperFiltered.F,
                RF.Generalized ? "" : " (bounded)");
  }

  std::printf("\nSummary (paper / measured)\n");
  std::printf("  projects analyzed: %u (failures: %u, bounded-only: %u)\n",
              Projects, Failures, NotGeneralized);
  std::printf("  avg violations per project unfiltered: [7.3] %.1f\n",
              Projects ? static_cast<double>(TotalUnf.total()) / Projects
                       : 0.0);
  std::printf("  avg violations per project filtered:   [1.3] %.1f\n",
              Projects ? static_cast<double>(TotalFil.total()) / Projects
                       : 0.0);
  std::printf("  unfiltered totals E/H/F: %u/%u/%u\n", TotalUnf.E,
              TotalUnf.H, TotalUnf.F);
  std::printf("  filtered totals   E/H/F: %u/%u/%u\n", TotalFil.E,
              TotalFil.H, TotalFil.F);
  unsigned FilTotal = TotalFil.total();
  if (FilTotal) {
    std::printf("  filtered harmful rate:     [43%%] %u%%\n",
                100 * TotalFil.E / FilTotal);
    std::printf("  filtered false-alarm rate: [10%%] %u%%\n",
                100 * TotalFil.F / FilTotal);
  }
  std::printf("  SSG-flagged unfoldings refuted by SMT: %u of %u "
              "(unknown: %u)\n",
              TotalRefuted, TotalSSGFlagged, TotalUnknown);

  if (GovernancePath) {
    // Aggregate the query trace per stage and dump the governance
    // regression baseline.
    double WallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      SuiteStart)
            .count();
    struct StageAgg {
      const char *Name;
      uint64_t Queries = 0, Retried = 0, Retries = 0, Unknown = 0;
      uint64_t RlimitSpent = 0;
      double WallMs = 0;
    } Stages[2] = {{"bounded"}, {"generalize"}};
    for (const QueryRecord &R : Trace.records()) {
      StageAgg &S = Stages[std::strcmp(R.Stage, "bounded") ? 1 : 0];
      ++S.Queries;
      if (R.Attempts > 1) {
        ++S.Retried;
        S.Retries += R.Attempts - 1;
      }
      if (!std::strcmp(R.Outcome, "unknown") ||
          !std::strcmp(R.Outcome, "error"))
        ++S.Unknown;
      S.RlimitSpent += R.RlimitSpent;
      S.WallMs += R.WallMs;
    }
    FILE *F = std::fopen(GovernancePath, "w");
    if (!F) {
      std::fprintf(stderr, "error: cannot write %s\n", GovernancePath);
      return 1;
    }
    std::fprintf(F, "{\n  \"projects\": %u,\n  \"wall_seconds\": %.1f,\n"
                    "  \"backend_seconds\": %.1f,\n",
                 Projects, WallSeconds, TotalBackend);
    std::fprintf(F, "  \"smt_retries\": %u,\n  \"smt_unknown\": %u,\n"
                    "  \"dfs_budget_exhausted\": %u,\n"
                    "  \"rlimit_spent\": %llu,\n  \"stages\": {\n",
                 TotalRetries, TotalUnknown, TotalDfsExhausted,
                 static_cast<unsigned long long>(TotalRlimitSpent));
    for (unsigned I = 0; I != 2; ++I) {
      const StageAgg &S = Stages[I];
      double RetryRate =
          S.Queries ? static_cast<double>(S.Retried) / S.Queries : 0.0;
      std::fprintf(
          F,
          "    \"%s\": {\"queries\": %llu, \"retried\": %llu, "
          "\"retries\": %llu, \"retry_rate\": %.4f, \"unknown\": %llu, "
          "\"rlimit_spent\": %llu, \"wall_ms\": %.1f}%s\n",
          S.Name, static_cast<unsigned long long>(S.Queries),
          static_cast<unsigned long long>(S.Retried),
          static_cast<unsigned long long>(S.Retries), RetryRate,
          static_cast<unsigned long long>(S.Unknown),
          static_cast<unsigned long long>(S.RlimitSpent), S.WallMs,
          I == 0 ? "," : "");
    }
    std::fprintf(F, "  }\n}\n");
    std::fclose(F);
    std::printf("  governance aggregate written to %s\n", GovernancePath);
  }

  if (PassesPath) {
    std::printf("\nHistory reduction (raw -> reduced, unfiltered + "
                "filtered runs summed)\n");
    std::printf("  %-18s %13s %13s %13s  %s\n", "Program", "events",
                "ssg edges", "smt queries", "verdicts");
    unsigned SumEvB = 0, SumEvA = 0, SumEdB = 0, SumEdA = 0, SumQB = 0,
             SumQA = 0, SumQPre = 0, SumQOff = 0;
    for (const PassRow &Row : PassRows) {
      std::printf("  %-18s %5u -> %-5u %5u -> %-5u %5u -> %-5u  %s\n",
                  Row.Name, Row.EventsBefore, Row.EventsAfter,
                  Row.EdgesBefore, Row.EdgesAfter, Row.QueriesBefore,
                  Row.QueriesAfter,
                  Row.VerdictMatch ? "match" : "MISMATCH");
      SumEvB += Row.EventsBefore;
      SumEvA += Row.EventsAfter;
      SumEdB += Row.EdgesBefore;
      SumEdA += Row.EdgesAfter;
      SumQB += Row.QueriesBefore;
      SumQA += Row.QueriesAfter;
      SumQPre += Row.QueriesPrefiltered;
      SumQOff += Row.QueriesNoPrefilter;
    }
    std::printf("  %-18s %5u -> %-5u %5u -> %-5u %5u -> %-5u  %s\n",
                "TOTAL", SumEvB, SumEvA, SumEdB, SumEdA, SumQB, SumQA,
                VerdictMismatches ? "MISMATCHES" : "all match");
    std::printf("  dead writes %u, pruned branches %u, const props %u, "
                "fresh promotions %u (pass time %.2fs)\n",
                TotalPassStats.DeadWrites, TotalPassStats.PrunedBranches,
                TotalPassStats.ConstProps, TotalPassStats.FreshPromotions,
                PassSeconds);
    double KillFraction =
        SumQA + SumQPre
            ? static_cast<double>(SumQPre) / (SumQA + SumQPre)
            : 0.0;
    std::printf("  prefilter: killed %u of %u bounded queries (%.0f%%), "
                "domain time %.2fs, reduced analysis %.1fs on vs %.1fs "
                "off, verdicts %s\n",
                SumQPre, SumQA + SumQPre, 100.0 * KillFraction,
                PrefilterDomainSeconds, ReducedSeconds, PrefilterOffSeconds,
                PrefilterMismatches ? "DIVERGE" : "identical");

    FILE *F = std::fopen(PassesPath, "w");
    if (!F) {
      std::fprintf(stderr, "error: cannot write %s\n", PassesPath);
      return 1;
    }
    std::fprintf(F,
                 "{\n  \"projects\": %u,\n  \"verdict_mismatches\": %u,\n",
                 Projects, VerdictMismatches);
    std::fprintf(F,
                 "  \"events_before\": %u,\n  \"events_after\": %u,\n"
                 "  \"ssg_edges_before\": %u,\n  \"ssg_edges_after\": %u,\n"
                 "  \"smt_queries_before\": %u,\n"
                 "  \"smt_queries_after\": %u,\n",
                 SumEvB, SumEvA, SumEdB, SumEdA, SumQB, SumQA);
    std::fprintf(F,
                 "  \"smt_queries_prefiltered\": %u,\n"
                 "  \"smt_queries_no_prefilter\": %u,\n"
                 "  \"prefilter_kill_fraction\": %.4f,\n"
                 "  \"prefilter_seconds\": %.3f,\n"
                 "  \"prefilter_verdict_mismatches\": %u,\n"
                 "  \"analysis_seconds_prefilter_off\": %.1f,\n",
                 SumQPre, SumQOff, KillFraction, PrefilterDomainSeconds,
                 PrefilterMismatches, PrefilterOffSeconds);
    std::fprintf(F,
                 "  \"dead_writes\": %u,\n  \"pruned_branches\": %u,\n"
                 "  \"const_props\": %u,\n  \"fresh_promotions\": %u,\n",
                 TotalPassStats.DeadWrites, TotalPassStats.PrunedBranches,
                 TotalPassStats.ConstProps, TotalPassStats.FreshPromotions);
    std::fprintf(F,
                 "  \"pass_seconds\": %.2f,\n"
                 "  \"analysis_seconds_before\": %.1f,\n"
                 "  \"analysis_seconds_after\": %.1f,\n  \"apps\": [\n",
                 PassSeconds, RawSeconds, ReducedSeconds);
    for (size_t I = 0; I != PassRows.size(); ++I) {
      const PassRow &Row = PassRows[I];
      std::fprintf(F,
                   "    {\"name\": \"%s\", \"events\": [%u, %u], "
                   "\"ssg_edges\": [%u, %u], \"smt_queries\": [%u, %u], "
                   "\"verdict_match\": %s, "
                   "\"smt_queries_prefiltered\": %u, "
                   "\"smt_queries_no_prefilter\": %u, "
                   "\"prefilter_match\": %s}%s\n",
                   Row.Name, Row.EventsBefore, Row.EventsAfter,
                   Row.EdgesBefore, Row.EdgesAfter, Row.QueriesBefore,
                   Row.QueriesAfter, Row.VerdictMatch ? "true" : "false",
                   Row.QueriesPrefiltered, Row.QueriesNoPrefilter,
                   Row.PrefilterMatch ? "true" : "false",
                   I + 1 == PassRows.size() ? "" : ",");
    }
    std::fprintf(F, "  ]\n}\n");
    std::fclose(F);
    std::printf("  pass comparison written to %s\n", PassesPath);
  }
  return Failures || VerdictMismatches || PrefilterMismatches ? 1 : 0;
}
